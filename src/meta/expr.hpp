// expr.hpp — the OSSS analyzer's expression/statement model.
//
// The ODETTE flow parses OSSS source with an *analyzer* and hands a
// structured model of every class to the *synthesizer* (paper §7).  We
// cannot ship a C++ front-end, so this model is produced by construction:
// each OSSS design class carries, next to its executable C++ methods, a
// `MethodDesc` whose body is an expression/statement tree over its data
// members.  Everything downstream of the analyzer — resolution to free
// functions over `_this_` bit vectors, template forwarding, polymorphism
// muxes, scheduler generation — operates on this model exactly as the
// paper describes.
//
// Expressions are immutable shared trees; widths are explicit and checked
// at construction (hardware never infers widths silently).

#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "sysc/bits.hpp"

namespace osss::meta {

using sysc::Bits;

enum class ExprKind : std::uint8_t {
  kConst,
  kMemberRef,  ///< data member of the enclosing object
  kParamRef,   ///< method parameter / behavior input signal
  kLocalRef,   ///< method local / behavior state variable
  kBinary,
  kUnary,
  kSlice,
  kConcat,  ///< args.front() is the MOST significant chunk
  kCond,    ///< args = {cond(1), then, else}
  kZExt,
  kSExt,
};

enum class BinOp : std::uint8_t {
  kAdd,
  kSub,
  kMul,
  kAnd,
  kOr,
  kXor,
  kShl,   ///< by variable amount (rhs may be any width)
  kLshr,
  kEq,
  kNe,
  kUlt,
  kUle,
  kSlt,
  kSle,
};

enum class UnOp : std::uint8_t { kNot, kNeg, kRedOr, kRedAnd, kRedXor };

struct Expr;
using ExprPtr = std::shared_ptr<const Expr>;

struct Expr {
  ExprKind kind;
  unsigned width;
  Bits value;                 ///< kConst
  std::string name;           ///< refs
  BinOp bop = BinOp::kAdd;    ///< kBinary
  UnOp uop = UnOp::kNot;      ///< kUnary
  unsigned lo = 0;            ///< kSlice offset
  std::vector<ExprPtr> args;
};

const char* bin_op_name(BinOp op);
const char* un_op_name(UnOp op);

// --- constructors (width-checked; throw std::invalid_argument) -------------
ExprPtr constant(unsigned width, std::uint64_t v);
ExprPtr constant(Bits v);
ExprPtr member(std::string name, unsigned width);
ExprPtr param(std::string name, unsigned width);
ExprPtr local(std::string name, unsigned width);
ExprPtr binary(BinOp op, ExprPtr a, ExprPtr b);
ExprPtr unary(UnOp op, ExprPtr a);
ExprPtr slice(ExprPtr a, unsigned hi, unsigned lo);
ExprPtr concat(std::vector<ExprPtr> parts);  ///< front = most significant
ExprPtr cond(ExprPtr c, ExprPtr t, ExprPtr e);
ExprPtr zext(ExprPtr a, unsigned width);
ExprPtr sext(ExprPtr a, unsigned width);

// Convenience wrappers.
inline ExprPtr add(ExprPtr a, ExprPtr b) { return binary(BinOp::kAdd, a, b); }
inline ExprPtr sub(ExprPtr a, ExprPtr b) { return binary(BinOp::kSub, a, b); }
inline ExprPtr mul(ExprPtr a, ExprPtr b) { return binary(BinOp::kMul, a, b); }
inline ExprPtr band(ExprPtr a, ExprPtr b) { return binary(BinOp::kAnd, a, b); }
inline ExprPtr bor(ExprPtr a, ExprPtr b) { return binary(BinOp::kOr, a, b); }
inline ExprPtr bxor(ExprPtr a, ExprPtr b) { return binary(BinOp::kXor, a, b); }
inline ExprPtr eq(ExprPtr a, ExprPtr b) { return binary(BinOp::kEq, a, b); }
inline ExprPtr ne(ExprPtr a, ExprPtr b) { return binary(BinOp::kNe, a, b); }
inline ExprPtr ult(ExprPtr a, ExprPtr b) { return binary(BinOp::kUlt, a, b); }
inline ExprPtr ule(ExprPtr a, ExprPtr b) { return binary(BinOp::kUle, a, b); }
inline ExprPtr bnot(ExprPtr a) { return unary(UnOp::kNot, a); }

// --- statements -------------------------------------------------------------

enum class StmtKind : std::uint8_t { kAssign, kIf, kReturn };

struct Stmt;
using StmtPtr = std::shared_ptr<const Stmt>;

struct Stmt {
  StmtKind kind;
  // kAssign
  bool target_is_member = false;
  std::string target;
  ExprPtr expr;
  // kIf
  ExprPtr if_cond;
  std::vector<StmtPtr> then_body;
  std::vector<StmtPtr> else_body;
  // kReturn
  ExprPtr ret;
};

StmtPtr assign_member(std::string name, ExprPtr value);
StmtPtr assign_local(std::string name, ExprPtr value);
StmtPtr if_stmt(ExprPtr cond, std::vector<StmtPtr> then_body,
                std::vector<StmtPtr> else_body = {});
StmtPtr return_stmt(ExprPtr value);

// --- symbolic environment ------------------------------------------------
//
// Maps names to expression trees.  Used both for concrete interpretation
// (every tree is a kConst) and for symbolic execution during synthesis.

struct Env {
  std::map<std::string, ExprPtr> members;
  std::map<std::string, ExprPtr> params;
  std::map<std::string, ExprPtr> locals;
};

/// Rewrite `e`, replacing every reference with its binding in `env`.
/// References without a binding throw std::logic_error (the analyzer would
/// have rejected the program).  Constant-folds as it goes: an expression
/// whose inputs are all constants becomes a kConst node.
ExprPtr substitute(const ExprPtr& e, const Env& env);

/// Execute a statement list symbolically, updating `env` in place.
/// Returns the return-value tree if a kReturn was executed (must be the
/// final statement on every path it appears on), nullptr otherwise.
ExprPtr exec_stmts(const std::vector<StmtPtr>& body, Env& env);

/// Fully evaluate an expression with no free references to a value.
/// Throws if the tree is not closed.
Bits eval_const(const ExprPtr& e);

/// True when the tree is a kConst node.
bool is_const(const ExprPtr& e);

/// Render an expression as text (diagnostics and the SystemC emitter).
std::string to_string(const ExprPtr& e);

}  // namespace osss::meta
