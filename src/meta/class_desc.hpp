// class_desc.hpp — the analyzer's model of an OSSS class.
//
// A ClassDesc carries exactly what the OSSS synthesizer needs from a class:
// the ordered data members (which §8 of the paper maps to a single bit
// vector), the methods as statement trees, inheritance (base members are
// laid out first, so a derived object *is* a base object prefix plus its
// own members), virtual-ness for polymorphic dispatch, and template
// parameters handled by instantiation (parameter forwarding, §8).

#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "meta/expr.hpp"

namespace osss::meta {

struct Member {
  std::string name;
  unsigned width = 0;
};

struct Param {
  std::string name;
  unsigned width = 0;
};

struct MethodDesc {
  std::string name;
  std::vector<Param> params;
  unsigned return_width = 0;  ///< 0 = void
  bool is_const = false;      ///< does not modify the object
  bool is_virtual = false;    ///< participates in polymorphic dispatch
  std::vector<StmtPtr> body;
};

class ClassDesc {
public:
  explicit ClassDesc(std::string name) : name_(std::move(name)) {}

  /// Derived class: base members are laid out first (prefix layout).
  ClassDesc(std::string name, std::shared_ptr<const ClassDesc> base)
      : name_(std::move(name)), base_(std::move(base)) {}

  const std::string& name() const noexcept { return name_; }
  const ClassDesc* base() const noexcept { return base_.get(); }

  void add_member(std::string name, unsigned width);
  void add_method(MethodDesc m);

  /// Members declared by this class only.
  const std::vector<Member>& own_members() const noexcept { return members_; }
  /// All members, base-first (the object layout order).
  std::vector<Member> all_members() const;

  /// Total object width in bits — the width of the `_this_` vector the
  /// synthesizer resolves member accesses into.
  unsigned data_width() const;

  /// Bit offset of a member in the object vector (walks the base chain).
  /// Throws std::logic_error for unknown members.
  unsigned member_offset(const std::string& member) const;
  unsigned member_width(const std::string& member) const;

  /// Method lookup with inheritance (derived overrides base).
  const MethodDesc* find_method(const std::string& name) const;
  const std::vector<MethodDesc>& own_methods() const noexcept {
    return methods_;
  }

  /// True if `other` is this class or an ancestor of it.
  bool derives_from(const ClassDesc& ancestor) const;

  /// Construct the initial (reset) object value by running a constructor
  /// method named "__ctor__" if present, else all-zero.
  Bits initial_value() const;

  /// Execute a method concretely: given the object's current bits and
  /// constant arguments, return the new object bits and the return value
  /// (empty optional for void).  This is the reference interpreter used to
  /// check the meta description against the executable C++ class and
  /// against the synthesized hardware.
  struct CallResult {
    Bits state;
    std::optional<Bits> ret;
  };
  CallResult call(const std::string& method, const Bits& state,
                  const std::vector<Bits>& args) const;

  /// Build the symbolic environment mapping each member to a slice of a
  /// `_this_`-typed expression (the §8 resolution step).
  Env member_env(const ExprPtr& this_expr) const;

  /// Pack a member environment back into a `_this_` expression.
  ExprPtr pack_members(const Env& env) const;

private:
  std::string name_;
  std::shared_ptr<const ClassDesc> base_;
  std::vector<Member> members_;
  std::vector<MethodDesc> methods_;
};

using ClassPtr = std::shared_ptr<const ClassDesc>;

/// A class template: a named generator of ClassDesc instances from integer
/// parameters, with an instantiation cache — the analyzer-level model of
/// `template<unsigned REGSIZE, unsigned RESETVALUE> class SyncRegister`.
class ClassTemplate {
public:
  using Generator =
      std::function<ClassDesc(const std::vector<std::uint64_t>&)>;

  ClassTemplate(std::string name, Generator gen)
      : name_(std::move(name)), gen_(std::move(gen)) {}

  const std::string& name() const noexcept { return name_; }

  /// Instantiate (memoized).  Repeated instantiation with the same
  /// parameters returns the identical ClassDesc — templates are resolved
  /// once, like real template instantiation.
  ClassPtr instantiate(const std::vector<std::uint64_t>& params) const;

  std::size_t instantiation_count() const noexcept { return cache_.size(); }

private:
  std::string name_;
  Generator gen_;
  mutable std::map<std::vector<std::uint64_t>, ClassPtr> cache_;
};

}  // namespace osss::meta
