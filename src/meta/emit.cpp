#include "meta/emit.hpp"

#include <stdexcept>

namespace osss::meta {

rtl::Wire RtlEmitter::emit(const ExprPtr& e) {
  if (!e) throw std::logic_error("RtlEmitter: null expression");
  const auto it = cache_.find(e.get());
  if (it != cache_.end()) return it->second;
  const rtl::Wire w = compute(e);
  if (w.width != e->width)
    throw std::logic_error("RtlEmitter: width drift emitting " +
                           to_string(e));
  cache_.emplace(e.get(), w);
  return w;
}

rtl::Wire RtlEmitter::compute(const ExprPtr& e) {
  auto lookup = [&](const std::unordered_map<std::string, rtl::Wire>& table,
                    const char* what) -> rtl::Wire {
    const auto it = table.find(e->name);
    if (it == table.end())
      throw std::logic_error(std::string("RtlEmitter: unbound ") + what +
                             " '" + e->name + "'");
    if (it->second.width != e->width)
      throw std::logic_error(std::string("RtlEmitter: ") + what + " '" +
                             e->name + "' width mismatch");
    return it->second;
  };
  switch (e->kind) {
    case ExprKind::kConst:
      return b_.constant(e->value);
    case ExprKind::kMemberRef:
      return lookup(members_, "member");
    case ExprKind::kParamRef:
      return lookup(params_, "param");
    case ExprKind::kLocalRef:
      return lookup(locals_, "local");
    case ExprKind::kBinary: {
      const rtl::Wire a = emit(e->args[0]);
      switch (e->bop) {
        case BinOp::kShl:
        case BinOp::kLshr: {
          // Constant shift amounts become fixed wiring.
          if (is_const(e->args[1])) {
            const std::uint64_t amt = e->args[1]->value.to_u64();
            const unsigned clamped =
                amt > a.width ? a.width : static_cast<unsigned>(amt);
            return e->bop == BinOp::kShl ? b_.shli(a, clamped)
                                         : b_.lshri(a, clamped);
          }
          const rtl::Wire amt = emit(e->args[1]);
          return e->bop == BinOp::kShl ? b_.shlv(a, amt) : b_.lshrv(a, amt);
        }
        default:
          break;
      }
      const rtl::Wire b = emit(e->args[1]);
      switch (e->bop) {
        case BinOp::kAdd: return b_.add(a, b);
        case BinOp::kSub: return b_.sub(a, b);
        case BinOp::kMul: return b_.mul(a, b);
        case BinOp::kAnd: return b_.and_(a, b);
        case BinOp::kOr: return b_.or_(a, b);
        case BinOp::kXor: return b_.xor_(a, b);
        case BinOp::kEq: return b_.eq(a, b);
        case BinOp::kNe: return b_.ne(a, b);
        case BinOp::kUlt: return b_.ult(a, b);
        case BinOp::kUle: return b_.ule(a, b);
        case BinOp::kSlt: return b_.slt(a, b);
        case BinOp::kSle: return b_.sle(a, b);
        default:
          throw std::logic_error("RtlEmitter: unexpected binary op");
      }
    }
    case ExprKind::kUnary: {
      const rtl::Wire a = emit(e->args[0]);
      switch (e->uop) {
        case UnOp::kNot: return b_.not_(a);
        case UnOp::kNeg:
          return b_.sub(b_.constant(a.width, 0), a);
        case UnOp::kRedOr: return b_.red_or(a);
        case UnOp::kRedAnd: return b_.red_and(a);
        case UnOp::kRedXor: return b_.red_xor(a);
      }
      throw std::logic_error("RtlEmitter: unexpected unary op");
    }
    case ExprKind::kSlice:
      return b_.slice(emit(e->args[0]), e->lo + e->width - 1, e->lo);
    case ExprKind::kConcat: {
      std::vector<rtl::Wire> parts;
      parts.reserve(e->args.size());
      for (const auto& a : e->args) parts.push_back(emit(a));
      return b_.concat(parts);
    }
    case ExprKind::kCond:
      return b_.mux(emit(e->args[0]), emit(e->args[1]), emit(e->args[2]));
    case ExprKind::kZExt:
      return b_.zext(emit(e->args[0]), e->width);
    case ExprKind::kSExt:
      return b_.sext(emit(e->args[0]), e->width);
  }
  throw std::logic_error("RtlEmitter: unexpected expr kind");
}

}  // namespace osss::meta
