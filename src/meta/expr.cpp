#include "meta/expr.hpp"

#include <sstream>
#include <stdexcept>
#include <unordered_map>

namespace osss::meta {

namespace {

[[noreturn]] void fail(const std::string& msg) {
  throw std::invalid_argument("meta: " + msg);
}

// Expression nodes are hash-consed (interned): structurally identical trees
// are pointer-identical.  Because children are interned first, shallow
// comparison with pointer-equal arguments suffices.  Structural sharing is
// what makes "no logic is duplicated by resolution" literally true in the
// emitted RTL, and lets the binder recognize the same operation reached
// from different FSM states.
std::size_t shallow_hash(const Expr& e) {
  std::size_t h = static_cast<std::size_t>(e.kind) * 0x9e3779b97f4a7c15ull;
  auto mix = [&h](std::size_t v) {
    h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  };
  mix(e.width);
  mix(static_cast<std::size_t>(e.bop));
  mix(static_cast<std::size_t>(e.uop));
  mix(e.lo);
  mix(std::hash<std::string>{}(e.name));
  if (e.kind == ExprKind::kConst) mix(e.value.hash());
  for (const auto& a : e.args) mix(reinterpret_cast<std::size_t>(a.get()));
  return h;
}

bool shallow_equal(const Expr& a, const Expr& b) {
  if (a.kind != b.kind || a.width != b.width || a.bop != b.bop ||
      a.uop != b.uop || a.lo != b.lo || a.name != b.name ||
      a.args.size() != b.args.size())
    return false;
  if (a.kind == ExprKind::kConst && !(a.value == b.value)) return false;
  for (std::size_t i = 0; i < a.args.size(); ++i)
    if (a.args[i].get() != b.args[i].get()) return false;
  return true;
}

ExprPtr make(Expr e) {
  thread_local std::unordered_map<std::size_t, std::vector<ExprPtr>> intern;
  const std::size_t h = shallow_hash(e);
  auto& bucket = intern[h];
  for (const ExprPtr& cand : bucket) {
    if (shallow_equal(*cand, e)) return cand;
  }
  bucket.push_back(std::make_shared<const Expr>(std::move(e)));
  return bucket.back();
}

Bits apply_bin(BinOp op, const Bits& a, const Bits& b) {
  switch (op) {
    case BinOp::kAdd: return a + b;
    case BinOp::kSub: return a - b;
    case BinOp::kMul: return a * b;
    case BinOp::kAnd: return a & b;
    case BinOp::kOr: return a | b;
    case BinOp::kXor: return a ^ b;
    case BinOp::kShl: {
      const std::uint64_t amt = b.to_u64();
      return a.shl(amt > a.width() ? a.width() : static_cast<unsigned>(amt));
    }
    case BinOp::kLshr: {
      const std::uint64_t amt = b.to_u64();
      return a.lshr(amt > a.width() ? a.width() : static_cast<unsigned>(amt));
    }
    case BinOp::kEq: return Bits(1, a == b ? 1u : 0u);
    case BinOp::kNe: return Bits(1, a != b ? 1u : 0u);
    case BinOp::kUlt: return Bits(1, Bits::ult(a, b) ? 1u : 0u);
    case BinOp::kUle: return Bits(1, Bits::ule(a, b) ? 1u : 0u);
    case BinOp::kSlt: return Bits(1, Bits::slt(a, b) ? 1u : 0u);
    case BinOp::kSle: return Bits(1, Bits::sle(a, b) ? 1u : 0u);
  }
  fail("unknown binary op");
}

Bits apply_un(UnOp op, const Bits& a) {
  switch (op) {
    case UnOp::kNot: return ~a;
    case UnOp::kNeg: return a.negate();
    case UnOp::kRedOr: return Bits(1, a.is_zero() ? 0u : 1u);
    case UnOp::kRedAnd: return Bits(1, a.is_ones() ? 1u : 0u);
    case UnOp::kRedXor: return Bits(1, a.popcount() & 1u);
  }
  fail("unknown unary op");
}

bool all_const(const std::vector<ExprPtr>& args) {
  for (const auto& a : args)
    if (a->kind != ExprKind::kConst) return false;
  return true;
}

/// Evaluate an expression node whose arguments are all constants.
Bits fold_node(const Expr& e) {
  auto cv = [&](std::size_t i) -> const Bits& { return e.args[i]->value; };
  switch (e.kind) {
    case ExprKind::kConst: return e.value;
    case ExprKind::kBinary: return apply_bin(e.bop, cv(0), cv(1));
    case ExprKind::kUnary: return apply_un(e.uop, cv(0));
    case ExprKind::kSlice: return cv(0).slice(e.lo + e.width - 1, e.lo);
    case ExprKind::kConcat: {
      Bits acc = cv(0);
      for (std::size_t i = 1; i < e.args.size(); ++i)
        acc = Bits::concat(acc, cv(i));
      return acc;
    }
    case ExprKind::kCond: return cv(0).bit(0) ? cv(1) : cv(2);
    case ExprKind::kZExt: return cv(0).zext(e.width);
    case ExprKind::kSExt: return cv(0).sext(e.width);
    default: fail("cannot fold reference");
  }
}

}  // namespace

const char* bin_op_name(BinOp op) {
  switch (op) {
    case BinOp::kAdd: return "+";
    case BinOp::kSub: return "-";
    case BinOp::kMul: return "*";
    case BinOp::kAnd: return "&";
    case BinOp::kOr: return "|";
    case BinOp::kXor: return "^";
    case BinOp::kShl: return "<<";
    case BinOp::kLshr: return ">>";
    case BinOp::kEq: return "==";
    case BinOp::kNe: return "!=";
    case BinOp::kUlt: return "<";
    case BinOp::kUle: return "<=";
    case BinOp::kSlt: return "<s";
    case BinOp::kSle: return "<=s";
  }
  return "?";
}

const char* un_op_name(UnOp op) {
  switch (op) {
    case UnOp::kNot: return "~";
    case UnOp::kNeg: return "-";
    case UnOp::kRedOr: return "|red";
    case UnOp::kRedAnd: return "&red";
    case UnOp::kRedXor: return "^red";
  }
  return "?";
}

ExprPtr constant(unsigned width, std::uint64_t v) {
  return constant(Bits(width, v));
}

ExprPtr constant(Bits v) {
  if (v.width() == 0) fail("zero-width constant");
  Expr e;
  e.kind = ExprKind::kConst;
  e.width = v.width();
  e.value = std::move(v);
  return make(std::move(e));
}

static ExprPtr ref(ExprKind kind, std::string name, unsigned width) {
  if (width == 0) fail("zero-width reference " + name);
  Expr e;
  e.kind = kind;
  e.width = width;
  e.name = std::move(name);
  return make(std::move(e));
}

ExprPtr member(std::string name, unsigned width) {
  return ref(ExprKind::kMemberRef, std::move(name), width);
}
ExprPtr param(std::string name, unsigned width) {
  return ref(ExprKind::kParamRef, std::move(name), width);
}
ExprPtr local(std::string name, unsigned width) {
  return ref(ExprKind::kLocalRef, std::move(name), width);
}

ExprPtr binary(BinOp op, ExprPtr a, ExprPtr b) {
  if (!a || !b) fail("null operand");
  unsigned width = 0;
  switch (op) {
    case BinOp::kShl:
    case BinOp::kLshr:
      width = a->width;  // shift amount may be any width
      break;
    case BinOp::kEq:
    case BinOp::kNe:
    case BinOp::kUlt:
    case BinOp::kUle:
    case BinOp::kSlt:
    case BinOp::kSle:
      if (a->width != b->width) fail("comparison width mismatch");
      width = 1;
      break;
    default:
      if (a->width != b->width)
        fail(std::string("binary ") + bin_op_name(op) + " width mismatch: " +
             std::to_string(a->width) + " vs " + std::to_string(b->width));
      width = a->width;
  }
  Expr e;
  e.kind = ExprKind::kBinary;
  e.width = width;
  e.bop = op;
  e.args = {std::move(a), std::move(b)};
  if (all_const(e.args)) return constant(fold_node(e));
  return make(std::move(e));
}

ExprPtr unary(UnOp op, ExprPtr a) {
  if (!a) fail("null operand");
  Expr e;
  e.kind = ExprKind::kUnary;
  e.uop = op;
  e.width = (op == UnOp::kRedOr || op == UnOp::kRedAnd || op == UnOp::kRedXor)
                ? 1
                : a->width;
  e.args = {std::move(a)};
  if (all_const(e.args)) return constant(fold_node(e));
  return make(std::move(e));
}

ExprPtr slice(ExprPtr a, unsigned hi, unsigned lo) {
  if (!a) fail("null operand");
  if (hi >= a->width || lo > hi) fail("slice out of range");
  if (lo == 0 && hi == a->width - 1) return a;
  Expr e;
  e.kind = ExprKind::kSlice;
  e.width = hi - lo + 1;
  e.lo = lo;
  e.args = {std::move(a)};
  if (all_const(e.args)) return constant(fold_node(e));
  return make(std::move(e));
}

ExprPtr concat(std::vector<ExprPtr> parts) {
  if (parts.empty()) fail("empty concat");
  if (parts.size() == 1) return parts[0];
  unsigned width = 0;
  for (const auto& p : parts) {
    if (!p) fail("null concat part");
    width += p->width;
  }
  Expr e;
  e.kind = ExprKind::kConcat;
  e.width = width;
  e.args = std::move(parts);
  if (all_const(e.args)) return constant(fold_node(e));
  return make(std::move(e));
}

ExprPtr cond(ExprPtr c, ExprPtr t, ExprPtr e_) {
  if (!c || !t || !e_) fail("null cond operand");
  if (c->width != 1) fail("condition must be 1 bit");
  if (t->width != e_->width) fail("cond branch width mismatch");
  if (c->kind == ExprKind::kConst) return c->value.bit(0) ? t : e_;
  if (t == e_) return t;
  Expr e;
  e.kind = ExprKind::kCond;
  e.width = t->width;
  e.args = {std::move(c), std::move(t), std::move(e_)};
  return make(std::move(e));
}

ExprPtr zext(ExprPtr a, unsigned width) {
  if (!a) fail("null operand");
  if (width == a->width) return a;
  if (width < a->width) fail("zext narrows");
  Expr e;
  e.kind = ExprKind::kZExt;
  e.width = width;
  e.args = {std::move(a)};
  if (all_const(e.args)) return constant(fold_node(e));
  return make(std::move(e));
}

ExprPtr sext(ExprPtr a, unsigned width) {
  if (!a) fail("null operand");
  if (width == a->width) return a;
  if (width < a->width) fail("sext narrows");
  Expr e;
  e.kind = ExprKind::kSExt;
  e.width = width;
  e.args = {std::move(a)};
  if (all_const(e.args)) return constant(fold_node(e));
  return make(std::move(e));
}

StmtPtr assign_member(std::string name, ExprPtr value) {
  if (!value) fail("null assignment value");
  Stmt s;
  s.kind = StmtKind::kAssign;
  s.target_is_member = true;
  s.target = std::move(name);
  s.expr = std::move(value);
  return std::make_shared<const Stmt>(std::move(s));
}

StmtPtr assign_local(std::string name, ExprPtr value) {
  if (!value) fail("null assignment value");
  Stmt s;
  s.kind = StmtKind::kAssign;
  s.target_is_member = false;
  s.target = std::move(name);
  s.expr = std::move(value);
  return std::make_shared<const Stmt>(std::move(s));
}

StmtPtr if_stmt(ExprPtr cond_, std::vector<StmtPtr> then_body,
                std::vector<StmtPtr> else_body) {
  if (!cond_) fail("null if condition");
  if (cond_->width != 1) fail("if condition must be 1 bit");
  Stmt s;
  s.kind = StmtKind::kIf;
  s.if_cond = std::move(cond_);
  s.then_body = std::move(then_body);
  s.else_body = std::move(else_body);
  return std::make_shared<const Stmt>(std::move(s));
}

StmtPtr return_stmt(ExprPtr value) {
  if (!value) fail("null return value");
  Stmt s;
  s.kind = StmtKind::kReturn;
  s.ret = std::move(value);
  return std::make_shared<const Stmt>(std::move(s));
}

ExprPtr substitute(const ExprPtr& e, const Env& env) {
  if (!e) fail("substitute on null expr");
  switch (e->kind) {
    case ExprKind::kConst:
      return e;
    case ExprKind::kMemberRef: {
      const auto it = env.members.find(e->name);
      if (it == env.members.end())
        throw std::logic_error("meta: unbound member '" + e->name + "'");
      if (it->second->width != e->width)
        throw std::logic_error("meta: member '" + e->name + "' width mismatch");
      return it->second;
    }
    case ExprKind::kParamRef: {
      const auto it = env.params.find(e->name);
      if (it == env.params.end())
        throw std::logic_error("meta: unbound parameter '" + e->name + "'");
      if (it->second->width != e->width)
        throw std::logic_error("meta: param '" + e->name + "' width mismatch");
      return it->second;
    }
    case ExprKind::kLocalRef: {
      const auto it = env.locals.find(e->name);
      if (it == env.locals.end())
        throw std::logic_error("meta: unbound local '" + e->name + "'");
      if (it->second->width != e->width)
        throw std::logic_error("meta: local '" + e->name + "' width mismatch");
      return it->second;
    }
    default:
      break;
  }
  // Rebuild through the checked constructors (they fold constants and keep
  // simplifications like cond(c,x,x) == x).
  std::vector<ExprPtr> args;
  args.reserve(e->args.size());
  bool changed = false;
  for (const auto& a : e->args) {
    args.push_back(substitute(a, env));
    changed |= (args.back() != a);
  }
  if (!changed) return e;
  switch (e->kind) {
    case ExprKind::kBinary: return binary(e->bop, args[0], args[1]);
    case ExprKind::kUnary: return unary(e->uop, args[0]);
    case ExprKind::kSlice: return slice(args[0], e->lo + e->width - 1, e->lo);
    case ExprKind::kConcat: return concat(std::move(args));
    case ExprKind::kCond: return cond(args[0], args[1], args[2]);
    case ExprKind::kZExt: return zext(args[0], e->width);
    case ExprKind::kSExt: return sext(args[0], e->width);
    default:
      throw std::logic_error("meta: unexpected expr kind in substitute");
  }
}

ExprPtr exec_stmts(const std::vector<StmtPtr>& body, Env& env) {
  ExprPtr returned;
  for (const StmtPtr& s : body) {
    if (returned)
      throw std::logic_error("meta: statement after return");
    switch (s->kind) {
      case StmtKind::kAssign: {
        ExprPtr v = substitute(s->expr, env);
        auto& table = s->target_is_member ? env.members : env.locals;
        const auto it = table.find(s->target);
        if (it != table.end() && it->second->width != v->width)
          throw std::logic_error("meta: assignment width mismatch on '" +
                                 s->target + "'");
        if (s->target_is_member && it == table.end())
          throw std::logic_error("meta: assignment to unknown member '" +
                                 s->target + "'");
        table[s->target] = std::move(v);
        break;
      }
      case StmtKind::kIf: {
        const ExprPtr c = substitute(s->if_cond, env);
        if (c->kind == ExprKind::kConst) {
          const auto& taken = c->value.bit(0) ? s->then_body : s->else_body;
          ExprPtr r = exec_stmts(taken, env);
          if (r) returned = r;
          break;
        }
        Env then_env = env;
        Env else_env = env;
        const ExprPtr rt = exec_stmts(s->then_body, then_env);
        const ExprPtr re = exec_stmts(s->else_body, else_env);
        if ((rt == nullptr) != (re == nullptr))
          throw std::logic_error(
              "meta: return on one branch of a data-dependent if");
        auto merge = [&](std::map<std::string, ExprPtr>& out,
                         const std::map<std::string, ExprPtr>& t,
                         const std::map<std::string, ExprPtr>& e) {
          for (const auto& [name, tv] : t) {
            const auto ei = e.find(name);
            if (ei != e.end()) {
              out[name] = cond(c, tv, ei->second);
            } else {
              // Declared only on the then-path: visible afterwards only if
              // it already existed (locals introduced in a branch stay
              // branch-local).
              if (out.count(name)) out[name] = cond(c, tv, out[name]);
            }
          }
          for (const auto& [name, ev] : e) {
            if (t.count(name)) continue;  // handled above
            if (out.count(name)) out[name] = cond(c, out[name], ev);
          }
        };
        merge(env.members, then_env.members, else_env.members);
        merge(env.locals, then_env.locals, else_env.locals);
        // Locals first introduced in both branches with equal widths.
        for (const auto& [name, tv] : then_env.locals) {
          if (env.locals.count(name)) continue;
          const auto ei = else_env.locals.find(name);
          if (ei != else_env.locals.end() && ei->second->width == tv->width)
            env.locals[name] = cond(c, tv, ei->second);
        }
        if (rt) returned = cond(c, rt, re);
        break;
      }
      case StmtKind::kReturn:
        returned = substitute(s->ret, env);
        break;
    }
  }
  return returned;
}

bool is_const(const ExprPtr& e) { return e && e->kind == ExprKind::kConst; }

Bits eval_const(const ExprPtr& e) {
  if (!e) throw std::logic_error("meta: eval_const on null");
  if (e->kind != ExprKind::kConst)
    throw std::logic_error("meta: expression is not constant: " +
                           to_string(e));
  return e->value;
}

std::string to_string(const ExprPtr& e) {
  if (!e) return "<null>";
  std::ostringstream os;
  switch (e->kind) {
    case ExprKind::kConst:
      os << e->value.to_hex_string();
      break;
    case ExprKind::kMemberRef:
      os << "this." << e->name;
      break;
    case ExprKind::kParamRef:
    case ExprKind::kLocalRef:
      os << e->name;
      break;
    case ExprKind::kBinary:
      os << "(" << to_string(e->args[0]) << " " << bin_op_name(e->bop) << " "
         << to_string(e->args[1]) << ")";
      break;
    case ExprKind::kUnary:
      os << un_op_name(e->uop) << "(" << to_string(e->args[0]) << ")";
      break;
    case ExprKind::kSlice:
      os << to_string(e->args[0]) << ".range(" << (e->lo + e->width - 1)
         << ", " << e->lo << ")";
      break;
    case ExprKind::kConcat: {
      os << "(";
      for (std::size_t i = 0; i < e->args.size(); ++i) {
        if (i) os << ", ";
        os << to_string(e->args[i]);
      }
      os << ")";
      break;
    }
    case ExprKind::kCond:
      os << "(" << to_string(e->args[0]) << " ? " << to_string(e->args[1])
         << " : " << to_string(e->args[2]) << ")";
      break;
    case ExprKind::kZExt:
      os << "zext<" << e->width << ">(" << to_string(e->args[0]) << ")";
      break;
    case ExprKind::kSExt:
      os << "sext<" << e->width << ">(" << to_string(e->args[0]) << ")";
      break;
  }
  return os.str();
}

}  // namespace osss::meta
