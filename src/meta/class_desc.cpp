#include "meta/class_desc.hpp"

#include <stdexcept>

namespace osss::meta {

namespace {
[[noreturn]] void bad(const std::string& cls, const std::string& msg) {
  throw std::logic_error("meta::ClassDesc " + cls + ": " + msg);
}
}  // namespace

void ClassDesc::add_member(std::string name, unsigned width) {
  if (width == 0) bad(name_, "zero-width member " + name);
  for (const Member& m : all_members()) {
    if (m.name == name) bad(name_, "duplicate member " + name);
  }
  members_.push_back(Member{std::move(name), width});
}

void ClassDesc::add_method(MethodDesc m) {
  for (const MethodDesc& existing : methods_) {
    if (existing.name == m.name) bad(name_, "duplicate method " + m.name);
  }
  methods_.push_back(std::move(m));
}

std::vector<Member> ClassDesc::all_members() const {
  std::vector<Member> out;
  if (base_) out = base_->all_members();
  out.insert(out.end(), members_.begin(), members_.end());
  return out;
}

unsigned ClassDesc::data_width() const {
  unsigned w = base_ ? base_->data_width() : 0;
  for (const Member& m : members_) w += m.width;
  return w;
}

unsigned ClassDesc::member_offset(const std::string& member) const {
  unsigned offset = 0;
  for (const Member& m : all_members()) {
    if (m.name == member) return offset;
    offset += m.width;
  }
  bad(name_, "unknown member " + member);
}

unsigned ClassDesc::member_width(const std::string& member) const {
  for (const Member& m : all_members()) {
    if (m.name == member) return m.width;
  }
  bad(name_, "unknown member " + member);
}

const MethodDesc* ClassDesc::find_method(const std::string& name) const {
  for (const MethodDesc& m : methods_) {
    if (m.name == name) return &m;
  }
  return base_ ? base_->find_method(name) : nullptr;
}

bool ClassDesc::derives_from(const ClassDesc& ancestor) const {
  for (const ClassDesc* c = this; c != nullptr; c = c->base()) {
    if (c == &ancestor) return true;
    // Name-based identity is also accepted: template instantiation caching
    // can produce distinct but identical descriptor objects.
    if (c->name() == ancestor.name() &&
        c->data_width() == ancestor.data_width())
      return true;
  }
  return false;
}

Env ClassDesc::member_env(const ExprPtr& this_expr) const {
  if (this_expr->width != data_width())
    bad(name_, "member_env width mismatch");
  Env env;
  unsigned offset = 0;
  for (const Member& m : all_members()) {
    env.members[m.name] = slice(this_expr, offset + m.width - 1, offset);
    offset += m.width;
  }
  return env;
}

ExprPtr ClassDesc::pack_members(const Env& env) const {
  std::vector<ExprPtr> parts;  // most significant first
  const auto members = all_members();
  for (auto it = members.rbegin(); it != members.rend(); ++it) {
    const auto found = env.members.find(it->name);
    if (found == env.members.end())
      bad(name_, "pack_members: missing member " + it->name);
    if (found->second->width != it->width)
      bad(name_, "pack_members: width mismatch on " + it->name);
    parts.push_back(found->second);
  }
  return concat(std::move(parts));
}

Bits ClassDesc::initial_value() const {
  const MethodDesc* ctor = find_method("__ctor__");
  if (ctor == nullptr) return Bits(data_width());
  const CallResult r = call("__ctor__", Bits(data_width()), {});
  return r.state;
}

ClassDesc::CallResult ClassDesc::call(const std::string& method,
                                      const Bits& state,
                                      const std::vector<Bits>& args) const {
  const MethodDesc* m = find_method(method);
  if (m == nullptr) bad(name_, "no method " + method);
  if (state.width() != data_width()) bad(name_, "state width mismatch");
  if (args.size() != m->params.size())
    bad(name_, "argument count mismatch on " + method);
  Env env = member_env(constant(state));
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i].width() != m->params[i].width)
      bad(name_, "argument width mismatch on " + method + "/" +
                     m->params[i].name);
    env.params[m->params[i].name] = constant(args[i]);
  }
  const ExprPtr ret = exec_stmts(m->body, env);
  CallResult out;
  out.state = eval_const(pack_members(env));
  if (m->return_width != 0) {
    if (!ret) bad(name_, "method " + method + " fell off without return");
    if (ret->width != m->return_width)
      bad(name_, "return width mismatch on " + method);
    out.ret = eval_const(ret);
  }
  return out;
}

ClassPtr ClassTemplate::instantiate(
    const std::vector<std::uint64_t>& params) const {
  const auto it = cache_.find(params);
  if (it != cache_.end()) return it->second;
  ClassPtr desc = std::make_shared<const ClassDesc>(gen_(params));
  cache_.emplace(params, desc);
  return desc;
}

}  // namespace osss::meta
