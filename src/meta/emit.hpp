// emit.hpp — expression-tree to RTL emission.
//
// The final step of every OSSS resolution path: a (symbolically executed)
// expression tree becomes RTL nodes in an rtl::Builder.  References must be
// bound to wires first; emission is memoized per tree node so shared
// subtrees emit shared logic.

#pragma once

#include <unordered_map>

#include "meta/expr.hpp"
#include "rtl/builder.hpp"

namespace osss::meta {

class RtlEmitter {
public:
  explicit RtlEmitter(rtl::Builder& b) : b_(b) {}

  void bind_param(const std::string& name, rtl::Wire w) { params_[name] = w; }
  void bind_local(const std::string& name, rtl::Wire w) { locals_[name] = w; }
  void bind_member(const std::string& name, rtl::Wire w) {
    members_[name] = w;
  }

  /// Emit (or reuse) the wire computing `e`.
  rtl::Wire emit(const ExprPtr& e);

  /// Pre-bind a subtree to an existing wire (resource binding: a shared
  /// functional unit's output replaces the operation node).
  void seed(const ExprPtr& e, rtl::Wire w) {
    if (!e || e->width != w.width)
      throw std::logic_error("RtlEmitter: bad seed");
    cache_[e.get()] = w;
  }

  rtl::Builder& builder() noexcept { return b_; }

private:
  rtl::Builder& b_;
  std::unordered_map<const Expr*, rtl::Wire> cache_;
  std::unordered_map<std::string, rtl::Wire> params_;
  std::unordered_map<std::string, rtl::Wire> locals_;
  std::unordered_map<std::string, rtl::Wire> members_;

  rtl::Wire compute(const ExprPtr& e);
};

}  // namespace osss::meta
