// trace.hpp — VCD waveform tracing (sc_trace analogue).
//
// The paper recommends implementing `sc_trace` and `operator<<` for every
// OSSS class so object contents can be dumped at any time (its Figs. 9/10).
// Here any signal whose payload is bool, an unsigned integer, a
// BitVector<W>, or a type providing `Bits to_bits() const` can be traced.
// The latter is how whole OSSS objects appear in the waveform.

#pragma once

#include <concepts>
#include <fstream>
#include <functional>
#include <string>
#include <vector>

#include "sysc/bits.hpp"
#include "sysc/bitvector.hpp"
#include "sysc/module.hpp"

namespace osss::sysc {

/// Payload types convertible to Bits for waveform dumping.
template <class T>
concept HasToBits = requires(const T& t) {
  { t.to_bits() } -> std::same_as<Bits>;
};

/// Writes a Value Change Dump file.  Register signals before the first
/// `run_for`; the file is finalized in the destructor.
class TraceFile {
public:
  /// Opens `path` for writing and attaches to the context's kernel so a
  /// sample is taken after every converged timestep.
  TraceFile(Context& ctx, std::string path);
  ~TraceFile();

  TraceFile(const TraceFile&) = delete;
  TraceFile& operator=(const TraceFile&) = delete;

  /// Trace any supported signal payload under `name`.
  template <class T>
  void trace(const Signal<T>& sig, const std::string& name) {
    if constexpr (std::same_as<T, bool>) {
      add_entry(name, 1, [&sig] { return Bits(1, sig.read() ? 1u : 0u); });
    } else if constexpr (std::unsigned_integral<T>) {
      add_entry(name, 8 * sizeof(T), [&sig] {
        return Bits(8 * sizeof(T), static_cast<std::uint64_t>(sig.read()));
      });
    } else if constexpr (HasToBits<T>) {
      add_entry(name, sig.read().to_bits().width(),
                [&sig] { return sig.read().to_bits(); });
    } else {
      static_assert(HasToBits<T>, "type is not traceable");
    }
  }

  template <unsigned W>
  void trace(const Signal<BitVector<W>>& sig, const std::string& name) {
    add_entry(name, W, [&sig] { return sig.read().to_bits(); });
  }

  /// Trace an arbitrary value through a getter (e.g. internal object state).
  void trace_fn(const std::string& name, unsigned width,
                std::function<Bits()> getter) {
    add_entry(name, width, std::move(getter));
  }

  /// Number of value changes written so far (observable for tests).
  std::uint64_t change_count() const noexcept { return changes_; }

private:
  struct Entry {
    std::string name;
    unsigned width;
    std::function<Bits()> get;
    std::string id;
    Bits last;
    bool first = true;
  };

  std::ofstream out_;
  std::vector<Entry> entries_;
  bool header_written_ = false;
  std::uint64_t changes_ = 0;
  Time last_time_ = 0;
  bool time_written_ = false;

  void add_entry(const std::string& name, unsigned width,
                 std::function<Bits()> getter);
  void sample(Time t);
  void write_header();
  static std::string make_id(std::size_t index);
  static std::string value_text(const Entry& e, const Bits& v);
};

}  // namespace osss::sysc
