// module.hpp — simulation context, module hierarchy, clock generator.
//
// `Context` owns the kernel and every process; modules register themselves
// into a named hierarchy.  This replaces SystemC's global simulation
// context so that independent simulations coexist in one test binary.

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "sysc/kernel.hpp"
#include "sysc/process.hpp"
#include "sysc/signal.hpp"

namespace osss::sysc {

/// Owns the kernel, the process list, and the module name registry for one
/// simulation.
class Context {
public:
  Context() = default;
  Context(const Context&) = delete;
  Context& operator=(const Context&) = delete;

  Kernel& kernel() noexcept { return kernel_; }
  Time now() const noexcept { return kernel_.now(); }

  void run_for(Time duration) { kernel_.run_for(duration); }

  /// Create a clocked thread resumed on `clk` rising edges.
  CThreadProcess& create_cthread(std::string name, Signal<bool>& clk,
                                 std::function<Behavior()> factory) {
    auto proc =
        std::make_unique<CThreadProcess>(std::move(name), std::move(factory));
    CThreadProcess& ref = *proc;
    clk.on_posedge(ref);
    kernel_.register_initial(ref);
    processes_.push_back(std::move(proc));
    return ref;
  }

  /// Create a method process with an explicit sensitivity list.
  MethodProcess& create_method(std::string name, std::function<void()> fn,
                               std::initializer_list<SignalBase*> sensitivity) {
    auto proc = std::make_unique<MethodProcess>(std::move(name), std::move(fn));
    MethodProcess& ref = *proc;
    for (SignalBase* s : sensitivity) s->on_change(ref);
    kernel_.register_initial(ref);
    processes_.push_back(std::move(proc));
    return ref;
  }

private:
  Kernel kernel_;
  std::vector<std::unique_ptr<Process>> processes_;
};

inline Kernel& kernel_of(Context& ctx) { return ctx.kernel(); }

/// Base class for hardware modules (SC_MODULE analogue).  Modules form a
/// dot-separated name hierarchy used by tracing and diagnostics.
class Module {
public:
  Module(Context& ctx, std::string name)
      : ctx_(ctx), full_name_(std::move(name)) {}
  Module(Module& parent, std::string name)
      : ctx_(parent.ctx_), full_name_(parent.full_name_ + "." + name) {}
  virtual ~Module() = default;

  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  Context& context() noexcept { return ctx_; }
  const std::string& full_name() const noexcept { return full_name_; }

protected:
  /// SC_CTHREAD analogue: register `body` clocked on `clk` with synchronous
  /// reset `reset` (active high), i.e. `watching(reset.delayed() == true)`.
  void cthread(const std::string& name, Signal<bool>& clk,
               const Signal<bool>& reset, std::function<Behavior()> body) {
    auto& p = ctx_.create_cthread(full_name_ + "." + name, clk,
                                  std::move(body));
    p.set_reset(reset);
  }

  /// SC_CTHREAD without reset.
  void cthread(const std::string& name, Signal<bool>& clk,
               std::function<Behavior()> body) {
    ctx_.create_cthread(full_name_ + "." + name, clk, std::move(body));
  }

  /// SC_METHOD analogue with explicit sensitivity.
  void method(const std::string& name, std::function<void()> fn,
              std::initializer_list<SignalBase*> sensitivity) {
    ctx_.create_method(full_name_ + "." + name, std::move(fn), sensitivity);
  }

private:
  Context& ctx_;
  std::string full_name_;
};

/// Free-running clock.  First rising edge at period/2, 50% duty cycle.
class Clock {
public:
  Clock(Context& ctx, std::string name, Time period_ps)
      : signal_(ctx, name, false), period_(period_ps) {
    schedule_toggle(ctx.kernel(), period_ps / 2, true);
  }

  Signal<bool>& signal() noexcept { return signal_; }
  operator Signal<bool>&() noexcept { return signal_; }  // NOLINT
  Time period() const noexcept { return period_; }

private:
  Signal<bool> signal_;
  Time period_;

  void schedule_toggle(Kernel& k, Time at, bool value) {
    k.schedule(at, [this, &k, at, value] {
      signal_.write(value);
      schedule_toggle(k, at + period_ / 2, !value);
    });
  }
};

}  // namespace osss::sysc
