// bits.hpp — arbitrary-width, width-checked bit vector (dynamic width).
//
// `Bits` is the workhorse value type of the synthesis stack (RTL and gate
// simulation, constant folding, equivalence checking).  It models the value
// of a hardware bus: a width fixed at construction plus that many bits of
// two's-complement payload.  All binary operations require equal operand
// widths and wrap to the operand width, mirroring hardware semantics; any
// widening or narrowing must be spelled out with zext/sext/trunc, exactly as
// a synthesizable description would.
//
// For the fast, fixed-width simulation datapath see bitvector.hpp.

#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace osss::sysc {

/// Dynamic-width bit vector with hardware (wrapping, width-checked) semantics.
///
/// Invariant: bits above `width()` in the top storage word are always zero.
class Bits {
public:
  /// Zero-width vector (the "no value" state; most operations reject it).
  Bits() = default;

  /// All-zero vector of `width` bits.
  explicit Bits(unsigned width);

  /// Vector of `width` bits holding `value` truncated to that width.
  Bits(unsigned width, std::uint64_t value);

  /// Parse "0b1010", "0x1f" or a plain decimal string into `width` bits.
  /// Throws std::invalid_argument on malformed input.
  static Bits parse(unsigned width, std::string_view text);

  /// Vector of `width` bits with every bit set.
  static Bits ones(unsigned width);

  unsigned width() const noexcept { return width_; }
  bool empty() const noexcept { return width_ == 0; }

  /// Value of bit `i` (0 = LSB).  Precondition: i < width().
  bool bit(unsigned i) const;

  /// Set bit `i` (0 = LSB) to `v`.  Precondition: i < width().
  void set_bit(unsigned i, bool v);

  /// Low 64 bits of the payload (well-defined for any width).
  std::uint64_t to_u64() const noexcept;

  /// Storage word `i` (bits [64*i, 64*i+63]); zero beyond the top word.
  std::uint64_t word(unsigned i) const noexcept {
    return i < words_.size() ? words_[i] : 0;
  }

  /// Payload as signed value; requires width() <= 64.
  std::int64_t to_i64() const;

  bool is_zero() const noexcept;
  bool is_ones() const noexcept;

  /// Most significant bit (the sign bit under two's complement).
  bool msb() const { return bit(width_ - 1); }

  /// Number of set bits.
  unsigned popcount() const noexcept;

  // --- bitwise (equal widths required) ---------------------------------
  friend Bits operator&(const Bits& a, const Bits& b);
  friend Bits operator|(const Bits& a, const Bits& b);
  friend Bits operator^(const Bits& a, const Bits& b);
  Bits operator~() const;

  // --- arithmetic (equal widths; result wraps to operand width) --------
  friend Bits operator+(const Bits& a, const Bits& b);
  friend Bits operator-(const Bits& a, const Bits& b);
  friend Bits operator*(const Bits& a, const Bits& b);
  Bits negate() const;

  /// Unsigned division / remainder (testbench math; not synthesized).
  /// Division by zero yields all-ones / the dividend, matching common HDL
  /// simulator conventions.
  friend Bits udiv(const Bits& a, const Bits& b);
  friend Bits urem(const Bits& a, const Bits& b);

  // --- shifts (shift amount is a plain integer; result keeps width) ----
  Bits shl(unsigned amount) const;
  Bits lshr(unsigned amount) const;
  Bits ashr(unsigned amount) const;

  // --- comparisons ------------------------------------------------------
  bool operator==(const Bits& other) const;
  bool operator!=(const Bits& other) const { return !(*this == other); }
  static bool ult(const Bits& a, const Bits& b);
  static bool ule(const Bits& a, const Bits& b);
  static bool slt(const Bits& a, const Bits& b);
  static bool sle(const Bits& a, const Bits& b);

  // --- structure --------------------------------------------------------
  /// Bits [hi..lo] inclusive as a new (hi-lo+1)-wide vector.
  Bits slice(unsigned hi, unsigned lo) const;

  /// {hi, lo} concatenation: `hi` occupies the upper bits.
  static Bits concat(const Bits& hi, const Bits& lo);

  /// Overwrite bits [lo, lo + value.width()) with `value` (word-at-a-time;
  /// the linear-time building block for multi-part concatenation).
  /// Requires lo + value.width() <= width().
  void set_range(unsigned lo, const Bits& value);

  Bits zext(unsigned new_width) const;
  Bits sext(unsigned new_width) const;
  Bits trunc(unsigned new_width) const;

  /// Zero- or sign-free resize: zext when growing, trunc when shrinking.
  Bits resize(unsigned new_width) const;

  // --- text -------------------------------------------------------------
  std::string to_bin_string() const;  ///< e.g. "0b0101"
  std::string to_hex_string() const;  ///< e.g. "0x5"

  std::size_t hash() const noexcept;

private:
  static constexpr unsigned kWordBits = 64;
  unsigned width_ = 0;
  std::vector<std::uint64_t> words_;

  static unsigned word_count(unsigned width) {
    return (width + kWordBits - 1) / kWordBits;
  }
  void mask_top() noexcept;
  static void require_same_width(const Bits& a, const Bits& b,
                                 const char* op);
};

/// Hash functor so Bits can key unordered containers (constant pools,
/// structural hashing in the gate optimizer).
struct BitsHash {
  std::size_t operator()(const Bits& b) const noexcept { return b.hash(); }
};

}  // namespace osss::sysc
