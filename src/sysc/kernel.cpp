#include "sysc/kernel.hpp"

#include <algorithm>

namespace osss::sysc {

SignalBase::SignalBase(Kernel& kernel, std::string name)
    : kernel_(kernel), name_(std::move(name)) {}

void SignalBase::notify_change() {
  for (Process* p : change_list_) kernel_.make_runnable(*p);
}

void SignalBase::notify_posedge() {
  for (Process* p : pos_list_) kernel_.make_runnable(*p);
}

void Kernel::schedule(Time at, std::function<void()> fn) {
  timed_.push_back(TimedEvent{at, sequence_++, std::move(fn)});
  std::push_heap(timed_.begin(), timed_.end(), TimedEventLater{});
}

void Kernel::request_update(SignalBase& s) {
  if (!s.update_pending_) {
    s.update_pending_ = true;
    update_queue_.push_back(&s);
  }
}

void Kernel::make_runnable(Process& p) {
  if (!p.queued_) {
    p.queued_ = true;
    runnable_.push_back(&p);
  }
}

void Kernel::initialize() {
  initialized_ = true;
  // SystemC runs every process once at elaboration end; clocked threads
  // execute their reset preamble up to the first wait().
  for (Process* p : initial_) make_runnable(*p);
  delta_loop();
  fire_hooks();
}

void Kernel::delta_loop() {
  for (;;) {
    // Update phase: commit pending signal values, collecting newly
    // sensitive processes into the runnable queue.
    std::vector<SignalBase*> updates;
    updates.swap(update_queue_);
    for (SignalBase* s : updates) {
      s->update_pending_ = false;
      s->apply_update();
    }
    if (runnable_.empty()) {
      if (update_queue_.empty()) return;  // converged
      continue;  // updates produced no runnables but cascaded writes
    }
    ++delta_count_;
    // Evaluate phase: run everything made runnable by the update phase.
    std::deque<Process*> batch;
    batch.swap(runnable_);
    for (Process* p : batch) {
      p->queued_ = false;
      p->execute();
    }
  }
}

void Kernel::fire_hooks() {
  for (const auto& hook : hooks_) hook(now_);
}

void Kernel::run_until(Time end) {
  if (!initialized_) initialize();
  // Time never rewinds: a caller passing end < now() gets the settle
  // behaviour below but keeps the current timestamp.
  if (end < now_) end = now_;
  // Settle any writes made from outside process context (testbench code
  // between run calls).
  if (!update_queue_.empty() || !runnable_.empty()) {
    delta_loop();
    fire_hooks();
  }
  while (!timed_.empty()) {
    const Time t = timed_.front().at;
    if (t > end) break;
    now_ = t;
    // Run all events scheduled for this instant before entering the delta
    // loop, so simultaneous clock edges are seen together.
    while (!timed_.empty() && timed_.front().at == t) {
      std::pop_heap(timed_.begin(), timed_.end(), TimedEventLater{});
      auto fn = std::move(timed_.back().fn);
      timed_.pop_back();
      fn();
    }
    delta_loop();
    fire_hooks();
  }
  now_ = end;
}

}  // namespace osss::sysc
