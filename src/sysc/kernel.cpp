#include "sysc/kernel.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <stdexcept>

namespace osss::sysc {

SignalBase::SignalBase(Kernel& kernel, std::string name)
    : kernel_(kernel), name_(std::move(name)) {}

void SignalBase::notify_change() {
  for (Process* p : change_list_) kernel_.make_runnable(*p);
}

void SignalBase::notify_posedge() {
  for (Process* p : pos_list_) kernel_.make_runnable(*p);
}

void SignalBase::race_note_write(bool same_value) {
  Process* w = kernel_.current_process();
  if (w == nullptr) {
    // Testbench writes between run calls have no process identity; they
    // also cannot race (nothing else executes concurrently with them).
    last_writer_ = nullptr;
    return;
  }
  // RACE-002: distinct driver processes over the signal's lifetime.
  if (std::find(drivers_.begin(), drivers_.end(), w) == drivers_.end()) {
    drivers_.push_back(w);
    if (drivers_.size() == 2 && !race_md_reported_) {
      race_md_reported_ = true;
      lint::Diagnostic d;
      d.rule = "RACE-002";
      d.severity = lint::Severity::kWarning;
      d.source = "kernel";
      d.object = name_;
      d.message = "signal is driven by multiple processes over its lifetime";
      d.note = "'" + drivers_[0]->name() + "' and '" + drivers_[1]->name() +
               "' both write it";
      kernel_.report_race(std::move(d));
    }
  }
  // RACE-001: a second process writes while another's write is still
  // pending in this delta.  Last write wins by queue order — scheduling
  // luck, so differing values are an error.
  if (update_pending_ && last_writer_ != nullptr && last_writer_ != w) {
    bool& reported =
        same_value ? race_ww_warn_reported_ : race_ww_error_reported_;
    if (!reported) {
      reported = true;
      lint::Diagnostic d;
      d.rule = "RACE-001";
      d.severity =
          same_value ? lint::Severity::kWarning : lint::Severity::kError;
      d.source = "kernel";
      d.object = name_;
      d.message = "processes '" + last_writer_->name() + "' and '" +
                  w->name() + "' write this signal in the same delta cycle";
      d.note = same_value
                   ? "both writes carry the same value (benign but fragile)"
                   : "the values differ; the surviving one is scheduling "
                     "order luck";
      kernel_.report_race(std::move(d));
    }
  }
  last_writer_ = w;
}

void SignalBase::race_note_read() const {
  if (race_rw_reported_ || !update_pending_) return;
  Process* r = kernel_.current_process();
  if (r == nullptr || last_writer_ == nullptr || last_writer_ == r) return;
  race_rw_reported_ = true;
  lint::Diagnostic d;
  d.rule = "RACE-003";
  d.severity = lint::Severity::kInfo;
  d.source = "kernel";
  d.object = name_;
  d.message = "process '" + r->name() + "' reads this signal while a write "
              "from '" + last_writer_->name() + "' is pending this delta";
  d.note = "deterministic under two-phase update (the read sees the old "
           "value), but evaluation-order sensitive in other kernels";
  kernel_.report_race(std::move(d));
}

Kernel::Kernel() {
  if (const char* e = std::getenv("OSSS_RACE_CHECK");
      e != nullptr && *e != '\0' && std::strcmp(e, "0") != 0) {
    race_check_ = true;
    race_strict_ = true;
  }
}

void Kernel::schedule(Time at, std::function<void()> fn) {
  timed_.push_back(TimedEvent{at, sequence_++, std::move(fn)});
  std::push_heap(timed_.begin(), timed_.end(), TimedEventLater{});
}

void Kernel::request_update(SignalBase& s) {
  if (!s.update_pending_) {
    s.update_pending_ = true;
    update_queue_.push_back(&s);
  }
}

void Kernel::make_runnable(Process& p) {
  if (!p.queued_) {
    p.queued_ = true;
    runnable_.push_back(&p);
  }
}

void Kernel::initialize() {
  initialized_ = true;
  // SystemC runs every process once at elaboration end; clocked threads
  // execute their reset preamble up to the first wait().
  for (Process* p : initial_) make_runnable(*p);
  delta_loop();
  fire_hooks();
}

void Kernel::delta_loop() {
  for (;;) {
    // Update phase: commit pending signal values, collecting newly
    // sensitive processes into the runnable queue.
    std::vector<SignalBase*> updates;
    updates.swap(update_queue_);
    for (SignalBase* s : updates) {
      s->update_pending_ = false;
      s->apply_update();
    }
    if (runnable_.empty()) {
      if (update_queue_.empty()) return;  // converged
      continue;  // updates produced no runnables but cascaded writes
    }
    ++delta_count_;
    // Evaluate phase: run everything made runnable by the update phase.
    std::deque<Process*> batch;
    batch.swap(runnable_);
    for (Process* p : batch) {
      p->queued_ = false;
      current_ = p;
      p->execute();
      current_ = nullptr;
    }
  }
}

void Kernel::fire_hooks() {
  for (const auto& hook : hooks_) hook(now_);
}

void Kernel::run_until(Time end) {
  if (!initialized_) initialize();
  // Time never rewinds: a caller passing end < now() gets the settle
  // behaviour below but keeps the current timestamp.
  if (end < now_) end = now_;
  // Settle any writes made from outside process context (testbench code
  // between run calls).
  if (!update_queue_.empty() || !runnable_.empty()) {
    delta_loop();
    fire_hooks();
  }
  while (!timed_.empty()) {
    const Time t = timed_.front().at;
    if (t > end) break;
    now_ = t;
    // Run all events scheduled for this instant before entering the delta
    // loop, so simultaneous clock edges are seen together.
    while (!timed_.empty() && timed_.front().at == t) {
      std::pop_heap(timed_.begin(), timed_.end(), TimedEventLater{});
      auto fn = std::move(timed_.back().fn);
      timed_.pop_back();
      fn();
    }
    delta_loop();
    fire_hooks();
  }
  now_ = end;
  // Strict (environment-enabled) mode behaves like a sanitizer: surface
  // error-severity races as a hard failure.  Explicit set_race_check users
  // inspect race_report() themselves.
  if (race_check_ && race_strict_ && !race_report_.clean()) {
    race_strict_ = false;  // throw once; the report stays inspectable
    throw std::logic_error("OSSS_RACE_CHECK: write-write race detected\n" +
                           race_report_.text());
  }
}

}  // namespace osss::sysc
