// bitvector.hpp — fixed-width bit vector for the simulation datapath.
//
// `BitVector<W>` plays the role of SystemC's `sc_bv<W>` / `sc_biguint<W>`
// in OSSS design code: a statically-sized, wrap-on-overflow unsigned value.
// It is the type that OSSS classes store their data members in and the type
// carried over signals.  Widths are part of the type, so mismatched
// assignments fail to compile rather than silently resize — the same safety
// the paper gets from the SystemC datatypes.

#pragma once

#include <array>
#include <cstdint>
#include <stdexcept>
#include <string>

#include "sysc/bits.hpp"

namespace osss::sysc {

template <unsigned W>
class BitVector {
  static_assert(W >= 1 && W <= 4096, "BitVector width out of range");

public:
  static constexpr unsigned kWidth = W;

  constexpr BitVector() : words_{} {}

  /// Construct from an integer, truncated to W bits.
  constexpr BitVector(std::uint64_t value) : words_{} {  // NOLINT(runtime/explicit)
    words_[0] = value;
    mask_top();
  }

  /// Conversion from the dynamic representation; widths must agree.
  static BitVector from_bits(const Bits& b) {
    if (b.width() != W) throw std::invalid_argument("BitVector width mismatch");
    BitVector out;
    for (unsigned i = 0; i < W; ++i) out.set_bit(i, b.bit(i));
    return out;
  }

  /// Conversion to the dynamic representation used by the synthesis stack.
  Bits to_bits() const {
    Bits out(W);
    for (unsigned i = 0; i < W; ++i) out.set_bit(i, bit(i));
    return out;
  }

  static constexpr unsigned width() { return W; }

  constexpr bool bit(unsigned i) const {
    return ((words_[i / 64] >> (i % 64)) & 1u) != 0;
  }
  constexpr void set_bit(unsigned i, bool v) {
    const std::uint64_t mask = 1ull << (i % 64);
    if (v)
      words_[i / 64] |= mask;
    else
      words_[i / 64] &= ~mask;
  }

  /// Low 64 bits of the payload.
  constexpr std::uint64_t to_u64() const { return words_[0]; }

  constexpr bool is_zero() const {
    for (const auto w : words_)
      if (w != 0) return false;
    return true;
  }

  constexpr bool msb() const { return bit(W - 1); }

  // --- bitwise ----------------------------------------------------------
  friend constexpr BitVector operator&(BitVector a, const BitVector& b) {
    for (unsigned i = 0; i < kWords; ++i) a.words_[i] &= b.words_[i];
    return a;
  }
  friend constexpr BitVector operator|(BitVector a, const BitVector& b) {
    for (unsigned i = 0; i < kWords; ++i) a.words_[i] |= b.words_[i];
    return a;
  }
  friend constexpr BitVector operator^(BitVector a, const BitVector& b) {
    for (unsigned i = 0; i < kWords; ++i) a.words_[i] ^= b.words_[i];
    return a;
  }
  constexpr BitVector operator~() const {
    BitVector out;
    for (unsigned i = 0; i < kWords; ++i) out.words_[i] = ~words_[i];
    out.mask_top();
    return out;
  }

  // --- arithmetic (wraps to W bits) --------------------------------------
  friend constexpr BitVector operator+(const BitVector& a, const BitVector& b) {
    BitVector out;
    unsigned __int128 carry = 0;
    for (unsigned i = 0; i < kWords; ++i) {
      const unsigned __int128 acc =
          static_cast<unsigned __int128>(a.words_[i]) + b.words_[i] + carry;
      out.words_[i] = static_cast<std::uint64_t>(acc);
      carry = acc >> 64;
    }
    out.mask_top();
    return out;
  }
  friend constexpr BitVector operator-(const BitVector& a, const BitVector& b) {
    return a + (~b + BitVector(1));
  }
  friend constexpr BitVector operator*(const BitVector& a, const BitVector& b) {
    BitVector out;
    for (unsigned i = 0; i < kWords; ++i) {
      unsigned __int128 carry = 0;
      for (unsigned j = 0; i + j < kWords; ++j) {
        const unsigned __int128 acc =
            static_cast<unsigned __int128>(a.words_[i]) * b.words_[j] +
            out.words_[i + j] + carry;
        out.words_[i + j] = static_cast<std::uint64_t>(acc);
        carry = acc >> 64;
      }
    }
    out.mask_top();
    return out;
  }

  // --- shifts -------------------------------------------------------------
  constexpr BitVector shl(unsigned amount) const {
    BitVector out;
    if (amount >= W) return out;
    for (unsigned i = W; i-- > amount;) out.set_bit(i, bit(i - amount));
    return out;
  }
  constexpr BitVector lshr(unsigned amount) const {
    BitVector out;
    if (amount >= W) return out;
    for (unsigned i = 0; i + amount < W; ++i) out.set_bit(i, bit(i + amount));
    return out;
  }

  // --- comparisons ----------------------------------------------------------
  friend constexpr bool operator==(const BitVector& a, const BitVector& b) {
    return a.words_ == b.words_;
  }
  friend constexpr bool operator!=(const BitVector& a, const BitVector& b) {
    return !(a == b);
  }
  friend constexpr bool operator<(const BitVector& a, const BitVector& b) {
    for (unsigned i = kWords; i-- > 0;) {
      if (a.words_[i] != b.words_[i]) return a.words_[i] < b.words_[i];
    }
    return false;
  }
  friend constexpr bool operator<=(const BitVector& a, const BitVector& b) {
    return !(b < a);
  }
  friend constexpr bool operator>(const BitVector& a, const BitVector& b) {
    return b < a;
  }
  friend constexpr bool operator>=(const BitVector& a, const BitVector& b) {
    return !(a < b);
  }

  /// Bits [Hi..Lo] inclusive as a narrower vector (compile-time checked).
  template <unsigned Hi, unsigned Lo>
  constexpr BitVector<Hi - Lo + 1> slice() const {
    static_assert(Hi < W && Lo <= Hi, "slice out of range");
    BitVector<Hi - Lo + 1> out;
    for (unsigned i = Lo; i <= Hi; ++i) out.set_bit(i - Lo, bit(i));
    return out;
  }

  /// Zero-extend or truncate to a new width.
  template <unsigned NW>
  constexpr BitVector<NW> resize() const {
    BitVector<NW> out;
    for (unsigned i = 0; i < (NW < W ? NW : W); ++i) out.set_bit(i, bit(i));
    return out;
  }

  std::string to_string() const { return to_bits().to_bin_string(); }

private:
  static constexpr unsigned kWords = (W + 63) / 64;
  std::array<std::uint64_t, kWords> words_;

  constexpr void mask_top() {
    if constexpr (W % 64 != 0) {
      words_[kWords - 1] &= (1ull << (W % 64)) - 1;
    }
  }

  template <unsigned>
  friend class BitVector;
};

/// {hi, lo} concatenation, hi in the upper bits.
template <unsigned WH, unsigned WL>
constexpr BitVector<WH + WL> concat(const BitVector<WH>& hi,
                                    const BitVector<WL>& lo) {
  BitVector<WH + WL> out;
  for (unsigned i = 0; i < WL; ++i) out.set_bit(i, lo.bit(i));
  for (unsigned i = 0; i < WH; ++i) out.set_bit(WL + i, hi.bit(i));
  return out;
}

}  // namespace osss::sysc
