#include "sysc/bits.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>

namespace osss::sysc {

namespace {

[[noreturn]] void fail(const std::string& msg) {
  throw std::invalid_argument("Bits: " + msg);
}

}  // namespace

Bits::Bits(unsigned width) : width_(width), words_(word_count(width), 0) {}

Bits::Bits(unsigned width, std::uint64_t value) : Bits(width) {
  if (width == 0) fail("zero-width value");
  words_[0] = value;
  mask_top();
}

Bits Bits::parse(unsigned width, std::string_view text) {
  if (text.empty()) fail("empty literal");
  Bits out(width);
  if (text.size() > 2 && text[0] == '0' && (text[1] == 'b' || text[1] == 'B')) {
    unsigned pos = 0;
    for (auto it = text.rbegin(); it != text.rend() - 2; ++it) {
      if (*it == '_') continue;
      if (*it != '0' && *it != '1') fail("bad binary digit");
      if (pos < width) out.set_bit(pos, *it == '1');
      ++pos;
    }
    return out;
  }
  if (text.size() > 2 && text[0] == '0' && (text[1] == 'x' || text[1] == 'X')) {
    unsigned pos = 0;
    for (auto it = text.rbegin(); it != text.rend() - 2; ++it) {
      if (*it == '_') continue;
      const char c = *it;
      unsigned digit = 0;
      if (c >= '0' && c <= '9') digit = static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') digit = static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') digit = static_cast<unsigned>(c - 'A' + 10);
      else fail("bad hex digit");
      for (unsigned b = 0; b < 4; ++b) {
        if (pos + b < width) out.set_bit(pos + b, ((digit >> b) & 1u) != 0);
      }
      pos += 4;
    }
    return out;
  }
  // Decimal: repeated multiply-by-ten-and-add over the word array.
  for (const char c : text) {
    if (c == '_') continue;
    if (c < '0' || c > '9') fail("bad decimal digit");
    // out = out * 10 + digit
    std::uint64_t carry = static_cast<std::uint64_t>(c - '0');
    for (auto& w : out.words_) {
      const unsigned __int128 acc =
          static_cast<unsigned __int128>(w) * 10u + carry;
      w = static_cast<std::uint64_t>(acc);
      carry = static_cast<std::uint64_t>(acc >> 64);
    }
  }
  out.mask_top();
  return out;
}

Bits Bits::ones(unsigned width) {
  Bits out(width);
  std::fill(out.words_.begin(), out.words_.end(), ~0ull);
  out.mask_top();
  return out;
}

bool Bits::bit(unsigned i) const {
  if (i >= width_) fail("bit index out of range");
  return ((words_[i / kWordBits] >> (i % kWordBits)) & 1u) != 0;
}

void Bits::set_bit(unsigned i, bool v) {
  if (i >= width_) fail("bit index out of range");
  const std::uint64_t mask = 1ull << (i % kWordBits);
  if (v)
    words_[i / kWordBits] |= mask;
  else
    words_[i / kWordBits] &= ~mask;
}

std::uint64_t Bits::to_u64() const noexcept {
  return words_.empty() ? 0 : words_[0];
}

std::int64_t Bits::to_i64() const {
  if (width_ > 64) fail("to_i64 on width > 64");
  std::uint64_t v = to_u64();
  if (width_ < 64 && msb()) v |= ~((1ull << width_) - 1);  // sign extend
  return static_cast<std::int64_t>(v);
}

bool Bits::is_zero() const noexcept {
  return std::all_of(words_.begin(), words_.end(),
                     [](std::uint64_t w) { return w == 0; });
}

bool Bits::is_ones() const noexcept {
  if (width_ == 0) return false;
  return *this == ones(width_);
}

unsigned Bits::popcount() const noexcept {
  unsigned n = 0;
  for (const auto w : words_) n += static_cast<unsigned>(std::popcount(w));
  return n;
}

void Bits::mask_top() noexcept {
  if (width_ == 0) return;
  const unsigned rem = width_ % kWordBits;
  if (rem != 0) words_.back() &= (1ull << rem) - 1;
}

void Bits::require_same_width(const Bits& a, const Bits& b, const char* op) {
  if (a.width_ != b.width_)
    fail(std::string(op) + ": width mismatch " + std::to_string(a.width_) +
         " vs " + std::to_string(b.width_));
  if (a.width_ == 0) fail(std::string(op) + ": zero-width operands");
}

Bits operator&(const Bits& a, const Bits& b) {
  Bits::require_same_width(a, b, "and");
  Bits out(a.width_);
  for (std::size_t i = 0; i < out.words_.size(); ++i)
    out.words_[i] = a.words_[i] & b.words_[i];
  return out;
}

Bits operator|(const Bits& a, const Bits& b) {
  Bits::require_same_width(a, b, "or");
  Bits out(a.width_);
  for (std::size_t i = 0; i < out.words_.size(); ++i)
    out.words_[i] = a.words_[i] | b.words_[i];
  return out;
}

Bits operator^(const Bits& a, const Bits& b) {
  Bits::require_same_width(a, b, "xor");
  Bits out(a.width_);
  for (std::size_t i = 0; i < out.words_.size(); ++i)
    out.words_[i] = a.words_[i] ^ b.words_[i];
  return out;
}

Bits Bits::operator~() const {
  if (width_ == 0) fail("not on zero width");
  Bits out(width_);
  for (std::size_t i = 0; i < words_.size(); ++i) out.words_[i] = ~words_[i];
  out.mask_top();
  return out;
}

Bits operator+(const Bits& a, const Bits& b) {
  Bits::require_same_width(a, b, "add");
  Bits out(a.width_);
  unsigned __int128 carry = 0;
  for (std::size_t i = 0; i < out.words_.size(); ++i) {
    const unsigned __int128 acc = static_cast<unsigned __int128>(a.words_[i]) +
                                  b.words_[i] + carry;
    out.words_[i] = static_cast<std::uint64_t>(acc);
    carry = acc >> 64;
  }
  out.mask_top();
  return out;
}

Bits operator-(const Bits& a, const Bits& b) {
  Bits::require_same_width(a, b, "sub");
  return a + b.negate();
}

Bits Bits::negate() const {
  if (width_ == 0) fail("negate on zero width");
  return ~(*this) + Bits(width_, 1);
}

Bits operator*(const Bits& a, const Bits& b) {
  Bits::require_same_width(a, b, "mul");
  Bits out(a.width_);
  // Schoolbook over 64-bit words with 128-bit partials; result truncated
  // to operand width, so partials beyond the top word are dropped.
  const std::size_t n = out.words_.size();
  for (std::size_t i = 0; i < n; ++i) {
    unsigned __int128 carry = 0;
    for (std::size_t j = 0; i + j < n; ++j) {
      const unsigned __int128 acc =
          static_cast<unsigned __int128>(a.words_[i]) * b.words_[j] +
          out.words_[i + j] + carry;
      out.words_[i + j] = static_cast<std::uint64_t>(acc);
      carry = acc >> 64;
    }
  }
  out.mask_top();
  return out;
}

Bits udiv(const Bits& a, const Bits& b) {
  Bits::require_same_width(a, b, "udiv");
  if (b.is_zero()) return Bits::ones(a.width());  // HDL convention
  // Restoring division, bit-serial.
  Bits quotient(a.width());
  Bits remainder(a.width());
  for (int i = static_cast<int>(a.width()) - 1; i >= 0; --i) {
    remainder = remainder.shl(1);
    remainder.set_bit(0, a.bit(static_cast<unsigned>(i)));
    if (!Bits::ult(remainder, b)) {
      remainder = remainder - b;
      quotient.set_bit(static_cast<unsigned>(i), true);
    }
  }
  return quotient;
}

Bits urem(const Bits& a, const Bits& b) {
  Bits::require_same_width(a, b, "urem");
  if (b.is_zero()) return a;  // HDL convention
  Bits remainder(a.width());
  for (int i = static_cast<int>(a.width()) - 1; i >= 0; --i) {
    remainder = remainder.shl(1);
    remainder.set_bit(0, a.bit(static_cast<unsigned>(i)));
    if (!Bits::ult(remainder, b)) remainder = remainder - b;
  }
  return remainder;
}

Bits Bits::shl(unsigned amount) const {
  if (width_ == 0) fail("shl on zero width");
  Bits out(width_);
  if (amount >= width_) return out;
  const unsigned word_shift = amount / kWordBits;
  const unsigned bit_shift = amount % kWordBits;
  for (std::size_t i = words_.size(); i-- > word_shift;) {
    std::uint64_t v = words_[i - word_shift] << bit_shift;
    if (bit_shift != 0 && i > word_shift)
      v |= words_[i - word_shift - 1] >> (kWordBits - bit_shift);
    out.words_[i] = v;
  }
  out.mask_top();
  return out;
}

Bits Bits::lshr(unsigned amount) const {
  if (width_ == 0) fail("lshr on zero width");
  Bits out(width_);
  if (amount >= width_) return out;
  const unsigned word_shift = amount / kWordBits;
  const unsigned bit_shift = amount % kWordBits;
  for (std::size_t i = 0; i + word_shift < words_.size(); ++i) {
    std::uint64_t v = words_[i + word_shift] >> bit_shift;
    if (bit_shift != 0 && i + word_shift + 1 < words_.size())
      v |= words_[i + word_shift + 1] << (kWordBits - bit_shift);
    out.words_[i] = v;
  }
  return out;
}

Bits Bits::ashr(unsigned amount) const {
  if (width_ == 0) fail("ashr on zero width");
  const bool sign = msb();
  Bits out = lshr(amount);
  if (sign) {
    const unsigned fill = std::min(amount, width_);
    for (unsigned i = 0; i < fill; ++i) out.set_bit(width_ - 1 - i, true);
  }
  return out;
}

bool Bits::operator==(const Bits& other) const {
  return width_ == other.width_ && words_ == other.words_;
}

bool Bits::ult(const Bits& a, const Bits& b) {
  require_same_width(a, b, "ult");
  for (std::size_t i = a.words_.size(); i-- > 0;) {
    if (a.words_[i] != b.words_[i]) return a.words_[i] < b.words_[i];
  }
  return false;
}

bool Bits::ule(const Bits& a, const Bits& b) { return !ult(b, a); }

bool Bits::slt(const Bits& a, const Bits& b) {
  require_same_width(a, b, "slt");
  const bool sa = a.msb();
  const bool sb = b.msb();
  if (sa != sb) return sa;  // negative < non-negative
  return ult(a, b);
}

bool Bits::sle(const Bits& a, const Bits& b) { return !slt(b, a); }

Bits Bits::slice(unsigned hi, unsigned lo) const {
  if (hi >= width_ || lo > hi) fail("slice out of range");
  const unsigned w = hi - lo + 1;
  Bits out = lshr(lo);
  return out.trunc(w);
}

void Bits::set_range(unsigned lo, const Bits& value) {
  if (lo + value.width_ > width_ || lo > width_)
    fail("set_range out of range");
  if (value.width_ == 0) return;
  const unsigned word_off = lo / kWordBits;
  const unsigned bit_off = lo % kWordBits;
  // Clear the destination window, then OR the (masked) payload in.
  for (unsigned i = 0; i < value.width_; /* per-word strides below */) {
    const unsigned w = (lo + i) / kWordBits;
    const unsigned b = (lo + i) % kWordBits;
    const unsigned n = std::min(kWordBits - b, value.width_ - i);
    const std::uint64_t window =
        (n == kWordBits ? ~0ull : ((1ull << n) - 1)) << b;
    words_[w] &= ~window;
    i += n;
  }
  for (unsigned i = 0; i < value.words_.size(); ++i) {
    words_[word_off + i] |= value.words_[i] << bit_off;
    if (bit_off != 0 && word_off + i + 1 < words_.size())
      words_[word_off + i + 1] |= value.words_[i] >> (kWordBits - bit_off);
  }
  mask_top();
}

Bits Bits::concat(const Bits& hi, const Bits& lo) {
  if (hi.width_ == 0) return lo;
  if (lo.width_ == 0) return hi;
  Bits out = hi.zext(hi.width_ + lo.width_).shl(lo.width_);
  Bits lo_ext = lo.zext(hi.width_ + lo.width_);
  return out | lo_ext;
}

Bits Bits::zext(unsigned new_width) const {
  if (new_width < width_) fail("zext to smaller width");
  Bits out(new_width);
  std::copy(words_.begin(), words_.end(), out.words_.begin());
  return out;
}

Bits Bits::sext(unsigned new_width) const {
  if (new_width < width_) fail("sext to smaller width");
  if (width_ == 0) fail("sext of zero width");
  Bits out = zext(new_width);
  if (msb()) {
    for (unsigned i = width_; i < new_width; ++i) out.set_bit(i, true);
  }
  return out;
}

Bits Bits::trunc(unsigned new_width) const {
  if (new_width > width_) fail("trunc to larger width");
  Bits out(new_width);
  std::copy(words_.begin(), words_.begin() + word_count(new_width),
            out.words_.begin());
  out.mask_top();
  return out;
}

Bits Bits::resize(unsigned new_width) const {
  return new_width >= width_ ? zext(new_width) : trunc(new_width);
}

std::string Bits::to_bin_string() const {
  std::string s = "0b";
  for (unsigned i = width_; i-- > 0;) s += bit(i) ? '1' : '0';
  return s;
}

std::string Bits::to_hex_string() const {
  static constexpr char digits[] = "0123456789abcdef";
  std::string s;
  const unsigned nibbles = (width_ + 3) / 4;
  for (unsigned n = nibbles; n-- > 0;) {
    unsigned d = 0;
    for (unsigned b = 0; b < 4; ++b) {
      const unsigned i = n * 4 + b;
      if (i < width_ && bit(i)) d |= 1u << b;
    }
    s += digits[d];
  }
  return "0x" + s;
}

std::size_t Bits::hash() const noexcept {
  std::size_t h = width_ * 0x9e3779b97f4a7c15ull;
  for (const auto w : words_) {
    h ^= w + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  }
  return h;
}

}  // namespace osss::sysc
