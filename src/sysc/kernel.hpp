// kernel.hpp — discrete-event simulation kernel with delta cycles.
//
// This is the reproduction's stand-in for the OSCI SystemC 2.0 kernel the
// paper builds on.  It implements the same two-phase evaluate/update model:
//
//   * processes run in the *evaluate* phase and write signals;
//   * writes become visible in the following *update* phase;
//   * value changes make sensitive processes runnable, starting another
//     delta cycle at the same simulation time;
//   * when no more updates are pending, simulated time advances to the next
//     scheduled event (typically a clock toggle).
//
// Everything is owned by a `Context` (see module.hpp) — there is no global
// simulator state, so tests can run many independent simulations in one
// process.

#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "lint/diag.hpp"

namespace osss::sysc {

/// Simulation time in picoseconds.
using Time = std::uint64_t;

class Kernel;

/// Base class of every signal: names the channel and provides the pending ->
/// current update step plus sensitivity bookkeeping shared by all payload
/// types.
class SignalBase {
public:
  SignalBase(Kernel& kernel, std::string name);
  virtual ~SignalBase() = default;

  SignalBase(const SignalBase&) = delete;
  SignalBase& operator=(const SignalBase&) = delete;

  const std::string& name() const noexcept { return name_; }

  /// Register a process to run whenever the signal's value changes.
  void on_change(class Process& p) { change_list_.push_back(&p); }

protected:
  Kernel& kernel_;
  std::vector<class Process*> change_list_;
  std::vector<class Process*> pos_list_;  ///< used by Signal<bool> only

  void notify_change();
  void notify_posedge();

  /// Race-detector write hook (called by Signal<T>::write when the kernel's
  /// race check is on, *before* the pending value is replaced).
  /// `same_value` says whether the new value equals the pending one — a
  /// same-delta write-write conflict with differing values is an error
  /// (RACE-001), with equal values a warning.
  void race_note_write(bool same_value);

  /// Race-detector read hook: a read while another process's write is
  /// pending this delta (RACE-003, info — the two-phase kernel makes the
  /// outcome deterministic, reads observe the old value).
  void race_note_read() const;

private:
  friend class Kernel;
  std::string name_;
  bool update_pending_ = false;

  // --- race-detector bookkeeping (only touched when the check is on) ------
  class Process* last_writer_ = nullptr;    ///< writer of the pending value
  std::vector<class Process*> drivers_;     ///< distinct writers, lifetime
  bool race_ww_error_reported_ = false;     ///< RACE-001 error dedup
  bool race_ww_warn_reported_ = false;      ///< RACE-001 warning dedup
  bool race_md_reported_ = false;           ///< RACE-002 dedup
  mutable bool race_rw_reported_ = false;   ///< RACE-003 dedup

  /// Move the pending value into the current value; fire notifications.
  virtual void apply_update() = 0;
};

/// A schedulable unit of behaviour (method process or clocked thread).
class Process {
public:
  explicit Process(std::string name) : name_(std::move(name)) {}
  virtual ~Process() = default;

  Process(const Process&) = delete;
  Process& operator=(const Process&) = delete;

  const std::string& name() const noexcept { return name_; }

  /// Run one evaluation step.  Called by the kernel in the evaluate phase.
  virtual void execute() = 0;

private:
  friend class Kernel;
  std::string name_;
  bool queued_ = false;
};

/// The event-driven simulator core.
class Kernel {
public:
  /// A kernel starts with the race detector off unless the environment
  /// variable OSSS_RACE_CHECK is set to a truthy value ("1", "on", ...), in
  /// which case every kernel in the process checks *strictly*: run_until
  /// throws std::logic_error on the first error-severity race so CI catches
  /// racy designs the way a sanitizer would.
  Kernel();
  Kernel(const Kernel&) = delete;
  Kernel& operator=(const Kernel&) = delete;

  Time now() const noexcept { return now_; }

  // --- dynamic race detector ----------------------------------------------
  //
  //   RACE-001 error/warn  two processes write one signal in the same delta
  //                        (error when the values differ — last write wins
  //                        by queue order, which is scheduling luck)
  //   RACE-002 warn        a signal has multiple driver processes over its
  //                        lifetime (structural multi-driver)
  //   RACE-003 info        a process reads a signal while another process's
  //                        write is pending this delta (deterministic here —
  //                        reads see the old value — but order-sensitive in
  //                        kernels without two-phase update)

  /// Explicitly switch the race detector; overrides the environment policy
  /// (explicit control never throws — inspect race_report() instead).
  void set_race_check(bool on) {
    race_check_ = on;
    race_strict_ = false;
  }
  bool race_check() const noexcept { return race_check_; }

  /// Findings accumulated so far (RACE-001/002/003, deduplicated per
  /// signal and rule).
  const lint::Report& race_report() const noexcept { return race_report_; }
  void clear_race_report() { race_report_ = lint::Report{}; }

  /// Used by SignalBase's hooks to attribute reads/writes; nullptr outside
  /// the evaluate phase (testbench code between run calls).
  Process* current_process() const noexcept { return current_; }
  void report_race(lint::Diagnostic d) { race_report_.add(std::move(d)); }

  /// Number of delta cycles executed so far (diagnostic / performance
  /// counter, compared in the simulation-speed experiment R7).
  std::uint64_t delta_count() const noexcept { return delta_count_; }

  /// Schedule `fn` to run at absolute simulation time `at`.
  void schedule(Time at, std::function<void()> fn);

  /// Mark a signal as having a pending new value (called by Signal::write).
  void request_update(SignalBase& s);

  /// Queue a process for the current evaluate phase.
  void make_runnable(Process& p);

  /// Processes to run once at elaboration end (before the first event).
  void register_initial(Process& p) { initial_.push_back(&p); }

  /// Advance simulation by `duration` picoseconds.
  void run_for(Time duration) { run_until(now_ + duration); }

  /// Advance simulation up to and including events at time `end`.
  /// An `end` in the past settles pending writes but never rewinds now().
  void run_until(Time end);

  /// Hook invoked after every converged timestep (used by VCD tracing).
  void add_timestep_hook(std::function<void(Time)> hook) {
    hooks_.push_back(std::move(hook));
  }

private:
  Time now_ = 0;
  std::uint64_t delta_count_ = 0;
  std::uint64_t sequence_ = 0;
  bool initialized_ = false;
  bool race_check_ = false;
  bool race_strict_ = false;  ///< throw on error races (env-enabled mode)
  Process* current_ = nullptr;
  lint::Report race_report_;

  // Binary min-heap ordered by (time, insertion-sequence).  The sequence
  // keeps same-time events in schedule order, which keeps clock edges
  // deterministic; the heap makes schedule/pop O(log n) with contiguous
  // storage instead of a node allocation per event (std::map).
  struct TimedEvent {
    Time at = 0;
    std::uint64_t seq = 0;
    std::function<void()> fn;
  };
  struct TimedEventLater {  ///< max-heap comparator -> min-heap behaviour
    bool operator()(const TimedEvent& a, const TimedEvent& b) const {
      return a.at != b.at ? a.at > b.at : a.seq > b.seq;
    }
  };
  std::vector<TimedEvent> timed_;
  std::vector<SignalBase*> update_queue_;
  std::deque<Process*> runnable_;
  std::vector<Process*> initial_;
  std::vector<std::function<void(Time)>> hooks_;

  void initialize();
  void delta_loop();
  void fire_hooks();
};

}  // namespace osss::sysc
