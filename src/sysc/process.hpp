// process.hpp — clocked threads (SC_CTHREAD analogue) and method processes.
//
// OSSS behaviour is written as clocked threads: a coroutine resumed on every
// rising clock edge, suspending at `co_await wait()` statements.  Synchronous
// reset follows the paper's `watching(reset.delayed() == true)` semantics —
// while reset is sampled active at a clock edge the thread restarts from the
// top, re-executing its reset preamble.
//
// A `Behavior` member coroutine of a module is the analogue of the function
// registered with SC_CTHREAD:
//
//   Behavior sync_input() {
//     data_sync_reg.reset();
//     co_await wait();
//     while (true) {
//       data_sync_reg.write(data.read());
//       if (data_sync_reg.rising_edge(0)) { ... }
//       co_await wait();
//     }
//   }

#pragma once

#include <coroutine>
#include <exception>
#include <functional>
#include <utility>

#include "sysc/kernel.hpp"
#include "sysc/signal.hpp"

namespace osss::sysc {

class CThreadProcess;

/// Coroutine return type for clocked-thread bodies.
class Behavior {
public:
  struct promise_type {
    CThreadProcess* process = nullptr;

    Behavior get_return_object() {
      return Behavior(Handle::from_promise(*this));
    }
    std::suspend_always initial_suspend() noexcept { return {}; }
    std::suspend_always final_suspend() noexcept { return {}; }
    void return_void() noexcept {}
    void unhandled_exception() { std::terminate(); }
  };

  using Handle = std::coroutine_handle<promise_type>;

  Behavior() = default;
  explicit Behavior(Handle h) : handle_(h) {}
  Behavior(Behavior&& other) noexcept
      : handle_(std::exchange(other.handle_, nullptr)) {}
  Behavior& operator=(Behavior&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, nullptr);
    }
    return *this;
  }
  ~Behavior() { destroy(); }

  Behavior(const Behavior&) = delete;
  Behavior& operator=(const Behavior&) = delete;

  bool valid() const noexcept { return handle_ != nullptr; }
  bool done() const { return !handle_ || handle_.done(); }
  void resume() { handle_.resume(); }
  Handle handle() const noexcept { return handle_; }

private:
  Handle handle_;
  void destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = nullptr;
    }
  }
};

/// `co_await wait(n)` — suspend the clocked thread for n rising clock edges.
struct WaitCycles {
  unsigned cycles;
  bool await_ready() const noexcept { return cycles == 0; }
  void await_suspend(std::coroutine_handle<Behavior::promise_type> h) noexcept;
  void await_resume() const noexcept {}
};

inline WaitCycles wait(unsigned cycles = 1) { return WaitCycles{cycles}; }

/// A clocked thread: coroutine restarted on synchronous reset, resumed on
/// each rising edge of its clock, skipping edges while a multi-cycle wait is
/// pending.
class CThreadProcess final : public Process {
public:
  CThreadProcess(std::string name, std::function<Behavior()> factory)
      : Process(std::move(name)), factory_(std::move(factory)) {}

  /// Attach a synchronous reset (sampled at the clock edge).
  void set_reset(const Signal<bool>& sig, bool active_high = true) {
    reset_ = &sig;
    reset_level_ = active_high;
  }

  void execute() override {
    if (reset_ != nullptr && reset_->read() == reset_level_) {
      restart();
      return;
    }
    if (!body_.valid()) {
      restart();  // first activation without reset attached
      return;
    }
    if (body_.done()) return;
    if (skip_ > 0) {
      --skip_;
      return;
    }
    body_.resume();
  }

  bool finished() const { return body_.valid() && body_.done(); }

private:
  friend struct WaitCycles;

  std::function<Behavior()> factory_;
  Behavior body_;
  unsigned skip_ = 0;
  const Signal<bool>* reset_ = nullptr;
  bool reset_level_ = true;

  void restart() {
    body_ = factory_();
    body_.handle().promise().process = this;
    skip_ = 0;
    body_.resume();  // run reset preamble until the first wait()
  }
};

inline void WaitCycles::await_suspend(
    std::coroutine_handle<Behavior::promise_type> h) noexcept {
  if (h.promise().process != nullptr) {
    h.promise().process->skip_ = cycles - 1;
  }
}

/// A method process: plain function re-evaluated whenever a signal in its
/// sensitivity list changes (SC_METHOD analogue, used for combinational
/// glue and testbench monitors).
class MethodProcess final : public Process {
public:
  MethodProcess(std::string name, std::function<void()> fn)
      : Process(std::move(name)), fn_(std::move(fn)) {}

  void execute() override { fn_(); }

private:
  std::function<void()> fn_;
};

}  // namespace osss::sysc
