#include "sysc/trace.hpp"

#include <stdexcept>

namespace osss::sysc {

TraceFile::TraceFile(Context& ctx, std::string path) : out_(path) {
  if (!out_) throw std::runtime_error("TraceFile: cannot open " + path);
  ctx.kernel().add_timestep_hook([this](Time t) { sample(t); });
}

TraceFile::~TraceFile() { out_.flush(); }

void TraceFile::add_entry(const std::string& name, unsigned width,
                          std::function<Bits()> getter) {
  if (header_written_)
    throw std::logic_error("TraceFile: trace() after simulation started");
  entries_.push_back(
      Entry{name, width, std::move(getter), make_id(entries_.size()), Bits{},
            true});
}

std::string TraceFile::make_id(std::size_t index) {
  // VCD identifiers: printable ASCII 33..126, little-endian base-94.
  std::string id;
  do {
    id += static_cast<char>('!' + index % 94);
    index /= 94;
  } while (index != 0);
  return id;
}

void TraceFile::write_header() {
  out_ << "$timescale 1ps $end\n$scope module top $end\n";
  for (const auto& e : entries_) {
    out_ << "$var wire " << e.width << " " << e.id << " " << e.name
         << " $end\n";
  }
  out_ << "$upscope $end\n$enddefinitions $end\n";
  header_written_ = true;
}

std::string TraceFile::value_text(const Entry& e, const Bits& v) {
  // Getters may return a Bits of a different size than the declared $var
  // width; zero-extend/truncate so the VCD stays well-formed.
  const Bits w = v.width() == e.width ? v : v.resize(e.width);
  if (e.width == 1) return (w.bit(0) ? "1" : "0") + e.id;
  std::string text = "b";
  for (unsigned i = e.width; i-- > 0;) text += w.bit(i) ? '1' : '0';
  return text + " " + e.id;
}

void TraceFile::sample(Time t) {
  if (!header_written_) write_header();
  for (auto& e : entries_) {
    Bits v = e.get();
    if (!e.first && v == e.last) continue;
    if (!time_written_ || last_time_ != t) {
      out_ << "#" << t << "\n";
      last_time_ = t;
      time_written_ = true;
    }
    out_ << value_text(e, v) << "\n";
    e.last = std::move(v);
    e.first = false;
    ++changes_;
  }
}

}  // namespace osss::sysc
