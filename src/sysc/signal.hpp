// signal.hpp — typed signals and ports (sc_signal / sc_in / sc_out analogue).
//
// A Signal<T> carries any equality-comparable value type: bool, integers,
// BitVector<W>, or whole OSSS objects (the paper transfers object data "via
// sc_signal<object> between different processes").  Writes take effect in
// the next update phase; reads always observe the current value.

#pragma once

#include <string>
#include <utility>

#include "sysc/kernel.hpp"

namespace osss::sysc {

class Context;
Kernel& kernel_of(Context& ctx);  // defined in module.hpp/cpp

template <class T>
class Signal final : public SignalBase {
public:
  /// Create a signal owned by a context (or module hierarchy).
  Signal(Context& ctx, std::string name, T init = T{})
      : SignalBase(kernel_of(ctx), std::move(name)),
        current_(init),
        next_(init) {}

  Signal(Kernel& kernel, std::string name, T init = T{})
      : SignalBase(kernel, std::move(name)), current_(init), next_(init) {}

  const T& read() const {
    if (kernel_.race_check()) race_note_read();
    return current_;
  }
  operator const T&() const { return read(); }  // NOLINT

  void write(const T& v) {
    if (kernel_.race_check()) race_note_write(next_ == v);
    next_ = v;
    kernel_.request_update(*this);
  }
  Signal& operator=(const T& v) {
    write(v);
    return *this;
  }

  /// Register a process on the rising edge (bool signals only — clocks and
  /// resets).
  void on_posedge(Process& p)
    requires std::same_as<T, bool>
  {
    pos_list_.push_back(&p);
  }

private:
  T current_;
  T next_;

  void apply_update() override {
    if (next_ == current_) return;
    bool rising = false;
    if constexpr (std::same_as<T, bool>) rising = !current_ && next_;
    current_ = next_;
    notify_change();
    if (rising) notify_posedge();
  }
};

/// Input port: a read-only view of a signal, bound at construction or via
/// bind().  Kept deliberately thin — the port/signal split matters for the
/// paper's discussion of module boundaries, not for simulator mechanics.
template <class T>
class In {
public:
  In() = default;
  explicit In(const Signal<T>& s) : sig_(&s) {}

  void bind(const Signal<T>& s) { sig_ = &s; }
  bool bound() const noexcept { return sig_ != nullptr; }

  const T& read() const { return sig_->read(); }
  operator const T&() const { return sig_->read(); }  // NOLINT

private:
  const Signal<T>* sig_ = nullptr;
};

/// Output port: write-only view of a signal.
template <class T>
class Out {
public:
  Out() = default;
  explicit Out(Signal<T>& s) : sig_(&s) {}

  void bind(Signal<T>& s) { sig_ = &s; }
  bool bound() const noexcept { return sig_ != nullptr; }

  void write(const T& v) { sig_->write(v); }
  Out& operator=(const T& v) {
    write(v);
    return *this;
  }
  /// Read-back of the current (committed) value of the bound signal.
  const T& read() const { return sig_->read(); }

private:
  Signal<T>* sig_ = nullptr;
};

}  // namespace osss::sysc
