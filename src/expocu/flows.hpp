// flows.hpp — the two complete design flows of the evaluation.
//
// build_osss_flow() runs every ExpoCU component through the OSSS path
// (class resolution -> behavioral synthesis -> RTL); build_vhdl_flow()
// collects the hand-written RTL baseline.  Both return the same component
// list so the experiments can compare area/fmax per component and in
// total (the paper's §12 comparison and Fig. 12 module view).

#pragma once

#include <string>
#include <vector>

#include "expocu/hw.hpp"
#include "gate/library.hpp"
#include "gate/timing.hpp"
#include "hls/synth.hpp"

namespace osss::expocu {

struct FlowComponent {
  std::string name;
  rtl::Module module;
  hls::Report hls_report;  ///< zero-initialized for RTL-entry components
  bool behavioral = false;
};

/// OSSS flow: every control component from its behavioural description;
/// the dataflow histogram stays RTL (per the paper's §12 note).
std::vector<FlowComponent> build_osss_flow(const hls::Options& opt = {});

/// Conventional flow: hand-written RTL throughout.
std::vector<FlowComponent> build_vhdl_flow();

/// Per-component synthesis results plus flow totals (sum of areas, worst
/// fmax) — the numbers behind experiments R1/R2/R9.
struct FlowReport {
  struct Entry {
    std::string name;
    gate::TimingReport timing;
    hls::Report hls_report;
    bool behavioral = false;
  };
  std::vector<Entry> components;
  double total_area_ge = 0.0;
  double min_fmax_mhz = 0.0;

  const Entry* find(const std::string& name) const;
};

FlowReport synthesize_flow(const std::vector<FlowComponent>& components,
                           const gate::Library& lib);

/// The 16x8 multiplier pre-synthesized as a standalone netlist — the
/// "existing VHDL IP" of the paper's Fig. 6, integrated at netlist level.
gate::Netlist multiplier_ip_netlist();

/// The VHDL-flow parameter calculation with its multiplier replaced by the
/// IP netlist (instantiated post-synthesis, not re-synthesized).
gate::Netlist param_calc_vhdl_with_ip();

}  // namespace osss::expocu
