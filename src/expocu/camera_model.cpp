#include "expocu/camera_model.hpp"

#include <algorithm>
#include <cmath>

namespace osss::expocu {

CameraModel::CameraModel(sysc::Context& ctx, std::string name,
                         sysc::Signal<bool>& clk,
                         const CameraRegisters& regs)
    : Module(ctx, std::move(name)),
      pixel(ctx, full_name() + ".pixel"),
      pixel_valid(ctx, full_name() + ".pixel_valid", false),
      hsync(ctx, full_name() + ".hsync", false),
      vsync(ctx, full_name() + ".vsync", false),
      regs_(regs) {
  cthread("stream", clk, [this]() -> sysc::Behavior { return stream(); });
}

double CameraModel::radiance(unsigned x, unsigned y) {
  // A smooth gradient plus a bright blob — enough structure to give the
  // histogram a realistic spread.
  const double gradient =
      0.25 + 0.5 * (static_cast<double>(x + y) / (kFrameWidth + kFrameHeight));
  const double dx = (static_cast<double>(x) - kFrameWidth / 2.0) / kFrameWidth;
  const double dy =
      (static_cast<double>(y) - kFrameHeight / 2.0) / kFrameHeight;
  const double blob = 0.35 * std::exp(-8.0 * (dx * dx + dy * dy));
  return std::min(1.0, gradient + blob);
}

double CameraModel::ambient(std::uint64_t frame) {
  // Slow day/night sweep over ~96 frames (a tunnel transit at 30 fps).
  return 0.55 + 0.45 * std::sin(2.0 * 3.14159265358979 *
                                static_cast<double>(frame) / 96.0);
}

std::uint8_t CameraModel::sensor_value(unsigned x, unsigned y,
                                       std::uint64_t frame,
                                       const CameraRegisters& regs) {
  const double lum = radiance(x, y) * ambient(frame);
  const double exposure_factor = static_cast<double>(regs.exposure) / 4096.0;
  const double gain_factor = static_cast<double>(regs.gain) / 64.0;
  const double out = 255.0 * lum * exposure_factor * gain_factor;
  return static_cast<std::uint8_t>(std::clamp(out, 0.0, 255.0));
}

sysc::Behavior CameraModel::stream() {
  pixel_valid.write(false);
  vsync.write(false);
  hsync.write(false);
  co_await sysc::wait();
  for (;;) {
    double sum = 0.0;
    for (unsigned y = 0; y < kFrameHeight; ++y) {
      for (unsigned x = 0; x < kFrameWidth; ++x) {
        const std::uint8_t value = sensor_value(x, y, frame_, regs_);
        sum += value;
        pixel.write(sysc::BitVector<kPixelBits>(value));
        pixel_valid.write(true);
        vsync.write(x == 0 && y == 0);
        hsync.write(x == 0);
        co_await sysc::wait();
      }
    }
    last_mean_ = sum / kPixelsPerFrame;
    ++frame_;
    // Short inter-frame blanking.
    pixel_valid.write(false);
    vsync.write(false);
    hsync.write(false);
    co_await sysc::wait(4);
  }
}

}  // namespace osss::expocu
