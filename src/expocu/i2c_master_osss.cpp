// i2c_master_osss.cpp — I2C bus control, OSSS style.
//
// This is the version the paper reports "took a single day": the protocol
// engine leans on a small serializer class (ByteShifter) and structured
// control flow; byte/bit sequencing, arbitration of the shift register and
// the implicit FSM all come from the methodology rather than hand-written
// state tables.  Compare with i2c_master_systemc.cpp (manual resolution)
// and i2c_master_vhdl.cpp (explicit RTL FSM) — the three sources are the
// measured artefact of experiment R3.

#include "expocu/hw.hpp"

namespace osss::expocu {

namespace {

// [reusable-class begin] — ByteShifter is library IP: written once,
// shipped in a class library (paper §10 "class libraries can be used for
// IP transfer"), not part of the module's description effort.
/// Serializer class: load a byte, shift bits out MSB-first.
meta::ClassPtr byte_shifter_class() {
  using namespace meta;
  static const ClassPtr cls = [] {
    auto c = std::make_shared<ClassDesc>("ByteShifter");
    c->add_member("Byte", 8);

    MethodDesc load;
    load.name = "Load";
    load.params = {{"Value", 8}};
    load.body = {assign_member("Byte", param("Value", 8))};
    c->add_method(std::move(load));

    MethodDesc shift;
    shift.name = "ShiftOut";
    shift.return_width = 1;
    shift.body = {
        assign_local("Msb", slice(member("Byte", 8), 7, 7)),
        assign_member("Byte", concat({slice(member("Byte", 8), 6, 0),
                                      constant(1, 0)})),
        return_stmt(local("Msb", 1))};
    c->add_method(std::move(shift));
    return c;
  }();
  return cls;
}

// [reusable-class end]

}  // namespace

hls::Behavior build_i2c_master_osss() {
  using namespace meta;
  hls::BehaviorBuilder bb("i2c_master");
  const ExprPtr start = bb.input("start", 1);
  const ExprPtr exposure = bb.input("exposure", kExposureBits);
  const ExprPtr gain = bb.input("gain", kGainBits);
  const ExprPtr sda_in = bb.input("sda_in", 1);

  const ExprPtr scl = bb.var("scl", 1, 1, /*output=*/true);
  const ExprPtr sda = bb.var("sda", 1, 1, true);
  const ExprPtr busy = bb.var("busy", 1, 0, true);
  const ExprPtr ack_ok = bb.var("ack_ok", 1, 0, true);
  const ExprPtr byte_idx = bb.var("byte_idx", 3);
  const ExprPtr bit_idx = bb.var("bit_idx", 4);
  const ExprPtr ack = bb.var("ack", 1);
  const ExprPtr shifter = bb.object("shifter", byte_shifter_class());

  const auto c1 = [](std::uint64_t v) { return constant(1, v); };

  bb.wait();
  bb.loop([&] {
    bb.assign(busy, c1(0));
    bb.wait_until(start);
    bb.assign(busy, c1(1));
    bb.assign(ack, c1(1));

    // START: SDA falls while SCL is high.
    bb.assign(sda, c1(0));
    bb.wait(kI2cPhase);

    // Frame: device address, register pointer, exposure hi/lo, gain.
    bb.assign(byte_idx, constant(3, 0));
    bb.while_(ult(byte_idx, constant(3, 5)), [&] {
      bb.call(shifter, "Load",
              {cond(eq(byte_idx, constant(3, 0)),
                    constant(8, kI2cAddress << 1),
                    cond(eq(byte_idx, constant(3, 1)),
                         constant(8, kRegExposureHi),
                         cond(eq(byte_idx, constant(3, 2)),
                              slice(exposure, 15, 8),
                              cond(eq(byte_idx, constant(3, 3)),
                                   slice(exposure, 7, 0), gain))))});
      bb.assign(bit_idx, constant(4, 0));
      bb.while_(ult(bit_idx, constant(4, 8)), [&] {
        bb.assign(scl, c1(0));
        bb.wait(kI2cPhase);
        bb.assign(sda, bb.call_r(shifter, "ShiftOut"));
        bb.wait(kI2cPhase);
        bb.assign(scl, c1(1));
        bb.wait(2 * kI2cPhase);
        bb.assign(bit_idx, add(bit_idx, constant(4, 1)));
      });
      // ACK slot: release SDA, sample while SCL is high.
      bb.assign(scl, c1(0));
      bb.wait(kI2cPhase);
      bb.assign(sda, c1(1));
      bb.wait(kI2cPhase);
      bb.assign(scl, c1(1));
      bb.wait(kI2cPhase);
      bb.assign(ack, band(ack, bnot(sda_in)));
      bb.wait(kI2cPhase);
      bb.assign(byte_idx, add(byte_idx, constant(3, 1)));
    });

    // STOP: SDA rises while SCL is high.
    bb.assign(scl, c1(0));
    bb.wait(kI2cPhase);
    bb.assign(sda, c1(0));
    bb.wait(kI2cPhase);
    bb.assign(scl, c1(1));
    bb.wait(kI2cPhase);
    bb.assign(sda, c1(1));
    bb.wait(kI2cPhase);
    bb.assign(ack_ok, ack);
    bb.wait();
  });
  return bb.take();
}

}  // namespace osss::expocu
