#include "expocu/flows.hpp"

#include "gate/lower.hpp"

namespace osss::expocu {

std::vector<FlowComponent> build_osss_flow(const hls::Options& opt) {
  std::vector<FlowComponent> out;
  auto behavioral = [&](hls::Behavior beh) {
    hls::Report report;
    rtl::Module module = hls::synthesize(beh, opt, &report);
    out.push_back(FlowComponent{beh.name, std::move(module), report, true});
  };
  behavioral(build_camera_sync_osss());
  out.push_back({"histogram", build_histogram_rtl(), {}, false});
  behavioral(build_threshold_osss());
  behavioral(build_param_calc_osss());
  behavioral(build_i2c_master_osss());
  behavioral(build_reset_ctrl_osss());
  return out;
}

std::vector<FlowComponent> build_vhdl_flow() {
  std::vector<FlowComponent> out;
  out.push_back({"camera_sync", build_camera_sync_vhdl(), {}, false});
  out.push_back({"histogram", build_histogram_rtl(), {}, false});
  out.push_back({"threshold_calc", build_threshold_vhdl(), {}, false});
  out.push_back({"param_calc", build_param_calc_vhdl(), {}, false});
  out.push_back({"i2c_master", build_i2c_master_vhdl(), {}, false});
  out.push_back({"reset_ctrl", build_reset_ctrl_vhdl(), {}, false});
  return out;
}

const FlowReport::Entry* FlowReport::find(const std::string& name) const {
  for (const Entry& e : components) {
    if (e.name == name) return &e;
  }
  return nullptr;
}

FlowReport synthesize_flow(const std::vector<FlowComponent>& components,
                           const gate::Library& lib) {
  FlowReport report;
  report.min_fmax_mhz = 1e9;
  for (const FlowComponent& c : components) {
    FlowReport::Entry entry;
    entry.name = c.module.name();
    entry.timing = gate::analyze_timing(gate::lower_to_gates(c.module), lib);
    entry.hls_report = c.hls_report;
    entry.behavioral = c.behavioral;
    report.total_area_ge += entry.timing.area_ge;
    report.min_fmax_mhz = std::min(report.min_fmax_mhz, entry.timing.fmax_mhz);
    report.components.push_back(std::move(entry));
  }
  return report;
}

gate::Netlist multiplier_ip_netlist() {
  // Pre-synthesized 24x24 -> 24 multiplier macro (the widths param_calc
  // uses), standing in for the paper's "existing VHDL IP" multiplier.
  rtl::Builder b("mult24_ip");
  const rtl::Wire a = b.input("a", 24);
  const rtl::Wire x = b.input("b", 24);
  b.output("p", b.mul(a, x));
  return gate::lower_to_gates(b.take());
}

namespace {

/// param_calc without its own multiplier: operands exported, product
/// imported — the wrapper a VHDL designer writes around an IP macro.
rtl::Module param_calc_vhdl_mulless() {
  using rtl::Wire;
  rtl::Builder b("param_calc_ipwrap");
  const Wire mean = b.input("mean", kPixelBits);
  const Wire ready = b.input("ready", 1);
  const Wire mul_p = b.input("mul_p", 24);  // from the IP

  const Wire exposure =
      b.reg("exposure", kExposureBits, rtl::Bits(kExposureBits, 0x0800));
  const Wire gain = b.reg("gain", kGainBits, rtl::Bits(kGainBits, 64));
  const Wire update = b.reg("update", 1);

  // Same three-stage schedule as the monolithic version; the multiply
  // itself is outside, in the IP macro.
  const Wire target = b.constant(kPixelBits, kTargetMean);
  const Wire v1 = b.reg("v1", 1);
  const Wire r_err_neg = b.reg("r_err_neg", 1);
  const Wire r_err_abs = b.reg("r_err_abs", 8);
  b.connect(v1, ready);
  const Wire err_neg_c = b.ult(target, mean);
  b.connect(r_err_neg, b.mux(ready, err_neg_c, r_err_neg));
  b.connect(r_err_abs,
            b.mux(ready,
                  b.mux(err_neg_c, b.sub(mean, target), b.sub(target, mean)),
                  r_err_abs));
  b.output("mul_a", b.zext(exposure, 24));
  b.output("mul_b", b.zext(r_err_abs, 24));
  const Wire v2 = b.reg("v2", 1);
  const Wire r_prod = b.reg("r_prod", 24);
  b.connect(v2, v1);
  b.connect(r_prod, b.mux(v1, mul_p, r_prod));
  const Wire err_neg = r_err_neg;
  const Wire delta = b.slice(b.lshri(r_prod, kAeStepShift), kExposureBits - 1, 0);

  const Wire exp_min = b.constant(kExposureBits, 0x0040);
  const Wire exp_max = b.constant(kExposureBits, 0xF000);
  const Wire shrunk = b.mux(b.ult(exposure, b.add(delta, exp_min)), exp_min,
                            b.sub(exposure, delta));
  const Wire grown_raw = b.add(exposure, delta);
  const Wire grown =
      b.mux(b.or_(b.ult(grown_raw, exposure), b.ult(exp_max, grown_raw)),
            exp_max, grown_raw);
  const Wire exposure_next = b.mux(err_neg, shrunk, grown);
  b.connect(exposure, b.mux(v2, exposure_next, exposure));

  const Wire saturated = b.and_(b.eq(exposure_next, exp_max), b.not_(err_neg));
  const Wire gain_up = b.mux(b.ult(gain, b.constant(kGainBits, 240)),
                             b.add(gain, b.constant(kGainBits, 4)), gain);
  const Wire gain_down = b.mux(b.ult(b.constant(kGainBits, 64), gain),
                               b.sub(gain, b.constant(kGainBits, 4)), gain);
  b.connect(gain, b.mux(v2, b.mux(saturated, gain_up, gain_down), gain));
  b.connect(update, v2);

  b.output("exposure", exposure);
  b.output("gain", gain);
  b.output("update", update);
  return b.take();
}

}  // namespace

gate::Netlist param_calc_vhdl_with_ip() {
  gate::Netlist top = gate::lower_to_gates(param_calc_vhdl_mulless());
  const gate::Netlist ip = multiplier_ip_netlist();
  // Bind the IP's operand inputs to the wrapper's exported operand nets,
  // then replace the placeholder product input with the IP's output.
  std::map<std::string, std::vector<gate::NetId>> bindings;
  for (const gate::Bus& out : top.outputs()) {
    if (out.name == "mul_a") bindings["a"] = out.nets;
    if (out.name == "mul_b") bindings["b"] = out.nets;
  }
  auto outs = top.instantiate(ip, "u_mult", bindings);
  top.rebind_input("mul_p", outs.at("p"));
  top.sweep();
  top.validate();
  return top;
}

}  // namespace osss::expocu
