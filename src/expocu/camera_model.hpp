// camera_model.hpp — synthetic camera (substitution for real optics).
//
// The ExpoCU only observes pixel statistics, so the camera is modelled as
// a deterministic scene radiance field with a global ambient level that
// drifts over frames (day/night sweep), exposed through the same transfer
// function a sensor applies: pixel = clamp(radiance * ambient * exposure *
// gain).  Exposure and gain come from the camera's I2C-written register
// file, which closes the control loop the paper's Fig. 1 draws.

#pragma once

#include <cstdint>

#include "expocu/params.hpp"
#include "sysc/bitvector.hpp"
#include "sysc/module.hpp"

namespace osss::expocu {

/// The camera-side configuration registers (written via I2C).
struct CameraRegisters {
  std::uint16_t exposure = 0x0800;
  std::uint8_t gain = 64;  ///< 64 = 1.0x
};

/// Streams kFrameWidth x kFrameHeight luminance pixels, one per clock,
/// with vsync pulsing on the first pixel of a frame and hsync on the first
/// pixel of a line.
class CameraModel : public sysc::Module {
public:
  CameraModel(sysc::Context& ctx, std::string name, sysc::Signal<bool>& clk,
              const CameraRegisters& regs);

  sysc::Signal<sysc::BitVector<kPixelBits>> pixel;
  sysc::Signal<bool> pixel_valid;
  sysc::Signal<bool> hsync;
  sysc::Signal<bool> vsync;

  std::uint64_t frame_count() const noexcept { return frame_; }
  /// Mean luminance of the most recently completed frame.
  double last_frame_mean() const noexcept { return last_mean_; }

  /// Scene radiance in [0,1] (pure function; used by tests).
  static double radiance(unsigned x, unsigned y);
  /// Ambient light level in [0,1] for a frame number.
  static double ambient(std::uint64_t frame);
  /// The full sensor transfer function (pure; used by tests and the OO
  /// reference model).
  static std::uint8_t sensor_value(unsigned x, unsigned y,
                                   std::uint64_t frame,
                                   const CameraRegisters& regs);

private:
  const CameraRegisters& regs_;
  std::uint64_t frame_ = 0;
  double last_mean_ = 0.0;

  sysc::Behavior stream();
};

}  // namespace osss::expocu
