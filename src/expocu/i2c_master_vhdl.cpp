// i2c_master_vhdl.cpp — I2C bus control, conventional RTL (VHDL) style.
//
// The baseline flow's version: an explicit state machine with hand-encoded
// states, a phase prescaler, bit and byte counters, and next-state muxes
// written out one by one — the RTL coding style the paper's VHDL
// implementation used (and which "took slightly longer", §12).  Protocol-
// compatible with the two behavioural versions.

#include "expocu/hw.hpp"

namespace osss::expocu {

namespace {

// State encoding (classic VHDL enumeration, hand-assigned).
enum : unsigned {
  kIdle = 0,
  kStart = 1,
  kBitLow = 2,    // SCL low, first half: keep previous SDA
  kBitSetup = 3,  // SCL low, second half: drive data bit
  kBitHigh = 4,   // SCL high, data valid
  kAckLow = 5,    // SCL low, release SDA
  kAckHigh = 6,   // SCL high, sample slave ACK
  kStopLow = 7,   // SCL low, SDA low
  kStopRise = 8,  // SCL high, SDA still low
  kStopDone = 9,  // SDA rises: STOP
  kFinish = 10,
};
constexpr unsigned kStateBits = 4;
constexpr unsigned kPhaseBits = 4;

}  // namespace

rtl::Module build_i2c_master_vhdl() {
  using rtl::Wire;
  rtl::Builder b("i2c_master");

  const Wire start = b.input("start", 1);
  const Wire exposure = b.input("exposure", kExposureBits);
  const Wire gain = b.input("gain", kGainBits);
  const Wire sda_in = b.input("sda_in", 1);

  const Wire state = b.reg("state", kStateBits, rtl::Bits(kStateBits, kIdle));
  const Wire phase = b.reg("phase", kPhaseBits);
  const Wire bit_cnt = b.reg("bit_cnt", 4);
  const Wire byte_cnt = b.reg("byte_cnt", 3);
  const Wire shift_reg = b.reg("shift_reg", 8);
  const Wire scl = b.reg("scl", 1, rtl::Bits(1, 1));
  const Wire sda = b.reg("sda", 1, rtl::Bits(1, 1));
  const Wire busy = b.reg("busy", 1);
  const Wire ack = b.reg("ack", 1);
  const Wire ack_ok = b.reg("ack_ok", 1);

  auto st = [&](unsigned s) { return b.constant(kStateBits, s); };
  auto in_state = [&](unsigned s) { return b.eq(state, st(s)); };

  // Phase prescaler: counts system clocks within each protocol phase.
  const Wire phase_last =
      b.eq(phase, b.constant(kPhaseBits, kI2cPhase - 1));
  const Wire phase_last2 =
      b.eq(phase, b.constant(kPhaseBits, 2 * kI2cPhase - 1));
  const Wire phase_inc = b.add(phase, b.constant(kPhaseBits, 1));

  // Byte selection mux (address, register pointer, exp hi, exp lo, gain).
  const Wire byte_mux = b.mux(
      b.eq(byte_cnt, b.constant(3, 0)), b.constant(8, kI2cAddress << 1),
      b.mux(b.eq(byte_cnt, b.constant(3, 1)), b.constant(8, kRegExposureHi),
            b.mux(b.eq(byte_cnt, b.constant(3, 2)), b.slice(exposure, 15, 8),
                  b.mux(b.eq(byte_cnt, b.constant(3, 3)),
                        b.slice(exposure, 7, 0), gain))));

  // Next-state / output equations, state by state.
  Wire next_state = state;
  Wire next_phase = b.mux(b.or_(phase_last, in_state(kBitHigh)),
                          phase, phase);  // refined per state below
  next_phase = phase_inc;  // default: count
  Wire next_bit = bit_cnt;
  Wire next_byte = byte_cnt;
  Wire next_shift = shift_reg;
  Wire next_scl = scl;
  Wire next_sda = sda;
  Wire next_busy = busy;
  Wire next_ack = ack;
  Wire next_ack_ok = ack_ok;

  const Wire zero_phase = b.constant(kPhaseBits, 0);
  auto on = [&](Wire cond, Wire& target, Wire value) {
    target = b.mux(cond, value, target);
  };

  // IDLE: wait for start.
  {
    const Wire go = b.and_(in_state(kIdle), start);
    on(go, next_state, st(kStart));
    on(go, next_sda, b.constant(1, 0));  // START: SDA falls, SCL high
    on(go, next_phase, zero_phase);
    on(go, next_busy, b.constant(1, 1));
    on(go, next_ack, b.constant(1, 1));
    on(go, next_byte, b.constant(3, 0));
  }
  // START hold, then first byte.
  {
    const Wire done = b.and_(in_state(kStart), phase_last);
    on(done, next_state, st(kBitLow));
    on(done, next_phase, zero_phase);
    on(done, next_scl, b.constant(1, 0));
    on(done, next_shift, byte_mux);
    on(done, next_bit, b.constant(4, 0));
  }
  // BIT_LOW: SCL low first half.
  {
    const Wire done = b.and_(in_state(kBitLow), phase_last);
    on(done, next_state, st(kBitSetup));
    on(done, next_phase, zero_phase);
    on(done, next_sda, b.slice(shift_reg, 7, 7));
    on(done, next_shift, b.concat({b.slice(shift_reg, 6, 0),
                                   b.constant(1, 0)}));
  }
  // BIT_SETUP: SCL still low, SDA stable.
  {
    const Wire done = b.and_(in_state(kBitSetup), phase_last);
    on(done, next_state, st(kBitHigh));
    on(done, next_phase, zero_phase);
    on(done, next_scl, b.constant(1, 1));
  }
  // BIT_HIGH: SCL high for two phases.
  {
    const Wire done = b.and_(in_state(kBitHigh), phase_last2);
    const Wire last_bit = b.eq(bit_cnt, b.constant(4, 7));
    on(done, next_phase, zero_phase);
    on(done, next_scl, b.constant(1, 0));
    on(b.and_(done, b.not_(last_bit)), next_state, st(kBitLow));
    on(b.and_(done, b.not_(last_bit)), next_bit,
       b.add(bit_cnt, b.constant(4, 1)));
    on(b.and_(done, last_bit), next_state, st(kAckLow));
  }
  // ACK_LOW: release SDA while SCL low (two phases).
  {
    const Wire done = b.and_(in_state(kAckLow), phase_last2);
    on(b.and_(in_state(kAckLow), phase_last), next_sda, b.constant(1, 1));
    on(done, next_state, st(kAckHigh));
    on(done, next_phase, zero_phase);
    on(done, next_scl, b.constant(1, 1));
  }
  // ACK_HIGH: sample the slave at the end of the first phase, hold a
  // second phase, then continue with the next byte or stop.
  {
    const Wire sample = b.and_(in_state(kAckHigh), phase_last);
    on(sample, next_ack, b.and_(ack, b.not_(sda_in)));
    const Wire done = b.and_(in_state(kAckHigh), phase_last2);
    const Wire last_byte = b.eq(byte_cnt, b.constant(3, 4));
    on(done, next_phase, zero_phase);
    on(done, next_scl, b.constant(1, 0));
    on(b.and_(done, b.not_(last_byte)), next_state, st(kBitLow));
    on(b.and_(done, b.not_(last_byte)), next_byte,
       b.add(byte_cnt, b.constant(3, 1)));
    on(b.and_(done, b.not_(last_byte)), next_shift,
       b.mux(b.eq(byte_cnt, b.constant(3, 0)),
             b.constant(8, kRegExposureHi),
             b.mux(b.eq(byte_cnt, b.constant(3, 1)), b.slice(exposure, 15, 8),
                   b.mux(b.eq(byte_cnt, b.constant(3, 2)),
                         b.slice(exposure, 7, 0), gain))));
    on(b.and_(done, b.not_(last_byte)), next_bit, b.constant(4, 0));
    on(b.and_(done, last_byte), next_state, st(kStopLow));
  }
  // STOP sequence: SCL low/SDA low -> SCL high -> SDA high.
  {
    const Wire d1 = b.and_(in_state(kStopLow), phase_last);
    on(b.and_(in_state(kStopLow), b.eq(phase, zero_phase)), next_sda,
       b.constant(1, 0));
    on(d1, next_state, st(kStopRise));
    on(d1, next_phase, zero_phase);
    on(d1, next_sda, b.constant(1, 0));
    const Wire d2 = b.and_(in_state(kStopRise), phase_last);
    on(d2, next_state, st(kStopDone));
    on(d2, next_phase, zero_phase);
    on(d2, next_scl, b.constant(1, 1));
    const Wire d3 = b.and_(in_state(kStopDone), phase_last);
    on(d3, next_state, st(kFinish));
    on(d3, next_phase, zero_phase);
    on(d3, next_sda, b.constant(1, 1));
  }
  // FINISH: publish the ACK result and return to idle.
  {
    const Wire done = b.and_(in_state(kFinish), phase_last);
    on(done, next_state, st(kIdle));
    on(done, next_ack_ok, ack);
    on(done, next_busy, b.constant(1, 0));
  }

  b.connect(state, next_state);
  b.connect(phase, next_phase);
  b.connect(bit_cnt, next_bit);
  b.connect(byte_cnt, next_byte);
  b.connect(shift_reg, next_shift);
  b.connect(scl, next_scl);
  b.connect(sda, next_sda);
  b.connect(busy, next_busy);
  b.connect(ack, next_ack);
  b.connect(ack_ok, next_ack_ok);

  b.output("scl", scl);
  b.output("sda", sda);
  b.output("busy", busy);
  b.output("ack_ok", ack_ok);
  return b.take();
}

}  // namespace osss::expocu
