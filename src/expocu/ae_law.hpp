// ae_law.hpp — the auto-exposure control law as pure functions.
//
// Single source of truth for the algorithm: the OO simulation model uses
// these functions directly, and the hardware (both flows) is tested
// against them, tying every implementation level to one executable
// specification.

#pragma once

#include <array>
#include <cstdint>
#include <utility>

#include "expocu/params.hpp"

namespace osss::expocu {

struct AeState {
  std::uint16_t exposure = 0x0800;
  std::uint8_t gain = 64;
};

/// Frame statistics derived from the luminance histogram.
struct FrameStats {
  std::uint8_t mean = 0;
  std::uint16_t dark = 0;    ///< pixels in bins 0..3
  std::uint16_t bright = 0;  ///< pixels in bins 12..15
};

/// Statistics exactly as threshold_calc computes them in hardware.
inline FrameStats stats_from_histogram(
    const std::array<std::uint16_t, kHistBins>& hist) {
  FrameStats s;
  std::uint32_t wsum = 0;
  for (unsigned bin = 0; bin < kHistBins; ++bin) {
    const std::uint32_t center = bin * 16 + 8;
    wsum += static_cast<std::uint32_t>(hist[bin]) * center;
    if (bin < 4) s.dark = static_cast<std::uint16_t>(s.dark + hist[bin]);
    if (bin >= 12)
      s.bright = static_cast<std::uint16_t>(s.bright + hist[bin]);
  }
  s.mean = static_cast<std::uint8_t>((wsum & 0xffffff) >> 11);
  return s;
}

/// One auto-exposure step, exactly as param_calc computes it in hardware:
/// multiplicative servo with saturation, gain extension when the exposure
/// rail is hit.
inline AeState ae_step(const AeState& in, std::uint8_t mean) {
  constexpr std::uint16_t kExpMin = 0x0040;
  constexpr std::uint16_t kExpMax = 0xF000;
  constexpr std::uint8_t kGainMin = 64;
  constexpr std::uint8_t kGainMax = 240;
  constexpr std::uint8_t kGainStep = 4;

  AeState out = in;
  const bool err_neg = mean > kTargetMean;
  const std::uint8_t err_abs = static_cast<std::uint8_t>(
      err_neg ? mean - kTargetMean : kTargetMean - mean);
  // 24-bit product, as in hardware (16+8 bits, cannot wrap).
  const std::uint32_t product =
      static_cast<std::uint32_t>(in.exposure) * err_abs;
  const std::uint16_t delta =
      static_cast<std::uint16_t>((product >> kAeStepShift) & 0xffff);

  if (err_neg) {
    out.exposure = (in.exposure < static_cast<std::uint32_t>(delta) + kExpMin)
                       ? kExpMin
                       : static_cast<std::uint16_t>(in.exposure - delta);
  } else {
    const std::uint32_t grown =
        static_cast<std::uint32_t>(in.exposure) + delta;
    out.exposure =
        grown > kExpMax ? kExpMax : static_cast<std::uint16_t>(grown);
  }

  const bool saturated = out.exposure == kExpMax && !err_neg;
  if (saturated) {
    if (out.gain < kGainMax)
      out.gain = static_cast<std::uint8_t>(out.gain + kGainStep);
  } else if (out.gain > kGainMin) {
    out.gain = static_cast<std::uint8_t>(out.gain - kGainStep);
  }
  return out;
}

}  // namespace osss::expocu
