// threshold_hw.cpp — threshold calculation, both flows.
//
// Consumes the streamed histogram and derives per-frame statistics: the
// frame's mean luminance (weighted bin sum / pixel count) and the dark /
// bright pixel totals used as exposure thresholds.  Control-flow module
// with a multi-cycle budget — behavioural description territory (§12).

#include "expocu/hw.hpp"

namespace osss::expocu {

namespace {
constexpr unsigned kWsumBits = 24;
// Bin center = bin*16 + 8; dividing the weighted sum by the pixel count
// (2048) is a shift because the frame size is a power of two.
constexpr unsigned kMeanShift = 11;
constexpr unsigned kDarkBins = 4;    // bins 0..3 count as dark
constexpr unsigned kBrightBins = 12; // bins 12..15 count as bright
}  // namespace

hls::Behavior build_threshold_osss() {
  using namespace meta;
  hls::BehaviorBuilder bb("threshold_calc");
  const ExprPtr bin_valid = bb.input("bin_valid", 1);
  const ExprPtr bin_index = bb.input("bin_index", kHistBinBits);
  const ExprPtr bin_count = bb.input("bin_count", kHistCountBits);
  const ExprPtr frame_done = bb.input("frame_done", 1);

  const ExprPtr wsum = bb.var("wsum", kWsumBits);
  const ExprPtr dark = bb.var("dark", kHistCountBits);
  const ExprPtr bright = bb.var("bright", kHistCountBits);
  const ExprPtr mean = bb.var("mean", kPixelBits, 0, /*output=*/true);
  const ExprPtr dark_o = bb.var("dark_o", kHistCountBits, 0, true);
  const ExprPtr bright_o = bb.var("bright_o", kHistCountBits, 0, true);
  const ExprPtr ready = bb.var("ready", 1, 0, true);

  bb.wait();
  bb.loop([&] {
    bb.assign(ready, constant(1, 0));
    bb.if_(bin_valid, [&] {
      // center = index*16 + 8, widened before the multiply so nothing
      // wraps (automated width resolution in action).
      const ExprPtr center = add(
          binary(BinOp::kShl, zext(bin_index, kWsumBits), constant(5, 4)),
          constant(kWsumBits, 8));
      bb.assign(wsum, add(wsum, mul(zext(bin_count, kWsumBits), center)));
      bb.if_(ult(bin_index, constant(kHistBinBits, kDarkBins)),
             [&] { bb.assign(dark, add(dark, bin_count)); });
      bb.if_(ule(constant(kHistBinBits, kBrightBins), bin_index),
             [&] { bb.assign(bright, add(bright, bin_count)); });
      bb.if_(frame_done, [&] {
        bb.assign(mean,
                  slice(binary(BinOp::kLshr, wsum, constant(5, kMeanShift)),
                        kPixelBits - 1, 0));
        bb.assign(dark_o, dark);
        bb.assign(bright_o, bright);
        bb.assign(ready, constant(1, 1));
        bb.assign(wsum, constant(kWsumBits, 0));
        bb.assign(dark, constant(kHistCountBits, 0));
        bb.assign(bright, constant(kHistCountBits, 0));
      });
    });
    bb.wait();
  });
  return bb.take();
}

rtl::Module build_threshold_vhdl() {
  using rtl::Wire;
  rtl::Builder b("threshold_calc");
  const Wire bin_valid = b.input("bin_valid", 1);
  const Wire bin_index = b.input("bin_index", kHistBinBits);
  const Wire bin_count = b.input("bin_count", kHistCountBits);
  const Wire frame_done = b.input("frame_done", 1);

  const Wire wsum = b.reg("wsum", kWsumBits);
  const Wire dark = b.reg("dark", kHistCountBits);
  const Wire bright = b.reg("bright", kHistCountBits);
  const Wire mean = b.reg("mean", kPixelBits);
  const Wire dark_o = b.reg("dark_o", kHistCountBits);
  const Wire bright_o = b.reg("bright_o", kHistCountBits);
  const Wire ready = b.reg("ready", 1);

  const Wire center =
      b.add(b.shli(b.zext(bin_index, kWsumBits), 4), b.constant(kWsumBits, 8));
  const Wire wsum_acc =
      b.add(wsum, b.mul(b.zext(bin_count, kWsumBits), center));
  const Wire is_last = b.and_(bin_valid, frame_done);
  const Wire zero_w = b.constant(kWsumBits, 0);

  // wsum: accumulate while streaming; clear on the last bin (its value is
  // published into `mean` the same cycle).
  b.connect(wsum, b.mux(bin_valid, b.mux(is_last, zero_w, wsum_acc), wsum));

  const Wire dark_hit =
      b.and_(bin_valid, b.ult(bin_index, b.constant(kHistBinBits, kDarkBins)));
  const Wire dark_acc = b.mux(dark_hit, b.add(dark, bin_count), dark);
  b.connect(dark, b.mux(is_last, b.constant(kHistCountBits, 0), dark_acc));

  const Wire bright_hit = b.and_(
      bin_valid,
      b.ule(b.constant(kHistBinBits, kBrightBins), bin_index));
  const Wire bright_acc =
      b.mux(bright_hit, b.add(bright, bin_count), bright);
  b.connect(bright,
            b.mux(is_last, b.constant(kHistCountBits, 0), bright_acc));

  b.connect(mean, b.mux(is_last,
                        b.slice(b.lshri(wsum_acc, kMeanShift),
                                kPixelBits - 1, 0),
                        mean));
  b.connect(dark_o, b.mux(is_last, dark_acc, dark_o));
  b.connect(bright_o, b.mux(is_last, bright_acc, bright_o));
  b.connect(ready, is_last);

  b.output("mean", mean);
  b.output("dark_o", dark_o);
  b.output("bright_o", bright_o);
  b.output("ready", ready);
  return b.take();
}

}  // namespace osss::expocu
