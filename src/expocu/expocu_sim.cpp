#include "expocu/expocu_sim.hpp"

#include "expocu/hw.hpp"

namespace osss::expocu {

ExpoCuSim::ExpoCuSim(sysc::Context& ctx, std::string name,
                     sysc::Signal<bool>& clk, CameraModel& camera,
                     I2cBus& bus)
    : Module(ctx, std::move(name)),
      camera_(camera),
      master_(ctx, full_name() + ".i2c_master", clk, bus, kI2cPhase) {
  cthread("pixel_pipe", clk,
          [this]() -> sysc::Behavior { return pixel_pipe(); });
}

sysc::Behavior ExpoCuSim::pixel_pipe() {
  vsync_sync_reg_.Reset();
  valid_sync_reg_.Reset();
  hist_.fill(0);
  co_await sysc::wait();
  for (;;) {
    // Camera data synchronization (the SyncRegister objects of Fig. 5).
    vsync_sync_reg_.Write(camera_.vsync.read());
    valid_sync_reg_.Write(camera_.pixel_valid.read());

    if (vsync_sync_reg_.RisingEdge() && frames_ > 0) {
      // Frame boundary: threshold + parameter calculation on the frame
      // that just completed, then push the new settings over I2C.
      const FrameStats stats = stats_from_histogram(hist_);
      log_.push_back(stats);
      state_ = ae_step(state_, stats.mean);
      master_.start(kI2cAddress, kRegExposureHi,
                    {static_cast<std::uint8_t>(state_.exposure >> 8),
                     static_cast<std::uint8_t>(state_.exposure & 0xff),
                     state_.gain});
      hist_.fill(0);
    }
    if (vsync_sync_reg_.RisingEdge()) ++frames_;

    // Histogram acquisition.
    if (valid_sync_reg_.StableHigh()) {
      const unsigned bin = static_cast<unsigned>(
          camera_.pixel.read().to_u64() >> (kPixelBits - kHistBinBits));
      ++hist_[bin];
    }
    co_await sysc::wait();
  }
}

}  // namespace osss::expocu
