#include "expocu/i2c_bus.hpp"

namespace osss::expocu {

I2cSlaveModel::I2cSlaveModel(sysc::Context& ctx, std::string name,
                             I2cBus& bus, CameraRegisters& regs)
    : Module(ctx, std::move(name)), bus_(bus), regs_(regs) {
  method(
      "decode", [this] { on_bus_change(); },
      {&bus_.scl, &bus_.sda_master, &bus_.sda_slave});
}

void I2cSlaveModel::write_register(std::uint8_t value) {
  switch (reg_pointer_) {
    case kRegExposureHi:
      regs_.exposure = static_cast<std::uint16_t>((regs_.exposure & 0x00ff) |
                                                  (value << 8));
      break;
    case kRegExposureLo:
      regs_.exposure =
          static_cast<std::uint16_t>((regs_.exposure & 0xff00) | value);
      break;
    case kRegGain:
      regs_.gain = value;
      break;
    default:
      break;  // unknown registers are write-ignored, like real devices
  }
}

void I2cSlaveModel::on_bus_change() {
  const bool scl = bus_.scl.read();
  const bool sda = bus_.sda();

  if (scl && last_scl_) {
    if (last_sda_ && !sda) {
      // START (or repeated START): begin address phase.
      state_ = State::kAddress;
      bit_count_ = 0;
      shift_ = 0;
      addressed_ = false;
    } else if (!last_sda_ && sda) {
      // STOP.
      if (addressed_) ++transactions_;
      state_ = State::kIdle;
      addressed_ = false;
      bus_.sda_slave.write(true);
    }
  } else if (scl && !last_scl_) {
    // Rising SCL: sample a bit (the 9th clock is the slave's ACK slot and
    // carries no master data).
    if (state_ != State::kIdle) {
      if (bit_count_ < 8) {
        shift_ = static_cast<std::uint8_t>((shift_ << 1) | (sda ? 1 : 0));
        ++bit_count_;
        if (bit_count_ == 8) {
          // Byte complete: decide the acknowledge.
          bool ack = false;
          switch (state_) {
            case State::kAddress: {
              const unsigned addr7 = shift_ >> 1;
              const bool is_write = (shift_ & 1) == 0;
              if (addr7 == kI2cAddress && is_write) {
                addressed_ = true;
                ack = true;
                state_ = State::kRegister;
              } else {
                ++nacks_;
                state_ = State::kIdle;
              }
              break;
            }
            case State::kRegister:
              reg_pointer_ = shift_;
              ack = true;
              state_ = State::kData;
              break;
            case State::kData:
              write_register(shift_);
              ++reg_pointer_;  // auto-increment, like real imagers
              ++bytes_;
              ack = true;
              break;
            case State::kIdle:
              break;
          }
          pending_ack_ = ack;
        }
      } else {
        // The ACK clock itself: nothing to sample; byte framing restarts.
        bit_count_ = 0;
        shift_ = 0;
      }
    }
  } else if (!scl && last_scl_) {
    // Falling SCL: drive or release the ACK.
    if (pending_ack_) {
      bus_.sda_slave.write(false);
      pending_ack_ = false;
      ack_active_ = true;
    } else if (ack_active_) {
      bus_.sda_slave.write(true);
      ack_active_ = false;
    }
  }
  last_scl_ = scl;
  last_sda_ = sda;
}

I2cMasterSim::I2cMasterSim(sysc::Context& ctx, std::string name,
                           sysc::Signal<bool>& clk, I2cBus& bus,
                           unsigned clocks_per_phase)
    : Module(ctx, std::move(name)), bus_(bus), phase_(clocks_per_phase) {
  cthread("run", clk, [this]() -> sysc::Behavior { return run(); });
}

void I2cMasterSim::start(std::uint8_t address, std::uint8_t reg,
                         std::vector<std::uint8_t> payload) {
  if (busy_) return;
  address_ = address;
  reg_ = reg;
  payload_ = std::move(payload);
  pending_ = true;
}

sysc::Behavior I2cMasterSim::run() {
  bus_.scl.write(true);
  bus_.sda_master.write(true);
  co_await sysc::wait();
  for (;;) {
    if (!pending_) {
      co_await sysc::wait();
      continue;
    }
    pending_ = false;
    busy_ = true;
    ++transactions_;
    bool acked = true;

    // START: SDA falls while SCL is high.
    bus_.sda_master.write(false);
    co_await sysc::wait(phase_);

    // Address + register pointer + data bytes.
    std::vector<std::uint8_t> frame;
    frame.push_back(static_cast<std::uint8_t>(address_ << 1));  // write
    frame.push_back(reg_);
    for (const std::uint8_t b : payload_) frame.push_back(b);

    for (const std::uint8_t byte : frame) {
      for (int bit = 7; bit >= 0; --bit) {
        bus_.scl.write(false);
        co_await sysc::wait(phase_);
        bus_.sda_master.write(((byte >> bit) & 1) != 0);
        co_await sysc::wait(phase_);
        bus_.scl.write(true);
        co_await sysc::wait(2 * phase_);
      }
      // ACK clock: release SDA, sample while SCL high.
      bus_.scl.write(false);
      co_await sysc::wait(phase_);
      bus_.sda_master.write(true);
      co_await sysc::wait(phase_);
      bus_.scl.write(true);
      co_await sysc::wait(phase_);
      acked = acked && !bus_.sda();
      co_await sysc::wait(phase_);
    }

    // STOP: SDA rises while SCL is high.
    bus_.scl.write(false);
    co_await sysc::wait(phase_);
    bus_.sda_master.write(false);
    co_await sysc::wait(phase_);
    bus_.scl.write(true);
    co_await sysc::wait(phase_);
    bus_.sda_master.write(true);
    co_await sysc::wait(phase_);

    last_acked_ = acked;
    busy_ = false;
  }
}

}  // namespace osss::expocu
