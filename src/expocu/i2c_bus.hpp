// i2c_bus.hpp — bit-level I2C bus, slave model and the OO master
// (simulation view).
//
// The I2C master is the paper's development-effort showcase: "the
// implementation of a complete I2C master module e.g. took a single day"
// (§12).  Here the protocol is modelled at bit level with open-drain
// semantics: SDA is the wired-AND of the master's and the slave's
// drivers, START/STOP conditions are SDA transitions while SCL is high,
// bits are sampled on rising SCL, and the addressed slave acknowledges by
// pulling SDA low on the ninth clock.
//
// The slave decodes camera register writes (exposure hi/lo, gain, with
// pointer auto-increment), closing the exposure-control loop.

#pragma once

#include <cstdint>
#include <vector>

#include "expocu/camera_model.hpp"
#include "expocu/params.hpp"
#include "sysc/module.hpp"

namespace osss::expocu {

/// Open-drain bus wiring: scl driven by the master only, sda is the AND
/// of both parties' drivers.
class I2cBus {
public:
  explicit I2cBus(sysc::Context& ctx)
      : scl(ctx, "i2c.scl", true),
        sda_master(ctx, "i2c.sda_m", true),
        sda_slave(ctx, "i2c.sda_s", true) {}

  sysc::Signal<bool> scl;
  sysc::Signal<bool> sda_master;
  sysc::Signal<bool> sda_slave;

  /// Resolved bus level.
  bool sda() const { return sda_master.read() && sda_slave.read(); }
};

/// The camera's configuration slave: decodes writes into CameraRegisters.
class I2cSlaveModel : public sysc::Module {
public:
  I2cSlaveModel(sysc::Context& ctx, std::string name, I2cBus& bus,
                CameraRegisters& regs);

  std::uint64_t transaction_count() const noexcept { return transactions_; }
  std::uint64_t byte_count() const noexcept { return bytes_; }
  std::uint64_t nack_count() const noexcept { return nacks_; }

private:
  enum class State { kIdle, kAddress, kRegister, kData };

  I2cBus& bus_;
  CameraRegisters& regs_;
  State state_ = State::kIdle;
  unsigned bit_count_ = 0;
  std::uint8_t shift_ = 0;
  std::uint8_t reg_pointer_ = 0;
  bool addressed_ = false;
  bool pending_ack_ = false;
  bool ack_active_ = false;
  bool last_scl_ = true;
  bool last_sda_ = true;
  std::uint64_t transactions_ = 0;
  std::uint64_t bytes_ = 0;
  std::uint64_t nacks_ = 0;

  void on_bus_change();
  void write_register(std::uint8_t value);
};

/// The OO-style master (simulation view): a clocked thread that bit-bangs
/// a multi-byte register write when kicked via start().  The synthesis
/// views of the same behaviour live in i2c_master_hw.hpp.
class I2cMasterSim : public sysc::Module {
public:
  /// `clocks_per_phase` system clocks per SCL half-period.
  I2cMasterSim(sysc::Context& ctx, std::string name, sysc::Signal<bool>& clk,
               I2cBus& bus, unsigned clocks_per_phase = 4);

  /// Request a write of `payload` to consecutive registers starting at
  /// `reg` on the device at `address`.  Ignored while busy.
  void start(std::uint8_t address, std::uint8_t reg,
             std::vector<std::uint8_t> payload);

  bool busy() const noexcept { return busy_; }
  bool last_acked() const noexcept { return last_acked_; }
  std::uint64_t transaction_count() const noexcept { return transactions_; }

private:
  I2cBus& bus_;
  unsigned phase_;
  bool busy_ = false;
  bool pending_ = false;
  bool last_acked_ = false;
  std::uint8_t address_ = 0;
  std::uint8_t reg_ = 0;
  std::vector<std::uint8_t> payload_;
  std::uint64_t transactions_ = 0;

  sysc::Behavior run();
};

}  // namespace osss::expocu
