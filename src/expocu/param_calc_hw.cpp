// param_calc_hw.cpp — parameter (auto-exposure) calculation, both flows.
//
// Control law: multiplicative exposure servo.  error = target - mean; the
// exposure step is (exposure * |error|) >> 10, so the loop converges in a
// handful of frames regardless of the operating point; gain extends the
// range when exposure saturates.  Uses the multiplier — the resource the
// OSSS flow may share (HLS binding) or integrate as VHDL IP (§2, §7).
//
// The computation has a multi-thousand-cycle budget (once per frame), so
// the OSSS version deliberately spreads it over several states.

#include "expocu/hw.hpp"

namespace osss::expocu {

namespace {
constexpr unsigned kErrBits = 8;
constexpr unsigned kExpMin = 0x0040;
constexpr unsigned kExpMax = 0xF000;
constexpr unsigned kGainMin = 64;
constexpr unsigned kGainMax = 240;
constexpr unsigned kGainStep = 4;
}  // namespace

hls::Behavior build_param_calc_osss() {
  using namespace meta;
  hls::BehaviorBuilder bb("param_calc");
  const ExprPtr mean = bb.input("mean", kPixelBits);
  const ExprPtr ready = bb.input("ready", 1);

  const ExprPtr exposure =
      bb.var("exposure", kExposureBits, 0x0800, /*output=*/true);
  const ExprPtr gain = bb.var("gain", kGainBits, kGainMin, true);
  const ExprPtr update = bb.var("update", 1, 0, true);
  const ExprPtr err_abs = bb.var("err_abs", kErrBits);
  const ExprPtr err_neg = bb.var("err_neg", 1);  // 1: image too bright
  const ExprPtr delta = bb.var("delta", kExposureBits);

  const ExprPtr target = constant(kPixelBits, kTargetMean);

  bb.wait();
  bb.loop([&] {
    bb.assign(update, constant(1, 0));
    bb.wait_until(ready);
    // State 1: signed error split into sign + magnitude.
    bb.if_(ult(mean, target),
           [&] {
             bb.assign(err_neg, constant(1, 0));
             bb.assign(err_abs, sub(target, mean));
           },
           [&] {
             bb.assign(err_neg, constant(1, 1));
             bb.assign(err_abs, sub(mean, target));
           });
    bb.wait();
    // State 2: multiplicative step (the module's multiplier use).
    bb.assign(delta,
              slice(binary(BinOp::kLshr,
                           mul(zext(exposure, kExposureBits + kErrBits),
                               zext(err_abs, kExposureBits + kErrBits)),
                           constant(5, kAeStepShift)),
                    kExposureBits - 1, 0));
    bb.wait();
    // State 3: apply with saturation.
    bb.if_(err_neg,
           [&] {
             bb.if_(ult(exposure,
                        add(delta, constant(kExposureBits, kExpMin))),
                    [&] { bb.assign(exposure, constant(kExposureBits, kExpMin)); },
                    [&] { bb.assign(exposure, sub(exposure, delta)); });
           },
           [&] {
             const ExprPtr grown = add(exposure, delta);
             bb.if_(bor(ult(grown, exposure),
                        ult(constant(kExposureBits, kExpMax), grown)),
                    [&] { bb.assign(exposure, constant(kExposureBits, kExpMax)); },
                    [&] { bb.assign(exposure, grown); });
           });
    bb.wait();
    // State 4: gain servo — extend range when exposure saturates.
    bb.if_(band(eq(exposure, constant(kExposureBits, kExpMax)),
                bnot(err_neg)),
           [&] {
             bb.if_(ult(gain, constant(kGainBits, kGainMax)),
                    [&] { bb.assign(gain, add(gain, constant(kGainBits,
                                                             kGainStep))); });
           },
           [&] {
             bb.if_(ult(constant(kGainBits, kGainMin), gain),
                    [&] { bb.assign(gain, sub(gain, constant(kGainBits,
                                                             kGainStep))); });
           });
    bb.assign(update, constant(1, 1));
    bb.wait();
  });
  return bb.take();
}

rtl::Module build_param_calc_vhdl() {
  // Hand-tuned RTL: a three-stage valid-bit pipeline (error split, the
  // multiply registered on its own, apply+saturate) — the schedule an RTL
  // designer picks to keep the multiplier path clean at 66 MHz.
  using rtl::Wire;
  rtl::Builder b("param_calc");
  const Wire mean = b.input("mean", kPixelBits);
  const Wire ready = b.input("ready", 1);

  const Wire exposure =
      b.reg("exposure", kExposureBits, rtl::Bits(kExposureBits, 0x0800));
  const Wire gain = b.reg("gain", kGainBits, rtl::Bits(kGainBits, kGainMin));
  const Wire update = b.reg("update", 1);

  // Stage 1: error sign/magnitude.
  const Wire target = b.constant(kPixelBits, kTargetMean);
  const Wire v1 = b.reg("v1", 1);
  const Wire r_err_neg = b.reg("r_err_neg", 1);
  const Wire r_err_abs = b.reg("r_err_abs", kErrBits);
  b.connect(v1, ready);
  const Wire err_neg_c = b.ult(target, mean);
  b.connect(r_err_neg, b.mux(ready, err_neg_c, r_err_neg));
  b.connect(r_err_abs,
            b.mux(ready,
                  b.mux(err_neg_c, b.sub(mean, target), b.sub(target, mean)),
                  r_err_abs));

  // Stage 2: registered multiply.
  const unsigned mw = kExposureBits + kErrBits;
  const Wire v2 = b.reg("v2", 1);
  const Wire r_prod = b.reg("r_prod", mw);
  b.connect(v2, v1);
  b.connect(r_prod,
            b.mux(v1, b.mul(b.zext(exposure, mw), b.zext(r_err_abs, mw)),
                  r_prod));

  // Stage 3: apply with saturation.
  const Wire err_neg = r_err_neg;
  const Wire delta =
      b.slice(b.lshri(r_prod, kAeStepShift), kExposureBits - 1, 0);

  const Wire exp_min = b.constant(kExposureBits, kExpMin);
  const Wire exp_max = b.constant(kExposureBits, kExpMax);
  const Wire shrunk =
      b.mux(b.ult(exposure, b.add(delta, exp_min)), exp_min,
            b.sub(exposure, delta));
  const Wire grown_raw = b.add(exposure, delta);
  const Wire grown =
      b.mux(b.or_(b.ult(grown_raw, exposure), b.ult(exp_max, grown_raw)),
            exp_max, grown_raw);
  const Wire exposure_next = b.mux(err_neg, shrunk, grown);
  b.connect(exposure, b.mux(v2, exposure_next, exposure));

  const Wire saturated =
      b.and_(b.eq(exposure_next, exp_max), b.not_(err_neg));
  const Wire gain_up =
      b.mux(b.ult(gain, b.constant(kGainBits, kGainMax)),
            b.add(gain, b.constant(kGainBits, kGainStep)), gain);
  const Wire gain_down =
      b.mux(b.ult(b.constant(kGainBits, kGainMin), gain),
            b.sub(gain, b.constant(kGainBits, kGainStep)), gain);
  b.connect(gain, b.mux(v2, b.mux(saturated, gain_up, gain_down), gain));
  b.connect(update, v2);

  b.output("exposure", exposure);
  b.output("gain", gain);
  b.output("update", update);
  return b.take();
}

}  // namespace osss::expocu
