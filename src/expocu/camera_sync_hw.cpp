// camera_sync_hw.cpp — camera data synchronization, both flows.
//
// The asynchronous camera strobes (hsync/vsync/valid) pass through
// SyncRegister objects (the paper's Figs. 2-5 pattern); the pixel bus is
// pipelined by one stage so data and decoded strobes line up.  Single-cycle
// budget: everything happens every clock.

#include "expocu/hw.hpp"
#include "expocu/sync_register.hpp"

namespace osss::expocu {

hls::Behavior build_camera_sync_osss() {
  using namespace meta;
  hls::BehaviorBuilder bb("camera_sync");
  const ExprPtr data = bb.input("data", kPixelBits);
  const ExprPtr hsync = bb.input("hsync", 1);
  const ExprPtr vsync = bb.input("vsync", 1);
  const ExprPtr valid = bb.input("valid", 1);

  const ExprPtr pixel = bb.var("pixel", kPixelBits, 0, /*output=*/true);
  const ExprPtr sol = bb.var("sol", 1, 0, true);   // start of line
  const ExprPtr sof = bb.var("sof", 1, 0, true);   // start of frame
  const ExprPtr pvalid = bb.var("pvalid", 1, 0, true);

  // Two-deep synchronizers, exactly the paper's SyncRegister<2, 0>.
  const auto cls = sync_register_template().instantiate({2, 0});
  const ExprPtr hsync_reg = bb.object("hsync_sync_reg", cls);
  const ExprPtr vsync_reg = bb.object("vsync_sync_reg", cls);
  const ExprPtr valid_reg = bb.object("valid_sync_reg", cls);

  bb.call(hsync_reg, "Reset");
  bb.call(vsync_reg, "Reset");
  bb.call(valid_reg, "Reset");
  bb.wait();
  bb.loop([&] {
    bb.call(hsync_reg, "Write", {hsync});
    bb.call(vsync_reg, "Write", {vsync});
    bb.call(valid_reg, "Write", {valid});
    bb.assign(pixel, data);
    bb.assign(sol, bb.call_r(hsync_reg, "RisingEdge"));
    bb.assign(sof, bb.call_r(vsync_reg, "RisingEdge"));
    bb.assign(pvalid, bb.call_r(valid_reg, "StableHigh"));
    bb.wait();
  });
  return bb.take();
}

rtl::Module build_camera_sync_vhdl() {
  using rtl::Wire;
  rtl::Builder b("camera_sync");
  const Wire data = b.input("data", kPixelBits);
  const Wire hsync = b.input("hsync", 1);
  const Wire vsync = b.input("vsync", 1);
  const Wire valid = b.input("valid", 1);

  // Explicit 2-bit shift registers per strobe — the hand-resolved form.
  auto sync_pair = [&](const std::string& name, Wire in) {
    const Wire reg = b.reg(name, 2);
    b.connect(reg, b.concat({b.slice(reg, 0, 0), in}));
    return reg;
  };
  const Wire h = sync_pair("hsync_sync_reg", hsync);
  const Wire v = sync_pair("vsync_sync_reg", vsync);
  const Wire d = sync_pair("valid_sync_reg", valid);

  const Wire pixel = b.reg("pixel", kPixelBits);
  b.connect(pixel, data);

  auto rising = [&](Wire reg) {
    // After this cycle's shift: new bit0 = input, old bit0 becomes bit1.
    return b.and_(b.slice(reg, 0, 0), b.not_(b.slice(reg, 1, 1)));
  };
  const Wire sol = b.reg("sol", 1);
  b.connect(sol, rising(b.concat({b.slice(h, 0, 0), hsync})));
  const Wire sof = b.reg("sof", 1);
  b.connect(sof, rising(b.concat({b.slice(v, 0, 0), vsync})));
  const Wire pvalid = b.reg("pvalid", 1);
  const Wire shifted_valid = b.concat({b.slice(d, 0, 0), valid});
  b.connect(pvalid, b.and_(b.slice(shifted_valid, 0, 0),
                           b.slice(shifted_valid, 1, 1)));

  b.output("pixel", pixel);
  b.output("sol", sol);
  b.output("sof", sof);
  b.output("pvalid", pvalid);
  return b.take();
}

}  // namespace osss::expocu
