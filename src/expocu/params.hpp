// params.hpp — ExpoCU design parameters.
//
// The paper's ExpoCU runs at 66 MHz; frame geometry and histogram depth are
// scaled down from a production imager so the gate-level experiments run in
// seconds, without changing any datapath structure.

#pragma once

#include <cstdint>

namespace osss::expocu {

/// System clock: 66 MHz -> 15151 ps period (paper §2).
constexpr std::uint64_t kClockPeriodPs = 15151;
constexpr double kClockMhz = 66.0;

/// Frame geometry (scaled; a real imager would be 640x480+).
constexpr unsigned kFrameWidth = 64;
constexpr unsigned kFrameHeight = 32;
constexpr unsigned kPixelsPerFrame = kFrameWidth * kFrameHeight;

/// Luminance samples are 8 bit.
constexpr unsigned kPixelBits = 8;

/// Histogram: 16 bins over the top 4 luminance bits; counters sized to
/// hold a full frame (2048 < 2^16).
constexpr unsigned kHistBins = 16;
constexpr unsigned kHistBinBits = 4;
constexpr unsigned kHistCountBits = 16;

/// Exposure control registers.
constexpr unsigned kExposureBits = 16;
constexpr unsigned kGainBits = 8;
constexpr unsigned kTargetMean = 128;  ///< mid-grey auto-exposure target

/// AE servo step: delta_exposure = (exposure * |error|) >> kAeStepShift.
constexpr unsigned kAeStepShift = 9;

/// Camera I2C slave address (7 bit) and register map.
constexpr unsigned kI2cAddress = 0x48;
constexpr unsigned kRegExposureHi = 0x10;
constexpr unsigned kRegExposureLo = 0x11;
constexpr unsigned kRegGain = 0x12;

}  // namespace osss::expocu
