// reset_ctrl_hw.cpp — reset control, both flows.
//
// Synchronizes the external active-low power-on reset and stretches it to
// a fixed number of clean cycles so every downstream module sees one
// well-formed synchronous reset.

#include "expocu/hw.hpp"
#include "expocu/sync_register.hpp"

namespace osss::expocu {

namespace {
constexpr unsigned kStretch = 8;  // cycles of asserted reset after release
constexpr unsigned kCntBits = 4;
}  // namespace

hls::Behavior build_reset_ctrl_osss() {
  using namespace meta;
  hls::BehaviorBuilder bb("reset_ctrl");
  const ExprPtr por_n = bb.input("por_n", 1);
  const ExprPtr reset = bb.var("reset", 1, 1, /*output=*/true);
  const ExprPtr count = bb.var("count", kCntBits);

  // Two-stage synchronizer on the asynchronous input — SyncRegister again.
  const auto cls = sync_register_template().instantiate({2, 0});
  const ExprPtr sync = bb.object("por_sync_reg", cls);

  bb.call(sync, "Reset");
  bb.wait();
  bb.loop([&] {
    bb.call(sync, "Write", {por_n});
    bb.if_(bnot(bb.call_r(sync, "StableHigh")),
           [&] {
             // Reset (re)asserted: hold and restart the stretch counter.
             bb.assign(reset, constant(1, 1));
             bb.assign(count, constant(kCntBits, 0));
           },
           [&] {
             bb.if_(ult(count, constant(kCntBits, kStretch)),
                    [&] {
                      bb.assign(count,
                                add(count, constant(kCntBits, 1)));
                      bb.assign(reset, constant(1, 1));
                    },
                    [&] { bb.assign(reset, constant(1, 0)); });
           });
    bb.wait();
  });
  return bb.take();
}

rtl::Module build_reset_ctrl_vhdl() {
  using rtl::Wire;
  rtl::Builder b("reset_ctrl");
  const Wire por_n = b.input("por_n", 1);

  const Wire sync = b.reg("por_sync_reg", 2);
  b.connect(sync, b.concat({b.slice(sync, 0, 0), por_n}));
  const Wire shifted = b.concat({b.slice(sync, 0, 0), por_n});
  const Wire stable_high =
      b.and_(b.slice(shifted, 0, 0), b.slice(shifted, 1, 1));

  const Wire count = b.reg("count", kCntBits);
  const Wire reset = b.reg("reset", 1, rtl::Bits(1, 1));
  const Wire stretching = b.ult(count, b.constant(kCntBits, kStretch));
  b.connect(count,
            b.mux(stable_high,
                  b.mux(stretching, b.add(count, b.constant(kCntBits, 1)),
                        count),
                  b.constant(kCntBits, 0)));
  b.connect(reset, b.mux(stable_high,
                         b.mux(stretching, b.constant(1, 1),
                               b.constant(1, 0)),
                         b.constant(1, 1)));

  b.output("reset", reset);
  return b.take();
}

}  // namespace osss::expocu
