// i2c_master_systemc.cpp — I2C bus control, plain (non-OO) SystemC style.
//
// The same protocol engine as i2c_master_osss.cpp, written the way the
// paper's "pure SystemC implementation by keeping same hierarchical module
// structure" would look: no classes, every shift register and byte mux
// managed by hand as raw bit vectors.  Everything the ByteShifter object
// and the structured helpers did implicitly is spelled out explicitly —
// which is precisely where the estimated extra development day goes (§12).
// Functionally (and, state for state, cycle for cycle) it must be
// identical to the OSSS version; a test pins that equivalence.

#include "expocu/hw.hpp"

namespace osss::expocu {

hls::Behavior build_i2c_master_systemc() {
  using namespace meta;
  hls::BehaviorBuilder bb("i2c_master_sc");

  // ---- ports, declared one by one -----------------------------------
  const ExprPtr start = bb.input("start", 1);
  const ExprPtr exposure = bb.input("exposure", kExposureBits);
  const ExprPtr gain = bb.input("gain", kGainBits);
  const ExprPtr sda_in = bb.input("sda_in", 1);

  const ExprPtr scl = bb.var("scl", 1, 1, /*output=*/true);
  const ExprPtr sda = bb.var("sda", 1, 1, true);
  const ExprPtr busy = bb.var("busy", 1, 0, true);
  const ExprPtr ack_ok = bb.var("ack_ok", 1, 0, true);

  // ---- manually managed state (was: the ByteShifter object) ----------
  const ExprPtr shift_reg = bb.var("shift_reg", 8);
  const ExprPtr byte_idx = bb.var("byte_idx", 3);
  const ExprPtr bit_idx = bb.var("bit_idx", 4);
  const ExprPtr ack = bb.var("ack", 1);
  const ExprPtr cur_byte = bb.var("cur_byte", 8);

  bb.wait();
  bb.loop([&] {
    bb.assign(busy, constant(1, 0));
    bb.wait_until(start);
    bb.assign(busy, constant(1, 1));
    bb.assign(ack, constant(1, 1));

    // START condition: drive SDA low while SCL stays high.
    bb.assign(sda, constant(1, 0));
    bb.wait(kI2cPhase);

    // Iterate over the five frame bytes.
    bb.assign(byte_idx, constant(3, 0));
    bb.while_(ult(byte_idx, constant(3, 5)), [&] {
      // Manual byte selection mux (was: object Load call).
      bb.if_(eq(byte_idx, constant(3, 0)),
             [&] { bb.assign(cur_byte, constant(8, kI2cAddress << 1)); });
      bb.if_(eq(byte_idx, constant(3, 1)),
             [&] { bb.assign(cur_byte, constant(8, kRegExposureHi)); });
      bb.if_(eq(byte_idx, constant(3, 2)),
             [&] { bb.assign(cur_byte, slice(exposure, 15, 8)); });
      bb.if_(eq(byte_idx, constant(3, 3)),
             [&] { bb.assign(cur_byte, slice(exposure, 7, 0)); });
      bb.if_(eq(byte_idx, constant(3, 4)),
             [&] { bb.assign(cur_byte, gain); });
      // Manual load of the shift register.
      bb.assign(shift_reg, cur_byte);

      // Shift eight data bits out, MSB first.
      bb.assign(bit_idx, constant(4, 0));
      bb.while_(ult(bit_idx, constant(4, 8)), [&] {
        bb.assign(scl, constant(1, 0));
        bb.wait(kI2cPhase);
        // Manual shift-out: take bit 7, shift the register left by hand.
        bb.assign(sda, slice(shift_reg, 7, 7));
        bb.assign(shift_reg,
                  concat({slice(shift_reg, 6, 0), constant(1, 0)}));
        bb.wait(kI2cPhase);
        bb.assign(scl, constant(1, 1));
        bb.wait(2 * kI2cPhase);
        bb.assign(bit_idx, add(bit_idx, constant(4, 1)));
      });

      // Acknowledge slot: release SDA and sample the slave.
      bb.assign(scl, constant(1, 0));
      bb.wait(kI2cPhase);
      bb.assign(sda, constant(1, 1));
      bb.wait(kI2cPhase);
      bb.assign(scl, constant(1, 1));
      bb.wait(kI2cPhase);
      bb.assign(ack, band(ack, bnot(sda_in)));
      bb.wait(kI2cPhase);
      bb.assign(byte_idx, add(byte_idx, constant(3, 1)));
    });

    // STOP condition: SDA rises while SCL is high.
    bb.assign(scl, constant(1, 0));
    bb.wait(kI2cPhase);
    bb.assign(sda, constant(1, 0));
    bb.wait(kI2cPhase);
    bb.assign(scl, constant(1, 1));
    bb.wait(kI2cPhase);
    bb.assign(sda, constant(1, 1));
    bb.wait(kI2cPhase);
    bb.assign(ack_ok, ack);
    bb.wait();
  });
  return bb.take();
}

}  // namespace osss::expocu
