// histogram_hw.cpp — histogram acquisition (dataflow module, RTL style).
//
// Ping-pong banked: pixels of the current frame accumulate into one bank
// while the completed frame's bank is streamed out bin-by-bin and cleared.
// Bank swap happens on the vsync pixel, so acquisition never stalls — the
// paper's "cycle time of some modules is just one clock cycle" constraint.

#include "expocu/hw.hpp"

namespace osss::expocu {

rtl::Module build_histogram_rtl() {
  using rtl::Wire;
  rtl::Builder b("histogram");

  const Wire pixel = b.input("pixel", kPixelBits);
  const Wire valid = b.input("pixel_valid", 1);
  const Wire vsync = b.input("vsync", 1);

  const Wire one1 = b.constant(1, 1);
  const Wire zero16 = b.constant(kHistCountBits, 0);

  // Bank select: toggles on the first pixel of each frame.
  const Wire bank = b.reg("bank", 1);
  const Wire frame_start = b.and_(valid, vsync);
  const Wire next_bank = b.mux(frame_start, b.not_(bank), bank);
  b.connect(bank, next_bank);

  // 2 banks x 16 bins of 16-bit counters.
  rtl::MemHandle mem =
      b.memory("bins", 2 * kHistBins, kHistCountBits);  // addr = {bank, bin}

  // Accumulate the incoming pixel into the *new* bank (the bank value the
  // current pixel belongs to).
  const Wire bin = b.slice(pixel, kPixelBits - 1, kPixelBits - kHistBinBits);
  const Wire acc_addr = b.concat({next_bank, bin});
  const Wire acc_count = b.mem_read(mem, acc_addr);
  b.mem_write(mem, acc_addr,
              b.add(acc_count, b.constant(kHistCountBits, 1)), valid);

  // Stream-and-clear engine for the completed bank.
  const unsigned cw = 5;  // counts 0..16; 16 = idle
  const Wire cnt = b.reg("stream_cnt", cw, rtl::Bits(cw, kHistBins));
  const Wire stream_bank = b.reg("stream_bank", 1);
  const Wire streaming = b.ult(cnt, b.constant(cw, kHistBins));
  const Wire cnt_next = b.mux(
      frame_start, b.constant(cw, 0),
      b.mux(streaming, b.add(cnt, b.constant(cw, 1)), cnt));
  b.connect(cnt, cnt_next);
  b.connect(stream_bank, b.mux(frame_start, bank, stream_bank));

  const Wire stream_addr =
      b.concat({stream_bank, b.slice(cnt, kHistBinBits - 1, 0)});
  const Wire stream_count = b.mem_read(mem, stream_addr);
  b.mem_write(mem, stream_addr, zero16, streaming);  // clear after read

  b.output("bin_valid", streaming);
  b.output("bin_index", b.slice(cnt, kHistBinBits - 1, 0));
  b.output("bin_count", stream_count);
  b.output("frame_done",
           b.and_(streaming, b.eq(cnt, b.constant(cw, kHistBins - 1))));
  (void)one1;
  return b.take();
}

}  // namespace osss::expocu
