// expocu_sim.hpp — the complete ExpoCU as an executable OO model.
//
// This is the paper's "binary executable program file for simulation": the
// whole exposure control unit running on the simulation kernel with OSSS
// classes (SyncRegister synchronizers, the shared AE law), bit-banging the
// camera's I2C slave and closing the loop against the synthetic camera.
// The quickstart example and the simulation-speed experiment (R7) run this
// model.

#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "expocu/ae_law.hpp"
#include "expocu/camera_model.hpp"
#include "expocu/i2c_bus.hpp"
#include "expocu/sync_register.hpp"

namespace osss::expocu {

/// Camera control module: synchronization, histogram acquisition,
/// threshold + parameter calculation and I2C kick-off, as clocked threads.
class ExpoCuSim : public sysc::Module {
public:
  ExpoCuSim(sysc::Context& ctx, std::string name, sysc::Signal<bool>& clk,
            CameraModel& camera, I2cBus& bus);

  std::uint16_t exposure() const noexcept { return state_.exposure; }
  std::uint8_t gain() const noexcept { return state_.gain; }
  std::uint64_t frames_processed() const noexcept { return frames_; }
  const std::vector<FrameStats>& frame_log() const noexcept { return log_; }
  const I2cMasterSim& master() const noexcept { return master_; }

private:
  CameraModel& camera_;
  I2cMasterSim master_;

  SyncRegister<2, 0> vsync_sync_reg_;
  SyncRegister<2, 0> valid_sync_reg_;
  std::array<std::uint16_t, kHistBins> hist_{};
  AeState state_;
  std::uint64_t frames_ = 0;
  std::vector<FrameStats> log_;

  sysc::Behavior pixel_pipe();
};

/// Everything wired together: camera, bus, slave, control unit.
struct ExpoCuSystem {
  explicit ExpoCuSystem(sysc::Context& ctx)
      : clk(ctx, "clk", kClockPeriodPs),
        bus(ctx),
        camera(ctx, "camera", clk.signal(), regs),
        slave(ctx, "cam_slave", bus, regs),
        expocu(ctx, "expocu", clk.signal(), camera, bus) {}

  CameraRegisters regs;
  sysc::Clock clk;
  I2cBus bus;
  CameraModel camera;
  I2cSlaveModel slave;
  ExpoCuSim expocu;

  /// Run for `frames` camera frames.
  void run_frames(sysc::Context& ctx, unsigned frames) {
    const std::uint64_t frame_cycles = kPixelsPerFrame + 8;
    ctx.run_for(static_cast<sysc::Time>(frames) * frame_cycles *
                kClockPeriodPs);
  }
};

}  // namespace osss::expocu
