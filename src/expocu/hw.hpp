// hw.hpp — the ExpoCU hardware components, in both design flows.
//
// Every control component exists twice, mirroring the paper's parallel
// development (§12):
//
//   * OSSS flow   — behavioural description with OSSS classes; resolved by
//                   the synthesizer, scheduled by behavioral synthesis
//                   (build_*_osss(), returning an hls::Behavior);
//   * VHDL flow   — hand-written RTL in classic coding style
//                   (build_*_vhdl(), returning an rtl::Module directly).
//
// The histogram acquisition is a dataflow module; following the paper's
// remark that "in data flow oriented modules ... RTL coding might be
// preferred", both flows share its RTL description.
//
// The I2C master additionally exists in a third, "pure SystemC" style
// (manually resolved, no classes) used by the development-effort
// experiment R3; the three sources live in separate .cpp files so their
// description sizes can be measured.

#pragma once

#include "expocu/params.hpp"
#include "hls/behavior.hpp"
#include "rtl/builder.hpp"

namespace osss::expocu {

// --- camera data synchronization (1-cycle pipeline) ------------------------
// in:  data(8), hsync, vsync, valid   out: pixel(8), sol, sof, pvalid
hls::Behavior build_camera_sync_osss();
rtl::Module build_camera_sync_vhdl();

// --- histogram acquisition (dataflow; shared RTL) ------------------------
// in:  pixel(8), pixel_valid, vsync
// out: bin_valid, bin_index(4), bin_count(16), frame_done
rtl::Module build_histogram_rtl();

// --- threshold calculation --------------------------------------------------
// in:  bin_valid, bin_index(4), bin_count(16), frame_done
// out: mean(8), dark(16), bright(16), ready
hls::Behavior build_threshold_osss();
rtl::Module build_threshold_vhdl();

// --- parameter calculation (auto-exposure law) ----------------------------
// in:  mean(8), ready
// out: exposure(16), gain(8), update
hls::Behavior build_param_calc_osss();
rtl::Module build_param_calc_vhdl();

// --- I2C bus control ---------------------------------------------------------
// in:  start, exposure(16), gain(8), sda_in
// out: scl, sda, busy, ack_ok
hls::Behavior build_i2c_master_osss();     // OSSS style (classes)
hls::Behavior build_i2c_master_systemc();  // manually resolved SystemC style
rtl::Module build_i2c_master_vhdl();       // hand RTL FSM

/// SCL half-phase length in system clocks (shared by all three masters and
/// the simulation master so their waveforms line up).
constexpr unsigned kI2cPhase = 4;

// --- reset control -------------------------------------------------------
// in:  por_n (raw asynchronous reset, active low)
// out: reset (synchronized, stretched, active high)
hls::Behavior build_reset_ctrl_osss();
rtl::Module build_reset_ctrl_vhdl();

}  // namespace osss::expocu
