// sync_register.hpp — the paper's running example class, in both views.
//
// Executable C++ view (this file): `SyncRegister<REGSIZE, RESETVALUE>` is a
// templated shift register used to synchronize asynchronous camera inputs
// and detect edges, exactly the class of the paper's Figs. 2-5, including
// `operator==`, `operator<<` and tracing support (Figs. 9-11).
//
// Analyzer view: sync_register_template() produces the meta::ClassTemplate
// the OSSS synthesizer resolves (member -> `_this_` slice, template
// parameters forwarded).  The two views are equivalence-tested in
// tests/expocu/sync_register_test.cpp.

#pragma once

#include <ostream>

#include "meta/class_desc.hpp"
#include "sysc/bitvector.hpp"

namespace osss::expocu {

/// Shift register with reset value and edge detection (paper Fig. 2/3).
template <unsigned REGSIZE, std::uint64_t RESETVALUE>
class SyncRegister {
  static_assert(REGSIZE >= 2, "edge detection needs two samples");

public:
  SyncRegister() { Reset(); }

  /// Load the reset value.
  void Reset() { reg_value_ = sysc::BitVector<REGSIZE>(RESETVALUE); }

  /// Shift in a new sample at the LSB.
  void Write(bool new_value) {
    sysc::BitVector<REGSIZE> shifted = reg_value_.shl(1);
    shifted.set_bit(0, new_value);
    reg_value_ = shifted;
  }

  /// Newest sample at `index` high while the previous one was low.
  bool RisingEdge(unsigned index = 0) const {
    return reg_value_.bit(index) && !reg_value_.bit(index + 1);
  }
  bool FallingEdge(unsigned index = 0) const {
    return !reg_value_.bit(index) && reg_value_.bit(index + 1);
  }

  /// Debounced level: the last two samples agree.
  bool StableHigh() const { return reg_value_.bit(0) && reg_value_.bit(1); }
  bool StableLow() const { return !reg_value_.bit(0) && !reg_value_.bit(1); }

  bool Bit(unsigned index) const { return reg_value_.bit(index); }

  bool operator==(const SyncRegister& other) const = default;

  /// Object contents for sc_trace-style waveform dumping (paper Fig. 9).
  sysc::Bits to_bits() const { return reg_value_.to_bits(); }

  friend std::ostream& operator<<(std::ostream& os, const SyncRegister& r) {
    return os << r.reg_value_.to_string();
  }

private:
  sysc::BitVector<REGSIZE> reg_value_;
};

/// The analyzer's model of the class template above: instantiations are
/// cached, parameters forwarded into member widths and reset constants.
inline const meta::ClassTemplate& sync_register_template() {
  static const meta::ClassTemplate tmpl(
      "SyncRegister", [](const std::vector<std::uint64_t>& p) {
        using namespace meta;
        const unsigned regsize = static_cast<unsigned>(p.at(0));
        const std::uint64_t resetvalue = p.at(1);
        ClassDesc c("SyncRegister_" + std::to_string(regsize) + "_" +
                    std::to_string(resetvalue));
        c.add_member("RegValue", regsize);

        MethodDesc ctor;
        ctor.name = "__ctor__";
        ctor.body = {assign_member("RegValue", constant(regsize, resetvalue))};
        c.add_method(std::move(ctor));

        MethodDesc reset;
        reset.name = "Reset";
        reset.body = {assign_member("RegValue",
                                    constant(regsize, resetvalue))};
        c.add_method(std::move(reset));

        MethodDesc write;
        write.name = "Write";
        write.params = {{"NewValue", 1}};
        write.body = {assign_member(
            "RegValue",
            concat({slice(member("RegValue", regsize), regsize - 2, 0),
                    param("NewValue", 1)}))};
        c.add_method(std::move(write));

        MethodDesc rising;
        rising.name = "RisingEdge";
        rising.return_width = 1;
        rising.is_const = true;
        rising.body = {
            return_stmt(band(slice(member("RegValue", regsize), 0, 0),
                             bnot(slice(member("RegValue", regsize), 1, 1))))};
        c.add_method(std::move(rising));

        MethodDesc falling;
        falling.name = "FallingEdge";
        falling.return_width = 1;
        falling.is_const = true;
        falling.body = {
            return_stmt(band(bnot(slice(member("RegValue", regsize), 0, 0)),
                             slice(member("RegValue", regsize), 1, 1)))};
        c.add_method(std::move(falling));

        MethodDesc stable_high;
        stable_high.name = "StableHigh";
        stable_high.return_width = 1;
        stable_high.is_const = true;
        stable_high.body = {
            return_stmt(band(slice(member("RegValue", regsize), 0, 0),
                             slice(member("RegValue", regsize), 1, 1)))};
        c.add_method(std::move(stable_high));
        return c;
      });
  return tmpl;
}

}  // namespace osss::expocu
