// tape.hpp — RTL-IR compiled to a flat word-level instruction tape.
//
// Program::compile lowers an rtl::Module into a linear instruction stream
// executed over one preallocated contiguous uint64_t word arena — the
// Hardcaml-style "compiled cycle function" that makes a word-level reference
// simulator competitive with compiled-code simulation:
//
//   * every live node owns a fixed arena slot: 1 word for width <= 64,
//     ceil(width/64) words above;
//   * operands are pre-resolved arena offsets — no NodeId indirection, no
//     Bits construction, zero per-cycle allocation;
//   * dispatch is a tight switch over a packed opcode stream, with
//     single-word fast-path opcodes (the overwhelmingly common case) and
//     generic multi-word forms.
//
// The compiler runs constant folding (with a deduplicated constant pool),
// zext/slice/concat alias fusion (no-op casts share their operand's slot —
// sound because the arena keeps bits above a node's width zero), slice-chain
// composition, and dead-node pruning before emission.  The executor mirrors
// gate::Simulator's levelized engine: instructions are grouped by
// combinational level and a level is skipped entirely when none of its
// inputs changed since the last sweep (per-producer fanout-level lists mark
// levels dirty on change).  An optional L-lane mode stripes the arena per
// lane (lane l of a node lives at offset + l*words) so verify::CoSim can
// drive up to 64 stimulus lanes through the RTL level in one sweep.
//
// rtl::Simulator selects this engine with SimMode::kTape; the interpreter
// remains the oracle the tape is differentially tested against
// (tests/rtl/tape_test.cpp).

#pragma once

#include <cstdint>
#include <vector>

#include "rtl/ir.hpp"

namespace osss::rtl::tape {

/// "No arena slot": pruned/folded-away nodes and absent register enables.
constexpr std::uint32_t kNoSlot = 0xffffffffu;

/// Widest lane count Program::compile accepts.  The interpreted Engine is
/// additionally capped at 64 (one uint64_t of lane enables); lane counts
/// above that are executed by the native backend (rtl/codegen.hpp), which
/// keeps the same lane-major arena layout but runs lane groups through
/// explicit AVX2/AVX-512 vectors.
constexpr unsigned kMaxLanes = 512;

/// Tape opcodes.  `*1` forms are the single-word fast path; `*N` forms
/// handle multi-word (width > 64) values.  kConcat and kMemRead are
/// width-generic.
enum class TOp : std::uint8_t {
  // single-word (result and data operands fit one word)
  kAdd1, kSub1, kMul1, kAnd1, kOr1, kXor1, kNot1,
  kShlI1, kLshrI1, kAshrI1, kShlV1, kLshrV1,
  kEq1, kNe1, kUlt1, kUle1, kSlt1, kSle1,
  kMux1, kSlice1, kSExt1, kRedOr1, kRedAnd1, kRedXor1,
  // multi-word general forms
  kCopyN,  // zext into more words: copy + zero-fill
  kAddN, kSubN, kMulN, kAndN, kOrN, kXorN, kNotN,
  kShlIN, kLshrIN, kAshrIN, kShlVN, kLshrVN,
  kEqN, kNeN, kUltN, kUleN, kSltN, kSleN,
  kMuxN, kSliceN, kSExtN, kRedOrN, kRedAndN, kRedXorN,
  // width-generic
  kConcat,   // parts pool: [param, param+c) of Program::parts, LSB first
  kMemRead,  // param = memory index; a = address slot
};

/// One tape instruction.  Field meaning varies slightly by opcode:
///   dst       destination arena offset (lane stride = dw words)
///   a, b, c   operand arena offsets
///   dw        destination word count (also the data-operand lane stride)
///   aw        operand-a word count / lane stride; for kShlV*/kLshrV* it is
///             the word count of the *amount* operand (b); for kMux* the
///             1-bit select (a) always strides 1
///   width     destination bit width
///   a_width   operand bit width where semantics need it (compares, sext,
///             slice source, reductions)
///   param     shift amount / slice lo / memory index / parts-pool offset
///   mask      top-word mask of the destination width
struct Instr {
  TOp op = TOp::kAdd1;
  std::uint8_t dw = 1;
  std::uint8_t aw = 1;
  std::uint16_t width = 0;
  std::uint16_t a_width = 0;
  std::uint32_t dst = 0;
  std::uint32_t a = 0;
  std::uint32_t b = 0;
  std::uint32_t c = 0;
  std::uint32_t param = 0;
  std::uint64_t mask = 0;
};

/// One concatenation operand (LSB-first in the parts pool).
struct ConcatPart {
  std::uint32_t off = 0;     ///< arena offset (lane stride = words)
  std::uint16_t width = 0;
  std::uint16_t words = 1;
};

/// Compile-time statistics, exported through Simulator::Stats.
struct CompileStats {
  std::uint32_t tape_len = 0;     ///< instructions emitted
  std::uint32_t arena_words = 0;  ///< total arena size (all lanes)
  std::uint32_t levels = 0;       ///< combinational levels
  std::uint32_t const_folded = 0; ///< non-kConst nodes folded to constants
  std::uint32_t pruned = 0;       ///< dead combinational nodes dropped
  std::uint32_t fused = 0;        ///< alias + slice-chain fusions
};

/// Front-end analysis of a module: constant folding, alias/slice fusion and
/// liveness — passes 1–4 of the compiler, exposed so the lint subsystem's
/// dead-node rule (RTL-003) agrees with the pruner *by construction* rather
/// than by re-implementation.  `fate` classifies every node; the counters
/// feed CompileStats unchanged.
struct NodeAnalysis {
  enum class Fate : std::uint8_t {
    kSource,   ///< input or register output (always materialized)
    kFolded,   ///< compile-time constant (kConst or folded)
    kAliased,  ///< no-op cast sharing its representative's slot
    kLive,     ///< computed by a tape instruction
    kDead,     ///< unobservable; the compiler prunes it
  };

  std::vector<Fate> fate;     ///< per node
  std::vector<Bits> folded;   ///< per node; non-empty <=> constant value
  std::vector<NodeId> alias;  ///< per node; kInvalidNode when not aliased
  /// Per kSlice node: {ultimate source after chain composition, low bit}.
  std::vector<std::pair<NodeId, unsigned>> sliced;
  std::vector<std::vector<NodeId>> eff;  ///< post-fusion operands
  std::vector<char> live;                ///< per node (representatives)

  std::uint32_t const_folded = 0;
  std::uint32_t fused = 0;
  std::uint32_t pruned = 0;

  /// Final alias representative of a node.
  NodeId rep(NodeId id) const {
    while (alias[id] != kInvalidNode) id = alias[id];
    return id;
  }
};

/// Run the compiler front end alone (validates `m` first).
NodeAnalysis analyze(const Module& m);

/// The compiled program: instruction tape, arena layout and the
/// per-producer fanout-level lists that drive activity gating.  Members are
/// public by design — tests corrupt instructions to prove the differential
/// harness catches a broken tape (see tests/rtl/tape_test.cpp).
struct Program {
  unsigned lanes = 1;

  std::vector<Instr> instrs;  ///< grouped by level, ascending
  /// Level l owns instrs [level_offset[l], level_offset[l+1]).
  std::vector<std::uint32_t> level_offset;
  std::vector<ConcatPart> parts;

  // Fanout-level lists (CSR): which levels to mark dirty when a producer's
  // value changes.  One list per instruction, input port, register and
  // memory (memory content changes wake that memory's read levels).
  std::vector<std::uint32_t> instr_fl_off, instr_fl;
  std::vector<std::uint32_t> input_fl_off, input_fl;
  std::vector<std::uint32_t> reg_fl_off, reg_fl;
  std::vector<std::uint32_t> mem_fl_off, mem_fl;

  struct Port {
    std::uint32_t off = kNoSlot;
    std::uint16_t width = 0;
    std::uint16_t words = 1;
  };
  std::vector<Port> inputs;   ///< module input-port order
  std::vector<Port> outputs;  ///< module output-port order

  struct Reg {
    std::uint32_t q = kNoSlot;   ///< arena slot of the kReg node
    std::uint32_t d = kNoSlot;   ///< arena slot of the next-value input
    std::uint32_t en = kNoSlot;  ///< 1-bit enable slot; kNoSlot = always
    std::uint16_t width = 0;
    std::uint16_t words = 1;
    Bits init;
  };
  std::vector<Reg> regs;

  struct WritePort {
    std::uint32_t addr = kNoSlot;
    std::uint32_t data = kNoSlot;
    std::uint32_t en = kNoSlot;
    std::uint16_t addr_words = 1;  ///< lane stride of the address operand
  };
  struct Mem {
    unsigned depth = 0;
    unsigned width = 0;
    std::uint16_t words = 1;
    std::vector<WritePort> writes;
  };
  std::vector<Mem> mems;

  /// Constant-pool image: (arena offset, value) pairs the engine broadcasts
  /// into every lane once at construction.
  std::vector<std::pair<std::uint32_t, Bits>> const_init;

  std::size_t arena_size = 0;  ///< words, including lane striding

  /// Per-node arena slot (kNoSlot when pruned) and bit width, for
  /// Simulator::get() and debugging.
  std::vector<std::uint32_t> node_slot;
  std::vector<std::uint16_t> node_width;

  CompileStats stats;

  /// Lower `m` (validated first) for `lanes` stimulus lanes
  /// (1..kMaxLanes; the interpreted Engine accepts at most 64).
  static Program compile(const Module& m, unsigned lanes = 1);
};

/// Executes a compiled Program over its word arena.  One Engine = one
/// simulation instance; rtl::Simulator owns it behind SimMode::kTape.
class Engine {
public:
  Engine(const Module& m, unsigned lanes);

  Program& program() noexcept { return prog_; }
  const Program& program() const noexcept { return prog_; }
  unsigned lanes() const noexcept { return prog_.lanes; }

  struct RunStats {
    std::uint64_t cycles = 0;
    std::uint64_t nodes_evaluated = 0;   ///< instruction executions
    std::uint64_t levels_evaluated = 0;
    std::uint64_t levels_skipped = 0;
  };
  const RunStats& stats() const noexcept { return stats_; }

  void set_input(unsigned index, const Bits& value);
  /// Allocation-free fast path: drive all lanes with `value` truncated to
  /// the port width (any width; words above the first are cleared).
  void set_input_u64(unsigned index, std::uint64_t value);
  /// Drive all lanes of one input: bit_lanes[i] = lane word of input bit i
  /// (same layout as gate::Simulator::set_input_lanes).
  void set_input_lanes(unsigned index,
                       const std::vector<std::uint64_t>& bit_lanes);
  /// Drive all lanes of one input with one value per lane (values[l] =
  /// lane l, truncated to the port width).  The arena is lane-major, so
  /// this is a straight masked copy — no bit transpose — and the fast
  /// path for per-lane stimulus.  Ports wider than 64 bits throw.
  void set_input_values(unsigned index,
                        const std::vector<std::uint64_t>& values);

  Bits output(unsigned index, unsigned lane = 0);
  /// Allocation-free fast path: low 64 bits of an output, lane 0.
  std::uint64_t output_u64(unsigned index);
  /// Lane words of an output: element i = lanes of output bit i.
  std::vector<std::uint64_t> output_words(unsigned index);
  /// One value per lane of an output (<= 64-bit ports; throws otherwise).
  std::vector<std::uint64_t> output_values(unsigned index);

  /// Value of any live node (throws std::logic_error if pruned away).
  Bits node_value(NodeId id, unsigned lane = 0);
  bool node_live(NodeId id) const;

  void eval();
  void step();
  void reset();
  /// Restore the exact post-construction state (power-on values, inputs at
  /// 0) from a snapshot taken at construction; run_batch uses this to
  /// recycle one engine across stimulus blocks.
  void restore_poweron();

  Bits mem_word(unsigned mem_index, unsigned word, unsigned lane = 0);
  void poke_mem(unsigned mem_index, unsigned word, const Bits& value);
  void poke_reg(unsigned reg_index, const Bits& value);

private:
  Program prog_;
  std::vector<std::uint64_t> arena_;
  std::vector<std::uint64_t> poweron_arena_;  ///< ctor-time snapshot
  std::vector<std::uint64_t> scratch_;  ///< multi-word result staging
  std::vector<char> level_dirty_;
  bool pending_ = true;
  RunStats stats_;

  /// Memory content, per memory: word w of entry a in lane l lives at
  /// (a * lanes + l) * words + w.
  std::vector<std::vector<std::uint64_t>> mem_;

  // Pre-edge sampling buffers (sized once at construction).
  std::vector<std::uint64_t> reg_next_;      ///< sum(reg words) * lanes
  std::vector<std::uint32_t> reg_next_off_;  ///< per register
  std::vector<std::uint64_t> reg_en_;        ///< per register: lane bitmask
  struct Wp {  ///< flattened write port
    std::uint32_t mem = 0;
    Program::WritePort port;
    std::uint32_t addr_at = 0;  ///< offset into wp_addr_
    std::uint32_t data_at = 0;  ///< offset into wp_data_
    std::uint16_t words = 1;
  };
  std::vector<Wp> wps_;
  std::vector<std::uint64_t> wp_en_;    ///< per port: lane bitmask
  std::vector<std::uint64_t> wp_addr_;  ///< per port * lane
  std::vector<std::uint64_t> wp_data_;  ///< per port: words * lanes

  bool exec_one(const Instr& ins, unsigned lane);
  void mark_levels(const std::vector<std::uint32_t>& off,
                   const std::vector<std::uint32_t>& fl, std::uint32_t site);
  void mark_all_dirty();
  void write_lane_bits(std::uint32_t off, std::uint16_t words, unsigned lane,
                       const Bits& value, bool* changed);
  Bits read_lane_bits(std::uint32_t off, std::uint16_t words, unsigned width,
                      unsigned lane) const;
};

}  // namespace osss::rtl::tape
