// sim.hpp — cycle-accurate RTL simulator.
//
// Executes an rtl::Module directly: combinational nodes are evaluated in a
// precomputed (levelized) topological order, registers and memory writes
// commit on step().  This is the reference model for the gate-level netlist
// and one of the three simulators compared in the simulation-speed
// experiment (R7): faster than event-driven gate simulation, slower than
// the compiled OO simulation.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "rtl/ir.hpp"

namespace osss::rtl {

class Simulator {
public:
  /// Takes the module by value: the simulator owns its design, so
  /// temporaries (`Simulator sim(build_foo())`) are safe.
  explicit Simulator(Module module);

  /// Drive an input port.  Takes effect at the next eval.
  void set_input(const std::string& name, const Bits& value);
  void set_input(const std::string& name, std::uint64_t value);

  /// Current value of any node (evaluates combinational logic on demand).
  const Bits& get(NodeId id);
  /// Current value of an output port.
  const Bits& output(const std::string& name);

  /// One rising clock edge: evaluate, capture register/memory next state,
  /// commit.
  void step();
  /// N clock edges.
  void step(unsigned n) {
    for (unsigned i = 0; i < n; ++i) step();
  }

  /// Load every register with its init value and clear memories to zero
  /// (power-on reset).
  void reset();

  std::uint64_t cycle_count() const noexcept { return cycles_; }

  /// Direct memory inspection for tests (word index).
  const Bits& mem_word(unsigned mem_index, unsigned word);
  void poke_mem(unsigned mem_index, unsigned word, const Bits& value);
  /// Direct register override for fault-injection tests.
  void poke_reg(const std::string& name, const Bits& value);

private:
  const Module m_;
  std::vector<NodeId> order_;
  std::vector<Bits> values_;           // per node
  std::vector<Bits> reg_state_;        // per register
  std::vector<std::vector<Bits>> mem_state_;
  std::vector<Bits> input_values_;     // per input port index
  bool dirty_ = true;
  std::uint64_t cycles_ = 0;

  void eval();
  Bits compute(const Node& n) const;
};

}  // namespace osss::rtl
