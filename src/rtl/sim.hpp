// sim.hpp — cycle-accurate RTL simulator.
//
// Executes an rtl::Module with one of three engines, selected at
// construction (mirroring gate::Simulator):
//
//   * SimMode::kInterp — the reference interpreter: combinational nodes are
//     evaluated as Bits values in a precomputed topological order.  Slow but
//     transparently close to the IR semantics; this is the oracle every
//     other engine is differentially tested against.
//   * SimMode::kTape — the compiled word-level tape (rtl/tape.hpp): the
//     module is lowered once into a flat instruction stream over a
//     preallocated uint64_t arena with zero per-cycle allocation,
//     level-granular activity gating and optional multi-lane stimulus
//     (up to 64 lanes).
//   * SimMode::kNative — the tape lowered further to generated C++
//     (rtl/codegen.hpp), compiled at runtime and dlopen'd, with a
//     threaded-code fallback when no compiler is available.  Supports up to
//     tape::kMaxLanes stimulus lanes with SIMD lane groups.
//
// Ports can be addressed by name (convenience) or through cached
// InputHandle/OutputHandle values that skip the name lookup on the hot path.
// This is the reference model for the gate-level netlist and one of the
// simulators compared in the simulation-speed experiment (R7).

#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "par/batch.hpp"
#include "rtl/codegen.hpp"
#include "rtl/ir.hpp"
#include "rtl/tape.hpp"

namespace osss::par {
class Pool;
}

namespace osss::rtl {

enum class SimMode : std::uint8_t {
  kInterp,  ///< per-node Bits interpreter (the oracle)
  kTape,    ///< compiled word-level tape engine (interpreted, <= 64 lanes)
  kNative,  ///< generated native code / threaded-code fallback (wide lanes)
};

const char* sim_mode_name(SimMode mode);

/// Cached port indices: resolve once, drive every cycle without a name
/// lookup.  Obtained from Simulator::input_handle / output_handle.
struct InputHandle {
  std::uint32_t index = 0;
};
struct OutputHandle {
  std::uint32_t index = 0;
};

class Simulator {
public:
  /// Takes the module by value: the simulator owns its design, so
  /// temporaries (`Simulator sim(build_foo())`) are safe.  `lanes > 1`
  /// (parallel stimulus lanes) requires SimMode::kTape (<= 64) or
  /// SimMode::kNative (<= tape::kMaxLanes).  `codegen` tunes the native
  /// backend and is ignored by the other modes.
  explicit Simulator(Module module, SimMode mode = SimMode::kInterp,
                     unsigned lanes = 1, tape::CodegenOptions codegen = {});

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  const Module& module() const noexcept { return m_; }
  SimMode mode() const noexcept { return mode_; }
  unsigned lanes() const noexcept { return lanes_; }

  /// Resolve a port name once.  Throws std::logic_error on unknown names.
  InputHandle input_handle(const std::string& name) const;
  OutputHandle output_handle(const std::string& name) const;

  /// Drive an input port.  Takes effect at the next eval.  The u64 overload
  /// truncates `value` to the port width.
  void set_input(const std::string& name, const Bits& value);
  void set_input(const std::string& name, std::uint64_t value);
  void set_input(InputHandle h, const Bits& value);
  void set_input(InputHandle h, std::uint64_t value);

  /// Drive all lanes of one input (tape/native mode): input bit i occupies
  /// lane_words() consecutive elements starting at bit_lanes[i *
  /// lane_words()].  For <= 64 lanes this is the gate::Simulator layout
  /// (one lane word per bit).
  void set_input_lanes(InputHandle h,
                       const std::vector<std::uint64_t>& bit_lanes);
  /// Drive all lanes of one input with one value per lane — values[l] =
  /// lane l, truncated to the port width (tape/native mode, <= 64-bit
  /// ports).  The engines' arenas are lane-major, so this skips the bit
  /// transpose of set_input_lanes; use it for per-lane stimulus loops.
  void set_input_values(InputHandle h,
                        const std::vector<std::uint64_t>& values);
  /// Words per lane mask: ceil(lanes / 64).
  unsigned lane_words() const noexcept { return (lanes_ + 63) / 64; }

  /// Current value of any node (evaluates combinational logic on demand).
  /// In tape mode, throws std::logic_error for nodes the compiler pruned or
  /// folded away.
  Bits get(NodeId id, unsigned lane = 0);
  /// Current value of an output port (lane 0).
  Bits output(const std::string& name);
  Bits output(OutputHandle h);
  Bits output_lane(OutputHandle h, unsigned lane);
  /// Low 64 bits of an output, lane 0 — the allocation-free hot path for
  /// testbench loops (pairs with the u64 set_input overload).
  std::uint64_t output_u64(OutputHandle h);
  /// Lane words of an output: element i = lanes of output bit i.
  std::vector<std::uint64_t> output_words(OutputHandle h);
  /// One value per lane of an output (tape/native mode, <= 64-bit ports);
  /// the inverse of set_input_values.
  std::vector<std::uint64_t> output_values(OutputHandle h);

  /// One rising clock edge: evaluate, capture register/memory next state,
  /// commit.
  void step();
  /// N clock edges.
  void step(unsigned n) {
    for (unsigned i = 0; i < n; ++i) step();
  }

  /// Load every register with its init value and clear memories to zero
  /// (power-on reset).
  void reset();
  /// Power-on reset via the engine's construction-time arena snapshot
  /// (tape/native modes: one copy, inputs return to 0); the interpreter
  /// falls back to reset().  run_batch uses this to recycle one engine
  /// across stimulus blocks.
  void restore_poweron();

  std::uint64_t cycle_count() const noexcept;

  /// Run counters in the gate::Simulator::Stats style; interpreter mode
  /// reports cycles only.
  struct Stats {
    std::uint64_t cycles = 0;
    std::uint64_t nodes_evaluated = 0;
    std::uint64_t levels_evaluated = 0;
    std::uint64_t levels_skipped = 0;
    std::uint32_t tape_len = 0;
    std::uint32_t arena_words = 0;
    std::uint32_t levels = 0;
    std::uint32_t const_folded = 0;
    std::uint32_t pruned = 0;
    std::uint32_t fused = 0;
  };
  Stats stats() const;

  /// The compiled program (tape/native mode only; throws otherwise).
  /// Mutable so tests can corrupt instructions and prove CoSim catches a
  /// broken tape.
  tape::Program& tape();

  /// The native backend (kNative only; throws otherwise) — exposes
  /// native()/compile_log() for tests and diagnostics.
  tape::NativeEngine& native();

  /// Direct memory inspection for tests (word index).
  Bits mem_word(unsigned mem_index, unsigned word);
  void poke_mem(unsigned mem_index, unsigned word, const Bits& value);
  /// Direct register override for fault-injection tests.
  void poke_reg(const std::string& name, const Bits& value);

private:
  const Module m_;
  const SimMode mode_;
  const unsigned lanes_;
  std::unordered_map<std::string, std::uint32_t> input_index_;
  std::unordered_map<std::string, std::uint32_t> output_index_;

  // --- tape engine (mode_ == kTape) / native backend (kNative) -----------
  std::unique_ptr<tape::Engine> engine_;
  std::unique_ptr<tape::NativeEngine> native_;

  /// Apply `f` to whichever tape-family engine is active (kTape/kNative);
  /// both expose the same interface, so call sites stay mode-agnostic.
  template <typename F>
  decltype(auto) with_engine(F&& f) {
    if (engine_) return f(*engine_);
    return f(*native_);
  }
  template <typename F>
  decltype(auto) with_engine(F&& f) const {
    if (engine_) return f(*engine_);
    return f(*native_);
  }

  // --- interpreter state (mode_ == kInterp) ------------------------------
  std::vector<NodeId> order_;
  std::vector<Bits> values_;           // per node
  std::vector<Bits> reg_state_;        // per register
  std::vector<std::vector<Bits>> mem_state_;
  std::vector<Bits> input_values_;     // per input port index
  bool dirty_ = true;
  std::uint64_t cycles_ = 0;

  void eval();
  Bits compute(const Node& n) const;
  unsigned input_width(std::uint32_t index) const {
    return m_.node(m_.inputs()[index].node).width;
  }
};

/// Evaluate independent stimulus blocks of `m` across a pool (nullptr =
/// par::Pool::global()).  Same contract as gate::run_batch: each block runs
/// from power-on reset; per cycle the runner drives every input slot, steps,
/// then samples every output slot into block.out.
///
/// Scalar blocks (lanes == 1): slot s is input/output port s in module
/// declaration order, values truncated to the port width.  Lane blocks
/// (lanes a multiple of 64; kTape accepts exactly 64, kNative up to
/// tape::kMaxLanes): bit i of the ports concatenated LSB-first occupies
/// lanes/64 consecutive slots, each element one 64-lane word.
///
/// Bit-identical for every pool size.  Throws std::invalid_argument on
/// malformed blocks.
void run_batch(const Module& m, SimMode mode,
               std::span<par::StimulusBlock> blocks,
               par::Pool* pool = nullptr);

}  // namespace osss::rtl
