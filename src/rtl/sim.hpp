// sim.hpp — cycle-accurate RTL simulator.
//
// Executes an rtl::Module with one of two engines, selected at construction
// (mirroring gate::Simulator):
//
//   * SimMode::kInterp — the reference interpreter: combinational nodes are
//     evaluated as Bits values in a precomputed topological order.  Slow but
//     transparently close to the IR semantics; this is the oracle every
//     other engine is differentially tested against.
//   * SimMode::kTape — the compiled word-level tape (rtl/tape.hpp): the
//     module is lowered once into a flat instruction stream over a
//     preallocated uint64_t arena with zero per-cycle allocation,
//     level-granular activity gating and optional multi-lane stimulus.
//
// Ports can be addressed by name (convenience) or through cached
// InputHandle/OutputHandle values that skip the name lookup on the hot path.
// This is the reference model for the gate-level netlist and one of the
// simulators compared in the simulation-speed experiment (R7).

#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "par/batch.hpp"
#include "rtl/ir.hpp"
#include "rtl/tape.hpp"

namespace osss::par {
class Pool;
}

namespace osss::rtl {

enum class SimMode : std::uint8_t {
  kInterp,  ///< per-node Bits interpreter (the oracle)
  kTape,    ///< compiled word-level tape engine
};

const char* sim_mode_name(SimMode mode);

/// Cached port indices: resolve once, drive every cycle without a name
/// lookup.  Obtained from Simulator::input_handle / output_handle.
struct InputHandle {
  std::uint32_t index = 0;
};
struct OutputHandle {
  std::uint32_t index = 0;
};

class Simulator {
public:
  /// Takes the module by value: the simulator owns its design, so
  /// temporaries (`Simulator sim(build_foo())`) are safe.  `lanes > 1`
  /// (parallel stimulus lanes) requires SimMode::kTape.
  explicit Simulator(Module module, SimMode mode = SimMode::kInterp,
                     unsigned lanes = 1);

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  const Module& module() const noexcept { return m_; }
  SimMode mode() const noexcept { return mode_; }
  unsigned lanes() const noexcept { return lanes_; }

  /// Resolve a port name once.  Throws std::logic_error on unknown names.
  InputHandle input_handle(const std::string& name) const;
  OutputHandle output_handle(const std::string& name) const;

  /// Drive an input port.  Takes effect at the next eval.  The u64 overload
  /// truncates `value` to the port width.
  void set_input(const std::string& name, const Bits& value);
  void set_input(const std::string& name, std::uint64_t value);
  void set_input(InputHandle h, const Bits& value);
  void set_input(InputHandle h, std::uint64_t value);

  /// Drive all lanes of one input (tape mode): bit_lanes[i] holds the lane
  /// word of input bit i, same layout as gate::Simulator::set_input_lanes.
  void set_input_lanes(InputHandle h,
                       const std::vector<std::uint64_t>& bit_lanes);

  /// Current value of any node (evaluates combinational logic on demand).
  /// In tape mode, throws std::logic_error for nodes the compiler pruned or
  /// folded away.
  Bits get(NodeId id, unsigned lane = 0);
  /// Current value of an output port (lane 0).
  Bits output(const std::string& name);
  Bits output(OutputHandle h);
  Bits output_lane(OutputHandle h, unsigned lane);
  /// Low 64 bits of an output, lane 0 — the allocation-free hot path for
  /// testbench loops (pairs with the u64 set_input overload).
  std::uint64_t output_u64(OutputHandle h);
  /// Lane words of an output: element i = lanes of output bit i.
  std::vector<std::uint64_t> output_words(OutputHandle h);

  /// One rising clock edge: evaluate, capture register/memory next state,
  /// commit.
  void step();
  /// N clock edges.
  void step(unsigned n) {
    for (unsigned i = 0; i < n; ++i) step();
  }

  /// Load every register with its init value and clear memories to zero
  /// (power-on reset).
  void reset();

  std::uint64_t cycle_count() const noexcept;

  /// Run counters in the gate::Simulator::Stats style; interpreter mode
  /// reports cycles only.
  struct Stats {
    std::uint64_t cycles = 0;
    std::uint64_t nodes_evaluated = 0;
    std::uint64_t levels_evaluated = 0;
    std::uint64_t levels_skipped = 0;
    std::uint32_t tape_len = 0;
    std::uint32_t arena_words = 0;
    std::uint32_t levels = 0;
    std::uint32_t const_folded = 0;
    std::uint32_t pruned = 0;
    std::uint32_t fused = 0;
  };
  Stats stats() const;

  /// The compiled program (tape mode only; throws otherwise).  Mutable so
  /// tests can corrupt instructions and prove CoSim catches a broken tape.
  tape::Program& tape();

  /// Direct memory inspection for tests (word index).
  Bits mem_word(unsigned mem_index, unsigned word);
  void poke_mem(unsigned mem_index, unsigned word, const Bits& value);
  /// Direct register override for fault-injection tests.
  void poke_reg(const std::string& name, const Bits& value);

private:
  const Module m_;
  const SimMode mode_;
  const unsigned lanes_;
  std::unordered_map<std::string, std::uint32_t> input_index_;
  std::unordered_map<std::string, std::uint32_t> output_index_;

  // --- tape engine (mode_ == kTape) --------------------------------------
  std::unique_ptr<tape::Engine> engine_;

  // --- interpreter state (mode_ == kInterp) ------------------------------
  std::vector<NodeId> order_;
  std::vector<Bits> values_;           // per node
  std::vector<Bits> reg_state_;        // per register
  std::vector<std::vector<Bits>> mem_state_;
  std::vector<Bits> input_values_;     // per input port index
  bool dirty_ = true;
  std::uint64_t cycles_ = 0;

  void eval();
  Bits compute(const Node& n) const;
  unsigned input_width(std::uint32_t index) const {
    return m_.node(m_.inputs()[index].node).width;
  }
};

/// Evaluate independent stimulus blocks of `m` across a pool (nullptr =
/// par::Pool::global()).  Same contract as gate::run_batch: each block runs
/// from power-on reset; per cycle the runner drives every input slot, steps,
/// then samples every output slot into block.out.
///
/// Scalar blocks (lanes == 1): slot s is input/output port s in module
/// declaration order, values truncated to the port width.  Lane blocks
/// (lanes == 64, kTape mode only): slot s is the s-th bit of the ports
/// concatenated LSB-first, each element a 64-lane word.
///
/// Bit-identical for every pool size.  Throws std::invalid_argument on
/// malformed blocks.
void run_batch(const Module& m, SimMode mode,
               std::span<par::StimulusBlock> blocks,
               par::Pool* pool = nullptr);

}  // namespace osss::rtl
