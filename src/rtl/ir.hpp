// ir.hpp — register-transfer-level netlist intermediate representation.
//
// This IR is the meeting point of the two design flows the paper compares:
//
//   * the "VHDL flow": designs written directly against rtl::Builder in RTL
//     coding style (explicit registers, muxes, next-state logic);
//   * the "OSSS flow": the OSSS synthesizer + behavioral synthesis emit
//     into the same IR.
//
// A module is a DAG of combinational nodes plus registers (single implicit
// clock domain, synchronous) and synchronous-write/asynchronous-read
// memories.  From here the gate-level backend lowers to a technology
// netlist; the cycle simulator executes the IR directly.

#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sysc/bits.hpp"

namespace osss::rtl {

using sysc::Bits;

using NodeId = std::uint32_t;
constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);

enum class Op : std::uint8_t {
  kConst,    ///< literal; `value` holds the payload
  kInput,    ///< module input port
  kAdd,      ///< a + b (wraps)
  kSub,      ///< a - b (wraps)
  kMul,      ///< a * b truncated to operand width
  kAnd,
  kOr,
  kXor,
  kNot,
  kShlI,     ///< logical shift left by constant `param`
  kLshrI,    ///< logical shift right by constant `param`
  kAshrI,    ///< arithmetic shift right by constant `param`
  kShlV,     ///< logical shift left by variable amount (ins[1])
  kLshrV,    ///< logical shift right by variable amount (ins[1])
  kEq,       ///< 1-bit result
  kNe,
  kUlt,
  kUle,
  kSlt,
  kSle,
  kMux,      ///< ins = {sel(1), then, else}
  kSlice,    ///< bits [param + width - 1 .. param] of ins[0]
  kConcat,   ///< ins[0] is the MOST significant chunk
  kZExt,
  kSExt,
  kRedOr,    ///< reductions, 1-bit result
  kRedAnd,
  kRedXor,
  kReg,      ///< register output; `param` indexes Module::registers()
  kMemRead,  ///< asynchronous read; `param` indexes Module::memories()
};

const char* op_name(Op op);
bool op_is_commutative(Op op);

struct Node {
  Op op;
  unsigned width = 0;
  std::vector<NodeId> ins;
  Bits value;          ///< kConst payload
  unsigned param = 0;  ///< slice offset / shift amount / reg / mem index
  std::string name;    ///< debug name for inputs, registers, named nets
};

/// A synchronous register.  `enable == kInvalidNode` means always-enabled.
/// Reset is modelled by re-loading `init` (the simulator's reset() and the
/// gate backend's DFF reset pin both use it).
struct Register {
  NodeId q = kInvalidNode;       ///< the kReg node presenting the output
  NodeId d = kInvalidNode;       ///< next-value input (must be connected)
  NodeId enable = kInvalidNode;  ///< optional 1-bit clock enable
  Bits init;
  std::string name;
};

/// A memory with asynchronous read ports (kMemRead nodes) and synchronous,
/// enabled write ports.
struct Memory {
  std::string name;
  unsigned addr_width = 0;
  unsigned data_width = 0;
  unsigned depth = 0;  ///< number of words (<= 2^addr_width)
  struct WritePort {
    NodeId addr = kInvalidNode;
    NodeId data = kInvalidNode;
    NodeId enable = kInvalidNode;  ///< required for writes
  };
  std::vector<WritePort> writes;
};

struct PortRef {
  std::string name;
  NodeId node = kInvalidNode;
};

/// Area/complexity statistics used by the experiments' reports.
struct ModuleStats {
  std::size_t comb_nodes = 0;
  std::size_t register_bits = 0;
  std::size_t memory_bits = 0;
  std::size_t mux_nodes = 0;
  std::size_t arith_nodes = 0;
  std::map<std::string, std::size_t> op_histogram;
};

class Module {
public:
  explicit Module(std::string name) : name_(std::move(name)) {}

  const std::string& name() const noexcept { return name_; }

  const std::vector<Node>& nodes() const noexcept { return nodes_; }
  const Node& node(NodeId id) const { return nodes_.at(id); }
  std::size_t node_count() const noexcept { return nodes_.size(); }

  const std::vector<Register>& registers() const noexcept { return regs_; }
  const std::vector<Memory>& memories() const noexcept { return mems_; }
  const std::vector<PortRef>& inputs() const noexcept { return inputs_; }
  const std::vector<PortRef>& outputs() const noexcept { return outputs_; }

  NodeId find_input(const std::string& name) const;
  NodeId find_output(const std::string& name) const;

  /// Structural checks: widths, connected registers, port sanity,
  /// combinational acyclicity.  Throws std::logic_error on violation.
  void validate() const;

  /// Topological order of all nodes (sources first).  Throws on
  /// combinational cycles.
  std::vector<NodeId> topo_order() const;

  ModuleStats stats() const;

  /// Human-readable dump (one line per node) for debugging and tests.
  std::string dump() const;

private:
  friend class Builder;
  friend struct ModuleSurgeon;
  std::string name_;
  std::vector<Node> nodes_;
  std::vector<Register> regs_;
  std::vector<Memory> mems_;
  std::vector<PortRef> inputs_;
  std::vector<PortRef> outputs_;
};

/// Raw access to a module's innards, bypassing the Builder's width checks.
/// Exists for the lint subsystem's test vectors: rules like RTL-001/RTL-002
/// diagnose IR the Builder refuses to construct (combinational cycles,
/// width mismatches), so their tests need to inflict the damage directly.
/// Anything mutated through here may violate every Module invariant — only
/// hand the result to analyses that tolerate malformed IR (lint), never to
/// simulators or the gate backend.
struct ModuleSurgeon {
  static std::vector<Node>& nodes(Module& m) { return m.nodes_; }
  static std::vector<Register>& registers(Module& m) { return m.regs_; }
  static std::vector<Memory>& memories(Module& m) { return m.mems_; }
  static std::vector<PortRef>& inputs(Module& m) { return m.inputs_; }
  static std::vector<PortRef>& outputs(Module& m) { return m.outputs_; }
};

}  // namespace osss::rtl
