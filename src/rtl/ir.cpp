#include "rtl/ir.hpp"

#include <sstream>
#include <stdexcept>

namespace osss::rtl {

const char* op_name(Op op) {
  switch (op) {
    case Op::kConst: return "const";
    case Op::kInput: return "input";
    case Op::kAdd: return "add";
    case Op::kSub: return "sub";
    case Op::kMul: return "mul";
    case Op::kAnd: return "and";
    case Op::kOr: return "or";
    case Op::kXor: return "xor";
    case Op::kNot: return "not";
    case Op::kShlI: return "shli";
    case Op::kLshrI: return "lshri";
    case Op::kAshrI: return "ashri";
    case Op::kShlV: return "shlv";
    case Op::kLshrV: return "lshrv";
    case Op::kEq: return "eq";
    case Op::kNe: return "ne";
    case Op::kUlt: return "ult";
    case Op::kUle: return "ule";
    case Op::kSlt: return "slt";
    case Op::kSle: return "sle";
    case Op::kMux: return "mux";
    case Op::kSlice: return "slice";
    case Op::kConcat: return "concat";
    case Op::kZExt: return "zext";
    case Op::kSExt: return "sext";
    case Op::kRedOr: return "redor";
    case Op::kRedAnd: return "redand";
    case Op::kRedXor: return "redxor";
    case Op::kReg: return "reg";
    case Op::kMemRead: return "memread";
  }
  return "?";
}

bool op_is_commutative(Op op) {
  switch (op) {
    case Op::kAdd:
    case Op::kMul:
    case Op::kAnd:
    case Op::kOr:
    case Op::kXor:
    case Op::kEq:
    case Op::kNe:
      return true;
    default:
      return false;
  }
}

namespace {
[[noreturn]] void bad(const std::string& module, const std::string& msg) {
  throw std::logic_error("rtl::Module " + module + ": " + msg);
}
}  // namespace

NodeId Module::find_input(const std::string& name) const {
  for (const auto& p : inputs_)
    if (p.name == name) return p.node;
  return kInvalidNode;
}

NodeId Module::find_output(const std::string& name) const {
  for (const auto& p : outputs_)
    if (p.name == name) return p.node;
  return kInvalidNode;
}

std::vector<NodeId> Module::topo_order() const {
  // Kahn's algorithm over the combinational dependency graph.  kReg output
  // nodes are sources (their D input is a *sequential* dependency).
  std::vector<unsigned> pending(nodes_.size(), 0);
  std::vector<std::vector<NodeId>> users(nodes_.size());
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    const Node& n = nodes_[id];
    if (n.op == Op::kReg) continue;  // sequential boundary
    for (const NodeId in : n.ins) {
      users[in].push_back(id);
      ++pending[id];
    }
  }
  std::vector<NodeId> order;
  order.reserve(nodes_.size());
  std::vector<NodeId> ready;
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    if (pending[id] == 0) ready.push_back(id);
  }
  while (!ready.empty()) {
    const NodeId id = ready.back();
    ready.pop_back();
    order.push_back(id);
    for (const NodeId u : users[id]) {
      if (--pending[u] == 0) ready.push_back(u);
    }
  }
  if (order.size() != nodes_.size())
    bad(name_, "combinational cycle detected");
  return order;
}

void Module::validate() const {
  auto width_of = [&](NodeId id) { return nodes_.at(id).width; };
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    const Node& n = nodes_[id];
    if (n.width == 0) bad(name_, "node has zero width");
    for (const NodeId in : n.ins) {
      if (in >= nodes_.size()) bad(name_, "dangling input reference");
    }
    switch (n.op) {
      case Op::kConst:
        if (n.value.width() != n.width) bad(name_, "const width mismatch");
        break;
      case Op::kAdd:
      case Op::kSub:
      case Op::kMul:
      case Op::kAnd:
      case Op::kOr:
      case Op::kXor:
        if (n.ins.size() != 2 || width_of(n.ins[0]) != n.width ||
            width_of(n.ins[1]) != n.width)
          bad(name_, std::string(op_name(n.op)) + " width mismatch");
        break;
      case Op::kNot:
      case Op::kShlI:
      case Op::kLshrI:
      case Op::kAshrI:
        if (n.ins.size() != 1 || width_of(n.ins[0]) != n.width)
          bad(name_, "unary width mismatch");
        break;
      case Op::kShlV:
      case Op::kLshrV:
        if (n.ins.size() != 2 || width_of(n.ins[0]) != n.width)
          bad(name_, "variable shift width mismatch");
        break;
      case Op::kEq:
      case Op::kNe:
      case Op::kUlt:
      case Op::kUle:
      case Op::kSlt:
      case Op::kSle:
        if (n.ins.size() != 2 || n.width != 1 ||
            width_of(n.ins[0]) != width_of(n.ins[1]))
          bad(name_, "comparison shape error");
        break;
      case Op::kMux:
        if (n.ins.size() != 3 || width_of(n.ins[0]) != 1 ||
            width_of(n.ins[1]) != n.width || width_of(n.ins[2]) != n.width)
          bad(name_, "mux shape error");
        break;
      case Op::kSlice:
        if (n.ins.size() != 1 ||
            n.param + n.width > width_of(n.ins[0]))
          bad(name_, "slice out of range");
        break;
      case Op::kConcat: {
        if (n.ins.empty()) bad(name_, "empty concat");
        unsigned total = 0;
        for (const NodeId in : n.ins) total += width_of(in);
        if (total != n.width) bad(name_, "concat width mismatch");
        break;
      }
      case Op::kZExt:
      case Op::kSExt:
        if (n.ins.size() != 1 || width_of(n.ins[0]) > n.width)
          bad(name_, "extension narrows");
        break;
      case Op::kRedOr:
      case Op::kRedAnd:
      case Op::kRedXor:
        if (n.ins.size() != 1 || n.width != 1)
          bad(name_, "reduction shape error");
        break;
      case Op::kReg: {
        if (n.param >= regs_.size()) bad(name_, "reg index out of range");
        const Register& r = regs_[n.param];
        if (r.q != id) bad(name_, "reg back-reference broken");
        if (r.d == kInvalidNode)
          bad(name_, "register '" + r.name + "' has unconnected D input");
        if (width_of(r.d) != n.width) bad(name_, "register D width mismatch");
        if (r.enable != kInvalidNode && width_of(r.enable) != 1)
          bad(name_, "register enable must be 1 bit");
        if (r.init.width() != n.width) bad(name_, "register init width");
        break;
      }
      case Op::kMemRead: {
        if (n.param >= mems_.size()) bad(name_, "mem index out of range");
        const Memory& m = mems_[n.param];
        if (n.ins.size() != 1 || width_of(n.ins[0]) != m.addr_width)
          bad(name_, "mem read address width");
        if (n.width != m.data_width) bad(name_, "mem read data width");
        break;
      }
      case Op::kInput:
        break;
    }
  }
  for (const Memory& m : mems_) {
    if (m.depth == 0 || m.depth > (1u << m.addr_width))
      bad(name_, "memory depth out of range");
    for (const auto& w : m.writes) {
      if (w.addr == kInvalidNode || w.data == kInvalidNode ||
          w.enable == kInvalidNode)
        bad(name_, "memory write port incomplete");
      if (width_of(w.addr) != m.addr_width ||
          width_of(w.data) != m.data_width || width_of(w.enable) != 1)
        bad(name_, "memory write port width");
    }
  }
  for (const auto& p : outputs_) {
    if (p.node == kInvalidNode) bad(name_, "output '" + p.name + "' unbound");
  }
  (void)topo_order();  // acyclicity
}

ModuleStats Module::stats() const {
  ModuleStats s;
  for (const Node& n : nodes_) {
    ++s.op_histogram[op_name(n.op)];
    switch (n.op) {
      case Op::kInput:
      case Op::kConst:
      case Op::kReg:
      case Op::kSlice:
      case Op::kConcat:
      case Op::kZExt:
      case Op::kSExt:
        break;  // wiring, not logic
      case Op::kMux:
        ++s.mux_nodes;
        ++s.comb_nodes;
        break;
      case Op::kAdd:
      case Op::kSub:
      case Op::kMul:
        ++s.arith_nodes;
        ++s.comb_nodes;
        break;
      default:
        ++s.comb_nodes;
        break;
    }
  }
  for (const Register& r : regs_) s.register_bits += nodes_[r.q].width;
  for (const Memory& m : mems_)
    s.memory_bits += static_cast<std::size_t>(m.depth) * m.data_width;
  return s;
}

std::string Module::dump() const {
  std::ostringstream os;
  os << "module " << name_ << "\n";
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    const Node& n = nodes_[id];
    os << "  %" << id << ":" << n.width << " = " << op_name(n.op);
    if (n.op == Op::kConst) os << " " << n.value.to_hex_string();
    if (!n.name.empty()) os << " \"" << n.name << "\"";
    if (n.op == Op::kSlice || n.op == Op::kShlI || n.op == Op::kLshrI ||
        n.op == Op::kAshrI)
      os << " [" << n.param << "]";
    for (const NodeId in : n.ins) os << " %" << in;
    os << "\n";
  }
  for (const Register& r : regs_) {
    os << "  reg \"" << r.name << "\" q=%" << r.q << " d=%" << r.d;
    if (r.enable != kInvalidNode) os << " en=%" << r.enable;
    os << " init=" << r.init.to_hex_string() << "\n";
  }
  for (const Memory& m : mems_) {
    os << "  mem \"" << m.name << "\" " << m.depth << "x" << m.data_width
       << "\n";
  }
  for (const auto& p : inputs_) os << "  in " << p.name << " -> %" << p.node << "\n";
  for (const auto& p : outputs_)
    os << "  out " << p.name << " <- %" << p.node << "\n";
  return os.str();
}

}  // namespace osss::rtl
