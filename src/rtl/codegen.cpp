// codegen.cpp — NativeEngine: runtime compile + dlopen of the generated
// tape code, with a threaded-code dispatch fallback.
//
// The fallback executor binds one handler function per instruction at
// construction (Exec::pick), so eval() dispatches through a function-pointer
// table instead of the interpreter's opcode switch; each handler runs its
// lane loop internally.  Handler semantics mirror tape.cpp's exec_one word
// for word — both are differentially tested against the interpreter.

#include "rtl/codegen.hpp"

#include <algorithm>
#include <bit>
#include <cstdlib>
#include <stdexcept>

#include "jit/jit.hpp"
#include "rtl/tape_detail.hpp"

namespace osss::rtl::tape {

using detail::bits_from_words;
using detail::mask64;
using detail::span_fill;
using detail::span_lshr;
using detail::span_shl;
using detail::store1;
using detail::storeN;
using detail::top_mask;
using detail::words_of;

// --- threaded-code handlers ------------------------------------------------

struct NativeEngine::Exec {
  template <TOp OP>
  static bool run(NativeEngine& e, const Instr& ins) {
    std::uint64_t* const ar = e.arena_.data();
    const unsigned lanes = e.prog_.lanes;

    if constexpr (OP == TOp::kAdd1 || OP == TOp::kSub1 || OP == TOp::kMul1 ||
                  OP == TOp::kAnd1 || OP == TOp::kOr1 || OP == TOp::kXor1) {
      const std::uint64_t* a = ar + ins.a;
      const std::uint64_t* b = ar + ins.b;
      std::uint64_t* d = ar + ins.dst;
      const std::uint64_t m = ins.mask;
      std::uint64_t ch = 0;
      for (unsigned l = 0; l < lanes; ++l) {
        std::uint64_t nv;
        if constexpr (OP == TOp::kAdd1) nv = (a[l] + b[l]) & m;
        else if constexpr (OP == TOp::kSub1) nv = (a[l] - b[l]) & m;
        else if constexpr (OP == TOp::kMul1) nv = (a[l] * b[l]) & m;
        else if constexpr (OP == TOp::kAnd1) nv = a[l] & b[l];
        else if constexpr (OP == TOp::kOr1) nv = a[l] | b[l];
        else nv = a[l] ^ b[l];
        ch |= nv ^ d[l];
        d[l] = nv;
      }
      return ch != 0;
    } else if constexpr (OP == TOp::kNot1) {
      const std::uint64_t* a = ar + ins.a;
      std::uint64_t* d = ar + ins.dst;
      std::uint64_t ch = 0;
      for (unsigned l = 0; l < lanes; ++l) {
        const std::uint64_t nv = ~a[l] & ins.mask;
        ch |= nv ^ d[l];
        d[l] = nv;
      }
      return ch != 0;
    } else if constexpr (OP == TOp::kShlI1 || OP == TOp::kLshrI1 ||
                         OP == TOp::kSlice1) {
      const std::uint64_t* a = ar + ins.a;
      std::uint64_t* d = ar + ins.dst;
      std::uint64_t ch = 0;
      for (unsigned l = 0; l < lanes; ++l) {
        std::uint64_t nv;
        if constexpr (OP == TOp::kShlI1) nv = (a[l] << ins.param) & ins.mask;
        else if constexpr (OP == TOp::kLshrI1) nv = a[l] >> ins.param;
        else nv = (a[l] >> ins.param) & ins.mask;
        ch |= nv ^ d[l];
        d[l] = nv;
      }
      return ch != 0;
    } else if constexpr (OP == TOp::kAshrI1) {
      const std::uint64_t* a = ar + ins.a;
      std::uint64_t* d = ar + ins.dst;
      const unsigned w = ins.width;
      std::uint64_t ch = 0;
      for (unsigned l = 0; l < lanes; ++l) {
        const std::uint64_t x = a[l];
        const bool sign = ((x >> (w - 1)) & 1u) != 0;
        std::uint64_t nv;
        if (ins.param >= w) {
          nv = sign ? ins.mask : 0;
        } else {
          nv = x >> ins.param;
          if (sign) nv |= ins.mask ^ (ins.mask >> ins.param);
        }
        ch |= nv ^ d[l];
        d[l] = nv;
      }
      return ch != 0;
    } else if constexpr (OP == TOp::kShlV1 || OP == TOp::kLshrV1) {
      const std::uint64_t* a = ar + ins.a;
      std::uint64_t* d = ar + ins.dst;
      std::uint64_t ch = 0;
      for (unsigned l = 0; l < lanes; ++l) {
        const std::uint64_t amt =
            ar[ins.b + std::size_t{l} * ins.aw] & 0xffffffffu;
        std::uint64_t nv = 0;
        if (amt < ins.width) {
          if constexpr (OP == TOp::kShlV1) nv = (a[l] << amt) & ins.mask;
          else nv = a[l] >> amt;
        }
        ch |= nv ^ d[l];
        d[l] = nv;
      }
      return ch != 0;
    } else if constexpr (OP == TOp::kEq1 || OP == TOp::kNe1 ||
                         OP == TOp::kUlt1 || OP == TOp::kUle1) {
      const std::uint64_t* a = ar + ins.a;
      const std::uint64_t* b = ar + ins.b;
      std::uint64_t* d = ar + ins.dst;
      std::uint64_t ch = 0;
      for (unsigned l = 0; l < lanes; ++l) {
        bool r;
        if constexpr (OP == TOp::kEq1) r = a[l] == b[l];
        else if constexpr (OP == TOp::kNe1) r = a[l] != b[l];
        else if constexpr (OP == TOp::kUlt1) r = a[l] < b[l];
        else r = a[l] <= b[l];
        const std::uint64_t nv = r ? 1u : 0u;
        ch |= nv ^ d[l];
        d[l] = nv;
      }
      return ch != 0;
    } else if constexpr (OP == TOp::kSlt1 || OP == TOp::kSle1) {
      const std::uint64_t* a = ar + ins.a;
      const std::uint64_t* b = ar + ins.b;
      std::uint64_t* d = ar + ins.dst;
      const unsigned sh = 64 - ins.a_width;
      std::uint64_t ch = 0;
      for (unsigned l = 0; l < lanes; ++l) {
        const auto x = static_cast<std::int64_t>(a[l] << sh);
        const auto y = static_cast<std::int64_t>(b[l] << sh);
        const bool r = OP == TOp::kSlt1 ? x < y : x <= y;
        const std::uint64_t nv = r ? 1u : 0u;
        ch |= nv ^ d[l];
        d[l] = nv;
      }
      return ch != 0;
    } else if constexpr (OP == TOp::kMux1) {
      const std::uint64_t* s = ar + ins.a;
      const std::uint64_t* b = ar + ins.b;
      const std::uint64_t* c = ar + ins.c;
      std::uint64_t* d = ar + ins.dst;
      std::uint64_t ch = 0;
      for (unsigned l = 0; l < lanes; ++l) {
        const std::uint64_t nv = (s[l] & 1u) != 0 ? b[l] : c[l];
        ch |= nv ^ d[l];
        d[l] = nv;
      }
      return ch != 0;
    } else if constexpr (OP == TOp::kSExt1) {
      const std::uint64_t* a = ar + ins.a;
      std::uint64_t* d = ar + ins.dst;
      const std::uint64_t hi = ins.mask ^ mask64(ins.a_width);
      std::uint64_t ch = 0;
      for (unsigned l = 0; l < lanes; ++l) {
        const std::uint64_t x = a[l];
        const bool sign = ((x >> (ins.a_width - 1)) & 1u) != 0;
        const std::uint64_t nv = sign ? (x | hi) : x;
        ch |= nv ^ d[l];
        d[l] = nv;
      }
      return ch != 0;
    } else if constexpr (OP == TOp::kRedOr1 || OP == TOp::kRedAnd1 ||
                         OP == TOp::kRedXor1) {
      const std::uint64_t* a = ar + ins.a;
      std::uint64_t* d = ar + ins.dst;
      const std::uint64_t full = mask64(ins.a_width);
      std::uint64_t ch = 0;
      for (unsigned l = 0; l < lanes; ++l) {
        std::uint64_t nv;
        if constexpr (OP == TOp::kRedOr1) nv = a[l] != 0 ? 1u : 0u;
        else if constexpr (OP == TOp::kRedAnd1) nv = a[l] == full ? 1u : 0u;
        else nv = std::popcount(a[l]) & 1u;
        ch |= nv ^ d[l];
        d[l] = nv;
      }
      return ch != 0;
    } else {
      // Multi-word and width-generic forms: per-lane scratch staging, same
      // flow as the interpreter.
      std::uint64_t* s = e.scratch_.data();
      bool changed = false;
      for (unsigned l = 0; l < lanes; ++l)
        changed |= run_wide<OP>(e, ins, l, s);
      return changed;
    }
  }

  template <TOp OP>
  static bool run_wide(NativeEngine& e, const Instr& ins, unsigned lane,
                       std::uint64_t* s) {
    std::uint64_t* const ar = e.arena_.data();
    std::uint64_t* d = ar + ins.dst + std::size_t{lane} * ins.dw;

    if constexpr (OP == TOp::kCopyN) {
      const std::uint64_t* a = ar + ins.a + std::size_t{lane} * ins.aw;
      for (unsigned w = 0; w < ins.aw; ++w) s[w] = a[w];
      for (unsigned w = ins.aw; w < ins.dw; ++w) s[w] = 0;
      return storeN(d, s, ins.dw);
    } else if constexpr (OP == TOp::kAddN) {
      const std::uint64_t* a = ar + ins.a + std::size_t{lane} * ins.dw;
      const std::uint64_t* b = ar + ins.b + std::size_t{lane} * ins.dw;
      std::uint64_t carry = 0;
      for (unsigned w = 0; w < ins.dw; ++w) {
        const std::uint64_t t = a[w] + carry;
        const std::uint64_t c1 = t < carry ? 1u : 0u;
        s[w] = t + b[w];
        carry = c1 | (s[w] < b[w] ? 1u : 0u);
      }
      s[ins.dw - 1] &= ins.mask;
      return storeN(d, s, ins.dw);
    } else if constexpr (OP == TOp::kSubN) {
      const std::uint64_t* a = ar + ins.a + std::size_t{lane} * ins.dw;
      const std::uint64_t* b = ar + ins.b + std::size_t{lane} * ins.dw;
      std::uint64_t borrow = 0;
      for (unsigned w = 0; w < ins.dw; ++w) {
        const std::uint64_t t = a[w] - b[w];
        const std::uint64_t b1 = a[w] < b[w] ? 1u : 0u;
        s[w] = t - borrow;
        borrow = b1 | (t < borrow ? 1u : 0u);
      }
      s[ins.dw - 1] &= ins.mask;
      return storeN(d, s, ins.dw);
    } else if constexpr (OP == TOp::kMulN) {
      const std::uint64_t* a = ar + ins.a + std::size_t{lane} * ins.dw;
      const std::uint64_t* b = ar + ins.b + std::size_t{lane} * ins.dw;
      for (unsigned w = 0; w < ins.dw; ++w) s[w] = 0;
      for (unsigned i = 0; i < ins.dw; ++i) {
        if (a[i] == 0) continue;
        std::uint64_t carry = 0;
        for (unsigned j = 0; i + j < ins.dw; ++j) {
          const unsigned __int128 acc =
              static_cast<unsigned __int128>(a[i]) * b[j] + s[i + j] + carry;
          s[i + j] = static_cast<std::uint64_t>(acc);
          carry = static_cast<std::uint64_t>(acc >> 64);
        }
      }
      s[ins.dw - 1] &= ins.mask;
      return storeN(d, s, ins.dw);
    } else if constexpr (OP == TOp::kAndN || OP == TOp::kOrN ||
                         OP == TOp::kXorN) {
      const std::uint64_t* a = ar + ins.a + std::size_t{lane} * ins.dw;
      const std::uint64_t* b = ar + ins.b + std::size_t{lane} * ins.dw;
      for (unsigned w = 0; w < ins.dw; ++w) {
        if constexpr (OP == TOp::kAndN) s[w] = a[w] & b[w];
        else if constexpr (OP == TOp::kOrN) s[w] = a[w] | b[w];
        else s[w] = a[w] ^ b[w];
      }
      return storeN(d, s, ins.dw);
    } else if constexpr (OP == TOp::kNotN) {
      const std::uint64_t* a = ar + ins.a + std::size_t{lane} * ins.dw;
      for (unsigned w = 0; w < ins.dw; ++w) s[w] = ~a[w];
      s[ins.dw - 1] &= ins.mask;
      return storeN(d, s, ins.dw);
    } else if constexpr (OP == TOp::kShlIN) {
      span_shl(s, ar + ins.a + std::size_t{lane} * ins.dw, ins.dw, ins.param);
      s[ins.dw - 1] &= ins.mask;
      return storeN(d, s, ins.dw);
    } else if constexpr (OP == TOp::kLshrIN) {
      span_lshr(s, ar + ins.a + std::size_t{lane} * ins.dw, ins.dw,
                ins.param);
      return storeN(d, s, ins.dw);
    } else if constexpr (OP == TOp::kAshrIN) {
      const std::uint64_t* a = ar + ins.a + std::size_t{lane} * ins.dw;
      const unsigned w = ins.width;
      const bool sign = ((a[(w - 1) / 64] >> ((w - 1) % 64)) & 1u) != 0;
      if (ins.param >= w) {
        for (unsigned i = 0; i < ins.dw; ++i) s[i] = sign ? ~0ull : 0;
      } else {
        span_lshr(s, a, ins.dw, ins.param);
        if (sign && ins.param > 0) span_fill(s, w - ins.param, w);
      }
      s[ins.dw - 1] &= ins.mask;
      return storeN(d, s, ins.dw);
    } else if constexpr (OP == TOp::kShlVN || OP == TOp::kLshrVN) {
      const std::uint64_t* a = ar + ins.a + std::size_t{lane} * ins.dw;
      const std::uint64_t amt =
          ar[ins.b + std::size_t{lane} * ins.aw] & 0xffffffffu;
      if (amt >= ins.width) {
        for (unsigned w = 0; w < ins.dw; ++w) s[w] = 0;
      } else if (OP == TOp::kShlVN) {
        span_shl(s, a, ins.dw, static_cast<unsigned>(amt));
        s[ins.dw - 1] &= ins.mask;
      } else {
        span_lshr(s, a, ins.dw, static_cast<unsigned>(amt));
      }
      return storeN(d, s, ins.dw);
    } else if constexpr (OP == TOp::kEqN || OP == TOp::kNeN) {
      const std::uint64_t* a = ar + ins.a + std::size_t{lane} * ins.aw;
      const std::uint64_t* b = ar + ins.b + std::size_t{lane} * ins.aw;
      std::uint64_t diff = 0;
      for (unsigned w = 0; w < ins.aw; ++w) diff |= a[w] ^ b[w];
      const bool r = OP == TOp::kEqN ? diff == 0 : diff != 0;
      return store1(d, r ? 1u : 0u);
    } else if constexpr (OP == TOp::kUltN || OP == TOp::kUleN) {
      const std::uint64_t* a = ar + ins.a + std::size_t{lane} * ins.aw;
      const std::uint64_t* b = ar + ins.b + std::size_t{lane} * ins.aw;
      for (unsigned w = ins.aw; w-- > 0;)
        if (a[w] != b[w]) return store1(d, a[w] < b[w] ? 1u : 0u);
      return store1(d, OP == TOp::kUleN ? 1u : 0u);
    } else if constexpr (OP == TOp::kSltN || OP == TOp::kSleN) {
      const std::uint64_t* a = ar + ins.a + std::size_t{lane} * ins.aw;
      const std::uint64_t* b = ar + ins.b + std::size_t{lane} * ins.aw;
      const unsigned sw = (ins.a_width - 1) / 64, sb = (ins.a_width - 1) % 64;
      const bool sa = ((a[sw] >> sb) & 1u) != 0;
      const bool sbit = ((b[sw] >> sb) & 1u) != 0;
      if (sa != sbit) return store1(d, sa ? 1u : 0u);
      for (unsigned w = ins.aw; w-- > 0;)
        if (a[w] != b[w]) return store1(d, a[w] < b[w] ? 1u : 0u);
      return store1(d, OP == TOp::kSleN ? 1u : 0u);
    } else if constexpr (OP == TOp::kMuxN) {
      const bool sel = (ar[ins.a + lane] & 1u) != 0;
      const std::uint64_t* src =
          ar + (sel ? ins.b : ins.c) + std::size_t{lane} * ins.dw;
      return storeN(d, src, ins.dw);
    } else if constexpr (OP == TOp::kSliceN) {
      const std::uint64_t* a = ar + ins.a + std::size_t{lane} * ins.aw;
      for (unsigned j = 0; j < ins.dw; ++j) {
        const unsigned bitpos = ins.param + j * 64;
        const unsigned ws = bitpos / 64, bs = bitpos % 64;
        std::uint64_t v = ws < ins.aw ? a[ws] >> bs : 0;
        if (bs != 0 && ws + 1 < ins.aw) v |= a[ws + 1] << (64 - bs);
        s[j] = v;
      }
      s[ins.dw - 1] &= ins.mask;
      return storeN(d, s, ins.dw);
    } else if constexpr (OP == TOp::kSExtN) {
      const std::uint64_t* a = ar + ins.a + std::size_t{lane} * ins.aw;
      for (unsigned w = 0; w < ins.aw; ++w) s[w] = a[w];
      for (unsigned w = ins.aw; w < ins.dw; ++w) s[w] = 0;
      const unsigned sw = (ins.a_width - 1) / 64, sb = (ins.a_width - 1) % 64;
      if (((a[sw] >> sb) & 1u) != 0) span_fill(s, ins.a_width, ins.width);
      s[ins.dw - 1] &= ins.mask;
      return storeN(d, s, ins.dw);
    } else if constexpr (OP == TOp::kRedOrN) {
      const std::uint64_t* a = ar + ins.a + std::size_t{lane} * ins.aw;
      std::uint64_t any = 0;
      for (unsigned w = 0; w < ins.aw; ++w) any |= a[w];
      return store1(d, any != 0 ? 1u : 0u);
    } else if constexpr (OP == TOp::kRedAndN) {
      const std::uint64_t* a = ar + ins.a + std::size_t{lane} * ins.aw;
      bool all = true;
      for (unsigned w = 0; w + 1 < ins.aw; ++w) all &= a[w] == ~0ull;
      all &= a[ins.aw - 1] == top_mask(ins.a_width);
      return store1(d, all ? 1u : 0u);
    } else if constexpr (OP == TOp::kRedXorN) {
      const std::uint64_t* a = ar + ins.a + std::size_t{lane} * ins.aw;
      unsigned par = 0;
      for (unsigned w = 0; w < ins.aw; ++w)
        par += static_cast<unsigned>(std::popcount(a[w]));
      return store1(d, par & 1u);
    } else if constexpr (OP == TOp::kConcat) {
      for (unsigned w = 0; w < ins.dw; ++w) s[w] = 0;
      unsigned pos = 0;
      for (std::uint32_t pi = 0; pi < ins.c; ++pi) {
        const ConcatPart& part = e.prog_.parts[ins.param + pi];
        const std::uint64_t* src =
            ar + part.off + std::size_t{lane} * part.words;
        const unsigned wo = pos / 64, bo = pos % 64;
        for (unsigned w = 0; w < part.words; ++w) {
          s[wo + w] |= src[w] << bo;
          if (bo != 0 && wo + w + 1 < ins.dw)
            s[wo + w + 1] |= src[w] >> (64 - bo);
        }
        pos += part.width;
      }
      return storeN(d, s, ins.dw);
    } else if constexpr (OP == TOp::kMemRead) {
      const Program::Mem& pm = e.prog_.mems[ins.param];
      const std::uint64_t addr = ar[ins.a + std::size_t{lane} * ins.aw];
      if (ins.dw == 1) {
        const std::uint64_t v =
            addr < pm.depth
                ? e.mem_[ins.param][(addr * e.prog_.lanes + lane) * pm.words]
                : 0;
        return store1(d, v);
      }
      if (addr >= pm.depth) {
        for (unsigned w = 0; w < ins.dw; ++w) s[w] = 0;
      } else {
        const std::uint64_t* src = e.mem_[ins.param].data() +
                                   (addr * e.prog_.lanes + lane) * pm.words;
        for (unsigned w = 0; w < ins.dw; ++w) s[w] = src[w];
      }
      return storeN(d, s, ins.dw);
    } else {
      return false;  // unreachable: run() handles single-word ops
    }
  }

  static NativeEngine::Handler pick(TOp op) {
    switch (op) {
      case TOp::kAdd1: return &run<TOp::kAdd1>;
      case TOp::kSub1: return &run<TOp::kSub1>;
      case TOp::kMul1: return &run<TOp::kMul1>;
      case TOp::kAnd1: return &run<TOp::kAnd1>;
      case TOp::kOr1: return &run<TOp::kOr1>;
      case TOp::kXor1: return &run<TOp::kXor1>;
      case TOp::kNot1: return &run<TOp::kNot1>;
      case TOp::kShlI1: return &run<TOp::kShlI1>;
      case TOp::kLshrI1: return &run<TOp::kLshrI1>;
      case TOp::kAshrI1: return &run<TOp::kAshrI1>;
      case TOp::kShlV1: return &run<TOp::kShlV1>;
      case TOp::kLshrV1: return &run<TOp::kLshrV1>;
      case TOp::kEq1: return &run<TOp::kEq1>;
      case TOp::kNe1: return &run<TOp::kNe1>;
      case TOp::kUlt1: return &run<TOp::kUlt1>;
      case TOp::kUle1: return &run<TOp::kUle1>;
      case TOp::kSlt1: return &run<TOp::kSlt1>;
      case TOp::kSle1: return &run<TOp::kSle1>;
      case TOp::kMux1: return &run<TOp::kMux1>;
      case TOp::kSlice1: return &run<TOp::kSlice1>;
      case TOp::kSExt1: return &run<TOp::kSExt1>;
      case TOp::kRedOr1: return &run<TOp::kRedOr1>;
      case TOp::kRedAnd1: return &run<TOp::kRedAnd1>;
      case TOp::kRedXor1: return &run<TOp::kRedXor1>;
      case TOp::kCopyN: return &run<TOp::kCopyN>;
      case TOp::kAddN: return &run<TOp::kAddN>;
      case TOp::kSubN: return &run<TOp::kSubN>;
      case TOp::kMulN: return &run<TOp::kMulN>;
      case TOp::kAndN: return &run<TOp::kAndN>;
      case TOp::kOrN: return &run<TOp::kOrN>;
      case TOp::kXorN: return &run<TOp::kXorN>;
      case TOp::kNotN: return &run<TOp::kNotN>;
      case TOp::kShlIN: return &run<TOp::kShlIN>;
      case TOp::kLshrIN: return &run<TOp::kLshrIN>;
      case TOp::kAshrIN: return &run<TOp::kAshrIN>;
      case TOp::kShlVN: return &run<TOp::kShlVN>;
      case TOp::kLshrVN: return &run<TOp::kLshrVN>;
      case TOp::kEqN: return &run<TOp::kEqN>;
      case TOp::kNeN: return &run<TOp::kNeN>;
      case TOp::kUltN: return &run<TOp::kUltN>;
      case TOp::kUleN: return &run<TOp::kUleN>;
      case TOp::kSltN: return &run<TOp::kSltN>;
      case TOp::kSleN: return &run<TOp::kSleN>;
      case TOp::kMuxN: return &run<TOp::kMuxN>;
      case TOp::kSliceN: return &run<TOp::kSliceN>;
      case TOp::kSExtN: return &run<TOp::kSExtN>;
      case TOp::kRedOrN: return &run<TOp::kRedOrN>;
      case TOp::kRedAndN: return &run<TOp::kRedAndN>;
      case TOp::kRedXorN: return &run<TOp::kRedXorN>;
      case TOp::kConcat: return &run<TOp::kConcat>;
      case TOp::kMemRead: return &run<TOp::kMemRead>;
    }
    throw std::logic_error("tape codegen: unknown opcode");
  }
};

// --- NativeEngine ----------------------------------------------------------

NativeEngine::NativeEngine(const Module& m, unsigned lanes, CodegenOptions opt)
    : prog_(Program::compile(m, lanes)) {
  lw_ = (prog_.lanes + 63) / 64;
  arena_.assign(prog_.arena_size, 0);
  for (const auto& [off, v] : prog_.const_init)
    for (unsigned l = 0; l < prog_.lanes; ++l)
      write_lane_bits(off, static_cast<std::uint16_t>(words_of(v.width())), l,
                      v);
  std::uint16_t max_dw = 1;
  for (const Instr& ins : prog_.instrs)
    max_dw = std::max<std::uint16_t>(max_dw, ins.dw);
  scratch_.assign(max_dw, 0);
  mem_.resize(prog_.mems.size());
  for (std::size_t i = 0; i < prog_.mems.size(); ++i)
    mem_[i].assign(std::size_t{prog_.mems[i].depth} * prog_.mems[i].words *
                       prog_.lanes,
                   0);
  mem_ptrs_.resize(prog_.mems.size());
  for (std::size_t i = 0; i < prog_.mems.size(); ++i)
    mem_ptrs_[i] = mem_[i].data();
  std::uint32_t roff = 0;
  for (const auto& reg : prog_.regs) {
    reg_next_off_.push_back(roff);
    roff += reg.words * prog_.lanes;
  }
  reg_next_.assign(roff, 0);
  // One snapshot word per lane; regs with no enable slot are always-on,
  // so their rows are prefilled with 1 here and never rewritten.
  reg_en_.assign(std::size_t{prog_.regs.size()} * prog_.lanes, 0);
  for (std::size_t r = 0; r < prog_.regs.size(); ++r)
    if (prog_.regs[r].en == kNoSlot)
      std::fill_n(reg_en_.begin() + r * prog_.lanes, prog_.lanes, 1);
  for (const auto& reg : prog_.regs)
    for (unsigned l = 0; l < prog_.lanes; ++l)
      write_lane_bits(reg.q, reg.words, l, reg.init);
  std::uint32_t aat = 0, dat = 0;
  for (std::uint32_t mi = 0; mi < prog_.mems.size(); ++mi)
    for (const auto& port : prog_.mems[mi].writes) {
      Wp wp;
      wp.mem = mi;
      wp.port = port;
      wp.addr_at = aat;
      wp.data_at = dat;
      wp.words = prog_.mems[mi].words;
      aat += prog_.lanes;
      dat += wp.words * prog_.lanes;
      wps_.push_back(wp);
    }
  wp_en_.assign(std::size_t{wps_.size()} * prog_.lanes, 0);
  wp_addr_.assign(aat, 0);
  wp_data_.assign(dat, 0);
  level_dirty_.assign(prog_.stats.levels, 1);
  pending_ = true;

  handlers_.reserve(prog_.instrs.size());
  for (const Instr& ins : prog_.instrs) handlers_.push_back(Exec::pick(ins.op));

  if (jit::jit_disabled_by_env()) opt.force_fallback = true;
  try_native(opt);
  // Power-on snapshot: consts + reg inits written, inputs and mems all 0.
  poweron_arena_ = arena_;
}

NativeEngine::~NativeEngine() = default;

void NativeEngine::drop_native() {
  eval_fn_ = nullptr;
  step_fn_ = nullptr;
  obj_.reset();
}

namespace {
/// ABI probe shared between the post-compile check and the persistent
/// disk cache's load-time validation: a stale or truncated published
/// artifact must fail here and fall back to a fresh compile.
bool probe_tape_abi(const jit::Object& obj, unsigned lanes,
                    std::uint64_t arena_size) {
  const auto abi = reinterpret_cast<unsigned (*)()>(obj.sym("osss_tape_abi"));
  const auto lns =
      reinterpret_cast<unsigned (*)()>(obj.sym("osss_tape_lanes"));
  const auto asz = reinterpret_cast<unsigned long long (*)()>(
      obj.sym("osss_tape_arena"));
  const auto ssz = reinterpret_cast<unsigned long long (*)()>(
      obj.sym("osss_tape_scratch"));
  return abi != nullptr && abi() == 2u && lns != nullptr && lns() == lanes &&
         asz != nullptr && asz() == arena_size && ssz != nullptr &&
         obj.sym("osss_tape_eval") != nullptr &&
         obj.sym("osss_tape_step") != nullptr;
}
}  // namespace

void NativeEngine::try_native(const CodegenOptions& opt) {
  const std::string src = emit_cpp(prog_);
  CodegenOptions vopt = opt;
  vopt.validate = [this](const jit::Object& o) {
    return probe_tape_abi(o, prog_.lanes, prog_.arena_size);
  };
  obj_ = jit::compile(src, vopt, "osss-tape", compile_log_);
  if (obj_ == nullptr) return;
  if (!probe_tape_abi(*obj_, prog_.lanes, prog_.arena_size)) {
    compile_log_ += "\n[ABI check failed; using threaded-code dispatch]";
    drop_native();
    return;
  }
  const auto ssz = reinterpret_cast<unsigned long long (*)()>(
      obj_->sym("osss_tape_scratch"));
  eval_fn_ = reinterpret_cast<EvalFn>(obj_->sym("osss_tape_eval"));
  step_fn_ = reinterpret_cast<StepFn>(obj_->sym("osss_tape_step"));
  step_scratch_.assign(ssz(), 0);
}

void NativeEngine::write_lane_bits(std::uint32_t off, std::uint16_t words,
                                   unsigned lane, const Bits& value) {
  std::uint64_t* d = arena_.data() + off + std::size_t{lane} * words;
  for (unsigned w = 0; w < words; ++w) d[w] = value.word(w);
}

Bits NativeEngine::read_lane_bits(std::uint32_t off, std::uint16_t words,
                                  unsigned width, unsigned lane) const {
  return bits_from_words(arena_.data() + off + std::size_t{lane} * words,
                         width);
}

void NativeEngine::mark_levels(const std::vector<std::uint32_t>& off,
                               const std::vector<std::uint32_t>& fl,
                               std::uint32_t site) {
  for (std::uint32_t i = off[site]; i < off[site + 1]; ++i)
    level_dirty_[fl[i]] = 1;
}

void NativeEngine::mark_all_dirty() {
  std::fill(level_dirty_.begin(), level_dirty_.end(), 1);
  pending_ = true;
}

void NativeEngine::set_input(unsigned index, const Bits& value) {
  const Program::Port& port = prog_.inputs.at(index);
  bool changed = false;
  for (unsigned l = 0; l < prog_.lanes; ++l) {
    std::uint64_t* d = arena_.data() + port.off + std::size_t{l} * port.words;
    for (unsigned w = 0; w < port.words; ++w) {
      const std::uint64_t nv = value.word(w);
      if (d[w] != nv) {
        d[w] = nv;
        changed = true;
      }
    }
  }
  if (changed) {
    mark_levels(prog_.input_fl_off, prog_.input_fl, index);
    pending_ = true;
  }
}

void NativeEngine::set_input_u64(unsigned index, std::uint64_t value) {
  const Program::Port& port = prog_.inputs.at(index);
  if (port.width < 64) value &= (std::uint64_t{1} << port.width) - 1;
  bool changed = false;
  for (unsigned l = 0; l < prog_.lanes; ++l) {
    std::uint64_t* d = arena_.data() + port.off + std::size_t{l} * port.words;
    if (d[0] != value) {
      d[0] = value;
      changed = true;
    }
    for (unsigned w = 1; w < port.words; ++w)
      if (d[w] != 0) {
        d[w] = 0;
        changed = true;
      }
  }
  if (changed) {
    mark_levels(prog_.input_fl_off, prog_.input_fl, index);
    pending_ = true;
  }
}

void NativeEngine::set_input_lanes(unsigned index,
                                   const std::vector<std::uint64_t>& bit_lanes) {
  const Program::Port& port = prog_.inputs.at(index);
  if (bit_lanes.size() != std::size_t{port.width} * lw_)
    throw std::logic_error("tape codegen: set_input_lanes width mismatch");
  bool changed = false;
  for (unsigned l = 0; l < prog_.lanes; ++l) {
    std::uint64_t* d = arena_.data() + port.off + std::size_t{l} * port.words;
    for (unsigned w = 0; w < port.words; ++w) {
      const unsigned base = w * 64;
      const unsigned count = std::min(64u, port.width - base);
      std::uint64_t nv = 0;
      for (unsigned i = 0; i < count; ++i)
        nv |= ((bit_lanes[std::size_t{base + i} * lw_ + l / 64] >> (l % 64)) &
               1u)
              << i;
      if (d[w] != nv) {
        d[w] = nv;
        changed = true;
      }
    }
  }
  if (changed) {
    mark_levels(prog_.input_fl_off, prog_.input_fl, index);
    pending_ = true;
  }
}

void NativeEngine::set_input_values(unsigned index,
                                    const std::vector<std::uint64_t>& values) {
  const Program::Port& port = prog_.inputs.at(index);
  if (port.words != 1)
    throw std::logic_error(
        "tape codegen: set_input_values needs a <= 64-bit port");
  if (values.size() != prog_.lanes)
    throw std::logic_error("tape codegen: set_input_values lane count mismatch");
  const std::uint64_t mask =
      port.width < 64 ? (std::uint64_t{1} << port.width) - 1 : ~std::uint64_t{0};
  std::uint64_t* d = arena_.data() + port.off;
  std::uint64_t diff = 0;
  for (unsigned l = 0; l < prog_.lanes; ++l) {
    const std::uint64_t nv = values[l] & mask;
    diff |= nv ^ d[l];
    d[l] = nv;
  }
  if (diff != 0) {
    mark_levels(prog_.input_fl_off, prog_.input_fl, index);
    pending_ = true;
  }
}

Bits NativeEngine::output(unsigned index, unsigned lane) {
  eval();
  const Program::Port& port = prog_.outputs.at(index);
  return read_lane_bits(port.off, port.words, port.width, lane);
}

std::uint64_t NativeEngine::output_u64(unsigned index) {
  eval();
  return arena_[prog_.outputs.at(index).off];
}

std::vector<std::uint64_t> NativeEngine::output_words(unsigned index) {
  eval();
  const Program::Port& port = prog_.outputs.at(index);
  std::vector<std::uint64_t> out(std::size_t{port.width} * lw_, 0);
  for (unsigned l = 0; l < prog_.lanes; ++l) {
    const std::uint64_t* s =
        arena_.data() + port.off + std::size_t{l} * port.words;
    for (unsigned i = 0; i < port.width; ++i)
      out[std::size_t{i} * lw_ + l / 64] |= ((s[i / 64] >> (i % 64)) & 1u)
                                            << (l % 64);
  }
  return out;
}

std::vector<std::uint64_t> NativeEngine::output_values(unsigned index) {
  eval();
  const Program::Port& port = prog_.outputs.at(index);
  if (port.words != 1)
    throw std::logic_error("tape codegen: output_values needs a <= 64-bit port");
  const std::uint64_t* s = arena_.data() + port.off;
  return std::vector<std::uint64_t>(s, s + prog_.lanes);
}

Bits NativeEngine::node_value(NodeId id, unsigned lane) {
  eval();
  if (id >= prog_.node_slot.size() || prog_.node_slot[id] == kNoSlot)
    throw std::logic_error(
        "tape codegen: node was pruned or folded away (no arena slot)");
  const unsigned width = prog_.node_width[id];
  return read_lane_bits(prog_.node_slot[id],
                        static_cast<std::uint16_t>(words_of(width)), width,
                        lane);
}

bool NativeEngine::node_live(NodeId id) const {
  return id < prog_.node_slot.size() && prog_.node_slot[id] != kNoSlot;
}

void NativeEngine::eval() {
  if (!pending_) return;
  if (eval_fn_ != nullptr)
    eval_fn_(arena_.data(), mem_ptrs_.data(), level_dirty_.data());
  else
    fallback_eval();
  pending_ = false;
}

void NativeEngine::fallback_eval() {
  const std::size_t levels = prog_.level_offset.size() - 1;
  for (std::size_t lev = 0; lev < levels; ++lev) {
    if (level_dirty_[lev] == 0) {
      ++stats_.levels_skipped;
      continue;
    }
    level_dirty_[lev] = 0;
    ++stats_.levels_evaluated;
    const std::uint32_t b = prog_.level_offset[lev];
    const std::uint32_t e = prog_.level_offset[lev + 1];
    for (std::uint32_t i = b; i < e; ++i) {
      ++stats_.nodes_evaluated;
      if (handlers_[i](*this, prog_.instrs[i]))
        mark_levels(prog_.instr_fl_off, prog_.instr_fl, i);
    }
  }
}

void NativeEngine::step() {
  eval();
  if (step_fn_ != nullptr) {
    // Sample + commit + dirty marking all live in the generated entry
    // point; the scratch arena keeps the object stateless so cached
    // objects can be shared across engines.
    if (step_fn_(arena_.data(), mem_ptrs_.data(), level_dirty_.data(),
                 step_scratch_.data()) != 0)
      pending_ = true;
    ++stats_.cycles;
    return;
  }
  const unsigned lanes = prog_.lanes;
  // Sample next state before committing anything: all registers and write
  // ports observe the same pre-edge values (matches the interpreter).
  // Enables live one word per lane in the lane-major arena, so the
  // snapshot is a contiguous copy and the commits below stay branchless.
  for (std::size_t r = 0; r < prog_.regs.size(); ++r) {
    const Program::Reg& reg = prog_.regs[r];
    std::uint64_t any = 1;
    if (reg.en != kNoSlot) {
      std::uint64_t* en = reg_en_.data() + r * lanes;
      any = 0;
      for (unsigned l = 0; l < lanes; ++l) any |= en[l] = arena_[reg.en + l];
    }
    if (any != 0)
      std::copy(arena_.begin() + reg.d,
                arena_.begin() + reg.d + std::size_t{reg.words} * lanes,
                reg_next_.begin() + reg_next_off_[r]);
  }
  for (std::size_t wi = 0; wi < wps_.size(); ++wi) {
    const Wp& wp = wps_[wi];
    std::uint64_t* en = wp_en_.data() + wi * lanes;
    std::uint64_t any = 0;
    for (unsigned l = 0; l < lanes; ++l) any |= en[l] = arena_[wp.port.en + l];
    if (any == 0) continue;
    for (unsigned l = 0; l < lanes; ++l)
      wp_addr_[wp.addr_at + l] =
          arena_[wp.port.addr + std::size_t{l} * wp.port.addr_words];
    std::copy(arena_.begin() + wp.port.data,
              arena_.begin() + wp.port.data + std::size_t{wp.words} * lanes,
              wp_data_.begin() + wp.data_at);
  }
  // Commit registers.  The single-word case (the common one) is a
  // branchless masked merge over contiguous lanes — vectorizable.
  for (std::size_t r = 0; r < prog_.regs.size(); ++r) {
    const std::uint64_t* en = reg_en_.data() + r * lanes;
    const Program::Reg& reg = prog_.regs[r];
    std::uint64_t diff = 0;
    if (reg.words == 1) {
      std::uint64_t* q = arena_.data() + reg.q;
      const std::uint64_t* nd = reg_next_.data() + reg_next_off_[r];
      for (unsigned l = 0; l < lanes; ++l) {
        const std::uint64_t m = ~((en[l] & 1u) - 1);  // en ? ~0 : 0
        const std::uint64_t nv = (q[l] & ~m) | (nd[l] & m);
        diff |= nv ^ q[l];
        q[l] = nv;
      }
    } else {
      for (unsigned l = 0; l < lanes; ++l) {
        if ((en[l] & 1u) == 0) continue;
        std::uint64_t* q = arena_.data() + reg.q + std::size_t{l} * reg.words;
        const std::uint64_t* nd =
            reg_next_.data() + reg_next_off_[r] + std::size_t{l} * reg.words;
        for (unsigned w = 0; w < reg.words; ++w) {
          diff |= q[w] ^ nd[w];
          q[w] = nd[w];
        }
      }
    }
    if (diff != 0) {
      mark_levels(prog_.reg_fl_off, prog_.reg_fl,
                  static_cast<std::uint32_t>(r));
      pending_ = true;
    }
  }
  // Commit memory writes (port order = declaration order; later ports win).
  for (std::size_t wi = 0; wi < wps_.size(); ++wi) {
    const std::uint64_t* en = wp_en_.data() + wi * lanes;
    const Wp& wp = wps_[wi];
    const Program::Mem& pm = prog_.mems[wp.mem];
    bool changed = false;
    for (unsigned l = 0; l < lanes; ++l) {
      if ((en[l] & 1u) == 0) continue;
      const std::uint64_t addr = wp_addr_[wp.addr_at + l];
      if (addr >= pm.depth) continue;
      std::uint64_t* e = mem_[wp.mem].data() + (addr * lanes + l) * pm.words;
      const std::uint64_t* s =
          wp_data_.data() + wp.data_at + std::size_t{l} * pm.words;
      for (unsigned w = 0; w < pm.words; ++w)
        if (e[w] != s[w]) {
          e[w] = s[w];
          changed = true;
        }
    }
    if (changed) {
      mark_levels(prog_.mem_fl_off, prog_.mem_fl, wp.mem);
      pending_ = true;
    }
  }
  ++stats_.cycles;
}

void NativeEngine::reset() {
  for (const Program::Reg& reg : prog_.regs)
    for (unsigned l = 0; l < prog_.lanes; ++l)
      write_lane_bits(reg.q, reg.words, l, reg.init);
  for (auto& words : mem_) std::fill(words.begin(), words.end(), 0);
  mark_all_dirty();
}

void NativeEngine::restore_poweron() {
  arena_ = poweron_arena_;
  for (auto& words : mem_) std::fill(words.begin(), words.end(), 0);
  mark_all_dirty();
}

Bits NativeEngine::mem_word(unsigned mem_index, unsigned word, unsigned lane) {
  const Program::Mem& pm = prog_.mems.at(mem_index);
  if (word >= pm.depth)
    throw std::out_of_range("tape codegen: mem word out of range");
  const std::uint64_t* s =
      mem_[mem_index].data() +
      (std::size_t{word} * prog_.lanes + lane) * pm.words;
  return bits_from_words(s, pm.width);
}

void NativeEngine::poke_mem(unsigned mem_index, unsigned word,
                            const Bits& value) {
  const Program::Mem& pm = prog_.mems.at(mem_index);
  if (word >= pm.depth)
    throw std::out_of_range("tape codegen: mem word out of range");
  for (unsigned l = 0; l < prog_.lanes; ++l) {
    std::uint64_t* e = mem_[mem_index].data() +
                       (std::size_t{word} * prog_.lanes + l) * pm.words;
    for (unsigned w = 0; w < pm.words; ++w) e[w] = value.word(w);
  }
  mark_levels(prog_.mem_fl_off, prog_.mem_fl, mem_index);
  pending_ = true;
}

void NativeEngine::poke_reg(unsigned reg_index, const Bits& value) {
  const Program::Reg& reg = prog_.regs.at(reg_index);
  for (unsigned l = 0; l < prog_.lanes; ++l)
    write_lane_bits(reg.q, reg.words, l, value);
  mark_levels(prog_.reg_fl_off, prog_.reg_fl, reg_index);
  pending_ = true;
}

}  // namespace osss::rtl::tape
