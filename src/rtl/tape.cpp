#include "rtl/tape.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "rtl/tape_detail.hpp"

namespace osss::rtl::tape {

namespace {

using detail::bits_from_words;
using detail::mask64;
using detail::span_fill;
using detail::span_lshr;
using detail::span_shl;
using detail::store1;
using detail::storeN;
using detail::top_mask;
using detail::words_of;

/// Bits-semantics evaluator for constant folding; must mirror the
/// interpreter (rtl::Simulator::compute) exactly — the tape is
/// differentially tested against it.
Bits fold_value(const Node& n, const std::vector<Bits>& fv) {
  auto in = [&](std::size_t i) -> const Bits& { return fv[n.ins[i]]; };
  switch (n.op) {
    case Op::kConst: return n.value;
    case Op::kAdd: return in(0) + in(1);
    case Op::kSub: return in(0) - in(1);
    case Op::kMul: return in(0) * in(1);
    case Op::kAnd: return in(0) & in(1);
    case Op::kOr: return in(0) | in(1);
    case Op::kXor: return in(0) ^ in(1);
    case Op::kNot: return ~in(0);
    case Op::kShlI: return in(0).shl(n.param);
    case Op::kLshrI: return in(0).lshr(n.param);
    case Op::kAshrI: return in(0).ashr(n.param);
    case Op::kShlV:
      return in(0).shl(static_cast<unsigned>(in(1).to_u64() & 0xffffffffu));
    case Op::kLshrV:
      return in(0).lshr(static_cast<unsigned>(in(1).to_u64() & 0xffffffffu));
    case Op::kEq: return Bits(1, in(0) == in(1) ? 1u : 0u);
    case Op::kNe: return Bits(1, in(0) != in(1) ? 1u : 0u);
    case Op::kUlt: return Bits(1, Bits::ult(in(0), in(1)) ? 1u : 0u);
    case Op::kUle: return Bits(1, Bits::ule(in(0), in(1)) ? 1u : 0u);
    case Op::kSlt: return Bits(1, Bits::slt(in(0), in(1)) ? 1u : 0u);
    case Op::kSle: return Bits(1, Bits::sle(in(0), in(1)) ? 1u : 0u);
    case Op::kMux: return in(0).bit(0) ? in(1) : in(2);
    case Op::kSlice: return in(0).slice(n.param + n.width - 1, n.param);
    case Op::kConcat: {
      Bits acc(n.width);
      unsigned pos = n.width;
      for (std::size_t i = 0; i < n.ins.size(); ++i) {
        pos -= in(i).width();
        acc.set_range(pos, in(i));
      }
      return acc;
    }
    case Op::kZExt: return in(0).zext(n.width);
    case Op::kSExt: return in(0).sext(n.width);
    case Op::kRedOr: return Bits(1, in(0).is_zero() ? 0u : 1u);
    case Op::kRedAnd: return Bits(1, in(0).is_ones() ? 1u : 0u);
    case Op::kRedXor: return Bits(1, in(0).popcount() & 1u);
    default: break;
  }
  throw std::logic_error("tape: cannot fold op");
}

}  // namespace

NodeAnalysis analyze(const Module& m) {
  m.validate();

  NodeAnalysis na;
  const std::size_t n = m.node_count();
  const std::vector<NodeId> order = m.topo_order();

  // ---- pass 1: constant folding -----------------------------------------
  // folded[id] non-empty <=> the node's value is a compile-time constant.
  std::vector<Bits>& fv = na.folded;
  fv.assign(n, Bits());
  for (const NodeId id : order) {
    const Node& nd = m.node(id);
    if (nd.op == Op::kConst) {
      fv[id] = nd.value;
      continue;
    }
    if (nd.op == Op::kInput || nd.op == Op::kReg || nd.op == Op::kMemRead)
      continue;
    bool all_const = true;
    for (const NodeId i : nd.ins)
      if (fv[i].empty()) {
        all_const = false;
        break;
      }
    if (all_const) {
      fv[id] = fold_value(nd, fv);
      ++na.const_folded;
      continue;
    }
    // A constant over-shift is zero no matter what the data operand holds.
    if ((nd.op == Op::kShlI || nd.op == Op::kLshrI) && nd.param >= nd.width) {
      fv[id] = Bits(nd.width);
      ++na.const_folded;
    }
  }

  // ---- pass 2: alias fusion ---------------------------------------------
  // No-op casts share their operand's slot.  Sound because the arena keeps
  // bits above a node's width zero, so a zext that doesn't grow the word
  // count (or a full-width slice / width-preserving sext / unary concat) is
  // already materialized by its operand.
  std::vector<NodeId>& alias = na.alias;
  alias.assign(n, kInvalidNode);
  for (const NodeId id : order) {
    if (!fv[id].empty()) continue;
    const Node& nd = m.node(id);
    switch (nd.op) {
      case Op::kZExt:
        if (words_of(nd.width) == words_of(m.node(nd.ins[0]).width))
          alias[id] = nd.ins[0];
        break;
      case Op::kSExt:
        if (nd.width == m.node(nd.ins[0]).width) alias[id] = nd.ins[0];
        break;
      case Op::kSlice:
        if (nd.param == 0 && nd.width == m.node(nd.ins[0]).width)
          alias[id] = nd.ins[0];
        break;
      case Op::kConcat:
        if (nd.ins.size() == 1) alias[id] = nd.ins[0];
        break;
      default:
        break;
    }
    if (alias[id] != kInvalidNode) ++na.fused;
  }
  auto rep = [&](NodeId id) {
    while (alias[id] != kInvalidNode) id = alias[id];
    return id;
  };

  // ---- pass 3: slice-chain composition ----------------------------------
  // slice(slice(x)) reads x directly with the accumulated low offset, and a
  // slice hops through a zext whenever its window stays inside the original
  // value.  sliced[id] = {ultimate source, accumulated lo}.
  std::vector<std::pair<NodeId, unsigned>>& sliced = na.sliced;
  sliced.assign(n, {kInvalidNode, 0u});
  for (const NodeId id : order) {
    if (!fv[id].empty() || alias[id] != kInvalidNode) continue;
    const Node& nd = m.node(id);
    if (nd.op != Op::kSlice) continue;
    NodeId src = rep(nd.ins[0]);
    unsigned lo = nd.param;
    for (;;) {
      if (!fv[src].empty()) break;  // landed on a constant
      const Node& s = m.node(src);
      if (s.op == Op::kSlice) {
        lo += sliced[src].second;  // inner slice already composed
        src = sliced[src].first;
        ++na.fused;
        continue;
      }
      if (s.op == Op::kZExt && lo + nd.width <= m.node(s.ins[0]).width) {
        src = rep(s.ins[0]);
        ++na.fused;
        continue;
      }
      break;
    }
    sliced[id] = {src, lo};
  }

  // ---- effective operands (post-fusion) per candidate instruction -------
  auto is_source = [&](const Node& nd) {
    return nd.op == Op::kInput || nd.op == Op::kReg || nd.op == Op::kConst;
  };
  std::vector<std::vector<NodeId>>& eff = na.eff;
  eff.assign(n, {});
  for (const NodeId id : order) {
    if (!fv[id].empty() || alias[id] != kInvalidNode) continue;
    const Node& nd = m.node(id);
    if (is_source(nd)) continue;
    auto& e = eff[id];
    switch (nd.op) {
      case Op::kSlice:
        e.push_back(sliced[id].first);
        break;
      case Op::kMemRead:
        e.push_back(rep(nd.ins[0]));
        break;
      default:
        e.reserve(nd.ins.size());
        for (const NodeId i : nd.ins) e.push_back(rep(i));
        break;
    }
  }

  // ---- pass 4: liveness from the sequential/output roots ----------------
  std::vector<char>& live = na.live;
  live.assign(n, 0);
  std::vector<NodeId> work;
  auto mark = [&](NodeId raw) {
    const NodeId r = rep(raw);
    if (!fv[r].empty()) return;  // constants live in the pool
    if (!live[r]) {
      live[r] = 1;
      work.push_back(r);
    }
  };
  for (const auto& out : m.outputs()) mark(out.node);
  for (const Register& r : m.registers()) {
    mark(r.d);
    if (r.enable != kInvalidNode) mark(r.enable);
  }
  for (const Memory& mem : m.memories())
    for (const auto& w : mem.writes) {
      mark(w.addr);
      mark(w.data);
      mark(w.enable);
    }
  while (!work.empty()) {
    const NodeId id = work.back();
    work.pop_back();
    for (const NodeId r : eff[id]) mark(r);
  }

  // ---- fate classification (drives CompileStats and lint RTL-003) -------
  na.fate.assign(n, NodeAnalysis::Fate::kLive);
  for (NodeId id = 0; id < n; ++id) {
    const Node& nd = m.node(id);
    if (!fv[id].empty())
      na.fate[id] = NodeAnalysis::Fate::kFolded;
    else if (nd.op == Op::kInput || nd.op == Op::kReg)
      na.fate[id] = NodeAnalysis::Fate::kSource;
    else if (alias[id] != kInvalidNode)
      na.fate[id] = NodeAnalysis::Fate::kAliased;
    else if (!live[id])
      na.fate[id] = NodeAnalysis::Fate::kDead;
  }
  for (NodeId id = 0; id < n; ++id)
    if (na.fate[id] == NodeAnalysis::Fate::kDead) ++na.pruned;
  return na;
}

Program Program::compile(const Module& m, unsigned lanes) {
  if (lanes == 0 || lanes > kMaxLanes)
    throw std::logic_error("rtl::tape: lanes must be in 1..512");

  const std::size_t n = m.node_count();
  for (NodeId id = 0; id < n; ++id)
    if (m.node(id).width > 255 * 64)
      throw std::logic_error("rtl::tape: node width too large");

  NodeAnalysis na = analyze(m);  // validates m
  const std::vector<NodeId> order = m.topo_order();
  const std::vector<Bits>& fv = na.folded;
  const std::vector<NodeId>& alias = na.alias;
  const std::vector<std::pair<NodeId, unsigned>>& sliced = na.sliced;
  const std::vector<std::vector<NodeId>>& eff = na.eff;
  const std::vector<char>& live = na.live;
  auto rep = [&](NodeId id) { return na.rep(id); };
  auto is_source = [&](const Node& nd) {
    return nd.op == Op::kInput || nd.op == Op::kReg || nd.op == Op::kConst;
  };

  Program p;
  p.lanes = lanes;
  p.stats.const_folded = na.const_folded;
  p.stats.fused = na.fused;
  p.stats.pruned = na.pruned;

  // ---- pass 5: levelization of live instructions ------------------------
  auto is_instr = [&](NodeId id) {
    return live[id] && fv[id].empty() && alias[id] == kInvalidNode &&
           !is_source(m.node(id));
  };
  std::vector<int> lvl(n, -1);
  int max_lvl = -1;
  for (const NodeId id : order) {
    if (!is_instr(id)) continue;
    int l = 0;
    for (const NodeId r : eff[id])
      if (fv[r].empty() && lvl[r] >= 0) l = std::max(l, lvl[r] + 1);
    lvl[id] = l;
    max_lvl = std::max(max_lvl, l);
  }
  const std::uint32_t num_levels = static_cast<std::uint32_t>(max_lvl + 1);

  // ---- pass 6: arena allocation -----------------------------------------
  // Lane-major slots: lane l of a node lives at offset + l*words.  All
  // inputs and register outputs get slots (they are driven externally /
  // sequentially); instructions get slots when live; constants are pooled
  // and deduplicated on demand.
  p.node_slot.assign(n, kNoSlot);
  p.node_width.assign(n, 0);
  for (NodeId id = 0; id < n; ++id)
    p.node_width[id] = static_cast<std::uint16_t>(m.node(id).width);
  std::size_t arena = 0;
  auto alloc = [&](unsigned words) {
    const std::uint32_t off = static_cast<std::uint32_t>(arena);
    arena += std::size_t{words} * lanes;
    return off;
  };
  for (const auto& in : m.inputs())
    p.node_slot[in.node] = alloc(words_of(m.node(in.node).width));
  for (const Register& r : m.registers())
    p.node_slot[r.q] = alloc(words_of(m.node(r.q).width));
  for (const NodeId id : order)
    if (is_instr(id)) p.node_slot[id] = alloc(words_of(m.node(id).width));

  std::unordered_map<Bits, std::uint32_t, sysc::BitsHash> pool;
  auto const_slot = [&](const Bits& v) {
    const auto it = pool.find(v);
    if (it != pool.end()) return it->second;
    const std::uint32_t off = alloc(words_of(v.width()));
    pool.emplace(v, off);
    p.const_init.emplace_back(off, v);
    return off;
  };
  auto slot_of = [&](NodeId raw) {
    const NodeId r = rep(raw);
    if (!fv[r].empty()) return const_slot(fv[r]);
    return p.node_slot[r];
  };
  // Width of the value an operand slot actually holds (constant pool slots
  // carry the folded value's width).
  auto src_width = [&](NodeId raw) {
    const NodeId r = rep(raw);
    return fv[r].empty() ? m.node(r).width : fv[r].width();
  };

  // ---- pass 7: emission, grouped by level -------------------------------
  auto emit = [&](NodeId id) {
    const Node& nd = m.node(id);
    Instr ins;
    ins.width = static_cast<std::uint16_t>(nd.width);
    ins.dw = static_cast<std::uint8_t>(words_of(nd.width));
    ins.mask = top_mask(nd.width);
    ins.dst = p.node_slot[id];
    const bool one = ins.dw == 1;
    switch (nd.op) {
      case Op::kAdd:
      case Op::kSub:
      case Op::kMul:
      case Op::kAnd:
      case Op::kOr:
      case Op::kXor: {
        ins.a = slot_of(nd.ins[0]);
        ins.b = slot_of(nd.ins[1]);
        ins.aw = ins.dw;
        switch (nd.op) {
          case Op::kAdd: ins.op = one ? TOp::kAdd1 : TOp::kAddN; break;
          case Op::kSub: ins.op = one ? TOp::kSub1 : TOp::kSubN; break;
          case Op::kMul: ins.op = one ? TOp::kMul1 : TOp::kMulN; break;
          case Op::kAnd: ins.op = one ? TOp::kAnd1 : TOp::kAndN; break;
          case Op::kOr: ins.op = one ? TOp::kOr1 : TOp::kOrN; break;
          default: ins.op = one ? TOp::kXor1 : TOp::kXorN; break;
        }
        break;
      }
      case Op::kNot:
        ins.a = slot_of(nd.ins[0]);
        ins.aw = ins.dw;
        ins.op = one ? TOp::kNot1 : TOp::kNotN;
        break;
      case Op::kShlI:
      case Op::kLshrI:
      case Op::kAshrI:
        ins.a = slot_of(nd.ins[0]);
        ins.aw = ins.dw;
        ins.param = nd.param;
        ins.op = nd.op == Op::kShlI ? (one ? TOp::kShlI1 : TOp::kShlIN)
                 : nd.op == Op::kLshrI ? (one ? TOp::kLshrI1 : TOp::kLshrIN)
                                       : (one ? TOp::kAshrI1 : TOp::kAshrIN);
        break;
      case Op::kShlV:
      case Op::kLshrV:
        ins.a = slot_of(nd.ins[0]);
        ins.b = slot_of(nd.ins[1]);
        // aw carries the lane stride of the *amount* operand here.
        ins.aw = static_cast<std::uint8_t>(words_of(src_width(nd.ins[1])));
        ins.op = nd.op == Op::kShlV ? (one ? TOp::kShlV1 : TOp::kShlVN)
                                    : (one ? TOp::kLshrV1 : TOp::kLshrVN);
        break;
      case Op::kEq:
      case Op::kNe:
      case Op::kUlt:
      case Op::kUle:
      case Op::kSlt:
      case Op::kSle: {
        ins.a = slot_of(nd.ins[0]);
        ins.b = slot_of(nd.ins[1]);
        ins.a_width = static_cast<std::uint16_t>(m.node(nd.ins[0]).width);
        ins.aw = static_cast<std::uint8_t>(words_of(ins.a_width));
        const bool onew = ins.aw == 1;
        switch (nd.op) {
          case Op::kEq: ins.op = onew ? TOp::kEq1 : TOp::kEqN; break;
          case Op::kNe: ins.op = onew ? TOp::kNe1 : TOp::kNeN; break;
          case Op::kUlt: ins.op = onew ? TOp::kUlt1 : TOp::kUltN; break;
          case Op::kUle: ins.op = onew ? TOp::kUle1 : TOp::kUleN; break;
          case Op::kSlt: ins.op = onew ? TOp::kSlt1 : TOp::kSltN; break;
          default: ins.op = onew ? TOp::kSle1 : TOp::kSleN; break;
        }
        break;
      }
      case Op::kMux:
        ins.a = slot_of(nd.ins[0]);
        ins.b = slot_of(nd.ins[1]);
        ins.c = slot_of(nd.ins[2]);
        ins.aw = 1;  // 1-bit select
        ins.op = one ? TOp::kMux1 : TOp::kMuxN;
        break;
      case Op::kSlice: {
        const NodeId src = sliced[id].first;
        ins.a = slot_of(src);
        ins.param = sliced[id].second;
        ins.a_width = static_cast<std::uint16_t>(src_width(src));
        ins.aw = static_cast<std::uint8_t>(words_of(ins.a_width));
        ins.op = ins.aw == 1 ? TOp::kSlice1 : TOp::kSliceN;
        break;
      }
      case Op::kZExt:
        ins.a = slot_of(nd.ins[0]);
        ins.a_width = static_cast<std::uint16_t>(m.node(nd.ins[0]).width);
        ins.aw = static_cast<std::uint8_t>(words_of(ins.a_width));
        ins.op = TOp::kCopyN;  // materialized => word count grew
        break;
      case Op::kSExt:
        ins.a = slot_of(nd.ins[0]);
        ins.a_width = static_cast<std::uint16_t>(m.node(nd.ins[0]).width);
        ins.aw = static_cast<std::uint8_t>(words_of(ins.a_width));
        ins.op = one ? TOp::kSExt1 : TOp::kSExtN;
        break;
      case Op::kRedOr:
      case Op::kRedAnd:
      case Op::kRedXor:
        ins.a = slot_of(nd.ins[0]);
        ins.a_width = static_cast<std::uint16_t>(m.node(nd.ins[0]).width);
        ins.aw = static_cast<std::uint8_t>(words_of(ins.a_width));
        ins.op = nd.op == Op::kRedOr
                     ? (ins.aw == 1 ? TOp::kRedOr1 : TOp::kRedOrN)
                 : nd.op == Op::kRedAnd
                     ? (ins.aw == 1 ? TOp::kRedAnd1 : TOp::kRedAndN)
                     : (ins.aw == 1 ? TOp::kRedXor1 : TOp::kRedXorN);
        break;
      case Op::kConcat: {
        ins.op = TOp::kConcat;
        ins.param = static_cast<std::uint32_t>(p.parts.size());
        ins.c = static_cast<std::uint32_t>(nd.ins.size());
        // Parts pool is LSB-first; ins[0] is the MOST significant chunk.
        for (auto it = nd.ins.rbegin(); it != nd.ins.rend(); ++it) {
          ConcatPart part;
          part.off = slot_of(*it);
          part.width = static_cast<std::uint16_t>(m.node(*it).width);
          part.words =
              static_cast<std::uint16_t>(words_of(m.node(*it).width));
          p.parts.push_back(part);
        }
        break;
      }
      case Op::kMemRead:
        ins.a = slot_of(nd.ins[0]);
        ins.aw = static_cast<std::uint8_t>(words_of(src_width(nd.ins[0])));
        ins.param = nd.param;
        ins.op = TOp::kMemRead;
        break;
      default:
        throw std::logic_error("tape: unexpected op in emission");
    }
    return ins;
  };

  std::vector<std::vector<NodeId>> by_level(num_levels);
  for (const NodeId id : order)
    if (is_instr(id)) by_level[static_cast<unsigned>(lvl[id])].push_back(id);
  std::vector<std::uint32_t> instr_of(n, kNoSlot);
  p.level_offset.push_back(0);
  for (std::uint32_t L = 0; L < num_levels; ++L) {
    for (const NodeId id : by_level[L]) {
      instr_of[id] = static_cast<std::uint32_t>(p.instrs.size());
      p.instrs.push_back(emit(id));
    }
    p.level_offset.push_back(static_cast<std::uint32_t>(p.instrs.size()));
  }

  // ---- pass 8: fanout-level lists (activity gating) ---------------------
  std::vector<std::vector<std::uint32_t>> instr_out(p.instrs.size());
  std::vector<std::vector<std::uint32_t>> input_out(m.inputs().size());
  std::vector<std::vector<std::uint32_t>> reg_out(m.registers().size());
  std::vector<std::vector<std::uint32_t>> mem_out(m.memories().size());
  std::unordered_map<NodeId, std::uint32_t> input_idx;
  for (std::uint32_t i = 0; i < m.inputs().size(); ++i)
    input_idx.emplace(m.inputs()[i].node, i);
  for (const NodeId id : order) {
    if (!is_instr(id)) continue;
    const auto L = static_cast<std::uint32_t>(lvl[id]);
    for (const NodeId r : eff[id]) {
      if (!fv[r].empty()) continue;  // constants never change
      const Node& rn = m.node(r);
      if (rn.op == Op::kInput)
        input_out[input_idx.at(r)].push_back(L);
      else if (rn.op == Op::kReg)
        reg_out[rn.param].push_back(L);
      else
        instr_out[instr_of[r]].push_back(L);
    }
    if (m.node(id).op == Op::kMemRead)
      mem_out[m.node(id).param].push_back(L);
  }
  auto build_csr = [](std::vector<std::vector<std::uint32_t>>& src,
                      std::vector<std::uint32_t>& off,
                      std::vector<std::uint32_t>& fl) {
    off.reserve(src.size() + 1);
    off.push_back(0);
    for (auto& v : src) {
      std::sort(v.begin(), v.end());
      v.erase(std::unique(v.begin(), v.end()), v.end());
      fl.insert(fl.end(), v.begin(), v.end());
      off.push_back(static_cast<std::uint32_t>(fl.size()));
    }
  };
  build_csr(instr_out, p.instr_fl_off, p.instr_fl);
  build_csr(input_out, p.input_fl_off, p.input_fl);
  build_csr(reg_out, p.reg_fl_off, p.reg_fl);
  build_csr(mem_out, p.mem_fl_off, p.mem_fl);

  // ---- pass 9: ports, registers, memories -------------------------------
  for (const auto& in : m.inputs()) {
    Port port;
    port.off = p.node_slot[in.node];
    port.width = static_cast<std::uint16_t>(m.node(in.node).width);
    port.words = static_cast<std::uint16_t>(words_of(port.width));
    p.inputs.push_back(port);
  }
  for (const auto& out : m.outputs()) {
    Port port;
    port.off = slot_of(out.node);
    port.width = static_cast<std::uint16_t>(m.node(out.node).width);
    port.words = static_cast<std::uint16_t>(words_of(port.width));
    p.outputs.push_back(port);
  }
  for (const Register& r : m.registers()) {
    Reg reg;
    reg.q = p.node_slot[r.q];
    reg.d = slot_of(r.d);
    if (r.enable != kInvalidNode) reg.en = slot_of(r.enable);
    reg.width = static_cast<std::uint16_t>(m.node(r.q).width);
    reg.words = static_cast<std::uint16_t>(words_of(reg.width));
    reg.init = r.init;
    p.regs.push_back(std::move(reg));
  }
  for (const Memory& mem : m.memories()) {
    Mem pm;
    pm.depth = mem.depth;
    pm.width = mem.data_width;
    pm.words = static_cast<std::uint16_t>(words_of(mem.data_width));
    for (const auto& w : mem.writes) {
      WritePort wp;
      wp.addr = slot_of(w.addr);
      wp.data = slot_of(w.data);
      wp.en = slot_of(w.enable);
      wp.addr_words =
          static_cast<std::uint16_t>(words_of(src_width(w.addr)));
      pm.writes.push_back(wp);
    }
    p.mems.push_back(std::move(pm));
  }

  // Aliases read their representative's slot; folded nodes read their
  // pooled constant when one was materialized (pruned nodes keep kNoSlot).
  for (NodeId id = 0; id < n; ++id) {
    if (alias[id] != kInvalidNode) {
      p.node_slot[id] = p.node_slot[rep(id)];
    } else if (!fv[id].empty() && p.node_slot[id] == kNoSlot) {
      const auto it = pool.find(fv[id]);
      if (it != pool.end()) p.node_slot[id] = it->second;
    }
  }

  p.arena_size = arena;
  p.stats.tape_len = static_cast<std::uint32_t>(p.instrs.size());
  p.stats.arena_words = static_cast<std::uint32_t>(arena);
  p.stats.levels = num_levels;
  return p;
}

// --- Engine ----------------------------------------------------------------

namespace {

/// The interpreted executor packs lane enables into one uint64_t, so it is
/// capped at 64 lanes; wider stimulus goes through the native backend
/// (rtl/codegen.hpp), whose sequential logic is word-mask wide.
void check_engine_lanes(unsigned lanes) {
  if (lanes == 0 || lanes > 64)
    throw std::logic_error(
        "rtl::tape: the interpreted engine supports 1..64 lanes "
        "(use the native backend for wider stimulus)");
}

}  // namespace

Engine::Engine(const Module& m, unsigned lanes)
    : prog_((check_engine_lanes(lanes), Program::compile(m, lanes))) {
  arena_.assign(prog_.arena_size, 0);
  for (const auto& [off, v] : prog_.const_init)
    for (unsigned l = 0; l < prog_.lanes; ++l)
      write_lane_bits(off, static_cast<std::uint16_t>(words_of(v.width())), l,
                      v, nullptr);
  std::uint16_t max_dw = 1;
  for (const Instr& ins : prog_.instrs)
    max_dw = std::max<std::uint16_t>(max_dw, ins.dw);
  scratch_.assign(max_dw, 0);
  mem_.resize(prog_.mems.size());
  for (std::size_t i = 0; i < prog_.mems.size(); ++i)
    mem_[i].assign(std::size_t{prog_.mems[i].depth} * prog_.mems[i].words *
                       prog_.lanes,
                   0);
  std::uint32_t roff = 0;
  for (const auto& reg : prog_.regs) {
    reg_next_off_.push_back(roff);
    roff += reg.words * prog_.lanes;
  }
  reg_next_.assign(roff, 0);
  reg_en_.assign(prog_.regs.size(), 0);
  for (const auto& reg : prog_.regs)
    for (unsigned l = 0; l < prog_.lanes; ++l)
      write_lane_bits(reg.q, reg.words, l, reg.init, nullptr);
  std::uint32_t aat = 0, dat = 0;
  for (std::uint32_t mi = 0; mi < prog_.mems.size(); ++mi)
    for (const auto& port : prog_.mems[mi].writes) {
      Wp wp;
      wp.mem = mi;
      wp.port = port;
      wp.addr_at = aat;
      wp.data_at = dat;
      wp.words = prog_.mems[mi].words;
      aat += prog_.lanes;
      dat += wp.words * prog_.lanes;
      wps_.push_back(wp);
    }
  wp_en_.assign(wps_.size(), 0);
  wp_addr_.assign(aat, 0);
  wp_data_.assign(dat, 0);
  level_dirty_.assign(prog_.stats.levels, 1);
  pending_ = true;
  // Power-on snapshot: consts + reg inits written, inputs and mems all 0.
  poweron_arena_ = arena_;
}

void Engine::write_lane_bits(std::uint32_t off, std::uint16_t words,
                             unsigned lane, const Bits& value,
                             bool* changed) {
  std::uint64_t* d = arena_.data() + off + std::size_t{lane} * words;
  for (unsigned w = 0; w < words; ++w) {
    const std::uint64_t nv = value.word(w);
    if (d[w] != nv) {
      d[w] = nv;
      if (changed != nullptr) *changed = true;
    }
  }
}

Bits Engine::read_lane_bits(std::uint32_t off, std::uint16_t words,
                            unsigned width, unsigned lane) const {
  return bits_from_words(arena_.data() + off + std::size_t{lane} * words,
                         width);
}

void Engine::mark_levels(const std::vector<std::uint32_t>& off,
                         const std::vector<std::uint32_t>& fl,
                         std::uint32_t site) {
  for (std::uint32_t i = off[site]; i < off[site + 1]; ++i)
    level_dirty_[fl[i]] = 1;
}

void Engine::mark_all_dirty() {
  std::fill(level_dirty_.begin(), level_dirty_.end(), 1);
  pending_ = true;
}

void Engine::set_input(unsigned index, const Bits& value) {
  const Program::Port& port = prog_.inputs.at(index);
  bool changed = false;
  for (unsigned l = 0; l < prog_.lanes; ++l)
    write_lane_bits(port.off, port.words, l, value, &changed);
  if (changed) {
    mark_levels(prog_.input_fl_off, prog_.input_fl, index);
    pending_ = true;
  }
}

void Engine::set_input_u64(unsigned index, std::uint64_t value) {
  const Program::Port& port = prog_.inputs.at(index);
  if (port.width < 64) value &= (std::uint64_t{1} << port.width) - 1;
  bool changed = false;
  for (unsigned l = 0; l < prog_.lanes; ++l) {
    std::uint64_t* d = arena_.data() + port.off + std::size_t{l} * port.words;
    if (d[0] != value) {
      d[0] = value;
      changed = true;
    }
    for (unsigned w = 1; w < port.words; ++w)
      if (d[w] != 0) {
        d[w] = 0;
        changed = true;
      }
  }
  if (changed) {
    mark_levels(prog_.input_fl_off, prog_.input_fl, index);
    pending_ = true;
  }
}

void Engine::set_input_lanes(unsigned index,
                             const std::vector<std::uint64_t>& bit_lanes) {
  const Program::Port& port = prog_.inputs.at(index);
  if (bit_lanes.size() != port.width)
    throw std::logic_error("tape: set_input_lanes width mismatch");
  bool changed = false;
  for (unsigned l = 0; l < prog_.lanes; ++l) {
    std::uint64_t* d = arena_.data() + port.off + std::size_t{l} * port.words;
    for (unsigned w = 0; w < port.words; ++w) {
      const unsigned base = w * 64;
      const unsigned count = std::min(64u, port.width - base);
      std::uint64_t nv = 0;
      for (unsigned i = 0; i < count; ++i)
        nv |= ((bit_lanes[base + i] >> l) & 1u) << i;
      if (d[w] != nv) {
        d[w] = nv;
        changed = true;
      }
    }
  }
  if (changed) {
    mark_levels(prog_.input_fl_off, prog_.input_fl, index);
    pending_ = true;
  }
}

void Engine::set_input_values(unsigned index,
                              const std::vector<std::uint64_t>& values) {
  const Program::Port& port = prog_.inputs.at(index);
  if (port.words != 1)
    throw std::logic_error("tape: set_input_values needs a <= 64-bit port");
  if (values.size() != prog_.lanes)
    throw std::logic_error("tape: set_input_values lane count mismatch");
  const std::uint64_t mask =
      port.width < 64 ? (std::uint64_t{1} << port.width) - 1 : ~std::uint64_t{0};
  std::uint64_t* d = arena_.data() + port.off;
  std::uint64_t diff = 0;
  for (unsigned l = 0; l < prog_.lanes; ++l) {
    const std::uint64_t nv = values[l] & mask;
    diff |= nv ^ d[l];
    d[l] = nv;
  }
  if (diff != 0) {
    mark_levels(prog_.input_fl_off, prog_.input_fl, index);
    pending_ = true;
  }
}

Bits Engine::output(unsigned index, unsigned lane) {
  eval();
  const Program::Port& port = prog_.outputs.at(index);
  return read_lane_bits(port.off, port.words, port.width, lane);
}

std::uint64_t Engine::output_u64(unsigned index) {
  eval();
  return arena_[prog_.outputs.at(index).off];
}

std::vector<std::uint64_t> Engine::output_words(unsigned index) {
  eval();
  const Program::Port& port = prog_.outputs.at(index);
  std::vector<std::uint64_t> out(port.width, 0);
  for (unsigned l = 0; l < prog_.lanes; ++l) {
    const std::uint64_t* s =
        arena_.data() + port.off + std::size_t{l} * port.words;
    for (unsigned i = 0; i < port.width; ++i)
      out[i] |= ((s[i / 64] >> (i % 64)) & 1u) << l;
  }
  return out;
}

std::vector<std::uint64_t> Engine::output_values(unsigned index) {
  eval();
  const Program::Port& port = prog_.outputs.at(index);
  if (port.words != 1)
    throw std::logic_error("tape: output_values needs a <= 64-bit port");
  const std::uint64_t* s = arena_.data() + port.off;
  return std::vector<std::uint64_t>(s, s + prog_.lanes);
}

Bits Engine::node_value(NodeId id, unsigned lane) {
  eval();
  if (id >= prog_.node_slot.size() || prog_.node_slot[id] == kNoSlot)
    throw std::logic_error(
        "tape: node was pruned or folded away (no arena slot)");
  const unsigned width = prog_.node_width[id];
  return read_lane_bits(prog_.node_slot[id],
                        static_cast<std::uint16_t>(words_of(width)), width,
                        lane);
}

bool Engine::node_live(NodeId id) const {
  return id < prog_.node_slot.size() && prog_.node_slot[id] != kNoSlot;
}

void Engine::eval() {
  if (!pending_) return;
  const std::size_t levels = prog_.level_offset.size() - 1;
  for (std::size_t lev = 0; lev < levels; ++lev) {
    if (!level_dirty_[lev]) {
      ++stats_.levels_skipped;
      continue;
    }
    level_dirty_[lev] = 0;
    ++stats_.levels_evaluated;
    const std::uint32_t b = prog_.level_offset[lev];
    const std::uint32_t e = prog_.level_offset[lev + 1];
    for (std::uint32_t i = b; i < e; ++i) {
      const Instr& ins = prog_.instrs[i];
      bool changed = false;
      for (unsigned l = 0; l < prog_.lanes; ++l) changed |= exec_one(ins, l);
      ++stats_.nodes_evaluated;
      if (changed) mark_levels(prog_.instr_fl_off, prog_.instr_fl, i);
    }
  }
  pending_ = false;
}

bool Engine::exec_one(const Instr& ins, unsigned lane) {
  std::uint64_t* const ar = arena_.data();
  std::uint64_t* d = ar + ins.dst + std::size_t{lane} * ins.dw;
  switch (ins.op) {
    case TOp::kAdd1:
      return store1(d, (ar[ins.a + lane] + ar[ins.b + lane]) & ins.mask);
    case TOp::kSub1:
      return store1(d, (ar[ins.a + lane] - ar[ins.b + lane]) & ins.mask);
    case TOp::kMul1:
      return store1(d, (ar[ins.a + lane] * ar[ins.b + lane]) & ins.mask);
    case TOp::kAnd1:
      return store1(d, ar[ins.a + lane] & ar[ins.b + lane]);
    case TOp::kOr1:
      return store1(d, ar[ins.a + lane] | ar[ins.b + lane]);
    case TOp::kXor1:
      return store1(d, ar[ins.a + lane] ^ ar[ins.b + lane]);
    case TOp::kNot1:
      return store1(d, ~ar[ins.a + lane] & ins.mask);
    case TOp::kShlI1:
      return store1(d, (ar[ins.a + lane] << ins.param) & ins.mask);
    case TOp::kLshrI1:
      return store1(d, ar[ins.a + lane] >> ins.param);
    case TOp::kAshrI1: {
      const std::uint64_t a = ar[ins.a + lane];
      const unsigned w = ins.width;
      const bool sign = ((a >> (w - 1)) & 1u) != 0;
      std::uint64_t v;
      if (ins.param >= w) {
        v = sign ? ins.mask : 0;
      } else {
        v = a >> ins.param;
        if (sign) v |= ins.mask ^ (ins.mask >> ins.param);
      }
      return store1(d, v);
    }
    case TOp::kShlV1: {
      const std::uint64_t amt =
          ar[ins.b + std::size_t{lane} * ins.aw] & 0xffffffffu;
      return store1(d, amt >= ins.width
                           ? 0
                           : (ar[ins.a + lane] << amt) & ins.mask);
    }
    case TOp::kLshrV1: {
      const std::uint64_t amt =
          ar[ins.b + std::size_t{lane} * ins.aw] & 0xffffffffu;
      return store1(d, amt >= ins.width ? 0 : ar[ins.a + lane] >> amt);
    }
    case TOp::kEq1:
      return store1(d, ar[ins.a + lane] == ar[ins.b + lane] ? 1u : 0u);
    case TOp::kNe1:
      return store1(d, ar[ins.a + lane] != ar[ins.b + lane] ? 1u : 0u);
    case TOp::kUlt1:
      return store1(d, ar[ins.a + lane] < ar[ins.b + lane] ? 1u : 0u);
    case TOp::kUle1:
      return store1(d, ar[ins.a + lane] <= ar[ins.b + lane] ? 1u : 0u);
    case TOp::kSlt1:
    case TOp::kSle1: {
      const unsigned sh = 64 - ins.a_width;
      const auto a = static_cast<std::int64_t>(ar[ins.a + lane] << sh);
      const auto b = static_cast<std::int64_t>(ar[ins.b + lane] << sh);
      const bool r = ins.op == TOp::kSlt1 ? a < b : a <= b;
      return store1(d, r ? 1u : 0u);
    }
    case TOp::kMux1:
      return store1(d, (ar[ins.a + lane] & 1u) != 0 ? ar[ins.b + lane]
                                                    : ar[ins.c + lane]);
    case TOp::kSlice1:
      return store1(d, (ar[ins.a + lane] >> ins.param) & ins.mask);
    case TOp::kSExt1: {
      const std::uint64_t a = ar[ins.a + lane];
      const bool sign = ((a >> (ins.a_width - 1)) & 1u) != 0;
      return store1(d, sign ? (a | (ins.mask ^ mask64(ins.a_width))) : a);
    }
    case TOp::kRedOr1:
      return store1(d, ar[ins.a + lane] != 0 ? 1u : 0u);
    case TOp::kRedAnd1:
      return store1(d, ar[ins.a + lane] == mask64(ins.a_width) ? 1u : 0u);
    case TOp::kRedXor1:
      return store1(d, std::popcount(ar[ins.a + lane]) & 1u);

    case TOp::kCopyN: {
      const std::uint64_t* a = ar + ins.a + std::size_t{lane} * ins.aw;
      std::uint64_t* s = scratch_.data();
      for (unsigned w = 0; w < ins.aw; ++w) s[w] = a[w];
      for (unsigned w = ins.aw; w < ins.dw; ++w) s[w] = 0;
      return storeN(d, s, ins.dw);
    }
    case TOp::kAddN: {
      const std::uint64_t* a = ar + ins.a + std::size_t{lane} * ins.dw;
      const std::uint64_t* b = ar + ins.b + std::size_t{lane} * ins.dw;
      std::uint64_t* s = scratch_.data();
      std::uint64_t carry = 0;
      for (unsigned w = 0; w < ins.dw; ++w) {
        const std::uint64_t t = a[w] + carry;
        const std::uint64_t c1 = t < carry ? 1u : 0u;
        s[w] = t + b[w];
        carry = c1 | (s[w] < b[w] ? 1u : 0u);
      }
      s[ins.dw - 1] &= ins.mask;
      return storeN(d, s, ins.dw);
    }
    case TOp::kSubN: {
      const std::uint64_t* a = ar + ins.a + std::size_t{lane} * ins.dw;
      const std::uint64_t* b = ar + ins.b + std::size_t{lane} * ins.dw;
      std::uint64_t* s = scratch_.data();
      std::uint64_t borrow = 0;
      for (unsigned w = 0; w < ins.dw; ++w) {
        const std::uint64_t t = a[w] - b[w];
        const std::uint64_t b1 = a[w] < b[w] ? 1u : 0u;
        s[w] = t - borrow;
        borrow = b1 | (t < borrow ? 1u : 0u);
      }
      s[ins.dw - 1] &= ins.mask;
      return storeN(d, s, ins.dw);
    }
    case TOp::kMulN: {
      const std::uint64_t* a = ar + ins.a + std::size_t{lane} * ins.dw;
      const std::uint64_t* b = ar + ins.b + std::size_t{lane} * ins.dw;
      std::uint64_t* s = scratch_.data();
      for (unsigned w = 0; w < ins.dw; ++w) s[w] = 0;
      for (unsigned i = 0; i < ins.dw; ++i) {
        if (a[i] == 0) continue;
        std::uint64_t carry = 0;
        for (unsigned j = 0; i + j < ins.dw; ++j) {
          const unsigned __int128 acc =
              static_cast<unsigned __int128>(a[i]) * b[j] + s[i + j] + carry;
          s[i + j] = static_cast<std::uint64_t>(acc);
          carry = static_cast<std::uint64_t>(acc >> 64);
        }
      }
      s[ins.dw - 1] &= ins.mask;
      return storeN(d, s, ins.dw);
    }
    case TOp::kAndN:
    case TOp::kOrN:
    case TOp::kXorN: {
      const std::uint64_t* a = ar + ins.a + std::size_t{lane} * ins.dw;
      const std::uint64_t* b = ar + ins.b + std::size_t{lane} * ins.dw;
      std::uint64_t* s = scratch_.data();
      for (unsigned w = 0; w < ins.dw; ++w)
        s[w] = ins.op == TOp::kAndN ? (a[w] & b[w])
               : ins.op == TOp::kOrN ? (a[w] | b[w])
                                     : (a[w] ^ b[w]);
      return storeN(d, s, ins.dw);
    }
    case TOp::kNotN: {
      const std::uint64_t* a = ar + ins.a + std::size_t{lane} * ins.dw;
      std::uint64_t* s = scratch_.data();
      for (unsigned w = 0; w < ins.dw; ++w) s[w] = ~a[w];
      s[ins.dw - 1] &= ins.mask;
      return storeN(d, s, ins.dw);
    }
    case TOp::kShlIN: {
      const std::uint64_t* a = ar + ins.a + std::size_t{lane} * ins.dw;
      std::uint64_t* s = scratch_.data();
      span_shl(s, a, ins.dw, ins.param);  // param < width (folded otherwise)
      s[ins.dw - 1] &= ins.mask;
      return storeN(d, s, ins.dw);
    }
    case TOp::kLshrIN: {
      const std::uint64_t* a = ar + ins.a + std::size_t{lane} * ins.dw;
      std::uint64_t* s = scratch_.data();
      span_lshr(s, a, ins.dw, ins.param);
      return storeN(d, s, ins.dw);
    }
    case TOp::kAshrIN: {
      const std::uint64_t* a = ar + ins.a + std::size_t{lane} * ins.dw;
      std::uint64_t* s = scratch_.data();
      const unsigned w = ins.width;
      const bool sign = ((a[(w - 1) / 64] >> ((w - 1) % 64)) & 1u) != 0;
      if (ins.param >= w) {
        for (unsigned i = 0; i < ins.dw; ++i) s[i] = sign ? ~0ull : 0;
      } else {
        span_lshr(s, a, ins.dw, ins.param);
        if (sign && ins.param > 0) span_fill(s, w - ins.param, w);
      }
      s[ins.dw - 1] &= ins.mask;
      return storeN(d, s, ins.dw);
    }
    case TOp::kShlVN:
    case TOp::kLshrVN: {
      const std::uint64_t* a = ar + ins.a + std::size_t{lane} * ins.dw;
      const std::uint64_t amt =
          ar[ins.b + std::size_t{lane} * ins.aw] & 0xffffffffu;
      std::uint64_t* s = scratch_.data();
      if (amt >= ins.width) {
        for (unsigned w = 0; w < ins.dw; ++w) s[w] = 0;
      } else if (ins.op == TOp::kShlVN) {
        span_shl(s, a, ins.dw, static_cast<unsigned>(amt));
        s[ins.dw - 1] &= ins.mask;
      } else {
        span_lshr(s, a, ins.dw, static_cast<unsigned>(amt));
      }
      return storeN(d, s, ins.dw);
    }
    case TOp::kEqN:
    case TOp::kNeN: {
      const std::uint64_t* a = ar + ins.a + std::size_t{lane} * ins.aw;
      const std::uint64_t* b = ar + ins.b + std::size_t{lane} * ins.aw;
      std::uint64_t diff = 0;
      for (unsigned w = 0; w < ins.aw; ++w) diff |= a[w] ^ b[w];
      const bool r = ins.op == TOp::kEqN ? diff == 0 : diff != 0;
      return store1(d, r ? 1u : 0u);
    }
    case TOp::kUltN:
    case TOp::kUleN: {
      const std::uint64_t* a = ar + ins.a + std::size_t{lane} * ins.aw;
      const std::uint64_t* b = ar + ins.b + std::size_t{lane} * ins.aw;
      for (unsigned w = ins.aw; w-- > 0;)
        if (a[w] != b[w]) return store1(d, a[w] < b[w] ? 1u : 0u);
      return store1(d, ins.op == TOp::kUleN ? 1u : 0u);
    }
    case TOp::kSltN:
    case TOp::kSleN: {
      const std::uint64_t* a = ar + ins.a + std::size_t{lane} * ins.aw;
      const std::uint64_t* b = ar + ins.b + std::size_t{lane} * ins.aw;
      const unsigned sw = (ins.a_width - 1) / 64, sb = (ins.a_width - 1) % 64;
      const bool sa = ((a[sw] >> sb) & 1u) != 0;
      const bool sbit = ((b[sw] >> sb) & 1u) != 0;
      if (sa != sbit) return store1(d, sa ? 1u : 0u);
      for (unsigned w = ins.aw; w-- > 0;)
        if (a[w] != b[w]) return store1(d, a[w] < b[w] ? 1u : 0u);
      return store1(d, ins.op == TOp::kSleN ? 1u : 0u);
    }
    case TOp::kMuxN: {
      const bool sel = (ar[ins.a + lane] & 1u) != 0;
      const std::uint64_t* src =
          ar + (sel ? ins.b : ins.c) + std::size_t{lane} * ins.dw;
      return storeN(d, src, ins.dw);
    }
    case TOp::kSliceN: {
      const std::uint64_t* a = ar + ins.a + std::size_t{lane} * ins.aw;
      std::uint64_t* s = scratch_.data();
      for (unsigned j = 0; j < ins.dw; ++j) {
        const unsigned bitpos = ins.param + j * 64;
        const unsigned ws = bitpos / 64, bs = bitpos % 64;
        std::uint64_t v = ws < ins.aw ? a[ws] >> bs : 0;
        if (bs != 0 && ws + 1 < ins.aw) v |= a[ws + 1] << (64 - bs);
        s[j] = v;
      }
      s[ins.dw - 1] &= ins.mask;
      return storeN(d, s, ins.dw);
    }
    case TOp::kSExtN: {
      const std::uint64_t* a = ar + ins.a + std::size_t{lane} * ins.aw;
      std::uint64_t* s = scratch_.data();
      for (unsigned w = 0; w < ins.aw; ++w) s[w] = a[w];
      for (unsigned w = ins.aw; w < ins.dw; ++w) s[w] = 0;
      const unsigned sw = (ins.a_width - 1) / 64, sb = (ins.a_width - 1) % 64;
      if (((a[sw] >> sb) & 1u) != 0) span_fill(s, ins.a_width, ins.width);
      s[ins.dw - 1] &= ins.mask;
      return storeN(d, s, ins.dw);
    }
    case TOp::kRedOrN: {
      const std::uint64_t* a = ar + ins.a + std::size_t{lane} * ins.aw;
      std::uint64_t any = 0;
      for (unsigned w = 0; w < ins.aw; ++w) any |= a[w];
      return store1(d, any != 0 ? 1u : 0u);
    }
    case TOp::kRedAndN: {
      const std::uint64_t* a = ar + ins.a + std::size_t{lane} * ins.aw;
      bool all = true;
      for (unsigned w = 0; w + 1 < ins.aw; ++w) all &= a[w] == ~0ull;
      all &= a[ins.aw - 1] == top_mask(ins.a_width);
      return store1(d, all ? 1u : 0u);
    }
    case TOp::kRedXorN: {
      const std::uint64_t* a = ar + ins.a + std::size_t{lane} * ins.aw;
      unsigned par = 0;
      for (unsigned w = 0; w < ins.aw; ++w)
        par += static_cast<unsigned>(std::popcount(a[w]));
      return store1(d, par & 1u);
    }
    case TOp::kConcat: {
      std::uint64_t* s = scratch_.data();
      for (unsigned w = 0; w < ins.dw; ++w) s[w] = 0;
      unsigned pos = 0;
      for (std::uint32_t pi = 0; pi < ins.c; ++pi) {
        const ConcatPart& part = prog_.parts[ins.param + pi];
        const std::uint64_t* src =
            ar + part.off + std::size_t{lane} * part.words;
        const unsigned wo = pos / 64, bo = pos % 64;
        for (unsigned w = 0; w < part.words; ++w) {
          s[wo + w] |= src[w] << bo;
          if (bo != 0 && wo + w + 1 < ins.dw) s[wo + w + 1] |= src[w] >> (64 - bo);
        }
        pos += part.width;
      }
      return storeN(d, s, ins.dw);
    }
    case TOp::kMemRead: {
      const Program::Mem& pm = prog_.mems[ins.param];
      const std::uint64_t addr = ar[ins.a + std::size_t{lane} * ins.aw];
      if (ins.dw == 1) {
        const std::uint64_t v =
            addr < pm.depth
                ? mem_[ins.param][(addr * prog_.lanes + lane) * pm.words]
                : 0;
        return store1(d, v);
      }
      std::uint64_t* s = scratch_.data();
      if (addr >= pm.depth) {
        for (unsigned w = 0; w < ins.dw; ++w) s[w] = 0;
      } else {
        const std::uint64_t* e =
            mem_[ins.param].data() +
            (addr * prog_.lanes + lane) * pm.words;
        for (unsigned w = 0; w < ins.dw; ++w) s[w] = e[w];
      }
      return storeN(d, s, ins.dw);
    }
  }
  throw std::logic_error("tape: unknown opcode");
}

void Engine::step() {
  eval();
  const unsigned lanes = prog_.lanes;
  const std::uint64_t all =
      lanes == 64 ? ~0ull : ((std::uint64_t{1} << lanes) - 1);
  // Sample next state before committing anything: all registers and write
  // ports observe the same pre-edge values (matches the interpreter).
  for (std::size_t r = 0; r < prog_.regs.size(); ++r) {
    const Program::Reg& reg = prog_.regs[r];
    std::uint64_t en = all;
    if (reg.en != kNoSlot) {
      en = 0;
      for (unsigned l = 0; l < lanes; ++l)
        en |= (arena_[reg.en + l] & 1u) << l;
    }
    reg_en_[r] = en;
    if (en != 0)
      std::copy(arena_.begin() + reg.d,
                arena_.begin() + reg.d + std::size_t{reg.words} * lanes,
                reg_next_.begin() + reg_next_off_[r]);
  }
  for (std::size_t wi = 0; wi < wps_.size(); ++wi) {
    const Wp& wp = wps_[wi];
    std::uint64_t en = 0;
    for (unsigned l = 0; l < lanes; ++l)
      en |= (arena_[wp.port.en + l] & 1u) << l;
    wp_en_[wi] = en;
    if (en == 0) continue;
    for (unsigned l = 0; l < lanes; ++l)
      wp_addr_[wp.addr_at + l] =
          arena_[wp.port.addr + std::size_t{l} * wp.port.addr_words];
    std::copy(arena_.begin() + wp.port.data,
              arena_.begin() + wp.port.data + std::size_t{wp.words} * lanes,
              wp_data_.begin() + wp.data_at);
  }
  // Commit registers.
  for (std::size_t r = 0; r < prog_.regs.size(); ++r) {
    const std::uint64_t en = reg_en_[r];
    if (en == 0) continue;
    const Program::Reg& reg = prog_.regs[r];
    bool changed = false;
    for (unsigned l = 0; l < lanes; ++l) {
      if (((en >> l) & 1u) == 0) continue;
      std::uint64_t* q = arena_.data() + reg.q + std::size_t{l} * reg.words;
      const std::uint64_t* nd =
          reg_next_.data() + reg_next_off_[r] + std::size_t{l} * reg.words;
      for (unsigned w = 0; w < reg.words; ++w)
        if (q[w] != nd[w]) {
          q[w] = nd[w];
          changed = true;
        }
    }
    if (changed) {
      mark_levels(prog_.reg_fl_off, prog_.reg_fl,
                  static_cast<std::uint32_t>(r));
      pending_ = true;
    }
  }
  // Commit memory writes (port order = declaration order; later ports win).
  for (std::size_t wi = 0; wi < wps_.size(); ++wi) {
    const std::uint64_t en = wp_en_[wi];
    if (en == 0) continue;
    const Wp& wp = wps_[wi];
    const Program::Mem& pm = prog_.mems[wp.mem];
    bool changed = false;
    for (unsigned l = 0; l < lanes; ++l) {
      if (((en >> l) & 1u) == 0) continue;
      const std::uint64_t addr = wp_addr_[wp.addr_at + l];
      if (addr >= pm.depth) continue;
      std::uint64_t* e =
          mem_[wp.mem].data() + (addr * lanes + l) * pm.words;
      const std::uint64_t* s =
          wp_data_.data() + wp.data_at + std::size_t{l} * pm.words;
      for (unsigned w = 0; w < pm.words; ++w)
        if (e[w] != s[w]) {
          e[w] = s[w];
          changed = true;
        }
    }
    if (changed) {
      mark_levels(prog_.mem_fl_off, prog_.mem_fl, wp.mem);
      pending_ = true;
    }
  }
  ++stats_.cycles;
}

void Engine::reset() {
  for (const Program::Reg& reg : prog_.regs)
    for (unsigned l = 0; l < prog_.lanes; ++l)
      write_lane_bits(reg.q, reg.words, l, reg.init, nullptr);
  for (auto& words : mem_) std::fill(words.begin(), words.end(), 0);
  mark_all_dirty();
}

void Engine::restore_poweron() {
  arena_ = poweron_arena_;
  for (auto& words : mem_) std::fill(words.begin(), words.end(), 0);
  mark_all_dirty();
}

Bits Engine::mem_word(unsigned mem_index, unsigned word, unsigned lane) {
  const Program::Mem& pm = prog_.mems.at(mem_index);
  if (word >= pm.depth) throw std::out_of_range("tape: mem word out of range");
  const std::uint64_t* s =
      mem_[mem_index].data() +
      (std::size_t{word} * prog_.lanes + lane) * pm.words;
  return bits_from_words(s, pm.width);
}

void Engine::poke_mem(unsigned mem_index, unsigned word, const Bits& value) {
  const Program::Mem& pm = prog_.mems.at(mem_index);
  if (word >= pm.depth) throw std::out_of_range("tape: mem word out of range");
  for (unsigned l = 0; l < prog_.lanes; ++l) {
    std::uint64_t* e = mem_[mem_index].data() +
                       (std::size_t{word} * prog_.lanes + l) * pm.words;
    for (unsigned w = 0; w < pm.words; ++w) e[w] = value.word(w);
  }
  mark_levels(prog_.mem_fl_off, prog_.mem_fl, mem_index);
  pending_ = true;
}

void Engine::poke_reg(unsigned reg_index, const Bits& value) {
  const Program::Reg& reg = prog_.regs.at(reg_index);
  for (unsigned l = 0; l < prog_.lanes; ++l)
    write_lane_bits(reg.q, reg.words, l, value, nullptr);
  mark_levels(prog_.reg_fl_off, prog_.reg_fl, reg_index);
  pending_ = true;
}

}  // namespace osss::rtl::tape
