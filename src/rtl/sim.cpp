#include "rtl/sim.hpp"

#include <algorithm>
#include <memory>
#include <mutex>
#include <stdexcept>

#include "par/pool.hpp"

namespace osss::rtl {

const char* sim_mode_name(SimMode mode) {
  switch (mode) {
    case SimMode::kInterp: return "interp";
    case SimMode::kTape: return "tape";
    case SimMode::kNative: return "native";
  }
  return "?";
}

Simulator::Simulator(Module module, SimMode mode, unsigned lanes,
                     tape::CodegenOptions codegen)
    : m_(std::move(module)), mode_(mode), lanes_(lanes) {
  if (mode_ == SimMode::kInterp && lanes_ != 1)
    throw std::logic_error(
        "Simulator: multi-lane requires SimMode::kTape or kNative");
  for (std::uint32_t i = 0; i < m_.inputs().size(); ++i)
    input_index_.emplace(m_.inputs()[i].name, i);
  for (std::uint32_t i = 0; i < m_.outputs().size(); ++i)
    output_index_.emplace(m_.outputs()[i].name, i);
  if (mode_ == SimMode::kTape) {
    engine_ = std::make_unique<tape::Engine>(m_, lanes_);
    return;
  }
  if (mode_ == SimMode::kNative) {
    native_ =
        std::make_unique<tape::NativeEngine>(m_, lanes_, std::move(codegen));
    return;
  }
  m_.validate();
  order_ = m_.topo_order();
  values_.resize(m_.node_count());
  for (NodeId id = 0; id < m_.node_count(); ++id)
    values_[id] = Bits(m_.node(id).width);
  reg_state_.reserve(m_.registers().size());
  for (const Register& r : m_.registers()) reg_state_.push_back(r.init);
  for (const Memory& mem : m_.memories())
    mem_state_.emplace_back(mem.depth, Bits(mem.data_width));
  input_values_.reserve(m_.inputs().size());
  for (const auto& p : m_.inputs())
    input_values_.push_back(Bits(m_.node(p.node).width));
}

InputHandle Simulator::input_handle(const std::string& name) const {
  const auto it = input_index_.find(name);
  if (it == input_index_.end())
    throw std::logic_error("Simulator: no input named " + name);
  return InputHandle{it->second};
}

OutputHandle Simulator::output_handle(const std::string& name) const {
  const auto it = output_index_.find(name);
  if (it == output_index_.end())
    throw std::logic_error("Simulator: no output named " + name);
  return OutputHandle{it->second};
}

void Simulator::set_input(const std::string& name, const Bits& value) {
  set_input(input_handle(name), value);
}

void Simulator::set_input(const std::string& name, std::uint64_t value) {
  const InputHandle h = input_handle(name);
  set_input(h, Bits(input_width(h.index), value));
}

void Simulator::set_input(InputHandle h, const Bits& value) {
  if (h.index >= m_.inputs().size())
    throw std::logic_error("Simulator: bad input handle");
  if (value.width() != input_width(h.index))
    throw std::logic_error("Simulator: input width mismatch on " +
                           m_.inputs()[h.index].name);
  if (mode_ != SimMode::kInterp) {
    with_engine([&](auto& e) { e.set_input(h.index, value); });
    return;
  }
  input_values_[h.index] = value;
  dirty_ = true;
}

void Simulator::set_input(InputHandle h, std::uint64_t value) {
  if (h.index >= m_.inputs().size())
    throw std::logic_error("Simulator: bad input handle");
  if (mode_ != SimMode::kInterp) {
    with_engine(
        [&](auto& e) { e.set_input_u64(h.index, value); });  // no Bits
    return;
  }
  set_input(h, Bits(input_width(h.index), value));
}

void Simulator::set_input_lanes(InputHandle h,
                                const std::vector<std::uint64_t>& bit_lanes) {
  if (mode_ == SimMode::kInterp)
    throw std::logic_error(
        "Simulator: set_input_lanes requires kTape or kNative");
  if (h.index >= m_.inputs().size())
    throw std::logic_error("Simulator: bad input handle");
  with_engine([&](auto& e) { e.set_input_lanes(h.index, bit_lanes); });
}

void Simulator::set_input_values(InputHandle h,
                                 const std::vector<std::uint64_t>& values) {
  if (mode_ == SimMode::kInterp)
    throw std::logic_error(
        "Simulator: set_input_values requires kTape or kNative");
  if (h.index >= m_.inputs().size())
    throw std::logic_error("Simulator: bad input handle");
  with_engine([&](auto& e) { e.set_input_values(h.index, values); });
}

Bits Simulator::compute(const Node& n) const {
  auto in = [&](std::size_t i) -> const Bits& { return values_[n.ins[i]]; };
  switch (n.op) {
    case Op::kConst: return n.value;
    case Op::kInput: return Bits(n.width);  // overwritten in eval()
    case Op::kAdd: return in(0) + in(1);
    case Op::kSub: return in(0) - in(1);
    case Op::kMul: return in(0) * in(1);
    case Op::kAnd: return in(0) & in(1);
    case Op::kOr: return in(0) | in(1);
    case Op::kXor: return in(0) ^ in(1);
    case Op::kNot: return ~in(0);
    case Op::kShlI: return in(0).shl(n.param);
    case Op::kLshrI: return in(0).lshr(n.param);
    case Op::kAshrI: return in(0).ashr(n.param);
    case Op::kShlV:
      return in(0).shl(static_cast<unsigned>(in(1).to_u64() &
                                             0xffffffffu));
    case Op::kLshrV:
      return in(0).lshr(static_cast<unsigned>(in(1).to_u64() &
                                              0xffffffffu));
    case Op::kEq: return Bits(1, in(0) == in(1) ? 1u : 0u);
    case Op::kNe: return Bits(1, in(0) != in(1) ? 1u : 0u);
    case Op::kUlt: return Bits(1, Bits::ult(in(0), in(1)) ? 1u : 0u);
    case Op::kUle: return Bits(1, Bits::ule(in(0), in(1)) ? 1u : 0u);
    case Op::kSlt: return Bits(1, Bits::slt(in(0), in(1)) ? 1u : 0u);
    case Op::kSle: return Bits(1, Bits::sle(in(0), in(1)) ? 1u : 0u);
    case Op::kMux: return in(0).bit(0) ? in(1) : in(2);
    case Op::kSlice: return in(0).slice(n.param + n.width - 1, n.param);
    case Op::kConcat: {
      // ins[0] is the MOST significant chunk; deposit each operand once
      // instead of re-copying an accumulator per operand.
      Bits acc(n.width);
      unsigned pos = n.width;
      for (std::size_t i = 0; i < n.ins.size(); ++i) {
        pos -= in(i).width();
        acc.set_range(pos, in(i));
      }
      return acc;
    }
    case Op::kZExt: return in(0).zext(n.width);
    case Op::kSExt: return in(0).sext(n.width);
    case Op::kRedOr: return Bits(1, in(0).is_zero() ? 0u : 1u);
    case Op::kRedAnd: return Bits(1, in(0).is_ones() ? 1u : 0u);
    case Op::kRedXor: return Bits(1, in(0).popcount() & 1u);
    case Op::kReg: return reg_state_[n.param];
    case Op::kMemRead: {
      const Memory& mem = m_.memories()[n.param];
      const std::uint64_t addr = in(0).to_u64();
      if (addr >= mem.depth) return Bits(mem.data_width);  // out of depth: 0
      return mem_state_[n.param][addr];
    }
  }
  throw std::logic_error("Simulator: unknown op");
}

void Simulator::eval() {
  if (!dirty_) return;
  // Input ports first (they are sources in the topo order anyway, but their
  // values come from the testbench).
  for (std::size_t i = 0; i < m_.inputs().size(); ++i)
    values_[m_.inputs()[i].node] = input_values_[i];
  for (const NodeId id : order_) {
    const Node& n = m_.node(id);
    if (n.op == Op::kInput) continue;
    values_[id] = compute(n);
  }
  dirty_ = false;
}

Bits Simulator::get(NodeId id, unsigned lane) {
  if (mode_ != SimMode::kInterp)
    return with_engine([&](auto& e) { return e.node_value(id, lane); });
  eval();
  return values_.at(id);
}

Bits Simulator::output(const std::string& name) {
  return output(output_handle(name));
}

Bits Simulator::output(OutputHandle h) { return output_lane(h, 0); }

Bits Simulator::output_lane(OutputHandle h, unsigned lane) {
  if (h.index >= m_.outputs().size())
    throw std::logic_error("Simulator: bad output handle");
  if (mode_ != SimMode::kInterp)
    return with_engine([&](auto& e) { return e.output(h.index, lane); });
  eval();
  return values_.at(m_.outputs()[h.index].node);
}

std::uint64_t Simulator::output_u64(OutputHandle h) {
  if (h.index >= m_.outputs().size())
    throw std::logic_error("Simulator: bad output handle");
  if (mode_ != SimMode::kInterp)
    return with_engine([&](auto& e) { return e.output_u64(h.index); });
  eval();
  return values_[m_.outputs()[h.index].node].to_u64();
}

std::vector<std::uint64_t> Simulator::output_words(OutputHandle h) {
  if (mode_ == SimMode::kInterp)
    throw std::logic_error(
        "Simulator: output_words requires kTape or kNative");
  if (h.index >= m_.outputs().size())
    throw std::logic_error("Simulator: bad output handle");
  return with_engine([&](auto& e) { return e.output_words(h.index); });
}

std::vector<std::uint64_t> Simulator::output_values(OutputHandle h) {
  if (mode_ == SimMode::kInterp)
    throw std::logic_error(
        "Simulator: output_values requires kTape or kNative");
  if (h.index >= m_.outputs().size())
    throw std::logic_error("Simulator: bad output handle");
  return with_engine([&](auto& e) { return e.output_values(h.index); });
}

void Simulator::step() {
  if (mode_ != SimMode::kInterp) {
    with_engine([](auto& e) { e.step(); });
    return;
  }
  eval();
  // Capture next state before committing anything (all registers and memory
  // writes observe the same pre-edge values).
  std::vector<Bits> next = reg_state_;
  for (std::size_t i = 0; i < m_.registers().size(); ++i) {
    const Register& r = m_.registers()[i];
    const bool en =
        r.enable == kInvalidNode || values_[r.enable].bit(0);
    if (en) next[i] = values_[r.d];
  }
  struct PendingWrite {
    unsigned mem;
    std::uint64_t addr;
    Bits data;
  };
  std::vector<PendingWrite> writes;
  for (unsigned mi = 0; mi < m_.memories().size(); ++mi) {
    for (const auto& w : m_.memories()[mi].writes) {
      if (values_[w.enable].bit(0)) {
        const std::uint64_t addr = values_[w.addr].to_u64();
        if (addr < m_.memories()[mi].depth)
          writes.push_back({mi, addr, values_[w.data]});
      }
    }
  }
  reg_state_ = std::move(next);
  for (auto& w : writes) mem_state_[w.mem][w.addr] = std::move(w.data);
  dirty_ = true;
  ++cycles_;
}

void Simulator::reset() {
  if (mode_ != SimMode::kInterp) {
    with_engine([](auto& e) { e.reset(); });
    return;
  }
  for (std::size_t i = 0; i < m_.registers().size(); ++i)
    reg_state_[i] = m_.registers()[i].init;
  for (unsigned mi = 0; mi < m_.memories().size(); ++mi) {
    for (auto& word : mem_state_[mi]) word = Bits(word.width());
  }
  dirty_ = true;
}

void Simulator::restore_poweron() {
  if (mode_ != SimMode::kInterp) {
    with_engine([](auto& e) { e.restore_poweron(); });
    return;
  }
  reset();
}

std::uint64_t Simulator::cycle_count() const noexcept {
  if (mode_ == SimMode::kInterp) return cycles_;
  return with_engine([](auto& e) { return e.stats().cycles; });
}

Simulator::Stats Simulator::stats() const {
  if (mode_ != SimMode::kInterp) {
    return with_engine([](auto& e) {
      Stats s;
      const auto& rs = e.stats();
      const tape::CompileStats& cs = e.program().stats;
      s.cycles = rs.cycles;
      s.nodes_evaluated = rs.nodes_evaluated;
      s.levels_evaluated = rs.levels_evaluated;
      s.levels_skipped = rs.levels_skipped;
      s.tape_len = cs.tape_len;
      s.arena_words = cs.arena_words;
      s.levels = cs.levels;
      s.const_folded = cs.const_folded;
      s.pruned = cs.pruned;
      s.fused = cs.fused;
      return s;
    });
  }
  Stats s;
  s.cycles = cycles_;
  return s;
}

tape::Program& Simulator::tape() {
  if (mode_ == SimMode::kInterp)
    throw std::logic_error("Simulator: tape() requires kTape or kNative");
  return with_engine([](auto& e) -> tape::Program& { return e.program(); });
}

tape::NativeEngine& Simulator::native() {
  if (mode_ != SimMode::kNative)
    throw std::logic_error("Simulator: native() requires SimMode::kNative");
  return *native_;
}

Bits Simulator::mem_word(unsigned mem_index, unsigned word) {
  if (mode_ != SimMode::kInterp)
    return with_engine(
        [&](auto& e) { return e.mem_word(mem_index, word); });
  return mem_state_.at(mem_index).at(word);
}

void Simulator::poke_mem(unsigned mem_index, unsigned word,
                         const Bits& value) {
  if (mode_ != SimMode::kInterp) {
    if (mem_index >= m_.memories().size() ||
        word >= m_.memories()[mem_index].depth)
      throw std::out_of_range("Simulator: poke_mem out of range");
    if (value.width() != m_.memories()[mem_index].data_width)
      throw std::logic_error("Simulator: poke_mem width mismatch");
    with_engine([&](auto& e) { e.poke_mem(mem_index, word, value); });
    return;
  }
  Bits& slot = mem_state_.at(mem_index).at(word);
  if (slot.width() != value.width())
    throw std::logic_error("Simulator: poke_mem width mismatch");
  slot = value;
  dirty_ = true;
}

void Simulator::poke_reg(const std::string& name, const Bits& value) {
  for (std::size_t i = 0; i < m_.registers().size(); ++i) {
    if (m_.registers()[i].name == name) {
      if (m_.node(m_.registers()[i].q).width != value.width())
        throw std::logic_error("Simulator: poke_reg width mismatch");
      if (mode_ != SimMode::kInterp) {
        with_engine(
            [&](auto& e) { e.poke_reg(static_cast<unsigned>(i), value); });
      } else {
        reg_state_[i] = value;
        dirty_ = true;
      }
      return;
    }
  }
  throw std::logic_error("Simulator: no register named " + name);
}

// --- run_batch -------------------------------------------------------------

namespace {

void run_scalar_block(Simulator& sim, const std::vector<InputHandle>& in,
                      const std::vector<OutputHandle>& out,
                      par::StimulusBlock& b) {
  sim.restore_poweron();
  for (unsigned c = 0; c < b.cycles; ++c) {
    for (unsigned s = 0; s < b.in_slots; ++s)
      sim.set_input(in[s], b.in_at(c, s));  // truncates to port width
    sim.step();
    for (unsigned s = 0; s < b.out_slots; ++s)
      b.out[static_cast<std::size_t>(c) * b.out_slots + s] =
          sim.output_u64(out[s]);
  }
}

void run_lane_block(Simulator& sim, const std::vector<InputHandle>& in,
                    const std::vector<unsigned>& in_widths,
                    const std::vector<OutputHandle>& out,
                    par::StimulusBlock& b,
                    std::vector<std::uint64_t>& scratch) {
  const unsigned lw = sim.lane_words();
  sim.restore_poweron();
  for (unsigned c = 0; c < b.cycles; ++c) {
    unsigned slot = 0;
    for (std::size_t p = 0; p < in.size(); ++p) {
      const unsigned w = in_widths[p] * lw;
      scratch.assign(&b.in_at(c, slot), &b.in_at(c, slot) + w);
      sim.set_input_lanes(in[p], scratch);
      slot += w;
    }
    sim.step();
    slot = 0;
    for (const OutputHandle h : out) {
      const std::vector<std::uint64_t> words = sim.output_words(h);
      for (std::size_t i = 0; i < words.size(); ++i)
        b.out[static_cast<std::size_t>(c) * b.out_slots + slot + i] = words[i];
      slot += static_cast<unsigned>(words.size());
    }
  }
}

}  // namespace

void run_batch(const Module& m, SimMode mode,
               std::span<par::StimulusBlock> blocks, par::Pool* pool_arg) {
  if (blocks.empty()) return;
  const unsigned lanes = blocks.front().lanes;
  if (lanes != 1 && (lanes % 64 != 0 || lanes > tape::kMaxLanes))
    throw std::invalid_argument(
        "rtl::run_batch: lanes must be 1 or a multiple of 64 up to "
        "tape::kMaxLanes");
  if (lanes > 1 && mode != SimMode::kTape && mode != SimMode::kNative)
    throw std::invalid_argument(
        "rtl::run_batch: lane blocks require SimMode::kTape or kNative");
  if (lanes > 64 && mode != SimMode::kNative)
    throw std::invalid_argument(
        "rtl::run_batch: blocks wider than 64 lanes require SimMode::kNative");

  std::vector<unsigned> in_widths;
  for (const PortRef& p : m.inputs())
    in_widths.push_back(m.node(p.node).width);
  unsigned in_slots = 0, out_slots = 0;
  if (lanes == 1) {
    in_slots = static_cast<unsigned>(m.inputs().size());
    out_slots = static_cast<unsigned>(m.outputs().size());
  } else {
    const unsigned lw = lanes / 64;
    for (const unsigned w : in_widths) in_slots += w * lw;
    for (const PortRef& p : m.outputs())
      out_slots += m.node(p.node).width * lw;
  }
  for (par::StimulusBlock& b : blocks) {
    if (b.lanes != lanes)
      throw std::invalid_argument("rtl::run_batch: mixed-lane batch");
    if (b.in_slots != in_slots ||
        b.in.size() != static_cast<std::size_t>(b.cycles) * in_slots)
      throw std::invalid_argument("rtl::run_batch: block stimulus shape "
                                  "does not match the module interface");
    b.out_slots = out_slots;
    b.out.assign(static_cast<std::size_t>(b.cycles) * out_slots, 0);
  }

  par::Pool& pool = pool_arg ? *pool_arg : par::Pool::global();
  const std::size_t chunks =
      std::min(blocks.size(), static_cast<std::size_t>(pool.size()) * 2);
  const std::size_t per = (blocks.size() + chunks - 1) / chunks;
  // Engines (plus their resolved port handles) are pooled across chunks: a
  // chunk borrows an idle entry or builds one when all are busy — at most
  // one per concurrently active worker — so module compile and JIT cost
  // are paid once per worker, not once per chunk.  Blocks start from
  // restore_poweron(), a snapshot copy.
  struct BatchSim {
    Simulator sim;
    std::vector<InputHandle> in;
    std::vector<OutputHandle> out;
    std::vector<std::uint64_t> scratch;
    BatchSim(const Module& m, SimMode mode, unsigned lanes)
        : sim(m, mode, lanes) {
      for (const PortRef& p : m.inputs())
        in.push_back(sim.input_handle(p.name));
      for (const PortRef& p : m.outputs())
        out.push_back(sim.output_handle(p.name));
    }
  };
  std::mutex pool_mu;
  std::vector<std::unique_ptr<BatchSim>> idle;
  pool.parallel_for(chunks, [&](std::size_t chunk) {
    const std::size_t lo = chunk * per;
    const std::size_t hi = std::min(blocks.size(), lo + per);
    if (lo >= hi) return;
    std::unique_ptr<BatchSim> bs;
    {
      std::lock_guard<std::mutex> lk(pool_mu);
      if (!idle.empty()) {
        bs = std::move(idle.back());
        idle.pop_back();
      }
    }
    if (!bs) bs = std::make_unique<BatchSim>(m, mode, lanes);
    for (std::size_t i = lo; i < hi; ++i) {
      if (lanes == 1)
        run_scalar_block(bs->sim, bs->in, bs->out, blocks[i]);
      else
        run_lane_block(bs->sim, bs->in, in_widths, bs->out, blocks[i],
                       bs->scratch);
    }
    std::lock_guard<std::mutex> lk(pool_mu);
    idle.push_back(std::move(bs));
  });
}

}  // namespace osss::rtl
