#include "rtl/sim.hpp"

#include <stdexcept>

namespace osss::rtl {

Simulator::Simulator(Module module) : m_(std::move(module)) {
  m_.validate();
  order_ = m_.topo_order();
  values_.resize(m_.node_count());
  for (NodeId id = 0; id < m_.node_count(); ++id)
    values_[id] = Bits(m_.node(id).width);
  reg_state_.reserve(m_.registers().size());
  for (const Register& r : m_.registers()) reg_state_.push_back(r.init);
  for (const Memory& mem : m_.memories())
    mem_state_.emplace_back(mem.depth, Bits(mem.data_width));
  input_values_.reserve(m_.inputs().size());
  for (const auto& p : m_.inputs())
    input_values_.push_back(Bits(m_.node(p.node).width));
}

void Simulator::set_input(const std::string& name, const Bits& value) {
  for (std::size_t i = 0; i < m_.inputs().size(); ++i) {
    if (m_.inputs()[i].name == name) {
      if (value.width() != input_values_[i].width())
        throw std::logic_error("Simulator: input width mismatch on " + name);
      input_values_[i] = value;
      dirty_ = true;
      return;
    }
  }
  throw std::logic_error("Simulator: no input named " + name);
}

void Simulator::set_input(const std::string& name, std::uint64_t value) {
  const NodeId id = m_.find_input(name);
  if (id == kInvalidNode)
    throw std::logic_error("Simulator: no input named " + name);
  set_input(name, Bits(m_.node(id).width, value));
}

Bits Simulator::compute(const Node& n) const {
  auto in = [&](std::size_t i) -> const Bits& { return values_[n.ins[i]]; };
  switch (n.op) {
    case Op::kConst: return n.value;
    case Op::kInput: return Bits(n.width);  // overwritten in eval()
    case Op::kAdd: return in(0) + in(1);
    case Op::kSub: return in(0) - in(1);
    case Op::kMul: return in(0) * in(1);
    case Op::kAnd: return in(0) & in(1);
    case Op::kOr: return in(0) | in(1);
    case Op::kXor: return in(0) ^ in(1);
    case Op::kNot: return ~in(0);
    case Op::kShlI: return in(0).shl(n.param);
    case Op::kLshrI: return in(0).lshr(n.param);
    case Op::kAshrI: return in(0).ashr(n.param);
    case Op::kShlV:
      return in(0).shl(static_cast<unsigned>(in(1).to_u64() &
                                             0xffffffffu));
    case Op::kLshrV:
      return in(0).lshr(static_cast<unsigned>(in(1).to_u64() &
                                              0xffffffffu));
    case Op::kEq: return Bits(1, in(0) == in(1) ? 1u : 0u);
    case Op::kNe: return Bits(1, in(0) != in(1) ? 1u : 0u);
    case Op::kUlt: return Bits(1, Bits::ult(in(0), in(1)) ? 1u : 0u);
    case Op::kUle: return Bits(1, Bits::ule(in(0), in(1)) ? 1u : 0u);
    case Op::kSlt: return Bits(1, Bits::slt(in(0), in(1)) ? 1u : 0u);
    case Op::kSle: return Bits(1, Bits::sle(in(0), in(1)) ? 1u : 0u);
    case Op::kMux: return in(0).bit(0) ? in(1) : in(2);
    case Op::kSlice: return in(0).slice(n.param + n.width - 1, n.param);
    case Op::kConcat: {
      Bits acc = in(0);
      for (std::size_t i = 1; i < n.ins.size(); ++i)
        acc = Bits::concat(acc, in(i));
      return acc;
    }
    case Op::kZExt: return in(0).zext(n.width);
    case Op::kSExt: return in(0).sext(n.width);
    case Op::kRedOr: return Bits(1, in(0).is_zero() ? 0u : 1u);
    case Op::kRedAnd: return Bits(1, in(0).is_ones() ? 1u : 0u);
    case Op::kRedXor: return Bits(1, in(0).popcount() & 1u);
    case Op::kReg: return reg_state_[n.param];
    case Op::kMemRead: {
      const Memory& mem = m_.memories()[n.param];
      const std::uint64_t addr = in(0).to_u64();
      if (addr >= mem.depth) return Bits(mem.data_width);  // out of depth: 0
      return mem_state_[n.param][addr];
    }
  }
  throw std::logic_error("Simulator: unknown op");
}

void Simulator::eval() {
  if (!dirty_) return;
  // Input ports first (they are sources in the topo order anyway, but their
  // values come from the testbench).
  for (std::size_t i = 0; i < m_.inputs().size(); ++i)
    values_[m_.inputs()[i].node] = input_values_[i];
  for (const NodeId id : order_) {
    const Node& n = m_.node(id);
    if (n.op == Op::kInput) continue;
    values_[id] = compute(n);
  }
  dirty_ = false;
}

const Bits& Simulator::get(NodeId id) {
  eval();
  return values_.at(id);
}

const Bits& Simulator::output(const std::string& name) {
  const NodeId id = m_.find_output(name);
  if (id == kInvalidNode)
    throw std::logic_error("Simulator: no output named " + name);
  return get(id);
}

void Simulator::step() {
  eval();
  // Capture next state before committing anything (all registers and memory
  // writes observe the same pre-edge values).
  std::vector<Bits> next = reg_state_;
  for (std::size_t i = 0; i < m_.registers().size(); ++i) {
    const Register& r = m_.registers()[i];
    const bool en =
        r.enable == kInvalidNode || values_[r.enable].bit(0);
    if (en) next[i] = values_[r.d];
  }
  struct PendingWrite {
    unsigned mem;
    std::uint64_t addr;
    Bits data;
  };
  std::vector<PendingWrite> writes;
  for (unsigned mi = 0; mi < m_.memories().size(); ++mi) {
    for (const auto& w : m_.memories()[mi].writes) {
      if (values_[w.enable].bit(0)) {
        const std::uint64_t addr = values_[w.addr].to_u64();
        if (addr < m_.memories()[mi].depth)
          writes.push_back({mi, addr, values_[w.data]});
      }
    }
  }
  reg_state_ = std::move(next);
  for (auto& w : writes) mem_state_[w.mem][w.addr] = std::move(w.data);
  dirty_ = true;
  ++cycles_;
}

void Simulator::reset() {
  for (std::size_t i = 0; i < m_.registers().size(); ++i)
    reg_state_[i] = m_.registers()[i].init;
  for (unsigned mi = 0; mi < m_.memories().size(); ++mi) {
    for (auto& word : mem_state_[mi]) word = Bits(word.width());
  }
  dirty_ = true;
}

const Bits& Simulator::mem_word(unsigned mem_index, unsigned word) {
  return mem_state_.at(mem_index).at(word);
}

void Simulator::poke_mem(unsigned mem_index, unsigned word,
                         const Bits& value) {
  Bits& slot = mem_state_.at(mem_index).at(word);
  if (slot.width() != value.width())
    throw std::logic_error("Simulator: poke_mem width mismatch");
  slot = value;
  dirty_ = true;
}

void Simulator::poke_reg(const std::string& name, const Bits& value) {
  for (std::size_t i = 0; i < m_.registers().size(); ++i) {
    if (m_.registers()[i].name == name) {
      if (reg_state_[i].width() != value.width())
        throw std::logic_error("Simulator: poke_reg width mismatch");
      reg_state_[i] = value;
      dirty_ = true;
      return;
    }
  }
  throw std::logic_error("Simulator: no register named " + name);
}

}  // namespace osss::rtl
