#include "rtl/builder.hpp"

#include <stdexcept>

namespace osss::rtl {

unsigned addr_width_for(unsigned depth) {
  if (depth <= 1) return 1;
  unsigned w = 0;
  unsigned d = depth - 1;
  while (d != 0) {
    ++w;
    d >>= 1;
  }
  return w;
}

void Builder::check_valid(Wire w, const char* what) const {
  if (!w.valid() || w.id >= m_.nodes_.size())
    throw std::logic_error(std::string("Builder: invalid wire for ") + what);
  if (m_.nodes_[w.id].width != w.width)
    throw std::logic_error(std::string("Builder: stale wire handle in ") +
                           what);
}

void Builder::check_same(Wire a, Wire b, const char* what) const {
  check_valid(a, what);
  check_valid(b, what);
  if (a.width != b.width)
    throw std::logic_error(std::string("Builder: width mismatch in ") + what +
                           ": " + std::to_string(a.width) + " vs " +
                           std::to_string(b.width));
}

Wire Builder::make(Op op, unsigned width, std::vector<NodeId> ins,
                   unsigned param) {
  Node n;
  n.op = op;
  n.width = width;
  n.ins = std::move(ins);
  n.param = param;
  m_.nodes_.push_back(std::move(n));
  return Wire{static_cast<NodeId>(m_.nodes_.size() - 1), width};
}

Wire Builder::input(const std::string& name, unsigned width) {
  Wire w = make(Op::kInput, width, {});
  m_.nodes_[w.id].name = name;
  m_.inputs_.push_back({name, w.id});
  return w;
}

void Builder::output(const std::string& name, Wire w) {
  check_valid(w, "output");
  m_.outputs_.push_back({name, w.id});
}

Wire Builder::constant(unsigned width, std::uint64_t value) {
  return constant(Bits(width, value));
}

Wire Builder::constant(const Bits& value) {
  Wire w = make(Op::kConst, value.width(), {});
  m_.nodes_[w.id].value = value;
  return w;
}

#define OSSS_BINOP(fn, op)                       \
  Wire Builder::fn(Wire a, Wire b) {             \
    check_same(a, b, #fn);                       \
    return make(op, a.width, {a.id, b.id});      \
  }

OSSS_BINOP(add, Op::kAdd)
OSSS_BINOP(sub, Op::kSub)
OSSS_BINOP(mul, Op::kMul)
OSSS_BINOP(and_, Op::kAnd)
OSSS_BINOP(or_, Op::kOr)
OSSS_BINOP(xor_, Op::kXor)
#undef OSSS_BINOP

#define OSSS_CMP(fn, op)                         \
  Wire Builder::fn(Wire a, Wire b) {             \
    check_same(a, b, #fn);                       \
    return make(op, 1, {a.id, b.id});            \
  }

OSSS_CMP(eq, Op::kEq)
OSSS_CMP(ne, Op::kNe)
OSSS_CMP(ult, Op::kUlt)
OSSS_CMP(ule, Op::kUle)
OSSS_CMP(slt, Op::kSlt)
OSSS_CMP(sle, Op::kSle)
#undef OSSS_CMP

Wire Builder::not_(Wire a) {
  check_valid(a, "not");
  return make(Op::kNot, a.width, {a.id});
}

Wire Builder::shli(Wire a, unsigned amount) {
  check_valid(a, "shli");
  return make(Op::kShlI, a.width, {a.id}, amount);
}

Wire Builder::lshri(Wire a, unsigned amount) {
  check_valid(a, "lshri");
  return make(Op::kLshrI, a.width, {a.id}, amount);
}

Wire Builder::ashri(Wire a, unsigned amount) {
  check_valid(a, "ashri");
  return make(Op::kAshrI, a.width, {a.id}, amount);
}

Wire Builder::shlv(Wire a, Wire amount) {
  check_valid(a, "shlv");
  check_valid(amount, "shlv amount");
  return make(Op::kShlV, a.width, {a.id, amount.id});
}

Wire Builder::lshrv(Wire a, Wire amount) {
  check_valid(a, "lshrv");
  check_valid(amount, "lshrv amount");
  return make(Op::kLshrV, a.width, {a.id, amount.id});
}

Wire Builder::mux(Wire sel, Wire then_w, Wire else_w) {
  check_valid(sel, "mux select");
  if (sel.width != 1) throw std::logic_error("Builder: mux select not 1 bit");
  check_same(then_w, else_w, "mux");
  return make(Op::kMux, then_w.width, {sel.id, then_w.id, else_w.id});
}

Wire Builder::slice(Wire a, unsigned hi, unsigned lo) {
  check_valid(a, "slice");
  if (hi >= a.width || lo > hi)
    throw std::logic_error("Builder: slice [" + std::to_string(hi) + ":" +
                           std::to_string(lo) + "] out of range for width " +
                           std::to_string(a.width));
  return make(Op::kSlice, hi - lo + 1, {a.id}, lo);
}

Wire Builder::concat(const std::vector<Wire>& parts) {
  if (parts.empty()) throw std::logic_error("Builder: empty concat");
  unsigned total = 0;
  std::vector<NodeId> ins;
  ins.reserve(parts.size());
  for (const Wire& p : parts) {
    check_valid(p, "concat");
    total += p.width;
    ins.push_back(p.id);
  }
  return make(Op::kConcat, total, std::move(ins));
}

Wire Builder::zext(Wire a, unsigned width) {
  check_valid(a, "zext");
  if (width == a.width) return a;
  if (width < a.width) throw std::logic_error("Builder: zext narrows");
  return make(Op::kZExt, width, {a.id});
}

Wire Builder::sext(Wire a, unsigned width) {
  check_valid(a, "sext");
  if (width == a.width) return a;
  if (width < a.width) throw std::logic_error("Builder: sext narrows");
  return make(Op::kSExt, width, {a.id});
}

Wire Builder::red_or(Wire a) {
  check_valid(a, "red_or");
  return make(Op::kRedOr, 1, {a.id});
}

Wire Builder::red_and(Wire a) {
  check_valid(a, "red_and");
  return make(Op::kRedAnd, 1, {a.id});
}

Wire Builder::red_xor(Wire a) {
  check_valid(a, "red_xor");
  return make(Op::kRedXor, 1, {a.id});
}

Wire Builder::reg(const std::string& name, unsigned width, Bits init) {
  if (init.width() != width)
    throw std::logic_error("Builder: register init width mismatch");
  Wire q = make(Op::kReg, width, {}, static_cast<unsigned>(m_.regs_.size()));
  m_.nodes_[q.id].name = name;
  Register r;
  r.q = q.id;
  r.init = std::move(init);
  r.name = name;
  m_.regs_.push_back(std::move(r));
  return q;
}

void Builder::connect(Wire q, Wire d) {
  check_valid(q, "connect");
  check_valid(d, "connect D");
  const Node& n = m_.nodes_[q.id];
  if (n.op != Op::kReg) throw std::logic_error("Builder: connect on non-reg");
  Register& r = m_.regs_[n.param];
  if (r.d != kInvalidNode)
    throw std::logic_error("Builder: register '" + r.name +
                           "' connected twice");
  if (d.width != q.width)
    throw std::logic_error("Builder: register D width mismatch");
  r.d = d.id;
}

void Builder::enable(Wire q, Wire en) {
  check_valid(q, "enable");
  check_valid(en, "enable signal");
  const Node& n = m_.nodes_[q.id];
  if (n.op != Op::kReg) throw std::logic_error("Builder: enable on non-reg");
  if (en.width != 1) throw std::logic_error("Builder: enable must be 1 bit");
  m_.regs_[n.param].enable = en.id;
}

MemHandle Builder::memory(const std::string& name, unsigned depth,
                          unsigned data_width) {
  Memory m;
  m.name = name;
  m.depth = depth;
  m.data_width = data_width;
  m.addr_width = addr_width_for(depth);
  m_.mems_.push_back(std::move(m));
  return MemHandle{static_cast<unsigned>(m_.mems_.size() - 1)};
}

Wire Builder::mem_read(MemHandle m, Wire addr) {
  check_valid(addr, "mem_read addr");
  const Memory& mem = m_.mems_.at(m.index);
  if (addr.width != mem.addr_width)
    throw std::logic_error("Builder: mem_read address width mismatch");
  return make(Op::kMemRead, mem.data_width, {addr.id}, m.index);
}

void Builder::mem_write(MemHandle m, Wire addr, Wire data, Wire en) {
  check_valid(addr, "mem_write addr");
  check_valid(data, "mem_write data");
  check_valid(en, "mem_write enable");
  Memory& mem = m_.mems_.at(m.index);
  mem.writes.push_back({addr.id, data.id, en.id});
}

Module Builder::take() {
  if (taken_) throw std::logic_error("Builder: take() called twice");
  taken_ = true;
  m_.validate();
  return std::move(m_);
}

}  // namespace osss::rtl
