// codegen_emit.cpp — lower a compiled tape::Program into specialized C++.
//
// The generated translation unit is self-contained: a prelude of lane-vector
// helpers (explicit AVX2/AVX-512 paths with scalar tails, selected by the
// flags the host compile passes) followed by one straight-line statement per
// tape instruction, grouped into `if (D[level])` guarded basic blocks that
// mirror the interpreter's level-granular activity gating.  Arena offsets,
// widths, masks, shift amounts and fanout-level marks are baked in as
// literals; single-word constants from the pool are inlined as immediates
// (`K{...}` operands broadcast via set1 in the vector paths).
//
// Layout contract (must match tape::Engine / NativeEngine exactly): lane l
// of a node with `words` words lives at arena[off + l*words]; memory word w
// of entry a in lane l lives at mem[mi][(a*L + l)*words + w].

#include <cstdint>
#include <cstdio>
#include <sstream>
#include <string>
#include <unordered_map>

#include "rtl/codegen.hpp"
#include "rtl/tape_detail.hpp"

namespace osss::rtl::tape {

namespace {

using detail::mask64;
using detail::top_mask;


struct Emitter {
  const Program& p;
  std::ostringstream os;
  /// Single-word constant-pool slots, inlined as K{...} immediates.
  std::unordered_map<std::uint32_t, std::uint64_t> c1;

  explicit Emitter(const Program& prog) : p(prog) {
    for (const auto& [off, v] : p.const_init)
      if (v.width() <= 64) c1.emplace(off, v.word(0));
  }

  static std::string hex(std::uint64_t v) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "0x%llxull",
                  static_cast<unsigned long long>(v));
    return buf;
  }
  static std::string num(std::uint64_t v) { return std::to_string(v); }

  /// Stride-1 operand: inlined constant or arena pointer.
  std::string src1(std::uint32_t off) const {
    const auto it = c1.find(off);
    if (it != c1.end()) return "K{" + hex(it->second) + "}";
    return "P{A + " + num(off) + "}";
  }
  /// Strided operand (variable shift amounts with multi-word amount slots).
  std::string srcs(std::uint32_t off, unsigned stride) const {
    if (stride == 1) return src1(off);
    return "Ps<" + num(stride) + ">{A + " + num(off) + "}";
  }
  std::string dst(const Instr& ins) const { return "A + " + num(ins.dst); }
  std::string ptr(std::uint32_t off) const { return "A + " + num(off); }
  std::string lanes_words(unsigned per_lane) const {
    return num(std::uint64_t{p.lanes} * per_lane);
  }

  /// Dirty marks for instruction i's fanout levels; empty when none.
  std::string marks(std::uint32_t i) const {
    std::string m;
    for (std::uint32_t k = p.instr_fl_off[i]; k < p.instr_fl_off[i + 1]; ++k)
      m += " D[" + num(p.instr_fl[k]) + "] = 1;";
    return m;
  }

  /// The change-returning call expression for one instruction, or "" for
  /// ops emitted as inline blocks (concat, memread).
  std::string expr(const Instr& ins) const {
    const std::string LN = num(p.lanes);
    const std::string DW = num(ins.dw);
    const std::string AW = num(ins.aw);
    const std::string M = hex(ins.mask);
    const std::string ONES = hex(~0ull);
    switch (ins.op) {
      case TOp::kAdd1:
        return "v_bin<" + LN + ", OpAdd>(" + dst(ins) + ", " + src1(ins.a) +
               ", " + src1(ins.b) + ", " + M + ")";
      case TOp::kSub1:
        return "v_bin<" + LN + ", OpSub>(" + dst(ins) + ", " + src1(ins.a) +
               ", " + src1(ins.b) + ", " + M + ")";
      case TOp::kMul1:
        return "v_bin_sc<" + LN + ", OpMul>(" + dst(ins) + ", " + src1(ins.a) +
               ", " + src1(ins.b) + ", " + M + ")";
      case TOp::kAnd1:
        return "v_bin<" + LN + ", OpAnd>(" + dst(ins) + ", " + src1(ins.a) +
               ", " + src1(ins.b) + ", " + ONES + ")";
      case TOp::kOr1:
        return "v_bin<" + LN + ", OpOr>(" + dst(ins) + ", " + src1(ins.a) +
               ", " + src1(ins.b) + ", " + ONES + ")";
      case TOp::kXor1:
        return "v_bin<" + LN + ", OpXor>(" + dst(ins) + ", " + src1(ins.a) +
               ", " + src1(ins.b) + ", " + ONES + ")";
      case TOp::kNot1:
        return "v_not<" + LN + ">(" + dst(ins) + ", " + src1(ins.a) + ", " +
               M + ")";
      case TOp::kShlI1:
        return "v_shi<" + LN + ", true>(" + dst(ins) + ", " + src1(ins.a) +
               ", " + num(ins.param) + ", " + M + ")";
      case TOp::kLshrI1:
        return "v_shi<" + LN + ", false>(" + dst(ins) + ", " + src1(ins.a) +
               ", " + num(ins.param) + ", " + ONES + ")";
      case TOp::kSlice1:
        return "v_shi<" + LN + ", false>(" + dst(ins) + ", " + src1(ins.a) +
               ", " + num(ins.param) + ", " + M + ")";
      case TOp::kAshrI1:
        return "v_ashri<" + LN + ">(" + dst(ins) + ", " + src1(ins.a) + ", " +
               num(ins.param) + ", " + num(ins.width) + ", " + M + ")";
      case TOp::kShlV1:
        return "v_shv<" + LN + ", true>(" + dst(ins) + ", " + src1(ins.a) +
               ", " + srcs(ins.b, ins.aw) + ", " + num(ins.width) + ", " + M +
               ")";
      case TOp::kLshrV1:
        return "v_shv<" + LN + ", false>(" + dst(ins) + ", " + src1(ins.a) +
               ", " + srcs(ins.b, ins.aw) + ", " + num(ins.width) + ", " +
               ONES + ")";
      case TOp::kEq1:
        return "v_cmp<" + LN + ", CEq>(" + dst(ins) + ", " + src1(ins.a) +
               ", " + src1(ins.b) + ")";
      case TOp::kNe1:
        return "v_cmp<" + LN + ", CNe>(" + dst(ins) + ", " + src1(ins.a) +
               ", " + src1(ins.b) + ")";
      case TOp::kUlt1:
        return "v_cmp<" + LN + ", CUlt>(" + dst(ins) + ", " + src1(ins.a) +
               ", " + src1(ins.b) + ")";
      case TOp::kUle1:
        return "v_cmp<" + LN + ", CUle>(" + dst(ins) + ", " + src1(ins.a) +
               ", " + src1(ins.b) + ")";
      case TOp::kSlt1:
        return "v_scmp<" + LN + ", false>(" + dst(ins) + ", " + src1(ins.a) +
               ", " + src1(ins.b) + ", " + num(64 - ins.a_width) + ")";
      case TOp::kSle1:
        return "v_scmp<" + LN + ", true>(" + dst(ins) + ", " + src1(ins.a) +
               ", " + src1(ins.b) + ", " + num(64 - ins.a_width) + ")";
      case TOp::kMux1:
        return "v_mux<" + LN + ">(" + dst(ins) + ", " + src1(ins.a) + ", " +
               src1(ins.b) + ", " + src1(ins.c) + ")";
      case TOp::kSExt1:
        return "v_sext<" + LN + ">(" + dst(ins) + ", " + src1(ins.a) + ", " +
               num(ins.a_width - 1) + ", " +
               hex(ins.mask ^ mask64(ins.a_width)) + ")";
      case TOp::kRedOr1:
        return "v_redor<" + LN + ">(" + dst(ins) + ", " + src1(ins.a) + ")";
      case TOp::kRedAnd1:
        return "v_redand<" + LN + ">(" + dst(ins) + ", " + src1(ins.a) +
               ", " + hex(mask64(ins.a_width)) + ")";
      case TOp::kRedXor1:
        return "v_redxor<" + LN + ">(" + dst(ins) + ", " + src1(ins.a) + ")";

      case TOp::kCopyN:
        return "n_copy<" + LN + ", " + AW + ", " + DW + ">(" + dst(ins) +
               ", " + ptr(ins.a) + ")";
      case TOp::kAddN:
        return "n_add<" + LN + ", " + DW + ">(" + dst(ins) + ", " +
               ptr(ins.a) + ", " + ptr(ins.b) + ", " + M + ")";
      case TOp::kSubN:
        return "n_sub<" + LN + ", " + DW + ">(" + dst(ins) + ", " +
               ptr(ins.a) + ", " + ptr(ins.b) + ", " + M + ")";
      case TOp::kMulN:
        return "n_mul<" + LN + ", " + DW + ">(" + dst(ins) + ", " +
               ptr(ins.a) + ", " + ptr(ins.b) + ", " + M + ")";
      // Lane-major multi-word bitwise ops are elementwise over the flat
      // lanes*words span, so they reuse the vector driver directly.
      case TOp::kAndN:
        return "v_bin<" + lanes_words(ins.dw) + ", OpAnd>(" + dst(ins) +
               ", P{" + ptr(ins.a) + "}, P{" + ptr(ins.b) + "}, " + ONES + ")";
      case TOp::kOrN:
        return "v_bin<" + lanes_words(ins.dw) + ", OpOr>(" + dst(ins) +
               ", P{" + ptr(ins.a) + "}, P{" + ptr(ins.b) + "}, " + ONES + ")";
      case TOp::kXorN:
        return "v_bin<" + lanes_words(ins.dw) + ", OpXor>(" + dst(ins) +
               ", P{" + ptr(ins.a) + "}, P{" + ptr(ins.b) + "}, " + ONES + ")";
      case TOp::kNotN:
        return "n_not<" + LN + ", " + DW + ">(" + dst(ins) + ", " +
               ptr(ins.a) + ", " + M + ")";
      case TOp::kShlIN:
        return "n_shli<" + LN + ", " + DW + ">(" + dst(ins) + ", " +
               ptr(ins.a) + ", " + num(ins.param) + ", " + M + ")";
      case TOp::kLshrIN:
        return "n_lshri<" + LN + ", " + DW + ">(" + dst(ins) + ", " +
               ptr(ins.a) + ", " + num(ins.param) + ")";
      case TOp::kAshrIN:
        return "n_ashri<" + LN + ", " + DW + ">(" + dst(ins) + ", " +
               ptr(ins.a) + ", " + num(ins.param) + ", " + num(ins.width) +
               ", " + M + ")";
      case TOp::kShlVN:
        return "n_shv<" + LN + ", " + DW + ", " + AW + ", true>(" + dst(ins) +
               ", " + ptr(ins.a) + ", " + ptr(ins.b) + ", " + num(ins.width) +
               ", " + M + ")";
      case TOp::kLshrVN:
        return "n_shv<" + LN + ", " + DW + ", " + AW + ", false>(" +
               dst(ins) + ", " + ptr(ins.a) + ", " + ptr(ins.b) + ", " +
               num(ins.width) + ", " + M + ")";
      case TOp::kEqN:
        return "n_eq<" + LN + ", " + AW + ", false>(" + dst(ins) + ", " +
               ptr(ins.a) + ", " + ptr(ins.b) + ")";
      case TOp::kNeN:
        return "n_eq<" + LN + ", " + AW + ", true>(" + dst(ins) + ", " +
               ptr(ins.a) + ", " + ptr(ins.b) + ")";
      case TOp::kUltN:
        return "n_ucmp<" + LN + ", " + AW + ", false>(" + dst(ins) + ", " +
               ptr(ins.a) + ", " + ptr(ins.b) + ")";
      case TOp::kUleN:
        return "n_ucmp<" + LN + ", " + AW + ", true>(" + dst(ins) + ", " +
               ptr(ins.a) + ", " + ptr(ins.b) + ")";
      case TOp::kSltN:
        return "n_scmp<" + LN + ", " + AW + ", false>(" + dst(ins) + ", " +
               ptr(ins.a) + ", " + ptr(ins.b) + ", " +
               num((ins.a_width - 1) / 64) + ", " +
               num((ins.a_width - 1) % 64) + ")";
      case TOp::kSleN:
        return "n_scmp<" + LN + ", " + AW + ", true>(" + dst(ins) + ", " +
               ptr(ins.a) + ", " + ptr(ins.b) + ", " +
               num((ins.a_width - 1) / 64) + ", " +
               num((ins.a_width - 1) % 64) + ")";
      case TOp::kMuxN:
        return "n_mux<" + LN + ", " + DW + ">(" + dst(ins) + ", " +
               ptr(ins.a) + ", " + ptr(ins.b) + ", " + ptr(ins.c) + ")";
      case TOp::kSliceN:
        return "n_slice<" + LN + ", " + AW + ", " + DW + ">(" + dst(ins) +
               ", " + ptr(ins.a) + ", " + num(ins.param) + ", " + M + ")";
      case TOp::kSExtN:
        return "n_sext<" + LN + ", " + AW + ", " + DW + ">(" + dst(ins) +
               ", " + ptr(ins.a) + ", " + num(ins.a_width) + ", " +
               num(ins.width) + ", " + M + ")";
      case TOp::kRedOrN:
        return "n_redor<" + LN + ", " + AW + ">(" + dst(ins) + ", " +
               ptr(ins.a) + ")";
      case TOp::kRedAndN:
        return "n_redand<" + LN + ", " + AW + ">(" + dst(ins) + ", " +
               ptr(ins.a) + ", " + hex(top_mask(ins.a_width)) + ")";
      case TOp::kRedXorN:
        return "n_redxor<" + LN + ", " + AW + ">(" + dst(ins) + ", " +
               ptr(ins.a) + ")";
      case TOp::kConcat:
      case TOp::kMemRead:
        return "";
    }
    return "";
  }

  /// Fully unrolled concat: each part's word contributions are emitted as
  /// constant-shift OR statements into a local staging array.
  void emit_concat(std::uint32_t i, const Instr& ins) {
    os << "    { // concat\n      u64 ch = 0;\n";
    os << "      for (int l = 0; l < " << p.lanes << "; ++l) {\n";
    os << "        u64 s[" << unsigned{ins.dw} << "] = {0};\n";
    unsigned pos = 0;
    for (std::uint32_t pi = 0; pi < ins.c; ++pi) {
      const ConcatPart& part = p.parts[ins.param + pi];
      const unsigned wo = pos / 64, bo = pos % 64;
      os << "        { const u64* q = A + " << part.off << " + l * "
         << unsigned{part.words} << ";\n";
      for (unsigned w = 0; w < part.words; ++w) {
        os << "          s[" << (wo + w) << "] |= q[" << w << "]";
        if (bo != 0) os << " << " << bo;
        os << ";\n";
        if (bo != 0 && wo + w + 1 < ins.dw)
          os << "          s[" << (wo + w + 1) << "] |= q[" << w << "] >> "
             << (64 - bo) << ";\n";
      }
      os << "        }\n";
      pos += part.width;
    }
    os << "        ch |= stn(A + " << ins.dst << " + l * "
       << unsigned{ins.dw} << ", s, " << unsigned{ins.dw} << ");\n";
    os << "      }\n";
    const std::string m = marks(i);
    if (m.empty())
      os << "      (void)ch;\n";
    else
      os << "      if (ch) {" << m << " }\n";
    os << "    }\n";
  }

  void emit_memread(std::uint32_t i, const Instr& ins) {
    const Program::Mem& pm = p.mems[ins.param];
    os << "    { // memread m" << ins.param << "\n";
    os << "      const u64* mp = M[" << ins.param << "];\n";
    os << "      u64 ch = 0;\n";
    os << "      for (int l = 0; l < " << p.lanes << "; ++l) {\n";
    os << "        const u64 addr = A[" << ins.a << " + l * "
       << unsigned{ins.aw} << "];\n";
    if (ins.dw == 1) {
      os << "        const u64 nv = addr < " << pm.depth << "u ? mp[(addr * "
         << p.lanes << "u + l) * " << unsigned{pm.words} << "] : 0;\n";
      os << "        ch |= nv ^ A[" << ins.dst << " + l];\n";
      os << "        A[" << ins.dst << " + l] = nv;\n";
    } else {
      os << "        u64 s[" << unsigned{ins.dw} << "];\n";
      os << "        if (addr < " << pm.depth << "u) {\n";
      os << "          const u64* e = mp + (addr * " << p.lanes << "u + l) * "
         << unsigned{pm.words} << ";\n";
      os << "          for (int w = 0; w < " << unsigned{ins.dw}
         << "; ++w) s[w] = e[w];\n";
      os << "        } else {\n";
      os << "          for (int w = 0; w < " << unsigned{ins.dw}
         << "; ++w) s[w] = 0;\n";
      os << "        }\n";
      os << "        ch |= stn(A + " << ins.dst << " + l * "
         << unsigned{ins.dw} << ", s, " << unsigned{ins.dw} << ");\n";
    }
    os << "      }\n";
    const std::string m = marks(i);
    if (m.empty())
      os << "      (void)ch;\n";
    else
      os << "      if (ch) {" << m << " }\n";
    os << "    }\n";
  }

  /// Generated `osss_tape_step`: register/write-port sample + commit with
  /// offsets, word counts and dirty marks baked in.  Mirrors the engine's
  /// C++ fallback loops exactly (those remain the no-JIT path).  Mutable
  /// step state lives in the engine-owned scratch S (sized by
  /// osss_tape_scratch()) so a cached object stays stateless.
  std::uint64_t emit_step() {
    std::uint64_t sat = 0;  // scratch allocation cursor (words)
    const auto alloc = [&sat](std::uint64_t n) {
      const std::uint64_t at = sat;
      sat += n;
      return at;
    };
    const std::string L = num(p.lanes);
    std::vector<std::uint64_t> reg_en_at(p.regs.size(), 0);
    std::vector<std::uint64_t> reg_nd_at(p.regs.size(), 0);
    for (std::size_t r = 0; r < p.regs.size(); ++r) {
      if (p.regs[r].en != kNoSlot) reg_en_at[r] = alloc(p.lanes);
      reg_nd_at[r] = alloc(std::uint64_t{p.regs[r].words} * p.lanes);
    }
    struct WpAt {
      std::uint32_t mem;
      const Program::WritePort* port;
      std::uint16_t words;
      std::uint64_t en_at, addr_at, data_at;
    };
    std::vector<WpAt> wps;
    for (std::uint32_t mi = 0; mi < p.mems.size(); ++mi)
      for (const Program::WritePort& port : p.mems[mi].writes)
        wps.push_back({mi, &port, p.mems[mi].words, alloc(p.lanes),
                       alloc(p.lanes),
                       alloc(std::uint64_t{p.mems[mi].words} * p.lanes)});

    os << "extern \"C\" unsigned osss_tape_step(u64* A, u64* const* M, "
          "unsigned char* D, u64* S) {\n";
    os << "  (void)A; (void)M; (void)D; (void)S;\n";
    os << "  unsigned chg = 0; (void)chg;\n";
    // Pre-edge sample: every register and write port observes the same
    // settled values before any commit overwrites the arena.
    for (std::size_t r = 0; r < p.regs.size(); ++r) {
      const Program::Reg& reg = p.regs[r];
      const std::string wl = num(std::uint64_t{reg.words} * p.lanes);
      if (reg.en != kNoSlot)
        os << "  if (j_snap(S + " << num(reg_en_at[r]) << ", A + "
           << num(reg.en) << ", " << L << ")) j_cpy(S + "
           << num(reg_nd_at[r]) << ", A + " << num(reg.d) << ", " << wl
           << ");\n";
      else
        os << "  j_cpy(S + " << num(reg_nd_at[r]) << ", A + " << num(reg.d)
           << ", " << wl << ");\n";
    }
    for (const WpAt& wp : wps) {
      const std::string wl = num(std::uint64_t{wp.words} * p.lanes);
      os << "  if (j_snap(S + " << num(wp.en_at) << ", A + "
         << num(wp.port->en) << ", " << L << ")) {\n";
      if (wp.port->addr_words == 1)
        os << "    j_cpy(S + " << num(wp.addr_at) << ", A + "
           << num(wp.port->addr) << ", " << L << ");\n";
      else
        os << "    for (int l = 0; l < " << L << "; ++l) S["
           << num(wp.addr_at) << " + l] = A[" << num(wp.port->addr)
           << " + l * " << unsigned{wp.port->addr_words} << "];\n";
      os << "    j_cpy(S + " << num(wp.data_at) << ", A + "
         << num(wp.port->data) << ", " << wl << ");\n";
      os << "  }\n";
    }
    // Commit registers.
    for (std::size_t r = 0; r < p.regs.size(); ++r) {
      const Program::Reg& reg = p.regs[r];
      std::string m;
      for (std::uint32_t k = p.reg_fl_off[r]; k < p.reg_fl_off[r + 1]; ++k)
        m += " D[" + num(p.reg_fl[k]) + "] = 1;";
      os << "  {\n";
      if (reg.en == kNoSlot) {
        os << "    const u64 diff = j_stn(A + " << num(reg.q) << ", S + "
           << num(reg_nd_at[r]) << ", "
           << num(std::uint64_t{reg.words} * p.lanes) << ");\n";
      } else if (reg.words == 1) {
        os << "    const u64 diff = j_merge1(A + " << num(reg.q) << ", S + "
           << num(reg_nd_at[r]) << ", S + " << num(reg_en_at[r]) << ", " << L
           << ");\n";
      } else {
        os << "    u64 diff = 0;\n";
        os << "    for (int l = 0; l < " << L << "; ++l) {\n";
        os << "      if ((S[" << num(reg_en_at[r])
           << " + l] & 1u) == 0) continue;\n";
        os << "      diff |= j_stn(A + " << num(reg.q) << " + l * "
           << unsigned{reg.words} << ", S + " << num(reg_nd_at[r])
           << " + l * " << unsigned{reg.words} << ", " << unsigned{reg.words}
           << ");\n";
        os << "    }\n";
      }
      os << "    if (diff) {" << m << " chg = 1u; }\n";
      os << "  }\n";
    }
    // Commit memory writes (port order = declaration order; later win).
    for (std::size_t wi = 0; wi < wps.size(); ++wi) {
      const WpAt& wp = wps[wi];
      const Program::Mem& pm = p.mems[wp.mem];
      std::string m;
      for (std::uint32_t k = p.mem_fl_off[wp.mem];
           k < p.mem_fl_off[wp.mem + 1]; ++k)
        m += " D[" + num(p.mem_fl[k]) + "] = 1;";
      os << "  {\n";
      os << "    u64 ch = 0;\n";
      os << "    for (int l = 0; l < " << L << "; ++l) {\n";
      os << "      if ((S[" << num(wp.en_at) << " + l] & 1u) == 0) continue;\n";
      os << "      const u64 addr = S[" << num(wp.addr_at) << " + l];\n";
      os << "      if (addr >= " << pm.depth << "u) continue;\n";
      os << "      u64* e = M[" << wp.mem << "] + (addr * " << L
         << "u + l) * " << unsigned{pm.words} << ";\n";
      os << "      const u64* s = S + " << num(wp.data_at) << " + l * "
         << unsigned{pm.words} << ";\n";
      os << "      for (int w = 0; w < " << unsigned{pm.words}
         << "; ++w) if (e[w] != s[w]) { e[w] = s[w]; ch = 1u; }\n";
      os << "    }\n";
      os << "    if (ch) {" << m << " chg = 1u; }\n";
      os << "  }\n";
    }
    os << "  return chg;\n";
    os << "}\n";
    return sat;
  }

  std::string run() {
    os << jit::prelude_header();
    os << "constexpr int L = " << p.lanes << ";\n";
    os << jit::vector_prelude();
    os << jit::step_prelude();
    os << "}  // namespace\n\n";
    std::ostringstream body;
    body.swap(os);  // emit the step entry first to learn the scratch size
    const std::uint64_t scratch = emit_step();
    std::ostringstream step;
    step.swap(os);
    os.swap(body);
    os << "extern \"C\" unsigned osss_tape_abi() { return 2u; }\n";
    os << "extern \"C\" unsigned osss_tape_lanes() { return "
       << p.lanes << "u; }\n";
    os << "extern \"C\" unsigned long long osss_tape_arena() { return "
       << p.arena_size << "ull; }\n";
    os << "extern \"C\" unsigned long long osss_tape_scratch() { return "
       << scratch << "ull; }\n\n";
    os << step.str() << "\n";
    os << "extern \"C\" void osss_tape_eval(u64* A, u64* const* M, "
          "unsigned char* D) {\n";
    os << "  (void)A; (void)M; (void)D;\n";
    const std::size_t levels = p.level_offset.size() - 1;
    for (std::size_t lev = 0; lev < levels; ++lev) {
      os << "  if (D[" << lev << "]) {\n    D[" << lev << "] = 0;\n";
      for (std::uint32_t i = p.level_offset[lev]; i < p.level_offset[lev + 1];
           ++i) {
        const Instr& ins = p.instrs[i];
        if (ins.op == TOp::kConcat) {
          emit_concat(i, ins);
          continue;
        }
        if (ins.op == TOp::kMemRead) {
          emit_memread(i, ins);
          continue;
        }
        const std::string e = expr(ins);
        const std::string m = marks(i);
        if (m.empty())
          os << "    (void)" << e << ";\n";
        else
          os << "    if (" << e << ") {" << m << " }\n";
      }
      os << "  }\n";
    }
    os << "}\n";
    return os.str();
  }
};

}  // namespace

std::string emit_cpp(const Program& p) { return Emitter(p).run(); }

}  // namespace osss::rtl::tape
