// codegen.hpp — native-code backend for the compiled tape.
//
// The interpreted tape engine (rtl/tape.hpp) pays per-instruction dispatch:
// a switch over the opcode stream plus Instr field loads on every executed
// instruction.  This backend removes that tax by *generating code* for one
// specific tape::Program:
//
//   * emit_cpp() lowers the Program into specialized C++ — one straight-line
//     block per instruction with arena offsets, widths, masks and shift
//     amounts baked in as literals, single-word constants from the pool
//     inlined as immediates, and the level-granular activity gating lowered
//     to guarded basic blocks over a shared `dirty` byte array (the same
//     CSR fanout data the interpreted engine uses, here unrolled into
//     constant stores);
//   * NativeEngine writes that source to a private temp directory, compiles
//     it with the host toolchain (`$OSSS_CC`, else `c++`) into a shared
//     object, dlopen()s it and drives the exported
//     `osss_tape_eval(arena, mems, dirty)` entry point;
//   * when no compiler is available at runtime — or compilation, dlopen or
//     the ABI check fails, or OSSS_CC points at garbage — the engine falls
//     back *silently* to threaded-code dispatch: one specialized handler
//     function per opcode, bound per instruction at construction, so the
//     hot loop is an indirect call per instruction instead of a switch.
//     Results are bit-identical to the native path and the interpreter.
//
// Lanes: the backend keeps the tape's lane-major arena layout (lane l of a
// node lives at offset + l*words, lanes contiguous per node) and extends it
// past the interpreted engine's 64-lane cap, up to tape::kMaxLanes.  The
// generated code walks lane groups with explicit AVX2 vectors (4 lanes per
// __m256i op) and AVX-512 where the host compiler and CPU support it
// (8 lanes per __m512i op); the lane-major layout is exactly what makes
// those loads contiguous.  Sequential state (register/memory commit) is
// emitted into the generated `osss_tape_step` entry point — offsets, word
// counts and dirty marks baked in — with the C++ commit loops kept as the
// fallback path.
//
// The compile/dlopen machinery and the content-hash object cache live in
// src/jit (shared with the gate-level backend): engines whose emitted
// source is byte-identical share one loaded object, and the temp dir is
// removed when the last engine using it dies.
//
// rtl::Simulator selects this backend with SimMode::kNative; the
// interpreter remains the oracle (tests/rtl/native_test.cpp runs native vs
// tape vs interpreter differentially over the fuzz corpus and both flows'
// ExpoCU components).

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "jit/jit.hpp"
#include "rtl/tape.hpp"

namespace osss::rtl::tape {

/// Knobs for the runtime compile step (see jit::CompileOptions).  Defaults
/// resolve from the environment: `OSSS_CC` overrides the compiler (an
/// unusable value simply forces the threaded-code fallback), `OSSS_NO_JIT=1`
/// skips the compile attempt entirely.
using CodegenOptions = jit::CompileOptions;

/// Generate the specialized C++ translation unit for `p` — exposed for
/// tests and for inspecting what the backend actually compiles.
std::string emit_cpp(const Program& p);

/// Executes a compiled Program through generated native code (dlopen) or
/// threaded-code dispatch.  Mirrors tape::Engine's interface; the wide-lane
/// entry points generalize it: a "lane word" holds 64 lanes, and an engine
/// with L lanes uses lane_words() == ceil(L/64) words per port bit.
class NativeEngine {
 public:
  NativeEngine(const Module& m, unsigned lanes, CodegenOptions opt = {});
  ~NativeEngine();

  NativeEngine(const NativeEngine&) = delete;
  NativeEngine& operator=(const NativeEngine&) = delete;

  Program& program() noexcept { return prog_; }
  const Program& program() const noexcept { return prog_; }
  unsigned lanes() const noexcept { return prog_.lanes; }
  unsigned lane_words() const noexcept { return lw_; }

  /// True when the dlopen'd generated code is driving eval(); false means
  /// the threaded-code fallback is active (results are identical).
  bool native() const noexcept { return eval_fn_ != nullptr; }
  /// Compiler/dlopen diagnostics of the last compile attempt (empty when
  /// the native path loaded cleanly or was never attempted).
  const std::string& compile_log() const noexcept { return compile_log_; }

  struct RunStats {
    std::uint64_t cycles = 0;
    std::uint64_t nodes_evaluated = 0;   ///< fallback dispatch only
    std::uint64_t levels_evaluated = 0;  ///< fallback dispatch only
    std::uint64_t levels_skipped = 0;    ///< fallback dispatch only
  };
  const RunStats& stats() const noexcept { return stats_; }

  void set_input(unsigned index, const Bits& value);
  void set_input_u64(unsigned index, std::uint64_t value);
  /// Drive all lanes of one input.  bit_lanes holds width * lane_words()
  /// elements; the lane words of input bit i live at
  /// bit_lanes[i*lane_words() .. (i+1)*lane_words()).  For lanes <= 64 this
  /// is exactly the tape::Engine / gate::Simulator layout.
  void set_input_lanes(unsigned index,
                       const std::vector<std::uint64_t>& bit_lanes);
  /// Drive all lanes of one input with one value per lane (values[l] =
  /// lane l, truncated to the port width).  The arena is lane-major, so
  /// this is a straight masked copy — no bit transpose — and the fast
  /// path for per-lane stimulus.  Ports wider than 64 bits throw.
  void set_input_values(unsigned index,
                        const std::vector<std::uint64_t>& values);

  Bits output(unsigned index, unsigned lane = 0);
  std::uint64_t output_u64(unsigned index);
  /// Lane words of an output: width * lane_words() elements, same layout as
  /// set_input_lanes.
  std::vector<std::uint64_t> output_words(unsigned index);
  /// One value per lane of an output (<= 64-bit ports; throws otherwise).
  std::vector<std::uint64_t> output_values(unsigned index);

  Bits node_value(NodeId id, unsigned lane = 0);
  bool node_live(NodeId id) const;

  void eval();
  void step();
  void reset();
  /// Restore the exact post-construction state (power-on values, inputs at
  /// 0) from a snapshot taken at construction; run_batch uses this to
  /// recycle one engine across stimulus blocks.
  void restore_poweron();

  Bits mem_word(unsigned mem_index, unsigned word, unsigned lane = 0);
  void poke_mem(unsigned mem_index, unsigned word, const Bits& value);
  void poke_reg(unsigned reg_index, const Bits& value);

 private:
  struct Exec;  // threaded-code handlers (codegen.cpp)
  using Handler = bool (*)(NativeEngine&, const Instr&);
  using EvalFn = void (*)(std::uint64_t*, std::uint64_t* const*,
                          unsigned char*);
  using StepFn = unsigned (*)(std::uint64_t*, std::uint64_t* const*,
                              unsigned char*, std::uint64_t*);

  Program prog_;
  unsigned lw_ = 1;  ///< lane words: ceil(lanes/64)
  std::vector<std::uint64_t> arena_;
  std::vector<std::uint64_t> poweron_arena_;  ///< ctor-time snapshot
  std::vector<std::uint64_t> scratch_;
  std::vector<unsigned char> level_dirty_;
  bool pending_ = true;
  RunStats stats_;

  std::vector<std::vector<std::uint64_t>> mem_;
  std::vector<std::uint64_t*> mem_ptrs_;  ///< stable, passed to native eval

  // Native path state.  obj_ is a shared handle into the jit object cache;
  // engines built from identical emitted source share one dlopen'd object.
  std::shared_ptr<jit::Object> obj_;
  EvalFn eval_fn_ = nullptr;
  StepFn step_fn_ = nullptr;
  std::vector<std::uint64_t> step_scratch_;  ///< sized by osss_tape_scratch()
  std::string compile_log_;

  // Threaded-code fallback: one bound handler per instruction.
  std::vector<Handler> handlers_;

  // Pre-edge sampling buffers.  Enables are snapshotted one full arena
  // word per lane (bit 0 significant) — a contiguous copy from the
  // lane-major arena — so the commit loops are branchless masked merges
  // the compiler can vectorize, instead of per-lane bit gathers.
  std::vector<std::uint64_t> reg_next_;
  std::vector<std::uint32_t> reg_next_off_;
  std::vector<std::uint64_t> reg_en_;  ///< regs * lanes (always-on regs
                                       ///  prefilled with 1 at build)
  struct Wp {
    std::uint32_t mem = 0;
    Program::WritePort port;
    std::uint32_t addr_at = 0;
    std::uint32_t data_at = 0;
    std::uint16_t words = 1;
  };
  std::vector<Wp> wps_;
  std::vector<std::uint64_t> wp_en_;    ///< ports * lanes
  std::vector<std::uint64_t> wp_addr_;  ///< per port * lane
  std::vector<std::uint64_t> wp_data_;  ///< per port: words * lanes

  void try_native(const CodegenOptions& opt);
  void drop_native();
  void fallback_eval();
  void mark_levels(const std::vector<std::uint32_t>& off,
                   const std::vector<std::uint32_t>& fl, std::uint32_t site);
  void mark_all_dirty();
  void write_lane_bits(std::uint32_t off, std::uint16_t words, unsigned lane,
                       const Bits& value);
  Bits read_lane_bits(std::uint32_t off, std::uint16_t words, unsigned width,
                      unsigned lane) const;
};

}  // namespace osss::rtl::tape
