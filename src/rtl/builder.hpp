// builder.hpp — ergonomic construction API for RTL modules.
//
// This is the design entry of the paper's *conventional* flow: writing RTL
// the way a VHDL designer would (explicit registers, muxes and next-state
// equations), and also the emission target of the OSSS synthesizer and the
// behavioral-synthesis backend.  Wires are width-carrying handles; every
// operation width-checks its operands at construction time, the way a VHDL
// analyzer would.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "rtl/ir.hpp"

namespace osss::rtl {

/// A value handle inside a module under construction.
struct Wire {
  NodeId id = kInvalidNode;
  unsigned width = 0;
  bool valid() const noexcept { return id != kInvalidNode; }
};

/// Handle to a memory under construction.
struct MemHandle {
  unsigned index = 0;
};

class Builder {
public:
  explicit Builder(std::string module_name) : m_(std::move(module_name)) {}

  // --- ports ---------------------------------------------------------------
  Wire input(const std::string& name, unsigned width);
  void output(const std::string& name, Wire w);

  // --- constants -----------------------------------------------------------
  Wire constant(unsigned width, std::uint64_t value);
  Wire constant(const Bits& value);

  // --- combinational operators ----------------------------------------------
  Wire add(Wire a, Wire b);
  Wire sub(Wire a, Wire b);
  Wire mul(Wire a, Wire b);
  Wire and_(Wire a, Wire b);
  Wire or_(Wire a, Wire b);
  Wire xor_(Wire a, Wire b);
  Wire not_(Wire a);
  Wire shli(Wire a, unsigned amount);
  Wire lshri(Wire a, unsigned amount);
  Wire ashri(Wire a, unsigned amount);
  Wire shlv(Wire a, Wire amount);
  Wire lshrv(Wire a, Wire amount);
  Wire eq(Wire a, Wire b);
  Wire ne(Wire a, Wire b);
  Wire ult(Wire a, Wire b);
  Wire ule(Wire a, Wire b);
  Wire slt(Wire a, Wire b);
  Wire sle(Wire a, Wire b);
  Wire mux(Wire sel, Wire then_w, Wire else_w);
  Wire slice(Wire a, unsigned hi, unsigned lo);
  Wire bit(Wire a, unsigned index) { return slice(a, index, index); }
  /// Concatenation; `parts.front()` becomes the MOST significant chunk.
  Wire concat(const std::vector<Wire>& parts);
  Wire zext(Wire a, unsigned width);
  Wire sext(Wire a, unsigned width);
  Wire trunc(Wire a, unsigned width) { return slice(a, width - 1, 0); }
  Wire red_or(Wire a);
  Wire red_and(Wire a);
  Wire red_xor(Wire a);

  // --- state ----------------------------------------------------------------
  /// Declare a register; returns its Q output.  The D input must be
  /// connected before take() via connect().
  Wire reg(const std::string& name, unsigned width, Bits init);
  Wire reg(const std::string& name, unsigned width, std::uint64_t init = 0) {
    return reg(name, width, Bits(width, init));
  }
  /// Connect a register's next-value input.
  void connect(Wire q, Wire d);
  /// Attach a clock-enable to a register.
  void enable(Wire q, Wire en);

  // --- memories ----------------------------------------------------------
  MemHandle memory(const std::string& name, unsigned depth,
                   unsigned data_width);
  Wire mem_read(MemHandle m, Wire addr);
  void mem_write(MemHandle m, Wire addr, Wire data, Wire en);
  unsigned mem_addr_width(MemHandle m) const {
    return m_.mems_[m.index].addr_width;
  }

  /// Attach a debug name to a net.
  void name(Wire w, const std::string& n) { m_.nodes_[w.id].name = n; }

  /// Finalize: validates and returns the module.  The builder is spent.
  Module take();

  const Module& peek() const noexcept { return m_; }

private:
  Module m_;
  bool taken_ = false;

  Wire make(Op op, unsigned width, std::vector<NodeId> ins, unsigned param = 0);
  void check_same(Wire a, Wire b, const char* what) const;
  void check_valid(Wire w, const char* what) const;
};

/// Address width needed to index `depth` entries.
unsigned addr_width_for(unsigned depth);

}  // namespace osss::rtl
