// tape_detail.hpp — word-span primitives shared by the interpreted tape
// executor (tape.cpp) and the native backend's threaded-code fallback
// (codegen.cpp).  All functions mirror Bits semantics exactly; the tape and
// native engines are differentially tested against the interpreter, so any
// drift here is caught by tests/rtl/{tape,native}_test.cpp.

#pragma once

#include <algorithm>
#include <cstdint>

#include "sysc/bits.hpp"

namespace osss::rtl::tape::detail {

inline unsigned words_of(unsigned width) { return (width + 63) / 64; }

/// Mask covering the top storage word of a `width`-bit value.
inline std::uint64_t top_mask(unsigned width) {
  const unsigned rem = width % 64;
  return rem == 0 ? ~0ull : ((std::uint64_t{1} << rem) - 1);
}

/// Mask covering all of a `width <= 64` bit value.
inline std::uint64_t mask64(unsigned width) {
  return width >= 64 ? ~0ull : ((std::uint64_t{1} << width) - 1);
}

inline bool store1(std::uint64_t* d, std::uint64_t nv) {
  const bool changed = *d != nv;
  *d = nv;
  return changed;
}

inline bool storeN(std::uint64_t* d, const std::uint64_t* s, unsigned words) {
  std::uint64_t diff = 0;
  for (unsigned w = 0; w < words; ++w) {
    diff |= d[w] ^ s[w];
    d[w] = s[w];
  }
  return diff != 0;
}

/// s = a << amt over n words (amt < n*64; caller handles >= width).
inline void span_shl(std::uint64_t* s, const std::uint64_t* a, unsigned n,
                     unsigned amt) {
  const unsigned ws = amt / 64, bs = amt % 64;
  for (unsigned w = n; w-- > 0;) {
    std::uint64_t v = 0;
    if (w >= ws) {
      v = a[w - ws] << bs;
      if (bs != 0 && w > ws) v |= a[w - ws - 1] >> (64 - bs);
    }
    s[w] = v;
  }
}

/// s = a >> amt over n words (amt < n*64).
inline void span_lshr(std::uint64_t* s, const std::uint64_t* a, unsigned n,
                      unsigned amt) {
  const unsigned ws = amt / 64, bs = amt % 64;
  for (unsigned w = 0; w < n; ++w) {
    std::uint64_t v = 0;
    if (w + ws < n) {
      v = a[w + ws] >> bs;
      if (bs != 0 && w + ws + 1 < n) v |= a[w + ws + 1] << (64 - bs);
    }
    s[w] = v;
  }
}

/// Set bits [from, to) of a word span (from < to).
inline void span_fill(std::uint64_t* s, unsigned from, unsigned to) {
  for (unsigned w = from / 64; w <= (to - 1) / 64; ++w) {
    const unsigned lo = w * 64;
    std::uint64_t m = ~0ull;
    if (from > lo) m &= ~0ull << (from - lo);
    if (to < lo + 64) m &= ~0ull >> (lo + 64 - to);
    s[w] |= m;
  }
}

inline Bits bits_from_words(const std::uint64_t* s, unsigned width) {
  Bits out(width);
  for (unsigned w = 0; w < words_of(width); ++w) {
    const unsigned lo = w * 64;
    out.set_range(lo, Bits(std::min(64u, width - lo), s[w]));
  }
  return out;
}

}  // namespace osss::rtl::tape::detail
