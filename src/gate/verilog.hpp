// verilog.hpp — structural Verilog netlist writer.
//
// The paper's flow ends in "Verilog/VHDL netlist *.v, *.vhd" handed to
// map and place&route (Fig. 6).  This writer emits the mapped netlist as
// structural Verilog-2001 over a small behavioural cell library (also
// emitted, so the file is self-contained and simulates under any Verilog
// simulator).  Memories become behavioural register arrays, as a macro
// wrapper would.

#pragma once

#include <string>

#include "gate/netlist.hpp"

namespace osss::gate {

/// Emit `nl` as a self-contained structural Verilog module (plus the cell
/// library definitions it instantiates).
std::string write_verilog(const Netlist& nl);

}  // namespace osss::gate
