// lower.hpp — technology mapping: RTL IR -> gate netlist.
//
// Word-level RTL operators are decomposed into 2-input gates the way a
// 2004-era synthesis tool's generic mapping would: ripple-carry adders,
// array multipliers, barrel shifters, mux trees and reduction trees.  The
// optimizing netlist factories (constant folding + structural hashing) then
// shrink the result.  Registers become DFFs (enables become feedback muxes);
// RTL memories become macro blocks.

#pragma once

#include "gate/netlist.hpp"
#include "rtl/ir.hpp"

namespace osss::gate {

/// Lower an RTL module to a mapped gate netlist.  The result is swept
/// (dead logic removed) and validated.
Netlist lower_to_gates(const rtl::Module& m);

}  // namespace osss::gate
