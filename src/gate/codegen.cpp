// codegen.cpp — gate-level NativeEngine: topology build, native dispatch,
// and the interpreted LW-word fallback sweep.
//
// Semantics contract: every observable value must be bit-identical to
// gate::Simulator (kEvent / kBitParallel) lane for lane.  The topology
// construction below intentionally mirrors the Simulator constructor —
// same level schedule, same fanout-level marking, same write-port
// flattening — generalized from one 64-lane word per net to lw_ words.

#include "gate/codegen.hpp"

#include <algorithm>
#include <stdexcept>

namespace osss::gate {

NativeEngine::NativeEngine(const Netlist& nl, unsigned lanes,
                           CodegenOptions opt)
    : nl_(&nl) {
  if (lanes == 0) lanes = 64;
  if (lanes != 1 && (lanes % 64 != 0 || lanes > kMaxLanes))
    throw std::invalid_argument(
        "gate::NativeEngine: lanes must be 1 or a multiple of 64 up to " +
        std::to_string(kMaxLanes));
  lanes_ = lanes;
  lw_ = lanes == 1 ? 1 : lanes / 64;
  tail_mask_ = lanes == 1 ? std::uint64_t{1} : ~std::uint64_t{0};

  nl.validate();
  const std::size_t n = nl.cells().size();
  values_.assign(n * lw_, 0);
  for (unsigned w = 0; w < lw_; ++w)
    values_[std::size_t{nl.const1()} * lw_ + w] = tail_mask_;

  // Sequential elements and memory read cells (same scan as the Simulator).
  memq_cells_.resize(nl.memories().size());
  for (NetId id = 0; id < n; ++id) {
    const Cell& c = nl.cells()[id];
    if (c.kind == CellKind::kDff) dffs_.push_back({id, c.ins[0], c.init});
    if (c.kind == CellKind::kMemQ) memq_cells_[c.param].push_back(id);
  }
  dff_next_.assign(dffs_.size() * lw_, 0);

  // Level schedule plus the distinct fanout levels of every net.  The
  // fanout CSR is only needed to derive flevels_, so it stays local.
  level_of_ = nl.topo_levels();
  std::uint32_t num_levels = 0;
  for (const std::uint32_t l : level_of_)
    if (l != kNoLevel) num_levels = std::max(num_levels, l + 1);
  level_offset_.assign(num_levels + 1, 0);
  for (const std::uint32_t l : level_of_)
    if (l != kNoLevel) ++level_offset_[l + 1];
  for (std::size_t i = 1; i <= num_levels; ++i)
    level_offset_[i] += level_offset_[i - 1];
  level_cells_.resize(level_offset_[num_levels]);
  {
    std::vector<std::uint32_t> cursor(level_offset_.begin(),
                                      level_offset_.end() - 1);
    for (NetId id = 0; id < n; ++id)
      if (level_of_[id] != kNoLevel) level_cells_[cursor[level_of_[id]]++] = id;
  }
  level_dirty_.assign(num_levels, 0);
  {
    std::vector<std::vector<std::uint32_t>> users(n);
    for (NetId id = 0; id < n; ++id) {
      const Cell& c = nl.cells()[id];
      if (c.kind == CellKind::kDff) continue;
      for (const NetId in : c.ins) users[in].push_back(level_of_[id]);
    }
    flevel_offset_.assign(n + 1, 0);
    for (NetId id = 0; id < n; ++id) {
      std::vector<std::uint32_t>& u = users[id];
      std::sort(u.begin(), u.end());
      u.erase(std::unique(u.begin(), u.end()), u.end());
      for (const std::uint32_t l : u) flevels_.push_back(l);
      flevel_offset_[id + 1] = static_cast<std::uint32_t>(flevels_.size());
    }
  }

  // Memory state (one lane word per data bit per lane group) and the
  // flattened write-port sampling plan.
  for (const MemMacro& m : nl.memories())
    mem_.emplace_back(
        static_cast<std::size_t>(m.depth) * m.width * lw_, 0);
  for (auto& m : mem_) mem_ptrs_.push_back(m.data());
  for (std::uint32_t mi = 0; mi < nl.memories().size(); ++mi) {
    const MemMacro& m = nl.memories()[mi];
    for (const auto& w : m.writes) {
      WritePortRef ref;
      ref.mem = mi;
      ref.base = static_cast<std::uint32_t>(wp_nets_.size());
      ref.addr_n = static_cast<std::uint32_t>(w.addr.size());
      ref.width = m.width;
      wp_nets_.push_back(w.enable);
      wp_nets_.insert(wp_nets_.end(), w.addr.begin(), w.addr.end());
      wp_nets_.insert(wp_nets_.end(), w.data.begin(), w.data.end());
      wports_.push_back(ref);
    }
  }
  wp_samp_.assign(wp_nets_.size() * lw_, 0);

  if (jit::jit_disabled_by_env()) opt.force_fallback = true;
  try_native(opt);
  reset();
  // Power-on snapshot: inputs are still 0 here and reset() settled the
  // arena, so restore_poweron() can recycle this engine with one copy.
  poweron_values_ = values_;
}

NativeEngine::~NativeEngine() = default;

void NativeEngine::drop_native() {
  eval_fn_ = nullptr;
  step_fn_ = nullptr;
  obj_.reset();
}

namespace {
/// ABI probe shared between the post-compile check and the persistent
/// disk cache's load-time validation: a stale or truncated published
/// artifact must fail here and fall back to a fresh compile, never reach
/// the engine.
bool probe_gate_abi(const jit::Object& obj, unsigned lanes,
                    std::size_t nets_expected) {
  const auto abi = reinterpret_cast<unsigned (*)()>(obj.sym("osss_gate_abi"));
  const auto lns =
      reinterpret_cast<unsigned (*)()>(obj.sym("osss_gate_lanes"));
  const auto nets = reinterpret_cast<unsigned long long (*)()>(
      obj.sym("osss_gate_nets"));
  const auto ssz = reinterpret_cast<unsigned long long (*)()>(
      obj.sym("osss_gate_scratch"));
  return abi != nullptr && abi() == 1u && lns != nullptr && lns() == lanes &&
         nets != nullptr && nets() == nets_expected && ssz != nullptr &&
         obj.sym("osss_gate_eval") != nullptr &&
         obj.sym("osss_gate_step") != nullptr;
}
}  // namespace

void NativeEngine::try_native(const CodegenOptions& opt) {
  const std::string src = emit_netlist_cpp(*nl_, lanes_);
  CodegenOptions vopt = opt;
  vopt.validate = [this](const jit::Object& o) {
    return probe_gate_abi(o, lanes_, nl_->cells().size());
  };
  obj_ = jit::compile(src, vopt, "osss-gate", compile_log_);
  if (obj_ == nullptr) return;
  if (!probe_gate_abi(*obj_, lanes_, nl_->cells().size())) {
    compile_log_ += "\n[ABI check failed; using interpreted dispatch]";
    drop_native();
    return;
  }
  const auto ssz = reinterpret_cast<unsigned long long (*)()>(
      obj_->sym("osss_gate_scratch"));
  eval_fn_ = reinterpret_cast<EvalFn>(obj_->sym("osss_gate_eval"));
  step_fn_ = reinterpret_cast<StepFn>(obj_->sym("osss_gate_step"));
  step_scratch_.assign(ssz(), 0);
}

void NativeEngine::mark_net(NetId id) {
  for (std::uint32_t k = flevel_offset_[id]; k < flevel_offset_[id + 1]; ++k)
    level_dirty_[flevels_[k]] = 1;
}

void NativeEngine::eval() {
  if (eval_fn_ != nullptr) {
    eval_fn_(values_.data(), mem_ptrs_.data(), level_dirty_.data());
    return;
  }
  fallback_eval();
}

std::uint64_t NativeEngine::addr_at_lane(const NetId* addr_nets,
                                         std::uint32_t n,
                                         unsigned lane) const {
  std::uint64_t a = 0;
  for (std::uint32_t i = n; i-- > 0;)
    a = (a << 1) |
        ((values_[std::size_t{addr_nets[i]} * lw_ + lane / 64] >>
          (lane % 64)) &
         1u);
  return a;
}

std::uint64_t NativeEngine::addr_sample_lane(std::uint32_t base,
                                             std::uint32_t n,
                                             unsigned lane) const {
  std::uint64_t a = 0;
  for (std::uint32_t i = n; i-- > 0;)
    a = (a << 1) |
        ((wp_samp_[std::size_t{base + i} * lw_ + lane / 64] >> (lane % 64)) &
         1u);
  return a;
}

void NativeEngine::eval_memq(NetId id, std::uint64_t* out) const {
  const Cell& c = nl_->cells()[id];
  const MemMacro& m = nl_->memories()[c.param];
  const std::vector<std::uint64_t>& mem = mem_[c.param];
  for (unsigned w = 0; w < lw_; ++w) out[w] = 0;
  for (unsigned lane = 0; lane < lanes_; ++lane) {
    const std::uint64_t a = addr_at_lane(
        c.ins.data(), static_cast<std::uint32_t>(c.ins.size()), lane);
    if (a >= m.depth) continue;
    const std::uint64_t bit =
        (mem[(a * m.width + c.param2) * lw_ + lane / 64] >> (lane % 64)) & 1u;
    out[lane / 64] |= bit << (lane % 64);
  }
}

std::uint64_t NativeEngine::eval_cell_word(const Cell& c, NetId id,
                                           unsigned w) const {
  const auto v = [&](std::size_t i) {
    return values_[std::size_t{c.ins[i]} * lw_ + w];
  };
  switch (c.kind) {
    case CellKind::kConst0: return 0;
    case CellKind::kConst1: return tail_mask_;
    case CellKind::kInput:
    case CellKind::kDff: return values_[std::size_t{id} * lw_ + w];
    case CellKind::kBuf: return v(0);
    case CellKind::kInv: return ~v(0) & tail_mask_;
    case CellKind::kAnd2: return v(0) & v(1);
    case CellKind::kOr2: return v(0) | v(1);
    case CellKind::kNand2: return ~(v(0) & v(1)) & tail_mask_;
    case CellKind::kNor2: return ~(v(0) | v(1)) & tail_mask_;
    case CellKind::kXor2: return v(0) ^ v(1);
    case CellKind::kXnor2: return ~(v(0) ^ v(1)) & tail_mask_;
    case CellKind::kMux2: return (v(0) & v(1)) | (~v(0) & v(2));
    case CellKind::kMemQ: return 0;  // handled by eval_memq()
  }
  return 0;
}

void NativeEngine::fallback_eval() {
  std::uint64_t nv[kMaxLanes / 64];
  for (std::uint32_t lvl = 0; lvl < level_dirty_.size(); ++lvl) {
    if (!level_dirty_[lvl]) {
      ++stats_.levels_skipped;
      continue;
    }
    level_dirty_[lvl] = 0;
    ++stats_.levels_evaluated;
    for (std::uint32_t i = level_offset_[lvl]; i < level_offset_[lvl + 1];
         ++i) {
      const NetId id = level_cells_[i];
      ++stats_.gate_evals;
      const Cell& c = nl_->cells()[id];
      if (c.kind == CellKind::kMemQ)
        eval_memq(id, nv);
      else
        for (unsigned w = 0; w < lw_; ++w) nv[w] = eval_cell_word(c, id, w);
      std::uint64_t* d = &values_[std::size_t{id} * lw_];
      std::uint64_t diff = 0;
      for (unsigned w = 0; w < lw_; ++w) diff |= nv[w] ^ d[w];
      if (diff) {
        for (unsigned w = 0; w < lw_; ++w) d[w] = nv[w];
        mark_net(id);
      }
    }
  }
}

void NativeEngine::fallback_step() {
  // Pre-edge sample of every DFF D pin and write-port net, then commit —
  // same order as Simulator::step() so mixed-port memories match exactly.
  for (std::size_t i = 0; i < dffs_.size(); ++i) {
    const std::uint64_t* d = &values_[std::size_t{dffs_[i].d} * lw_];
    for (unsigned w = 0; w < lw_; ++w) dff_next_[i * lw_ + w] = d[w];
  }
  for (std::size_t s = 0; s < wp_nets_.size(); ++s) {
    const std::uint64_t* v = &values_[std::size_t{wp_nets_[s]} * lw_];
    for (unsigned w = 0; w < lw_; ++w) wp_samp_[s * lw_ + w] = v[w];
  }
  for (std::size_t i = 0; i < dffs_.size(); ++i) {
    const NetId q = dffs_[i].q;
    std::uint64_t* qv = &values_[std::size_t{q} * lw_];
    const std::uint64_t* nd = &dff_next_[i * lw_];
    std::uint64_t diff = 0;
    for (unsigned w = 0; w < lw_; ++w) {
      diff |= qv[w] ^ nd[w];
      qv[w] = nd[w];
    }
    if (diff) mark_net(q);
  }
  for (const WritePortRef& wp : wports_) {
    const MemMacro& m = nl_->memories()[wp.mem];
    std::vector<std::uint64_t>& mem = mem_[wp.mem];
    bool changed = false;
    for (unsigned lane = 0; lane < lanes_; ++lane) {
      if (((wp_samp_[std::size_t{wp.base} * lw_ + lane / 64] >> (lane % 64)) &
           1u) == 0)
        continue;
      const std::uint64_t a = addr_sample_lane(wp.base + 1, wp.addr_n, lane);
      if (a >= m.depth) continue;
      const std::uint64_t bm = std::uint64_t{1} << (lane % 64);
      for (std::uint32_t b = 0; b < wp.width; ++b) {
        std::uint64_t& word = mem[(a * wp.width + b) * lw_ + lane / 64];
        const std::uint64_t db =
            (wp_samp_[std::size_t{wp.base + 1 + wp.addr_n + b} * lw_ +
                      lane / 64] >>
             (lane % 64)) &
            1u;
        const std::uint64_t nw = (word & ~bm) | (db << (lane % 64));
        if (nw != word) {
          word = nw;
          changed = true;
        }
      }
    }
    if (changed)
      for (const NetId q : memq_cells_[wp.mem])
        level_dirty_[level_of_[q]] = 1;
  }
  fallback_eval();
}

void NativeEngine::step() {
  if (step_fn_ != nullptr)
    (void)step_fn_(values_.data(), mem_ptrs_.data(), level_dirty_.data(),
                   step_scratch_.data());
  else
    fallback_step();
  ++stats_.cycles;
}

void NativeEngine::reset() {
  for (const DffBind& d : dffs_) {
    std::uint64_t* q = &values_[std::size_t{d.q} * lw_];
    for (unsigned w = 0; w < lw_; ++w) q[w] = d.init ? tail_mask_ : 0;
  }
  for (auto& mem : mem_) std::fill(mem.begin(), mem.end(), 0);
  std::fill(level_dirty_.begin(), level_dirty_.end(), 1);
  eval();
}

void NativeEngine::restore_poweron() {
  values_ = poweron_values_;
  for (auto& mem : mem_) std::fill(mem.begin(), mem.end(), 0);
  // The snapshot was taken settled, so the schedule is clean.
  std::fill(level_dirty_.begin(), level_dirty_.end(), 0);
}

const Bus& NativeEngine::find_bus(const std::vector<Bus>& buses,
                                  const std::string& name) const {
  for (const Bus& b : buses)
    if (b.name == name) return b;
  throw std::logic_error("gate::NativeEngine: no bus " + name);
}

void NativeEngine::set_input(const std::string& bus, const Bits& value) {
  const Bus& b = find_bus(nl_->inputs(), bus);
  if (value.width() != b.nets.size())
    throw std::logic_error("gate::NativeEngine: input width mismatch on " +
                           bus);
  for (std::size_t i = 0; i < b.nets.size(); ++i) {
    const std::uint64_t nv =
        value.bit(static_cast<unsigned>(i)) ? tail_mask_ : 0;  // broadcast
    std::uint64_t* d = &values_[std::size_t{b.nets[i]} * lw_];
    std::uint64_t diff = 0;
    for (unsigned w = 0; w < lw_; ++w) diff |= d[w] ^ nv;
    if (diff) {
      for (unsigned w = 0; w < lw_; ++w) d[w] = nv;
      mark_net(b.nets[i]);
    }
  }
  eval();
}

void NativeEngine::set_input(const std::string& bus, std::uint64_t value) {
  const Bus& b = find_bus(nl_->inputs(), bus);
  const std::size_t n = b.nets.size();
  if (n < 64 && (value >> n) != 0)
    throw std::logic_error("gate::NativeEngine: value does not fit " +
                           std::to_string(n) + "-bit input bus " + bus);
  set_input(bus, Bits(static_cast<unsigned>(n), value));
}

void NativeEngine::set_input_lanes(const std::string& bus,
                                   std::span<const std::uint64_t> bit_lanes) {
  const Bus& b = find_bus(nl_->inputs(), bus);
  if (bit_lanes.size() != b.nets.size() * std::size_t{lw_})
    throw std::logic_error("gate::NativeEngine: input width mismatch on " +
                           bus);
  for (std::size_t i = 0; i < b.nets.size(); ++i) {
    std::uint64_t* d = &values_[std::size_t{b.nets[i]} * lw_];
    const std::uint64_t* s = bit_lanes.data() + i * lw_;
    std::uint64_t diff = 0;
    for (unsigned w = 0; w < lw_; ++w) diff |= d[w] ^ (s[w] & tail_mask_);
    if (diff) {
      for (unsigned w = 0; w < lw_; ++w) d[w] = s[w] & tail_mask_;
      mark_net(b.nets[i]);
    }
  }
  eval();
}

void NativeEngine::set_input_values(const std::string& bus,
                                    std::span<const std::uint64_t> values) {
  const Bus& b = find_bus(nl_->inputs(), bus);
  if (b.nets.size() > 64)
    throw std::logic_error(
        "gate::NativeEngine: set_input_values requires a <= 64-bit bus");
  if (values.size() != lanes_)
    throw std::logic_error(
        "gate::NativeEngine: set_input_values needs one value per lane");
  std::uint64_t nv[kMaxLanes / 64];
  for (std::size_t i = 0; i < b.nets.size(); ++i) {
    for (unsigned w = 0; w < lw_; ++w) nv[w] = 0;
    for (unsigned l = 0; l < lanes_; ++l)
      nv[l / 64] |= ((values[l] >> i) & 1u) << (l % 64);
    std::uint64_t* d = &values_[std::size_t{b.nets[i]} * lw_];
    std::uint64_t diff = 0;
    for (unsigned w = 0; w < lw_; ++w) diff |= d[w] ^ nv[w];
    if (diff) {
      for (unsigned w = 0; w < lw_; ++w) d[w] = nv[w];
      mark_net(b.nets[i]);
    }
  }
  eval();
}

Bits NativeEngine::output(const std::string& bus) const {
  return output_lane(bus, 0);
}

Bits NativeEngine::output_lane(const std::string& bus, unsigned lane) const {
  if (lane >= lanes_)
    throw std::logic_error("gate::NativeEngine: lane out of range");
  const Bus& b = find_bus(nl_->outputs(), bus);
  Bits out(static_cast<unsigned>(b.nets.size()));
  for (std::size_t i = 0; i < b.nets.size(); ++i)
    out.set_bit(static_cast<unsigned>(i),
                ((values_[std::size_t{b.nets[i]} * lw_ + lane / 64] >>
                  (lane % 64)) &
                 1u) != 0);
  return out;
}

std::vector<std::uint64_t> NativeEngine::output_words(
    const std::string& bus) const {
  const Bus& b = find_bus(nl_->outputs(), bus);
  std::vector<std::uint64_t> out(b.nets.size() * lw_);
  for (std::size_t i = 0; i < b.nets.size(); ++i)
    for (unsigned w = 0; w < lw_; ++w)
      out[i * lw_ + w] = values_[std::size_t{b.nets[i]} * lw_ + w];
  return out;
}

std::vector<std::uint64_t> NativeEngine::output_values(
    const std::string& bus) const {
  const Bus& b = find_bus(nl_->outputs(), bus);
  if (b.nets.size() > 64)
    throw std::logic_error(
        "gate::NativeEngine: output_values requires a <= 64-bit bus");
  std::vector<std::uint64_t> out(lanes_, 0);
  for (std::size_t i = 0; i < b.nets.size(); ++i) {
    const std::uint64_t* v = &values_[std::size_t{b.nets[i]} * lw_];
    for (unsigned l = 0; l < lanes_; ++l)
      out[l] |= ((v[l / 64] >> (l % 64)) & 1u) << i;
  }
  return out;
}

std::uint64_t NativeEngine::net_word(NetId id, unsigned word) const {
  return values_[std::size_t{id} * lw_ + word];
}

Bits NativeEngine::mem_word(unsigned mem, unsigned word,
                            unsigned lane) const {
  const MemMacro& m = nl_->memories().at(mem);
  if (word >= m.depth)
    throw std::out_of_range("gate::NativeEngine: memory word out of range");
  if (lane >= lanes_)
    throw std::logic_error("gate::NativeEngine: lane out of range");
  Bits out(m.width);
  for (unsigned b = 0; b < m.width; ++b)
    out.set_bit(
        b, ((mem_[mem][(std::size_t{word} * m.width + b) * lw_ + lane / 64] >>
             (lane % 64)) &
            1u) != 0);
  return out;
}

void NativeEngine::poke_mem(unsigned mem, unsigned word, const Bits& value) {
  const MemMacro& m = nl_->memories().at(mem);
  if (word >= m.depth)
    throw std::out_of_range("gate::NativeEngine: memory word out of range");
  if (m.width != value.width())
    throw std::logic_error("gate::NativeEngine: poke_mem width mismatch");
  for (unsigned b = 0; b < m.width; ++b) {
    const std::uint64_t nv = value.bit(b) ? tail_mask_ : 0;
    for (unsigned w = 0; w < lw_; ++w)
      mem_[mem][(std::size_t{word} * m.width + b) * lw_ + w] = nv;
  }
  for (const NetId q : memq_cells_.at(mem)) level_dirty_[level_of_[q]] = 1;
  eval();
}

}  // namespace osss::gate
