// netlist.hpp — technology-mapped gate-level netlist.
//
// The final artefact of both design flows in the paper is "an netlist" of
// gates produced by synthesis (its Fig. 6).  This netlist is bit-level:
// every cell drives exactly one net, so a cell index doubles as its output
// net id.  Construction is *optimizing*: the factory functions constant-fold,
// simplify trivial identities and structurally hash (strash), so logically
// identical subcircuits share gates — this is what makes the paper's
// "class/template resolution adds no logic" claim measurable (experiment R4:
// identical RTL in class-resolved and hand-written form maps to the same
// gate count).
//
// Memories are kept as macro blocks (SRAM-macro style) rather than exploded
// into flip-flops, matching how a 2004 ASIC flow would treat the ExpoCU's
// histogram RAM.

#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "sysc/bits.hpp"

namespace osss::gate {

using sysc::Bits;

using NetId = std::uint32_t;
constexpr NetId kInvalidNet = static_cast<NetId>(-1);

/// Level assigned to non-combinational cells by Netlist::topo_levels().
constexpr std::uint32_t kNoLevel = static_cast<std::uint32_t>(-1);

enum class CellKind : std::uint8_t {
  kConst0,
  kConst1,
  kInput,  ///< primary input bit
  kBuf,
  kInv,
  kAnd2,
  kOr2,
  kNand2,
  kNor2,
  kXor2,
  kXnor2,
  kMux2,  ///< ins = {sel, then, else}
  kDff,   ///< ins = {d}; `init` is the reset value
  kMemQ,  ///< macro-memory read data bit; ins = address nets; param/param2
};

const char* cell_kind_name(CellKind k);

struct Cell {
  CellKind kind = CellKind::kConst0;
  std::vector<NetId> ins;
  bool init = false;       ///< kDff reset value
  std::uint32_t param = 0;   ///< kMemQ: memory index
  std::uint32_t param2 = 0;  ///< kMemQ: data bit index
  std::string name;          ///< debug name (inputs, dffs)
};

/// A macro memory block: asynchronous read ports, synchronous write ports.
struct MemMacro {
  std::string name;
  unsigned depth = 0;
  unsigned width = 0;
  struct WritePort {
    std::vector<NetId> addr;
    std::vector<NetId> data;
    NetId enable = kInvalidNet;
  };
  std::vector<WritePort> writes;
};

/// A named bus of nets (ports are grouped bit vectors, LSB first).
struct Bus {
  std::string name;
  std::vector<NetId> nets;
};

class Netlist {
public:
  explicit Netlist(std::string name) : name_(std::move(name)) {
    // Net 0 / net 1 are the constants, always present.
    cells_.push_back(Cell{CellKind::kConst0, {}, false, 0, 0, ""});
    cells_.push_back(Cell{CellKind::kConst1, {}, false, 0, 0, ""});
  }

  const std::string& name() const noexcept { return name_; }
  const std::vector<Cell>& cells() const noexcept { return cells_; }
  const Cell& cell(NetId id) const { return cells_.at(id); }
  const std::vector<MemMacro>& memories() const noexcept { return mems_; }
  const std::vector<Bus>& inputs() const noexcept { return inputs_; }
  const std::vector<Bus>& outputs() const noexcept { return outputs_; }

  // --- construction --------------------------------------------------------
  NetId const0() const noexcept { return 0; }
  NetId const1() const noexcept { return 1; }
  NetId constant(bool v) const noexcept { return v ? 1 : 0; }

  /// Declare a `width`-bit input bus; returns its nets (LSB first).
  std::vector<NetId> add_input(const std::string& name, unsigned width);
  /// Declare an output bus driving the given nets (LSB first).
  void add_output(const std::string& name, std::vector<NetId> nets);

  // Optimizing gate factories (fold constants, simplify, strash).
  NetId buf(NetId a) { return a; }  ///< buffers vanish structurally
  NetId inv(NetId a);
  NetId and2(NetId a, NetId b);
  NetId or2(NetId a, NetId b);
  NetId nand2(NetId a, NetId b) { return inv(and2(a, b)); }
  NetId nor2(NetId a, NetId b) { return inv(or2(a, b)); }
  NetId xor2(NetId a, NetId b);
  NetId xnor2(NetId a, NetId b) { return inv(xor2(a, b)); }
  NetId mux2(NetId sel, NetId t, NetId e);

  NetId dff(const std::string& name, bool init = false);
  /// Connect a flip-flop's D input (must be called exactly once per DFF).
  void connect_dff(NetId q, NetId d);

  unsigned add_memory(const std::string& name, unsigned depth, unsigned width);
  /// Create an asynchronous read port; returns `width` data nets.
  std::vector<NetId> mem_read(unsigned mem, const std::vector<NetId>& addr);
  void mem_write(unsigned mem, std::vector<NetId> addr, std::vector<NetId> data,
                 NetId enable);

  // --- optimizer interface ---------------------------------------------------
  // The src/opt pass pipeline edits netlists through these three primitives.
  // They bypass the simplifying factories on purpose: the technology mapper
  // must be able to place kNand2/kNor2/kXnor2 cells the factories decompose,
  // and pass rebuilds re-emit kMemQ bits one at a time.

  /// Emit a combinational gate of exactly `kind` (kBuf..kMux2), deduplicated
  /// via structural hashing but with NO constant folding or simplification.
  /// Throws std::logic_error on non-logic kinds or arity mismatch.
  NetId raw_gate(CellKind kind, std::vector<NetId> ins);

  /// One read-data bit of a macro memory (bit index `bit` of a `width`-wide
  /// read port at `addr`); the pass rebuild uses it to re-emit kMemQ cells.
  NetId mem_read_bit(unsigned mem, std::vector<NetId> addr, unsigned bit);

  /// Redirect every reader of `from` — cell inputs, DFF D pins, memory
  /// write ports and outputs — to `to`.  `from` itself is left in place
  /// (sweep() removes it once dead).  Invalidates structural hashing.
  void replace_net(NetId from, NetId to);

  /// Replace an input bus with internal nets (used when stitching IP at
  /// netlist level: the wrapper's placeholder input is rebound to the IP's
  /// outputs).  Every user of the old input bits is rewired; the bus is
  /// removed from the port list.
  void rebind_input(const std::string& name, const std::vector<NetId>& nets);

  /// Instantiate another netlist inside this one (VHDL-IP integration at
  /// netlist level, paper Fig. 6).  `bindings` maps the IP's input bus names
  /// to nets of this netlist; returns the IP's output buses mapped into this
  /// netlist.
  std::map<std::string, std::vector<NetId>> instantiate(
      const Netlist& ip, const std::string& instance_name,
      const std::map<std::string, std::vector<NetId>>& bindings);

  // --- queries ---------------------------------------------------------------
  /// Cells that actually exist in silicon, by kind, counting only logic
  /// reachable from outputs / state (after sweep()).
  std::map<CellKind, std::size_t> cell_histogram() const;
  std::size_t dff_count() const;
  std::size_t gate_count() const;  ///< combinational cells excl. const/input

  /// Fault injection for verification suites: replace the kind of a
  /// combinational logic cell with another of identical arity (e.g.
  /// kAnd2 -> kOr2, kInv -> kBuf).  The mutant is only meant to be
  /// simulated — structural hashing invariants no longer hold, so do not
  /// keep building gates on a mutated netlist.  Throws std::logic_error
  /// on non-logic cells or arity mismatch.
  void mutate_cell(NetId id, CellKind new_kind);

  /// Structural validation; throws std::logic_error on dangling nets,
  /// unconnected DFFs or combinational cycles.
  void validate() const;

  /// Topological order of combinational cells (sources excluded).
  std::vector<NetId> topo_order() const;

  /// Logic depth of every combinational cell: 0 for cells fed only by
  /// sources (constants, inputs, DFF outputs), else 1 + max input level.
  /// Sources themselves get kNoLevel.  Used by the levelized simulator.
  std::vector<std::uint32_t> topo_levels() const;

  /// Remove logic not reachable from any output, DFF input or memory write
  /// port.  Returns the number of cells removed.  Net ids are NOT preserved.
  std::size_t sweep();

  std::string dump() const;

private:
  std::string name_;
  std::vector<Cell> cells_;
  std::vector<MemMacro> mems_;
  std::vector<Bus> inputs_;
  std::vector<Bus> outputs_;
  std::unordered_map<std::uint64_t, std::vector<NetId>> strash_;

  NetId emit(CellKind kind, std::vector<NetId> ins);
  NetId strash_lookup(CellKind kind, const std::vector<NetId>& ins);
  friend class Simulator;
  friend class Timing;
  friend struct NetlistSurgeon;
};

/// Raw access to a netlist's cells, bypassing the optimizing factories.
/// Exists for the lint subsystem's test vectors (combinational loops and
/// floating inputs cannot be built through the factory API).  A mutated
/// netlist may violate every structural invariant — lint it, don't build on
/// it or simulate it.
struct NetlistSurgeon {
  static std::vector<Cell>& cells(Netlist& nl) { return nl.cells_; }
  static std::vector<MemMacro>& memories(Netlist& nl) { return nl.mems_; }
  static std::vector<Bus>& outputs(Netlist& nl) { return nl.outputs_; }
};

}  // namespace osss::gate
