// sim.hpp — event-driven gate-level simulator.
//
// Simulates a mapped netlist the way a conventional HDL simulator simulates
// a post-synthesis netlist: per-gate evaluation driven by value-change
// events.  It is deliberately the slowest of the three simulators in this
// repository — the paper's claim of "much higher simulation speed than
// conventional RTL simulators" for compiled SystemC is reproduced by
// benchmarking the same design at the OO, RTL-IR and gate levels (R7).

#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "gate/netlist.hpp"

namespace osss::gate {

class Simulator {
public:
  /// Takes the netlist by value: the simulator owns its design, so
  /// `Simulator sim(lower_to_gates(m))` is safe.
  explicit Simulator(Netlist nl);

  void set_input(const std::string& bus, const Bits& value);
  void set_input(const std::string& bus, std::uint64_t value);
  Bits output(const std::string& bus) const;
  bool net(NetId id) const { return values_[id]; }

  /// One rising clock edge: DFFs sample, memory writes commit, changes
  /// propagate event-driven until quiescent.
  void step();
  void step(unsigned n) {
    for (unsigned i = 0; i < n; ++i) step();
  }

  /// Asynchronous power-on reset: every DFF to its init value.
  void reset();

  /// Total gate evaluations performed (the event-driven activity measure).
  std::uint64_t event_count() const noexcept { return events_; }
  std::uint64_t cycle_count() const noexcept { return cycles_; }

  /// Direct memory access for tests.
  Bits mem_word(unsigned mem, unsigned word) const;
  void poke_mem(unsigned mem, unsigned word, const Bits& value);

private:
  const Netlist nl_;
  std::vector<char> values_;
  std::vector<std::vector<NetId>> fanout_;
  std::vector<std::vector<NetId>> memq_cells_;  // per memory
  std::vector<std::vector<Bits>> mem_state_;
  std::deque<NetId> queue_;
  std::vector<char> queued_;
  std::uint64_t events_ = 0;
  std::uint64_t cycles_ = 0;

  bool eval_cell(NetId id) const;
  void enqueue_fanout(NetId id);
  void propagate();
  void full_eval();
  std::uint64_t addr_of(const std::vector<NetId>& addr_nets) const;
};

}  // namespace osss::gate
