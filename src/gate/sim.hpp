// sim.hpp — gate-level simulator with three evaluation engines.
//
// Simulates a mapped netlist the way a conventional HDL simulator simulates
// a post-synthesis netlist.  Three engines share one value store:
//
//   * kEvent:       per-gate evaluation driven by value-change events (the
//                   classic event wheel; slowest, the paper's conventional
//                   netlist-simulator stand-in for R7);
//   * kLevelized:   two-pass levelized sweep — cells are grouped by logic
//                   depth at construction and each clock phase re-evaluates
//                   only levels whose inputs changed (quiescent levels are
//                   skipped wholesale);
//   * kBitParallel: the levelized schedule with 64 stimulus lanes packed
//                   into one std::uint64_t per net, so every sweep advances
//                   64 independent vectors — this is what lets random-vector
//                   equivalence checking and the R7 bench amortize the
//                   netlist walk across a whole stimulus batch.
//   * kNative:      the netlist compiled to specialized C++ at runtime
//                   (gate/codegen.hpp) and dlopen'd, with an interpreted
//                   fallback when no compiler is available.  Extends the
//                   bit-parallel scheme past 64 lanes (multiples of 64 up
//                   to kMaxLanes) with SIMD lane words, and folds the DFF/
//                   memory commit into the generated step().
//
// All topology (fanout, DFF bindings, memory write ports, level schedule)
// is precomputed once in the constructor; the per-cycle hot path performs
// no allocation.

#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "gate/codegen.hpp"
#include "gate/netlist.hpp"
#include "par/batch.hpp"

namespace osss::par {
class Pool;
}

namespace osss::gate {

/// Evaluation engine selection (fixed per Simulator instance).
enum class SimMode : std::uint8_t {
  kEvent,        ///< scalar, event-driven
  kLevelized,    ///< scalar, level-sweep with quiescent-level skipping
  kBitParallel,  ///< 64-lane level-sweep (one stimulus vector per lane)
  kNative,       ///< generated native code / interpreted fallback (wide lanes)
};

const char* sim_mode_name(SimMode m);

class Simulator {
public:
  /// Stimulus lanes carried per net in kBitParallel mode.
  static constexpr unsigned kLanes = 64;
  /// Upper lane bound in kNative mode (multiples of 64).
  static constexpr unsigned kMaxLanes = NativeEngine::kMaxLanes;

  /// Engine internals, exposed so benches report activity instead of just
  /// wall-clock (R7).
  struct Stats {
    std::uint64_t events = 0;            ///< gate evaluations performed
    std::uint64_t cycles = 0;            ///< clock edges stepped
    std::uint64_t queue_high_water = 0;  ///< kEvent: max outstanding events
    std::uint64_t levels_evaluated = 0;  ///< level sweeps that did work
    std::uint64_t levels_skipped = 0;    ///< quiescent levels skipped
  };

  /// Takes the netlist by value: the simulator owns its design, so
  /// `Simulator sim(lower_to_gates(m))` is safe.  `lanes` only applies to
  /// SimMode::kNative (0 = 64; otherwise 1 or a multiple of 64 up to
  /// kMaxLanes); the other modes fix their lane count and accept 0 or the
  /// implied value.  `codegen` tunes the native backend and is ignored by
  /// the interpreted modes.
  explicit Simulator(Netlist nl, SimMode mode = SimMode::kEvent,
                     unsigned lanes = 0, CodegenOptions codegen = {});

  SimMode mode() const noexcept { return mode_; }
  /// Stimulus lanes carried per net (1, 64, or the kNative lane count).
  unsigned lanes() const noexcept {
    return native_ ? native_->lanes()
                   : (mode_ == SimMode::kBitParallel ? kLanes : 1);
  }
  /// Words per lane group: ceil(lanes / 64).
  unsigned lane_words() const noexcept {
    return native_ ? native_->lane_words() : 1;
  }

  /// Drive an input bus.  In kBitParallel mode the value is broadcast to
  /// all 64 lanes.
  void set_input(const std::string& bus, const Bits& value);
  /// Convenience overload; throws if `value` has bits beyond the bus width.
  void set_input(const std::string& bus, std::uint64_t value);
  /// Drive an input bus with distinct per-lane vectors: bus bit i occupies
  /// lane_words() consecutive elements starting at bit_lanes[i *
  /// lane_words()] (for <= 64 lanes, `bit_lanes[i]` is simply the lane word
  /// of bit i).  kBitParallel and kNative modes only.  Accepts any
  /// contiguous storage without copying — batch runners pass block memory
  /// directly.
  void set_input_lanes(const std::string& bus,
                       std::span<const std::uint64_t> bit_lanes);
  /// Drive an input bus with one value per lane — values[l] = lane l,
  /// truncated to the bus width (kNative mode, <= 64-bit buses).  Skips the
  /// bit transpose of set_input_lanes; the fast path for per-lane stimulus.
  void set_input_values(const std::string& bus,
                        std::span<const std::uint64_t> values);

  /// Output bus value (lane 0 in the multi-lane modes).
  Bits output(const std::string& bus) const;
  /// Output bus value of one stimulus lane.
  Bits output_lane(const std::string& bus, unsigned lane) const;
  /// All lanes of an output bus: bit i occupies lane_words() consecutive
  /// elements (for <= 64 lanes, element i holds the lanes of bit i).
  std::vector<std::uint64_t> output_words(const std::string& bus) const;
  /// One value per lane of an output (kNative mode, <= 64-bit buses); the
  /// inverse of set_input_values.
  std::vector<std::uint64_t> output_values(const std::string& bus) const;

  bool net(NetId id) const {
    return ((native_ ? native_->net_word(id) : values_[id]) & 1u) != 0;
  }
  std::uint64_t net_lanes(NetId id) const {
    return native_ ? native_->net_word(id) : values_[id];
  }

  /// One rising clock edge: DFFs sample, memory writes commit, changes
  /// propagate until quiescent.
  void step();
  void step(unsigned n) {
    for (unsigned i = 0; i < n; ++i) step();
  }

  /// Asynchronous power-on reset: every DFF to its init value.
  void reset();
  /// Power-on reset via the native backend's construction-time arena
  /// snapshot when available (one copy, no settle sweep); interpreted
  /// modes fall back to reset().  run_batch uses this to recycle one
  /// engine across stimulus blocks.
  void restore_poweron();

  const Stats& stats() const noexcept;
  /// Total gate evaluations performed (the activity measure).
  std::uint64_t event_count() const noexcept { return stats().events; }
  std::uint64_t cycle_count() const noexcept { return stats().cycles; }

  /// Direct memory access for tests (lane 0 in the multi-lane modes; pokes
  /// broadcast to all lanes).
  Bits mem_word(unsigned mem, unsigned word) const;
  void poke_mem(unsigned mem, unsigned word, const Bits& value);

  /// The native backend (kNative only; throws otherwise) — exposes
  /// native()/compile_log() for tests and diagnostics.
  NativeEngine& native();
  const NativeEngine& native() const;

private:
  /// Cached write-port topology: samples live at
  /// `wp_samp_[base]` = enable, `[base+1 .. base+addr_n]` = address nets,
  /// `[base+1+addr_n .. +width]` = data nets.
  struct WritePortRef {
    std::uint32_t mem = 0;
    std::uint32_t base = 0;
    std::uint32_t addr_n = 0;
    std::uint32_t width = 0;
  };

  const Netlist nl_;
  SimMode mode_;
  std::uint64_t lane_mask_;  ///< 1 in scalar modes, all-ones in kBitParallel

  std::vector<std::uint64_t> values_;  ///< one word of lanes per net

  // CSR fanout arena: combinational users of net n are
  // fanout_[fanout_offset_[n] .. fanout_offset_[n+1]).
  std::vector<std::uint32_t> fanout_offset_;
  std::vector<NetId> fanout_;

  // Sequential elements cached once at construction.
  struct DffBind {
    NetId q;
    NetId d;
    bool init;
  };
  std::vector<DffBind> dffs_;
  std::vector<std::uint64_t> dff_next_;  ///< scratch, one word per DFF

  // Level schedule: level l spans
  // level_cells_[level_offset_[l] .. level_offset_[l+1]).
  std::vector<std::uint32_t> level_of_;  ///< per cell; kNoLevel for sources
  std::vector<std::uint32_t> level_offset_;
  std::vector<NetId> level_cells_;
  std::vector<char> level_dirty_;
  // Distinct fanout levels of net n (for dirty marking):
  // flevels_[flevel_offset_[n] .. flevel_offset_[n+1]).
  std::vector<std::uint32_t> flevel_offset_;
  std::vector<std::uint32_t> flevels_;

  // Memories: mem_[m][addr * width + bit] is a word of lanes.
  std::vector<std::vector<NetId>> memq_cells_;  // read-data cells per memory
  std::vector<std::vector<std::uint64_t>> mem_;
  std::vector<WritePortRef> wports_;
  std::vector<NetId> wp_nets_;           ///< flattened en/addr/data nets
  std::vector<std::uint64_t> wp_samp_;   ///< pre-edge samples (scratch)

  // Event engine.
  std::vector<NetId> queue_;
  std::vector<char> queued_;

  // Native backend (mode_ == kNative); when set, every public entry point
  // delegates and the interpreter state above stays empty.
  std::unique_ptr<NativeEngine> native_;

  mutable Stats stats_;  ///< mutable: stats() folds in native run counters

  const Bus& find_bus(const std::vector<Bus>& buses,
                      const std::string& name) const;
  std::uint64_t eval_cell(NetId id) const;
  std::uint64_t eval_memq(const Cell& c) const;
  std::uint64_t addr_of(const std::vector<NetId>& addr_nets,
                        unsigned lane) const;
  void on_net_changed(NetId id);   ///< schedule fanout of a changed net
  void wake_cell(NetId cell);      ///< schedule re-evaluation of one cell
  void propagate();                ///< settle combinational logic
  void propagate_events();
  void sweep_levels();
  void full_eval();
  void sample_writes();
  void commit_writes();
};

/// Evaluate independent stimulus blocks of `nl` across a pool (nullptr =
/// par::Pool::global()).  Each block runs from power-on reset; per cycle the
/// runner drives every input slot, steps, then samples every output slot
/// into block.out.
///
/// Scalar blocks (lanes == 1): slot s is input/output bus s in netlist
/// declaration order, values masked to the bus width.  Lane blocks (lanes a
/// multiple of 64; kBitParallel accepts exactly 64, kNative up to
/// Simulator::kMaxLanes): bit i of the buses concatenated LSB-first
/// occupies lanes/64 consecutive slots — in_slots must equal the summed
/// input widths times lanes/64, each element one 64-lane word.
///
/// Block results depend only on the block's own stimulus, so the batch is
/// bit-identical for every pool size.  Throws std::invalid_argument on
/// malformed blocks.
void run_batch(const Netlist& nl, SimMode mode,
               std::span<par::StimulusBlock> blocks,
               par::Pool* pool = nullptr);

}  // namespace osss::gate
