// codegen.hpp — native-code backend for the gate-level netlist.
//
// The interpreted gate engines (gate/sim.hpp) pay per-cell dispatch: a
// switch over CellKind plus input-net loads for every evaluated cell.  This
// backend removes that tax the same way the rtl tape backend does — by
// *generating code* for one specific levelized Netlist:
//
//   * emit_netlist_cpp() lowers the netlist into specialized C++ — one
//     straight-line store per combinational cell with net offsets baked in
//     as literals, over a flat lane-major uint64_t arena (net n's lane
//     words at V[n*LW .. n*LW+LW)).  The generated settle runs one
//     in-order sweep from the first dirty level to the end — the level
//     schedule is topological, so recomputing the whole suffix propagates
//     every change without per-cell diff tracking; memory read ports are
//     grouped and gathered through one-hot row masks when the row count is
//     small against the lane count (word ops instead of per-lane probes);
//   * the DFF and memory-write-port commit is emitted *inside* the
//     generated `osss_gate_step` entry point — sample offsets, depths,
//     widths and dirty marks baked in, no C++ commit loop on the hot path;
//   * the compile/dlopen machinery and the content-hash object cache are
//     shared with the rtl backend (src/jit): identical netlists reuse one
//     loaded object, and generated code is stateless — all mutable state
//     (value arena, memories, dirty flags, step scratch) is engine-owned
//     and passed in as parameters;
//   * when the compile is unavailable (OSSS_NO_JIT, bogus $OSSS_CC, a
//     sandboxed runner) the engine falls back *silently* to an interpreted
//     level sweep generalized to LW lane words — bit-identical results.
//
// Lanes: 1 (scalar) or any multiple of 64 up to kMaxLanes (512).  A "lane
// word" packs 64 stimulus lanes of one single-bit net; 256 lanes = 4 words
// per net.  Each level's logic cells are emitted as one fused loop of
// explicit SIMD chunk stores (lane_ops_prelude: AVX-512 / AVX2 / scalar
// selected by lane-word count and target ISA).
//
// gate::Simulator selects this backend with SimMode::kNative; the event
// engine remains the oracle (tests/gate/native_test.cpp runs native vs
// bit-parallel vs event differentially).

#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "gate/netlist.hpp"
#include "jit/jit.hpp"

namespace osss::gate {

/// Knobs for the runtime compile step (see jit::CompileOptions); shared
/// with the rtl backend, including the OSSS_CC / OSSS_NO_JIT environment
/// hooks.
using CodegenOptions = jit::CompileOptions;

/// Generate the specialized C++ translation unit for `nl` at `lanes`
/// stimulus lanes — exposed for tests and for inspecting what the backend
/// actually compiles.
std::string emit_netlist_cpp(const Netlist& nl, unsigned lanes);

/// Executes a levelized netlist through generated native code (dlopen) or
/// the interpreted LW-word level sweep.  Owned by gate::Simulator behind
/// SimMode::kNative; `nl` must outlive the engine (the Simulator owns it).
class NativeEngine {
 public:
  static constexpr unsigned kMaxLanes = 512;

  NativeEngine(const Netlist& nl, unsigned lanes, CodegenOptions opt = {});
  ~NativeEngine();

  NativeEngine(const NativeEngine&) = delete;
  NativeEngine& operator=(const NativeEngine&) = delete;

  unsigned lanes() const noexcept { return lanes_; }
  unsigned lane_words() const noexcept { return lw_; }

  /// True when the dlopen'd generated code is driving eval/step; false
  /// means the interpreted fallback is active (results are identical).
  bool native() const noexcept { return eval_fn_ != nullptr; }
  const std::string& compile_log() const noexcept { return compile_log_; }

  struct RunStats {
    std::uint64_t cycles = 0;
    std::uint64_t gate_evals = 0;        ///< fallback sweep only
    std::uint64_t levels_evaluated = 0;  ///< fallback sweep only
    std::uint64_t levels_skipped = 0;    ///< fallback sweep only
  };
  const RunStats& stats() const noexcept { return stats_; }

  /// Drive an input bus, broadcast to all lanes.
  void set_input(const std::string& bus, const Bits& value);
  void set_input(const std::string& bus, std::uint64_t value);
  /// Drive all lanes bit-sliced: bit_lanes[i*lane_words() + w] is lane word
  /// w of bus bit i (the gate::Simulator layout, generalized past 64).
  void set_input_lanes(const std::string& bus,
                       std::span<const std::uint64_t> bit_lanes);
  /// Drive one value per lane (<= 64-bit buses; values[l] is lane l,
  /// truncated to the bus width).
  void set_input_values(const std::string& bus,
                        std::span<const std::uint64_t> values);

  Bits output(const std::string& bus) const;
  Bits output_lane(const std::string& bus, unsigned lane) const;
  /// Lane words of an output bus: width * lane_words() elements, same
  /// layout as set_input_lanes.
  std::vector<std::uint64_t> output_words(const std::string& bus) const;
  /// One value per lane of an output (<= 64-bit buses; throws otherwise).
  std::vector<std::uint64_t> output_values(const std::string& bus) const;

  /// Lane word w of net id (settled; bit l%64 of word l/64 = lane l).
  std::uint64_t net_word(NetId id, unsigned word = 0) const;

  void step();
  void reset();
  /// Restore the exact post-construction state (power-on reset, all inputs
  /// at 0, settled) from a snapshot taken at construction — one arena copy
  /// instead of a reset + settle sweep.  run_batch uses this to recycle
  /// one engine across blocks.
  void restore_poweron();

  Bits mem_word(unsigned mem, unsigned word, unsigned lane = 0) const;
  void poke_mem(unsigned mem, unsigned word, const Bits& value);

 private:
  using EvalFn = void (*)(std::uint64_t*, std::uint64_t* const*,
                          unsigned char*);
  using StepFn = unsigned (*)(std::uint64_t*, std::uint64_t* const*,
                              unsigned char*, std::uint64_t*);

  struct WritePortRef {
    std::uint32_t mem = 0;
    std::uint32_t base = 0;  ///< first slot in wp_nets_ / wp_samp_
    std::uint32_t addr_n = 0;
    std::uint32_t width = 0;
  };

  const Netlist* nl_;
  unsigned lanes_ = 64;
  unsigned lw_ = 1;           ///< lane words per net: lanes/64 (min 1)
  std::uint64_t tail_mask_;   ///< mask of the last lane word (1 for scalar)

  std::vector<std::uint64_t> values_;  ///< V[net*lw_ + w]
  std::vector<std::uint64_t> poweron_values_;  ///< settled power-on arena
  std::vector<unsigned char> level_dirty_;
  RunStats stats_;

  // Level schedule + dirty-marking topology (shared by the fallback sweep
  // and the engine-side input marking; the generated code bakes its own).
  std::vector<std::uint32_t> level_of_;
  std::vector<std::uint32_t> level_offset_;
  std::vector<NetId> level_cells_;
  std::vector<std::uint32_t> flevel_offset_;
  std::vector<std::uint32_t> flevels_;

  struct DffBind {
    NetId q;
    NetId d;
    bool init;
  };
  std::vector<DffBind> dffs_;
  std::vector<std::uint64_t> dff_next_;  ///< fallback scratch, lw_ per DFF

  std::vector<std::vector<NetId>> memq_cells_;
  std::vector<std::vector<std::uint64_t>> mem_;  ///< [(a*width+b)*lw_ + w]
  std::vector<std::uint64_t*> mem_ptrs_;         ///< stable, passed to native
  std::vector<WritePortRef> wports_;
  std::vector<NetId> wp_nets_;          ///< flattened en/addr/data nets
  std::vector<std::uint64_t> wp_samp_;  ///< fallback scratch, lw_ per net

  // Native path state (shared object handle from the jit cache).
  std::shared_ptr<jit::Object> obj_;
  EvalFn eval_fn_ = nullptr;
  StepFn step_fn_ = nullptr;
  std::vector<std::uint64_t> step_scratch_;
  std::string compile_log_;

  void try_native(const CodegenOptions& opt);
  void drop_native();
  void eval();  ///< settle dirty levels (native or fallback sweep)
  void fallback_eval();
  void fallback_step();
  std::uint64_t eval_cell_word(const Cell& c, NetId id, unsigned w) const;
  void eval_memq(NetId id, std::uint64_t* out) const;
  std::uint64_t addr_at_lane(const NetId* addr_nets, std::uint32_t n,
                             unsigned lane) const;
  std::uint64_t addr_sample_lane(std::uint32_t base, std::uint32_t n,
                                 unsigned lane) const;
  void mark_net(NetId id);  ///< dirty-mark the fanout levels of a net
  const Bus& find_bus(const std::vector<Bus>& buses,
                      const std::string& name) const;
};

}  // namespace osss::gate
