// equiv.hpp — randomized sequential equivalence checking between netlists.
//
// A miter-style checker: both netlists are reset and driven with the same
// random input sequences; any cycle where an output pair differs is a
// counterexample.  Used by the zero-overhead experiment (R4) and the IP
// integration tests to demonstrate the §12 "fully complies with its
// original description" property at netlist level.
//
// Since PR 2 the checker is a thin wrapper over the unified co-simulation
// driver (verify::CoSim): both netlists are attached as gate models and
// scored by the shared scoreboard, so its implementation lives in the
// verify library (src/verify/equiv.cpp) and linking against
// check_equivalence requires osss_verify.
//
// The checker runs on any of the gate simulator's engines (EquivOptions).
// With both sides on the 64-lane bit-parallel engine, every simulated
// cycle checks 64 independent stimulus vectors.  Mixing engines (e.g.
// event-driven vs. bit-parallel) cross-validates the engines themselves on
// one netlist: check_equivalence(nl, nl, {.mode_a = kEvent, .mode_b =
// kBitParallel}) must hold for every correct engine pair.
//
// Determinism contract:
//   * seed == 0 (the default) derives the effective seed from the two
//     netlist NAMES (derive_equiv_seed), so different call sites — and
//     different designs at one call site — get distinct but fully
//     reproducible vector streams instead of all sharing "seed 1";
//   * any nonzero seed is used verbatim, for replaying a reported failure;
//   * the effective seed is returned in EquivResult::seed and embedded in
//     the counterexample text, so a failure log alone suffices to re-run
//     the identical check;
//   * every sequence is an independent shard seeded with
//     derive(base, "seq/<i>") and the shards run on a work-stealing pool
//     (EquivOptions::threads); the verdict, the reported counterexample
//     (lowest failing sequence) and cycles_checked do not depend on the
//     thread count.

#pragma once

#include <cstdint>
#include <string>

#include "gate/netlist.hpp"
#include "gate/sim.hpp"

namespace osss::gate {

struct EquivResult {
  bool equivalent = false;
  std::uint64_t cycles_checked = 0;  ///< stimulus vectors compared
  std::uint64_t seed = 0;            ///< effective seed of the run
  std::string counterexample;        ///< empty when equivalent

  explicit operator bool() const noexcept { return equivalent; }
};

struct EquivOptions {
  unsigned sequences = 8;  ///< independent runs, each from reset
  unsigned cycles = 256;   ///< clock cycles per run
  std::uint64_t seed = 0;  ///< 0 = derive from the netlist names
  SimMode mode_a = SimMode::kEvent;  ///< engine simulating netlist `a`
  SimMode mode_b = SimMode::kEvent;  ///< engine simulating netlist `b`
  /// kNative sides only: stimulus lanes (0 = the 64-lane default; 1 or a
  /// multiple of 64 up to Simulator::kMaxLanes).  Sides wider than 64 join
  /// the scoreboard as scalar broadcast models (see verify::GateModel).
  unsigned lanes = 0;
  /// kNative sides only: backend knobs (forced fallback, compiler override).
  CodegenOptions codegen = {};
  /// Pool contexts running the sequence shards: 0 = the process-wide
  /// par::Pool::global(), 1 = inline on the caller, n = a private n-context
  /// pool.  The verdict, counterexample and cycles_checked are identical
  /// for every value — each sequence is an independent shard with a seed
  /// derived from the base, reduced in sequence order.
  unsigned threads = 0;
};

/// The seed a default (seed == 0) check of these two netlists will use.
std::uint64_t derive_equiv_seed(const Netlist& a, const Netlist& b);

/// Randomized sequential equivalence check.  Both netlists must expose
/// identical input and output bus interfaces (name and width).  64-lane
/// stimulus is used when both engines are kBitParallel; otherwise the same
/// scalar vector drives both sides each cycle.
EquivResult check_equivalence(const Netlist& a, const Netlist& b,
                              const EquivOptions& opt);

/// Convenience overload with the historical positional parameters; `mode`
/// selects the engine for both sides and seed 0 derives from the names.
EquivResult check_equivalence(const Netlist& a, const Netlist& b,
                              unsigned sequences = 8, unsigned cycles = 256,
                              std::uint64_t seed = 0,
                              SimMode mode = SimMode::kEvent);

}  // namespace osss::gate
