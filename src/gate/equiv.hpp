// equiv.hpp — randomized sequential equivalence checking between netlists.
//
// A miter-style checker: both netlists are reset and driven with the same
// random input sequences; any cycle where an output pair differs is a
// counterexample.  Used by the zero-overhead experiment (R4) and the IP
// integration tests to demonstrate the §12 "fully complies with its
// original description" property at netlist level.

#pragma once

#include <cstdint>
#include <string>

#include "gate/netlist.hpp"

namespace osss::gate {

struct EquivResult {
  bool equivalent = false;
  std::uint64_t cycles_checked = 0;
  std::string counterexample;  ///< empty when equivalent

  explicit operator bool() const noexcept { return equivalent; }
};

/// Randomized sequential equivalence over `sequences` runs of `cycles`
/// cycles each (each run starts from reset).  Both netlists must expose
/// identical input and output bus interfaces (name and width).
EquivResult check_equivalence(const Netlist& a, const Netlist& b,
                              unsigned sequences = 8, unsigned cycles = 256,
                              std::uint64_t seed = 1);

}  // namespace osss::gate
