// vhdl.hpp — structural VHDL netlist writer.
//
// The second output format of the paper's Fig. 6 ("Verilog/VHDL netlist
// *.v, *.vhd").  Emits the mapped netlist as a self-contained VHDL-93
// entity/architecture pair using boolean-operator concurrent assignments
// per cell and one clocked process per register/memory.

#pragma once

#include <string>

#include "gate/netlist.hpp"

namespace osss::gate {

/// Emit `nl` as a self-contained structural VHDL design file.
std::string write_vhdl(const Netlist& nl);

}  // namespace osss::gate
