#include "gate/lower.hpp"

#include <stdexcept>
#include <vector>

namespace osss::gate {

namespace {

using rtl::Node;
using rtl::NodeId;
using rtl::Op;

/// Bit vector of nets, LSB first.
using NetVec = std::vector<NetId>;

struct Lowering {
  const rtl::Module& m;
  Netlist nl;
  std::vector<NetVec> bits;  // per RTL node

  explicit Lowering(const rtl::Module& mod) : m(mod), nl(mod.name()) {
    bits.resize(m.node_count());
  }

  // --- word-level building blocks -----------------------------------------

  /// sum = a + b + cin (ripple carry); returns sum bits, sets cout.
  NetVec ripple_add(const NetVec& a, const NetVec& b, NetId cin,
                    NetId* cout = nullptr) {
    NetVec sum(a.size());
    NetId carry = cin;
    for (std::size_t i = 0; i < a.size(); ++i) {
      const NetId axb = nl.xor2(a[i], b[i]);
      sum[i] = nl.xor2(axb, carry);
      carry = nl.or2(nl.and2(a[i], b[i]), nl.and2(carry, axb));
    }
    if (cout != nullptr) *cout = carry;
    return sum;
  }

  NetVec invert(const NetVec& a) {
    NetVec out(a.size());
    for (std::size_t i = 0; i < a.size(); ++i) out[i] = nl.inv(a[i]);
    return out;
  }

  NetVec zeros(std::size_t n) { return NetVec(n, nl.const0()); }

  /// a * b truncated to width(a): sum of ANDed, shifted partial products.
  NetVec multiply(const NetVec& a, const NetVec& b) {
    const std::size_t w = a.size();
    NetVec acc = zeros(w);
    for (std::size_t i = 0; i < w; ++i) {
      // Row i: (a & b[i]) << i, truncated to w bits.
      NetVec row = zeros(w);
      for (std::size_t j = 0; i + j < w; ++j)
        row[i + j] = nl.and2(a[j], b[i]);
      acc = ripple_add(acc, row, nl.const0());
    }
    return acc;
  }

  /// Unsigned a < b: borrow out of a - b.
  NetId unsigned_lt(const NetVec& a, const NetVec& b) {
    NetId carry = nl.const1();
    const NetVec nb = invert(b);
    for (std::size_t i = 0; i < a.size(); ++i) {
      const NetId axb = nl.xor2(a[i], nb[i]);
      carry = nl.or2(nl.and2(a[i], nb[i]), nl.and2(carry, axb));
    }
    return nl.inv(carry);  // no carry out => a < b
  }

  NetId equal(const NetVec& a, const NetVec& b) {
    NetId acc = nl.const1();
    for (std::size_t i = 0; i < a.size(); ++i)
      acc = nl.and2(acc, nl.xnor2(a[i], b[i]));
    return acc;
  }

  NetId signed_lt(const NetVec& a, const NetVec& b) {
    const NetId sa = a.back();
    const NetId sb = b.back();
    const NetId mag = unsigned_lt(a, b);
    // Different signs: a<b iff a negative.  Same signs: unsigned compare.
    return nl.mux2(nl.xor2(sa, sb), sa, mag);
  }

  NetVec mux_word(NetId sel, const NetVec& t, const NetVec& e) {
    NetVec out(t.size());
    for (std::size_t i = 0; i < t.size(); ++i)
      out[i] = nl.mux2(sel, t[i], e[i]);
    return out;
  }

  /// Logical barrel shifter.  dir_left selects shift direction.
  NetVec barrel_shift(const NetVec& a, const NetVec& amount, bool dir_left) {
    const std::size_t w = a.size();
    unsigned stages = 0;
    while ((1ull << stages) < w) ++stages;
    NetVec cur = a;
    for (unsigned s = 0; s < stages && s < amount.size(); ++s) {
      const std::size_t k = 1ull << s;
      NetVec shifted = zeros(w);
      for (std::size_t i = 0; i < w; ++i) {
        if (dir_left) {
          if (i >= k) shifted[i] = cur[i - k];
        } else {
          if (i + k < w) shifted[i] = cur[i + k];
        }
      }
      cur = mux_word(amount[s], shifted, cur);
    }
    // Any amount bit beyond the stage count shifts everything out.
    NetId overflow = nl.const0();
    for (std::size_t s = stages; s < amount.size(); ++s)
      overflow = nl.or2(overflow, amount[s]);
    if (overflow != nl.const0()) cur = mux_word(overflow, zeros(w), cur);
    return cur;
  }

  NetId reduce_or(const NetVec& a) {
    NetId acc = nl.const0();
    for (const NetId n : a) acc = nl.or2(acc, n);
    return acc;
  }
  NetId reduce_and(const NetVec& a) {
    NetId acc = nl.const1();
    for (const NetId n : a) acc = nl.and2(acc, n);
    return acc;
  }
  NetId reduce_xor(const NetVec& a) {
    NetId acc = nl.const0();
    for (const NetId n : a) acc = nl.xor2(acc, n);
    return acc;
  }

  // --- per-node lowering -----------------------------------------------------

  void lower_node(NodeId id) {
    const Node& n = m.node(id);
    auto in = [&](std::size_t i) -> const NetVec& { return bits[n.ins[i]]; };
    NetVec out;
    switch (n.op) {
      case Op::kConst: {
        out.resize(n.width);
        for (unsigned i = 0; i < n.width; ++i)
          out[i] = n.value.bit(i) ? nl.const1() : nl.const0();
        break;
      }
      case Op::kInput:
        return;  // handled up front
      case Op::kAdd:
        out = ripple_add(in(0), in(1), nl.const0());
        break;
      case Op::kSub:
        out = ripple_add(in(0), invert(in(1)), nl.const1());
        break;
      case Op::kMul:
        out = multiply(in(0), in(1));
        break;
      case Op::kAnd: {
        out.resize(n.width);
        for (unsigned i = 0; i < n.width; ++i)
          out[i] = nl.and2(in(0)[i], in(1)[i]);
        break;
      }
      case Op::kOr: {
        out.resize(n.width);
        for (unsigned i = 0; i < n.width; ++i)
          out[i] = nl.or2(in(0)[i], in(1)[i]);
        break;
      }
      case Op::kXor: {
        out.resize(n.width);
        for (unsigned i = 0; i < n.width; ++i)
          out[i] = nl.xor2(in(0)[i], in(1)[i]);
        break;
      }
      case Op::kNot:
        out = invert(in(0));
        break;
      case Op::kShlI: {
        out = zeros(n.width);
        for (unsigned i = n.param; i < n.width; ++i)
          out[i] = in(0)[i - n.param];
        break;
      }
      case Op::kLshrI: {
        out = zeros(n.width);
        for (unsigned i = 0; i + n.param < n.width; ++i)
          out[i] = in(0)[i + n.param];
        break;
      }
      case Op::kAshrI: {
        const NetId sign = in(0).back();
        out.assign(n.width, sign);
        for (unsigned i = 0; i + n.param < n.width; ++i)
          out[i] = in(0)[i + n.param];
        break;
      }
      case Op::kShlV:
        out = barrel_shift(in(0), in(1), /*dir_left=*/true);
        break;
      case Op::kLshrV:
        out = barrel_shift(in(0), in(1), /*dir_left=*/false);
        break;
      case Op::kEq:
        out = {equal(in(0), in(1))};
        break;
      case Op::kNe:
        out = {nl.inv(equal(in(0), in(1)))};
        break;
      case Op::kUlt:
        out = {unsigned_lt(in(0), in(1))};
        break;
      case Op::kUle:
        out = {nl.inv(unsigned_lt(in(1), in(0)))};
        break;
      case Op::kSlt:
        out = {signed_lt(in(0), in(1))};
        break;
      case Op::kSle:
        out = {nl.inv(signed_lt(in(1), in(0)))};
        break;
      case Op::kMux:
        out = mux_word(in(0)[0], in(1), in(2));
        break;
      case Op::kSlice: {
        out.resize(n.width);
        for (unsigned i = 0; i < n.width; ++i) out[i] = in(0)[n.param + i];
        break;
      }
      case Op::kConcat: {
        // ins[0] is the MOST significant chunk.
        for (std::size_t i = n.ins.size(); i-- > 0;) {
          const NetVec& part = bits[n.ins[i]];
          out.insert(out.end(), part.begin(), part.end());
        }
        break;
      }
      case Op::kZExt: {
        out = in(0);
        out.resize(n.width, nl.const0());
        break;
      }
      case Op::kSExt: {
        out = in(0);
        out.resize(n.width, in(0).back());
        break;
      }
      case Op::kRedOr:
        out = {reduce_or(in(0))};
        break;
      case Op::kRedAnd:
        out = {reduce_and(in(0))};
        break;
      case Op::kRedXor:
        out = {reduce_xor(in(0))};
        break;
      case Op::kReg:
        return;  // allocated up front
      case Op::kMemRead: {
        out = nl.mem_read(mem_index_map[n.param], in(0));
        break;
      }
    }
    bits[id] = std::move(out);
  }

  std::vector<unsigned> mem_index_map;

  Netlist run() {
    m.validate();
    // Ports and state first: they are topo sources.
    for (const auto& p : m.inputs())
      bits[p.node] = nl.add_input(p.name, m.node(p.node).width);
    for (const rtl::Memory& mem : m.memories())
      mem_index_map.push_back(nl.add_memory(mem.name, mem.depth,
                                            mem.data_width));
    for (const rtl::Register& r : m.registers()) {
      NetVec q(m.node(r.q).width);
      for (unsigned b = 0; b < q.size(); ++b)
        q[b] = nl.dff(r.name + "[" + std::to_string(b) + "]", r.init.bit(b));
      bits[r.q] = std::move(q);
    }
    // Combinational body in dependency order.
    for (const NodeId id : m.topo_order()) lower_node(id);
    // Register D inputs (clock enable becomes a feedback mux).
    for (const rtl::Register& r : m.registers()) {
      const NetVec& q = bits[r.q];
      const NetVec& d = bits[r.d];
      for (unsigned b = 0; b < q.size(); ++b) {
        NetId din = d[b];
        if (r.enable != rtl::kInvalidNode)
          din = nl.mux2(bits[r.enable][0], d[b], q[b]);
        nl.connect_dff(q[b], din);
      }
    }
    // Memory write ports.
    for (std::size_t mi = 0; mi < m.memories().size(); ++mi) {
      for (const auto& w : m.memories()[mi].writes) {
        nl.mem_write(mem_index_map[mi], bits[w.addr], bits[w.data],
                     bits[w.enable][0]);
      }
    }
    for (const auto& p : m.outputs()) nl.add_output(p.name, bits[p.node]);
    nl.sweep();
    nl.validate();
    return std::move(nl);
  }
};

}  // namespace

Netlist lower_to_gates(const rtl::Module& m) { return Lowering(m).run(); }

}  // namespace osss::gate
