#include "gate/library.hpp"

namespace osss::gate {

Library Library::generic() {
  Library lib;
  lib.specs_ = {
      {CellKind::kConst0, {0.0, 0.0}},
      {CellKind::kConst1, {0.0, 0.0}},
      {CellKind::kInput, {0.0, 0.0}},
      {CellKind::kBuf, {0.7, 60.0}},
      {CellKind::kInv, {0.5, 40.0}},
      {CellKind::kAnd2, {1.5, 100.0}},
      {CellKind::kOr2, {1.5, 100.0}},
      {CellKind::kNand2, {1.0, 70.0}},
      {CellKind::kNor2, {1.0, 80.0}},
      {CellKind::kXor2, {2.5, 140.0}},
      {CellKind::kXnor2, {2.5, 140.0}},
      {CellKind::kMux2, {2.5, 120.0}},
      {CellKind::kDff, {6.0, 150.0}},
      {CellKind::kMemQ, {0.0, 900.0}},  // covered by the macro model
  };
  return lib;
}

double Library::area_of(const Netlist& n) const {
  double area = 0.0;
  for (const Cell& c : n.cells()) {
    if (c.kind == CellKind::kDff) {
      area += dff_area_ge;
    } else {
      area += spec(c.kind).area_ge;
    }
  }
  for (const MemMacro& m : n.memories()) {
    area += mem_area_overhead_ge +
            mem_area_per_bit_ge * static_cast<double>(m.depth) * m.width;
  }
  return area;
}

}  // namespace osss::gate
