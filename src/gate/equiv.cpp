#include "gate/equiv.hpp"

#include <random>
#include <sstream>
#include <vector>

namespace osss::gate {

namespace {

std::string interface_of(const Netlist& n) {
  std::ostringstream os;
  for (const Bus& bus : n.inputs()) os << "i:" << bus.name << ":"
                                       << bus.nets.size() << ";";
  for (const Bus& bus : n.outputs()) os << "o:" << bus.name << ":"
                                        << bus.nets.size() << ";";
  return os.str();
}

/// One cycle's stimulus for every input bus, as per-bit lane words (lane 0
/// is the scalar vector when only one lane is in use).
struct Stimulus {
  std::vector<std::vector<std::uint64_t>> words;  // per bus, per bit

  std::string lane_text(const Netlist& n, unsigned lane) const {
    std::ostringstream os;
    for (std::size_t bi = 0; bi < n.inputs().size(); ++bi) {
      const Bus& bus = n.inputs()[bi];
      Bits v(static_cast<unsigned>(bus.nets.size()));
      for (unsigned i = 0; i < v.width(); ++i)
        v.set_bit(i, ((words[bi][i] >> lane) & 1u) != 0);
      os << bus.name << "=" << v.to_hex_string() << " ";
    }
    return os.str();
  }
};

}  // namespace

EquivResult check_equivalence(const Netlist& a, const Netlist& b,
                              const EquivOptions& opt) {
  EquivResult result;
  if (interface_of(a) != interface_of(b)) {
    result.counterexample = "interface mismatch: [" + interface_of(a) +
                            "] vs [" + interface_of(b) + "]";
    return result;
  }

  const bool lanes = opt.mode_a == SimMode::kBitParallel &&
                     opt.mode_b == SimMode::kBitParallel;
  const unsigned vectors_per_cycle = lanes ? Simulator::kLanes : 1;

  Simulator sim_a(a, opt.mode_a);
  Simulator sim_b(b, opt.mode_b);
  std::mt19937_64 rng(opt.seed);
  Stimulus stim;
  stim.words.resize(a.inputs().size());
  for (unsigned s = 0; s < opt.sequences; ++s) {
    sim_a.reset();
    sim_b.reset();
    for (unsigned c = 0; c < opt.cycles; ++c) {
      for (std::size_t bi = 0; bi < a.inputs().size(); ++bi) {
        const Bus& bus = a.inputs()[bi];
        auto& words = stim.words[bi];
        words.assign(bus.nets.size(), 0);
        if (lanes) {
          for (auto& w : words) w = rng();
          sim_a.set_input_lanes(bus.name, words);
          sim_b.set_input_lanes(bus.name, words);
        } else {
          Bits v(static_cast<unsigned>(bus.nets.size()));
          for (unsigned i = 0; i < v.width(); ++i) {
            const bool bit = (rng() & 1u) != 0;
            v.set_bit(i, bit);
            words[i] = bit ? 1 : 0;
          }
          sim_a.set_input(bus.name, v);
          sim_b.set_input(bus.name, v);
        }
      }
      for (const Bus& bus : a.outputs()) {
        const std::vector<std::uint64_t> wa = sim_a.output_words(bus.name);
        const std::vector<std::uint64_t> wb = sim_b.output_words(bus.name);
        std::uint64_t diff = 0;
        for (std::size_t i = 0; i < wa.size(); ++i) diff |= wa[i] ^ wb[i];
        if (!lanes) diff &= 1u;  // engines may differ in unused lanes
        if (diff) {
          unsigned lane = 0;
          while (!((diff >> lane) & 1u)) ++lane;
          std::ostringstream os;
          os << "sequence " << s << " cycle " << c;
          if (lanes) os << " lane " << lane;
          os << ": output " << bus.name << " = "
             << sim_a.output_lane(bus.name, lane).to_hex_string() << " vs "
             << sim_b.output_lane(bus.name, lane).to_hex_string() << " with "
             << stim.lane_text(a, lane);
          result.counterexample = os.str();
          result.cycles_checked +=
              static_cast<std::uint64_t>(c) * vectors_per_cycle;
          return result;
        }
      }
      sim_a.step();
      sim_b.step();
      result.cycles_checked += vectors_per_cycle;
    }
  }
  result.equivalent = true;
  return result;
}

EquivResult check_equivalence(const Netlist& a, const Netlist& b,
                              unsigned sequences, unsigned cycles,
                              std::uint64_t seed, SimMode mode) {
  EquivOptions opt;
  opt.sequences = sequences;
  opt.cycles = cycles;
  opt.seed = seed;
  opt.mode_a = mode;
  opt.mode_b = mode;
  return check_equivalence(a, b, opt);
}

}  // namespace osss::gate
