#include "gate/equiv.hpp"

#include <random>
#include <sstream>

#include "gate/sim.hpp"

namespace osss::gate {

EquivResult check_equivalence(const Netlist& a, const Netlist& b,
                              unsigned sequences, unsigned cycles,
                              std::uint64_t seed) {
  EquivResult result;
  // Interface check.
  auto interface_of = [](const Netlist& n) {
    std::ostringstream os;
    for (const Bus& bus : n.inputs()) os << "i:" << bus.name << ":"
                                         << bus.nets.size() << ";";
    for (const Bus& bus : n.outputs()) os << "o:" << bus.name << ":"
                                          << bus.nets.size() << ";";
    return os.str();
  };
  if (interface_of(a) != interface_of(b)) {
    result.counterexample = "interface mismatch: [" + interface_of(a) +
                            "] vs [" + interface_of(b) + "]";
    return result;
  }

  Simulator sim_a(a);
  Simulator sim_b(b);
  std::mt19937_64 rng(seed);
  for (unsigned s = 0; s < sequences; ++s) {
    sim_a.reset();
    sim_b.reset();
    for (unsigned c = 0; c < cycles; ++c) {
      std::ostringstream stimulus;
      for (const Bus& bus : a.inputs()) {
        Bits v(static_cast<unsigned>(bus.nets.size()));
        for (unsigned i = 0; i < v.width(); ++i)
          v.set_bit(i, (rng() & 1) != 0);
        sim_a.set_input(bus.name, v);
        sim_b.set_input(bus.name, v);
        stimulus << bus.name << "=" << v.to_hex_string() << " ";
      }
      for (const Bus& bus : a.outputs()) {
        const Bits va = sim_a.output(bus.name);
        const Bits vb = sim_b.output(bus.name);
        if (!(va == vb)) {
          std::ostringstream os;
          os << "sequence " << s << " cycle " << c << ": output " << bus.name
             << " = " << va.to_hex_string() << " vs " << vb.to_hex_string()
             << " with " << stimulus.str();
          result.counterexample = os.str();
          result.cycles_checked += c;
          return result;
        }
      }
      sim_a.step();
      sim_b.step();
      ++result.cycles_checked;
    }
  }
  result.equivalent = true;
  return result;
}

}  // namespace osss::gate
