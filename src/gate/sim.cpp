#include "gate/sim.hpp"

#include <algorithm>
#include <memory>
#include <mutex>
#include <stdexcept>

#include "par/pool.hpp"

namespace osss::gate {

const char* sim_mode_name(SimMode m) {
  switch (m) {
    case SimMode::kEvent: return "event";
    case SimMode::kLevelized: return "levelized";
    case SimMode::kBitParallel: return "bit-parallel";
    case SimMode::kNative: return "native";
  }
  return "?";
}

Simulator::Simulator(Netlist nl, SimMode mode, unsigned lanes,
                     CodegenOptions codegen)
    : nl_(std::move(nl)),
      mode_(mode),
      lane_mask_(mode == SimMode::kBitParallel ? ~std::uint64_t{0}
                                               : std::uint64_t{1}) {
  if (mode == SimMode::kNative) {
    // The engine owns all simulation state (it validates the netlist and
    // resets itself); the interpreter members stay empty.
    native_ = std::make_unique<NativeEngine>(
        nl_, lanes == 0 ? kLanes : lanes, std::move(codegen));
    return;
  }
  const unsigned implied = mode == SimMode::kBitParallel ? kLanes : 1;
  if (lanes != 0 && lanes != implied)
    throw std::invalid_argument(std::string("gate::Simulator: ") +
                                sim_mode_name(mode) +
                                " mode carries a fixed lane count");
  nl_.validate();
  const std::size_t n = nl_.cells().size();
  values_.assign(n, 0);
  values_[nl_.const1()] = lane_mask_;
  queued_.assign(n, 0);
  queue_.reserve(64);

  // Sequential elements and memory read cells, cached once so step() never
  // rescans the cell array.
  memq_cells_.resize(nl_.memories().size());
  for (NetId id = 0; id < n; ++id) {
    const Cell& c = nl_.cells()[id];
    if (c.kind == CellKind::kDff) dffs_.push_back({id, c.ins[0], c.init});
    if (c.kind == CellKind::kMemQ) memq_cells_[c.param].push_back(id);
  }
  dff_next_.resize(dffs_.size());

  // CSR fanout arena (combinational users only; DFFs are the sequential
  // boundary and are sampled in step(), never event-scheduled).
  fanout_offset_.assign(n + 1, 0);
  for (NetId id = 0; id < n; ++id) {
    const Cell& c = nl_.cells()[id];
    if (c.kind == CellKind::kDff) continue;
    for (const NetId in : c.ins) ++fanout_offset_[in + 1];
  }
  for (std::size_t i = 1; i <= n; ++i) fanout_offset_[i] += fanout_offset_[i - 1];
  fanout_.resize(fanout_offset_[n]);
  {
    std::vector<std::uint32_t> cursor(fanout_offset_.begin(),
                                      fanout_offset_.end() - 1);
    for (NetId id = 0; id < n; ++id) {
      const Cell& c = nl_.cells()[id];
      if (c.kind == CellKind::kDff) continue;
      for (const NetId in : c.ins) fanout_[cursor[in]++] = id;
    }
  }

  // Level schedule: cells grouped by logic depth, plus the distinct fanout
  // levels of every net so changes mark exactly the levels that must re-run.
  level_of_ = nl_.topo_levels();
  std::uint32_t num_levels = 0;
  for (const std::uint32_t l : level_of_)
    if (l != kNoLevel) num_levels = std::max(num_levels, l + 1);
  level_offset_.assign(num_levels + 1, 0);
  for (const std::uint32_t l : level_of_)
    if (l != kNoLevel) ++level_offset_[l + 1];
  for (std::size_t i = 1; i <= num_levels; ++i)
    level_offset_[i] += level_offset_[i - 1];
  level_cells_.resize(level_offset_[num_levels]);
  {
    std::vector<std::uint32_t> cursor(level_offset_.begin(),
                                      level_offset_.end() - 1);
    for (NetId id = 0; id < n; ++id)
      if (level_of_[id] != kNoLevel) level_cells_[cursor[level_of_[id]]++] = id;
  }
  level_dirty_.assign(num_levels, 0);
  flevel_offset_.assign(n + 1, 0);
  {
    std::vector<std::uint32_t> scratch;
    for (NetId id = 0; id < n; ++id) {
      scratch.clear();
      for (std::uint32_t i = fanout_offset_[id]; i < fanout_offset_[id + 1];
           ++i)
        scratch.push_back(level_of_[fanout_[i]]);
      std::sort(scratch.begin(), scratch.end());
      scratch.erase(std::unique(scratch.begin(), scratch.end()),
                    scratch.end());
      for (const std::uint32_t l : scratch) flevels_.push_back(l);
      flevel_offset_[id + 1] =
          static_cast<std::uint32_t>(flevels_.size());
    }
  }

  // Memory state and flattened write-port sampling plan.
  for (const MemMacro& m : nl_.memories())
    mem_.emplace_back(static_cast<std::size_t>(m.depth) * m.width, 0);
  for (std::uint32_t mi = 0; mi < nl_.memories().size(); ++mi) {
    const MemMacro& m = nl_.memories()[mi];
    for (const auto& w : m.writes) {
      WritePortRef ref;
      ref.mem = mi;
      ref.base = static_cast<std::uint32_t>(wp_nets_.size());
      ref.addr_n = static_cast<std::uint32_t>(w.addr.size());
      ref.width = m.width;
      wp_nets_.push_back(w.enable);
      wp_nets_.insert(wp_nets_.end(), w.addr.begin(), w.addr.end());
      wp_nets_.insert(wp_nets_.end(), w.data.begin(), w.data.end());
      wports_.push_back(ref);
    }
  }
  wp_samp_.resize(wp_nets_.size());

  reset();
}

std::uint64_t Simulator::addr_of(const std::vector<NetId>& addr_nets,
                                 unsigned lane) const {
  std::uint64_t a = 0;
  for (std::size_t i = addr_nets.size(); i-- > 0;)
    a = (a << 1) | ((values_[addr_nets[i]] >> lane) & 1u);
  return a;
}

std::uint64_t Simulator::eval_memq(const Cell& c) const {
  const MemMacro& m = nl_.memories()[c.param];
  const std::vector<std::uint64_t>& mem = mem_[c.param];
  if (mode_ != SimMode::kBitParallel) {
    const std::uint64_t a = addr_of(c.ins, 0);
    if (a >= m.depth) return 0;
    return mem[a * m.width + c.param2] & 1u;
  }
  // Lanes address independent words: gather bit c.param2 per lane.
  std::uint64_t out = 0;
  for (unsigned lane = 0; lane < kLanes; ++lane) {
    const std::uint64_t a = addr_of(c.ins, lane);
    if (a >= m.depth) continue;
    out |= ((mem[a * m.width + c.param2] >> lane) & 1u) << lane;
  }
  return out;
}

std::uint64_t Simulator::eval_cell(NetId id) const {
  const Cell& c = nl_.cells()[id];
  const auto w = [&](std::size_t i) { return values_[c.ins[i]]; };
  switch (c.kind) {
    case CellKind::kConst0: return 0;
    case CellKind::kConst1: return lane_mask_;
    case CellKind::kInput: return values_[id];
    case CellKind::kBuf: return w(0);
    case CellKind::kInv: return ~w(0) & lane_mask_;
    case CellKind::kAnd2: return w(0) & w(1);
    case CellKind::kOr2: return w(0) | w(1);
    case CellKind::kNand2: return ~(w(0) & w(1)) & lane_mask_;
    case CellKind::kNor2: return ~(w(0) | w(1)) & lane_mask_;
    case CellKind::kXor2: return w(0) ^ w(1);
    case CellKind::kXnor2: return ~(w(0) ^ w(1)) & lane_mask_;
    case CellKind::kMux2: return (w(0) & w(1)) | (~w(0) & w(2));
    case CellKind::kDff: return values_[id];  // held state
    case CellKind::kMemQ: return eval_memq(c);
  }
  return 0;
}

void Simulator::on_net_changed(NetId id) {
  if (mode_ == SimMode::kEvent) {
    for (std::uint32_t i = fanout_offset_[id]; i < fanout_offset_[id + 1];
         ++i) {
      const NetId u = fanout_[i];
      if (!queued_[u]) {
        queued_[u] = 1;
        queue_.push_back(u);
      }
    }
  } else {
    for (std::uint32_t i = flevel_offset_[id]; i < flevel_offset_[id + 1];
         ++i)
      level_dirty_[flevels_[i]] = 1;
  }
}

void Simulator::wake_cell(NetId cell) {
  if (mode_ == SimMode::kEvent) {
    if (!queued_[cell]) {
      queued_[cell] = 1;
      queue_.push_back(cell);
    }
  } else {
    level_dirty_[level_of_[cell]] = 1;
  }
}

void Simulator::propagate_events() {
  for (std::size_t head = 0; head < queue_.size(); ++head) {
    stats_.queue_high_water =
        std::max<std::uint64_t>(stats_.queue_high_water, queue_.size() - head);
    const NetId id = queue_[head];
    queued_[id] = 0;
    ++stats_.events;
    const std::uint64_t nv = eval_cell(id);
    if (nv != values_[id]) {
      values_[id] = nv;
      on_net_changed(id);
    }
  }
  queue_.clear();
}

void Simulator::sweep_levels() {
  // Dirty marks only ever propagate to strictly higher levels, so one
  // ascending pass settles the netlist; quiescent levels cost one branch.
  for (std::uint32_t lvl = 0; lvl < level_dirty_.size(); ++lvl) {
    if (!level_dirty_[lvl]) {
      ++stats_.levels_skipped;
      continue;
    }
    level_dirty_[lvl] = 0;
    ++stats_.levels_evaluated;
    for (std::uint32_t i = level_offset_[lvl]; i < level_offset_[lvl + 1];
         ++i) {
      const NetId id = level_cells_[i];
      ++stats_.events;
      const std::uint64_t nv = eval_cell(id);
      if (nv != values_[id]) {
        values_[id] = nv;
        on_net_changed(id);
      }
    }
  }
}

void Simulator::propagate() {
  if (mode_ == SimMode::kEvent)
    propagate_events();
  else
    sweep_levels();
}

void Simulator::full_eval() {
  // level_cells_ is a valid topological order (levels ascend).
  for (const NetId id : level_cells_) {
    ++stats_.events;
    values_[id] = eval_cell(id);
  }
  std::fill(level_dirty_.begin(), level_dirty_.end(), 0);
}

void Simulator::reset() {
  if (native_) {
    native_->reset();
    return;
  }
  for (const DffBind& d : dffs_) values_[d.q] = d.init ? lane_mask_ : 0;
  for (auto& mem : mem_) std::fill(mem.begin(), mem.end(), 0);
  queue_.clear();
  std::fill(queued_.begin(), queued_.end(), 0);
  full_eval();
}

void Simulator::restore_poweron() {
  if (native_) {
    native_->restore_poweron();
    return;
  }
  reset();
}

const Bus& Simulator::find_bus(const std::vector<Bus>& buses,
                               const std::string& name) const {
  for (const Bus& b : buses)
    if (b.name == name) return b;
  throw std::logic_error("gate::Simulator: no bus " + name);
}

void Simulator::set_input(const std::string& bus, const Bits& value) {
  if (native_) {
    native_->set_input(bus, value);
    return;
  }
  const Bus& b = find_bus(nl_.inputs(), bus);
  if (value.width() != b.nets.size())
    throw std::logic_error("gate::Simulator: input width mismatch on " + bus);
  for (std::size_t i = 0; i < b.nets.size(); ++i) {
    const std::uint64_t nv = value.bit(static_cast<unsigned>(i)) ? lane_mask_ : 0;  // broadcast
    if (values_[b.nets[i]] != nv) {
      values_[b.nets[i]] = nv;
      on_net_changed(b.nets[i]);
    }
  }
  propagate();
}

void Simulator::set_input(const std::string& bus, std::uint64_t value) {
  if (native_) {
    native_->set_input(bus, value);
    return;
  }
  const Bus& b = find_bus(nl_.inputs(), bus);
  const std::size_t n = b.nets.size();
  if (n < 64 && (value >> n) != 0)
    throw std::logic_error("gate::Simulator: value does not fit " +
                           std::to_string(n) + "-bit input bus " + bus);
  set_input(bus, Bits(static_cast<unsigned>(n), value));
}

void Simulator::set_input_lanes(const std::string& bus,
                                std::span<const std::uint64_t> bit_lanes) {
  if (native_) {
    native_->set_input_lanes(bus, bit_lanes);
    return;
  }
  if (mode_ != SimMode::kBitParallel)
    throw std::logic_error(
        "gate::Simulator: set_input_lanes requires kBitParallel or kNative "
        "mode");
  const Bus& b = find_bus(nl_.inputs(), bus);
  if (bit_lanes.size() != b.nets.size())
    throw std::logic_error("gate::Simulator: input width mismatch on " + bus);
  for (std::size_t i = 0; i < b.nets.size(); ++i) {
    if (values_[b.nets[i]] != bit_lanes[i]) {
      values_[b.nets[i]] = bit_lanes[i];
      on_net_changed(b.nets[i]);
    }
  }
  propagate();
}

void Simulator::set_input_values(const std::string& bus,
                                 std::span<const std::uint64_t> values) {
  if (!native_)
    throw std::logic_error(
        "gate::Simulator: set_input_values requires kNative mode");
  native_->set_input_values(bus, values);
}

std::vector<std::uint64_t> Simulator::output_values(
    const std::string& bus) const {
  if (!native_)
    throw std::logic_error(
        "gate::Simulator: output_values requires kNative mode");
  return native_->output_values(bus);
}

const Simulator::Stats& Simulator::stats() const noexcept {
  if (native_) {
    const NativeEngine::RunStats& rs = native_->stats();
    stats_.events = rs.gate_evals;
    stats_.cycles = rs.cycles;
    stats_.levels_evaluated = rs.levels_evaluated;
    stats_.levels_skipped = rs.levels_skipped;
  }
  return stats_;
}

NativeEngine& Simulator::native() {
  if (!native_)
    throw std::logic_error("gate::Simulator: native() requires kNative mode");
  return *native_;
}

const NativeEngine& Simulator::native() const {
  if (!native_)
    throw std::logic_error("gate::Simulator: native() requires kNative mode");
  return *native_;
}

Bits Simulator::output(const std::string& bus) const {
  return output_lane(bus, 0);
}

Bits Simulator::output_lane(const std::string& bus, unsigned lane) const {
  if (native_) return native_->output_lane(bus, lane);
  if (lane >= kLanes)
    throw std::logic_error("gate::Simulator: lane out of range");
  const Bus& b = find_bus(nl_.outputs(), bus);
  Bits out(static_cast<unsigned>(b.nets.size()));
  for (std::size_t i = 0; i < b.nets.size(); ++i)
    out.set_bit(static_cast<unsigned>(i), ((values_[b.nets[i]] >> lane) & 1u) != 0);
  return out;
}

std::vector<std::uint64_t> Simulator::output_words(
    const std::string& bus) const {
  if (native_) return native_->output_words(bus);
  const Bus& b = find_bus(nl_.outputs(), bus);
  std::vector<std::uint64_t> out(b.nets.size());
  for (std::size_t i = 0; i < b.nets.size(); ++i)
    out[i] = values_[b.nets[i]] & lane_mask_;
  return out;
}

void Simulator::sample_writes() {
  for (std::size_t i = 0; i < wp_nets_.size(); ++i)
    wp_samp_[i] = values_[wp_nets_[i]];
}

void Simulator::commit_writes() {
  for (const WritePortRef& wp : wports_) {
    const std::uint64_t en = wp_samp_[wp.base] & lane_mask_;
    if (!en) continue;
    const std::uint64_t* addr = &wp_samp_[wp.base + 1];
    const std::uint64_t* data = addr + wp.addr_n;
    const MemMacro& m = nl_.memories()[wp.mem];
    std::vector<std::uint64_t>& mem = mem_[wp.mem];
    bool changed = false;
    if (mode_ != SimMode::kBitParallel) {
      std::uint64_t a = 0;
      for (std::size_t i = wp.addr_n; i-- > 0;)
        a = (a << 1) | (addr[i] & 1u);
      if (a >= m.depth) continue;
      for (std::uint32_t b = 0; b < wp.width; ++b) {
        const std::uint64_t nv = data[b] & 1u;
        std::uint64_t& word = mem[a * wp.width + b];
        if (word != nv) {
          word = nv;
          changed = true;
        }
      }
    } else {
      for (unsigned lane = 0; lane < kLanes; ++lane) {
        if (!((en >> lane) & 1u)) continue;
        std::uint64_t a = 0;
        for (std::size_t i = wp.addr_n; i-- > 0;)
          a = (a << 1) | ((addr[i] >> lane) & 1u);
        if (a >= m.depth) continue;
        for (std::uint32_t b = 0; b < wp.width; ++b) {
          std::uint64_t& word = mem[a * wp.width + b];
          const std::uint64_t nw = (word & ~(std::uint64_t{1} << lane)) |
                                   (((data[b] >> lane) & 1u) << lane);
          if (nw != word) {
            word = nw;
            changed = true;
          }
        }
      }
    }
    if (changed)
      for (const NetId q : memq_cells_[wp.mem]) wake_cell(q);
  }
}

void Simulator::step() {
  if (native_) {
    native_->step();
    return;
  }
  // Sample all DFF D pins and memory write ports with pre-edge values,
  // then commit — member scratch buffers, no per-cycle allocation.
  for (std::size_t i = 0; i < dffs_.size(); ++i)
    dff_next_[i] = values_[dffs_[i].d];
  sample_writes();
  for (std::size_t i = 0; i < dffs_.size(); ++i) {
    const NetId q = dffs_[i].q;
    if (values_[q] != dff_next_[i]) {
      values_[q] = dff_next_[i];
      on_net_changed(q);
    }
  }
  commit_writes();
  propagate();
  ++stats_.cycles;
}

Bits Simulator::mem_word(unsigned mem, unsigned word) const {
  if (native_) return native_->mem_word(mem, word);
  const MemMacro& m = nl_.memories().at(mem);
  if (word >= m.depth)
    throw std::out_of_range("gate::Simulator: memory word out of range");
  Bits out(m.width);
  for (unsigned b = 0; b < m.width; ++b)
    out.set_bit(b, (mem_[mem][static_cast<std::size_t>(word) * m.width + b] &
                    1u) != 0);
  return out;
}

void Simulator::poke_mem(unsigned mem, unsigned word, const Bits& value) {
  if (native_) {
    native_->poke_mem(mem, word, value);
    return;
  }
  const MemMacro& m = nl_.memories().at(mem);
  if (word >= m.depth)
    throw std::out_of_range("gate::Simulator: memory word out of range");
  if (m.width != value.width())
    throw std::logic_error("gate::Simulator: poke_mem width mismatch");
  for (unsigned b = 0; b < m.width; ++b)
    mem_[mem][static_cast<std::size_t>(word) * m.width + b] =
        value.bit(b) ? lane_mask_ : 0;
  for (const NetId q : memq_cells_.at(mem)) wake_cell(q);
  propagate();
}

// --- run_batch -------------------------------------------------------------

namespace {

std::uint64_t low64(const Bits& v) {
  std::uint64_t out = 0;
  const unsigned n = v.width() < 64 ? v.width() : 64;
  for (unsigned i = 0; i < n; ++i)
    if (v.bit(i)) out |= 1ull << i;
  return out;
}

void run_scalar_block(Simulator& sim, const Netlist& nl,
                      par::StimulusBlock& b) {
  sim.restore_poweron();
  for (unsigned c = 0; c < b.cycles; ++c) {
    for (unsigned s = 0; s < b.in_slots; ++s) {
      const Bus& bus = nl.inputs()[s];
      const unsigned w = static_cast<unsigned>(bus.nets.size());
      const std::uint64_t mask = w >= 64 ? ~0ull : ((1ull << w) - 1);
      sim.set_input(bus.name, b.in_at(c, s) & mask);
    }
    sim.step();
    for (unsigned s = 0; s < b.out_slots; ++s)
      b.out[static_cast<std::size_t>(c) * b.out_slots + s] =
          low64(sim.output(nl.outputs()[s].name));
  }
}

void run_lane_block(Simulator& sim, const Netlist& nl, par::StimulusBlock& b,
                    unsigned lwords) {
  sim.restore_poweron();
  for (unsigned c = 0; c < b.cycles; ++c) {
    unsigned slot = 0;
    for (const Bus& bus : nl.inputs()) {
      const unsigned w = static_cast<unsigned>(bus.nets.size());
      // Block memory already has the set_input_lanes layout (bit i at
      // lwords consecutive slots) — hand it over without copying.
      sim.set_input_lanes(
          bus.name, std::span<const std::uint64_t>(
                        &b.in_at(c, slot), std::size_t{w} * lwords));
      slot += w * lwords;
    }
    sim.step();
    slot = 0;
    for (const Bus& bus : nl.outputs()) {
      const std::vector<std::uint64_t> words = sim.output_words(bus.name);
      for (std::size_t i = 0; i < words.size(); ++i)
        b.out[static_cast<std::size_t>(c) * b.out_slots + slot + i] = words[i];
      slot += static_cast<unsigned>(words.size());
    }
  }
}

}  // namespace

void run_batch(const Netlist& nl, SimMode mode,
               std::span<par::StimulusBlock> blocks, par::Pool* pool_arg) {
  if (blocks.empty()) return;
  const unsigned lanes = blocks.front().lanes;
  if (lanes != 1 && (lanes % 64 != 0 || lanes > Simulator::kMaxLanes))
    throw std::invalid_argument(
        "gate::run_batch: lanes must be 1 or a multiple of 64 up to " +
        std::to_string(Simulator::kMaxLanes));
  if (lanes == Simulator::kLanes && mode != SimMode::kBitParallel &&
      mode != SimMode::kNative)
    throw std::invalid_argument(
        "gate::run_batch: 64-lane blocks require kBitParallel or kNative");
  if (lanes > Simulator::kLanes && mode != SimMode::kNative)
    throw std::invalid_argument(
        "gate::run_batch: blocks wider than 64 lanes require kNative");
  const unsigned lwords = lanes == 1 ? 1 : lanes / 64;

  unsigned in_slots = 0, out_slots = 0;
  if (lanes == 1) {
    in_slots = static_cast<unsigned>(nl.inputs().size());
    out_slots = static_cast<unsigned>(nl.outputs().size());
  } else {
    for (const Bus& bus : nl.inputs())
      in_slots += static_cast<unsigned>(bus.nets.size()) * lwords;
    for (const Bus& bus : nl.outputs())
      out_slots += static_cast<unsigned>(bus.nets.size()) * lwords;
  }
  for (par::StimulusBlock& b : blocks) {
    if (b.lanes != lanes)
      throw std::invalid_argument("gate::run_batch: mixed-lane batch");
    if (b.in_slots != in_slots ||
        b.in.size() != static_cast<std::size_t>(b.cycles) * in_slots)
      throw std::invalid_argument("gate::run_batch: block stimulus shape "
                                  "does not match the netlist interface");
    b.out_slots = out_slots;
    b.out.assign(static_cast<std::size_t>(b.cycles) * out_slots, 0);
  }

  par::Pool& pool = pool_arg ? *pool_arg : par::Pool::global();
  // Engines are pooled across chunks: a chunk borrows an idle simulator
  // (or builds one when all are busy — at most one per concurrently active
  // worker) and returns it, so schedule build and JIT compile are paid
  // once per worker, not once per chunk, and every native chunk shares one
  // cached object.  Blocks start from restore_poweron(), a snapshot copy.
  const std::size_t chunks =
      std::min(blocks.size(), static_cast<std::size_t>(pool.size()) * 2);
  const std::size_t per = (blocks.size() + chunks - 1) / chunks;
  std::mutex pool_mu;
  std::vector<std::unique_ptr<Simulator>> idle;
  pool.parallel_for(chunks, [&](std::size_t chunk) {
    const std::size_t lo = chunk * per;
    const std::size_t hi = std::min(blocks.size(), lo + per);
    if (lo >= hi) return;
    std::unique_ptr<Simulator> sim;
    {
      std::lock_guard<std::mutex> lk(pool_mu);
      if (!idle.empty()) {
        sim = std::move(idle.back());
        idle.pop_back();
      }
    }
    if (!sim)
      sim = std::make_unique<Simulator>(
          nl, mode, mode == SimMode::kNative ? lanes : 0);
    for (std::size_t i = lo; i < hi; ++i) {
      if (lanes == 1)
        run_scalar_block(*sim, nl, blocks[i]);
      else
        run_lane_block(*sim, nl, blocks[i], lwords);
    }
    std::lock_guard<std::mutex> lk(pool_mu);
    idle.push_back(std::move(sim));
  });
}

}  // namespace osss::gate
