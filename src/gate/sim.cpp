#include "gate/sim.hpp"

#include <stdexcept>

namespace osss::gate {

Simulator::Simulator(Netlist nl) : nl_(std::move(nl)) {
  nl_.validate();
  values_.assign(nl_.cells().size(), 0);
  values_[nl_.const1()] = 1;
  fanout_.resize(nl_.cells().size());
  queued_.assign(nl_.cells().size(), 0);
  memq_cells_.resize(nl_.memories().size());
  for (NetId id = 0; id < nl_.cells().size(); ++id) {
    const Cell& c = nl_.cells()[id];
    if (c.kind == CellKind::kDff) continue;  // sequential boundary
    for (const NetId in : c.ins) fanout_[in].push_back(id);
    if (c.kind == CellKind::kMemQ) memq_cells_[c.param].push_back(id);
  }
  for (const MemMacro& m : nl_.memories())
    mem_state_.emplace_back(m.depth, Bits(m.width));
  reset();
}

std::uint64_t Simulator::addr_of(const std::vector<NetId>& addr_nets) const {
  std::uint64_t a = 0;
  for (std::size_t i = addr_nets.size(); i-- > 0;) {
    a = (a << 1) | (values_[addr_nets[i]] ? 1u : 0u);
  }
  return a;
}

bool Simulator::eval_cell(NetId id) const {
  const Cell& c = nl_.cells()[id];
  auto v = [&](std::size_t i) { return values_[c.ins[i]] != 0; };
  switch (c.kind) {
    case CellKind::kConst0: return false;
    case CellKind::kConst1: return true;
    case CellKind::kInput: return values_[id] != 0;
    case CellKind::kBuf: return v(0);
    case CellKind::kInv: return !v(0);
    case CellKind::kAnd2: return v(0) && v(1);
    case CellKind::kOr2: return v(0) || v(1);
    case CellKind::kNand2: return !(v(0) && v(1));
    case CellKind::kNor2: return !(v(0) || v(1));
    case CellKind::kXor2: return v(0) != v(1);
    case CellKind::kXnor2: return v(0) == v(1);
    case CellKind::kMux2: return v(0) ? v(1) : v(2);
    case CellKind::kDff: return values_[id] != 0;  // held state
    case CellKind::kMemQ: {
      const MemMacro& m = nl_.memories()[c.param];
      const std::uint64_t a = addr_of(c.ins);
      if (a >= m.depth) return false;
      return mem_state_[c.param][a].bit(c.param2);
    }
  }
  return false;
}

void Simulator::enqueue_fanout(NetId id) {
  for (const NetId u : fanout_[id]) {
    if (!queued_[u]) {
      queued_[u] = 1;
      queue_.push_back(u);
    }
  }
}

void Simulator::propagate() {
  while (!queue_.empty()) {
    const NetId id = queue_.front();
    queue_.pop_front();
    queued_[id] = 0;
    ++events_;
    const bool nv = eval_cell(id);
    if (nv != (values_[id] != 0)) {
      values_[id] = nv ? 1 : 0;
      enqueue_fanout(id);
    }
  }
}

void Simulator::full_eval() {
  for (const NetId id : nl_.topo_order()) {
    ++events_;
    values_[id] = eval_cell(id) ? 1 : 0;
  }
}

void Simulator::reset() {
  for (NetId id = 0; id < nl_.cells().size(); ++id) {
    const Cell& c = nl_.cells()[id];
    if (c.kind == CellKind::kDff) values_[id] = c.init ? 1 : 0;
  }
  for (auto& mem : mem_state_)
    for (auto& word : mem) word = Bits(word.width());
  queue_.clear();
  std::fill(queued_.begin(), queued_.end(), 0);
  full_eval();
}

void Simulator::set_input(const std::string& bus, const Bits& value) {
  for (const Bus& b : nl_.inputs()) {
    if (b.name != bus) continue;
    if (value.width() != b.nets.size())
      throw std::logic_error("gate::Simulator: input width mismatch on " +
                             bus);
    for (std::size_t i = 0; i < b.nets.size(); ++i) {
      const char nv = value.bit(i) ? 1 : 0;
      if (values_[b.nets[i]] != nv) {
        values_[b.nets[i]] = nv;
        enqueue_fanout(b.nets[i]);
      }
    }
    propagate();
    return;
  }
  throw std::logic_error("gate::Simulator: no input bus " + bus);
}

void Simulator::set_input(const std::string& bus, std::uint64_t value) {
  for (const Bus& b : nl_.inputs()) {
    if (b.name == bus) {
      set_input(bus, Bits(static_cast<unsigned>(b.nets.size()), value));
      return;
    }
  }
  throw std::logic_error("gate::Simulator: no input bus " + bus);
}

Bits Simulator::output(const std::string& bus) const {
  for (const Bus& b : nl_.outputs()) {
    if (b.name != bus) continue;
    Bits out(static_cast<unsigned>(b.nets.size()));
    for (std::size_t i = 0; i < b.nets.size(); ++i)
      out.set_bit(i, values_[b.nets[i]] != 0);
    return out;
  }
  throw std::logic_error("gate::Simulator: no output bus " + bus);
}

void Simulator::step() {
  // Sample all DFF D pins and memory write ports with pre-edge values.
  std::vector<std::pair<NetId, char>> dff_next;
  for (NetId id = 0; id < nl_.cells().size(); ++id) {
    const Cell& c = nl_.cells()[id];
    if (c.kind == CellKind::kDff)
      dff_next.emplace_back(id, values_[c.ins[0]]);
  }
  struct Write {
    unsigned mem;
    std::uint64_t addr;
    Bits data;
  };
  std::vector<Write> writes;
  for (unsigned mi = 0; mi < nl_.memories().size(); ++mi) {
    const MemMacro& m = nl_.memories()[mi];
    for (const auto& w : m.writes) {
      if (!values_[w.enable]) continue;
      const std::uint64_t a = addr_of(w.addr);
      if (a >= m.depth) continue;
      Bits data(m.width);
      for (unsigned b = 0; b < m.width; ++b)
        data.set_bit(b, values_[w.data[b]] != 0);
      writes.push_back({mi, a, std::move(data)});
    }
  }
  // Commit.
  for (const auto& [id, nv] : dff_next) {
    if (values_[id] != nv) {
      values_[id] = nv;
      enqueue_fanout(id);
    }
  }
  for (auto& w : writes) {
    if (mem_state_[w.mem][w.addr] != w.data) {
      mem_state_[w.mem][w.addr] = std::move(w.data);
      // All read ports of this memory may change.
      for (const NetId q : memq_cells_[w.mem]) {
        if (!queued_[q]) {
          queued_[q] = 1;
          queue_.push_back(q);
        }
      }
    }
  }
  propagate();
  ++cycles_;
}

Bits Simulator::mem_word(unsigned mem, unsigned word) const {
  return mem_state_.at(mem).at(word);
}

void Simulator::poke_mem(unsigned mem, unsigned word, const Bits& value) {
  Bits& slot = mem_state_.at(mem).at(word);
  if (slot.width() != value.width())
    throw std::logic_error("gate::Simulator: poke_mem width mismatch");
  slot = value;
  for (const NetId q : memq_cells_.at(mem)) {
    if (!queued_[q]) {
      queued_[q] = 1;
      queue_.push_back(q);
    }
  }
  propagate();
}

}  // namespace osss::gate
