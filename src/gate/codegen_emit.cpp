// codegen_emit.cpp — lower a levelized gate Netlist into specialized C++.
//
// The generated translation unit reuses the shared jit preludes: the
// store-only lane_ops_prelude chunk layer (vw = one AVX-512/AVX2/scalar
// chunk of lane words) for combinational logic and step_prelude for the
// sequential commit.  Unlike the interpreter, the generated eval keeps no
// per-cell change tracking.  Levels form a topological schedule, so
// `osss_gate_eval` scans the per-level dirty flags once and then runs one
// straight-line sweep from the first dirty level to the end — every
// downstream value is recomputed exactly (change propagation is implicit
// in program order), and a quiescent settle still costs only the flag
// scan.  Cells within one level are topologically independent, so each
// level's logic cells fuse into a single `for (w += VW)` loop nest: one
// loop bound check per VW lane words serves the whole level instead of
// one word loop per cell, and every store is an explicit SIMD chunk.
//
// Memory read ports are grouped — one block per distinct (mem, address
// nets) tuple instead of one per read-data bit — and lowered to one-hot
// row masks over lane words when the addressable row count is small
// against the lane count, so a gather costs O(rows * width) word ops for
// all lanes at once instead of O(lanes * width) bit probes.  Deep
// memories keep a per-lane sparse gather (touching every row would lose
// when rows >> lanes).  The write-port commit in `osss_gate_step` makes
// the same choice; step ends with an inline settle call so a clock cycle
// is one native call.
//
// When a row span (width * LW words) tiles into the flat `fv` tier
// (flat_ops_prelude: always the widest ISA the target enables, FW words
// per chunk regardless of LW), row-mask gathers and write commits sweep
// whole rows in explicit fv chunks against a cyclically replicated row
// mask — one chunk covers several data bits across lane words.  This
// pins vectorization the auto-vectorizer finds only erratically (GCC's
// SLP pass is context-sensitive enough to drop it under benign
// reorderings) and widens it past the per-tap word.
//
// Layout contract (must match gate::NativeEngine exactly): lane word w of
// net n lives at V[n*LW + w]; lane word w of data bit b of memory entry a
// lives at M[mi][(a*width + b)*LW + w]; all per-step mutable state lives in
// the engine-owned scratch S so a cached object stays stateless.
//
// Masking invariant: every arena and memory word only ever holds bits of
// valid lanes (the engine masks on input, the drivers mask on inversion),
// so one-hot row masks built from complemented address words may carry
// garbage in dead-lane bits — ANDing with a memory or enable word always
// confines the result.

#include <cstdint>
#include <cstdio>
#include <algorithm>
#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "gate/codegen.hpp"

namespace osss::gate {

namespace {

struct Emitter {
  const Netlist& nl;
  const unsigned lanes;
  const unsigned lw;
  const std::uint64_t tm;
  std::ostringstream os;

  std::vector<std::uint32_t> level_of;
  std::uint32_t num_levels = 0;
  std::vector<std::vector<NetId>> by_level;
  /// Distinct fanout levels per net (dirty marks), Simulator semantics.
  std::vector<std::vector<std::uint32_t>> net_marks;
  /// Distinct levels of each memory's kMemQ cells (write wake-up marks).
  std::vector<std::vector<std::uint32_t>> memq_marks;

  Emitter(const Netlist& n, unsigned lanes_arg)
      : nl(n),
        lanes(lanes_arg),
        lw(lanes_arg == 1 ? 1 : lanes_arg / 64),
        tm(lanes_arg == 1 ? std::uint64_t{1} : ~std::uint64_t{0}) {
    const std::size_t ncells = nl.cells().size();
    level_of = nl.topo_levels();
    for (const std::uint32_t l : level_of)
      if (l != kNoLevel) num_levels = std::max(num_levels, l + 1);
    by_level.resize(num_levels);
    for (NetId id = 0; id < ncells; ++id)
      if (level_of[id] != kNoLevel) by_level[level_of[id]].push_back(id);
    net_marks.resize(ncells);
    memq_marks.resize(nl.memories().size());
    for (NetId id = 0; id < ncells; ++id) {
      const Cell& c = nl.cells()[id];
      if (c.kind == CellKind::kMemQ) memq_marks[c.param].push_back(level_of[id]);
      if (c.kind == CellKind::kDff) continue;
      for (const NetId in : c.ins) net_marks[in].push_back(level_of[id]);
    }
    for (auto& m : net_marks) {
      std::sort(m.begin(), m.end());
      m.erase(std::unique(m.begin(), m.end()), m.end());
    }
    for (auto& m : memq_marks) {
      std::sort(m.begin(), m.end());
      m.erase(std::unique(m.begin(), m.end()), m.end());
    }
  }

  static std::string hex(std::uint64_t v) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "0x%llxull",
                  static_cast<unsigned long long>(v));
    return buf;
  }
  static std::string num(std::uint64_t v) { return std::to_string(v); }

  std::string LW() const { return num(lw); }
  std::string TM() const { return hex(tm); }

  /// Rows a port can actually address: the memory depth capped by the
  /// reach of its address bits.
  static std::uint64_t row_bound(std::uint64_t depth, std::size_t addr_bits) {
    if (addr_bits < 63)
      depth = std::min(depth, std::uint64_t{1} << addr_bits);
    return depth;
  }
  /// One-hot row masks win while the row sweep is small against the lane
  /// count (a scalar engine always gathers: one lane never beats a sweep).
  bool use_row_masks(std::uint64_t bound) const {
    return lanes > 1 && bound <= std::uint64_t{4} * lanes;
  }
  /// The flat `fv` sweep walks whole memory rows (width * LW contiguous
  /// words) in widest-ISA chunks against a cyclically replicated row
  /// mask, so the span must tile: lane words a power of two and the row
  /// span divisible by 8 (the widest FW any target tier picks), capped
  /// so the gather's stack accumulator stays small.
  bool flat_rows_ok(std::uint32_t width) const {
    const std::uint64_t span = std::uint64_t{width} * lw;
    return (lw & (lw - 1)) == 0 && span % 8 == 0 && span <= 2048;
  }
  /// Replicate each address net's lane words (and their complement)
  /// cyclically out to MR words, once per port, so per-row masks build
  /// with pure fv ops.  `arena` names the source array ("V" or "S"),
  /// `off(i)` its word offset for address bit i.
  template <typename OffsetFn>
  void emit_addr_reps(const char* indent, std::size_t addr_bits,
                      const char* arena, OffsetFn off) {
    for (std::size_t i = 0; i < addr_bits; ++i) {
      os << indent << "alignas(64) u64 ar" << i << "[MR], cr" << i
         << "[MR];\n";
      os << indent << "for (int k = 0; k < MR; ++k) { ar" << i << "[k] = "
         << arena << "[" << num(off(i)) << " + (k & " << (lw - 1)
         << ")]; cr" << i << "[k] = ~ar" << i << "[k]; }\n";
    }
  }
  /// The fv expression for one MR-chunk (`+ k`) of row `a`'s one-hot
  /// mask: AND of the matching replicated address (or complement)
  /// chunks, seeded with `seed` ("" = no seed; all-ones when n == 0).
  static std::string mask_chain(const std::string& seed, std::uint64_t a,
                                std::size_t addr_bits) {
    std::string e = seed;
    for (std::size_t i = 0; i < addr_bits; ++i) {
      std::string term = (a >> i) & 1 ? "fld(ar" : "fld(cr";
      term += num(i);
      term += " + k)";
      e = e.empty() ? std::move(term) : "f_and(" + e + ", " + term + ")";
    }
    return e.empty() ? "fbc(~0ull)" : e;
  }

  /// Chunk operand for an input net inside a fused `w` loop: constants
  /// 0/1 use the hoisted broadcast chunks, any other net loads its arena
  /// span at the loop cursor.
  std::string vop(NetId in) const {
    if (in == nl.const0()) return "vc0";
    if (in == nl.const1()) return "vc1";
    return "vld(V + " + num(std::uint64_t{in} * lw) + " + w)";
  }

  /// Dirty marks for a net's fanout levels; empty when none.
  std::string marks(NetId id) const {
    std::string m;
    for (const std::uint32_t l : net_marks[id]) m += " D[" + num(l) + "] = 1;";
    return m;
  }

  /// The store-only chunk expression for one logic cell ("" for kMemQ,
  /// which is emitted as a grouped read-port block).  Inverting forms
  /// fold the tail mask by xor (masking invariant: stored words only
  /// carry valid-lane bits).
  std::string vexpr(const Cell& c) const {
    const auto bin = [&](const char* op) {
      return std::string(op) + "(" + vop(c.ins[0]) + ", " + vop(c.ins[1]) +
             ")";
    };
    switch (c.kind) {
      case CellKind::kBuf: return vop(c.ins[0]);
      case CellKind::kInv: return "v_inv(" + vop(c.ins[0]) + ")";
      case CellKind::kAnd2: return bin("v_and");
      case CellKind::kOr2: return bin("v_or");
      case CellKind::kXor2: return bin("v_xor");
      case CellKind::kNand2: return bin("v_nand");
      case CellKind::kNor2: return bin("v_nor");
      case CellKind::kXnor2: return bin("v_xnor");
      case CellKind::kMux2:
        return "v_mux(" + vop(c.ins[0]) + ", " + vop(c.ins[1]) + ", " +
               vop(c.ins[2]) + ")";
      default: return "";
    }
  }

  /// Emit the one-hot address-match expression for row `a` over hoisted
  /// address words a0..a{n-1} into variable `var` seeded with `seed`.
  void emit_row_mask(const char* indent, const std::string& var,
                     const std::string& seed, std::uint64_t a,
                     std::size_t addr_bits) {
    os << indent << "u64 " << var << " = " << seed << ";\n";
    for (std::size_t i = 0; i < addr_bits; ++i)
      os << indent << var << " &= " << ((a >> i) & 1 ? "a" : "~a") << i
         << ";\n";
  }

  /// One grouped read port: every kMemQ cell sharing (mem, address nets).
  void emit_memq_group(const std::vector<NetId>& cells) {
    const Cell& c0 = nl.cells()[cells.front()];
    const MemMacro& m = nl.memories()[c0.param];
    const std::size_t n = c0.ins.size();
    const std::uint64_t bound = row_bound(m.depth, n);
    os << "    { // mem " << c0.param << " read port: depth " << m.depth
       << ", " << cells.size() << " tap(s)\n";
    os << "      const u64* mp = M[" << c0.param << "];\n";
    if (use_row_masks(bound) && flat_rows_ok(m.width) &&
        std::uint64_t{cells.size()} * 4 >= m.width) {
      // Flat row-mask gather: build each row's replicated one-hot mask
      // with pure fv ops over per-port replicated address chunks, then
      // accumulate the whole row into a local buffer — one chunk covers
      // several data bits across lane words.  This pins vectorization
      // the auto-vectorizer only sometimes finds and widens it past the
      // per-tap word.  Worth it only when taps cover a decent fraction
      // of the row (the sweep always reads the full width).  Dead-lane
      // garbage in the complemented chunks is confined by the memory
      // words (masking invariant).
      const std::uint64_t span = std::uint64_t{m.width} * lw;
      os << "      constexpr int MR = FW > L ? FW : L;\n";
      emit_addr_reps("      ", n, "V",
                     [&](std::size_t i) { return std::uint64_t{c0.ins[i]} * lw; });
      os << "      alignas(64) u64 mrep[MR];\n";
      os << "      alignas(64) u64 q[" << span << "] = {};\n";
      for (std::uint64_t a = 0; a < bound; ++a) {
        os << "      {\n";
        os << "        fv anyv = fbc(0x0ull);\n";
        os << "        for (int k = 0; k < MR; k += FW) {\n";
        os << "          const fv mk = " << mask_chain("", a, n) << ";\n";
        os << "          fst(mrep + k, mk); anyv = f_or(anyv, mk);\n";
        os << "        }\n";
        os << "        if (f_any(anyv)) {\n";
        os << "          const u64* r = mp + " << num(a * span) << "u;\n";
        os << "          for (int c = 0; c < " << span << "; c += FW)\n";
        os << "            fst(q + c, f_or(fld(q + c), "
              "f_and(fld(mrep + (c & (MR - 1))), fld(r + c))));\n";
        os << "        }\n";
        os << "      }\n";
      }
      for (std::size_t t = 0; t < cells.size(); ++t)
        os << "      j_cpy(V + " << num(std::uint64_t{cells[t]} * lw)
           << ", q + "
           << num(std::uint64_t{nl.cells()[cells[t]].param2} * lw) << ", "
           << lw << ");\n";
    } else if (use_row_masks(bound)) {
      // Row-mask gather: one sweep of the addressable rows per lane word
      // serves every tap; dead-lane garbage in the masks is confined by
      // the memory words (see masking invariant above).
      os << "      for (int w = 0; w < " << lw << "; ++w) {\n";
      for (std::size_t i = 0; i < n; ++i)
        os << "        const u64 a" << i << " = V["
           << num(std::uint64_t{c0.ins[i]} * lw) << " + w];\n";
      for (std::size_t t = 0; t < cells.size(); ++t)
        os << "        u64 q" << t << " = 0;\n";
      for (std::uint64_t a = 0; a < bound; ++a) {
        os << "        {\n";
        emit_row_mask("          ", "m", "~0ull", a, n);
        os << "          if (m) {\n";
        os << "            const u64* r = mp + "
           << num(a * m.width * lw) << "u + w;\n";
        for (std::size_t t = 0; t < cells.size(); ++t)
          os << "            q" << t << " |= m & r["
             << num(std::uint64_t{nl.cells()[cells[t]].param2} * lw)
             << "];\n";
        os << "          }\n";
        os << "        }\n";
      }
      for (std::size_t t = 0; t < cells.size(); ++t)
        os << "        V[" << num(std::uint64_t{cells[t]} * lw)
           << " + w] = q" << t << ";\n";
      os << "      }\n";
    } else {
      // Sparse per-lane gather: decode each lane's address once, then
      // probe one row for every tap.
      os << "      for (int l = 0; l < " << lanes << "; ++l) {\n";
      os << "        u64 a = 0;\n";
      for (std::size_t i = n; i-- > 0;)
        os << "        a = (a << 1) | ((V["
           << num(std::uint64_t{c0.ins[i]} * lw)
           << " + (l >> 6)] >> (l & 63)) & 1u);\n";
      os << "        const int w = l >> 6;\n";
      os << "        const u64 bm = 1ull << (l & 63);\n";
      os << "        if (a < " << m.depth << "u) {\n";
      os << "          const u64* r = mp + a * "
         << num(std::uint64_t{m.width} * lw) << "u + w;\n";
      for (std::size_t t = 0; t < cells.size(); ++t) {
        const std::string off = num(std::uint64_t{cells[t]} * lw);
        os << "          V[" << off << " + w] = (V[" << off
           << " + w] & ~bm) | (((r["
           << num(std::uint64_t{nl.cells()[cells[t]].param2} * lw)
           << "] >> (l & 63)) & 1u) << (l & 63));\n";
      }
      os << "        } else {\n";
      for (std::size_t t = 0; t < cells.size(); ++t)
        os << "          V[" << num(std::uint64_t{cells[t]} * lw)
           << " + w] &= ~bm;\n";
      os << "        }\n";
      os << "      }\n";
    }
    os << "    }\n";
  }

  void emit_eval() {
    os << "extern \"C\" void osss_gate_eval(u64* V, u64* const* M, "
          "unsigned char* D) {\n";
    os << "  (void)V; (void)M; (void)D;\n";
    if (num_levels == 0) {
      os << "}\n\n";
      return;
    }
    // One in-order sweep from the first dirty level settles everything
    // downstream of any marked change; a clean schedule costs only the
    // flag scan.
    os << "  int first = " << num_levels << ";\n";
    os << "  for (int i = 0; i < " << num_levels << "; ++i)\n";
    os << "    if (D[i]) { first = i; break; }\n";
    os << "  if (first >= " << num_levels << ") return;\n";
    os << "  for (int i = first; i < " << num_levels << "; ++i) D[i] = 0;\n";
    os << "  const vw vc0 = vbc(0x0ull); (void)vc0;\n";
    os << "  const vw vc1 = vbc(TM); (void)vc1;\n";
    for (std::uint32_t lev = 0; lev < num_levels; ++lev) {
      os << "  if (first <= " << lev << ") {\n";
      // Group this level's kMemQ cells by read port (shared mem + address
      // nets) and emit each group once, where its first tap appears.
      std::map<std::pair<std::uint32_t, std::vector<NetId>>,
               std::vector<NetId>>
          ports;
      std::vector<NetId> logic;
      for (const NetId id : by_level[lev]) {
        const Cell& c = nl.cells()[id];
        if (c.kind == CellKind::kMemQ)
          ports[{c.param, c.ins}].push_back(id);
        else
          logic.push_back(id);
      }
      for (const NetId id : by_level[lev]) {
        const Cell& c = nl.cells()[id];
        if (c.kind != CellKind::kMemQ) continue;
        const auto it = ports.find({c.param, c.ins});
        if (it != ports.end()) {
          emit_memq_group(it->second);
          ports.erase(it);
        }
      }
      // Same-level cells never read each other, so the whole level fuses
      // into one chunked loop: one bound check per VW lane words.
      if (!logic.empty()) {
        os << "    for (int w = 0; w < L; w += VW) {\n";
        for (const NetId id : logic)
          os << "      vst(V + " << num(std::uint64_t{id} * lw) << " + w, "
             << vexpr(nl.cells()[id]) << ");\n";
        os << "    }\n";
      }
      os << "  }\n";
    }
    os << "}\n\n";
  }

  /// Generated `osss_gate_step`: DFF/write-port sample + commit with
  /// offsets and dirty marks baked in, ending with an inline settle so one
  /// clock cycle is a single native call.  Commit order mirrors the
  /// engine's interpreted fallback exactly (that remains the no-JIT path).
  std::uint64_t compute_scratch(std::vector<std::uint64_t>& dff_at,
                                std::vector<std::uint64_t>& wp_at) const {
    std::uint64_t sat = 0;
    for (std::size_t i = 0; i < nl.cells().size(); ++i)
      if (nl.cells()[i].kind == CellKind::kDff) {
        dff_at.push_back(sat);
        sat += lw;
      }
    for (const MemMacro& m : nl.memories())
      for (const auto& w : m.writes) {
        wp_at.push_back(sat);
        sat += std::uint64_t{lw} * (1 + w.addr.size() + w.data.size());
      }
    return sat;
  }

  void emit_step(const std::vector<std::uint64_t>& dff_at,
                 const std::vector<std::uint64_t>& wp_at) {
    os << "extern \"C\" unsigned osss_gate_step(u64* V, u64* const* M, "
          "unsigned char* D, u64* S) {\n";
    os << "  (void)V; (void)M; (void)D; (void)S;\n";
    os << "  unsigned chg = 0; (void)chg;\n";
    // Pre-edge sample: every DFF and write port observes the settled
    // pre-clock values before any commit rewrites the arena.
    std::vector<NetId> dffs;
    for (NetId id = 0; id < nl.cells().size(); ++id)
      if (nl.cells()[id].kind == CellKind::kDff) dffs.push_back(id);
    for (std::size_t i = 0; i < dffs.size(); ++i)
      os << "  j_cpy(S + " << num(dff_at[i]) << ", V + "
         << num(std::uint64_t{nl.cells()[dffs[i]].ins[0]} * lw) << ", " << lw
         << ");\n";
    struct WpPlan {
      std::uint32_t mem;
      const MemMacro::WritePort* port;
      std::uint64_t en_at, addr_at, data_at;
    };
    std::vector<WpPlan> wps;
    {
      std::size_t wi = 0;
      for (std::uint32_t mi = 0; mi < nl.memories().size(); ++mi)
        for (const auto& w : nl.memories()[mi].writes) {
          const std::uint64_t at = wp_at[wi++];
          wps.push_back({mi, &w, at, at + lw,
                         at + lw * (1 + std::uint64_t{w.addr.size()})});
        }
    }
    for (const WpPlan& wp : wps) {
      os << "  if (j_snap(S + " << num(wp.en_at) << ", V + "
         << num(std::uint64_t{wp.port->enable} * lw) << ", " << lw
         << ")) {\n";
      for (std::size_t i = 0; i < wp.port->addr.size(); ++i)
        os << "    j_cpy(S + " << num(wp.addr_at + i * lw) << ", V + "
           << num(std::uint64_t{wp.port->addr[i]} * lw) << ", " << lw
           << ");\n";
      for (std::size_t i = 0; i < wp.port->data.size(); ++i)
        os << "    j_cpy(S + " << num(wp.data_at + i * lw) << ", V + "
           << num(std::uint64_t{wp.port->data[i]} * lw) << ", " << lw
           << ");\n";
      os << "  }\n";
    }
    // Commit DFFs.
    for (std::size_t i = 0; i < dffs.size(); ++i) {
      const std::string mk = marks(dffs[i]);
      os << "  { const u64 diff = j_stn(V + "
         << num(std::uint64_t{dffs[i]} * lw) << ", S + " << num(dff_at[i])
         << ", " << lw << "); if (diff) {" << mk << " chg = 1u; } }\n";
    }
    // Commit memory writes (port order = declaration order; later win).
    for (const WpPlan& wp : wps) {
      const MemMacro& m = nl.memories()[wp.mem];
      const std::size_t n = wp.port->addr.size();
      const std::uint64_t bound = row_bound(m.depth, n);
      std::string mk;
      for (const std::uint32_t l : memq_marks[wp.mem])
        mk += " D[" + num(l) + "] = 1;";
      os << "  { // mem " << wp.mem << " write port: depth " << m.depth
         << ", width " << m.width << "\n";
      os << "    u64 ch = 0;\n";
      if (use_row_masks(bound) && flat_rows_ok(m.width)) {
        // Flat row-mask merge: build each row's replicated select mask
        // (enable AND address match) with pure fv ops and merge whole
        // rows in fv chunks — one select/merge covers several data bits
        // across lane words.  Change detection rides along as a vector
        // accumulator reduced once per port.  sel is seeded from the
        // sampled enable chunks, so complemented address garbage never
        // escapes.
        const std::uint64_t span = std::uint64_t{m.width} * lw;
        std::string eany;
        for (unsigned w = 0; w < lw; ++w) {
          eany += w ? " | S[" : "S[";
          eany += num(wp.en_at + w);
          eany += "]";
        }
        os << "    if (" << eany << ") {\n";
        os << "      constexpr int MR = FW > L ? FW : L;\n";
        os << "      alignas(64) u64 enr[MR];\n";
        os << "      for (int k = 0; k < MR; ++k) enr[k] = S["
           << num(wp.en_at) << " + (k & " << (lw - 1) << ")];\n";
        emit_addr_reps("      ", n, "S",
                       [&](std::size_t i) { return wp.addr_at + i * lw; });
        os << "      alignas(64) u64 srep[MR];\n";
        os << "      fv chv = fbc(0x0ull);\n";
        os << "      u64* const mb = M[" << wp.mem << "];\n";
        os << "      const u64* const sd = S + " << num(wp.data_at) << ";\n";
        for (std::uint64_t a = 0; a < bound; ++a) {
          os << "      {\n";
          os << "        fv anyv = fbc(0x0ull);\n";
          os << "        for (int k = 0; k < MR; k += FW) {\n";
          os << "          const fv sk = " << mask_chain("fld(enr + k)", a, n)
             << ";\n";
          os << "          fst(srep + k, sk); anyv = f_or(anyv, sk);\n";
          os << "        }\n";
          os << "        if (f_any(anyv)) {\n";
          os << "          u64* e = mb + " << num(a * span) << "u;\n";
          os << "          for (int c = 0; c < " << span << "; c += FW) {\n";
          os << "            const fv sv = fld(srep + (c & (MR - 1)));\n";
          os << "            const fv ov = fld(e + c);\n";
          os << "            const fv nv = f_or(f_andn(sv, ov), "
                "f_and(sv, fld(sd + c)));\n";
          os << "            chv = f_or(chv, f_xor(nv, ov));\n";
          os << "            fst(e + c, nv);\n";
          os << "          }\n";
          os << "        }\n";
          os << "      }\n";
        }
        os << "      alignas(64) u64 chb[FW];\n";
        os << "      fst(chb, chv);\n";
        os << "      for (int k = 0; k < FW; ++k) ch |= chb[k];\n";
        os << "    }\n";
      } else if (use_row_masks(bound)) {
        // Row-mask merge: sel = enabled lanes writing row `a`; every data
        // bit merges with two word ops.  sel is confined by the sampled
        // enable word, so complemented address garbage never escapes.
        os << "    for (int w = 0; w < " << lw << "; ++w) {\n";
        os << "      const u64 en = S[" << num(wp.en_at) << " + w];\n";
        os << "      if (!en) continue;\n";
        for (std::size_t i = 0; i < n; ++i)
          os << "      const u64 a" << i << " = S["
             << num(wp.addr_at + i * lw) << " + w];\n";
        for (std::uint64_t a = 0; a < bound; ++a) {
          os << "      {\n";
          emit_row_mask("        ", "sel", "en", a, n);
          os << "        if (sel) {\n";
          os << "          u64* e = M[" << wp.mem << "] + "
             << num(a * m.width * lw) << "u + w;\n";
          os << "          const u64* s = S + " << num(wp.data_at)
             << " + w;\n";
          for (std::uint32_t b = 0; b < m.width; ++b) {
            const std::string off = num(std::uint64_t{b} * lw);
            os << "          { const u64 nw = (e[" << off
               << "] & ~sel) | (sel & s[" << off << "]); ch |= nw ^ e["
               << off << "]; e[" << off << "] = nw; }\n";
          }
          os << "        }\n";
          os << "      }\n";
        }
        os << "    }\n";
      } else {
        os << "    for (int l = 0; l < " << lanes << "; ++l) {\n";
        os << "      if (((S[" << num(wp.en_at)
           << " + (l >> 6)] >> (l & 63)) & 1u) == 0) continue;\n";
        os << "      u64 a = 0;\n";
        for (std::size_t i = n; i-- > 0;)
          os << "      a = (a << 1) | ((S[" << num(wp.addr_at + i * lw)
             << " + (l >> 6)] >> (l & 63)) & 1u);\n";
        os << "      if (a >= " << m.depth << "u) continue;\n";
        os << "      const u64 bm = 1ull << (l & 63);\n";
        os << "      u64* e = M[" << wp.mem << "] + a * "
           << num(std::uint64_t{m.width} * lw) << "u + (l >> 6);\n";
        os << "      const u64* s = S + " << num(wp.data_at)
           << " + (l >> 6);\n";
        os << "      for (unsigned b = 0; b < " << m.width << "u; ++b) {\n";
        os << "        const u64 nb = (s[b * " << lw
           << "u] >> (l & 63)) & 1u;\n";
        os << "        const u64 nw = (e[b * " << lw
           << "u] & ~bm) | (nb << (l & 63));\n";
        os << "        ch |= nw ^ e[b * " << lw << "u];\n";
        os << "        e[b * " << lw << "u] = nw;\n";
        os << "      }\n";
        os << "    }\n";
      }
      if (mk.empty())
        os << "    if (ch) chg = 1u;\n";
      else
        os << "    if (ch) {" << mk << " chg = 1u; }\n";
      os << "  }\n";
    }
    os << "  osss_gate_eval(V, M, D);\n";
    os << "  return chg;\n";
    os << "}\n";
  }

  std::string run() {
    os << jit::prelude_header();
    os << "constexpr int L = " << lw << ";\n";
    os << "constexpr u64 TM = " << TM() << ";\n";
    // Store-only chunk drivers: the suffix sweep recomputes every
    // downstream cell anyway, so the change-accumulating v_* drivers
    // would pay an xor/or reduction per word for nothing.
    os << jit::lane_ops_prelude(lw);
    // Flat widest-ISA drivers for whole-row memory sweeps (gather and
    // write commit) — independent of the vw lane-chunk tier.
    os << jit::flat_ops_prelude();
    os << jit::step_prelude();
    os << "}  // namespace\n\n";
    std::vector<std::uint64_t> dff_at, wp_at;
    const std::uint64_t scratch = compute_scratch(dff_at, wp_at);
    os << "extern \"C\" unsigned osss_gate_abi() { return 1u; }\n";
    os << "extern \"C\" unsigned osss_gate_lanes() { return " << lanes
       << "u; }\n";
    os << "extern \"C\" unsigned long long osss_gate_nets() { return "
       << nl.cells().size() << "ull; }\n";
    os << "extern \"C\" unsigned long long osss_gate_scratch() { return "
       << scratch << "ull; }\n\n";
    emit_eval();
    emit_step(dff_at, wp_at);
    return os.str();
  }
};

}  // namespace

std::string emit_netlist_cpp(const Netlist& nl, unsigned lanes) {
  if (lanes == 0) lanes = 64;
  if (lanes != 1 && (lanes % 64 != 0 || lanes > NativeEngine::kMaxLanes))
    throw std::invalid_argument(
        "gate::emit_netlist_cpp: lanes must be 1 or a multiple of 64 up to " +
        std::to_string(NativeEngine::kMaxLanes));
  return Emitter(nl, lanes).run();
}

}  // namespace osss::gate
