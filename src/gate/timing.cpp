#include "gate/timing.hpp"

#include <algorithm>
#include <sstream>

namespace osss::gate {

TimingReport analyze_timing(const Netlist& nl, const Library& lib) {
  const auto& cells = nl.cells();
  std::vector<double> arrival(cells.size(), 0.0);
  std::vector<NetId> pred(cells.size(), kInvalidNet);
  std::vector<std::size_t> depth(cells.size(), 0);

  // Sources.
  for (NetId id = 0; id < cells.size(); ++id) {
    switch (cells[id].kind) {
      case CellKind::kDff:
        arrival[id] = lib.dff_clk_to_q_ps;
        break;
      case CellKind::kInput:
      case CellKind::kConst0:
      case CellKind::kConst1:
        arrival[id] = 0.0;
        break;
      default:
        break;
    }
  }

  for (const NetId id : nl.topo_order()) {
    const Cell& c = cells[id];
    double worst = 0.0;
    NetId worst_in = kInvalidNet;
    for (const NetId in : c.ins) {
      if (arrival[in] > worst) {
        worst = arrival[in];
        worst_in = in;
      }
    }
    if (worst_in == kInvalidNet && !c.ins.empty()) worst_in = c.ins.front();
    const double delay = c.kind == CellKind::kMemQ ? lib.mem_read_delay_ps
                                                   : lib.spec(c.kind).delay_ps;
    arrival[id] = worst + delay;
    pred[id] = worst_in;
    depth[id] = (worst_in == kInvalidNet ? 0 : depth[worst_in]) + 1;
  }

  TimingReport report;
  report.area_ge = lib.area_of(nl);
  report.gates = nl.gate_count();
  report.dffs = nl.dff_count();

  NetId worst_net = kInvalidNet;
  auto consider = [&](NetId net, double slack_add, const std::string& what) {
    if (net == kInvalidNet) return;
    const double total = arrival[net] + slack_add;
    if (total > report.critical_path_ps) {
      report.critical_path_ps = total;
      report.endpoint = what;
      worst_net = net;
    }
  };

  for (NetId id = 0; id < cells.size(); ++id) {
    const Cell& c = cells[id];
    if (c.kind == CellKind::kDff && !c.ins.empty())
      consider(c.ins[0], lib.dff_setup_ps, "dff " + c.name);
  }
  for (const MemMacro& m : nl.memories()) {
    for (const auto& w : m.writes) {
      for (const NetId n : w.addr) consider(n, lib.mem_setup_ps, "mem " + m.name);
      for (const NetId n : w.data) consider(n, lib.mem_setup_ps, "mem " + m.name);
      consider(w.enable, lib.mem_setup_ps, "mem " + m.name);
    }
  }
  for (const Bus& bus : nl.outputs()) {
    for (const NetId n : bus.nets) consider(n, 0.0, "output " + bus.name);
  }

  if (report.critical_path_ps > 0.0) {
    report.fmax_mhz = 1.0e6 / report.critical_path_ps;
  } else {
    report.fmax_mhz = 1.0e6;  // purely wire-level design
  }
  for (NetId n = worst_net; n != kInvalidNet; n = pred[n]) {
    report.critical_path.push_back(n);
    if (report.critical_path.size() > cells.size()) break;  // defensive
  }
  std::reverse(report.critical_path.begin(), report.critical_path.end());
  if (worst_net != kInvalidNet) report.levels = depth[worst_net];
  report.arrival = std::move(arrival);
  return report;
}

std::string format_report(const std::string& design, const TimingReport& r) {
  std::ostringstream os;
  os << design << ": area=" << static_cast<long>(r.area_ge + 0.5)
     << " GE, gates=" << r.gates << ", dffs=" << r.dffs
     << ", critical=" << static_cast<long>(r.critical_path_ps + 0.5)
     << " ps (" << r.levels << " levels), fmax=" << static_cast<long>(r.fmax_mhz)
     << " MHz, endpoint=" << r.endpoint;
  return os.str();
}

}  // namespace osss::gate
