// library.hpp — generic standard-cell library: area and delay per cell.
//
// The paper's netlists were mapped to a commercial ASIC library we do not
// have; this generic library provides plausible mid-2000s (130 nm-class)
// numbers so area is reported in gate equivalents (GE, 1 GE = one NAND2)
// and timing in picoseconds.  Absolute values are not the point — the
// area/frequency *comparison* between the OSSS and VHDL flows is.

#pragma once

#include <map>

#include "gate/netlist.hpp"

namespace osss::gate {

struct CellSpec {
  double area_ge = 0.0;   ///< area in gate equivalents
  double delay_ps = 0.0;  ///< pin-to-pin propagation delay
};

class Library {
public:
  /// The default generic library used by every experiment.
  static Library generic();

  const CellSpec& spec(CellKind kind) const { return specs_.at(kind); }

  double dff_area_ge = 6.0;
  double dff_setup_ps = 100.0;
  double dff_clk_to_q_ps = 150.0;

  /// Macro memory model: area per bit plus fixed overhead; asynchronous
  /// read access time; address/data setup before the write edge.
  double mem_area_per_bit_ge = 0.25;
  double mem_area_overhead_ge = 200.0;
  double mem_read_delay_ps = 900.0;
  double mem_setup_ps = 250.0;

  /// Total mapped area of a netlist in gate equivalents.
  double area_of(const Netlist& n) const;

private:
  std::map<CellKind, CellSpec> specs_;
};

}  // namespace osss::gate
