// timing.hpp — static timing analysis over a mapped netlist.
//
// Computes per-net arrival times from clocked sources (DFF Q, primary
// inputs, memory read data) through the combinational network, and the
// worst register-to-register / register-to-memory / register-to-output
// path.  From that the maximum clock frequency is derived — the number the
// paper compares between the OSSS and VHDL flows ("the frequency of the
// achieved in OSSS design is below the frequency in the VHDL flow").

#pragma once

#include <string>
#include <vector>

#include "gate/library.hpp"
#include "gate/netlist.hpp"

namespace osss::gate {

struct TimingReport {
  double critical_path_ps = 0.0;  ///< including launch clk->q and setup
  double fmax_mhz = 0.0;
  double area_ge = 0.0;
  std::size_t gates = 0;
  std::size_t dffs = 0;
  std::size_t levels = 0;             ///< logic depth of the worst path
  std::vector<NetId> critical_path;   ///< nets on the worst path, launch->capture
  std::string endpoint;               ///< description of the capture point
  std::vector<double> arrival;        ///< per-net arrival time [ps], by NetId

  /// True when the design closes timing at `clock_mhz`.
  bool meets(double clock_mhz) const { return fmax_mhz >= clock_mhz; }
};

/// Run STA.  The netlist must be validated (acyclic).
TimingReport analyze_timing(const Netlist& nl, const Library& lib);

/// One-line formatted summary used by the experiment reports.
std::string format_report(const std::string& design, const TimingReport& r);

}  // namespace osss::gate
