#include "gate/netlist.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace osss::gate {

namespace {
[[noreturn]] void bad(const std::string& name, const std::string& msg) {
  throw std::logic_error("gate::Netlist " + name + ": " + msg);
}

std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  return h;
}
}  // namespace

const char* cell_kind_name(CellKind k) {
  switch (k) {
    case CellKind::kConst0: return "const0";
    case CellKind::kConst1: return "const1";
    case CellKind::kInput: return "input";
    case CellKind::kBuf: return "buf";
    case CellKind::kInv: return "inv";
    case CellKind::kAnd2: return "and2";
    case CellKind::kOr2: return "or2";
    case CellKind::kNand2: return "nand2";
    case CellKind::kNor2: return "nor2";
    case CellKind::kXor2: return "xor2";
    case CellKind::kXnor2: return "xnor2";
    case CellKind::kMux2: return "mux2";
    case CellKind::kDff: return "dff";
    case CellKind::kMemQ: return "memq";
  }
  return "?";
}

std::vector<NetId> Netlist::add_input(const std::string& name,
                                      unsigned width) {
  Bus bus;
  bus.name = name;
  for (unsigned i = 0; i < width; ++i) {
    Cell c;
    c.kind = CellKind::kInput;
    c.name = name + "[" + std::to_string(i) + "]";
    cells_.push_back(std::move(c));
    bus.nets.push_back(static_cast<NetId>(cells_.size() - 1));
  }
  inputs_.push_back(bus);
  return inputs_.back().nets;
}

void Netlist::add_output(const std::string& name, std::vector<NetId> nets) {
  for (const NetId n : nets) {
    if (n >= cells_.size()) bad(name_, "output references unknown net");
  }
  outputs_.push_back(Bus{name, std::move(nets)});
}

NetId Netlist::emit(CellKind kind, std::vector<NetId> ins) {
  Cell c;
  c.kind = kind;
  c.ins = std::move(ins);
  cells_.push_back(std::move(c));
  return static_cast<NetId>(cells_.size() - 1);
}

NetId Netlist::strash_lookup(CellKind kind, const std::vector<NetId>& ins) {
  std::uint64_t h = static_cast<std::uint64_t>(kind);
  for (const NetId n : ins) h = mix(h, n);
  auto& bucket = strash_[h];
  for (const NetId cand : bucket) {
    const Cell& c = cells_[cand];
    if (c.kind == kind && c.ins == ins) return cand;
  }
  // Not found: create and remember.
  Cell c;
  c.kind = kind;
  c.ins = ins;
  cells_.push_back(std::move(c));
  const NetId id = static_cast<NetId>(cells_.size() - 1);
  bucket.push_back(id);
  return id;
}

NetId Netlist::inv(NetId a) {
  if (a == const0()) return const1();
  if (a == const1()) return const0();
  if (cells_[a].kind == CellKind::kInv) return cells_[a].ins[0];
  return strash_lookup(CellKind::kInv, {a});
}

NetId Netlist::and2(NetId a, NetId b) {
  if (a > b) std::swap(a, b);  // canonical order (commutative)
  if (a == const0()) return const0();
  if (a == const1()) return b;
  if (a == b) return a;
  // a == ~b or b == ~a -> 0
  if (cells_[b].kind == CellKind::kInv && cells_[b].ins[0] == a)
    return const0();
  if (cells_[a].kind == CellKind::kInv && cells_[a].ins[0] == b)
    return const0();
  return strash_lookup(CellKind::kAnd2, {a, b});
}

NetId Netlist::or2(NetId a, NetId b) {
  if (a > b) std::swap(a, b);
  if (a == const0()) return b;
  if (a == const1()) return const1();
  if (a == b) return a;
  if (cells_[b].kind == CellKind::kInv && cells_[b].ins[0] == a)
    return const1();
  if (cells_[a].kind == CellKind::kInv && cells_[a].ins[0] == b)
    return const1();
  return strash_lookup(CellKind::kOr2, {a, b});
}

NetId Netlist::xor2(NetId a, NetId b) {
  if (a > b) std::swap(a, b);
  if (a == const0()) return b;
  if (a == const1()) return inv(b);
  if (a == b) return const0();
  if (cells_[b].kind == CellKind::kInv && cells_[b].ins[0] == a)
    return const1();
  return strash_lookup(CellKind::kXor2, {a, b});
}

NetId Netlist::mux2(NetId sel, NetId t, NetId e) {
  if (sel == const1()) return t;
  if (sel == const0()) return e;
  if (t == e) return t;
  if (t == const1() && e == const0()) return sel;
  if (t == const0() && e == const1()) return inv(sel);
  if (e == const0()) return and2(sel, t);
  if (t == const0()) return and2(inv(sel), e);
  if (t == const1()) return or2(sel, e);
  if (e == const1()) return or2(inv(sel), t);
  // Absorption: mux(s1, t, mux(s2, t, e)) == mux(s1|s2, t, e) — collapses
  // the per-state datapath selection chains behavioral synthesis emits.
  if (cells_[e].kind == CellKind::kMux2 && cells_[e].ins[1] == t)
    return mux2(or2(sel, cells_[e].ins[0]), t, cells_[e].ins[2]);
  return strash_lookup(CellKind::kMux2, {sel, t, e});
}

NetId Netlist::dff(const std::string& name, bool init) {
  Cell c;
  c.kind = CellKind::kDff;
  c.init = init;
  c.name = name;
  cells_.push_back(std::move(c));
  return static_cast<NetId>(cells_.size() - 1);
}

void Netlist::connect_dff(NetId q, NetId d) {
  if (q >= cells_.size() || cells_[q].kind != CellKind::kDff)
    bad(name_, "connect_dff on non-dff net");
  if (!cells_[q].ins.empty()) bad(name_, "dff connected twice");
  if (d >= cells_.size()) bad(name_, "dff D references unknown net");
  cells_[q].ins.push_back(d);
}

unsigned Netlist::add_memory(const std::string& name, unsigned depth,
                             unsigned width) {
  MemMacro m;
  m.name = name;
  m.depth = depth;
  m.width = width;
  mems_.push_back(std::move(m));
  return static_cast<unsigned>(mems_.size() - 1);
}

std::vector<NetId> Netlist::mem_read(unsigned mem,
                                     const std::vector<NetId>& addr) {
  const MemMacro& m = mems_.at(mem);
  std::vector<NetId> out;
  out.reserve(m.width);
  for (unsigned b = 0; b < m.width; ++b) {
    Cell c;
    c.kind = CellKind::kMemQ;
    c.ins = addr;
    c.param = mem;
    c.param2 = b;
    cells_.push_back(std::move(c));
    out.push_back(static_cast<NetId>(cells_.size() - 1));
  }
  return out;
}

void Netlist::mem_write(unsigned mem, std::vector<NetId> addr,
                        std::vector<NetId> data, NetId enable) {
  MemMacro& m = mems_.at(mem);
  if (data.size() != m.width) bad(name_, "mem_write data width");
  m.writes.push_back({std::move(addr), std::move(data), enable});
}

NetId Netlist::raw_gate(CellKind kind, std::vector<NetId> ins) {
  std::size_t arity = 0;
  switch (kind) {
    case CellKind::kBuf:
    case CellKind::kInv: arity = 1; break;
    case CellKind::kAnd2:
    case CellKind::kOr2:
    case CellKind::kNand2:
    case CellKind::kNor2:
    case CellKind::kXor2:
    case CellKind::kXnor2: arity = 2; break;
    case CellKind::kMux2: arity = 3; break;
    default: bad(name_, "raw_gate: not a logic cell kind");
  }
  if (ins.size() != arity) bad(name_, "raw_gate: arity mismatch");
  for (const NetId in : ins) {
    if (in == kInvalidNet || in >= cells_.size())
      bad(name_, "raw_gate: unknown input net");
  }
  return strash_lookup(kind, ins);
}

NetId Netlist::mem_read_bit(unsigned mem, std::vector<NetId> addr,
                            unsigned bit) {
  const MemMacro& m = mems_.at(mem);
  if (bit >= m.width) bad(name_, "mem_read_bit: bit out of range");
  Cell c;
  c.kind = CellKind::kMemQ;
  c.ins = std::move(addr);
  c.param = mem;
  c.param2 = bit;
  cells_.push_back(std::move(c));
  return static_cast<NetId>(cells_.size() - 1);
}

void Netlist::replace_net(NetId from, NetId to) {
  if (from >= cells_.size() || to >= cells_.size())
    bad(name_, "replace_net: unknown net");
  if (from == to) return;
  for (Cell& c : cells_)
    for (NetId& in : c.ins)
      if (in == from) in = to;
  for (MemMacro& m : mems_) {
    for (auto& w : m.writes) {
      for (NetId& n : w.addr)
        if (n == from) n = to;
      for (NetId& n : w.data)
        if (n == from) n = to;
      if (w.enable == from) w.enable = to;
    }
  }
  for (Bus& bus : outputs_)
    for (NetId& n : bus.nets)
      if (n == from) n = to;
  strash_.clear();  // hashed shapes are stale after rewiring
}

void Netlist::rebind_input(const std::string& name,
                           const std::vector<NetId>& nets) {
  for (std::size_t bi = 0; bi < inputs_.size(); ++bi) {
    if (inputs_[bi].name != name) continue;
    const Bus bus = inputs_[bi];
    if (bus.nets.size() != nets.size())
      bad(name_, "rebind_input width mismatch on " + name);
    // Rewire every consumer of the old input bits.
    for (Cell& c : cells_) {
      for (NetId& in : c.ins) {
        for (std::size_t i = 0; i < bus.nets.size(); ++i) {
          if (in == bus.nets[i]) in = nets[i];
        }
      }
    }
    for (MemMacro& m : mems_) {
      for (auto& w : m.writes) {
        auto rewire = [&](NetId& n) {
          for (std::size_t i = 0; i < bus.nets.size(); ++i)
            if (n == bus.nets[i]) n = nets[i];
        };
        for (NetId& n : w.addr) rewire(n);
        for (NetId& n : w.data) rewire(n);
        rewire(w.enable);
      }
    }
    for (Bus& out : outputs_) {
      for (NetId& n : out.nets) {
        for (std::size_t i = 0; i < bus.nets.size(); ++i)
          if (n == bus.nets[i]) n = nets[i];
      }
    }
    inputs_.erase(inputs_.begin() + static_cast<std::ptrdiff_t>(bi));
    strash_.clear();  // structural identities changed
    return;
  }
  bad(name_, "rebind_input: no input named " + name);
}

std::map<std::string, std::vector<NetId>> Netlist::instantiate(
    const Netlist& ip, const std::string& instance_name,
    const std::map<std::string, std::vector<NetId>>& bindings) {
  // Map IP nets to nets of this netlist.  IP cells are copied verbatim —
  // the point of netlist-level IP integration is that the IP is *not*
  // re-synthesized.
  std::vector<NetId> remap(ip.cells_.size(), kInvalidNet);
  remap[0] = const0();
  remap[1] = const1();
  for (const Bus& bus : ip.inputs_) {
    const auto it = bindings.find(bus.name);
    if (it == bindings.end())
      bad(name_, "instantiate: unbound IP input " + bus.name);
    if (it->second.size() != bus.nets.size())
      bad(name_, "instantiate: width mismatch on IP input " + bus.name);
    for (std::size_t i = 0; i < bus.nets.size(); ++i)
      remap[bus.nets[i]] = it->second[i];
  }
  const unsigned mem_base = static_cast<unsigned>(mems_.size());
  for (const MemMacro& m : ip.mems_) {
    MemMacro copy = m;
    copy.name = instance_name + "." + m.name;
    copy.writes.clear();
    mems_.push_back(std::move(copy));
  }
  for (NetId id = 2; id < ip.cells_.size(); ++id) {
    const Cell& c = ip.cells_[id];
    if (c.kind == CellKind::kInput) continue;  // bound above
    Cell copy = c;
    if (!copy.name.empty()) copy.name = instance_name + "." + copy.name;
    if (copy.kind == CellKind::kMemQ) copy.param += mem_base;
    for (NetId& in : copy.ins) {
      if (remap[in] == kInvalidNet)
        bad(name_, "instantiate: forward net reference in IP");
      in = remap[in];
    }
    cells_.push_back(std::move(copy));
    remap[id] = static_cast<NetId>(cells_.size() - 1);
  }
  for (std::size_t mi = 0; mi < ip.mems_.size(); ++mi) {
    for (const auto& w : ip.mems_[mi].writes) {
      MemMacro::WritePort port;
      for (const NetId n : w.addr) port.addr.push_back(remap[n]);
      for (const NetId n : w.data) port.data.push_back(remap[n]);
      port.enable = remap[w.enable];
      mems_[mem_base + mi].writes.push_back(std::move(port));
    }
  }
  std::map<std::string, std::vector<NetId>> outs;
  for (const Bus& bus : ip.outputs_) {
    std::vector<NetId> nets;
    for (const NetId n : bus.nets) nets.push_back(remap[n]);
    outs[bus.name] = std::move(nets);
  }
  return outs;
}

std::map<CellKind, std::size_t> Netlist::cell_histogram() const {
  std::map<CellKind, std::size_t> h;
  for (const Cell& c : cells_) ++h[c.kind];
  return h;
}

std::size_t Netlist::dff_count() const {
  std::size_t n = 0;
  for (const Cell& c : cells_)
    if (c.kind == CellKind::kDff) ++n;
  return n;
}

std::size_t Netlist::gate_count() const {
  std::size_t n = 0;
  for (const Cell& c : cells_) {
    switch (c.kind) {
      case CellKind::kConst0:
      case CellKind::kConst1:
      case CellKind::kInput:
      case CellKind::kDff:
      case CellKind::kMemQ:
        break;
      default:
        ++n;
    }
  }
  return n;
}

std::vector<NetId> Netlist::topo_order() const {
  std::vector<unsigned> pending(cells_.size(), 0);
  std::vector<std::vector<NetId>> users(cells_.size());
  auto is_source = [&](NetId id) {
    const CellKind k = cells_[id].kind;
    return k == CellKind::kConst0 || k == CellKind::kConst1 ||
           k == CellKind::kInput || k == CellKind::kDff;
  };
  for (NetId id = 0; id < cells_.size(); ++id) {
    if (is_source(id)) continue;
    for (const NetId in : cells_[id].ins) {
      if (is_source(in)) continue;  // sequential/primary boundary
      users[in].push_back(id);
      ++pending[id];
    }
  }
  std::vector<NetId> ready;
  std::vector<NetId> order;
  std::size_t comb_total = 0;
  for (NetId id = 0; id < cells_.size(); ++id) {
    if (is_source(id)) continue;
    ++comb_total;
    if (pending[id] == 0) ready.push_back(id);
  }
  while (!ready.empty()) {
    const NetId id = ready.back();
    ready.pop_back();
    order.push_back(id);
    for (const NetId u : users[id])
      if (--pending[u] == 0) ready.push_back(u);
  }
  if (order.size() != comb_total) bad(name_, "combinational cycle");
  return order;
}

std::vector<std::uint32_t> Netlist::topo_levels() const {
  std::vector<std::uint32_t> level(cells_.size(), kNoLevel);
  for (const NetId id : topo_order()) {
    std::uint32_t lvl = 0;
    for (const NetId in : cells_[id].ins)
      if (level[in] != kNoLevel) lvl = std::max(lvl, level[in] + 1);
    level[id] = lvl;
  }
  return level;
}

void Netlist::mutate_cell(NetId id, CellKind new_kind) {
  if (id >= cells_.size()) bad(name_, "mutate_cell: bad net id");
  auto arity = [this](CellKind k) -> int {
    switch (k) {
      case CellKind::kBuf:
      case CellKind::kInv: return 1;
      case CellKind::kAnd2:
      case CellKind::kOr2:
      case CellKind::kNand2:
      case CellKind::kNor2:
      case CellKind::kXor2:
      case CellKind::kXnor2: return 2;
      case CellKind::kMux2: return 3;
      default: bad(name_, "mutate_cell: not a logic cell"); return -1;
    }
  };
  if (arity(cells_[id].kind) != arity(new_kind))
    bad(name_, "mutate_cell: arity mismatch");
  cells_[id].kind = new_kind;
  strash_.clear();  // hashed shapes are stale after mutation
}

void Netlist::validate() const {
  for (NetId id = 0; id < cells_.size(); ++id) {
    const Cell& c = cells_[id];
    for (const NetId in : c.ins) {
      if (in == kInvalidNet || in >= cells_.size())
        bad(name_, "dangling net reference");
    }
    if (c.kind == CellKind::kDff && c.ins.size() != 1)
      bad(name_, "dff '" + c.name + "' has unconnected D");
    if (c.kind == CellKind::kMemQ && c.param >= mems_.size())
      bad(name_, "memq references unknown memory");
  }
  for (const MemMacro& m : mems_) {
    for (const auto& w : m.writes) {
      if (w.enable == kInvalidNet || w.data.size() != m.width)
        bad(name_, "memory write port malformed");
    }
  }
  (void)topo_order();
}

std::size_t Netlist::sweep() {
  validate();
  std::vector<bool> keep(cells_.size(), false);
  std::vector<NetId> work;
  auto mark = [&](NetId n) {
    if (!keep[n]) {
      keep[n] = true;
      work.push_back(n);
    }
  };
  mark(const0());
  mark(const1());
  for (const Bus& bus : outputs_)
    for (const NetId n : bus.nets) mark(n);
  // Inputs are part of the interface: always kept.
  for (const Bus& bus : inputs_)
    for (const NetId n : bus.nets) keep[n] = true;
  std::vector<bool> mem_used(mems_.size(), false);
  while (!work.empty()) {
    const NetId id = work.back();
    work.pop_back();
    const Cell& c = cells_[id];
    for (const NetId in : c.ins) mark(in);
    if (c.kind == CellKind::kMemQ && !mem_used[c.param]) {
      mem_used[c.param] = true;
      for (const auto& w : mems_[c.param].writes) {
        for (const NetId n : w.addr) mark(n);
        for (const NetId n : w.data) mark(n);
        mark(w.enable);
      }
    }
  }
  // Compact.
  std::vector<NetId> remap(cells_.size(), kInvalidNet);
  std::vector<Cell> kept;
  kept.reserve(cells_.size());
  for (NetId id = 0; id < cells_.size(); ++id) {
    if (keep[id]) {
      remap[id] = static_cast<NetId>(kept.size());
      kept.push_back(std::move(cells_[id]));
    }
  }
  const std::size_t removed = cells_.size() - kept.size();
  for (Cell& c : kept)
    for (NetId& in : c.ins) in = remap[in];
  cells_ = std::move(kept);
  for (Bus& bus : inputs_)
    for (NetId& n : bus.nets) n = remap[n];
  for (Bus& bus : outputs_)
    for (NetId& n : bus.nets) n = remap[n];
  for (std::size_t mi = 0; mi < mems_.size(); ++mi) {
    if (!mem_used[mi]) {
      mems_[mi].writes.clear();  // dead memory keeps no logic alive
      continue;
    }
    for (auto& w : mems_[mi].writes) {
      for (NetId& n : w.addr) n = remap[n];
      for (NetId& n : w.data) n = remap[n];
      w.enable = remap[w.enable];
    }
  }
  strash_.clear();  // ids changed; further strash would be wrong
  return removed;
}

std::string Netlist::dump() const {
  std::ostringstream os;
  os << "netlist " << name_ << "\n";
  for (NetId id = 0; id < cells_.size(); ++id) {
    const Cell& c = cells_[id];
    os << "  n" << id << " = " << cell_kind_name(c.kind);
    for (const NetId in : c.ins) os << " n" << in;
    if (!c.name.empty()) os << " \"" << c.name << "\"";
    os << "\n";
  }
  return os.str();
}

}  // namespace osss::gate
