// equiv.cpp — gate::check_equivalence as a thin wrapper over verify::CoSim.
//
// The historical bespoke lockstep loop is gone: both netlists are attached
// to one co-simulation (each on its requested engine) and scored by the
// shared scoreboard.  This file lives in the verify library because the
// co-sim depends on the gate library; the public interface stays
// gate/equiv.hpp.

#include "gate/equiv.hpp"

#include <atomic>
#include <memory>
#include <sstream>

#include "par/pool.hpp"
#include "verify/cosim.hpp"
#include "verify/stimgen.hpp"

namespace osss::gate {

namespace {

std::string interface_of(const Netlist& n) {
  std::ostringstream os;
  for (const Bus& bus : n.inputs())
    os << "i:" << bus.name << ":" << bus.nets.size() << ";";
  for (const Bus& bus : n.outputs())
    os << "o:" << bus.name << ":" << bus.nets.size() << ";";
  return os.str();
}

}  // namespace

std::uint64_t derive_equiv_seed(const Netlist& a, const Netlist& b) {
  return verify::StimGen::derive(0x0551e9u, a.name() + "|" + b.name());
}

EquivResult check_equivalence(const Netlist& a, const Netlist& b,
                              const EquivOptions& opt) {
  EquivResult result;
  if (interface_of(a) != interface_of(b)) {
    result.counterexample = "interface mismatch: [" + interface_of(a) +
                            "] vs [" + interface_of(b) + "]";
    return result;
  }

  result.seed = opt.seed != 0 ? opt.seed : derive_equiv_seed(a, b);
  if (opt.sequences == 0) {
    result.equivalent = true;
    return result;
  }

  // Every sequence is an independent shard: its own pair of gate models,
  // its own derived seed.  Shards run on the pool; once some shard fails,
  // shards with a HIGHER index may be skipped (their vectors can never be
  // part of the deterministic result), but every shard at or below the
  // lowest failing index always runs, so verdict, counterexample and
  // cycles_checked are identical for any thread count.
  const unsigned seqs = opt.sequences;
  std::atomic<unsigned> first_fail{seqs};

  struct SeqOut {
    verify::RunResult run;
    bool ran = false;
  };

  const auto run_shard = [&](std::size_t s) {
    SeqOut out;
    if (static_cast<unsigned>(s) > first_fail.load(std::memory_order_acquire))
      return out;
    verify::CoSim cs;
    cs.add(std::make_unique<verify::GateModel>(
        a, opt.mode_a, opt.mode_a == SimMode::kNative ? opt.lanes : 0,
        opt.codegen, "a"));
    cs.add(std::make_unique<verify::GateModel>(
        b, opt.mode_b, opt.mode_b == SimMode::kNative ? opt.lanes : 0,
        opt.codegen, "b"));
    cs.declare_io(a);
    verify::StimGen gen(verify::StimGen::derive(
        result.seed, "seq/" + std::to_string(s)));
    cs.declare_stimulus(gen);
    out.run = cs.run(gen, opt.cycles, 1);
    out.ran = true;
    if (!out.run.ok) {
      unsigned cur = first_fail.load(std::memory_order_relaxed);
      while (static_cast<unsigned>(s) < cur &&
             !first_fail.compare_exchange_weak(cur, static_cast<unsigned>(s),
                                               std::memory_order_acq_rel))
        ;
    }
    return out;
  };

  std::unique_ptr<par::Pool> own;
  if (opt.threads != 0) own = std::make_unique<par::Pool>(opt.threads);
  par::Pool& pool = own ? *own : par::Pool::global();
  const std::vector<SeqOut> outs =
      pool.parallel_map<SeqOut>(seqs, run_shard);

  unsigned fail = seqs;
  for (unsigned s = 0; s < seqs; ++s)
    if (outs[s].ran && !outs[s].run.ok) {
      fail = s;
      break;
    }
  for (unsigned s = 0; s < seqs && s <= fail; ++s)
    if (outs[s].ran) result.cycles_checked += outs[s].run.vectors;
  if (fail == seqs) {
    result.equivalent = true;
    return result;
  }

  // A side contributes lanes when bit-parallel or native at <= 64 lanes
  // (wider native sims join as scalar broadcast models).
  const auto side_wide = [&](SimMode m) {
    if (m == SimMode::kBitParallel) return true;
    if (m != SimMode::kNative) return false;
    const unsigned l = opt.lanes == 0 ? Simulator::kLanes : opt.lanes;
    return l > 1 && l <= 64;
  };
  const bool lanes = side_wide(opt.mode_a) && side_wide(opt.mode_b);
  verify::Mismatch mismatch = outs[fail].run.mismatch;
  mismatch.sequence = fail;
  std::vector<verify::IoDecl> decls;
  for (const Bus& bus : a.inputs())
    decls.push_back(
        verify::IoDecl{bus.name, static_cast<unsigned>(bus.nets.size())});
  std::ostringstream os;
  os << mismatch.describe(decls, lanes) << "(seed " << result.seed << ")";
  result.counterexample = os.str();
  return result;
}

EquivResult check_equivalence(const Netlist& a, const Netlist& b,
                              unsigned sequences, unsigned cycles,
                              std::uint64_t seed, SimMode mode) {
  EquivOptions opt;
  opt.sequences = sequences;
  opt.cycles = cycles;
  opt.seed = seed;
  opt.mode_a = mode;
  opt.mode_b = mode;
  return check_equivalence(a, b, opt);
}

}  // namespace osss::gate
