// equiv.cpp — gate::check_equivalence as a thin wrapper over verify::CoSim.
//
// The historical bespoke lockstep loop is gone: both netlists are attached
// to one co-simulation (each on its requested engine) and scored by the
// shared scoreboard.  This file lives in the verify library because the
// co-sim depends on the gate library; the public interface stays
// gate/equiv.hpp.

#include "gate/equiv.hpp"

#include <sstream>

#include "verify/cosim.hpp"
#include "verify/stimgen.hpp"

namespace osss::gate {

namespace {

std::string interface_of(const Netlist& n) {
  std::ostringstream os;
  for (const Bus& bus : n.inputs())
    os << "i:" << bus.name << ":" << bus.nets.size() << ";";
  for (const Bus& bus : n.outputs())
    os << "o:" << bus.name << ":" << bus.nets.size() << ";";
  return os.str();
}

}  // namespace

std::uint64_t derive_equiv_seed(const Netlist& a, const Netlist& b) {
  return verify::StimGen::derive(0x0551e9u, a.name() + "|" + b.name());
}

EquivResult check_equivalence(const Netlist& a, const Netlist& b,
                              const EquivOptions& opt) {
  EquivResult result;
  if (interface_of(a) != interface_of(b)) {
    result.counterexample = "interface mismatch: [" + interface_of(a) +
                            "] vs [" + interface_of(b) + "]";
    return result;
  }

  verify::CoSim cs;
  cs.add(std::make_unique<verify::GateModel>(a, opt.mode_a, "a"));
  cs.add(std::make_unique<verify::GateModel>(b, opt.mode_b, "b"));
  cs.declare_io(a);

  result.seed = opt.seed != 0 ? opt.seed : derive_equiv_seed(a, b);
  verify::StimGen gen(result.seed);
  cs.declare_stimulus(gen);

  const verify::RunResult run = cs.run(gen, opt.cycles, opt.sequences);
  result.cycles_checked = run.vectors;
  if (run.ok) {
    result.equivalent = true;
    return result;
  }
  const bool lanes = opt.mode_a == SimMode::kBitParallel &&
                     opt.mode_b == SimMode::kBitParallel;
  std::ostringstream os;
  os << run.mismatch.describe(cs.inputs(), lanes) << "(seed " << result.seed
     << ")";
  result.counterexample = os.str();
  return result;
}

EquivResult check_equivalence(const Netlist& a, const Netlist& b,
                              unsigned sequences, unsigned cycles,
                              std::uint64_t seed, SimMode mode) {
  EquivOptions opt;
  opt.sequences = sequences;
  opt.cycles = cycles;
  opt.seed = seed;
  opt.mode_a = mode;
  opt.mode_b = mode;
  return check_equivalence(a, b, opt);
}

}  // namespace osss::gate
