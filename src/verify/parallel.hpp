// parallel.hpp — sharded fuzz campaigns across the work-stealing pool.
//
// A fuzz campaign splits into independent shards: shard i gets its own
// co-simulation (from a user factory) and its own StimGen seeded with
// shard_seed(base, i).  Shards execute on a par::Pool, but every quantity a
// caller can observe — mismatch set, merged coverage, vector counts, the
// replay file of the first failure — is reduced in shard order, so a
// campaign is bit-identical whether it ran on 1, 2 or 64 threads
// (OSSS_THREADS only changes wall-clock).
//
// The shard co-sims are constructed serially, in shard order, before any
// worker runs: synthesis-backed factories are not required to be
// thread-safe or call-order independent (e.g. generated controller names
// include a global counter).  Only the runs themselves are parallel.

#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "par/pool.hpp"
#include "verify/cosim.hpp"
#include "verify/shrink.hpp"

namespace osss::verify {

/// Builds one fresh, independent co-simulation of the design under test
/// (models attached, I/O declared, coverage enabled if wanted).  Called
/// once per shard, serially, in shard order.
using CoSimFactory = std::function<std::unique_ptr<CoSim>()>;

/// The seed of shard `shard` in a campaign with base seed `base`.
std::uint64_t shard_seed(std::uint64_t base, unsigned shard);

struct ShardOptions {
  std::uint64_t seed = 1;   ///< campaign base seed (print on failure)
  unsigned shards = 8;      ///< independent shards
  unsigned cycles = 256;    ///< cycles per sequence
  unsigned sequences = 1;   ///< sequences per shard, each from reset
  par::Pool* pool = nullptr;  ///< nullptr = par::Pool::global()
  /// Optional stimulus setup per shard (constraints, extra streams).  The
  /// default declares every co-sim input with the default constraint.
  std::function<void(CoSim&, StimGen&)> declare;
};

/// One shard's scoreboard divergence, with everything needed to replay it.
struct ShardFailure {
  unsigned shard = 0;
  std::uint64_t seed = 0;  ///< the shard's derived seed
  Mismatch mismatch;
  Trace trace;  ///< scalar failing stimulus of the offending lane
};

struct ShardedRunResult {
  bool ok = false;
  unsigned shards = 0;
  std::uint64_t cycles = 0;   ///< clock edges stepped, all shards
  std::uint64_t vectors = 0;  ///< stimulus vectors scored, all shards
  std::uint64_t checks = 0;   ///< output comparisons, all shards
  std::uint64_t recorder_bytes = 0;  ///< max per-shard recorder footprint
  CoverageReport coverage;           ///< union-merged in shard order
  std::vector<ShardFailure> failures;  ///< ascending shard order

  const ShardFailure* first_failure() const {
    return failures.empty() ? nullptr : &failures.front();
  }

  explicit operator bool() const noexcept { return ok; }
};

/// Run the sharded campaign.  Deterministic for any pool size; see the
/// header comment for the contract.
ShardedRunResult parallel_fuzz(const CoSimFactory& make,
                               const ShardOptions& opt);

/// Shrink the first failing shard's trace on a fresh co-sim from `make`
/// and package it as a ReplayRecord (seed = the failing shard's derived
/// seed, note = the mismatch description).  Throws std::logic_error if the
/// campaign had no failures.
ReplayRecord shrink_first_failure(const CoSimFactory& make,
                                  const ShardedRunResult& result,
                                  const std::string& design,
                                  std::uint64_t max_runs = 4000);

}  // namespace osss::verify
