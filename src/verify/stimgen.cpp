#include "verify/stimgen.hpp"

#include <stdexcept>

#include "par/env.hpp"

namespace osss::verify {

namespace {

std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

}  // namespace

const char* stim_kind_name(StimKind k) {
  switch (k) {
    case StimKind::kUniform: return "uniform";
    case StimKind::kBitToggle: return "bit-toggle";
    case StimKind::kSticky: return "sticky";
    case StimKind::kCorner: return "corner";
  }
  return "?";
}

StimGen::StimGen(std::uint64_t seed) : seed_(seed) {}

std::uint64_t StimGen::derive(std::uint64_t base, std::string_view tag) {
  // FNV-1a over the tag, mixed with the base, finalized by one splitmix
  // round so nearby bases and similar tags land far apart.
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char ch : tag) {
    h ^= static_cast<unsigned char>(ch);
    h *= 0x100000001b3ull;
  }
  std::uint64_t state = base ^ h;
  return splitmix64(state);
}

void StimGen::declare(const std::string& name, unsigned width,
                      StimConstraint c) {
  if (width == 0) throw std::invalid_argument("StimGen: zero-width input");
  if (declared(name))
    throw std::invalid_argument("StimGen: duplicate input " + name);
  if (c.burst_min == 0) c.burst_min = 1;
  if (c.burst_max < c.burst_min) c.burst_max = c.burst_min;
  Input in;
  in.name = name;
  in.width = width;
  in.c = c;
  in.state = derive(seed_, name);
  in.lane_state = derive(seed_, name + "#lanes");
  inputs_.push_back(std::move(in));
  order_.push_back(name);
}

bool StimGen::declared(const std::string& name) const {
  for (const Input& in : inputs_)
    if (in.name == name) return true;
  return false;
}

unsigned StimGen::width_of(const std::string& name) const {
  return find(name).width;
}

StimGen::Input& StimGen::find(const std::string& name) {
  for (Input& in : inputs_)
    if (in.name == name) return in;
  throw std::invalid_argument("StimGen: undeclared input " + name);
}

const StimGen::Input& StimGen::find(const std::string& name) const {
  for (const Input& in : inputs_)
    if (in.name == name) return in;
  throw std::invalid_argument("StimGen: undeclared input " + name);
}

std::uint64_t StimGen::next_u64(std::uint64_t& state) {
  return splitmix64(state);
}

Bits StimGen::uniform_bits(std::uint64_t& state, unsigned width) {
  Bits v(width);
  for (unsigned i = 0; i < width; i += 64) {
    const std::uint64_t word = splitmix64(state);
    const unsigned chunk = width - i < 64 ? width - i : 64;
    for (unsigned j = 0; j < chunk; ++j)
      v.set_bit(i + j, ((word >> j) & 1u) != 0);
  }
  return v;
}

Bits StimGen::next_value(Input& in) {
  switch (in.c.kind) {
    case StimKind::kUniform:
      return uniform_bits(in.state, in.width);
    case StimKind::kBitToggle: {
      if (in.held.width() != in.width)
        in.held = uniform_bits(in.state, in.width);
      const unsigned bit =
          static_cast<unsigned>(next_u64(in.state) % in.width);
      in.held.set_bit(bit, !in.held.bit(bit));
      return in.held;
    }
    case StimKind::kSticky: {
      if (in.hold_left == 0 || in.held.width() != in.width) {
        in.held = uniform_bits(in.state, in.width);
        const unsigned span = in.c.burst_max - in.c.burst_min + 1;
        in.hold_left =
            in.c.burst_min + static_cast<unsigned>(next_u64(in.state) % span);
      }
      --in.hold_left;
      return in.held;
    }
    case StimKind::kCorner: {
      const std::uint64_t roll = next_u64(in.state);
      const double u =
          static_cast<double>(roll >> 11) / 9007199254740992.0;  // [0,1)
      if (u >= in.c.corner_prob) return uniform_bits(in.state, in.width);
      Bits v(in.width);
      switch (next_u64(in.state) % 5) {
        case 0: break;  // all zero
        case 1: v = Bits::ones(in.width); break;
        case 2: v.set_bit(0, true); break;  // one
        case 3: v.set_bit(in.width - 1, true); break;  // sign bit only
        default:  // max positive: all ones except the sign bit
          v = Bits::ones(in.width);
          v.set_bit(in.width - 1, false);
          break;
      }
      return v;
    }
  }
  return Bits(in.width);
}

Bits StimGen::next(const std::string& name) { return next_value(find(name)); }

std::vector<std::uint64_t> StimGen::next_lanes(const std::string& name) {
  std::vector<std::uint64_t> words(width_of(name));
  next_lanes(name, words.data());
  return words;
}

void StimGen::next_lanes(const std::string& name, std::uint64_t* out) {
  Input& in = find(name);
  const Bits lane0 = next_value(in);
  for (unsigned i = 0; i < in.width; ++i) {
    std::uint64_t w = next_u64(in.lane_state);
    w = (w & ~1ull) | (lane0.bit(i) ? 1u : 0u);
    out[i] = w;
  }
}

void StimGen::restart() {
  for (Input& in : inputs_) {
    in.state = derive(seed_, in.name);
    in.lane_state = derive(seed_, in.name + "#lanes");
    in.held = Bits();
    in.hold_left = 0;
  }
}

std::uint64_t env_seed(std::uint64_t fallback) {
  return par::env_u64("OSSS_FUZZ_SEED", fallback, 0,
                      ~static_cast<std::uint64_t>(0));
}

unsigned env_iters(unsigned base) {
  constexpr std::uint64_t kCap = 1000000;
  const std::uint64_t mul = par::env_u64("OSSS_FUZZ_ITERS", 1, 1, kCap);
  const std::uint64_t scaled = static_cast<std::uint64_t>(base) * mul;
  return scaled > kCap ? static_cast<unsigned>(kCap)
                       : static_cast<unsigned>(scaled);
}

}  // namespace osss::verify
