#include "verify/random_module.hpp"

#include <string>
#include <vector>

#include "rtl/builder.hpp"

namespace osss::verify {

using rtl::Builder;
using rtl::MemHandle;
using rtl::Wire;

namespace {

struct Gen {
  std::mt19937_64& rng;
  Builder& b;
  std::vector<Wire> pool;

  Wire pick() { return pool[rng() % pool.size()]; }

  /// Find or adapt a wire of width w.
  Wire pick_w(unsigned w) {
    for (unsigned tries = 0; tries < 8; ++tries) {
      const Wire c = pick();
      if (c.width == w) return c;
    }
    Wire c = pick();
    return c.width >= w ? b.trunc(c, w) : b.zext(c, w);
  }

  void random_op() {
    const Wire a = pick();
    switch (rng() % 14) {
      case 0: pool.push_back(b.add(a, pick_w(a.width))); break;
      case 1: pool.push_back(b.sub(a, pick_w(a.width))); break;
      case 2:
        if (a.width <= 8) pool.push_back(b.mul(a, pick_w(a.width)));
        break;
      case 3: pool.push_back(b.and_(a, pick_w(a.width))); break;
      case 4: pool.push_back(b.or_(a, pick_w(a.width))); break;
      case 5: pool.push_back(b.xor_(a, pick_w(a.width))); break;
      case 6: pool.push_back(b.not_(a)); break;
      case 7:
        pool.push_back(
            b.shli(a, static_cast<unsigned>(rng() % (a.width + 1))));
        break;
      case 8:
        pool.push_back(
            b.ashri(a, static_cast<unsigned>(rng() % (a.width + 1))));
        break;
      case 9: pool.push_back(b.eq(a, pick_w(a.width))); break;
      case 10: pool.push_back(b.ult(a, pick_w(a.width))); break;
      case 11: pool.push_back(b.mux(pick_w(1), a, pick_w(a.width))); break;
      case 12:
        if (a.width > 1)
          pool.push_back(b.slice(a, a.width - 1,
                                 static_cast<unsigned>(rng() % a.width)));
        break;
      case 13: pool.push_back(b.concat({a, pick()})); break;
    }
    if (pool.back().width > 40)
      pool.back() = b.trunc(pool.back(), 40);  // keep widths sane
  }
};

/// A memory with one read and one write port, wired from the pool — the
/// macro-RAM shape the lowering turns into a kMemQ/write-port block.
void add_memory_shape(Gen& g, unsigned index) {
  Builder& b = g.b;
  const unsigned depth = 4u << (g.rng() % 3);  // 4 / 8 / 16 words
  const unsigned width = 2 + static_cast<unsigned>(g.rng() % 9);
  const MemHandle m =
      b.memory("fuzz_mem" + std::to_string(index), depth, width);
  const unsigned aw = b.mem_addr_width(m);
  b.mem_write(m, g.pick_w(aw), g.pick_w(width), g.pick_w(1));
  g.pool.push_back(b.mem_read(m, g.pick_w(aw)));
}

/// One shared functional unit fed through operand muxes selected by a
/// rotating grant register — the synthesize_shared() arbiter/mux shape.
void add_shared_mux_shape(Gen& g, unsigned index) {
  Builder& b = g.b;
  const unsigned clients = 2 + static_cast<unsigned>(g.rng() % 3);  // 2..4
  const unsigned w = 3 + static_cast<unsigned>(g.rng() % 6);        // 3..8
  const unsigned iw = clients <= 2 ? 1 : 2;
  const std::string tag = "shared" + std::to_string(index);

  // Rotating grant register (round-robin analogue).
  const Wire grant = b.reg(tag + "_grant", iw, 0);
  const Wire last = b.constant(iw, clients - 1);
  const Wire next =
      b.mux(b.eq(grant, last), b.constant(iw, 0),
            b.add(grant, b.constant(iw, 1)));
  b.connect(grant, next);

  // Operand muxes over per-client candidate pairs from the pool.
  Wire op_a = g.pick_w(w);
  Wire op_b = g.pick_w(w);
  for (unsigned cl = 1; cl < clients; ++cl) {
    const Wire sel = b.eq(grant, b.constant(iw, cl));
    op_a = b.mux(sel, g.pick_w(w), op_a);
    op_b = b.mux(sel, g.pick_w(w), op_b);
  }
  // The shared unit itself: a multiplier when narrow enough, else an adder.
  const Wire result = w <= 8 ? b.mul(op_a, op_b) : b.add(op_a, op_b);
  // Registered return port, like the arbiter's registered ret<i>.
  const Wire ret = b.reg(tag + "_ret", result.width, 0);
  b.connect(ret, result);
  g.pool.push_back(ret);
  g.pool.push_back(grant);
}

/// A tag register dispatching between per-variant datapaths with a result
/// mux tree — the synthesize_virtual_call() dispatch shape.
void add_polymorphic_shape(Gen& g, unsigned index) {
  Builder& b = g.b;
  const unsigned variants = 2 + static_cast<unsigned>(g.rng() % 3);  // 2..4
  const unsigned w = 2 + static_cast<unsigned>(g.rng() % 7);         // 2..8
  const std::string tag_name = "poly" + std::to_string(index);

  // The tag register cycles through variants (object retagging stand-in).
  const Wire tag = b.reg(tag_name + "_tag", 2, 0);
  const Wire wrap = b.eq(tag, b.constant(2, variants - 1));
  b.connect(tag, b.mux(wrap, b.constant(2, 0),
                       b.add(tag, b.constant(2, 1))));

  // Every variant's "method body" computes from the same operands; the tag
  // muxes the results, exactly what §8's inserted dispatch muxes look like.
  const Wire arg_a = g.pick_w(w);
  const Wire arg_b = g.pick_w(w);
  Wire result = b.xor_(arg_a, arg_b);  // variant 0
  for (unsigned v = 1; v < variants; ++v) {
    Wire body;
    switch (v % 3) {
      case 0: body = b.sub(arg_a, arg_b); break;
      case 1: body = b.add(arg_a, arg_b); break;
      default: body = b.and_(arg_a, b.not_(arg_b)); break;
    }
    result = b.mux(b.eq(tag, b.constant(2, v)), body, result);
  }
  g.pool.push_back(result);
  g.pool.push_back(tag);
}

}  // namespace

rtl::Module random_module(std::mt19937_64& rng,
                          const RandomModuleOptions& opt) {
  Builder b("fuzz");
  Gen g{rng, b, {}};

  const unsigned n_inputs = 2 + static_cast<unsigned>(rng() % 3);
  for (unsigned i = 0; i < n_inputs; ++i) {
    const unsigned w = 1 + static_cast<unsigned>(rng() % 12);
    g.pool.push_back(b.input("in" + std::to_string(i), w));
  }
  std::vector<Wire> regs;
  const unsigned n_regs = 1 + static_cast<unsigned>(rng() % 3);
  for (unsigned i = 0; i < n_regs; ++i) {
    const unsigned w = 1 + static_cast<unsigned>(rng() % 12);
    const Wire q = b.reg("r" + std::to_string(i), w, rtl::Bits(w, rng()));
    regs.push_back(q);
    g.pool.push_back(q);
  }

  for (unsigned i = 0; i < opt.ops; ++i) {
    g.random_op();
    // Interleave the structural shapes so their operands draw from an
    // already-interesting pool.
    if (i == opt.ops / 3) {
      if (opt.with_memory) add_memory_shape(g, 0);
      if (opt.with_shared_mux) add_shared_mux_shape(g, 0);
    }
    if (i == (2 * opt.ops) / 3 && opt.with_polymorphic)
      add_polymorphic_shape(g, 0);
  }
  // Shapes must exist even for tiny op counts.
  if (opt.ops < 3) {
    if (opt.with_memory) add_memory_shape(g, 1);
    if (opt.with_shared_mux) add_shared_mux_shape(g, 1);
    if (opt.with_polymorphic) add_polymorphic_shape(g, 1);
  }

  for (Wire& r : regs) b.connect(r, g.pick_w(r.width));
  const unsigned n_outputs = 1 + static_cast<unsigned>(rng() % 4);
  for (unsigned i = 0; i < n_outputs; ++i)
    b.output("out" + std::to_string(i), g.pick());
  return b.take();
}

}  // namespace osss::verify
