// coverage.hpp — functional coverage for random verification runs.
//
// Two coverage models matching the two controller representations:
//
//   * ToggleCoverage — per-net 0→1 / 1→0 activity on a gate netlist.  A net
//     counts as covered once it has been observed at both values (in any
//     stimulus lane).  Constants are excluded; a netlist whose nets never
//     toggle is not being exercised, so random suites assert a floor.
//   * FsmCoverage — state and transition coverage on an HLS-generated
//     controller, sampled from the behaviour interpreter's current_state().
//     Totals come from the Behavior (state_count) and, when available, the
//     synthesis Report (transitions).
//
// Both feed a CoverageReport, the artefact random suites and the R8 bench
// print and assert on.

#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "gate/netlist.hpp"
#include "gate/sim.hpp"

namespace osss::verify {

struct CoverageItem {
  std::string model;  ///< which co-sim model produced it
  std::string kind;   ///< "net-toggle", "fsm-state", "fsm-transition"
  std::uint64_t covered = 0;
  std::uint64_t total = 0;  ///< 0 = unknown universe (report covered only)
  /// Sorted identities of the covered points (net ids, state ids, or
  /// (prev << 32) | next transition encodings).  Lets reports from
  /// independent shards union-merge exactly instead of summing counts.
  std::vector<std::uint64_t> points;

  double percent() const {
    return total == 0 ? 0.0
                      : 100.0 * static_cast<double>(covered) /
                            static_cast<double>(total);
  }

  bool operator==(const CoverageItem&) const = default;
};

struct CoverageReport {
  std::vector<CoverageItem> items;

  const CoverageItem* find(const std::string& model,
                           const std::string& kind) const;
  /// Union-merge another report (e.g. from a parallel fuzz shard): items
  /// with the same (model, kind) merge their point sets; unseen items are
  /// appended in `other`'s order, so merging shards in shard order is
  /// deterministic for any thread count.
  void merge(const CoverageReport& other);
  /// Multi-line human-readable table.
  std::string text() const;

  bool operator==(const CoverageReport&) const = default;
};

/// Tracks per-net toggle activity of one gate::Simulator.
class ToggleCoverage {
public:
  explicit ToggleCoverage(const gate::Netlist& nl);

  /// Record the current net values (all lanes).  Call once per cycle.
  void sample(const gate::Simulator& sim);

  std::uint64_t covered() const;
  std::uint64_t total() const noexcept { return tracked_; }
  CoverageItem item(const std::string& model) const;

private:
  std::vector<char> track_;  ///< per net: participates in coverage
  std::vector<char> seen0_;
  std::vector<char> seen1_;
  std::uint64_t tracked_ = 0;
  std::uint64_t lane_mask_ = 0;
};

/// Tracks FSM state / transition coverage of a behaviour controller.
class FsmCoverage {
public:
  /// `state_count` from the Behavior; `transition_count` from the synthesis
  /// Report (0 if unknown).
  explicit FsmCoverage(unsigned state_count, unsigned transition_count = 0);

  /// Record the controller being in `state` this cycle.
  void sample(unsigned state);

  std::uint64_t states_covered() const { return states_.size(); }
  std::uint64_t transitions_covered() const { return transitions_.size(); }
  CoverageItem state_item(const std::string& model) const;
  CoverageItem transition_item(const std::string& model) const;

private:
  unsigned state_count_;
  unsigned transition_count_;
  bool have_prev_ = false;
  unsigned prev_ = 0;
  std::set<unsigned> states_;
  std::set<std::pair<unsigned, unsigned>> transitions_;
};

}  // namespace osss::verify
