#include "verify/cosim.hpp"

#include <sstream>
#include <stdexcept>

namespace osss::verify {

// --- Trace -----------------------------------------------------------------

std::size_t Trace::memory_bytes() const noexcept {
  std::size_t n = sizeof(*this);
  n += inputs.capacity() * sizeof(IoDecl);
  n += cycles.capacity() * sizeof(std::vector<Bits>);
  for (const std::vector<Bits>& row : cycles) {
    n += row.capacity() * sizeof(Bits);
    for (const Bits& v : row) n += ((v.width() + 63) / 64) * 8;
  }
  return n;
}

// --- Model defaults --------------------------------------------------------

void Model::set_input_lanes(const std::string& name,
                            const std::vector<std::uint64_t>& bit_lanes) {
  Bits v(static_cast<unsigned>(bit_lanes.size()));
  for (unsigned i = 0; i < v.width(); ++i)
    v.set_bit(i, (bit_lanes[i] & 1u) != 0);
  set_input(name, v);
}

Bits Model::output_lane(const std::string& name, unsigned) {
  return output(name);
}

std::vector<std::uint64_t> Model::output_words(const std::string& name,
                                               unsigned width) {
  const Bits v = output(name);
  std::vector<std::uint64_t> words(width, 0);
  for (unsigned i = 0; i < width && i < v.width(); ++i)
    words[i] = v.bit(i) ? 1u : 0u;
  return words;
}

// --- InterpModel -----------------------------------------------------------

InterpModel::InterpModel(hls::Behavior beh, std::string name)
    : Model(std::move(name)), beh_(std::move(beh)), interp_(beh_) {}

void InterpModel::enable_fsm_coverage(unsigned transition_count) {
  fsm_ = std::make_unique<FsmCoverage>(beh_.state_count, transition_count);
}

void InterpModel::reset() { interp_.reset(); }

void InterpModel::set_input(const std::string& name, const Bits& value) {
  interp_.set_input(name, value);
}

Bits InterpModel::output(const std::string& name) {
  return interp_.var(name);
}

void InterpModel::step() { interp_.step(); }

void InterpModel::sample_coverage() {
  if (fsm_) fsm_->sample(interp_.current_state());
}

void InterpModel::report_coverage(CoverageReport& r) const {
  if (!fsm_) return;
  r.items.push_back(fsm_->state_item(name()));
  r.items.push_back(fsm_->transition_item(name()));
}

// --- RtlModel --------------------------------------------------------------

RtlModel::RtlModel(rtl::Module m, std::string name)
    : RtlModel(std::move(m), rtl::SimMode::kInterp, 1, std::move(name)) {}

RtlModel::RtlModel(rtl::Module m, rtl::SimMode mode, unsigned lanes,
                   std::string name)
    : Model(name.empty() ? std::string("rtl:") + rtl::sim_mode_name(mode)
                         : std::move(name)),
      sim_(std::move(m), mode, lanes) {}

RtlModel::RtlModel(rtl::Module m, rtl::SimMode mode, unsigned lanes,
                   rtl::tape::CodegenOptions codegen, std::string name)
    : Model(name.empty() ? std::string("rtl:") + rtl::sim_mode_name(mode)
                         : std::move(name)),
      sim_(std::move(m), mode, lanes, std::move(codegen)) {}

rtl::InputHandle RtlModel::in_handle(const std::string& name) {
  const auto it = in_.find(name);
  if (it != in_.end()) return it->second;
  const rtl::InputHandle h = sim_.input_handle(name);
  in_.emplace(name, h);
  return h;
}

rtl::OutputHandle RtlModel::out_handle(const std::string& name) {
  const auto it = out_.find(name);
  if (it != out_.end()) return it->second;
  const rtl::OutputHandle h = sim_.output_handle(name);
  out_.emplace(name, h);
  return h;
}

unsigned RtlModel::lanes() const {
  // CoSim's lane protocol is one 64-bit lane word per port bit, so a
  // wider-than-64-lane native sim joins as a scalar model: every lane gets
  // the broadcast stimulus and lane 0 is scoreboarded.
  return sim_.lanes() <= 64 ? sim_.lanes() : 1;
}

void RtlModel::reset() { sim_.reset(); }

void RtlModel::set_input(const std::string& name, const Bits& value) {
  sim_.set_input(in_handle(name), value);
}

void RtlModel::set_input_lanes(const std::string& name,
                               const std::vector<std::uint64_t>& bit_lanes) {
  if (sim_.lanes() == 1) {
    Model::set_input_lanes(name, bit_lanes);
    return;
  }
  sim_.set_input_lanes(in_handle(name), bit_lanes);
}

Bits RtlModel::output(const std::string& name) {
  return sim_.output(out_handle(name));
}

Bits RtlModel::output_lane(const std::string& name, unsigned lane) {
  if (sim_.lanes() == 1) return output(name);
  return sim_.output_lane(out_handle(name), lane);
}

std::vector<std::uint64_t> RtlModel::output_words(const std::string& name,
                                                  unsigned width) {
  // lanes() caps the co-sim protocol at one lane word per bit; sims that
  // joined as scalar (1 lane, or wider than 64) use the broadcast default.
  if (lanes() == 1) return Model::output_words(name, width);
  return sim_.output_words(out_handle(name));
}

void RtlModel::step() { sim_.step(); }

// --- GateModel -------------------------------------------------------------

GateModel::GateModel(gate::Netlist nl, gate::SimMode mode, std::string name)
    : Model(name.empty() ? std::string("gate:") + gate::sim_mode_name(mode)
                         : std::move(name)),
      nl_(std::move(nl)),
      sim_(nl_, mode) {}

GateModel::GateModel(gate::Netlist nl, gate::SimMode mode, unsigned lanes,
                     gate::CodegenOptions codegen, std::string name)
    : Model(name.empty() ? std::string("gate:") + gate::sim_mode_name(mode)
                         : std::move(name)),
      nl_(std::move(nl)),
      sim_(nl_, mode, lanes, std::move(codegen)) {}

void GateModel::enable_toggle_coverage() {
  toggle_ = std::make_unique<ToggleCoverage>(nl_);
}

unsigned GateModel::lanes() const {
  // Same protocol cap as RtlModel: one 64-bit lane word per port bit, so a
  // wider-than-64-lane native sim joins as a scalar (broadcast) model.
  return sim_.lanes() <= 64 ? sim_.lanes() : 1;
}

void GateModel::reset() { sim_.reset(); }

void GateModel::set_input(const std::string& name, const Bits& value) {
  sim_.set_input(name, value);
}

void GateModel::set_input_lanes(const std::string& name,
                                const std::vector<std::uint64_t>& bit_lanes) {
  if (lanes() == 1) {
    Model::set_input_lanes(name, bit_lanes);
    return;
  }
  sim_.set_input_lanes(name, bit_lanes);
}

Bits GateModel::output(const std::string& name) { return sim_.output(name); }

Bits GateModel::output_lane(const std::string& name, unsigned lane) {
  if (lanes() == 1) return output(name);
  return sim_.output_lane(name, lane);
}

std::vector<std::uint64_t> GateModel::output_words(const std::string& name,
                                                   unsigned width) {
  if (lanes() == 1) return Model::output_words(name, width);
  return sim_.output_words(name);
}

void GateModel::step() { sim_.step(); }

void GateModel::sample_coverage() {
  if (toggle_) toggle_->sample(sim_);
}

void GateModel::report_coverage(CoverageReport& r) const {
  if (toggle_) r.items.push_back(toggle_->item(name()));
}

// --- Mismatch --------------------------------------------------------------

std::string Mismatch::describe(const std::vector<IoDecl>& input_decls,
                               bool show_lane) const {
  std::ostringstream os;
  os << "sequence " << sequence << " cycle " << cycle;
  if (show_lane) os << " lane " << lane;
  os << ": output " << output << " = " << ref_value.to_hex_string() << " ("
     << ref_model << ") vs " << dut_value.to_hex_string() << " (" << dut_model
     << ") with ";
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    const std::string name =
        i < input_decls.size() ? input_decls[i].name : "in" + std::to_string(i);
    os << name << "=" << inputs[i].to_hex_string() << " ";
  }
  return os.str();
}

// --- CoSim -----------------------------------------------------------------

Model& CoSim::add_model(std::unique_ptr<Model> m) {
  models_.push_back(std::move(m));
  return *models_.back();
}

void CoSim::add_input(const std::string& name, unsigned width) {
  inputs_.push_back(IoDecl{name, width});
}

void CoSim::add_output(const std::string& name, unsigned width) {
  outputs_.push_back(IoDecl{name, width});
}

void CoSim::declare_io(const hls::Behavior& beh) {
  for (const hls::InputDecl& in : beh.inputs) add_input(in.name, in.width);
  for (const hls::VarDecl& v : beh.vars)
    if (v.is_output) add_output(v.name, v.width);
}

void CoSim::declare_io(const rtl::Module& m) {
  for (const rtl::PortRef& p : m.inputs())
    add_input(p.name, m.node(p.node).width);
  for (const rtl::PortRef& p : m.outputs())
    add_output(p.name, m.node(p.node).width);
}

void CoSim::declare_io(const gate::Netlist& nl) {
  for (const gate::Bus& b : nl.inputs())
    add_input(b.name, static_cast<unsigned>(b.nets.size()));
  for (const gate::Bus& b : nl.outputs())
    add_output(b.name, static_cast<unsigned>(b.nets.size()));
}

void CoSim::declare_stimulus(StimGen& gen, StimConstraint c) const {
  for (const IoDecl& in : inputs_)
    if (!gen.declared(in.name)) gen.declare(in.name, in.width, c);
}

unsigned CoSim::common_lanes() const {
  unsigned lanes = gate::Simulator::kLanes;
  for (const auto& m : models_)
    if (m->lanes() < lanes) lanes = m->lanes();
  return lanes == 0 ? 1 : lanes;
}

void CoSim::reset_models() {
  for (auto& m : models_) m->reset();
}

void CoSim::finish(RunResult& r) const {
  if (!coverage_) return;
  for (const auto& m : models_) m->report_coverage(r.coverage);
}

bool CoSim::score_cycle(RunResult& r, unsigned lanes_active,
                        unsigned sequence, std::uint64_t cycle) {
  const std::uint64_t active_mask =
      lanes_active >= 64 ? ~0ull : ((1ull << lanes_active) - 1);
  Model& ref = *models_.front();
  for (const IoDecl& out : outputs_) {
    const std::vector<std::uint64_t> wr = ref.output_words(out.name, out.width);
    for (std::size_t mi = 1; mi < models_.size(); ++mi) {
      Model& dut = *models_[mi];
      const std::vector<std::uint64_t> wd =
          dut.output_words(out.name, out.width);
      std::uint64_t diff = 0;
      for (std::size_t i = 0; i < wr.size(); ++i) diff |= wr[i] ^ wd[i];
      diff &= active_mask;
      r.checks += lanes_active;
      if (diff == 0) continue;
      unsigned lane = 0;
      while (((diff >> lane) & 1u) == 0) ++lane;
      r.mismatch.sequence = sequence;
      r.mismatch.cycle = cycle;
      r.mismatch.lane = lane;
      r.mismatch.output = out.name;
      r.mismatch.ref_model = ref.name();
      r.mismatch.dut_model = dut.name();
      r.mismatch.ref_value = ref.output_lane(out.name, lane);
      r.mismatch.dut_value = dut.output_lane(out.name, lane);
      return false;
    }
  }
  return true;
}

RunResult CoSim::run(StimGen& gen, unsigned cycles, unsigned sequences) {
  if (models_.empty()) throw std::logic_error("CoSim: no models attached");
  RunResult r;
  const unsigned lanes = common_lanes();
  const bool wide = lanes > 1;

  // Flat per-sequence stimulus recorder: one row of `row_words` lane words
  // per cycle (input bits concatenated in declaration order), sized once
  // and overwritten every sequence — the hot loop does no allocation.
  std::vector<std::size_t> offset(inputs_.size(), 0);
  std::size_t row_words = 0;
  for (std::size_t i = 0; i < inputs_.size(); ++i) {
    offset[i] = row_words;
    row_words += inputs_[i].width;
  }
  std::vector<std::uint64_t> rec(static_cast<std::size_t>(cycles) * row_words);
  std::vector<std::uint64_t> scratch(wide ? row_words : 0);

  r.recorder_bytes = (rec.capacity() + scratch.capacity()) * 8 +
                     offset.capacity() * sizeof(std::size_t);

  for (unsigned s = 0; s < sequences; ++s) {
    reset_models();
    for (unsigned c = 0; c < cycles; ++c) {
      std::uint64_t* row = rec.data() + static_cast<std::size_t>(c) * row_words;
      for (std::size_t ii = 0; ii < inputs_.size(); ++ii) {
        const IoDecl& in = inputs_[ii];
        std::uint64_t* words = row + offset[ii];
        if (wide) {
          gen.next_lanes(in.name, words);
          bool shared = false;  // scratch vector built lazily, reused after
          for (auto& m : models_) {
            if (m->lanes() > 1) {
              if (!shared) {
                scratch.assign(words, words + in.width);
                shared = true;
              }
              m->set_input_lanes(in.name, scratch);
            } else {
              Bits v(in.width);
              for (unsigned i = 0; i < in.width; ++i)
                v.set_bit(i, (words[i] & 1u) != 0);
              m->set_input(in.name, v);
            }
          }
        } else {
          const Bits v = gen.next(in.name);
          for (auto& m : models_) m->set_input(in.name, v);
          for (unsigned i = 0; i < in.width; ++i)
            words[i] = v.bit(i) ? 1u : 0u;
        }
      }
      if (!score_cycle(r, lanes, s, c)) {
        // Extract the offending lane's scalar stimulus, including the
        // failing cycle, for shrinking / replay.
        const unsigned lane = r.mismatch.lane;
        r.failing_trace.inputs = inputs_;
        for (unsigned pc = 0; pc <= c; ++pc) {
          const std::uint64_t* prow =
              rec.data() + static_cast<std::size_t>(pc) * row_words;
          std::vector<Bits> values;
          values.reserve(inputs_.size());
          for (std::size_t i = 0; i < inputs_.size(); ++i) {
            Bits v(inputs_[i].width);
            for (unsigned bi = 0; bi < inputs_[i].width; ++bi)
              v.set_bit(bi, ((prow[offset[i] + bi] >> lane) & 1u) != 0);
            values.push_back(std::move(v));
          }
          r.failing_trace.cycles.push_back(std::move(values));
        }
        r.mismatch.inputs = r.failing_trace.cycles.back();
        r.recorder_bytes += r.failing_trace.memory_bytes();
        finish(r);
        return r;
      }
      if (coverage_)
        for (auto& m : models_) m->sample_coverage();
      for (auto& m : models_) m->step();
      ++r.cycles;
      r.vectors += lanes;
    }
  }
  r.ok = true;
  finish(r);
  return r;
}

RunResult CoSim::run_trace(const Trace& t) {
  if (models_.empty()) throw std::logic_error("CoSim: no models attached");
  RunResult r;
  reset_models();
  for (std::size_t c = 0; c < t.cycles.size(); ++c) {
    const std::vector<Bits>& values = t.cycles[c];
    if (values.size() != inputs_.size())
      throw std::invalid_argument("CoSim: trace input arity mismatch");
    for (std::size_t i = 0; i < inputs_.size(); ++i)
      for (auto& m : models_) m->set_input(inputs_[i].name, values[i]);
    if (!score_cycle(r, 1, 0, c)) {
      r.mismatch.inputs = values;
      r.failing_trace.inputs = inputs_;
      r.failing_trace.cycles.assign(t.cycles.begin(),
                                    t.cycles.begin() + c + 1);
      finish(r);
      return r;
    }
    if (coverage_)
      for (auto& m : models_) m->sample_coverage();
    for (auto& m : models_) m->step();
    ++r.cycles;
    ++r.vectors;
  }
  r.ok = true;
  finish(r);
  return r;
}

}  // namespace osss::verify
