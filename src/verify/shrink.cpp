#include "verify/shrink.hpp"

#include <cctype>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace osss::verify {

namespace {

/// Run the candidate; on failure adopt its (failure-truncated) trace.
bool adopt_if_fails(CoSim& cs, const Trace& cand, Trace& cur,
                    std::uint64_t& runs) {
  ++runs;
  const RunResult r = cs.run_trace(cand);
  if (r.ok) return false;
  cur = r.failing_trace;
  return true;
}

}  // namespace

ShrinkResult shrink(CoSim& cs, const Trace& failing, std::uint64_t max_runs) {
  ShrinkResult out;
  out.original_cycles = failing.length();
  std::uint64_t runs = 0;

  Trace cur = failing;
  {
    ++runs;
    const RunResult first = cs.run_trace(cur);
    if (first.ok)
      throw std::invalid_argument("shrink: trace does not fail");
    cur = first.failing_trace;  // truncated at the mismatch cycle
  }

  // Phase 1 — delta debugging over cycles: try dropping chunks of the
  // sequence, halving chunk size until single cycles are tried.
  std::size_t granularity = 2;
  while (cur.length() > 1 && runs < max_runs) {
    const std::size_t chunk = (cur.length() + granularity - 1) / granularity;
    bool reduced = false;
    for (std::size_t start = 0; start < cur.length() && runs < max_runs;
         start += chunk) {
      Trace cand;
      cand.inputs = cur.inputs;
      for (std::size_t c = 0; c < cur.length(); ++c)
        if (c < start || c >= start + chunk) cand.cycles.push_back(cur.cycles[c]);
      if (cand.cycles.empty()) continue;
      if (adopt_if_fails(cs, cand, cur, runs)) {
        reduced = true;
        granularity = granularity > 2 ? granularity - 1 : 2;
        break;
      }
    }
    if (!reduced) {
      if (chunk <= 1) break;  // minimal w.r.t. single-cycle removal
      granularity =
          granularity * 2 < cur.length() ? granularity * 2 : cur.length();
    }
  }

  // Phase 2 — bit minimization: zero whole vectors, then individual bits.
  for (std::size_t c = 0; c < cur.length() && runs < max_runs; ++c) {
    for (std::size_t i = 0; i < cur.inputs.size() && runs < max_runs; ++i) {
      if (cur.cycles[c][i].is_zero()) continue;
      {
        Trace cand = cur;
        cand.cycles[c][i] = Bits(cur.inputs[i].width);
        if (adopt_if_fails(cs, cand, cur, runs)) continue;
      }
      for (unsigned bi = 0;
           bi < cur.inputs[i].width && runs < max_runs; ++bi) {
        if (c >= cur.length()) break;  // adoption may have truncated
        if (!cur.cycles[c][i].bit(bi)) continue;
        Trace cand = cur;
        cand.cycles[c][i].set_bit(bi, false);
        adopt_if_fails(cs, cand, cur, runs);
      }
    }
  }

  out.trace = cur;
  out.final_run = cs.run_trace(cur);
  out.predicate_runs = runs + 1;
  return out;
}

// --- ReplayRecord ----------------------------------------------------------

std::string ReplayRecord::to_text() const {
  std::ostringstream os;
  os << "osss-replay v1\n";
  os << "design " << design << "\n";
  os << "seed " << seed << "\n";
  if (!note.empty()) os << "note " << note << "\n";
  for (const IoDecl& in : trace.inputs)
    os << "input " << in.name << " " << in.width << "\n";
  for (const std::vector<Bits>& cyc : trace.cycles) {
    os << "cycle";
    for (const Bits& v : cyc) os << " " << v.to_hex_string();
    os << "\n";
  }
  os << "end\n";
  return os.str();
}

ReplayRecord ReplayRecord::from_text(const std::string& text) {
  ReplayRecord rec;
  std::istringstream is(text);
  std::string line;
  if (!std::getline(is, line) || line != "osss-replay v1")
    throw std::invalid_argument("ReplayRecord: missing header");
  bool ended = false;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    std::istringstream ls(line);
    std::string key;
    ls >> key;
    if (key == "design") {
      std::getline(ls, rec.design);
      if (!rec.design.empty() && rec.design.front() == ' ')
        rec.design.erase(rec.design.begin());
    } else if (key == "seed") {
      ls >> rec.seed;
    } else if (key == "note") {
      std::getline(ls, rec.note);
      if (!rec.note.empty() && rec.note.front() == ' ')
        rec.note.erase(rec.note.begin());
    } else if (key == "input") {
      IoDecl d;
      ls >> d.name >> d.width;
      if (d.name.empty() || d.width == 0)
        throw std::invalid_argument("ReplayRecord: bad input decl: " + line);
      rec.trace.inputs.push_back(d);
    } else if (key == "cycle") {
      std::vector<Bits> values;
      std::string tok;
      std::size_t i = 0;
      while (ls >> tok) {
        if (i >= rec.trace.inputs.size())
          throw std::invalid_argument("ReplayRecord: too many values: " +
                                      line);
        values.push_back(Bits::parse(rec.trace.inputs[i].width, tok));
        ++i;
      }
      if (i != rec.trace.inputs.size())
        throw std::invalid_argument("ReplayRecord: too few values: " + line);
      rec.trace.cycles.push_back(std::move(values));
    } else if (key == "end") {
      ended = true;
      break;
    } else {
      throw std::invalid_argument("ReplayRecord: unknown key: " + key);
    }
  }
  if (!ended) throw std::invalid_argument("ReplayRecord: missing end marker");
  return rec;
}

RunResult replay(CoSim& cs, const ReplayRecord& rec) {
  return cs.run_trace(rec.trace);
}

std::string save_replay(const ReplayRecord& rec, const std::string& dir) {
  std::string stem = rec.design.empty() ? "design" : rec.design;
  for (char& ch : stem)
    if (!(std::isalnum(static_cast<unsigned char>(ch)) != 0 || ch == '_' ||
          ch == '-'))
      ch = '_';
  const std::string path =
      dir + "/" + stem + "_" + std::to_string(rec.seed) + ".replay";
  std::ofstream os(path);
  if (!os) throw std::runtime_error("save_replay: cannot write " + path);
  os << rec.to_text();
  if (!os.flush())
    throw std::runtime_error("save_replay: write failed: " + path);
  return path;
}

}  // namespace osss::verify
