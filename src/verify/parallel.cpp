#include "verify/parallel.hpp"

#include <stdexcept>

namespace osss::verify {

std::uint64_t shard_seed(std::uint64_t base, unsigned shard) {
  return StimGen::derive(base, "shard/" + std::to_string(shard));
}

ShardedRunResult parallel_fuzz(const CoSimFactory& make,
                               const ShardOptions& opt) {
  if (!make) throw std::invalid_argument("parallel_fuzz: null factory");
  if (opt.shards == 0)
    throw std::invalid_argument("parallel_fuzz: zero shards");
  par::Pool& pool = opt.pool ? *opt.pool : par::Pool::global();

  // Serial, shard-ordered construction: factories may rely on global
  // call-order state (generated controller names), so only the runs below
  // are allowed on workers.
  std::vector<std::unique_ptr<CoSim>> sims;
  std::vector<std::unique_ptr<StimGen>> gens;
  sims.reserve(opt.shards);
  gens.reserve(opt.shards);
  for (unsigned i = 0; i < opt.shards; ++i) {
    sims.push_back(make());
    gens.push_back(std::make_unique<StimGen>(shard_seed(opt.seed, i)));
    if (opt.declare)
      opt.declare(*sims.back(), *gens.back());
    else
      sims.back()->declare_stimulus(*gens.back());
  }

  const std::vector<RunResult> runs = pool.parallel_map<RunResult>(
      opt.shards, [&](std::size_t i) {
        return sims[i]->run(*gens[i], opt.cycles, opt.sequences);
      });

  // Shard-ordered reduction: identical for every thread count.
  ShardedRunResult out;
  out.shards = opt.shards;
  for (unsigned i = 0; i < opt.shards; ++i) {
    const RunResult& r = runs[i];
    out.cycles += r.cycles;
    out.vectors += r.vectors;
    out.checks += r.checks;
    if (r.recorder_bytes > out.recorder_bytes)
      out.recorder_bytes = r.recorder_bytes;
    out.coverage.merge(r.coverage);
    if (!r.ok) {
      ShardFailure f;
      f.shard = i;
      f.seed = gens[i]->seed();
      f.mismatch = r.mismatch;
      f.trace = r.failing_trace;
      out.failures.push_back(std::move(f));
    }
  }
  out.ok = out.failures.empty();
  return out;
}

ReplayRecord shrink_first_failure(const CoSimFactory& make,
                                  const ShardedRunResult& result,
                                  const std::string& design,
                                  std::uint64_t max_runs) {
  const ShardFailure* f = result.first_failure();
  if (f == nullptr)
    throw std::logic_error("shrink_first_failure: campaign had no failures");
  const std::unique_ptr<CoSim> cs = make();
  const ShrinkResult s = shrink(*cs, f->trace, max_runs);
  ReplayRecord rec;
  rec.design = design;
  rec.seed = f->seed;
  rec.note = "shard " + std::to_string(f->shard) + ": " +
             f->mismatch.describe(f->trace.inputs, true);
  rec.trace = s.trace;
  return rec;
}

ShardedRunResult CoSim::run_sharded(
    const std::function<std::unique_ptr<CoSim>()>& make,
    const ShardOptions& opt) {
  return parallel_fuzz(make, opt);
}

}  // namespace osss::verify
