// shrink.hpp — failing-trace minimization and self-contained replay.
//
// When a co-simulation scoreboard trips, the raw counterexample is usually
// hundreds of cycles of random vectors.  shrink() reduces it with delta
// debugging: first over cycles (drop chunks of the sequence while the
// mismatch persists), then over input bits (clear bits of the surviving
// vectors).  The result is packaged as a ReplayRecord — design name, seed,
// port declarations and the minimized vectors — whose text form is emitted
// next to the test binary so a CI failure is reproducible from artifacts
// alone: verify::replay() re-executes a record against a freshly built
// CoSim and must reach the same verdict.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "verify/cosim.hpp"

namespace osss::verify {

struct ShrinkResult {
  Trace trace;          ///< minimized failing stimulus
  RunResult final_run;  ///< the run on the minimized trace (not ok)
  std::size_t original_cycles = 0;
  std::uint64_t predicate_runs = 0;  ///< co-simulations spent shrinking
};

/// Minimize `failing` (a trace for which cs.run_trace(...) reports a
/// mismatch) to a short sequence that still fails.  The co-sim's models are
/// reset and re-run many times; `max_runs` bounds the work.
ShrinkResult shrink(CoSim& cs, const Trace& failing,
                    std::uint64_t max_runs = 4000);

/// Seed + minimized vectors: everything needed to re-execute a failure.
struct ReplayRecord {
  std::string design;
  std::uint64_t seed = 0;
  std::string note;  ///< e.g. the mismatch description
  Trace trace;

  std::string to_text() const;
  /// Parse the to_text() form; throws std::invalid_argument on malformed
  /// input.
  static ReplayRecord from_text(const std::string& text);
};

/// Re-execute a record against a co-sim of the same design.  Returns the
/// run result (a reproducing record yields !ok).
RunResult replay(CoSim& cs, const ReplayRecord& rec);

/// Write `rec` to `<dir>/<design>_<seed>.replay`; returns the path.
/// Directory must exist; failures throw std::runtime_error.
std::string save_replay(const ReplayRecord& rec, const std::string& dir = ".");

}  // namespace osss::verify
