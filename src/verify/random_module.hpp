// random_module.hpp — random RTL design generation for fuzzing.
//
// Grows a random module from a pool of wires the way the lowering fuzzer
// always has (random operators over random widths, registers with random
// feedback), extended with the structural shapes the OSSS synthesizer
// emits, so lowering fuzz also exercises the gate backend's handling of
// `synth/`- and `osss/`-style output:
//
//   * memories      — an RTL memory with random read/write ports (the
//                     histogram-RAM shape);
//   * shared-mux    — one functional unit whose operands are selected from
//                     several candidate pairs by a rotating grant register
//                     (the shared-object arbiter/mux shape of
//                     synth/shared_synth.cpp);
//   * polymorphic   — a tag register dispatching between per-variant
//                     datapaths through a result mux tree (the virtual-call
//                     shape of synth/polymorphic_synth.cpp).

#pragma once

#include <random>

#include "rtl/ir.hpp"

namespace osss::verify {

struct RandomModuleOptions {
  unsigned ops = 40;            ///< random operator count for the base pool
  bool with_memory = false;     ///< add a memory with read + write ports
  bool with_shared_mux = false; ///< add a shared-functional-unit shape
  bool with_polymorphic = false;///< add a tag-dispatch shape
};

/// Generate a random module.  Deterministic for a given rng state.
rtl::Module random_module(std::mt19937_64& rng,
                          const RandomModuleOptions& opt = {});

/// Back-compat helper matching the original fuzz generator's signature.
inline rtl::Module random_module(std::mt19937_64& rng, unsigned ops) {
  RandomModuleOptions opt;
  opt.ops = ops;
  return random_module(rng, opt);
}

}  // namespace osss::verify
