#include "verify/coverage.hpp"

#include <algorithm>
#include <iterator>
#include <sstream>

namespace osss::verify {

const CoverageItem* CoverageReport::find(const std::string& model,
                                         const std::string& kind) const {
  for (const CoverageItem& it : items)
    if (it.model == model && it.kind == kind) return &it;
  return nullptr;
}

void CoverageReport::merge(const CoverageReport& other) {
  for (const CoverageItem& o : other.items) {
    CoverageItem* mine = nullptr;
    for (CoverageItem& it : items)
      if (it.model == o.model && it.kind == o.kind) {
        mine = &it;
        break;
      }
    if (mine == nullptr) {
      items.push_back(o);
      continue;
    }
    std::vector<std::uint64_t> merged;
    merged.reserve(mine->points.size() + o.points.size());
    std::set_union(mine->points.begin(), mine->points.end(), o.points.begin(),
                   o.points.end(), std::back_inserter(merged));
    mine->points = std::move(merged);
    mine->covered = mine->points.empty()
                        ? std::max(mine->covered, o.covered)
                        : mine->points.size();
    mine->total = std::max(mine->total, o.total);
  }
}

std::string CoverageReport::text() const {
  std::ostringstream os;
  for (const CoverageItem& it : items) {
    os << it.model << " " << it.kind << ": " << it.covered;
    if (it.total != 0) {
      os.precision(1);
      os << "/" << it.total << " (" << std::fixed << it.percent() << "%)";
    }
    os << "\n";
  }
  return os.str();
}

ToggleCoverage::ToggleCoverage(const gate::Netlist& nl) {
  const std::size_t n = nl.cells().size();
  track_.assign(n, 0);
  seen0_.assign(n, 0);
  seen1_.assign(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    const gate::Cell& c = nl.cells()[i];
    if (c.kind == gate::CellKind::kConst0 ||
        c.kind == gate::CellKind::kConst1)
      continue;
    track_[i] = 1;
    ++tracked_;
  }
}

void ToggleCoverage::sample(const gate::Simulator& sim) {
  // All lanes participate: in bit-parallel mode one sample covers 64
  // stimulus vectors.  In scalar modes only lane 0 carries defined data.
  const std::uint64_t mask =
      sim.mode() == gate::SimMode::kBitParallel ? ~0ull : 1ull;
  for (std::size_t i = 0; i < track_.size(); ++i) {
    if (!track_[i]) continue;
    const std::uint64_t v =
        sim.net_lanes(static_cast<gate::NetId>(i)) & mask;
    if (v != 0) seen1_[i] = 1;
    if (v != mask) seen0_[i] = 1;
  }
}

std::uint64_t ToggleCoverage::covered() const {
  std::uint64_t n = 0;
  for (std::size_t i = 0; i < track_.size(); ++i)
    if (track_[i] && seen0_[i] && seen1_[i]) ++n;
  return n;
}

CoverageItem ToggleCoverage::item(const std::string& model) const {
  CoverageItem it{model, "net-toggle", 0, total(), {}};
  for (std::size_t i = 0; i < track_.size(); ++i)
    if (track_[i] && seen0_[i] && seen1_[i])
      it.points.push_back(static_cast<std::uint64_t>(i));
  it.covered = it.points.size();
  return it;
}

FsmCoverage::FsmCoverage(unsigned state_count, unsigned transition_count)
    : state_count_(state_count), transition_count_(transition_count) {}

void FsmCoverage::sample(unsigned state) {
  states_.insert(state);
  if (have_prev_) transitions_.insert({prev_, state});
  prev_ = state;
  have_prev_ = true;
}

CoverageItem FsmCoverage::state_item(const std::string& model) const {
  CoverageItem it{model, "fsm-state", states_covered(), state_count_, {}};
  it.points.assign(states_.begin(), states_.end());  // std::set: sorted
  return it;
}

CoverageItem FsmCoverage::transition_item(const std::string& model) const {
  CoverageItem it{model, "fsm-transition", transitions_covered(),
                  transition_count_,
                  {}};
  for (const auto& [prev, next] : transitions_)  // sorted pair order
    it.points.push_back((static_cast<std::uint64_t>(prev) << 32) | next);
  return it;
}

}  // namespace osss::verify
