// cosim.hpp — lockstep multi-level differential co-simulation.
//
// One CoSim drives any subset of the repo's simulators — behaviour
// interpreter (hls::Interpreter), RTL cycle simulator (rtl::Simulator) and
// gate simulator (gate::Simulator, any engine) — from a single stimulus
// stream, and scoreboards every declared output of every model against the
// reference (the first model added) on every cycle.  This is the paper's
// "bit and cycle accurate on every stage" check as a reusable engine; the
// bespoke lockstep loops that used to live in bench/exp_r8_accuracy.cpp and
// gate/equiv.cpp are thin layers over it.
//
// When every attached model supports 64 stimulus lanes (gate simulators in
// kBitParallel mode), each simulated cycle scores 64 independent vectors;
// otherwise the run is scalar.  Runs record their stimulus, so a mismatch
// yields a per-lane scalar trace that the shrinker (shrink.hpp) can
// minimize and replay.

#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "gate/netlist.hpp"
#include "gate/sim.hpp"
#include "hls/behavior.hpp"
#include "hls/interp.hpp"
#include "rtl/ir.hpp"
#include "rtl/sim.hpp"
#include "verify/coverage.hpp"
#include "verify/stimgen.hpp"

namespace osss::verify {

struct IoDecl {
  std::string name;
  unsigned width = 0;
};

/// A recorded scalar stimulus sequence: cycles[c][i] is the value driven
/// into input i (CoSim declaration order) during cycle c.
struct Trace {
  std::vector<IoDecl> inputs;
  std::vector<std::vector<Bits>> cycles;

  std::size_t length() const noexcept { return cycles.size(); }

  /// Approximate heap footprint of the recorded stimulus (containers plus
  /// one 64-bit word per 64 bits of every Bits value).  Reported through
  /// RunResult::recorder_bytes so fuzz campaigns can see recorder overhead.
  std::size_t memory_bytes() const noexcept;
};

/// One simulator wrapped for lockstep driving.  Concrete adapters below.
class Model {
public:
  explicit Model(std::string name) : name_(std::move(name)) {}
  virtual ~Model() = default;

  Model(const Model&) = delete;
  Model& operator=(const Model&) = delete;

  const std::string& name() const noexcept { return name_; }

  /// Stimulus lanes the model advances per cycle (1 or Simulator::kLanes).
  virtual unsigned lanes() const { return 1; }

  virtual void reset() = 0;
  virtual void set_input(const std::string& name, const Bits& value) = 0;
  /// Drive 64 lanes (bit_lanes[i] = lane word of input bit i).  Models with
  /// lanes() == 1 receive lane 0 via set_input instead; CoSim never calls
  /// this on them.
  virtual void set_input_lanes(const std::string& name,
                               const std::vector<std::uint64_t>& bit_lanes);
  virtual Bits output(const std::string& name) = 0;
  virtual Bits output_lane(const std::string& name, unsigned lane);
  /// Lane words of an output (element i = lanes of bit i).  The default
  /// broadcasts the scalar output into lane 0.
  virtual std::vector<std::uint64_t> output_words(const std::string& name,
                                                  unsigned width);
  virtual void step() = 0;

  /// Coverage hooks: sampled once per cycle when coverage is enabled on the
  /// co-sim; results land in the run's CoverageReport.
  virtual void sample_coverage() {}
  virtual void report_coverage(CoverageReport&) const {}

private:
  std::string name_;
};

/// hls::Interpreter as a co-sim model (the behavioural reference).
class InterpModel final : public Model {
public:
  explicit InterpModel(hls::Behavior beh, std::string name = "interp");

  hls::Interpreter& interp() noexcept { return interp_; }
  const hls::Behavior& behavior() const noexcept { return beh_; }

  /// Enable FSM state/transition coverage.  `transition_count` comes from
  /// the synthesis Report when available (0 = unknown).
  void enable_fsm_coverage(unsigned transition_count = 0);

  void reset() override;
  void set_input(const std::string& name, const Bits& value) override;
  Bits output(const std::string& name) override;
  void step() override;
  void sample_coverage() override;
  void report_coverage(CoverageReport& r) const override;

private:
  hls::Behavior beh_;
  hls::Interpreter interp_;
  std::unique_ptr<FsmCoverage> fsm_;
};

/// rtl::Simulator as a co-sim model: interpreter or tape engine, the tape
/// optionally contributing up to 64 stimulus lanes.  Port names are resolved
/// to handles once so lockstep driving skips the name lookup.
class RtlModel final : public Model {
public:
  explicit RtlModel(rtl::Module m, std::string name = "rtl");
  RtlModel(rtl::Module m, rtl::SimMode mode, unsigned lanes = 1,
           std::string name = "");
  /// kNative with explicit backend options (tests: forced fallback, bogus
  /// compilers).
  RtlModel(rtl::Module m, rtl::SimMode mode, unsigned lanes,
           rtl::tape::CodegenOptions codegen, std::string name = "");

  rtl::Simulator& sim() noexcept { return sim_; }

  unsigned lanes() const override;
  void reset() override;
  void set_input(const std::string& name, const Bits& value) override;
  void set_input_lanes(
      const std::string& name,
      const std::vector<std::uint64_t>& bit_lanes) override;
  Bits output(const std::string& name) override;
  Bits output_lane(const std::string& name, unsigned lane) override;
  std::vector<std::uint64_t> output_words(const std::string& name,
                                          unsigned width) override;
  void step() override;

private:
  rtl::Simulator sim_;
  std::unordered_map<std::string, rtl::InputHandle> in_;
  std::unordered_map<std::string, rtl::OutputHandle> out_;

  rtl::InputHandle in_handle(const std::string& name);
  rtl::OutputHandle out_handle(const std::string& name);
};

/// gate::Simulator as a co-sim model; kBitParallel engines contribute 64
/// stimulus lanes per cycle, kNative engines up to 64 (wider native sims
/// join as scalar broadcast models, like wide RtlModel tapes).
class GateModel final : public Model {
public:
  explicit GateModel(gate::Netlist nl,
                     gate::SimMode mode = gate::SimMode::kEvent,
                     std::string name = "");
  /// Explicit lane count + backend options (kNative; tests use forced
  /// fallbacks and bogus compilers through `codegen`).
  GateModel(gate::Netlist nl, gate::SimMode mode, unsigned lanes,
            gate::CodegenOptions codegen, std::string name = "");

  gate::Simulator& sim() noexcept { return sim_; }
  const gate::Netlist& netlist() const noexcept { return nl_; }

  /// Enable net toggle coverage.
  void enable_toggle_coverage();

  unsigned lanes() const override;
  void reset() override;
  void set_input(const std::string& name, const Bits& value) override;
  void set_input_lanes(
      const std::string& name,
      const std::vector<std::uint64_t>& bit_lanes) override;
  Bits output(const std::string& name) override;
  Bits output_lane(const std::string& name, unsigned lane) override;
  std::vector<std::uint64_t> output_words(const std::string& name,
                                          unsigned width) override;
  void step() override;
  void sample_coverage() override;
  void report_coverage(CoverageReport& r) const override;

private:
  gate::Netlist nl_;  ///< kept for coverage universe / diagnostics
  gate::Simulator sim_;
  std::unique_ptr<ToggleCoverage> toggle_;
};

/// A scoreboard divergence: reference model vs another model on one output.
struct Mismatch {
  unsigned sequence = 0;
  std::uint64_t cycle = 0;  ///< cycle within the sequence
  unsigned lane = 0;
  std::string output;
  std::string ref_model;
  std::string dut_model;
  Bits ref_value;
  Bits dut_value;
  std::vector<Bits> inputs;  ///< stimulus of the failing cycle/lane

  /// "sequence 0 cycle 12 lane 3: output o = 0x5 (rtl) vs 0x4 (gate) with
  ///  a=0x1 b=0x7" — the counterexample text callers embed in messages.
  std::string describe(const std::vector<IoDecl>& input_decls,
                       bool show_lane) const;
};

struct RunResult {
  bool ok = false;
  std::uint64_t cycles = 0;   ///< clock edges stepped
  std::uint64_t vectors = 0;  ///< stimulus vectors scored (cycles × lanes)
  std::uint64_t checks = 0;   ///< output comparisons performed
  std::uint64_t recorder_bytes = 0;  ///< stimulus-recorder heap footprint
  Mismatch mismatch;          ///< valid when !ok
  Trace failing_trace;        ///< scalar trace of the mismatching lane
  CoverageReport coverage;

  explicit operator bool() const noexcept { return ok; }
};

struct ShardOptions;       // verify/parallel.hpp
struct ShardedRunResult;   // verify/parallel.hpp

class CoSim {
public:
  CoSim() = default;

  /// Attach a model; the FIRST model added is the scoreboard reference.
  Model& add_model(std::unique_ptr<Model> m);
  template <class M>
  M& add(std::unique_ptr<M> m) {
    M& ref = *m;
    add_model(std::move(m));
    return ref;
  }

  std::size_t model_count() const noexcept { return models_.size(); }
  Model& model(std::size_t i) { return *models_.at(i); }

  void add_input(const std::string& name, unsigned width);
  void add_output(const std::string& name, unsigned width);

  // Convenience declarations from a design description.
  void declare_io(const hls::Behavior& beh);
  void declare_io(const rtl::Module& m);
  void declare_io(const gate::Netlist& nl);

  const std::vector<IoDecl>& inputs() const noexcept { return inputs_; }
  const std::vector<IoDecl>& outputs() const noexcept { return outputs_; }

  /// Register the inputs with a StimGen (shared constraint `c`).
  void declare_stimulus(StimGen& gen, StimConstraint c = {}) const;

  /// Sample per-model coverage each cycle and report it in RunResult.
  void enable_coverage() { coverage_ = true; }

  /// Run `sequences` independent sequences of `cycles` cycles each, all
  /// models reset at each sequence start, stimulus drawn from `gen`
  /// (lane-wide when every model supports it).  Stops at the first
  /// mismatch; RunResult.failing_trace then holds the scalar stimulus of
  /// the offending lane up to and including the failing cycle.
  RunResult run(StimGen& gen, unsigned cycles, unsigned sequences = 1);

  /// Replay an explicit scalar stimulus sequence (models reset first).
  /// Used by the shrinker and by replay records.
  RunResult run_trace(const Trace& t);

  /// Sharded campaign across a par::Pool: each shard gets its own CoSim
  /// from `make` and a seed derived from the base, so results are
  /// bit-identical for every thread count.  Thin wrapper over
  /// parallel_fuzz — see verify/parallel.hpp for the options and result.
  static ShardedRunResult run_sharded(
      const std::function<std::unique_ptr<CoSim>()>& make,
      const ShardOptions& opt);

private:
  std::vector<std::unique_ptr<Model>> models_;
  std::vector<IoDecl> inputs_;
  std::vector<IoDecl> outputs_;
  bool coverage_ = false;

  unsigned common_lanes() const;
  void reset_models();
  void finish(RunResult& r) const;
  /// Score all outputs of all models against the reference for this cycle.
  /// Returns false (and fills `r.mismatch` except the trace) on divergence.
  bool score_cycle(RunResult& r, unsigned lanes_active,
                   unsigned sequence, std::uint64_t cycle);
};

}  // namespace osss::verify
