// stimgen.hpp — constrained-random stimulus generation.
//
// One StimGen feeds every randomized suite in the repo: each declared input
// gets its own constraint (uniform, single-bit toggle, sticky bursts,
// corner-value biased) and its own deterministically derived random stream,
// so adding or reordering inputs never perturbs the vectors of the others —
// a failing seed printed by a test reproduces the identical stimulus later.
//
// Seed discipline (the determinism contract):
//   * every generator is constructed from one 64-bit seed;
//   * per-input streams are `derive(seed, input_name)` (splitmix64 over an
//     FNV-1a tag hash), so streams are independent but reproducible;
//   * suites derive their base seed with `derive(base, test_name)` and MUST
//     print it in any failure message;
//   * nightly fuzz runs override the base via OSSS_FUZZ_SEED and scale
//     iteration counts via OSSS_FUZZ_ITERS (see env_seed / env_iters).

#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "sysc/bits.hpp"

namespace osss::verify {

using sysc::Bits;

/// How one input's vector sequence is shaped.
enum class StimKind : std::uint8_t {
  kUniform,    ///< every bit independently uniform each cycle
  kBitToggle,  ///< flip exactly one random bit per cycle (slow walkers)
  kSticky,     ///< hold a random value for a random burst, then re-roll
  kCorner,     ///< biased toward 0 / all-ones / 1 / sign-bit corners
};

const char* stim_kind_name(StimKind k);

struct StimConstraint {
  StimKind kind = StimKind::kUniform;
  unsigned burst_min = 2;      ///< kSticky: shortest hold, in cycles
  unsigned burst_max = 12;     ///< kSticky: longest hold, in cycles
  double corner_prob = 0.35;   ///< kCorner: probability of a corner value
};

class StimGen {
public:
  explicit StimGen(std::uint64_t seed);

  /// Mix a textual tag into a base seed (FNV-1a + splitmix64 finalizer).
  /// This is the one seed-derivation function in the repo; call sites
  /// derive per-test and per-input seeds through it so streams never
  /// collide or depend on declaration order.
  static std::uint64_t derive(std::uint64_t base, std::string_view tag);

  std::uint64_t seed() const noexcept { return seed_; }

  /// Declare an input; its stream starts at the derived per-name seed.
  void declare(const std::string& name, unsigned width,
               StimConstraint c = {});

  bool declared(const std::string& name) const;
  const std::vector<std::string>& names() const noexcept { return order_; }
  unsigned width_of(const std::string& name) const;

  /// Next scalar vector for an input (advances only that input's stream).
  Bits next(const std::string& name);

  /// Next 64-lane stimulus: element i holds bit i's 64 lane values.  Lane 0
  /// follows the declared constraint (identical to the scalar stream);
  /// lanes 1..63 are uniform, matching the bit-parallel engines' use as a
  /// wide random-vector batch.
  std::vector<std::uint64_t> next_lanes(const std::string& name);

  /// Allocation-free variant: writes width_of(name) lane words into `out`.
  /// Same stream as the allocating overload.
  void next_lanes(const std::string& name, std::uint64_t* out);

  /// Restart every stream from the construction seed.
  void restart();

private:
  struct Input {
    std::string name;
    unsigned width = 0;
    StimConstraint c;
    std::uint64_t state = 0;   ///< splitmix64 state (constrained stream)
    std::uint64_t lane_state = 0;  ///< splitmix64 state (lanes 1..63)
    Bits held;                 ///< kSticky current value / kBitToggle walker
    unsigned hold_left = 0;    ///< kSticky cycles remaining
  };

  std::uint64_t seed_;
  std::vector<Input> inputs_;
  std::vector<std::string> order_;

  Input& find(const std::string& name);
  const Input& find(const std::string& name) const;
  static std::uint64_t next_u64(std::uint64_t& state);
  static Bits uniform_bits(std::uint64_t& state, unsigned width);
  Bits next_value(Input& in);
};

/// Base seed for fuzz suites: OSSS_FUZZ_SEED if set, else `fallback`.
/// Parsed through par::env_u64, so garbage / negative values fall back with
/// a stderr warning instead of silently truncating.  Nightly CI sets a
/// time-derived value so every run explores new vectors; the chosen seed
/// must be printed on failure.
std::uint64_t env_seed(std::uint64_t fallback);

/// Iteration count for fuzz suites: `base * OSSS_FUZZ_ITERS` when the
/// variable is set (multiplier clamped to [1, 1000000], product capped at
/// 1000000), else `base`.  Malformed values fall back with a warning.
unsigned env_iters(unsigned base);

}  // namespace osss::verify
