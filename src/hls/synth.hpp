// synth.hpp — behavioral synthesis: Behavior -> FSM + datapath RTL.
//
// This plays the role of the SystemC behavioral-synthesis tool in the
// paper's flow (its Fig. 6 "SystemC Compiler" box):
//
//   * every wait() becomes an FSM state;
//   * the code between waits is symbolically executed — branches fork into
//     guarded paths, OSSS method calls are inlined through the resolved
//     class model — yielding, per state, a set of exclusive transitions
//     with next-state and register-update expressions;
//   * binding: multiplications can optionally be *shared* on a single
//     (or few) multiplier unit(s) with operand multiplexers, the classic
//     behavioral-synthesis resource binding.  The muxes are the paper's
//     "some unnecessary overhead ... influence on area and speed" — made
//     measurable by the R10 ablation;
//   * the reset preamble (code before the first wait) must be input-
//     independent; its effect becomes the registers' reset values, matching
//     the SC_CTHREAD watching() semantics.

#pragma once

#include "hls/behavior.hpp"
#include "rtl/ir.hpp"

namespace osss::hls {

struct Options {
  /// Bind all (non-guard) multiplications onto shared multiplier units
  /// with operand muxes instead of instantiating one multiplier per use.
  bool share_multipliers = false;
};

struct Report {
  unsigned states = 0;
  unsigned transitions = 0;
  unsigned state_bits = 0;
  unsigned register_bits = 0;
  unsigned mul_ops = 0;    ///< multiplication sites in the behaviour
  unsigned mul_units = 0;  ///< multiplier instances after binding
};

/// Synthesize a behaviour into an RTL module.  Inputs become input ports;
/// vars declared with output=true become (registered) output ports.
rtl::Module synthesize(const Behavior& beh, const Options& options = {},
                       Report* report = nullptr);

}  // namespace osss::hls
