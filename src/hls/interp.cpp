#include "hls/interp.hpp"

#include <stdexcept>

#include "meta/expr.hpp"

namespace osss::hls {

namespace {
[[noreturn]] void bad(const std::string& name, const std::string& msg) {
  throw std::logic_error("hls::Interpreter " + name + ": " + msg);
}
}  // namespace

Interpreter::Interpreter(Behavior beh) : beh_(std::move(beh)) { reset(); }

void Interpreter::reset() {
  vars_.clear();
  for (const VarDecl& v : beh_.vars) {
    if (!v.is_temp) vars_[v.name] = v.init;
  }
  run_to_wait(0);
}

void Interpreter::set_input(const std::string& name, const Bits& value) {
  const InputDecl* in = beh_.find_input(name);
  if (in == nullptr) bad(beh_.name, "no input " + name);
  if (in->width != value.width())
    bad(beh_.name, "input width mismatch on " + name);
  inputs_[name] = value;
}

void Interpreter::set_input(const std::string& name, std::uint64_t value) {
  const InputDecl* in = beh_.find_input(name);
  if (in == nullptr) bad(beh_.name, "no input " + name);
  set_input(name, Bits(in->width, value));
}

const Bits& Interpreter::var(const std::string& name) const {
  const auto it = vars_.find(name);
  if (it == vars_.end()) bad(beh_.name, "no variable " + name);
  return it->second;
}

void Interpreter::step() { run_to_wait(pc_ + 1); }

void Interpreter::run_to_wait(std::size_t pc) {
  // Build the concrete environment: all state variables plus inputs
  // (inputs default to zero until driven, like undriven ports).
  meta::Env env;
  for (const auto& [name, value] : vars_)
    env.locals[name] = meta::constant(value);
  for (const InputDecl& in : beh_.inputs) {
    const auto it = inputs_.find(in.name);
    env.params[in.name] =
        meta::constant(it != inputs_.end() ? it->second : Bits(in.width));
  }

  std::size_t steps = 0;
  const std::size_t limit = (beh_.code.size() + 4) * 4096;
  for (;;) {
    if (++steps > limit)
      bad(beh_.name, "runaway execution — loop without wait()?");
    if (pc >= beh_.code.size()) bad(beh_.name, "fell off the end");
    const Instr& ins = beh_.code[pc];
    switch (ins.kind) {
      case Instr::Kind::kAssign:
        env.locals[ins.target] = meta::substitute(ins.expr, env);
        ++pc;
        break;
      case Instr::Kind::kCall: {
        const VarDecl* obj = beh_.find_var(ins.object);
        if (obj == nullptr || !obj->cls)
          bad(beh_.name, "bad call object " + ins.object);
        std::vector<Bits> args;
        args.reserve(ins.args.size());
        for (const auto& a : ins.args)
          args.push_back(meta::eval_const(meta::substitute(a, env)));
        const Bits state =
            meta::eval_const(env.locals.at(ins.object));
        const auto result = obj->cls->call(ins.method, state, args);
        env.locals[ins.object] = meta::constant(result.state);
        if (!ins.result.empty()) {
          if (!result.ret)
            bad(beh_.name, "method " + ins.method + " returned nothing");
          env.locals[ins.result] = meta::constant(*result.ret);
        }
        ++pc;
        break;
      }
      case Instr::Kind::kBranch: {
        const Bits c = meta::eval_const(meta::substitute(ins.cond, env));
        pc = c.bit(0) ? pc + 1 : ins.target_pc;
        break;
      }
      case Instr::Kind::kJump:
        pc = ins.target_pc;
        break;
      case Instr::Kind::kWait: {
        // Commit: persistent variables only; temps die here.
        for (auto& [name, value] : vars_)
          value = meta::eval_const(env.locals.at(name));
        pc_ = pc;
        state_ = ins.state_id;
        return;
      }
    }
  }
}

}  // namespace osss::hls
