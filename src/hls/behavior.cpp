#include "hls/behavior.hpp"

#include <stdexcept>

namespace osss::hls {

namespace {
[[noreturn]] void bad(const std::string& name, const std::string& msg) {
  throw std::logic_error("hls::Behavior " + name + ": " + msg);
}
}  // namespace

const VarDecl* Behavior::find_var(const std::string& wanted) const {
  for (const VarDecl& v : vars)
    if (v.name == wanted) return &v;
  return nullptr;
}

const InputDecl* Behavior::find_input(const std::string& wanted) const {
  for (const InputDecl& i : inputs)
    if (i.name == wanted) return &i;
  return nullptr;
}

BehaviorBuilder::BehaviorBuilder(std::string name) { b_.name = std::move(name); }

void BehaviorBuilder::check_not_taken() const {
  if (taken_) bad(b_.name, "builder already finalized");
}

ExprPtr BehaviorBuilder::input(const std::string& name, unsigned width) {
  check_not_taken();
  if (b_.find_input(name) != nullptr || b_.find_var(name) != nullptr)
    bad(b_.name, "duplicate name " + name);
  b_.inputs.push_back({name, width});
  return meta::param(name, width);
}

ExprPtr BehaviorBuilder::var(const std::string& name, unsigned width,
                             std::uint64_t init, bool output) {
  return var(name, Bits(width, init), output);
}

ExprPtr BehaviorBuilder::var(const std::string& name, Bits init, bool output) {
  check_not_taken();
  if (b_.find_input(name) != nullptr || b_.find_var(name) != nullptr)
    bad(b_.name, "duplicate name " + name);
  VarDecl v;
  v.name = name;
  v.width = init.width();
  v.init = std::move(init);
  v.is_output = output;
  b_.vars.push_back(std::move(v));
  return meta::local(name, b_.vars.back().width);
}

ExprPtr BehaviorBuilder::object(const std::string& name, ClassPtr cls) {
  check_not_taken();
  if (!cls) bad(b_.name, "null class for object " + name);
  if (b_.find_input(name) != nullptr || b_.find_var(name) != nullptr)
    bad(b_.name, "duplicate name " + name);
  VarDecl v;
  v.name = name;
  v.width = cls->data_width();
  v.init = cls->initial_value();
  v.cls = std::move(cls);
  b_.vars.push_back(std::move(v));
  return meta::local(name, b_.vars.back().width);
}

const VarDecl& BehaviorBuilder::require_var(const ExprPtr& ref,
                                            const char* what) const {
  if (!ref || ref->kind != meta::ExprKind::kLocalRef)
    bad(b_.name, std::string(what) + ": not a variable reference");
  const VarDecl* v = b_.find_var(ref->name);
  if (v == nullptr) bad(b_.name, std::string(what) + ": unknown variable " +
                                     ref->name);
  if (v->width != ref->width)
    bad(b_.name, std::string(what) + ": stale reference to " + ref->name);
  return *v;
}

void BehaviorBuilder::assign(const ExprPtr& var_ref, ExprPtr value) {
  check_not_taken();
  const VarDecl& v = require_var(var_ref, "assign");
  if (!value) bad(b_.name, "assign: null value");
  if (value->width != v.width)
    bad(b_.name, "assign: width mismatch on " + v.name);
  Instr i;
  i.kind = Instr::Kind::kAssign;
  i.target = v.name;
  i.expr = std::move(value);
  b_.code.push_back(std::move(i));
}

void BehaviorBuilder::wait(unsigned cycles) {
  check_not_taken();
  if (cycles == 0) bad(b_.name, "wait(0)");
  for (unsigned c = 0; c < cycles; ++c) {
    Instr i;
    i.kind = Instr::Kind::kWait;
    b_.code.push_back(std::move(i));
  }
}

void BehaviorBuilder::if_(ExprPtr cond, const std::function<void()>& then_fn,
                          const std::function<void()>& else_fn) {
  check_not_taken();
  if (!cond || cond->width != 1) bad(b_.name, "if: condition must be 1 bit");
  Instr br;
  br.kind = Instr::Kind::kBranch;
  br.cond = std::move(cond);
  const std::size_t br_pc = b_.code.size();
  b_.code.push_back(std::move(br));
  then_fn();
  if (else_fn) {
    Instr jmp;
    jmp.kind = Instr::Kind::kJump;
    const std::size_t jmp_pc = b_.code.size();
    b_.code.push_back(std::move(jmp));
    b_.code[br_pc].target_pc = b_.code.size();  // else entry
    else_fn();
    b_.code[jmp_pc].target_pc = b_.code.size();  // end
  } else {
    b_.code[br_pc].target_pc = b_.code.size();
  }
}

void BehaviorBuilder::while_(ExprPtr cond, const std::function<void()>& body) {
  check_not_taken();
  if (!cond || cond->width != 1)
    bad(b_.name, "while: condition must be 1 bit");
  const std::size_t head = b_.code.size();
  Instr br;
  br.kind = Instr::Kind::kBranch;
  br.cond = std::move(cond);
  const std::size_t br_pc = b_.code.size();
  b_.code.push_back(std::move(br));
  body();
  Instr jmp;
  jmp.kind = Instr::Kind::kJump;
  jmp.target_pc = head;
  b_.code.push_back(std::move(jmp));
  b_.code[br_pc].target_pc = b_.code.size();
}

void BehaviorBuilder::loop(const std::function<void()>& body) {
  check_not_taken();
  const std::size_t head = b_.code.size();
  body();
  Instr jmp;
  jmp.kind = Instr::Kind::kJump;
  jmp.target_pc = head;
  b_.code.push_back(std::move(jmp));
}

void BehaviorBuilder::wait_until(ExprPtr cond) {
  while_(meta::bnot(std::move(cond)), [&] { wait(); });
}

void BehaviorBuilder::call(const ExprPtr& obj_ref, const std::string& method,
                           std::vector<ExprPtr> args) {
  check_not_taken();
  const VarDecl& v = require_var(obj_ref, "call");
  if (!v.cls) bad(b_.name, "call: " + v.name + " is not an object");
  const meta::MethodDesc* m = v.cls->find_method(method);
  if (m == nullptr)
    bad(b_.name, "call: no method " + method + " on " + v.cls->name());
  if (m->params.size() != args.size())
    bad(b_.name, "call: argument count mismatch on " + method);
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (!args[i] || args[i]->width != m->params[i].width)
      bad(b_.name, "call: argument width mismatch on " + method + "/" +
                       m->params[i].name);
  }
  Instr ins;
  ins.kind = Instr::Kind::kCall;
  ins.object = v.name;
  ins.method = method;
  ins.args = std::move(args);
  b_.code.push_back(std::move(ins));
}

ExprPtr BehaviorBuilder::call_r(const ExprPtr& obj_ref,
                                const std::string& method,
                                std::vector<ExprPtr> args) {
  check_not_taken();
  // Copy what we need out of the VarDecl before any push_back can move the
  // vars vector under us.
  const std::string obj_name = require_var(obj_ref, "call_r").name;
  const ClassPtr cls = require_var(obj_ref, "call_r").cls;
  if (!cls) bad(b_.name, "call_r: " + obj_name + " is not an object");
  const meta::MethodDesc* m = cls->find_method(method);
  if (m == nullptr)
    bad(b_.name, "call_r: no method " + method + " on " + cls->name());
  if (m->return_width == 0)
    bad(b_.name, "call_r: method " + method + " is void");
  if (m->params.size() != args.size())
    bad(b_.name, "call_r: argument count mismatch on " + method);
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (!args[i] || args[i]->width != m->params[i].width)
      bad(b_.name, "call_r: argument width mismatch on " + method);
  }

  const std::string temp =
      "__t" + std::to_string(temp_counter_++) + "_" + method;
  VarDecl t;
  t.name = temp;
  t.width = m->return_width;
  t.init = Bits(m->return_width);
  t.is_temp = true;
  b_.vars.push_back(std::move(t));

  Instr ins;
  ins.kind = Instr::Kind::kCall;
  ins.object = obj_name;
  ins.method = method;
  ins.args = std::move(args);
  ins.result = temp;
  b_.code.push_back(std::move(ins));
  return meta::local(temp, m->return_width);
}

Behavior BehaviorBuilder::take() {
  check_not_taken();
  taken_ = true;
  if (b_.code.empty() || b_.code.back().kind != Instr::Kind::kJump)
    bad(b_.name,
        "behavior must end in an infinite loop (use loop(...) as the tail)");
  unsigned state = 0;
  for (Instr& i : b_.code) {
    if (i.kind == Instr::Kind::kWait) i.state_id = state++;
    if ((i.kind == Instr::Kind::kJump || i.kind == Instr::Kind::kBranch) &&
        i.target_pc > b_.code.size())
      bad(b_.name, "branch target out of range");
  }
  if (state == 0) bad(b_.name, "behavior has no wait(): nothing to clock");
  b_.state_count = state;
  return std::move(b_);
}

}  // namespace osss::hls
