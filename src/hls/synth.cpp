#include "hls/synth.hpp"

#include <map>
#include <memory>
#include <set>
#include <stdexcept>
#include <unordered_set>

#include "meta/emit.hpp"
#include "rtl/builder.hpp"

namespace osss::hls {

namespace {

using meta::Env;
using meta::Expr;
using meta::ExprKind;
using meta::ExprPtr;
using rtl::Wire;

[[noreturn]] void bad(const std::string& name, const std::string& msg) {
  throw std::logic_error("hls::synthesize " + name + ": " + msg);
}

constexpr unsigned kEntryState = static_cast<unsigned>(-1);

struct Transition {
  unsigned from = 0;
  unsigned to = 0;
  ExprPtr guard;  ///< nullptr = unconditional
  std::map<std::string, ExprPtr> regs;  ///< next value per register var
};

unsigned bits_for(unsigned count) {
  unsigned w = 1;
  while ((1u << w) < count) ++w;
  return w;
}

/// Collect kBinary/kMul nodes in deterministic post-order (operands before
/// users), deduplicated.
void collect_muls(const ExprPtr& e, std::unordered_set<const Expr*>& seen,
                  std::vector<ExprPtr>& out) {
  if (!e || seen.count(e.get())) return;
  seen.insert(e.get());
  for (const auto& a : e->args) collect_muls(a, seen, out);
  if (e->kind == ExprKind::kBinary && e->bop == meta::BinOp::kMul)
    out.push_back(e);
}

/// Branch context of an operation: the cond nodes (and polarities) on the
/// path from the expression root.  Two operations whose contexts contain
/// the same cond node with opposite polarity can never be live together —
/// the binder's mutual-exclusion test.
using BranchContext = std::vector<std::pair<ExprPtr, bool>>;

struct MulSite {
  ExprPtr node;
  BranchContext context;  ///< intersection over all occurrences
};

struct MulCollector {
  std::vector<MulSite> sites;
  std::unordered_set<const Expr*> tainted;  ///< excluded from binding
  std::unordered_map<const Expr*, unsigned> visits;
  static constexpr unsigned kVisitCap = 64;

  void taint_subtree(const ExprPtr& e) {
    std::unordered_set<const Expr*> seen;
    std::vector<ExprPtr> muls;
    collect_muls(e, seen, muls);
    for (const auto& m : muls) tainted.insert(m.get());
  }

  void walk(const ExprPtr& e, BranchContext& ctx) {
    if (!e) return;
    if (++visits[e.get()] > kVisitCap) {
      // Heavily shared subtree: visiting every occurrence would be too
      // expensive, and partial context information would be unsound —
      // exclude its multiplications from binding instead.
      taint_subtree(e);
      return;
    }
    if (e->kind == ExprKind::kCond) {
      // Multiplications inside a select condition would feed the operand
      // muxes' own selects; keep them out of binding.
      taint_subtree(e->args[0]);
      ctx.emplace_back(e->args[0], true);
      walk(e->args[1], ctx);
      ctx.back().second = false;
      walk(e->args[2], ctx);
      ctx.pop_back();
    } else {
      for (const auto& a : e->args) walk(a, ctx);
    }
    if (e->kind == ExprKind::kBinary && e->bop == meta::BinOp::kMul) {
      for (MulSite& site : sites) {
        if (site.node.get() == e.get()) {
          // Seen before: keep only context entries common to both paths.
          BranchContext common;
          for (const auto& entry : site.context) {
            for (const auto& now : ctx) {
              if (entry == now) {
                common.push_back(entry);
                break;
              }
            }
          }
          site.context = std::move(common);
          return;
        }
      }
      sites.push_back(MulSite{e, ctx});
    }
  }
};

bool contexts_exclusive(const BranchContext& a, const BranchContext& b) {
  for (const auto& [node, pol_a] : a) {
    for (const auto& [node_b, pol_b] : b) {
      if (node.get() == node_b.get() && pol_a != pol_b) return true;
    }
  }
  return false;
}

class FsmSynth {
public:
  FsmSynth(const Behavior& beh, const Options& options)
      : beh_(beh), opt_(options) {}

  rtl::Module run(Report* report);

private:
  /// A transition under construction (no `from` yet — exploration is per
  /// start state).
  struct Partial {
    unsigned to = 0;
    ExprPtr guard;  ///< nullptr = unconditional
    std::map<std::string, ExprPtr> regs;
  };

  const Behavior& beh_;
  const Options& opt_;
  std::vector<Transition> transitions_;
  std::size_t steps_ = 0;
  std::size_t step_limit_ = 0;
  std::size_t depth_ = 0;
  static constexpr std::size_t kMaxBranchDepth = 256;

  Env fresh_env(bool constant_init) const;

  /// Join-aware symbolic execution from `pc`: branches explore both arms
  /// and *merge* results reaching the same wait into one transition whose
  /// register updates are nested conditional expressions — preserving the
  /// source's if-structure instead of enumerating exponentially many
  /// control paths.
  std::vector<Partial> explore(std::size_t pc, Env env);

  /// Fold all entries (mutually exclusive guards) targeting one state into
  /// a single Partial.
  static Partial fold_group(std::vector<Partial> group);
};

Env FsmSynth::fresh_env(bool constant_init) const {
  Env env;
  for (const VarDecl& v : beh_.vars) {
    if (v.is_temp) continue;  // temps are dead at state boundaries
    env.locals[v.name] =
        constant_init ? meta::constant(v.init) : meta::local(v.name, v.width);
  }
  for (const InputDecl& i : beh_.inputs)
    env.params[i.name] = meta::param(i.name, i.width);
  return env;
}

FsmSynth::Partial FsmSynth::fold_group(std::vector<Partial> group) {
  // Guards within a group are mutually exclusive; an unconditional entry
  // can only ever be alone.
  Partial acc = std::move(group.front());
  for (std::size_t i = 1; i < group.size(); ++i) {
    Partial& t = group[i];
    if (!acc.guard || !t.guard)
      throw std::logic_error("hls: unconditional transition has siblings");
    for (auto& [name, tree] : acc.regs)
      tree = meta::cond(t.guard, t.regs.at(name), tree);
    acc.guard = meta::bor(t.guard, acc.guard);
  }
  return acc;
}

std::vector<FsmSynth::Partial> FsmSynth::explore(std::size_t pc, Env env) {
  for (;;) {
    if (++steps_ > step_limit_)
      bad(beh_.name,
          "state exploration did not terminate — a loop without wait()?");
    if (pc >= beh_.code.size())
      bad(beh_.name, "fell off the end of the code");
    const Instr& ins = beh_.code[pc];
    switch (ins.kind) {
      case Instr::Kind::kAssign: {
        ExprPtr v = meta::substitute(ins.expr, env);
        env.locals[ins.target] = std::move(v);
        ++pc;
        break;
      }
      case Instr::Kind::kCall: {
        const VarDecl* obj = beh_.find_var(ins.object);
        const auto it = env.locals.find(ins.object);
        if (obj == nullptr || !obj->cls || it == env.locals.end())
          bad(beh_.name, "call on unknown object " + ins.object);
        const meta::MethodDesc* m = obj->cls->find_method(ins.method);
        if (m == nullptr)
          bad(beh_.name, "no method " + ins.method + " on " + ins.object);
        Env call_env = obj->cls->member_env(it->second);
        for (std::size_t i = 0; i < ins.args.size(); ++i) {
          call_env.params[m->params[i].name] =
              meta::substitute(ins.args[i], env);
        }
        const ExprPtr ret = meta::exec_stmts(m->body, call_env);
        env.locals[ins.object] = obj->cls->pack_members(call_env);
        if (!ins.result.empty()) {
          if (!ret)
            bad(beh_.name, "method " + ins.method + " returned nothing");
          env.locals[ins.result] = ret;
        }
        ++pc;
        break;
      }
      case Instr::Kind::kBranch: {
        const ExprPtr c = meta::substitute(ins.cond, env);
        if (meta::is_const(c)) {
          pc = c->value.bit(0) ? pc + 1 : ins.target_pc;
          break;
        }
        // Explore both arms and *join*: results reaching the same wait
        // merge into one transition with cond-merged register updates.
        if (++depth_ > kMaxBranchDepth)
          bad(beh_.name,
              "branch nesting exceeds limit — a data-dependent loop "
              "without wait()?");
        std::vector<Partial> taken = explore(pc + 1, env);
        std::vector<Partial> skipped = explore(ins.target_pc, std::move(env));
        --depth_;
        std::vector<Partial> merged;
        for (Partial& t : taken) {
          // Find and fold all not-taken entries with the same target.
          std::vector<Partial> group_e;
          for (auto it2 = skipped.begin(); it2 != skipped.end();) {
            if (it2->to == t.to) {
              group_e.push_back(std::move(*it2));
              it2 = skipped.erase(it2);
            } else {
              ++it2;
            }
          }
          if (group_e.empty()) {
            t.guard = t.guard ? meta::band(c, t.guard) : c;
            merged.push_back(std::move(t));
            continue;
          }
          Partial e = fold_group(std::move(group_e));
          Partial m;
          m.to = t.to;
          for (auto& [name, tree] : t.regs)
            m.regs[name] = meta::cond(c, tree, e.regs.at(name));
          if (!t.guard && !e.guard) {
            m.guard = nullptr;  // both sides unconditional: join is total
          } else {
            const ExprPtr gt = t.guard ? meta::band(c, t.guard) : c;
            const ExprPtr ge =
                e.guard ? meta::band(meta::bnot(c), e.guard) : meta::bnot(c);
            m.guard = meta::bor(gt, ge);
          }
          merged.push_back(std::move(m));
        }
        for (Partial& e : skipped) {
          e.guard = e.guard ? meta::band(meta::bnot(c), e.guard)
                            : meta::bnot(c);
          merged.push_back(std::move(e));
        }
        return merged;
      }
      case Instr::Kind::kJump:
        pc = ins.target_pc;
        break;
      case Instr::Kind::kWait: {
        Partial p;
        p.to = ins.state_id;
        for (const VarDecl& v : beh_.vars) {
          if (v.is_temp) continue;
          const auto it = env.locals.find(v.name);
          if (it == env.locals.end())
            bad(beh_.name, "lost variable " + v.name);
          p.regs[v.name] = it->second;
        }
        return {std::move(p)};
      }
    }
  }
}

rtl::Module FsmSynth::run(Report* report) {
  step_limit_ = (beh_.code.size() + 4) * 4096;

  // Entry/preamble: must be input-independent and constant.
  steps_ = 0;
  std::vector<Partial> entry = explore(0, fresh_env(/*constant_init=*/true));
  if (entry.size() != 1 || entry[0].guard != nullptr)
    bad(beh_.name,
        "reset preamble must reach exactly one wait() unconditionally");
  for (const auto& [name, tree] : entry[0].regs) {
    if (!meta::is_const(tree))
      bad(beh_.name, "reset preamble value of '" + name +
                         "' depends on inputs — not synthesizable as a "
                         "register reset value");
  }
  const unsigned initial_state = entry[0].to;

  // Per-state exploration.
  for (const Instr& ins : beh_.code) {
    if (ins.kind != Instr::Kind::kWait) continue;
    steps_ = 0;
    std::vector<Partial> parts =
        explore(static_cast<std::size_t>(&ins - beh_.code.data()) + 1,
                fresh_env(/*constant_init=*/false));
    for (Partial& p : parts) {
      Transition t;
      t.from = ins.state_id;
      t.to = p.to;
      t.guard = std::move(p.guard);
      t.regs = std::move(p.regs);
      transitions_.push_back(std::move(t));
    }
  }

  // Merge transitions sharing (from, to): distinct control paths that end
  // in the same state become one guarded transition whose register updates
  // are conditional expressions.  Without this, every if/else between two
  // waits would multiply the transition count (and the datapath muxing)
  // exponentially — real behavioral synthesis keeps the if-structure.
  {
    std::vector<Transition> merged;
    for (const Transition& t : transitions_) {
      Transition* slot = nullptr;
      for (Transition& m : merged) {
        if (m.from == t.from && m.to == t.to) {
          slot = &m;
          break;
        }
      }
      if (slot == nullptr) {
        merged.push_back(t);
        continue;
      }
      // Guards are mutually exclusive by construction, so the merge is
      // cond-select on the incoming guard; an unconditional transition
      // absorbs everything.
      if (slot->guard == nullptr) continue;  // already always-taken
      if (t.guard == nullptr) {
        for (auto& [name, tree] : slot->regs)
          tree = meta::cond(slot->guard, tree, t.regs.at(name));
        slot->guard = nullptr;
      } else {
        for (auto& [name, tree] : slot->regs)
          tree = meta::cond(t.guard, t.regs.at(name), tree);
        slot->guard = meta::bor(slot->guard, t.guard);
      }
    }
    transitions_ = std::move(merged);
  }

  // ---- emission --------------------------------------------------------
  rtl::Builder b(beh_.name);
  meta::RtlEmitter shared_em(b);

  std::map<std::string, Wire> input_wires;
  for (const InputDecl& in : beh_.inputs) {
    const Wire w = b.input(in.name, in.width);
    input_wires[in.name] = w;
    shared_em.bind_param(in.name, w);
  }

  const unsigned sw = bits_for(beh_.state_count);
  const Wire state = b.reg("__state", sw, Bits(sw, initial_state));

  std::map<std::string, Wire> reg_wires;
  unsigned reg_bits = 0;
  for (const VarDecl& v : beh_.vars) {
    if (v.is_temp) continue;
    const Bits init = entry[0].regs.at(v.name)->value;
    const Wire q = b.reg(v.name, v.width, init);
    reg_wires[v.name] = q;
    shared_em.bind_local(v.name, q);
    reg_bits += v.width;
  }

  // Guard wires, always through the shared emitter.
  std::map<unsigned, Wire> state_sel;
  for (const Transition& t : transitions_) {
    if (!state_sel.count(t.from))
      state_sel[t.from] = b.eq(state, b.constant(sw, t.from));
  }
  std::vector<Wire> guards(transitions_.size());
  for (std::size_t i = 0; i < transitions_.size(); ++i) {
    const Transition& t = transitions_[i];
    guards[i] = t.guard ? b.and_(state_sel[t.from], shared_em.emit(t.guard))
                        : state_sel[t.from];
  }

  unsigned mul_ops = 0;
  unsigned mul_units = 0;
  std::vector<std::unique_ptr<meta::RtlEmitter>> per_tr_em;

  if (opt_.share_multipliers) {
    // Muls reachable from guards are excluded from binding (their operand
    // muxes would be selected by the guards themselves — a combinational
    // cycle); they emit privately through the shared emitter instead.
    std::unordered_set<const Expr*> excluded;
    {
      std::unordered_set<const Expr*> seen;
      std::vector<ExprPtr> tmp;
      for (const Transition& t : transitions_)
        if (t.guard) collect_muls(t.guard, seen, tmp);
      for (const auto& e : tmp) excluded.insert(e.get());
    }
    // Collect bindable sites per transition with their branch contexts.
    struct Site {
      std::size_t tr;
      ExprPtr node;
      BranchContext context;
      unsigned unit = 0;
    };
    std::vector<Site> sites;
    for (std::size_t i = 0; i < transitions_.size(); ++i) {
      MulCollector mc;
      BranchContext ctx;
      for (const auto& [name, tree] : transitions_[i].regs)
        mc.walk(tree, ctx);
      for (const MulSite& s : mc.sites) {
        if (excluded.count(s.node.get()) || mc.tainted.count(s.node.get()))
          continue;
        sites.push_back(Site{i, s.node, s.context, 0});
      }
    }
    {
      std::unordered_set<const Expr*> distinct;
      for (const Site& s : sites) distinct.insert(s.node.get());
      mul_ops = static_cast<unsigned>(distinct.size());
    }
    // Greedy unit assignment.  Compatibility: different transitions are
    // exclusive in time (state guards); same-transition sites need
    // contradictory branch contexts.  A site whose operands contain bound
    // sites must land on a strictly higher unit so operand muxes never
    // form a combinational loop.
    std::vector<std::vector<std::size_t>> units;  // unit -> site indices
    std::map<std::pair<std::size_t, const Expr*>, unsigned> unit_of;
    for (std::size_t si = 0; si < sites.size(); ++si) {
      Site& s = sites[si];
      unsigned min_unit = 0;
      {
        std::unordered_set<const Expr*> seen;
        std::vector<ExprPtr> inner;
        collect_muls(s.node->args[0], seen, inner);
        collect_muls(s.node->args[1], seen, inner);
        for (const auto& m : inner) {
          const auto it = unit_of.find({s.tr, m.get()});
          if (it != unit_of.end()) min_unit = std::max(min_unit,
                                                       it->second + 1);
        }
      }
      unsigned chosen = static_cast<unsigned>(units.size());
      for (unsigned u = min_unit; u < units.size(); ++u) {
        bool ok = true;
        for (const std::size_t other : units[u]) {
          if (sites[other].tr != s.tr) continue;  // time-exclusive
          if (sites[other].node.get() == s.node.get() ||
              !contexts_exclusive(sites[other].context, s.context)) {
            ok = false;
            break;
          }
        }
        if (ok) {
          chosen = u;
          break;
        }
      }
      if (chosen == units.size()) units.emplace_back();
      units[chosen].push_back(si);
      s.unit = chosen;
      unit_of[{s.tr, s.node.get()}] = chosen;
    }
    mul_units = static_cast<unsigned>(units.size());

    per_tr_em.reserve(transitions_.size());
    for (std::size_t i = 0; i < transitions_.size(); ++i) {
      auto em = std::make_unique<meta::RtlEmitter>(b);
      for (const auto& [name, w] : input_wires) em->bind_param(name, w);
      for (const auto& [name, w] : reg_wires) em->bind_local(name, w);
      per_tr_em.push_back(std::move(em));
    }
    // Build the units in index order; operand selects combine the
    // transition guard with the site's branch context.
    for (unsigned u = 0; u < units.size(); ++u) {
      unsigned unit_width = 1;
      for (const std::size_t si : units[u])
        unit_width = std::max(unit_width, sites[si].node->width);
      Wire op_a = b.constant(unit_width, 0);
      Wire op_b = b.constant(unit_width, 0);
      for (const std::size_t si : units[u]) {
        const Site& s = sites[si];
        meta::RtlEmitter& em = *per_tr_em[s.tr];
        Wire sel = guards[s.tr];
        for (const auto& [cnode, polarity] : s.context) {
          const Wire cw = em.emit(cnode);
          sel = b.and_(sel, polarity ? cw : b.not_(cw));
        }
        const Wire lhs = b.zext(em.emit(s.node->args[0]), unit_width);
        const Wire rhs = b.zext(em.emit(s.node->args[1]), unit_width);
        op_a = b.mux(sel, lhs, op_a);
        op_b = b.mux(sel, rhs, op_b);
      }
      const Wire out = b.mul(op_a, op_b);
      b.name(out, beh_.name + "__mul_unit" + std::to_string(u));
      for (const std::size_t si : units[u]) {
        const Site& s = sites[si];
        const Wire sized = s.node->width == unit_width
                               ? out
                               : b.slice(out, s.node->width - 1, 0);
        per_tr_em[s.tr]->seed(s.node, sized);
      }
    }
  } else {
    // One multiplier per distinct multiplication site.
    std::unordered_set<const Expr*> seen;
    std::vector<ExprPtr> muls;
    for (const Transition& t : transitions_)
      for (const auto& [name, tree] : t.regs) collect_muls(tree, seen, muls);
    mul_ops = mul_units = static_cast<unsigned>(muls.size());
  }

  auto emit_tree = [&](std::size_t tr, const ExprPtr& tree) -> Wire {
    return opt_.share_multipliers ? per_tr_em[tr]->emit(tree)
                                  : shared_em.emit(tree);
  };

  // Emission groups: transitions from different states whose update trees
  // are identical (pointer-equal — trees are interned) and whose target
  // matches share one guarded datapath; their guards are ORed.  This is
  // why a loop state and the preamble state, which execute the same loop
  // body, cost one datapath, not two.  (Sharing mode keeps per-transition
  // emitters, so grouping is disabled there.)
  struct EmitGroup {
    Wire guard;
    std::size_t proto;  ///< representative transition
  };
  std::vector<EmitGroup> groups;
  if (!opt_.share_multipliers) {
    std::map<std::pair<unsigned, std::vector<const Expr*>>, std::size_t> seen;
    for (std::size_t i = 0; i < transitions_.size(); ++i) {
      std::vector<const Expr*> sig;
      for (const auto& [name, tree] : transitions_[i].regs)
        sig.push_back(tree.get());
      const auto key = std::make_pair(transitions_[i].to, std::move(sig));
      const auto it = seen.find(key);
      if (it != seen.end()) {
        groups[it->second].guard = b.or_(groups[it->second].guard, guards[i]);
      } else {
        seen.emplace(key, groups.size());
        groups.push_back(EmitGroup{guards[i], i});
      }
    }
  } else {
    for (std::size_t i = 0; i < transitions_.size(); ++i)
      groups.push_back(EmitGroup{guards[i], i});
  }

  // Next-state logic: priority mux over (mutually exclusive) groups.
  Wire next_state = state;  // defensive hold
  for (const EmitGroup& g : groups) {
    next_state =
        b.mux(g.guard, b.constant(sw, transitions_[g.proto].to), next_state);
  }
  b.connect(state, next_state);

  // Register updates.
  for (const VarDecl& v : beh_.vars) {
    if (v.is_temp) continue;
    Wire acc = reg_wires[v.name];
    for (const EmitGroup& g : groups) {
      const ExprPtr& tree = transitions_[g.proto].regs.at(v.name);
      // Identity updates (variable unchanged on this transition) need no
      // mux at all.
      if (tree->kind == ExprKind::kLocalRef && tree->name == v.name) continue;
      acc = b.mux(g.guard, emit_tree(g.proto, tree), acc);
    }
    b.connect(reg_wires[v.name], acc);
    if (v.is_output) b.output(v.name, reg_wires[v.name]);
  }

  if (report != nullptr) {
    report->states = beh_.state_count;
    report->transitions = static_cast<unsigned>(transitions_.size());
    report->state_bits = sw;
    report->register_bits = reg_bits;
    report->mul_ops = mul_ops;
    report->mul_units = mul_units;
  }
  return b.take();
}

}  // namespace

rtl::Module synthesize(const Behavior& beh, const Options& options,
                       Report* report) {
  return FsmSynth(beh, options).run(report);
}

}  // namespace osss::hls
