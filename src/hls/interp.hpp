// interp.hpp — concrete, cycle-accurate execution of a Behavior.
//
// The reference model for behavioral synthesis: each step() executes the
// code between the current wait() and the next one with concrete values.
// Equivalence between this interpreter, the synthesized FSM (RTL simulator)
// and its gate netlist is what demonstrates the paper's "bit and cycle
// accurate on every stage" result.

#pragma once

#include <map>
#include <string>

#include "hls/behavior.hpp"

namespace osss::hls {

class Interpreter {
public:
  /// Copies the behaviour and runs the reset preamble up to the first
  /// wait() — the state the FSM powers up in.
  explicit Interpreter(Behavior beh);

  void set_input(const std::string& name, const Bits& value);
  void set_input(const std::string& name, std::uint64_t value);

  /// Committed value of a variable (object variables: the packed bits).
  const Bits& var(const std::string& name) const;

  /// Execute one clock cycle: resume after the current wait, run to the
  /// next wait.
  void step();
  void step(unsigned n) {
    for (unsigned i = 0; i < n; ++i) step();
  }

  /// State id of the wait() the behaviour is parked at.
  unsigned current_state() const noexcept { return state_; }

  /// Synchronous reset: variables to declared inits, re-run the preamble.
  void reset();

private:
  const Behavior beh_;
  std::map<std::string, Bits> vars_;
  std::map<std::string, Bits> inputs_;
  std::size_t pc_ = 0;   ///< pc of the wait we are parked at (+1 = resume)
  unsigned state_ = 0;

  void run_to_wait(std::size_t pc);
};

}  // namespace osss::hls
