// behavior.hpp — behavioral (clocked-thread) design descriptions for
// synthesis.
//
// In the paper's OSSS flow, control-dominated modules (the I2C master,
// threshold and parameter calculation) are written as SC_CTHREADs: an
// infinite loop with wait() statements, classes accessed through member
// functions.  This module captures that style for synthesis: a structured
// behaviour with assignments, if/while control flow, multi-cycle waits and
// OSSS object method calls, lowered to a small linear instruction form that
// the FSM synthesizer (synth.hpp) consumes.
//
// The executable C++ coroutine (sysc::Behavior) and this description are
// the two views of the same design: the cycle-accuracy experiments check
// them against each other.

#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "meta/class_desc.hpp"

namespace osss::hls {

using meta::Bits;
using meta::ClassPtr;
using meta::ExprPtr;

struct InputDecl {
  std::string name;
  unsigned width = 0;
};

struct VarDecl {
  std::string name;
  unsigned width = 0;
  Bits init;
  bool is_output = false;
  bool is_temp = false;  ///< wire-like: must not live across a wait
  ClassPtr cls;          ///< non-null: an OSSS object variable
};

struct Instr {
  enum class Kind : std::uint8_t { kAssign, kCall, kBranch, kJump, kWait };
  Kind kind = Kind::kWait;
  // kAssign
  std::string target;
  ExprPtr expr;
  // kCall: object method invocation; `result` names a var for the return
  // value (empty for void calls).
  std::string object;
  std::string method;
  std::vector<ExprPtr> args;
  std::string result;
  // kBranch: if `cond` evaluates FALSE, jump to `target_pc`; kJump:
  // unconditional.
  ExprPtr cond;
  std::size_t target_pc = 0;
  // kWait
  unsigned state_id = 0;  ///< assigned at finalization
};

/// A finished behavioural description.
struct Behavior {
  std::string name;
  std::vector<InputDecl> inputs;
  std::vector<VarDecl> vars;
  std::vector<Instr> code;
  unsigned state_count = 0;

  const VarDecl* find_var(const std::string& name) const;
  const InputDecl* find_input(const std::string& name) const;
};

/// Structured-control builder producing a Behavior.
///
///   BehaviorBuilder bb("i2c");
///   auto start = bb.input("start", 1);
///   auto busy  = bb.var("busy", 1, 0, /*output=*/true);
///   bb.loop([&] {
///     bb.if_(start, [&] {
///       bb.assign(busy, meta::constant(1, 1));
///       bb.wait(4);
///       bb.assign(busy, meta::constant(1, 0));
///     });
///     bb.wait();
///   });
///   Behavior beh = bb.take();
class BehaviorBuilder {
public:
  explicit BehaviorBuilder(std::string name);

  /// Declare an input signal; returns the expression referencing it.
  ExprPtr input(const std::string& name, unsigned width);

  /// Declare a state variable (a register after synthesis).  Returns the
  /// expression referencing it.
  ExprPtr var(const std::string& name, unsigned width, std::uint64_t init = 0,
              bool output = false);
  ExprPtr var(const std::string& name, Bits init, bool output = false);

  /// Declare an OSSS object variable of class `cls` (initialized by the
  /// class constructor).  Returns the raw-bits reference.
  ExprPtr object(const std::string& name, ClassPtr cls);

  void assign(const ExprPtr& var_ref, ExprPtr value);
  void wait(unsigned cycles = 1);

  void if_(ExprPtr cond, const std::function<void()>& then_fn,
           const std::function<void()>& else_fn = {});
  void while_(ExprPtr cond, const std::function<void()>& body);
  /// `while (true)` — the standard tail of an SC_CTHREAD.
  void loop(const std::function<void()>& body);
  /// Busy-wait: `while (!cond) wait();`
  void wait_until(ExprPtr cond);

  /// Invoke a void method on an object variable.
  void call(const ExprPtr& obj_ref, const std::string& method,
            std::vector<ExprPtr> args = {});
  /// Invoke a returning method; the result is available through the
  /// returned temporary expression *within the current state only*.
  ExprPtr call_r(const ExprPtr& obj_ref, const std::string& method,
                 std::vector<ExprPtr> args = {});

  /// Finalize: assigns wait/state ids and validates structure.
  Behavior take();

private:
  Behavior b_;
  bool taken_ = false;
  unsigned temp_counter_ = 0;

  const VarDecl& require_var(const ExprPtr& ref, const char* what) const;
  void check_not_taken() const;
};

}  // namespace osss::hls
