// batch.hpp — stimulus blocks for batch simulation across pool workers.
//
// A StimulusBlock is one self-contained simulation job: `cycles` cycles of
// pre-generated input values for `in_slots` input ports, starting from
// power-on reset, producing `cycles` rows of `out_slots` sampled outputs.
// Blocks are independent by construction (each starts from reset), so a
// batch of blocks can run on any worker in any order and the per-block
// outputs are bit-identical for every thread count.
//
// Layout: flat row-major arrays.  For lanes == 1, in[c * in_slots + s] is
// the scalar value driven on input slot s at cycle c (masked to the port
// width by the batch runner).  For lane blocks (lanes a multiple of 64:
// 64 for gate bit-parallel / RTL tape lane mode, wider multiples for the
// RTL native backend) the same indexing holds but each element is one
// 64-lane word: bit i of the ports concatenated LSB-first occupies
// lanes/64 consecutive slots (its lane words, low lanes first), so
// in_slots is the sum of port widths times lanes/64.

#pragma once

#include <cstdint>
#include <vector>

namespace osss::par {

struct StimulusBlock {
  unsigned cycles = 0;
  unsigned lanes = 1;  ///< 1 (scalar) or 64 (lane-word per port bit)
  unsigned in_slots = 0;
  unsigned out_slots = 0;
  std::vector<std::uint64_t> in;   ///< [cycle * in_slots + slot]
  std::vector<std::uint64_t> out;  ///< [cycle * out_slots + slot], filled by run_batch

  static StimulusBlock make(unsigned cycles, unsigned in_slots,
                            unsigned lanes = 1) {
    StimulusBlock b;
    b.cycles = cycles;
    b.lanes = lanes;
    b.in_slots = in_slots;
    b.in.assign(static_cast<std::size_t>(cycles) * in_slots, 0);
    return b;
  }

  std::uint64_t& in_at(unsigned cycle, unsigned slot) {
    return in[static_cast<std::size_t>(cycle) * in_slots + slot];
  }
  std::uint64_t in_at(unsigned cycle, unsigned slot) const {
    return in[static_cast<std::size_t>(cycle) * in_slots + slot];
  }
  std::uint64_t out_at(unsigned cycle, unsigned slot) const {
    return out[static_cast<std::size_t>(cycle) * out_slots + slot];
  }
};

}  // namespace osss::par
