// pool.hpp — work-stealing thread pool for the verification stack.
//
// One Pool = a fixed set of execution contexts: slot 0 is the calling
// thread (it participates whenever it blocks in parallel_for), slots
// 1..size()-1 are background workers.  Each slot owns a deque of tasks;
// a slot out of local work steals half of a victim's deque (oldest tasks
// first), which keeps coarse chunks spreading instead of ping-ponging
// single tasks.
//
// The pool is deliberately simple — per-deque mutexes, one wake condition
// variable — because the verification workloads it serves (CoSim fuzz
// shards, equivalence sequences, batch simulation blocks) are coarse: a
// task is thousands of simulated cycles, so queue overhead is noise and
// the implementation stays obviously ThreadSanitizer-clean.
//
// Determinism contract: the pool never reorders *results*.  parallel_map
// writes result i of work item i into slot i and parallel_reduce folds
// those slots in ascending index order, so any reduction over pool output
// is bit-identical for every thread count (including 1, which runs inline
// on the caller with no threads spawned).  Thread count comes from the
// constructor, or OSSS_THREADS / std::thread::hardware_concurrency when
// constructed with 0 (see env_threads).

#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace osss::par {

/// std::thread::hardware_concurrency, never 0.
unsigned hardware_threads();

/// Worker count for Pool(0): OSSS_THREADS when set (hardened parse,
/// clamped to [1, 256] with a stderr warning), else `fallback`, else
/// hardware_threads().
unsigned env_threads(unsigned fallback = 0);

class Pool {
 public:
  /// `threads` execution contexts including the caller; 0 = env_threads().
  /// A 1-context pool spawns no threads and runs everything inline.
  explicit Pool(unsigned threads = 0);
  ~Pool();

  Pool(const Pool&) = delete;
  Pool& operator=(const Pool&) = delete;

  unsigned size() const noexcept { return slots_; }

  /// Run body(0..n-1), each index exactly once, across the pool; blocks
  /// until all complete (the caller executes tasks while it waits).  The
  /// first exception thrown by `body` is rethrown here after completion.
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t)>& body);

  /// Ordered map: out[i] = fn(i).  Result order is index order regardless
  /// of execution order — the deterministic-reduction primitive.
  template <class T>
  std::vector<T> parallel_map(std::size_t n,
                              const std::function<T(std::size_t)>& fn) {
    std::vector<T> out(n);
    parallel_for(n, [&](std::size_t i) { out[i] = fn(i); });
    return out;
  }

  /// Ordered reduction: fold fn(0..n-1) into `acc` in ascending index
  /// order.  `fold` runs on the calling thread only.
  template <class T, class R>
  R parallel_reduce(std::size_t n, const std::function<T(std::size_t)>& fn,
                    R acc, const std::function<R(R, T)>& fold) {
    std::vector<T> parts = parallel_map<T>(n, fn);
    for (T& p : parts) acc = fold(std::move(acc), std::move(p));
    return acc;
  }

  /// Fire-and-collect single task.  On a 1-context pool the task runs
  /// inline before submit returns.
  std::future<void> submit(std::function<void()> fn);

  struct Stats {
    std::uint64_t executed = 0;      ///< tasks run to completion
    std::uint64_t steals = 0;        ///< successful steal transactions
    std::uint64_t stolen_tasks = 0;  ///< tasks moved by those steals
  };
  Stats stats() const;

  /// Process-wide pool sized by OSSS_THREADS / hardware_concurrency;
  /// everything that takes an optional `par::Pool*` defaults to this.
  static Pool& global();

 private:
  using Task = std::function<void()>;
  /// Cache-line aligned so one worker hammering its deque mutex never
  /// invalidates a neighbour's line (the Slots are heap-allocated
  /// contiguously via make_unique and were landing back to back).
  struct alignas(64) Slot {
    std::mutex m;
    std::deque<Task> q;
  };

  unsigned slots_ = 1;
  std::vector<std::unique_ptr<Slot>> slot_;
  std::vector<std::thread> threads_;
  std::mutex wake_m_;
  std::condition_variable wake_cv_;
  std::atomic<bool> stop_{false};
  // Hot counters each on their own cache line: pending_ is written by every
  // push/completion, the stats counters by every task/steal on every
  // worker.  Packed together (the old layout) they false-share — all four
  // plus rr_ sat in one line, so each push invalidated every worker's
  // cached copy and flat thread scaling resulted on multi-core hosts.
  alignas(64) std::atomic<std::int64_t> pending_{0};
  alignas(64) std::atomic<std::uint32_t> rr_{0};
  alignas(64) std::atomic<std::uint64_t> executed_{0};
  alignas(64) std::atomic<std::uint64_t> steals_{0};
  alignas(64) std::atomic<std::uint64_t> stolen_{0};

  void push(Task t);
  bool take(unsigned home, Task& out);
  void worker_loop(unsigned slot);
};

}  // namespace osss::par
