#include "par/env.hpp"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace osss::par {

namespace {

bool is_space(char c) {
  return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f' ||
         c == '\v';
}

}  // namespace

EnvValue parse_u64(std::string_view text, std::uint64_t lo, std::uint64_t hi) {
  EnvValue out;
  std::size_t b = 0, e = text.size();
  while (b < e && is_space(text[b])) ++b;
  while (e > b && is_space(text[e - 1])) --e;
  if (b == e) return out;  // empty -> kMalformed
  if (text[b] == '-') {
    out.status = EnvParseStatus::kNegative;
    return out;
  }
  const std::string body(text.substr(b, e - b));  // NUL-terminated for strtoull
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(body.c_str(), &end, 0);
  if (end == body.c_str() || *end != '\0') return out;  // kMalformed
  if (errno == ERANGE) {
    out.status = EnvParseStatus::kOverflow;
    out.value = hi;
    out.clamped = true;
    return out;
  }
  out.status = EnvParseStatus::kOk;
  out.value = static_cast<std::uint64_t>(v);
  if (out.value < lo) {
    out.value = lo;
    out.clamped = true;
  } else if (out.value > hi) {
    out.value = hi;
    out.clamped = true;
  }
  return out;
}

std::uint64_t env_u64(const char* var, std::uint64_t fallback,
                      std::uint64_t lo, std::uint64_t hi) {
  const char* text = std::getenv(var);
  if (text == nullptr) return fallback;
  const EnvValue v = parse_u64(text, lo, hi);
  switch (v.status) {
    case EnvParseStatus::kOk:
      if (v.clamped)
        std::fprintf(stderr,
                     "osss: %s='%s' out of range [%llu, %llu]; clamped to "
                     "%llu\n",
                     var, text, static_cast<unsigned long long>(lo),
                     static_cast<unsigned long long>(hi),
                     static_cast<unsigned long long>(v.value));
      return v.value;
    case EnvParseStatus::kOverflow:
      std::fprintf(stderr,
                   "osss: %s='%s' overflows 64 bits; clamped to %llu\n", var,
                   text, static_cast<unsigned long long>(v.value));
      return v.value;
    case EnvParseStatus::kNegative:
    case EnvParseStatus::kMalformed:
      std::fprintf(stderr,
                   "osss: ignoring %s='%s' (not an unsigned integer); using "
                   "%llu\n",
                   var, text, static_cast<unsigned long long>(fallback));
      return fallback;
  }
  return fallback;
}

}  // namespace osss::par
