// env.hpp — hardened environment-variable parsing for numeric knobs.
//
// Every numeric environment override in the repo (OSSS_FUZZ_SEED,
// OSSS_FUZZ_ITERS, OSSS_THREADS) goes through one strict parser instead of
// atoi-style prefix parsing: garbage, embedded junk, negative values and
// overflow are rejected or clamped with a warning on stderr, never silently
// truncated.  parse_u64 is the pure, testable core; env_u64 adds the getenv
// lookup and the warning policy.

#pragma once

#include <cstdint>
#include <string_view>

namespace osss::par {

enum class EnvParseStatus : std::uint8_t {
  kOk,         ///< parsed cleanly (value may still have been clamped)
  kMalformed,  ///< empty, non-numeric, or trailing junk
  kNegative,   ///< a leading '-' (unsigned knobs reject negatives outright)
  kOverflow,   ///< does not fit in 64 bits (value is clamped to `hi`)
};

struct EnvValue {
  std::uint64_t value = 0;
  EnvParseStatus status = EnvParseStatus::kMalformed;
  bool clamped = false;  ///< value was pulled into [lo, hi]
};

/// Strict full-string parse of `text` as an unsigned 64-bit value, then
/// clamp into [lo, hi].  Accepts decimal, 0x-hex and 0-octal (strtoull
/// base 0) with surrounding whitespace; anything else is kMalformed.
EnvValue parse_u64(std::string_view text, std::uint64_t lo, std::uint64_t hi);

/// getenv(var) through parse_u64.  Unset -> `fallback` silently; malformed
/// or negative -> `fallback` with a stderr warning; overflow or
/// out-of-range -> clamped with a stderr warning.
std::uint64_t env_u64(const char* var, std::uint64_t fallback,
                      std::uint64_t lo, std::uint64_t hi);

}  // namespace osss::par
