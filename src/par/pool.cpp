#include "par/pool.hpp"

#include "par/env.hpp"

namespace osss::par {

unsigned hardware_threads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : n;
}

unsigned env_threads(unsigned fallback) {
  if (fallback == 0) fallback = hardware_threads();
  return static_cast<unsigned>(env_u64("OSSS_THREADS", fallback, 1, 256));
}

Pool::Pool(unsigned threads) {
  slots_ = threads != 0 ? threads : env_threads();
  if (slots_ == 0) slots_ = 1;
  if (slots_ > 256) slots_ = 256;
  slot_.reserve(slots_);
  for (unsigned i = 0; i < slots_; ++i)
    slot_.push_back(std::make_unique<Slot>());
  threads_.reserve(slots_ - 1);
  for (unsigned i = 1; i < slots_; ++i)
    threads_.emplace_back([this, i] { worker_loop(i); });
}

Pool::~Pool() {
  {
    std::lock_guard<std::mutex> lk(wake_m_);
    stop_.store(true, std::memory_order_release);
  }
  wake_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

Pool& Pool::global() {
  static Pool pool;
  return pool;
}

Pool::Stats Pool::stats() const {
  Stats s;
  s.executed = executed_.load(std::memory_order_relaxed);
  s.steals = steals_.load(std::memory_order_relaxed);
  s.stolen_tasks = stolen_.load(std::memory_order_relaxed);
  return s;
}

void Pool::push(Task t) {
  const unsigned s = rr_.fetch_add(1, std::memory_order_relaxed) % slots_;
  {
    std::lock_guard<std::mutex> lk(slot_[s]->m);
    slot_[s]->q.push_back(std::move(t));
  }
  pending_.fetch_add(1, std::memory_order_acq_rel);
  // Empty critical section pairs with the predicate re-check in
  // worker_loop: a worker between its predicate check and its wait cannot
  // miss this notify.
  { std::lock_guard<std::mutex> lk(wake_m_); }
  wake_cv_.notify_one();
}

bool Pool::take(unsigned home, Task& out) {
  {
    Slot& s = *slot_[home];
    std::lock_guard<std::mutex> lk(s.m);
    if (!s.q.empty()) {
      out = std::move(s.q.back());  // LIFO on the owner: warm caches
      s.q.pop_back();
      pending_.fetch_sub(1, std::memory_order_acq_rel);
      executed_.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
  }
  // Steal: scan victims round-robin and take half of the first non-empty
  // deque from the front (the oldest, coarsest-grained tasks).
  for (unsigned k = 1; k < slots_; ++k) {
    const unsigned v = (home + k) % slots_;
    std::vector<Task> loot;
    {
      Slot& s = *slot_[v];
      std::lock_guard<std::mutex> lk(s.m);
      const std::size_t n = s.q.size();
      if (n == 0) continue;
      const std::size_t grab = (n + 1) / 2;
      loot.reserve(grab);
      for (std::size_t i = 0; i < grab; ++i) {
        loot.push_back(std::move(s.q.front()));
        s.q.pop_front();
      }
    }
    steals_.fetch_add(1, std::memory_order_relaxed);
    stolen_.fetch_add(loot.size(), std::memory_order_relaxed);
    out = std::move(loot.front());
    pending_.fetch_sub(1, std::memory_order_acq_rel);
    executed_.fetch_add(1, std::memory_order_relaxed);
    if (loot.size() > 1) {
      Slot& s = *slot_[home];
      std::lock_guard<std::mutex> lk(s.m);
      for (std::size_t i = 1; i < loot.size(); ++i)
        s.q.push_back(std::move(loot[i]));
    }
    return true;
  }
  return false;
}

void Pool::worker_loop(unsigned slot) {
  Task t;
  while (true) {
    if (take(slot, t)) {
      t();
      t = nullptr;
      continue;
    }
    if (stop_.load(std::memory_order_acquire)) return;
    std::unique_lock<std::mutex> lk(wake_m_);
    wake_cv_.wait(lk, [&] {
      return stop_.load(std::memory_order_acquire) ||
             pending_.load(std::memory_order_acquire) > 0;
    });
  }
}

void Pool::parallel_for(std::size_t n,
                        const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  if (slots_ == 1 || n == 1) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }
  // Chunked fan-out: a few chunks per context so steal-half has coarse
  // tasks to rebalance, without per-index queue traffic.
  const std::size_t chunks =
      std::min<std::size_t>(n, std::size_t{slots_} * 4);
  const std::size_t per = (n + chunks - 1) / chunks;

  struct Ctl {
    // remaining is decremented by every finishing chunk on every worker;
    // keep it off the line holding the completion mutex/cv so the final
    // wakeup handshake doesn't contend with mid-run decrements.
    alignas(64) std::atomic<std::size_t> remaining{0};
    alignas(64) std::mutex m;
    std::condition_variable cv;
    std::exception_ptr error;
  };
  const auto ctl = std::make_shared<Ctl>();
  ctl->remaining.store(chunks, std::memory_order_release);

  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t lo = c * per;
    const std::size_t hi = std::min(n, lo + per);
    push([ctl, lo, hi, &body] {
      try {
        for (std::size_t i = lo; i < hi; ++i) body(i);
      } catch (...) {
        std::lock_guard<std::mutex> lk(ctl->m);
        if (!ctl->error) ctl->error = std::current_exception();
      }
      if (ctl->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        std::lock_guard<std::mutex> lk(ctl->m);
        ctl->cv.notify_all();
      }
    });
  }

  // The caller is context 0: execute tasks (its own chunks or anyone
  // else's) until every chunk has retired.
  Task t;
  while (ctl->remaining.load(std::memory_order_acquire) != 0) {
    if (take(0, t)) {
      t();
      t = nullptr;
      continue;
    }
    std::unique_lock<std::mutex> lk(ctl->m);
    ctl->cv.wait_for(lk, std::chrono::microseconds(200), [&] {
      return ctl->remaining.load(std::memory_order_acquire) == 0;
    });
  }
  if (ctl->error) std::rethrow_exception(ctl->error);
}

std::future<void> Pool::submit(std::function<void()> fn) {
  auto task =
      std::make_shared<std::packaged_task<void()>>(std::move(fn));
  std::future<void> f = task->get_future();
  if (slots_ == 1) {
    (*task)();
    return f;
  }
  push([task] { (*task)(); });
  return f;
}

}  // namespace osss::par
