// fixed.hpp — automated fixed-point number resolution.
//
// The paper notes "prototypic support of automated fixed point number
// resolution has been implemented" (§6).  Fixed<I, F> is a signed
// fixed-point value with I integer bits (including sign) and F fraction
// bits.  Arithmetic *automatically resolves* result formats so no
// precision is lost:
//
//   Fixed<I1,F1> + Fixed<I2,F2> -> Fixed<max(I1,I2)+1, max(F1,F2)>
//   Fixed<I1,F1> * Fixed<I2,F2> -> Fixed<I1+I2,       F1+F2>
//
// — the width bookkeeping a designer would otherwise do by hand.  Explicit
// resize<>() converts back to a storage format (with truncation toward
// negative infinity, the hardware-cheap choice).

#pragma once

#include <cmath>
#include <compare>
#include <cstdint>
#include <stdexcept>

#include "sysc/bits.hpp"

namespace osss {

template <unsigned I, unsigned F>
class Fixed {
  static_assert(I >= 1, "need at least the sign bit");
  static_assert(I + F <= 62, "total width limited to 62 bits");

public:
  static constexpr unsigned kIntBits = I;
  static constexpr unsigned kFracBits = F;
  static constexpr unsigned kWidth = I + F;

  constexpr Fixed() = default;

  /// Quantize a real value (round to nearest).  Throws on overflow.
  static Fixed from_double(double v) {
    const double scaled = v * static_cast<double>(1ll << F);
    const double rounded = std::nearbyint(scaled);
    if (rounded >= static_cast<double>(1ll << (kWidth - 1)) ||
        rounded < -static_cast<double>(1ll << (kWidth - 1)))
      throw std::overflow_error("Fixed: value out of range");
    return from_raw(static_cast<std::int64_t>(rounded));
  }

  static constexpr Fixed from_raw(std::int64_t raw) {
    Fixed f;
    f.raw_ = raw;
    return f;
  }

  static constexpr Fixed from_int(std::int64_t v) {
    return from_raw(v << F);
  }

  constexpr std::int64_t raw() const noexcept { return raw_; }

  double to_double() const noexcept {
    return static_cast<double>(raw_) / static_cast<double>(1ll << F);
  }

  /// Integer part (floor).
  constexpr std::int64_t to_int() const noexcept { return raw_ >> F; }

  /// Two's-complement bit pattern (for signals / synthesis checks).
  sysc::Bits to_bits() const {
    return sysc::Bits(kWidth, static_cast<std::uint64_t>(raw_));
  }
  static Fixed from_bits(const sysc::Bits& b) {
    if (b.width() != kWidth)
      throw std::invalid_argument("Fixed: width mismatch");
    return from_raw(b.to_i64());
  }

  // --- automatically resolved arithmetic -------------------------------
  template <unsigned I2, unsigned F2>
  friend constexpr auto operator+(const Fixed& a, const Fixed<I2, F2>& b) {
    constexpr unsigned RI = (I > I2 ? I : I2) + 1;
    constexpr unsigned RF = (F > F2 ? F : F2);
    return Fixed<RI, RF>::from_raw(align<RF>(a.raw_, F) +
                                   align<RF>(b.raw(), F2));
  }

  template <unsigned I2, unsigned F2>
  friend constexpr auto operator-(const Fixed& a, const Fixed<I2, F2>& b) {
    constexpr unsigned RI = (I > I2 ? I : I2) + 1;
    constexpr unsigned RF = (F > F2 ? F : F2);
    return Fixed<RI, RF>::from_raw(align<RF>(a.raw_, F) -
                                   align<RF>(b.raw(), F2));
  }

  template <unsigned I2, unsigned F2>
  friend constexpr auto operator*(const Fixed& a, const Fixed<I2, F2>& b) {
    return Fixed<I + I2, F + F2>::from_raw(a.raw_ * b.raw());
  }

  /// Explicit format conversion; truncates extra fraction bits toward
  /// negative infinity and throws on integer overflow.
  template <unsigned NI, unsigned NF>
  Fixed<NI, NF> resize() const {
    std::int64_t r = raw_;
    if constexpr (NF >= F) {
      r <<= (NF - F);
    } else {
      r >>= (F - NF);  // arithmetic shift: floor
    }
    const std::int64_t limit = 1ll << (NI + NF - 1);
    if (r >= limit || r < -limit)
      throw std::overflow_error("Fixed: resize overflow");
    return Fixed<NI, NF>::from_raw(r);
  }

  // --- comparison (format-aware) ------------------------------------------
  template <unsigned I2, unsigned F2>
  constexpr std::strong_ordering compare(const Fixed<I2, F2>& b) const {
    constexpr unsigned RF = (F > F2 ? F : F2);
    return align<RF>(raw_, F) <=> align<RF>(b.raw(), F2);
  }

  friend constexpr bool operator==(const Fixed& a, const Fixed& b) {
    return a.raw_ == b.raw_;
  }
  friend constexpr auto operator<=>(const Fixed& a, const Fixed& b) {
    return a.raw_ <=> b.raw_;
  }

private:
  std::int64_t raw_ = 0;

  template <unsigned RF>
  static constexpr std::int64_t align(std::int64_t raw, unsigned from_f) {
    return raw << (RF - from_f);
  }

  template <unsigned, unsigned>
  friend class Fixed;
};

}  // namespace osss
