// polymorphic.hpp — synthesizable-style polymorphic objects (simulation view).
//
// OSSS supports synthesis of polymorphic objects: "this feature can be used
// to call different operations through the same interface on different
// objects", e.g. selecting between ALU implementations behind one
// read()/write()/execute() interface (paper §6).  Hardware cannot allocate:
// a synthesizable polymorphic object is a *tagged union* with a fixed
// footprint — the tag selects which implementation's logic drives the
// outputs (the muxes of §8).
//
// This template is the executable C++ view: a closed set of alternatives
// stored in place, dispatched through the common base interface.  The
// synthesis view (tag + payload layout, mux generation) lives in
// synth/polymorphic.hpp; the two are checked against each other by the R5
// experiment.

#pragma once

#include <cstddef>
#include <stdexcept>
#include <variant>

namespace osss {

template <class Base, class... Alts>
class Polymorphic {
  static_assert(sizeof...(Alts) >= 1, "need at least one alternative");
  static_assert((std::is_base_of_v<Base, Alts> && ...),
                "every alternative must derive from Base");

public:
  /// Default: holds the first alternative, default-constructed.
  Polymorphic() = default;

  template <class T>
    requires(std::same_as<std::decay_t<T>, Alts> || ...)
  Polymorphic(T&& value) : storage_(std::forward<T>(value)) {}  // NOLINT

  /// Replace the held object (re-"instantiation"; in hardware, loading the
  /// tag and payload registers).
  template <class T, class... Args>
    requires(std::same_as<T, Alts> || ...)
  T& emplace(Args&&... args) {
    return storage_.template emplace<T>(std::forward<Args>(args)...);
  }

  /// Which alternative is live (the hardware tag value).
  std::size_t tag() const noexcept { return storage_.index(); }

  /// Number of representable alternatives (determines the tag width).
  static constexpr std::size_t alternative_count() { return sizeof...(Alts); }

  template <class T>
  bool holds() const noexcept {
    return std::holds_alternative<T>(storage_);
  }

  template <class T>
  T& as() {
    T* p = std::get_if<T>(&storage_);
    if (p == nullptr) throw std::bad_variant_access();
    return *p;
  }

  /// Access through the common interface — the OO call the synthesizer
  /// turns into a mux over implementations.
  Base& operator*() { return *base_ptr(); }
  const Base& operator*() const { return *base_ptr(); }
  Base* operator->() { return base_ptr(); }
  const Base* operator->() const { return base_ptr(); }

  bool operator==(const Polymorphic& other) const
    requires(std::equality_comparable<Alts> && ...)
  {
    return storage_ == other.storage_;
  }

private:
  std::variant<Alts...> storage_;

  Base* base_ptr() {
    return std::visit([](auto& alt) -> Base* { return &alt; }, storage_);
  }
  const Base* base_ptr() const {
    return std::visit([](const auto& alt) -> const Base* { return &alt; },
                      storage_);
  }
};

}  // namespace osss
