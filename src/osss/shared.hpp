// shared.hpp — global (shared) objects with generated scheduling
// (simulation view).
//
// "Often, components of a system have to be accessed by different modules
// or processes ... such parts of a system can be implemented as global
// objects.  The access and scheduling of a global object gets automatically
// included for synthesis.  A designer can use a standard scheduler or
// implement an own according to the required needs." (paper §6)
//
// Here a Shared<T> owns the object and an arbiter thread clocked like any
// other module.  Clients enqueue requests (closures over the object) and
// busy-wait on a ticket; the arbiter grants one request per clock according
// to its scheduler policy.  Blocking access thus costs wait() cycles while
// every other module keeps executing — exactly the paper's §12 discussion.
// The synthesis view (request/grant wires, method mux, arbiter logic) is in
// synth/shared_synth.hpp.

#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "sysc/module.hpp"

namespace osss {

/// Arbitration policy: picks one requesting client per cycle.
class SchedulerPolicy {
public:
  virtual ~SchedulerPolicy() = default;
  /// `pending[i]` — client i has a request; at least one entry is true.
  /// `last` — client granted most recently (initialized to clients-1, so a
  /// round-robin scan starts at client 0).
  virtual std::size_t pick(const std::vector<bool>& pending,
                           std::size_t last) const = 0;
  virtual std::string name() const = 0;
};

/// Rotating fairness: first requesting client after the last grant.
class RoundRobinScheduler final : public SchedulerPolicy {
public:
  std::size_t pick(const std::vector<bool>& pending,
                   std::size_t last) const override {
    const std::size_t n = pending.size();
    for (std::size_t k = 1; k <= n; ++k) {
      const std::size_t c = (last + k) % n;
      if (pending[c]) return c;
    }
    throw std::logic_error("RoundRobinScheduler: no pending request");
  }
  std::string name() const override { return "round_robin"; }
};

/// Fixed priority: lowest client index wins.
class StaticPriorityScheduler final : public SchedulerPolicy {
public:
  std::size_t pick(const std::vector<bool>& pending,
                   std::size_t /*last*/) const override {
    for (std::size_t c = 0; c < pending.size(); ++c)
      if (pending[c]) return c;
    throw std::logic_error("StaticPriorityScheduler: no pending request");
  }
  std::string name() const override { return "static_priority"; }
};

/// A shared (global) object of type T serving `clients` requesters.
template <class T>
class Shared : public sysc::Module {
public:
  /// A pending access.  Clients poll done() from their clocked thread:
  ///   auto t = shared.request(my_id, [&](T& o) { r = o.method(); });
  ///   while (!t->done()) co_await sysc::wait();
  class Ticket {
  public:
    bool done() const noexcept { return done_; }

  private:
    friend class Shared;
    bool done_ = false;
  };
  using TicketPtr = std::shared_ptr<Ticket>;

  Shared(sysc::Context& ctx, std::string name, sysc::Signal<bool>& clk,
         std::size_t clients, T initial,
         std::unique_ptr<SchedulerPolicy> policy)
      : Module(ctx, std::move(name)),
        object_(std::move(initial)),
        policy_(std::move(policy)),
        queues_(clients),
        grants_(clients, 0) {
    if (clients == 0) throw std::invalid_argument("Shared: zero clients");
    if (!policy_) throw std::invalid_argument("Shared: null policy");
    last_ = clients - 1;  // round-robin scan starts at client 0
    cthread("arbiter", clk, [this]() -> sysc::Behavior { return arbiter(); });
  }

  /// Enqueue an access for `client`.  The closure runs when the arbiter
  /// grants this client — one grant per clock cycle across all clients.
  TicketPtr request(std::size_t client, std::function<void(T&)> access) {
    if (client >= queues_.size())
      throw std::out_of_range("Shared: bad client id");
    auto ticket = std::make_shared<Ticket>();
    queues_[client].push_back(PendingAccess{ticket, std::move(access)});
    return ticket;
  }

  /// Direct read-only view (testbench inspection — not arbitrated).
  const T& peek() const noexcept { return object_; }

  std::uint64_t grant_count(std::size_t client) const {
    return grants_.at(client);
  }
  std::size_t client_count() const noexcept { return queues_.size(); }
  const SchedulerPolicy& policy() const noexcept { return *policy_; }

private:
  struct PendingAccess {
    TicketPtr ticket;
    std::function<void(T&)> fn;
  };

  T object_;
  std::unique_ptr<SchedulerPolicy> policy_;
  std::vector<std::deque<PendingAccess>> queues_;
  std::vector<std::uint64_t> grants_;
  std::size_t last_;

  sysc::Behavior arbiter() {
    for (;;) {
      std::vector<bool> pending(queues_.size());
      bool any = false;
      for (std::size_t c = 0; c < queues_.size(); ++c) {
        pending[c] = !queues_[c].empty();
        any |= pending[c];
      }
      if (any) {
        const std::size_t c = policy_->pick(pending, last_);
        if (c >= queues_.size() || queues_[c].empty())
          throw std::logic_error("Shared: scheduler picked an idle client");
        PendingAccess access = std::move(queues_[c].front());
        queues_[c].pop_front();
        access.fn(object_);
        access.ticket->done_ = true;
        ++grants_[c];
        last_ = c;
      }
      co_await sysc::wait();
    }
  }
};

}  // namespace osss
