// jit.hpp — shared runtime-compile machinery for the native-code backends.
//
// Both JIT backends (rtl::tape::codegen and gate::codegen) emit specialized
// C++ for one compiled design, build it with the host compiler and dlopen
// the result.  This library owns everything that is identical between them:
// temp-dir management, compiler resolution ($OSSS_CC), the compile command,
// log capture, dlopen + symbol lookup, cleanup — and a process-wide cache
// keyed by a content hash of the emitted source, so engines whose generated
// code is byte-identical (the same netlist simulated twice, the six ExpoCU
// components shared across experiments, repeated opt-pass self-checks)
// share one live shared object instead of invoking the compiler again.
//
// Generated code must therefore be stateless: all mutable state (arena,
// memories, dirty flags, step scratch) is owned by the engine and passed in
// as parameters, so one loaded object can serve any number of engines.

#pragma once

#include <cstdint>
#include <memory>
#include <string>

namespace osss::jit {

/// Knobs for the runtime compile.  Engines expose this as their
/// `CodegenOptions`; defaults give the production behavior.
struct CompileOptions {
  /// Compiler binary; empty uses $OSSS_CC, falling back to "c++".
  std::string compiler;
  /// Extra flags appended after the defaults ("-std=c++17 -O2 -fPIC
  /// -shared" plus cpu-probed -mavx2 / -mavx512f).
  std::string extra_flags;
  /// Skip the compile and force the engine's interpreted fallback
  /// (also set by the OSSS_NO_JIT environment variable).
  bool force_fallback = false;
  /// When non-empty, also write the emitted source to this path.
  std::string keep_source;
};

/// A compiled-and-loaded shared object.  Instances are shared between all
/// engines whose emitted source (and compiler identity) hash the same; the
/// private temp directory holding source/so/log is removed when the last
/// reference dies.
class Object {
 public:
  Object(const Object&) = delete;
  Object& operator=(const Object&) = delete;
  ~Object();

  /// dlsym on the loaded object; nullptr when the symbol is absent.
  void* sym(const char* name) const noexcept;
  /// Captured compiler output (usually empty on success).
  const std::string& log() const noexcept { return log_; }
  /// Content hash this object was cached under.
  std::uint64_t key() const noexcept { return key_; }

 private:
  friend std::shared_ptr<Object> compile(const std::string&,
                                         const CompileOptions&, const char*,
                                         std::string&);
  Object() = default;
  void* dl_ = nullptr;
  std::string work_dir_;
  std::string log_;
  std::uint64_t key_ = 0;
};

/// Process-wide cache counters (monotonic).  `misses` counts cache lookups
/// that had to invoke the compiler; `compiles` counts the ones that
/// succeeded.  hits + misses == total compile() calls that got past the
/// force_fallback gate.
struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t compiles = 0;
};

/// FNV-1a 64 over the emitted source and the compiler identity — the cache
/// key.  Exposed so tests can assert two emissions would share an object.
std::uint64_t source_hash(const std::string& source,
                          const CompileOptions& opt);

/// Compile `source` in a private mkdtemp directory ($TMPDIR or /tmp,
/// prefixed with `tag`), dlopen the result and return a shared handle.
/// Identical (source, compiler, flags) reuse a live cached Object.  On any
/// failure — force_fallback, bad compiler path, compile error, dlopen
/// error — returns nullptr with the reason appended to `log`; callers fall
/// back to their interpreted engine.  Thread-safe.
std::shared_ptr<Object> compile(const std::string& source,
                                const CompileOptions& opt, const char* tag,
                                std::string& log);

/// Snapshot of the process-wide cache counters.
CacheStats cache_stats() noexcept;

/// True when OSSS_NO_JIT is set non-empty and non-"0" in the environment.
bool jit_disabled_by_env() noexcept;

// --- shared emit preludes ---------------------------------------------------
// Fragments of generated source shared by the backends' emitters.  The
// emitters write prelude_header(), then `constexpr int L = <lanes>;`, then
// vector_prelude() (the lane-vector helper library: P/K/Ps operands, the
// v_*/n_* drivers with AVX-512/AVX2/scalar bodies) and step_prelude() (the
// sequential-commit helpers used by the generated step() entry points).

const char* prelude_header();
const char* vector_prelude();
const char* step_prelude();

}  // namespace osss::jit
