// jit.hpp — shared runtime-compile machinery for the native-code backends.
//
// Both JIT backends (rtl::tape::codegen and gate::codegen) emit specialized
// C++ for one compiled design, build it with the host compiler and dlopen
// the result.  This library owns everything that is identical between them:
// temp-dir management, compiler resolution ($OSSS_CC), the compile command,
// log capture, dlopen + symbol lookup, cleanup — and a two-level object
// cache keyed by a content hash of the emitted source:
//
//   * in-memory: engines whose generated code is byte-identical (the same
//     netlist simulated twice, the six ExpoCU components shared across
//     experiments, repeated opt-pass self-checks) share one live shared
//     object instead of invoking the compiler again;
//   * on disk (opt-in via $OSSS_JIT_CACHE_DIR): compiled .so files are
//     published under the cache directory keyed by the same content hash
//     (compiler identity and version included), so a *second process* —
//     a rerun of the test suite, a CI warm job, the future osss-serve
//     daemon — dlopens the published artifact instead of compiling.
//     Publication is atomic (temp file + rename), concurrent processes
//     compiling the same key serialize on a per-key flock and the loser
//     loads the winner's artifact, stale or truncated artifacts are
//     re-probed on load (CompileOptions::validate) and silently fall back
//     to a fresh compile, and the directory is LRU-capped by mtime
//     ($OSSS_JIT_CACHE_MAX_BYTES, default 256 MiB, 0 disables eviction).
//     When the variable is unset or empty the disk layer is inert and
//     behavior is exactly the in-memory-only path.
//
// Generated code must therefore be stateless: all mutable state (arena,
// memories, dirty flags, step scratch) is owned by the engine and passed in
// as parameters, so one loaded object can serve any number of engines.

#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

namespace osss::jit {

class Object;

/// Knobs for the runtime compile.  Engines expose this as their
/// `CodegenOptions`; defaults give the production behavior.
struct CompileOptions {
  /// Compiler binary; empty uses $OSSS_CC, falling back to "c++".
  std::string compiler;
  /// Extra flags appended after the defaults ("-std=c++17 -O2 -fPIC
  /// -shared" plus cpu-probed -mavx2 / -mavx512f).
  std::string extra_flags;
  /// Skip the compile and force the engine's interpreted fallback
  /// (also set by the OSSS_NO_JIT environment variable).
  bool force_fallback = false;
  /// When non-empty, also write the emitted source to this path.
  std::string keep_source;
  /// Probe an object loaded from the persistent disk cache before it is
  /// accepted (engines re-check their ABI version / lane count / entry
  /// points here); return false to discard the artifact and compile
  /// fresh.  Never called for freshly compiled objects — engines still
  /// run their own post-compile probe — and not part of the cache key.
  std::function<bool(const Object&)> validate;
};

/// A compiled-and-loaded shared object.  Instances are shared between all
/// engines whose emitted source (and compiler identity) hash the same; the
/// private temp directory holding source/so/log is removed when the last
/// reference dies.  Objects loaded from the persistent disk cache have no
/// temp directory (the published artifact is owned by the cache).
class Object {
 public:
  Object(const Object&) = delete;
  Object& operator=(const Object&) = delete;
  ~Object();

  /// dlsym on the loaded object; nullptr when the symbol is absent.
  void* sym(const char* name) const noexcept;
  /// Captured compiler output (usually empty on success; empty for disk
  /// cache hits, which never ran the compiler).
  const std::string& log() const noexcept { return log_; }
  /// Content hash this object was cached under.
  std::uint64_t key() const noexcept { return key_; }

 private:
  friend struct ObjectAccess;
  Object() = default;
  void* dl_ = nullptr;
  std::string work_dir_;
  std::string log_;
  std::uint64_t key_ = 0;
};

/// Process-wide cache counters (monotonic).  `hits` counts lookups served
/// by a live in-memory object; `misses` counts the ones that had to go
/// further (disk probe and/or compiler); `compiles` counts successful
/// compiler invocations.  hits + misses == total compile() calls that got
/// past the force_fallback gate.  The disk_* counters cover the persistent
/// layer: a miss that loads a published artifact is a `disk_hit` (and does
/// NOT increment `compiles` — zero compiler invocations is the warm-start
/// contract CI asserts), `disk_misses` counts enabled-probe failures, and
/// `disk_evictions` counts artifacts removed by the LRU size cap.
struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t compiles = 0;
  std::uint64_t disk_hits = 0;
  std::uint64_t disk_misses = 0;
  std::uint64_t disk_evictions = 0;
};

/// FNV-1a 64 over the emitted source and the compiler identity — the cache
/// key, shared by the in-memory map and the persistent disk cache.  The
/// identity mixes the resolved compiler path, its `--version` banner
/// (probed once per process, so a toolchain upgrade invalidates published
/// artifacts), the cpu-probed default flags and the extra flags.  Exposed
/// so tests can assert two emissions would share an object.
std::uint64_t source_hash(const std::string& source,
                          const CompileOptions& opt);

/// Compile `source` in a private mkdtemp directory ($TMPDIR or /tmp,
/// prefixed with `tag`), dlopen the result and return a shared handle.
/// Identical (source, compiler, flags) reuse a live cached Object; when
/// $OSSS_JIT_CACHE_DIR is set, a published artifact from any process is
/// dlopen'd instead of compiling and fresh compiles are published back.
/// Concurrent calls with *different* keys compile in parallel; only
/// identical sources wait on each other (per-key in-flight entries — the
/// cache mutex is held for lookup/insert only, never across a compiler
/// invocation).  On any failure — force_fallback, bad compiler path,
/// compile error, dlopen error — returns nullptr with the reason appended
/// to `log`; callers fall back to their interpreted engine.  Thread-safe.
std::shared_ptr<Object> compile(const std::string& source,
                                const CompileOptions& opt, const char* tag,
                                std::string& log);

/// Snapshot of the process-wide cache counters.
CacheStats cache_stats() noexcept;

/// True when OSSS_NO_JIT is set non-empty and non-"0" in the environment.
bool jit_disabled_by_env() noexcept;

// --- shared emit preludes ---------------------------------------------------
// Fragments of generated source shared by the backends' emitters.  The
// emitters write prelude_header(), then `constexpr int L = <lanes>;`, then
// vector_prelude() (the lane-vector helper library: P/K/Ps operands, the
// v_*/n_* drivers with AVX-512/AVX2/scalar bodies) and step_prelude() (the
// sequential-commit helpers used by the generated step() entry points).

const char* prelude_header();
const char* vector_prelude();
const char* step_prelude();

/// Width-selected *store-only* lane-word vector layer for the gate
/// emitter's fused level loops: defines `vw` (one SIMD-or-scalar chunk of
/// lane words), `VW` (lane words per chunk), vld/vst and the
/// v_and/v_or/v_xor/v_inv/v_nand/v_nor/v_xnor/v_mux/vbc drivers, with an
/// AVX-512 body when lane_words % 8 == 0, AVX2 when % 4 == 0, and scalar
/// otherwise (ISA selected by the generated code's preprocessor).  Unlike
/// vector_prelude()'s v_* templates these accumulate no change masks — the
/// gate suffix sweep recomputes every downstream cell anyway.  The emitter
/// must have written `constexpr int L` and `constexpr u64 TM` (the
/// tail-lane mask) before this fragment.
std::string lane_ops_prelude(unsigned lane_words);

/// Flat vector layer `fv`/`FW` for contiguous memory-row sweeps: always
/// the widest ISA the target compiler enables (FW = 8 / 4 / 1), so one
/// chunk may span several data bits of a row at once.  Users must keep
/// swept spans divisible by 8 words and replicate per-lane-word masks
/// out to max(FW, L) words.  Independent of lane_ops_prelude()'s tier.
const char* flat_ops_prelude();

}  // namespace osss::jit
