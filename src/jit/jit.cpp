// jit.cpp — runtime compile + dlopen with a content-hash object cache.

#include "jit/jit.hpp"

#include <dlfcn.h>
#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <sstream>
#include <unordered_map>
#include <vector>

namespace osss::jit {

namespace {

struct Cache {
  std::mutex mu;
  // weak entries: an object lives exactly as long as some engine holds it,
  // so temp dirs never outlive their users (the cleanup tests rely on it).
  std::unordered_map<std::uint64_t, std::weak_ptr<Object>> map;
  CacheStats stats;
};

Cache& cache() {
  static Cache c;
  return c;
}

std::string resolve_compiler(const CompileOptions& opt) {
  if (!opt.compiler.empty()) return opt.compiler;
  const char* env = std::getenv("OSSS_CC");
  return (env != nullptr && *env != '\0') ? env : "c++";
}

std::string default_flags() {
  std::string flags = "-std=c++17 -O2 -fPIC -shared";
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
  if (__builtin_cpu_supports("avx2")) flags += " -mavx2";
  if (__builtin_cpu_supports("avx512f")) flags += " -mavx512f";
#endif
  return flags;
}

}  // namespace

Object::~Object() {
  if (dl_ != nullptr) dlclose(dl_);
  if (!work_dir_.empty()) {
    std::error_code ec;
    std::filesystem::remove_all(work_dir_, ec);
  }
}

void* Object::sym(const char* name) const noexcept {
  return dl_ != nullptr ? dlsym(dl_, name) : nullptr;
}

std::uint64_t source_hash(const std::string& source,
                          const CompileOptions& opt) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  const auto mix = [&h](const std::string& s) {
    for (const char c : s) {
      h ^= static_cast<unsigned char>(c);
      h *= 0x100000001b3ull;
    }
    h ^= 0xff;  // separator outside the byte alphabet
    h *= 0x100000001b3ull;
  };
  mix(source);
  mix(resolve_compiler(opt));
  mix(opt.extra_flags);
  return h;
}

std::shared_ptr<Object> compile(const std::string& source,
                                const CompileOptions& opt, const char* tag,
                                std::string& log) {
  if (!opt.keep_source.empty()) {
    std::ofstream f(opt.keep_source);
    f << source;
  }
  if (opt.force_fallback) {
    log = "native backend disabled; using interpreted dispatch";
    return nullptr;
  }
  const std::string cc = resolve_compiler(opt);
  if (cc.find('\'') != std::string::npos) {
    log = "refusing compiler path containing a quote";
    return nullptr;
  }
  const std::uint64_t key = source_hash(source, opt);

  Cache& c = cache();
  // The lock covers the compile itself: concurrent engines emitting the
  // same source (sharded equivalence checks) wait for one compile and then
  // hit, instead of racing the compiler on the same key.
  std::lock_guard<std::mutex> hold(c.mu);
  if (const auto it = c.map.find(key); it != c.map.end()) {
    if (std::shared_ptr<Object> live = it->second.lock()) {
      ++c.stats.hits;
      log = live->log();
      return live;
    }
  }
  ++c.stats.misses;

  const char* tmp = std::getenv("TMPDIR");
  std::string tmpl = (tmp != nullptr && *tmp != '\0' ? std::string(tmp)
                                                     : std::string("/tmp")) +
                     "/" + tag + "-XXXXXX";
  std::vector<char> buf(tmpl.begin(), tmpl.end());
  buf.push_back('\0');
  if (::mkdtemp(buf.data()) == nullptr) {
    log = "mkdtemp failed; using interpreted dispatch";
    return nullptr;
  }
  std::shared_ptr<Object> obj(new Object);
  obj->work_dir_ = buf.data();
  obj->key_ = key;
  const std::string cpp = obj->work_dir_ + "/gen.cpp";
  const std::string so = obj->work_dir_ + "/gen.so";
  const std::string cc_log = obj->work_dir_ + "/cc.log";
  {
    std::ofstream f(cpp);
    f << source;
    if (!f) {
      log = "failed to write generated source";
      return nullptr;  // obj dtor removes the dir
    }
  }
  std::string flags = default_flags();
  if (!opt.extra_flags.empty()) flags += " " + opt.extra_flags;
  const std::string cmd = "'" + cc + "' " + flags + " '" + cpp + "' -o '" +
                          so + "' >'" + cc_log + "' 2>&1";
  const int rc = std::system(cmd.c_str());
  {
    std::ifstream f(cc_log);
    std::stringstream ss;
    ss << f.rdbuf();
    obj->log_ = ss.str();
  }
  if (rc != 0) {
    log = obj->log_ + "\n[compile failed; using interpreted dispatch]";
    return nullptr;
  }
  obj->dl_ = dlopen(so.c_str(), RTLD_NOW | RTLD_LOCAL);
  if (obj->dl_ == nullptr) {
    const char* err = dlerror();
    log = obj->log_ + "\n[dlopen failed: " + (err != nullptr ? err : "?") +
          "]";
    return nullptr;
  }
  ++c.stats.compiles;
  c.map[key] = obj;
  log = obj->log_;
  return obj;
}

CacheStats cache_stats() noexcept {
  Cache& c = cache();
  std::lock_guard<std::mutex> hold(c.mu);
  return c.stats;
}

bool jit_disabled_by_env() noexcept {
  const char* nj = std::getenv("OSSS_NO_JIT");
  return nj != nullptr && *nj != '\0' && *nj != '0';
}

}  // namespace osss::jit
