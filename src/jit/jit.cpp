// jit.cpp — runtime compile + dlopen behind a two-level object cache.
//
// Level 1 is the in-process map of live objects (weak entries, so temp
// dirs die with their last engine).  Level 2 is the optional persistent
// directory ($OSSS_JIT_CACHE_DIR) shared across processes: artifacts are
// published atomically (temp file + rename into place), same-key compiles
// across processes serialize on a per-key flock so the loser loads the
// winner's artifact instead of recompiling, and the directory is LRU
// capped by mtime.  Within a process, concurrent compiles of *different*
// sources run in parallel: the cache mutex guards only map/in-flight
// bookkeeping, and each key has its own in-flight entry that followers
// wait on.

#include "jit/jit.hpp"

#include <dlfcn.h>
#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>

#include <algorithm>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <sstream>
#include <unordered_map>
#include <vector>

namespace fs = std::filesystem;

namespace osss::jit {

/// Internal factory: the only code allowed to construct Objects and set
/// their private fields (kept out of the anonymous namespace so it can be
/// named in Object's friend declaration).
struct ObjectAccess {
  static std::shared_ptr<Object> make(std::uint64_t key) {
    std::shared_ptr<Object> obj(new Object);
    obj->key_ = key;
    return obj;
  }
  static void*& dl(Object& o) { return o.dl_; }
  static std::string& work_dir(Object& o) { return o.work_dir_; }
  static std::string& log(Object& o) { return o.log_; }
};

namespace {

/// One in-flight compile: the leader fills result/log and flips done; any
/// follower that found this entry under the cache mutex waits here instead
/// of racing the compiler on the same key.
struct Inflight {
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  std::shared_ptr<Object> result;
  std::string log;
};

struct Cache {
  // Guards map / inflight / stats only — never held across a compiler
  // invocation or a disk probe, so unrelated compiles run in parallel.
  std::mutex mu;
  // weak entries: an object lives exactly as long as some engine holds it,
  // so temp dirs never outlive their users (the cleanup tests rely on it).
  std::unordered_map<std::uint64_t, std::weak_ptr<Object>> map;
  std::unordered_map<std::uint64_t, std::shared_ptr<Inflight>> inflight;
  CacheStats stats;
};

Cache& cache() {
  static Cache c;
  return c;
}

std::string resolve_compiler(const CompileOptions& opt) {
  if (!opt.compiler.empty()) return opt.compiler;
  const char* env = std::getenv("OSSS_CC");
  return (env != nullptr && *env != '\0') ? env : "c++";
}

std::string default_flags() {
  std::string flags = "-std=c++17 -O2 -fPIC -shared";
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
  if (__builtin_cpu_supports("avx2")) flags += " -mavx2";
  if (__builtin_cpu_supports("avx512f")) flags += " -mavx512f";
#endif
  return flags;
}

/// First line of `cc --version`, probed once per compiler per process and
/// mixed into the cache key: a toolchain upgrade must invalidate artifacts
/// published by the old compiler, and the probe result is stable within a
/// process so in-memory hashing stays cheap.  A compiler that cannot run
/// contributes the empty string (the compile itself will fail and fall
/// back).
std::string compiler_version(const std::string& cc) {
  static std::mutex mu;
  static std::unordered_map<std::string, std::string> seen;
  std::lock_guard<std::mutex> hold(mu);
  if (const auto it = seen.find(cc); it != seen.end()) return it->second;
  std::string ver;
  if (cc.find('\'') == std::string::npos) {
    FILE* p = ::popen(("'" + cc + "' --version 2>/dev/null").c_str(), "r");
    if (p != nullptr) {
      char buf[256];
      if (std::fgets(buf, sizeof buf, p) != nullptr) ver = buf;
      ::pclose(p);
    }
  }
  seen.emplace(cc, ver);
  return ver;
}

// --- persistent disk cache --------------------------------------------------

struct DiskCache {
  bool enabled = false;
  fs::path dir;
};

DiskCache disk_config() {
  DiskCache dc;
  const char* d = std::getenv("OSSS_JIT_CACHE_DIR");
  if (d == nullptr || *d == '\0') return dc;  // unset: layer fully inert
  dc.dir = d;
  std::error_code ec;
  fs::create_directories(dc.dir, ec);  // best effort; probes/publish cope
  dc.enabled = true;
  return dc;
}

std::uintmax_t disk_cap_bytes() {
  const char* v = std::getenv("OSSS_JIT_CACHE_MAX_BYTES");
  if (v == nullptr || *v == '\0') return std::uintmax_t{256} << 20;
  char* end = nullptr;
  const unsigned long long n = std::strtoull(v, &end, 10);
  if (end == v) return std::uintmax_t{256} << 20;
  return n;  // 0 disables eviction
}

std::string key_hex(std::uint64_t key) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(key));
  return buf;
}

/// dlopen a published artifact and run the caller's ABI probe.  Truncated,
/// corrupt or stale files fail dlopen or the probe; either way the caller
/// deletes the artifact (under the per-key flock) and compiles fresh.
std::shared_ptr<Object> try_load_disk(const fs::path& so, std::uint64_t key,
                                      const CompileOptions& opt) {
  std::error_code ec;
  if (!fs::exists(so, ec)) return nullptr;
  void* dl = dlopen(so.c_str(), RTLD_NOW | RTLD_LOCAL);
  if (dl == nullptr) return nullptr;
  std::shared_ptr<Object> obj = ObjectAccess::make(key);
  ObjectAccess::dl(*obj) = dl;  // no work_dir_: the artifact is cache-owned
  if (opt.validate && !opt.validate(*obj)) return nullptr;  // dtor dlcloses
  fs::last_write_time(so, fs::file_time_type::clock::now(), ec);  // LRU touch
  return obj;
}

/// Copy the fresh gen.so next to its final name and rename into place —
/// readers either see the complete artifact or none.  Best effort: an
/// unwritable cache dir silently degrades to the in-memory-only path.
bool publish_disk(const fs::path& built_so, const fs::path& final_so) {
  std::error_code ec;
  fs::path tmp = final_so;
  tmp += ".tmp" + std::to_string(static_cast<long>(::getpid()));
  fs::copy_file(built_so, tmp, fs::copy_options::overwrite_existing, ec);
  if (ec) return false;
  fs::rename(tmp, final_so, ec);
  if (ec) {
    fs::remove(tmp, ec);
    return false;
  }
  return true;
}

/// Drop oldest-mtime artifacts until the directory fits the size cap,
/// never evicting the artifact just published.  Lock files ride along with
/// their .so.  Returns the number of artifacts evicted.
std::uint64_t evict_lru(const fs::path& dir, const fs::path& keep) {
  const std::uintmax_t cap = disk_cap_bytes();
  if (cap == 0) return 0;
  struct Entry {
    fs::path path;
    fs::file_time_type mtime;
    std::uintmax_t size;
  };
  std::vector<Entry> entries;
  std::uintmax_t total = 0;
  std::error_code ec;
  for (fs::directory_iterator it(dir, ec), end; !ec && it != end;
       it.increment(ec)) {
    if (it->path().extension() != ".so") continue;
    const std::uintmax_t sz = it->file_size(ec);
    if (ec) continue;
    entries.push_back({it->path(), it->last_write_time(ec), sz});
    total += sz;
  }
  if (total <= cap) return 0;
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) { return a.mtime < b.mtime; });
  std::uint64_t evicted = 0;
  for (const Entry& e : entries) {
    if (total <= cap) break;
    if (e.path == keep) continue;
    if (fs::remove(e.path, ec)) {
      total -= e.size;
      ++evicted;
      fs::path lock = e.path;
      lock.replace_extension(".lock");
      fs::remove(lock, ec);
    }
  }
  return evicted;
}

/// Outcome of the slow path (disk probe + compile), folded into the
/// process-wide counters under the cache mutex by the leader.
struct SlowResult {
  std::shared_ptr<Object> obj;
  bool compiled = false;
  bool disk_hit = false;
  bool disk_miss = false;
  std::uint64_t evictions = 0;
};

/// Everything past the in-memory map: probe the persistent cache, compile
/// on a miss, publish the result.  Runs WITHOUT the cache mutex; same-key
/// callers are serialized by the in-flight entry (in-process) and the
/// per-key flock (cross-process).
SlowResult compile_slow(const std::string& source, const CompileOptions& opt,
                        const std::string& cc, const char* tag,
                        std::uint64_t key, std::string& log) {
  SlowResult r;
  const DiskCache dc = disk_config();
  fs::path final_so, lock_path;
  int lock_fd = -1;
  if (dc.enabled) {
    const std::string stem = std::string(tag) + "-" + key_hex(key);
    final_so = dc.dir / (stem + ".so");
    lock_path = dc.dir / (stem + ".lock");
    lock_fd = ::open(lock_path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
    // Serialize same-key compiles across processes: whoever wins compiles
    // and publishes; the loser wakes, re-probes and loads the artifact.
    if (lock_fd >= 0) ::flock(lock_fd, LOCK_EX);
    if ((r.obj = try_load_disk(final_so, key, opt)) != nullptr) {
      r.disk_hit = true;
      if (lock_fd >= 0) ::close(lock_fd);  // releases the flock
      log.clear();
      return r;
    }
    r.disk_miss = true;
    std::error_code ec;
    fs::remove(final_so, ec);  // stale/corrupt artifact: republish below
  }

  const auto done = [&](SlowResult out) {
    if (lock_fd >= 0) ::close(lock_fd);
    return out;
  };

  const char* tmp = std::getenv("TMPDIR");
  std::string tmpl = (tmp != nullptr && *tmp != '\0' ? std::string(tmp)
                                                     : std::string("/tmp")) +
                     "/" + tag + "-XXXXXX";
  std::vector<char> buf(tmpl.begin(), tmpl.end());
  buf.push_back('\0');
  if (::mkdtemp(buf.data()) == nullptr) {
    log = "mkdtemp failed; using interpreted dispatch";
    return done(std::move(r));
  }
  std::shared_ptr<Object> obj = ObjectAccess::make(key);
  ObjectAccess::work_dir(*obj) = buf.data();
  const std::string cpp = ObjectAccess::work_dir(*obj) + "/gen.cpp";
  const std::string so = ObjectAccess::work_dir(*obj) + "/gen.so";
  const std::string cc_log = ObjectAccess::work_dir(*obj) + "/cc.log";
  {
    std::ofstream f(cpp);
    f << source;
    if (!f) {
      log = "failed to write generated source";
      return done(std::move(r));  // obj dtor removes the dir
    }
  }
  std::string flags = default_flags();
  if (!opt.extra_flags.empty()) flags += " " + opt.extra_flags;
  const std::string cmd = "'" + cc + "' " + flags + " '" + cpp + "' -o '" +
                          so + "' >'" + cc_log + "' 2>&1";
  const int rc = std::system(cmd.c_str());
  {
    std::ifstream f(cc_log);
    std::stringstream ss;
    ss << f.rdbuf();
    ObjectAccess::log(*obj) = ss.str();
  }
  if (rc != 0) {
    log = ObjectAccess::log(*obj) +
          "\n[compile failed; using interpreted dispatch]";
    return done(std::move(r));
  }
  ObjectAccess::dl(*obj) = dlopen(so.c_str(), RTLD_NOW | RTLD_LOCAL);
  if (ObjectAccess::dl(*obj) == nullptr) {
    const char* err = dlerror();
    log = ObjectAccess::log(*obj) + "\n[dlopen failed: " +
          (err != nullptr ? err : "?") + "]";
    return done(std::move(r));
  }
  if (dc.enabled && publish_disk(so, final_so))
    r.evictions = evict_lru(dc.dir, final_so);
  r.compiled = true;
  r.obj = std::move(obj);
  log = ObjectAccess::log(*r.obj);
  return done(std::move(r));
}

}  // namespace

Object::~Object() {
  if (dl_ != nullptr) dlclose(dl_);
  if (!work_dir_.empty()) {
    std::error_code ec;
    std::filesystem::remove_all(work_dir_, ec);
  }
}

void* Object::sym(const char* name) const noexcept {
  return dl_ != nullptr ? dlsym(dl_, name) : nullptr;
}

std::uint64_t source_hash(const std::string& source,
                          const CompileOptions& opt) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  const auto mix = [&h](const std::string& s) {
    for (const char c : s) {
      h ^= static_cast<unsigned char>(c);
      h *= 0x100000001b3ull;
    }
    h ^= 0xff;  // separator outside the byte alphabet
    h *= 0x100000001b3ull;
  };
  const std::string cc = resolve_compiler(opt);
  mix(source);
  mix(cc);
  mix(compiler_version(cc));
  mix(default_flags());
  mix(opt.extra_flags);
  return h;
}

std::shared_ptr<Object> compile(const std::string& source,
                                const CompileOptions& opt, const char* tag,
                                std::string& log) {
  if (!opt.keep_source.empty()) {
    std::ofstream f(opt.keep_source);
    f << source;
  }
  if (opt.force_fallback) {
    log = "native backend disabled; using interpreted dispatch";
    return nullptr;
  }
  const std::string cc = resolve_compiler(opt);
  if (cc.find('\'') != std::string::npos) {
    log = "refusing compiler path containing a quote";
    return nullptr;
  }
  const std::uint64_t key = source_hash(source, opt);

  Cache& c = cache();
  std::shared_ptr<Inflight> fl;
  {
    std::unique_lock<std::mutex> hold(c.mu);
    for (;;) {
      if (const auto it = c.map.find(key); it != c.map.end()) {
        if (std::shared_ptr<Object> live = it->second.lock()) {
          ++c.stats.hits;
          log = live->log();
          return live;
        }
      }
      if (const auto it = c.inflight.find(key); it != c.inflight.end()) {
        // Same key already compiling: wait for the leader, then re-check
        // (the leader may have failed; its result may already be dead).
        fl = it->second;
        hold.unlock();
        {
          std::unique_lock<std::mutex> w(fl->mu);
          fl->cv.wait(w, [&] { return fl->done; });
        }
        hold.lock();
        if (fl->result != nullptr) {
          ++c.stats.hits;
          log = fl->result->log();
          return fl->result;
        }
        ++c.stats.misses;
        log = fl->log;
        return nullptr;
      }
      // No live object, no in-flight compile: become the leader for this
      // key and leave the map lock before doing any slow work.
      fl = std::make_shared<Inflight>();
      c.inflight.emplace(key, fl);
      ++c.stats.misses;
      break;
    }
  }

  SlowResult r = compile_slow(source, opt, cc, tag, key, log);

  {
    std::lock_guard<std::mutex> hold(c.mu);
    if (r.obj != nullptr) c.map[key] = r.obj;
    if (r.compiled) ++c.stats.compiles;
    if (r.disk_hit) ++c.stats.disk_hits;
    if (r.disk_miss) ++c.stats.disk_misses;
    c.stats.disk_evictions += r.evictions;
    c.inflight.erase(key);
  }
  {
    std::lock_guard<std::mutex> w(fl->mu);
    fl->result = r.obj;
    fl->log = log;
    fl->done = true;
  }
  fl->cv.notify_all();
  return r.obj;
}

CacheStats cache_stats() noexcept {
  Cache& c = cache();
  std::lock_guard<std::mutex> hold(c.mu);
  return c.stats;
}

bool jit_disabled_by_env() noexcept {
  const char* nj = std::getenv("OSSS_NO_JIT");
  return nj != nullptr && *nj != '\0' && *nj != '0';
}

}  // namespace osss::jit
