// retime.hpp — forward retiming across combinational cells.
//
// Moves registers forward through the gate they feed: when every fanin of a
// combinational cell c = f(q1..qk) is a DFF (or a constant), the cell can be
// recomputed one cycle earlier on the registers' D-nets and captured in a
// single new register q' with init f(init1..initk) — the textbook forward
// move with initial-state computation, sequentially equivalent from reset
// (q'(t) == c(t) for every t >= 0).
//
// The pass is greedy and timing-driven: each iteration runs gate::timing,
// walks the reported critical path for the first retimable cell, and applies
// the move only if both guards hold:
//
//   * timing  — the new register's D arrival (max fanin-D arrival + cell
//     delay + setup) stays strictly below the current critical path, so the
//     pass can never regress fmax;
//   * area    — at least as many fanin DFFs die (single-fanout) as the one
//     register the move adds, so the pass never grows the netlist.

#pragma once

#include "opt/pass.hpp"

namespace osss::opt {

struct RetimeOptions {
  unsigned max_moves = 64;          ///< greedy iteration bound
  bool allow_area_increase = false; ///< drop the area guard (experiments)
};

class RetimePass final : public Pass {
 public:
  explicit RetimePass(RetimeOptions opt = {}) : opt_(opt) {}
  /// Library for arrival-time computation (nullptr = generic()).
  RetimePass(const gate::Library* lib, RetimeOptions opt)
      : opt_(opt), lib_(lib) {}

  const char* name() const override { return "retime"; }
  gate::Netlist run(const gate::Netlist& in, PassStats& stats) const override;

 private:
  RetimeOptions opt_;
  const gate::Library* lib_ = nullptr;
};

}  // namespace osss::opt
