#include "opt/rebuild.hpp"

#include <algorithm>
#include <stdexcept>

namespace osss::opt {

std::vector<NetId> level_order(const Netlist& src) {
  const std::vector<std::uint32_t> levels = src.topo_levels();
  std::vector<NetId> order;
  order.reserve(src.cells().size());
  for (NetId id = 0; id < src.cells().size(); ++id)
    if (levels[id] != gate::kNoLevel) order.push_back(id);
  std::stable_sort(order.begin(), order.end(), [&](NetId a, NetId b) {
    if (levels[a] != levels[b]) return levels[a] < levels[b];
    return a < b;
  });
  return order;
}

std::vector<std::uint32_t> fanout_counts(const Netlist& nl) {
  std::vector<std::uint32_t> fanout(nl.cells().size(), 0);
  for (const Cell& c : nl.cells())
    for (const NetId in : c.ins) ++fanout[in];
  for (const auto& m : nl.memories()) {
    for (const auto& w : m.writes) {
      for (const NetId n : w.addr) ++fanout[n];
      for (const NetId n : w.data) ++fanout[n];
      ++fanout[w.enable];
    }
  }
  for (const auto& bus : nl.outputs())
    for (const NetId n : bus.nets) ++fanout[n];
  return fanout;
}

namespace {

/// Mapped kinds stay mapped (decomposing them through the factories would
/// undo the technology mapper), but the trivial folds the factories would
/// have applied are done by hand first.
NetId emit_mapped(Netlist& dst, CellKind kind, NetId a, NetId b) {
  const NetId lo = dst.const0();
  const NetId hi = dst.const1();
  switch (kind) {
    case CellKind::kNand2:
      if (a == lo || b == lo) return hi;
      if (a == hi) return dst.inv(b);
      if (b == hi || a == b) return dst.inv(a);
      break;
    case CellKind::kNor2:
      if (a == hi || b == hi) return lo;
      if (a == lo) return dst.inv(b);
      if (b == lo || a == b) return dst.inv(a);
      break;
    case CellKind::kXnor2:
      if (a == b) return hi;
      if (a == lo) return dst.inv(b);
      if (b == lo) return dst.inv(a);
      if (a == hi) return b;
      if (b == hi) return a;
      break;
    default:
      break;
  }
  return dst.raw_gate(kind, {a, b});
}

}  // namespace

NetId emit_default(Netlist& dst, const Netlist& src, NetId src_id,
                   const std::vector<NetId>& ins) {
  const CellKind kind = src.cells()[src_id].kind;
  switch (kind) {
    case CellKind::kBuf: return dst.buf(ins[0]);
    case CellKind::kInv: return dst.inv(ins[0]);
    case CellKind::kAnd2: return dst.and2(ins[0], ins[1]);
    case CellKind::kOr2: return dst.or2(ins[0], ins[1]);
    case CellKind::kXor2: return dst.xor2(ins[0], ins[1]);
    case CellKind::kNand2:
    case CellKind::kNor2:
    case CellKind::kXnor2: return emit_mapped(dst, kind, ins[0], ins[1]);
    case CellKind::kMux2: return dst.mux2(ins[0], ins[1], ins[2]);
    case CellKind::kMemQ: {
      const Cell& c = src.cells()[src_id];
      return dst.mem_read_bit(c.param, ins, c.param2);
    }
    default:
      throw std::logic_error("opt::rebuild: source cell is not combinational");
  }
}

Netlist rebuild(const Netlist& src, const RebuildHooks& hooks) {
  const auto find = [&](NetId id) {
    return hooks.replace ? hooks.replace(id) : id;
  };

  Netlist dst(src.name());
  std::vector<NetId> map(src.cells().size(), gate::kInvalidNet);
  map[0] = dst.const0();
  map[1] = dst.const1();

  for (const auto& bus : src.inputs()) {
    const std::vector<NetId> nets =
        dst.add_input(bus.name, static_cast<unsigned>(bus.nets.size()));
    for (std::size_t i = 0; i < nets.size(); ++i) map[bus.nets[i]] = nets[i];
  }
  for (const auto& m : src.memories())
    dst.add_memory(m.name, m.depth, m.width);

  // DFF Q placeholders: class representatives only; other members alias.
  for (NetId id = 0; id < src.cells().size(); ++id) {
    const Cell& c = src.cells()[id];
    if (c.kind != CellKind::kDff || find(id) != id) continue;
    map[id] = dst.dff(c.name, c.init);
  }
  for (NetId id = 0; id < src.cells().size(); ++id) {
    if (src.cells()[id].kind != CellKind::kDff) continue;
    const NetId rep = find(id);
    if (rep != id) map[id] = map[rep];
  }

  // Combinational cells, representatives first by construction of the
  // (level, id) order (a representative never has a higher level, nor a
  // higher id at equal level, than any member of its class).
  const std::function<NetId(NetId)> mapped = [&](NetId id) {
    const NetId m = map[find(id)];
    if (m == gate::kInvalidNet)
      throw std::logic_error("opt::rebuild: mapped() on unemitted net");
    return m;
  };
  std::vector<NetId> ins;
  for (const NetId id : level_order(src)) {
    const NetId rep = find(id);
    if (rep != id) {
      if (map[rep] == gate::kInvalidNet)
        throw std::logic_error(
            "opt::rebuild: class representative not yet emitted");
      map[id] = map[rep];
      continue;
    }
    const Cell& c = src.cells()[id];
    ins.clear();
    for (const NetId in : c.ins) {
      const NetId m = map[find(in)];
      if (m == gate::kInvalidNet)
        throw std::logic_error("opt::rebuild: input emitted out of order");
      ins.push_back(m);
    }
    map[id] = hooks.emit ? hooks.emit(dst, id, ins, mapped)
                         : emit_default(dst, src, id, ins);
  }

  for (NetId id = 0; id < src.cells().size(); ++id) {
    const Cell& c = src.cells()[id];
    if (c.kind != CellKind::kDff || find(id) != id) continue;
    dst.connect_dff(map[id], map[find(c.ins.at(0))]);
  }
  for (std::size_t mi = 0; mi < src.memories().size(); ++mi) {
    for (const auto& w : src.memories()[mi].writes) {
      std::vector<NetId> addr, data;
      for (const NetId n : w.addr) addr.push_back(map[find(n)]);
      for (const NetId n : w.data) data.push_back(map[find(n)]);
      dst.mem_write(static_cast<unsigned>(mi), std::move(addr),
                    std::move(data), map[find(w.enable)]);
    }
  }
  for (const auto& bus : src.outputs()) {
    std::vector<NetId> nets;
    for (const NetId n : bus.nets) nets.push_back(map[find(n)]);
    dst.add_output(bus.name, std::move(nets));
  }

  dst.sweep();  // validates
  return dst;
}

}  // namespace osss::opt
