#include "opt/rewrite.hpp"

#include "opt/rebuild.hpp"

namespace osss::opt {

namespace {

/// One rewrite iteration: pattern matching is done on the SOURCE netlist
/// (kinds, fanout), emission on the destination via the mapped leaves —
/// every rule expresses the same boolean function of its cut leaves, so the
/// rewrite is correct whatever earlier rules did to the mapped cone.
class Rewriter {
 public:
  explicit Rewriter(const Netlist& src)
      : src_(src), fanout_(fanout_counts(src)) {}

  std::size_t changes() const noexcept { return changes_; }

  NetId emit(Netlist& dst, NetId id, const std::vector<NetId>& ins,
             const std::function<NetId(NetId)>& mapped) {
    const Cell& c = src_.cells()[id];
    NetId out = gate::kInvalidNet;
    switch (c.kind) {
      case CellKind::kAnd2:
        out = rewrite_andor(dst, c, mapped, /*is_and=*/true);
        break;
      case CellKind::kOr2:
        out = rewrite_andor(dst, c, mapped, /*is_and=*/false);
        break;
      case CellKind::kXor2:
        out = rewrite_xor(dst, c, mapped);
        break;
      case CellKind::kInv:
        out = rewrite_inv(dst, c, mapped);
        break;
      case CellKind::kMux2:
        out = rewrite_mux(dst, c, mapped);
        break;
      default:
        break;
    }
    if (out != gate::kInvalidNet) {
      ++changes_;
      return out;
    }
    return emit_default(dst, src_, id, ins);
  }

 private:
  const Netlist& src_;
  std::vector<std::uint32_t> fanout_;
  std::size_t changes_ = 0;

  CellKind kind(NetId n) const { return src_.cells()[n].kind; }
  NetId in(NetId n, std::size_t i) const { return src_.cells()[n].ins[i]; }
  bool fan1(NetId n) const { return fanout_[n] == 1; }
  bool is_inv(NetId n) const { return kind(n) == CellKind::kInv; }

  /// a == complement of b (either direction through a kInv cell)?
  bool complement(NetId a, NetId b) const {
    if (is_inv(a) && in(a, 0) == b) return true;
    if (is_inv(b) && in(b, 0) == a) return true;
    if ((a == 0 && b == 1) || (a == 1 && b == 0)) return true;
    return false;
  }

  /// Emit and2/or2 selected by flag.
  static NetId andor(Netlist& dst, bool is_and, NetId a, NetId b) {
    return is_and ? dst.and2(a, b) : dst.or2(a, b);
  }

  // and2(a, b) and its or2 dual (swap the roles of and/or, 0/1).
  NetId rewrite_andor(Netlist& dst, const Cell& c,
                      const std::function<NetId(NetId)>& mapped, bool is_and) {
    const CellKind same = is_and ? CellKind::kAnd2 : CellKind::kOr2;
    const CellKind dual = is_and ? CellKind::kOr2 : CellKind::kAnd2;
    const NetId absorbing = is_and ? 0 : 1;  // annihilator of the operation
    for (int swap = 0; swap < 2; ++swap) {
      const NetId a = in_of(c, swap != 0 ? 1u : 0u);
      const NetId b = in_of(c, swap != 0 ? 0u : 1u);
      if (kind(b) == dual) {
        // absorption: and(a, or(a, x)) -> a
        if (in(b, 0) == a || in(b, 1) == a) return mapped(a);
        // and(a, or(inv a, x)) -> and(a, x)
        for (int i = 0; i < 2; ++i) {
          if (complement(a, in(b, static_cast<std::size_t>(i))))
            return andor(dst, is_and, mapped(a),
                         mapped(in(b, static_cast<std::size_t>(1 - i))));
        }
      }
      if (kind(b) == same) {
        // and(a, and(a, x)) -> and(a, x)
        if (in(b, 0) == a || in(b, 1) == a) return mapped(b);
        // and(a, and(inv a, x)) -> 0
        if (complement(a, in(b, 0)) || complement(a, in(b, 1)))
          return dst.constant(absorbing != 0);
      }
    }
    const NetId a = c.ins[0];
    const NetId b = c.ins[1];
    // De Morgan contraction: and(inv x, inv y) -> inv(or(x, y)) when both
    // inverters die with the rewrite.
    if (is_inv(a) && is_inv(b) && fan1(a) && fan1(b))
      return dst.inv(andor(dst, !is_and, mapped(in(a, 0)), mapped(in(b, 0))));
    // XOR recognition (or-of-ands form, or2 roots only):
    //   or(and(u1, u2), and(~u1, ~u2)) -> xnor(u1, u2)
    // matched by complement pairing, inverters stripped off the operands.
    if (!is_and && kind(a) == CellKind::kAnd2 && kind(b) == CellKind::kAnd2 &&
        fan1(a) && fan1(b)) {
      const NetId p = in(a, 0), q = in(a, 1);
      const NetId r = in(b, 0), s = in(b, 1);
      for (int pair = 0; pair < 2; ++pair) {
        const NetId v1 = pair != 0 ? s : r;
        const NetId v2 = pair != 0 ? r : s;
        if (!complement(p, v1) || !complement(q, v2)) continue;
        // xnor(p, q), stripping operand inverters (each flips polarity).
        NetId u1 = p, u2 = q;
        bool invert = true;  // xnor
        if (is_inv(u1)) { u1 = in(u1, 0); invert = !invert; }
        if (is_inv(u2)) { u2 = in(u2, 0); invert = !invert; }
        const NetId x = dst.xor2(mapped(u1), mapped(u2));
        return invert ? dst.inv(x) : x;
      }
    }
    // Shared-literal factoring: or(and(a, b), and(a, c)) -> and(a, or(b, c))
    // and its dual and(or(a, b), or(a, c)) -> or(a, and(b, c)) — three cells
    // become two when both inner gates die.
    if (kind(a) == dual && kind(b) == dual && fan1(a) && fan1(b)) {
      for (std::size_t i = 0; i < 2; ++i)
        for (std::size_t j = 0; j < 2; ++j)
          if (in(a, i) == in(b, j))
            return andor(dst, !is_and, mapped(in(a, i)),
                         andor(dst, is_and, mapped(in(a, 1 - i)),
                               mapped(in(b, 1 - j))));
    }
    return gate::kInvalidNet;
  }

  // xor2(a, b): xor(a, xor(a, x)) -> x.
  NetId rewrite_xor(Netlist& dst, const Cell& c,
                    const std::function<NetId(NetId)>& mapped) {
    for (int swap = 0; swap < 2; ++swap) {
      const NetId a = in_of(c, swap != 0 ? 1u : 0u);
      const NetId b = in_of(c, swap != 0 ? 0u : 1u);
      if (kind(b) == CellKind::kXor2) {
        if (in(b, 0) == a) return mapped(in(b, 1));
        if (in(b, 1) == a) return mapped(in(b, 0));
      }
    }
    const NetId a = c.ins[0];
    const NetId b = c.ins[1];
    // xor(inv x, inv y) -> xor(x, y): the inversions cancel.  Never worse
    // even when the inverters have other readers, so no fanout gate.
    if (is_inv(a) && is_inv(b))
      return dst.xor2(mapped(in(a, 0)), mapped(in(b, 0)));
    // Shared-literal factoring: xor(and(a, b), and(a, c)) -> and(a,
    // xor(b, c)), since a & b ^ a & c == a & (b ^ c).
    if (kind(a) == CellKind::kAnd2 && kind(b) == CellKind::kAnd2 && fan1(a) &&
        fan1(b)) {
      for (std::size_t i = 0; i < 2; ++i)
        for (std::size_t j = 0; j < 2; ++j)
          if (in(a, i) == in(b, j))
            return dst.and2(mapped(in(a, i)),
                            dst.xor2(mapped(in(a, 1 - i)),
                                     mapped(in(b, 1 - j))));
    }
    return gate::kInvalidNet;
  }

  // inv(a): De Morgan expansion inv(and(inv x, inv y)) -> or(x, y).
  NetId rewrite_inv(Netlist& dst, const Cell& c,
                    const std::function<NetId(NetId)>& mapped) {
    const NetId a = c.ins[0];
    const bool is_and = kind(a) == CellKind::kAnd2;
    const bool is_or = kind(a) == CellKind::kOr2;
    if ((is_and || is_or) && fan1(a) && is_inv(in(a, 0)) && is_inv(in(a, 1)))
      return andor(dst, !is_and, mapped(in(in(a, 0), 0)),
                   mapped(in(in(a, 1), 0)));
    return gate::kInvalidNet;
  }

  // mux2(s, t, e).
  NetId rewrite_mux(Netlist& dst, const Cell& c,
                    const std::function<NetId(NetId)>& mapped) {
    const NetId s = c.ins[0], t = c.ins[1], e = c.ins[2];
    // XOR recognition: mux(s, inv e, e) -> xor(s, e);
    //                  mux(s, t, inv t) -> xnor(s, t).
    if (complement(t, e)) {
      if (is_inv(t) && in(t, 0) == e)
        return dst.xor2(mapped(s), mapped(e));
      return dst.inv(dst.xor2(mapped(s), mapped(t)));
    }
    // Inverter push: mux(s, inv x, inv y) -> inv(mux(s, x, y)).
    if (is_inv(t) && is_inv(e) && fan1(t) && fan1(e))
      return dst.inv(dst.mux2(mapped(s), mapped(in(t, 0)), mapped(in(e, 0))));
    // MUX push-through: mux(s, f(a, c), f(b, c)) -> f(mux(s, a, b), c).
    if (kind(t) == kind(e) && fan1(t) && fan1(e) &&
        (kind(t) == CellKind::kAnd2 || kind(t) == CellKind::kOr2 ||
         kind(t) == CellKind::kXor2)) {
      for (int i = 0; i < 2; ++i) {
        for (int j = 0; j < 2; ++j) {
          const NetId shared = in(t, static_cast<std::size_t>(i));
          if (shared != in(e, static_cast<std::size_t>(j))) continue;
          const NetId mt = mapped(in(t, static_cast<std::size_t>(1 - i)));
          const NetId me = mapped(in(e, static_cast<std::size_t>(1 - j)));
          const NetId m = dst.mux2(mapped(s), mt, me);
          switch (kind(t)) {
            case CellKind::kAnd2: return dst.and2(m, mapped(shared));
            case CellKind::kOr2: return dst.or2(m, mapped(shared));
            default: return dst.xor2(m, mapped(shared));
          }
        }
      }
    }
    // Nested-mux select merging (the then-side forms the factory's
    // absorption rule does not cover):
    //   mux(s1, mux(s2, tt, e), e) -> mux(and(s1, s2), tt, e)
    //   mux(s1, mux(s2, e, tt), e) -> mux(and(s1, inv s2), tt, e)
    //   mux(s1, t, mux(s2, ee, t)) -> mux(and(inv s1, s2), ee, t)
    if (kind(t) == CellKind::kMux2 && fan1(t)) {
      if (in(t, 2) == e)
        return dst.mux2(dst.and2(mapped(s), mapped(in(t, 0))),
                        mapped(in(t, 1)), mapped(e));
      if (in(t, 1) == e)
        return dst.mux2(dst.and2(mapped(s), dst.inv(mapped(in(t, 0)))),
                        mapped(in(t, 2)), mapped(e));
    }
    if (kind(e) == CellKind::kMux2 && fan1(e) && in(e, 2) == t)
      return dst.mux2(dst.and2(dst.inv(mapped(s)), mapped(in(e, 0))),
                      mapped(in(e, 1)), mapped(t));
    return gate::kInvalidNet;
  }

  NetId in_of(const Cell& c, std::size_t i) const { return c.ins[i]; }
};

}  // namespace

gate::Netlist RewritePass::run(const gate::Netlist& in,
                               PassStats& stats) const {
  gate::Netlist current = in;
  for (unsigned iter = 0; iter < max_iterations_; ++iter) {
    Rewriter rw(current);
    RebuildHooks hooks;
    hooks.emit = [&](Netlist& dst, NetId id, const std::vector<NetId>& ins,
                     const std::function<NetId(NetId)>& mapped) {
      return rw.emit(dst, id, ins, mapped);
    };
    gate::Netlist next = rebuild(current, hooks);
    stats.changes += rw.changes();
    const bool progressed = rw.changes() != 0;
    current = std::move(next);
    if (!progressed) break;
  }
  return current;
}

}  // namespace osss::opt
