// opt.hpp — umbrella header for the gate-level optimization pipeline.

#pragma once

#include "opt/pass.hpp"     // IWYU pragma: export
#include "opt/retime.hpp"   // IWYU pragma: export
#include "opt/rewrite.hpp"  // IWYU pragma: export
#include "opt/satsweep.hpp" // IWYU pragma: export
#include "opt/techmap.hpp"  // IWYU pragma: export
