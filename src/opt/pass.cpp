#include "opt/pass.hpp"

#include <chrono>
#include <sstream>
#include <stdexcept>

#include "gate/equiv.hpp"
#include "gate/timing.hpp"
#include "opt/retime.hpp"
#include "opt/rewrite.hpp"
#include "opt/satsweep.hpp"
#include "opt/techmap.hpp"
#include "par/env.hpp"
#include "verify/stimgen.hpp"

namespace osss::opt {

namespace {

const gate::Library& lib_or_generic(const gate::Library* lib) {
  static const gate::Library generic = gate::Library::generic();
  return lib ? *lib : generic;
}

std::size_t logic_depth(const gate::Netlist& nl) {
  std::size_t depth = 0;
  for (const std::uint32_t lvl : nl.topo_levels())
    if (lvl != gate::kNoLevel)
      depth = std::max(depth, static_cast<std::size_t>(lvl) + 1);
  return depth;
}

void fill_before(PassStats& s, const gate::Netlist& nl,
                 const gate::Library& lib) {
  s.cells_before = nl.cells().size();
  s.gates_before = nl.gate_count();
  s.dffs_before = nl.dff_count();
  s.depth_before = logic_depth(nl);
  s.area_before = lib.area_of(nl);
}

void fill_after(PassStats& s, const gate::Netlist& nl,
                const gate::Library& lib) {
  s.cells_after = nl.cells().size();
  s.gates_after = nl.gate_count();
  s.dffs_after = nl.dff_count();
  s.depth_after = logic_depth(nl);
  s.area_after = lib.area_of(nl);
}

}  // namespace

std::string PassStats::format() const {
  std::ostringstream os;
  os << pass << ": cells " << cells_before << "->" << cells_after << ", gates "
     << gates_before << "->" << gates_after << ", dffs " << dffs_before << "->"
     << dffs_after << ", depth " << depth_before << "->" << depth_after
     << ", area " << static_cast<long>(area_before + 0.5) << "->"
     << static_cast<long>(area_after + 0.5) << " GE, " << changes
     << " change(s)";
  if (fact_merges != 0 || odc_merges != 0)
    os << " (" << fact_merges << " fact, " << odc_merges << " odc)";
  os << ", " << wall_ms << " ms" << (verified ? ", verified" : "");
  return os.str();
}

Pipeline::Pipeline(PipelineOptions opt) : opt_(opt) {}

Pipeline& Pipeline::add(std::unique_ptr<Pass> pass) {
  passes_.push_back(std::move(pass));
  return *this;
}

bool Pipeline::self_check_enabled() const {
  if (opt_.self_check >= 0) return opt_.self_check != 0;
#ifdef NDEBUG
  constexpr std::uint64_t fallback = 0;
#else
  constexpr std::uint64_t fallback = 1;
#endif
  return par::env_u64("OSSS_OPT_CHECK", fallback, 0, 1) != 0;
}

Pipeline Pipeline::standard(PipelineOptions opt) {
  Pipeline p(opt);
  SatSweepOptions sweep;
  sweep.facts = opt.facts;
  p.add(std::make_unique<RewritePass>());
  p.add(std::make_unique<SatSweepPass>(sweep));
  p.add(std::make_unique<RetimePass>(opt.lib, RetimeOptions{}));
  p.add(std::make_unique<TechMapPass>(opt.lib, TechMapOptions{}));
  return p;
}

gate::Netlist Pipeline::run(const gate::Netlist& in) {
  const gate::Library& lib = lib_or_generic(opt_.lib);
  const bool check = self_check_enabled();
  const std::uint64_t base_seed =
      opt_.seed != 0 ? opt_.seed
                     : verify::StimGen::derive(0x09717, "opt/" + in.name());

  gate::Netlist current = in;
  for (unsigned round = 0; round < opt_.max_rounds; ++round) {
    std::size_t round_changes = 0;
    for (const auto& pass : passes_) {
      PassStats stats;
      stats.pass = pass->name();
      fill_before(stats, current, lib);
      const auto t0 = std::chrono::steady_clock::now();
      gate::Netlist next = pass->run(current, stats);
      stats.wall_ms =
          std::chrono::duration<double, std::milli>(
              std::chrono::steady_clock::now() - t0)
              .count();
      fill_after(stats, next, lib);
      if (check) {
        gate::EquivOptions eopt;
        eopt.sequences = opt_.check_sequences;
        eopt.cycles = opt_.check_cycles;
        eopt.seed = verify::StimGen::derive(
            base_seed, stats.pass + "/" + std::to_string(round));
        eopt.mode_a = opt_.check_mode;
        eopt.mode_b = opt_.check_mode;
        eopt.codegen = opt_.check_codegen;
        const gate::EquivResult r =
            gate::check_equivalence(current, next, eopt);
        if (!r) {
          throw std::logic_error("opt::Pipeline: pass '" + stats.pass +
                                 "' broke equivalence on '" + in.name() +
                                 "': " + r.counterexample);
        }
        stats.verified = true;
      }
      round_changes += stats.changes;
      stats_.push_back(std::move(stats));
      current = std::move(next);
    }
    if (round_changes == 0) break;
  }
  return current;
}

gate::Netlist optimize(const gate::Netlist& in, PipelineOptions opt,
                       std::vector<PassStats>* stats) {
  Pipeline p = Pipeline::standard(opt);
  gate::Netlist out = p.run(in);
  if (stats)
    stats->insert(stats->end(), p.stats().begin(), p.stats().end());
  return out;
}

const std::vector<PassInfo>& pass_registry() {
  static const std::vector<PassInfo> registry = {
      {"rewrite", "AIG-style local rewriting (two-level cut rules)",
       []() -> std::unique_ptr<Pass> { return std::make_unique<RewritePass>(); }},
      {"satsweep", "simulation-guided equivalent-net sweeping",
       []() -> std::unique_ptr<Pass> {
         return std::make_unique<SatSweepPass>();
       }},
      {"retime", "forward retiming across combinational cells",
       []() -> std::unique_ptr<Pass> { return std::make_unique<RetimePass>(); }},
      {"techmap", "cut-based technology mapping onto library cells",
       []() -> std::unique_ptr<Pass> {
         return std::make_unique<TechMapPass>();
       }},
  };
  return registry;
}

std::unique_ptr<Pass> make_pass(const std::string& name) {
  for (const PassInfo& info : pass_registry())
    if (name == info.name) return info.make();
  return nullptr;
}

}  // namespace osss::opt
