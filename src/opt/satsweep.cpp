#include "opt/satsweep.hpp"

#include <algorithm>
#include <string>
#include <unordered_map>
#include <vector>

#include "gate/equiv.hpp"
#include "opt/rebuild.hpp"
#include "verify/stimgen.hpp"

namespace osss::opt {

using gate::kInvalidNet;
using gate::MemMacro;

namespace {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::uint64_t eval_word(CellKind k, std::uint64_t a, std::uint64_t b,
                        std::uint64_t c) {
  switch (k) {
    case CellKind::kBuf: return a;
    case CellKind::kInv: return ~a;
    case CellKind::kAnd2: return a & b;
    case CellKind::kOr2: return a | b;
    case CellKind::kNand2: return ~(a & b);
    case CellKind::kNor2: return ~(a | b);
    case CellKind::kXor2: return a ^ b;
    case CellKind::kXnor2: return ~(a ^ b);
    case CellKind::kMux2: return (a & b) | (~a & c);
    default: return 0;
  }
}

bool is_free_leaf(CellKind k) {
  return k == CellKind::kInput || k == CellKind::kDff ||
         k == CellKind::kMemQ;
}

bool is_source_kind(CellKind k) {
  return k == CellKind::kConst0 || k == CellKind::kConst1 ||
         k == CellKind::kInput || k == CellKind::kDff;
}

/// Canonical 64-lane enumeration tiles: variable v < 6 toggles with period
/// 2^v lanes, so six variables cover all 64 assignments in one word.
constexpr std::uint64_t kTile[6] = {
    0xaaaaaaaaaaaaaaaaull, 0xccccccccccccccccull, 0xf0f0f0f0f0f0f0f0ull,
    0xff00ff00ff00ff00ull, 0xffff0000ffff0000ull, 0xffffffff00000000ull};

/// Union-find whose root is always the member that the rebuild scaffold may
/// use as class representative: sources before combinational cells, then
/// ascending (level, id).
class UnionFind {
 public:
  UnionFind(const Netlist& nl, const std::vector<std::uint32_t>& levels)
      : nl_(nl), levels_(levels), parent_(nl.cells().size()) {
    for (NetId i = 0; i < parent_.size(); ++i) parent_[i] = i;
  }

  NetId find(NetId id) const {
    while (parent_[id] != id) {
      parent_[id] = parent_[parent_[id]];
      id = parent_[id];
    }
    return id;
  }

  /// Merge the classes of a and b; returns false when already one class.
  bool unite(NetId a, NetId b) {
    a = find(a);
    b = find(b);
    if (a == b) return false;
    if (better(b, a)) std::swap(a, b);
    parent_[b] = a;
    return true;
  }

  /// Strict "a is a better representative than b" in rebuild's order.
  bool better(NetId a, NetId b) const {
    const bool sa = is_source_kind(nl_.cells()[a].kind);
    const bool sb = is_source_kind(nl_.cells()[b].kind);
    if (sa != sb) return sa;
    const std::uint32_t la = sa ? 0 : levels_[a];
    const std::uint32_t lb = sb ? 0 : levels_[b];
    if (la != lb) return la < lb;
    return a < b;
  }

 private:
  const Netlist& nl_;
  const std::vector<std::uint32_t>& levels_;
  mutable std::vector<NetId> parent_;
};

class Sweeper {
 public:
  Sweeper(const Netlist& nl, const SatSweepOptions& opt, std::uint64_t seed)
      : nl_(nl),
        opt_(opt),
        seed_(seed),
        levels_(nl.topo_levels()),
        order_(level_order(nl)),
        uf_(nl, levels_) {}

  std::size_t sweep() {
    std::size_t merges = 0;
    // Iterate: a register or memory-port merge can equalize further cones.
    for (unsigned iter = 0; iter < 8; ++iter) {
      std::size_t round = dedup_memq();
      round += dedup_dffs();
      round += const_regs(iter);
      round += merge_comb(iter);
      merges += round;
      if (round == 0) break;
    }
    return merges;
  }

  NetId find(NetId id) const { return uf_.find(id); }

  /// SDC phase: re-prove the externally supplied per-bit register constants
  /// by netlist induction, then unite the survivors into the constant-net
  /// classes.  Mirrors const_regs' structure; the value added by the facts
  /// is the random-resolution fallback for cones whose free support exceeds
  /// the exhaustive prover — the RTL-level abstract interpreter already
  /// proved the invariant, so a sampled netlist-level confirmation (plus
  /// the pass-level differential check) carries the name-mapping trust
  /// boundary.  Returns the number of registers merged.
  std::size_t sweep_facts() {
    if (!opt_.facts || opt_.facts->empty()) return 0;
    std::vector<char> cand(nl_.cells().size(), 0);
    std::vector<NetId> regs;
    for (NetId id = 0; id < nl_.cells().size(); ++id) {
      const Cell& c = nl_.cells()[id];
      if (c.kind != CellKind::kDff || uf_.find(id) != id || c.ins.empty())
        continue;
      const auto it = opt_.facts->find(c.name);
      // A valid invariant always covers the reset state, so a claim that
      // disagrees with the init value is a stale or mismapped fact: drop.
      if (it == opt_.facts->end() || it->second != (c.init != 0)) continue;
      cand[id] = 1;
      regs.push_back(id);
    }
    if (regs.empty()) return 0;

    // Simulation filter with every claimed register pinned at init.
    std::vector<std::uint64_t> val;
    for (bool changed = true; changed;) {
      changed = false;
      for (unsigned r = 0; r < 4; ++r) {
        simulate_round(val,
                       verify::StimGen::derive(
                           seed_, "factreg/" + std::to_string(r)),
                       &cand);
        for (const NetId q : regs) {
          if (cand[q] == 0) continue;
          const std::uint64_t want = nl_.cells()[q].init ? ~0ull : 0ull;
          if (val[nl_.cells()[q].ins[0]] != want) {
            cand[q] = 0;
            changed = true;
          }
        }
      }
    }
    // Induction step per survivor: exhaustive when the free support fits,
    // random resolution otherwise.
    for (bool changed = true; changed;) {
      changed = false;
      for (const NetId q : regs) {
        if (cand[q] == 0) continue;
        const NetId d = nl_.cells()[q].ins[0];
        const std::uint64_t want = nl_.cells()[q].init ? ~0ull : 0ull;
        const Cone cone = cone_of(d);
        bool ok = cone.ok;
        std::vector<NetId> free_vars;
        if (ok) {
          for (const NetId s : cone.support)
            if (cand[s] == 0) free_vars.push_back(s);
        }
        std::unordered_map<NetId, std::uint64_t> leaf;
        if (ok && free_vars.size() <= opt_.exhaustive_bits) {
          const std::size_t k = free_vars.size();
          const std::size_t blocks = k > 6 ? (std::size_t{1} << (k - 6)) : 1;
          for (std::size_t blk = 0; blk < blocks && ok; ++blk) {
            leaf.clear();
            for (const NetId s : cone.support)
              if (cand[s] != 0) leaf[s] = nl_.cells()[s].init ? ~0ull : 0ull;
            for (std::size_t v = 0; v < k; ++v)
              leaf[free_vars[v]] = v < 6 ? kTile[v]
                                    : ((blk >> (v - 6)) & 1u ? ~0ull : 0ull);
            if (eval_cone(cone, d, leaf) != want) ok = false;
          }
        } else if (ok) {
          for (unsigned r = 0; r < opt_.resolution_rounds && ok; ++r) {
            std::uint64_t s = verify::StimGen::derive(
                seed_, "factres/" + std::to_string(q) + "/" +
                           std::to_string(r));
            leaf.clear();
            for (const NetId sup : cone.support)
              leaf[sup] = cand[sup] != 0
                              ? (nl_.cells()[sup].init ? ~0ull : 0ull)
                              : splitmix64(s);
            if (eval_cone(cone, d, leaf) != want) ok = false;
          }
        }
        if (!ok) {
          cand[q] = 0;
          changed = true;
        }
      }
    }
    std::size_t merges = 0;
    for (const NetId q : regs)
      if (cand[q] != 0 && uf_.unite(q, nl_.cells()[q].init ? 1 : 0)) ++merges;
    return merges;
  }

  /// Sequential phase: a 64-lane trajectory from reset samples the
  /// reachable state space (so reachable-state structure — saturating
  /// counters, one-hot guards, mirrored registers — is in scope, not just
  /// combinational identities).  The trajectory only *nominates*; every
  /// merge is proven:
  ///
  ///   * register equivalences (van Eijk): register pairs with equal init
  ///     that agreed on every sampled cycle are assumed equal as a set —
  ///     the leader substitutes for the follower in every next-state cone —
  ///     and each pair's D cones are then proven equal exhaustively over
  ///     the remaining free support; failures drop out of the assumption
  ///     set and the rest re-prove, to a fixpoint.  Survivors are sound by
  ///     induction from reset.
  ///   * observability merges: nets that differ only where the chain-rule
  ///     mask says nobody is watching are accepted only on an exact proof —
  ///     exhaustive enumeration of the union free support of every affected
  ///     observation cone, comparing each cone with and without the
  ///     replacement.
  ///
  /// The netlist is fully resimulated after each comb merge.  Returns the
  /// number of merges applied.
  std::size_t sweep_odc() {
    if (opt_.odc_max_merges == 0 || opt_.odc_cycles == 0) return 0;
    const std::size_t n = nl_.cells().size();
    if (n > opt_.odc_max_cells) return 0;
    simulate_trajectory();
    std::size_t merges = sweep_seq_regs();
    while (merges < opt_.odc_max_merges) {
      simulate_trajectory();
      NetId ma = kInvalidNet;
      NetId mb = kInvalidNet;
      for (NetId a = 0; a < n && ma == kInvalidNet; ++a) {
        if (uf_.find(a) != a) continue;
        const CellKind ka = nl_.cells()[a].kind;
        if (is_free_leaf(ka) || is_source_kind(ka)) continue;
        if (levels_[a] == gate::kNoLevel) continue;
        // Every affected observation cone's support is a superset of a's
        // own (the cone runs through a), so a wide-support a can never be
        // proven — skip before the quadratic candidate scan.
        {
          const Cone ca = cone_of(a);
          if (!ca.ok || ca.support.size() > opt_.odc_exhaustive_bits)
            continue;
        }
        std::vector<NetId> cands;
        for (NetId b = 0; b < n; ++b) {
          if (uf_.find(b) != b || b == a || !uf_.better(b, a)) continue;
          if (nl_.cells()[b].kind == CellKind::kMemQ) continue;
          bool masked = true;
          for (unsigned t = 0; t < opt_.odc_cycles && masked; ++t)
            masked = ((odc_val_[t][a] ^ odc_val_[t][b]) & odc_obs_[t][a]) == 0;
          if (masked) cands.push_back(b);
        }
        if (cands.empty()) continue;
        OdcCtx ctx;
        if (!odc_ctx(a, ctx)) continue;
        for (const NetId b : cands)
          if (prove_odc(ctx, a, b)) {
            ma = a;
            mb = b;
            break;
          }
      }
      if (ma == kInvalidNet) break;
      uf_.unite(ma, mb);
      ++merges;
    }
    return merges;
  }

 private:
  const Netlist& nl_;
  const SatSweepOptions& opt_;
  std::uint64_t seed_;
  std::vector<std::uint32_t> levels_;
  std::vector<NetId> order_;
  UnionFind uf_;
  std::vector<std::uint32_t> seen_;  ///< cone_of visit stamps
  std::uint32_t stamp_ = 0;
  /// Trial substitution overlay for sweep_seq_regs: maps a class rep onto
  /// the register it is assumed equal to.  Empty = inactive.  Applied by
  /// res() after find(), so cone extraction and evaluation see the merged
  /// netlist *plus* the assumption set under test.
  std::vector<NetId> trial_;

  NetId res(NetId id) const {
    id = uf_.find(id);
    return trial_.empty() ? id : trial_[id];
  }

  // --- ODC phase state: one entry per trajectory cycle --------------------
  std::vector<std::vector<std::uint64_t>> odc_val_;  ///< net values
  std::vector<std::vector<std::uint64_t>> odc_obs_;  ///< chain-rule obs masks
  /// Memory contents entering each cycle: [mem][word * width + bit], one
  /// 64-lane word each (the gate::Simulator kBitParallel layout).
  std::vector<std::vector<std::vector<std::uint64_t>>> odc_mem_;

  /// Read one memory bit against explicit contents, with the same per-lane
  /// semantics as gate::Simulator::eval_memq: lanes whose address is out of
  /// range read 0.  Bit-sliced: lane-select masks per word.
  std::uint64_t memq_eval(const std::vector<std::uint64_t>& mem,
                          const Cell& c,
                          const std::vector<std::uint64_t>& val) const {
    const MemMacro& m = nl_.memories()[c.param];
    std::uint64_t out = 0;
    for (unsigned w = 0; w < m.depth; ++w) {
      std::uint64_t eq = ~0ull;
      for (std::size_t i = 0; i < c.ins.size() && eq; ++i) {
        const std::uint64_t bit = val[uf_.find(c.ins[i])];
        eq &= ((w >> i) & 1u) ? bit : ~bit;
      }
      if (eq) out |= eq & mem[static_cast<std::size_t>(w) * m.width + c.param2];
    }
    return out;
  }

  /// One combinational evaluation over the *merged* view of the netlist:
  /// every cell input resolves through find(), which is exactly the wiring
  /// rebuild will emit.  Free leaves (inputs, DFF state) must already be
  /// set in `val`; kMemQ cells read `mem`.
  void eval_resolved(std::vector<std::uint64_t>& val,
                     const std::vector<std::vector<std::uint64_t>>& mem) const {
    for (const NetId id : order_) {
      if (uf_.find(id) != id) continue;
      const Cell& c = nl_.cells()[id];
      if (c.kind == CellKind::kMemQ) {
        val[id] = memq_eval(mem[c.param], c, val);
        continue;
      }
      val[id] = eval_word(c.kind, val[uf_.find(c.ins[0])],
                          c.ins.size() > 1 ? val[uf_.find(c.ins[1])] : 0,
                          c.ins.size() > 2 ? val[uf_.find(c.ins[2])] : 0);
    }
  }

  /// The nets whose values define external/sequential behavior: outputs,
  /// DFF D pins, memory write ports.  Resolved through find(); duplicates
  /// are harmless.
  template <typename F>
  void for_each_obs_point(F&& f) const {
    for (const auto& bus : nl_.outputs())
      for (const NetId net : bus.nets) f(uf_.find(net));
    for (NetId id = 0; id < nl_.cells().size(); ++id) {
      const Cell& c = nl_.cells()[id];
      if (c.kind == CellKind::kDff && uf_.find(id) == id && !c.ins.empty())
        f(uf_.find(c.ins[0]));
    }
    for (const MemMacro& m : nl_.memories())
      for (const auto& wp : m.writes) {
        for (const NetId a : wp.addr) f(uf_.find(a));
        for (const NetId d : wp.data) f(uf_.find(d));
        f(uf_.find(wp.enable));
      }
  }

  /// Chain-rule observability masks for cycle `t`: observation points are
  /// fully observable, and a cell input inherits (flip-sensitivity AND the
  /// cell's own mask) in reverse topological order.  Reconvergent fanout
  /// makes this approximate in both directions, which is fine: it is only
  /// the candidate filter, never the proof.
  void compute_obs(unsigned t) {
    std::vector<std::uint64_t>& obs = odc_obs_[t];
    const std::vector<std::uint64_t>& val = odc_val_[t];
    obs.assign(nl_.cells().size(), 0);
    for_each_obs_point([&](NetId id) { obs[id] = ~0ull; });
    // Memory read addresses select words: a flip redirects the read, which
    // this pass does not model — treat them as fully observable.
    for (NetId id = 0; id < nl_.cells().size(); ++id) {
      const Cell& c = nl_.cells()[id];
      if (c.kind != CellKind::kMemQ || uf_.find(id) != id) continue;
      for (const NetId in : c.ins) obs[uf_.find(in)] = ~0ull;
    }
    for (auto it = order_.rbegin(); it != order_.rend(); ++it) {
      const NetId id = *it;
      if (uf_.find(id) != id || obs[id] == 0) continue;
      const Cell& c = nl_.cells()[id];
      if (c.kind == CellKind::kMemQ) continue;  // handled above
      const std::uint64_t a = val[uf_.find(c.ins[0])];
      const std::uint64_t b = c.ins.size() > 1 ? val[uf_.find(c.ins[1])] : 0;
      const std::uint64_t d = c.ins.size() > 2 ? val[uf_.find(c.ins[2])] : 0;
      for (std::size_t j = 0; j < c.ins.size(); ++j) {
        const std::uint64_t sens =
            eval_word(c.kind, j == 0 ? ~a : a, j == 1 ? ~b : b,
                      j == 2 ? ~d : d) ^
            val[id];
        obs[uf_.find(c.ins[j])] |= sens & obs[id];
      }
    }
  }

  /// Simulate `odc_cycles` cycles of the merged netlist from power-on reset
  /// under deterministic random inputs, recording per-cycle values,
  /// observability masks and memory contents.
  void simulate_trajectory() {
    const std::size_t n = nl_.cells().size();
    const unsigned cycles = opt_.odc_cycles;
    odc_val_.assign(cycles, {});
    odc_obs_.assign(cycles, {});
    odc_mem_.assign(cycles, {});
    const std::uint64_t base = verify::StimGen::derive(seed_, "odc/traj");

    std::vector<std::vector<std::uint64_t>> mem(nl_.memories().size());
    for (std::size_t mi = 0; mi < mem.size(); ++mi) {
      const MemMacro& m = nl_.memories()[mi];
      mem[mi].assign(static_cast<std::size_t>(m.depth) * m.width, 0);
    }
    std::vector<std::uint64_t> state(n, 0);
    for (NetId id = 0; id < n; ++id) {
      const Cell& c = nl_.cells()[id];
      if (c.kind == CellKind::kDff && uf_.find(id) == id)
        state[id] = c.init ? ~0ull : 0ull;
    }

    for (unsigned t = 0; t < cycles; ++t) {
      std::vector<std::uint64_t>& val = odc_val_[t];
      val.assign(n, 0);
      val[1] = ~0ull;
      for (NetId id = 0; id < n; ++id) {
        const Cell& c = nl_.cells()[id];
        if (uf_.find(id) != id) continue;
        if (c.kind == CellKind::kInput) {
          std::uint64_t s = base + 0x6a09e667f3bcc909ull *
                                       (static_cast<std::uint64_t>(id) + 1) +
                            0x3c6ef372fe94f82bull * (t + 1);
          val[id] = splitmix64(s);
        } else if (c.kind == CellKind::kDff) {
          val[id] = state[id];
        }
      }
      odc_mem_[t] = mem;
      eval_resolved(val, odc_mem_[t]);
      compute_obs(t);

      // Commit: write ports in declaration order (later ports win a
      // same-word collision, matching gate::Simulator), then DFF state.
      // Both sample pre-edge values, so ordering between them is moot.
      for (std::size_t mi = 0; mi < mem.size(); ++mi) {
        const MemMacro& m = nl_.memories()[mi];
        for (const auto& wp : m.writes) {
          const std::uint64_t en = val[uf_.find(wp.enable)];
          if (!en) continue;
          for (unsigned w = 0; w < m.depth; ++w) {
            std::uint64_t eq = en;
            for (std::size_t i = 0; i < wp.addr.size() && eq; ++i) {
              const std::uint64_t bit = val[uf_.find(wp.addr[i])];
              eq &= ((w >> i) & 1u) ? bit : ~bit;
            }
            if (!eq) continue;
            for (unsigned b = 0; b < m.width; ++b) {
              std::uint64_t& word =
                  mem[mi][static_cast<std::size_t>(w) * m.width + b];
              word = (word & ~eq) | (val[uf_.find(wp.data[b])] & eq);
            }
          }
        }
      }
      for (NetId id = 0; id < n; ++id) {
        const Cell& c = nl_.cells()[id];
        if (c.kind == CellKind::kDff && uf_.find(id) == id && !c.ins.empty())
          state[id] = val[uf_.find(c.ins[0])];
      }
    }
  }

  /// Van Eijk sequential register equivalence.  Candidate pairs: rep
  /// registers with equal init whose Q values agreed on every sampled
  /// trajectory cycle.  All candidates are assumed equal at once (the
  /// trial substitution maps each follower onto its leader inside every
  /// cone), then each pair's next-state cones must be proven equal
  /// exhaustively over the remaining free support — a pair that cannot be
  /// proven (support too wide, or a real mismatch) is dropped and the
  /// survivors re-prove under the smaller assumption set, to a fixpoint.
  /// Base case (equal init) plus inductive step (equal D under the
  /// assumption, for *all* states and inputs) make the surviving merges
  /// sound from reset, with no reliance on sampling.
  std::size_t sweep_seq_regs() {
    const std::size_t n = nl_.cells().size();
    std::unordered_map<std::uint64_t, std::vector<NetId>> groups;
    for (NetId q = 0; q < n; ++q) {
      const Cell& c = nl_.cells()[q];
      if (c.kind != CellKind::kDff || uf_.find(q) != q || c.ins.empty())
        continue;
      std::uint64_t h = c.init ? 0x9e3779b97f4a7c15ull : 0xcbf29ce484222325ull;
      for (unsigned t = 0; t < opt_.odc_cycles; ++t)
        h = (h ^ odc_val_[t][q]) * 0x100000001b3ull;
      groups[h].push_back(q);
    }
    std::vector<std::pair<NetId, NetId>> pairs;  // (leader, follower)
    for (auto& [h, members] : groups) {
      if (members.size() < 2) continue;
      std::sort(members.begin(), members.end(),
                [&](NetId x, NetId y) { return uf_.better(x, y); });
      for (std::size_t i = 1; i < members.size(); ++i)
        if (nl_.cells()[members[i]].init == nl_.cells()[members[0]].init)
          pairs.emplace_back(members[0], members[i]);
    }
    if (pairs.empty()) return 0;

    std::vector<char> alive(pairs.size(), 1);
    std::unordered_map<NetId, std::uint64_t> leaf;
    for (bool changed = true; changed;) {
      changed = false;
      trial_.resize(n);
      for (NetId id = 0; id < n; ++id) trial_[id] = id;
      for (std::size_t i = 0; i < pairs.size(); ++i)
        if (alive[i] != 0) trial_[pairs[i].second] = pairs[i].first;
      for (std::size_t i = 0; i < pairs.size(); ++i) {
        if (alive[i] == 0) continue;
        const NetId d1 = nl_.cells()[pairs[i].first].ins[0];
        const NetId d2 = nl_.cells()[pairs[i].second].ins[0];
        const Cone c1 = cone_of(d1);
        const Cone c2 = cone_of(d2);
        bool ok = c1.ok && c2.ok;
        std::vector<NetId> support;
        if (ok) {
          support = c1.support;
          for (const NetId s : c2.support)
            if (std::find(support.begin(), support.end(), s) == support.end())
              support.push_back(s);
          ok = support.size() <= opt_.exhaustive_bits;
        }
        if (ok) {
          std::sort(support.begin(), support.end());
          const std::size_t k = support.size();
          const std::size_t blocks = k > 6 ? (std::size_t{1} << (k - 6)) : 1;
          for (std::size_t blk = 0; blk < blocks && ok; ++blk) {
            leaf.clear();
            for (std::size_t v = 0; v < k; ++v)
              leaf[support[v]] = v < 6 ? kTile[v]
                                       : ((blk >> (v - 6)) & 1u ? ~0ull : 0ull);
            if (eval_cone(c1, d1, leaf) != eval_cone(c2, d2, leaf)) ok = false;
          }
        }
        if (!ok) {
          alive[i] = 0;
          changed = true;
        }
      }
    }
    trial_.clear();
    std::size_t merges = 0;
    for (std::size_t i = 0; i < pairs.size(); ++i)
      if (alive[i] != 0 && uf_.unite(pairs[i].first, pairs[i].second))
        ++merges;
    return merges;
  }

  struct Cone {
    std::vector<NetId> cells;    ///< comb cells, ascending (level, id)
    std::vector<NetId> support;  ///< free-leaf class representatives
    bool ok = true;              ///< false when the cone cap was hit
  };

  /// Per-candidate proof context for observability merges: the observation
  /// points in a's transitive fanout, their cones and the union free
  /// support — all independent of the replacement net b, so built once per
  /// a and reused across the candidate scan.
  struct OdcCtx {
    std::vector<NetId> points;
    std::vector<Cone> cones;
    std::vector<NetId> support;
  };

  bool odc_ctx(NetId a, OdcCtx& ctx) {
    const std::size_t n = nl_.cells().size();
    std::vector<char> aff(n, 0);
    aff[a] = 1;
    for (const NetId id : order_) {
      if (uf_.find(id) != id || id == a) continue;
      const Cell& c = nl_.cells()[id];
      if (c.kind == CellKind::kMemQ) continue;  // cut: reads are free leaves
      for (const NetId in : c.ins)
        if (aff[uf_.find(in)] != 0) {
          aff[id] = 1;
          break;
        }
    }
    std::vector<char> seen(n, 0);
    const auto add_point = [&](NetId p) {
      if (aff[p] != 0 && seen[p] == 0) {
        seen[p] = 1;
        ctx.points.push_back(p);
      }
    };
    for_each_obs_point(add_point);
    // Memory read addresses redirect reads, which the combinational cut
    // does not model — they must be preserved too.
    for (NetId id = 0; id < n; ++id) {
      const Cell& c = nl_.cells()[id];
      if (c.kind != CellKind::kMemQ || uf_.find(id) != id) continue;
      for (const NetId in : c.ins) add_point(uf_.find(in));
    }
    if (ctx.points.size() > 64) return false;
    ctx.cones.reserve(ctx.points.size());
    for (const NetId p : ctx.points) {
      Cone cp = cone_of(p);
      if (!cp.ok) return false;
      for (const NetId s : cp.support)
        if (std::find(ctx.support.begin(), ctx.support.end(), s) ==
            ctx.support.end())
          ctx.support.push_back(s);
      ctx.cones.push_back(std::move(cp));
    }
    return ctx.support.size() <= opt_.odc_exhaustive_bits;
  }

  /// Observability merge proof: a and b genuinely differ, so the
  /// replacement is legal only if the difference can *never* reach an
  /// observation point — and the chain-rule mask that nominated the pair
  /// is approximate, so this is proven, not sampled.  Enumerate the union
  /// free support of b's cone and every affected observation cone
  /// exhaustively, and require each cone to be bit-identical with and
  /// without a forced to b's value.  DFF D pins and memory ports cut the
  /// fanout traversal, so the proof is combinational and therefore
  /// sequentially sound.
  bool prove_odc(const OdcCtx& ctx, NetId a, NetId b) {
    if (ctx.points.empty()) return true;  // provably unobservable
    const Cone cb = cone_of(b);
    if (!cb.ok) return false;
    std::vector<NetId> support = ctx.support;
    for (const NetId s : cb.support)
      if (std::find(support.begin(), support.end(), s) == support.end())
        support.push_back(s);
    if (support.size() > opt_.odc_exhaustive_bits) return false;
    std::sort(support.begin(), support.end());

    const std::size_t k = support.size();
    const std::size_t blocks = k > 6 ? (std::size_t{1} << (k - 6)) : 1;
    std::unordered_map<NetId, std::uint64_t> leaf;
    for (std::size_t blk = 0; blk < blocks; ++blk) {
      leaf.clear();
      for (std::size_t v = 0; v < k; ++v)
        leaf[support[v]] = v < 6 ? kTile[v]
                                 : ((blk >> (v - 6)) & 1u ? ~0ull : 0ull);
      const std::uint64_t bv = eval_cone(cb, b, leaf);
      for (std::size_t i = 0; i < ctx.points.size(); ++i)
        if (eval_cone(ctx.cones[i], ctx.points[i], leaf) !=
            eval_cone(ctx.cones[i], ctx.points[i], leaf, a, bv))
          return false;
    }
    return true;
  }

  /// Structural dedup of memory read bits: same memory, same data bit and
  /// class-equal address nets read the same value.
  std::size_t dedup_memq() {
    std::unordered_map<std::string, NetId> seen;
    std::size_t merges = 0;
    for (const NetId id : order_) {
      const Cell& c = nl_.cells()[id];
      if (c.kind != CellKind::kMemQ) continue;
      std::string key =
          std::to_string(c.param) + ":" + std::to_string(c.param2);
      for (const NetId in : c.ins) key += "," + std::to_string(uf_.find(in));
      const auto [it, inserted] = seen.emplace(std::move(key), id);
      if (!inserted && uf_.unite(it->second, id)) ++merges;
    }
    return merges;
  }

  /// Register dedup: class-equal D nets + equal init value => equal Q, by
  /// induction from reset.
  std::size_t dedup_dffs() {
    std::unordered_map<std::uint64_t, NetId> seen;
    std::size_t merges = 0;
    for (NetId id = 0; id < nl_.cells().size(); ++id) {
      const Cell& c = nl_.cells()[id];
      if (c.kind != CellKind::kDff) continue;
      const std::uint64_t key =
          (static_cast<std::uint64_t>(uf_.find(c.ins.at(0))) << 1) |
          (c.init ? 1u : 0u);
      const auto [it, inserted] = seen.emplace(key, id);
      if (!inserted && uf_.unite(it->second, id)) ++merges;
    }
    return merges;
  }

  /// Sequential constant propagation: a register equals its initial value
  /// forever when its next-state function yields that value whenever every
  /// candidate register holds its initial value — induction from reset.
  /// Candidates shrink to a simulation fixpoint; each survivor is then
  /// proven exactly by exhaustive enumeration over its cone's free support
  /// (survivors whose free support is too wide are dropped, never guessed),
  /// and merges into the constant-net class.
  std::size_t const_regs(unsigned iter) {
    std::vector<char> cand(nl_.cells().size(), 0);
    std::vector<NetId> regs;
    for (NetId id = 0; id < nl_.cells().size(); ++id) {
      const Cell& c = nl_.cells()[id];
      if (c.kind != CellKind::kDff || uf_.find(id) != id || c.ins.empty())
        continue;
      cand[id] = 1;
      regs.push_back(id);
    }
    // Cheap filter: 64-lane rounds with the candidates pinned at init; a
    // candidate whose D deviates is out.  Every pass either removes a
    // candidate or reaches the fixpoint, so the loop terminates.
    std::vector<std::uint64_t> val;
    for (bool changed = true; changed;) {
      changed = false;
      for (unsigned r = 0; r < 4; ++r) {
        simulate_round(val,
                       verify::StimGen::derive(
                           seed_, "constreg/" + std::to_string(iter) + "/" +
                                      std::to_string(r)),
                       &cand);
        for (const NetId q : regs) {
          if (cand[q] == 0) continue;
          const std::uint64_t want = nl_.cells()[q].init ? ~0ull : 0ull;
          if (val[nl_.cells()[q].ins[0]] != want) {
            cand[q] = 0;
            changed = true;
          }
        }
      }
    }
    // Exact step proofs.  Each proof assumes the other survivors are
    // constant, so re-prove until no survivor drops.
    for (bool changed = true; changed;) {
      changed = false;
      for (const NetId q : regs) {
        if (cand[q] == 0) continue;
        const NetId d = nl_.cells()[q].ins[0];
        const std::uint64_t want = nl_.cells()[q].init ? ~0ull : 0ull;
        const Cone cone = cone_of(d);
        bool ok = cone.ok;
        std::vector<NetId> free_vars;
        if (ok) {
          for (const NetId s : cone.support)
            if (cand[s] == 0) free_vars.push_back(s);
          ok = free_vars.size() <= opt_.exhaustive_bits;
        }
        if (ok) {
          const std::size_t k = free_vars.size();
          const std::size_t blocks = k > 6 ? (std::size_t{1} << (k - 6)) : 1;
          std::unordered_map<NetId, std::uint64_t> leaf;
          for (std::size_t blk = 0; blk < blocks && ok; ++blk) {
            leaf.clear();
            for (const NetId s : cone.support)
              if (cand[s] != 0) leaf[s] = nl_.cells()[s].init ? ~0ull : 0ull;
            for (std::size_t v = 0; v < k; ++v)
              leaf[free_vars[v]] = v < 6 ? kTile[v]
                                    : ((blk >> (v - 6)) & 1u ? ~0ull : 0ull);
            if (eval_cone(cone, d, leaf) != want) ok = false;
          }
        }
        if (!ok) {
          cand[q] = 0;
          changed = true;
        }
      }
    }
    std::size_t merges = 0;
    for (const NetId q : regs)
      if (cand[q] != 0 && uf_.unite(q, nl_.cells()[q].init ? 1 : 0)) ++merges;
    return merges;
  }

  /// Random value of a free leaf's class this round (one stream per class,
  /// so merged registers agree).  Registers flagged in `pinned` are held at
  /// their initial value instead (sequential constant candidates).
  void assign_free(std::vector<std::uint64_t>& val, std::uint64_t round_seed,
                   const std::vector<char>* pinned = nullptr) {
    for (NetId id = 0; id < nl_.cells().size(); ++id) {
      const Cell& c = nl_.cells()[id];
      if (!is_free_leaf(c.kind)) continue;
      const NetId rep = uf_.find(id);
      if (rep == id) {
        if (pinned != nullptr && (*pinned)[id] != 0) {
          val[id] = c.init ? ~0ull : 0ull;
          continue;
        }
        std::uint64_t s = round_seed + 0x6a09e667f3bcc909ull *
                                           (static_cast<std::uint64_t>(id) + 1);
        val[id] = splitmix64(s);
      }
    }
    for (NetId id = 0; id < nl_.cells().size(); ++id)
      if (is_free_leaf(nl_.cells()[id].kind)) val[id] = val[uf_.find(id)];
  }

  /// Simulate one 64-lane round over the whole netlist.
  void simulate_round(std::vector<std::uint64_t>& val,
                      std::uint64_t round_seed,
                      const std::vector<char>* pinned = nullptr) {
    val.assign(nl_.cells().size(), 0);
    val[1] = ~0ull;
    assign_free(val, round_seed, pinned);
    for (const NetId id : order_) {
      const Cell& c = nl_.cells()[id];
      if (c.kind == CellKind::kMemQ) continue;  // free leaf, assigned above
      val[id] = eval_word(c.kind, val[c.ins[0]],
                          c.ins.size() > 1 ? val[c.ins[1]] : 0,
                          c.ins.size() > 2 ? val[c.ins[2]] : 0);
    }
  }

  Cone cone_of(NetId root) {
    constexpr std::size_t kConeCap = 4096;
    Cone cone;
    if (seen_.size() != nl_.cells().size())
      seen_.assign(nl_.cells().size(), 0);
    ++stamp_;
    std::vector<NetId> stack;
    const auto visit = [&](NetId id) {
      if (seen_[id] == stamp_) return;
      seen_[id] = stamp_;
      stack.push_back(id);
    };
    visit(res(root));
    while (!stack.empty()) {
      const NetId id = stack.back();
      stack.pop_back();
      const Cell& c = nl_.cells()[id];
      if (c.kind == CellKind::kConst0 || c.kind == CellKind::kConst1) continue;
      if (is_free_leaf(c.kind)) {
        cone.support.push_back(id);
        continue;
      }
      cone.cells.push_back(id);
      if (cone.cells.size() > kConeCap) {
        cone.ok = false;
        return cone;
      }
      for (const NetId in : c.ins) visit(res(in));
    }
    std::sort(cone.cells.begin(), cone.cells.end(), [&](NetId a, NetId b) {
      if (levels_[a] != levels_[b]) return levels_[a] < levels_[b];
      return a < b;
    });
    std::sort(cone.support.begin(), cone.support.end());
    return cone;
  }

  /// Evaluate one cone under per-support-class lane words.  `leaf` maps a
  /// support rep to its word; constants are implicit.  `forced` (when
  /// != kInvalidNet) is held at `forced_val` instead of being recomputed —
  /// the replacement under test in prove_odc.
  std::uint64_t eval_cone(const Cone& cone, NetId root,
                          const std::unordered_map<NetId, std::uint64_t>& leaf,
                          NetId forced = kInvalidNet,
                          std::uint64_t forced_val = 0) const {
    std::unordered_map<NetId, std::uint64_t> val(leaf);
    val[0] = 0;
    val[1] = ~0ull;
    const auto get = [&](NetId id) { return val.at(res(id)); };
    for (const NetId id : cone.cells) {
      if (id == forced) {
        val[id] = forced_val;
        continue;
      }
      const Cell& c = nl_.cells()[id];
      val[id] = eval_word(c.kind, get(c.ins[0]),
                          c.ins.size() > 1 ? get(c.ins[1]) : 0,
                          c.ins.size() > 2 ? get(c.ins[2]) : 0);
    }
    return val.at(res(root));
  }

  /// Resolve a signature-collision pair: exhaustive proof when the union
  /// support is small enough, random resolution otherwise.
  bool resolve(NetId a, NetId b, unsigned iter) {
    const Cone ca = cone_of(a);
    const Cone cb = cone_of(b);
    if (!ca.ok || !cb.ok) return false;
    std::vector<NetId> support = ca.support;
    for (const NetId s : cb.support)
      if (std::find(support.begin(), support.end(), s) == support.end())
        support.push_back(s);
    std::sort(support.begin(), support.end());

    const std::size_t k = support.size();
    std::unordered_map<NetId, std::uint64_t> leaf;
    if (k <= opt_.exhaustive_bits) {
      // Enumerate all 2^k assignments: support vars 0..5 take the canonical
      // 64-lane tiles, vars >= 6 sweep over block-index bits.
      const std::size_t blocks = k > 6 ? (std::size_t{1} << (k - 6)) : 1;
      for (std::size_t blk = 0; blk < blocks; ++blk) {
        leaf.clear();
        for (std::size_t v = 0; v < k; ++v)
          leaf[support[v]] = v < 6 ? kTile[v]
                                   : ((blk >> (v - 6)) & 1u ? ~0ull : 0ull);
        if (eval_cone(ca, a, leaf) != eval_cone(cb, b, leaf)) return false;
      }
      return true;  // proven
    }
    // Random resolution over the union support only.
    for (unsigned r = 0; r < opt_.resolution_rounds; ++r) {
      std::uint64_t s = verify::StimGen::derive(
          seed_, "resolve/" + std::to_string(iter) + "/" + std::to_string(r) +
                     "/" + std::to_string(a) + "/" + std::to_string(b));
      leaf.clear();
      for (const NetId v : support) leaf[v] = splitmix64(s);
      if (eval_cone(ca, a, leaf) != eval_cone(cb, b, leaf)) return false;
    }
    return true;  // accepted (backstopped by the pipeline self-check)
  }

  /// One signature/merge sweep over combinational nets.
  std::size_t merge_comb(unsigned iter) {
    const unsigned rounds = std::max(1u, opt_.rounds);
    std::vector<std::vector<std::uint64_t>> sig(
        nl_.cells().size(), std::vector<std::uint64_t>());
    std::vector<std::uint64_t> val;
    for (unsigned r = 0; r < rounds; ++r) {
      simulate_round(val, verify::StimGen::derive(
                              seed_, "round/" + std::to_string(iter) + "/" +
                                         std::to_string(r)));
      for (NetId id = 0; id < nl_.cells().size(); ++id)
        if (uf_.find(id) == id) sig[id].push_back(val[id]);
    }

    // Group class representatives by full signature.
    std::unordered_map<std::uint64_t, std::vector<NetId>> groups;
    for (NetId id = 0; id < nl_.cells().size(); ++id) {
      if (uf_.find(id) != id) continue;
      const CellKind kind = nl_.cells()[id].kind;
      const bool comb = levels_[id] != gate::kNoLevel;
      const bool constant =
          kind == CellKind::kConst0 || kind == CellKind::kConst1;
      if (!comb && !constant && !is_free_leaf(kind)) continue;
      std::uint64_t h = 0xcbf29ce484222325ull;
      if (constant) {
        for (unsigned r = 0; r < rounds; ++r)
          h = (h ^ (kind == CellKind::kConst1 ? ~0ull : 0ull)) *
              0x100000001b3ull;
      } else {
        for (const std::uint64_t w : sig[id]) h = (h ^ w) * 0x100000001b3ull;
      }
      groups[h].push_back(id);
    }

    std::size_t merges = 0;
    for (auto& [h, members] : groups) {
      if (members.size() < 2) continue;
      std::sort(members.begin(), members.end(),
                [&](NetId x, NetId y) { return uf_.better(x, y); });
      const NetId rep = members.front();
      for (std::size_t i = 1; i < members.size(); ++i) {
        const NetId cand = members[i];
        if (uf_.find(cand) == uf_.find(rep)) continue;
        // Only merge pairs with at least one combinational side; two free
        // leaves with colliding signatures are distinct variables (the
        // exhaustive check below would reject them anyway).
        if (is_free_leaf(nl_.cells()[rep].kind) &&
            is_free_leaf(nl_.cells()[cand].kind))
          continue;
        if (resolve(rep, cand, iter) && uf_.unite(rep, cand)) ++merges;
      }
    }
    return merges;
  }
};

}  // namespace

gate::Netlist SatSweepPass::run(const gate::Netlist& in,
                                PassStats& stats) const {
  const std::uint64_t seed =
      opt_.seed != 0 ? opt_.seed
                     : verify::StimGen::derive(0x5a77, "satsweep/" + in.name());
  Sweeper sweeper(in, opt_, seed);
  const std::size_t fact_merges = sweeper.sweep_facts();
  std::size_t classic_merges = sweeper.sweep();
  const std::size_t odc_merges = sweeper.sweep_odc();
  // A register equivalence proven by the sequential phase can equalize
  // further combinational cones — give the classic sweep one more look.
  if (odc_merges != 0) classic_merges += sweeper.sweep();
  RebuildHooks hooks;
  hooks.replace = [&](NetId id) { return sweeper.find(id); };
  gate::Netlist out = rebuild(in, hooks);

  if (fact_merges + odc_merges != 0) {
    // Facts and ODC merges are sampled (trajectory/resolution rounds), so
    // every run that applied one is differentially verified here — even
    // when the pipeline-level self-check is off — and falls back to the
    // deterministic classic sweep if the check disagrees.  The pass never
    // throws on a speculative merge gone wrong; it just forgoes it.
    gate::EquivOptions eopt;
    eopt.sequences = 4;
    eopt.cycles = 128;
    eopt.seed = verify::StimGen::derive(seed, "verify");
    if (!gate::check_equivalence(in, out, eopt)) {
      Sweeper classic(in, opt_, seed);
      stats.changes += classic.sweep();
      RebuildHooks fallback;
      fallback.replace = [&](NetId id) { return classic.find(id); };
      return rebuild(in, fallback);
    }
  }
  stats.changes += fact_merges + classic_merges + odc_merges;
  stats.fact_merges += fact_merges;
  stats.odc_merges += odc_merges;
  return out;
}

}  // namespace osss::opt
