#include "opt/satsweep.hpp"

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "opt/rebuild.hpp"
#include "verify/stimgen.hpp"

namespace osss::opt {

namespace {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::uint64_t eval_word(CellKind k, std::uint64_t a, std::uint64_t b,
                        std::uint64_t c) {
  switch (k) {
    case CellKind::kBuf: return a;
    case CellKind::kInv: return ~a;
    case CellKind::kAnd2: return a & b;
    case CellKind::kOr2: return a | b;
    case CellKind::kNand2: return ~(a & b);
    case CellKind::kNor2: return ~(a | b);
    case CellKind::kXor2: return a ^ b;
    case CellKind::kXnor2: return ~(a ^ b);
    case CellKind::kMux2: return (a & b) | (~a & c);
    default: return 0;
  }
}

bool is_free_leaf(CellKind k) {
  return k == CellKind::kInput || k == CellKind::kDff ||
         k == CellKind::kMemQ;
}

bool is_source_kind(CellKind k) {
  return k == CellKind::kConst0 || k == CellKind::kConst1 ||
         k == CellKind::kInput || k == CellKind::kDff;
}

/// Canonical 64-lane enumeration tiles: variable v < 6 toggles with period
/// 2^v lanes, so six variables cover all 64 assignments in one word.
constexpr std::uint64_t kTile[6] = {
    0xaaaaaaaaaaaaaaaaull, 0xccccccccccccccccull, 0xf0f0f0f0f0f0f0f0ull,
    0xff00ff00ff00ff00ull, 0xffff0000ffff0000ull, 0xffffffff00000000ull};

/// Union-find whose root is always the member that the rebuild scaffold may
/// use as class representative: sources before combinational cells, then
/// ascending (level, id).
class UnionFind {
 public:
  UnionFind(const Netlist& nl, const std::vector<std::uint32_t>& levels)
      : nl_(nl), levels_(levels), parent_(nl.cells().size()) {
    for (NetId i = 0; i < parent_.size(); ++i) parent_[i] = i;
  }

  NetId find(NetId id) const {
    while (parent_[id] != id) {
      parent_[id] = parent_[parent_[id]];
      id = parent_[id];
    }
    return id;
  }

  /// Merge the classes of a and b; returns false when already one class.
  bool unite(NetId a, NetId b) {
    a = find(a);
    b = find(b);
    if (a == b) return false;
    if (better(b, a)) std::swap(a, b);
    parent_[b] = a;
    return true;
  }

  /// Strict "a is a better representative than b" in rebuild's order.
  bool better(NetId a, NetId b) const {
    const bool sa = is_source_kind(nl_.cells()[a].kind);
    const bool sb = is_source_kind(nl_.cells()[b].kind);
    if (sa != sb) return sa;
    const std::uint32_t la = sa ? 0 : levels_[a];
    const std::uint32_t lb = sb ? 0 : levels_[b];
    if (la != lb) return la < lb;
    return a < b;
  }

 private:
  const Netlist& nl_;
  const std::vector<std::uint32_t>& levels_;
  mutable std::vector<NetId> parent_;
};

class Sweeper {
 public:
  Sweeper(const Netlist& nl, const SatSweepOptions& opt, std::uint64_t seed)
      : nl_(nl),
        opt_(opt),
        seed_(seed),
        levels_(nl.topo_levels()),
        order_(level_order(nl)),
        uf_(nl, levels_) {}

  std::size_t sweep() {
    std::size_t merges = 0;
    // Iterate: a register or memory-port merge can equalize further cones.
    for (unsigned iter = 0; iter < 8; ++iter) {
      std::size_t round = dedup_memq();
      round += dedup_dffs();
      round += const_regs(iter);
      round += merge_comb(iter);
      merges += round;
      if (round == 0) break;
    }
    return merges;
  }

  NetId find(NetId id) const { return uf_.find(id); }

 private:
  const Netlist& nl_;
  const SatSweepOptions& opt_;
  std::uint64_t seed_;
  std::vector<std::uint32_t> levels_;
  std::vector<NetId> order_;
  UnionFind uf_;
  std::vector<std::uint32_t> seen_;  ///< cone_of visit stamps
  std::uint32_t stamp_ = 0;

  /// Structural dedup of memory read bits: same memory, same data bit and
  /// class-equal address nets read the same value.
  std::size_t dedup_memq() {
    std::unordered_map<std::string, NetId> seen;
    std::size_t merges = 0;
    for (const NetId id : order_) {
      const Cell& c = nl_.cells()[id];
      if (c.kind != CellKind::kMemQ) continue;
      std::string key =
          std::to_string(c.param) + ":" + std::to_string(c.param2);
      for (const NetId in : c.ins) key += "," + std::to_string(uf_.find(in));
      const auto [it, inserted] = seen.emplace(std::move(key), id);
      if (!inserted && uf_.unite(it->second, id)) ++merges;
    }
    return merges;
  }

  /// Register dedup: class-equal D nets + equal init value => equal Q, by
  /// induction from reset.
  std::size_t dedup_dffs() {
    std::unordered_map<std::uint64_t, NetId> seen;
    std::size_t merges = 0;
    for (NetId id = 0; id < nl_.cells().size(); ++id) {
      const Cell& c = nl_.cells()[id];
      if (c.kind != CellKind::kDff) continue;
      const std::uint64_t key =
          (static_cast<std::uint64_t>(uf_.find(c.ins.at(0))) << 1) |
          (c.init ? 1u : 0u);
      const auto [it, inserted] = seen.emplace(key, id);
      if (!inserted && uf_.unite(it->second, id)) ++merges;
    }
    return merges;
  }

  /// Sequential constant propagation: a register equals its initial value
  /// forever when its next-state function yields that value whenever every
  /// candidate register holds its initial value — induction from reset.
  /// Candidates shrink to a simulation fixpoint; each survivor is then
  /// proven exactly by exhaustive enumeration over its cone's free support
  /// (survivors whose free support is too wide are dropped, never guessed),
  /// and merges into the constant-net class.
  std::size_t const_regs(unsigned iter) {
    std::vector<char> cand(nl_.cells().size(), 0);
    std::vector<NetId> regs;
    for (NetId id = 0; id < nl_.cells().size(); ++id) {
      const Cell& c = nl_.cells()[id];
      if (c.kind != CellKind::kDff || uf_.find(id) != id || c.ins.empty())
        continue;
      cand[id] = 1;
      regs.push_back(id);
    }
    // Cheap filter: 64-lane rounds with the candidates pinned at init; a
    // candidate whose D deviates is out.  Every pass either removes a
    // candidate or reaches the fixpoint, so the loop terminates.
    std::vector<std::uint64_t> val;
    for (bool changed = true; changed;) {
      changed = false;
      for (unsigned r = 0; r < 4; ++r) {
        simulate_round(val,
                       verify::StimGen::derive(
                           seed_, "constreg/" + std::to_string(iter) + "/" +
                                      std::to_string(r)),
                       &cand);
        for (const NetId q : regs) {
          if (cand[q] == 0) continue;
          const std::uint64_t want = nl_.cells()[q].init ? ~0ull : 0ull;
          if (val[nl_.cells()[q].ins[0]] != want) {
            cand[q] = 0;
            changed = true;
          }
        }
      }
    }
    // Exact step proofs.  Each proof assumes the other survivors are
    // constant, so re-prove until no survivor drops.
    for (bool changed = true; changed;) {
      changed = false;
      for (const NetId q : regs) {
        if (cand[q] == 0) continue;
        const NetId d = nl_.cells()[q].ins[0];
        const std::uint64_t want = nl_.cells()[q].init ? ~0ull : 0ull;
        const Cone cone = cone_of(d);
        bool ok = cone.ok;
        std::vector<NetId> free_vars;
        if (ok) {
          for (const NetId s : cone.support)
            if (cand[s] == 0) free_vars.push_back(s);
          ok = free_vars.size() <= opt_.exhaustive_bits;
        }
        if (ok) {
          const std::size_t k = free_vars.size();
          const std::size_t blocks = k > 6 ? (std::size_t{1} << (k - 6)) : 1;
          std::unordered_map<NetId, std::uint64_t> leaf;
          for (std::size_t blk = 0; blk < blocks && ok; ++blk) {
            leaf.clear();
            for (const NetId s : cone.support)
              if (cand[s] != 0) leaf[s] = nl_.cells()[s].init ? ~0ull : 0ull;
            for (std::size_t v = 0; v < k; ++v)
              leaf[free_vars[v]] = v < 6 ? kTile[v]
                                    : ((blk >> (v - 6)) & 1u ? ~0ull : 0ull);
            if (eval_cone(cone, d, leaf) != want) ok = false;
          }
        }
        if (!ok) {
          cand[q] = 0;
          changed = true;
        }
      }
    }
    std::size_t merges = 0;
    for (const NetId q : regs)
      if (cand[q] != 0 && uf_.unite(q, nl_.cells()[q].init ? 1 : 0)) ++merges;
    return merges;
  }

  /// Random value of a free leaf's class this round (one stream per class,
  /// so merged registers agree).  Registers flagged in `pinned` are held at
  /// their initial value instead (sequential constant candidates).
  void assign_free(std::vector<std::uint64_t>& val, std::uint64_t round_seed,
                   const std::vector<char>* pinned = nullptr) {
    for (NetId id = 0; id < nl_.cells().size(); ++id) {
      const Cell& c = nl_.cells()[id];
      if (!is_free_leaf(c.kind)) continue;
      const NetId rep = uf_.find(id);
      if (rep == id) {
        if (pinned != nullptr && (*pinned)[id] != 0) {
          val[id] = c.init ? ~0ull : 0ull;
          continue;
        }
        std::uint64_t s = round_seed + 0x6a09e667f3bcc909ull *
                                           (static_cast<std::uint64_t>(id) + 1);
        val[id] = splitmix64(s);
      }
    }
    for (NetId id = 0; id < nl_.cells().size(); ++id)
      if (is_free_leaf(nl_.cells()[id].kind)) val[id] = val[uf_.find(id)];
  }

  /// Simulate one 64-lane round over the whole netlist.
  void simulate_round(std::vector<std::uint64_t>& val,
                      std::uint64_t round_seed,
                      const std::vector<char>* pinned = nullptr) {
    val.assign(nl_.cells().size(), 0);
    val[1] = ~0ull;
    assign_free(val, round_seed, pinned);
    for (const NetId id : order_) {
      const Cell& c = nl_.cells()[id];
      if (c.kind == CellKind::kMemQ) continue;  // free leaf, assigned above
      val[id] = eval_word(c.kind, val[c.ins[0]],
                          c.ins.size() > 1 ? val[c.ins[1]] : 0,
                          c.ins.size() > 2 ? val[c.ins[2]] : 0);
    }
  }

  struct Cone {
    std::vector<NetId> cells;    ///< comb cells, ascending (level, id)
    std::vector<NetId> support;  ///< free-leaf class representatives
    bool ok = true;              ///< false when the cone cap was hit
  };

  Cone cone_of(NetId root) {
    constexpr std::size_t kConeCap = 4096;
    Cone cone;
    if (seen_.size() != nl_.cells().size())
      seen_.assign(nl_.cells().size(), 0);
    ++stamp_;
    std::vector<NetId> stack;
    const auto visit = [&](NetId id) {
      if (seen_[id] == stamp_) return;
      seen_[id] = stamp_;
      stack.push_back(id);
    };
    visit(uf_.find(root));
    while (!stack.empty()) {
      const NetId id = stack.back();
      stack.pop_back();
      const Cell& c = nl_.cells()[id];
      if (c.kind == CellKind::kConst0 || c.kind == CellKind::kConst1) continue;
      if (is_free_leaf(c.kind)) {
        cone.support.push_back(id);
        continue;
      }
      cone.cells.push_back(id);
      if (cone.cells.size() > kConeCap) {
        cone.ok = false;
        return cone;
      }
      for (const NetId in : c.ins) visit(uf_.find(in));
    }
    std::sort(cone.cells.begin(), cone.cells.end(), [&](NetId a, NetId b) {
      if (levels_[a] != levels_[b]) return levels_[a] < levels_[b];
      return a < b;
    });
    std::sort(cone.support.begin(), cone.support.end());
    return cone;
  }

  /// Evaluate one cone under per-support-class lane words.  `leaf` maps a
  /// support rep to its word; constants are implicit.
  std::uint64_t eval_cone(
      const Cone& cone, NetId root,
      const std::unordered_map<NetId, std::uint64_t>& leaf) const {
    std::unordered_map<NetId, std::uint64_t> val(leaf);
    val[0] = 0;
    val[1] = ~0ull;
    const auto get = [&](NetId id) { return val.at(uf_.find(id)); };
    for (const NetId id : cone.cells) {
      const Cell& c = nl_.cells()[id];
      val[id] = eval_word(c.kind, get(c.ins[0]),
                          c.ins.size() > 1 ? get(c.ins[1]) : 0,
                          c.ins.size() > 2 ? get(c.ins[2]) : 0);
    }
    return val.at(uf_.find(root));
  }

  /// Resolve a signature-collision pair: exhaustive proof when the union
  /// support is small enough, random resolution otherwise.
  bool resolve(NetId a, NetId b, unsigned iter) {
    const Cone ca = cone_of(a);
    const Cone cb = cone_of(b);
    if (!ca.ok || !cb.ok) return false;
    std::vector<NetId> support = ca.support;
    for (const NetId s : cb.support)
      if (std::find(support.begin(), support.end(), s) == support.end())
        support.push_back(s);
    std::sort(support.begin(), support.end());

    const std::size_t k = support.size();
    std::unordered_map<NetId, std::uint64_t> leaf;
    if (k <= opt_.exhaustive_bits) {
      // Enumerate all 2^k assignments: support vars 0..5 take the canonical
      // 64-lane tiles, vars >= 6 sweep over block-index bits.
      const std::size_t blocks = k > 6 ? (std::size_t{1} << (k - 6)) : 1;
      for (std::size_t blk = 0; blk < blocks; ++blk) {
        leaf.clear();
        for (std::size_t v = 0; v < k; ++v)
          leaf[support[v]] = v < 6 ? kTile[v]
                                   : ((blk >> (v - 6)) & 1u ? ~0ull : 0ull);
        if (eval_cone(ca, a, leaf) != eval_cone(cb, b, leaf)) return false;
      }
      return true;  // proven
    }
    // Random resolution over the union support only.
    for (unsigned r = 0; r < opt_.resolution_rounds; ++r) {
      std::uint64_t s = verify::StimGen::derive(
          seed_, "resolve/" + std::to_string(iter) + "/" + std::to_string(r) +
                     "/" + std::to_string(a) + "/" + std::to_string(b));
      leaf.clear();
      for (const NetId v : support) leaf[v] = splitmix64(s);
      if (eval_cone(ca, a, leaf) != eval_cone(cb, b, leaf)) return false;
    }
    return true;  // accepted (backstopped by the pipeline self-check)
  }

  /// One signature/merge sweep over combinational nets.
  std::size_t merge_comb(unsigned iter) {
    const unsigned rounds = std::max(1u, opt_.rounds);
    std::vector<std::vector<std::uint64_t>> sig(
        nl_.cells().size(), std::vector<std::uint64_t>());
    std::vector<std::uint64_t> val;
    for (unsigned r = 0; r < rounds; ++r) {
      simulate_round(val, verify::StimGen::derive(
                              seed_, "round/" + std::to_string(iter) + "/" +
                                         std::to_string(r)));
      for (NetId id = 0; id < nl_.cells().size(); ++id)
        if (uf_.find(id) == id) sig[id].push_back(val[id]);
    }

    // Group class representatives by full signature.
    std::unordered_map<std::uint64_t, std::vector<NetId>> groups;
    for (NetId id = 0; id < nl_.cells().size(); ++id) {
      if (uf_.find(id) != id) continue;
      const CellKind kind = nl_.cells()[id].kind;
      const bool comb = levels_[id] != gate::kNoLevel;
      const bool constant =
          kind == CellKind::kConst0 || kind == CellKind::kConst1;
      if (!comb && !constant && !is_free_leaf(kind)) continue;
      std::uint64_t h = 0xcbf29ce484222325ull;
      if (constant) {
        for (unsigned r = 0; r < rounds; ++r)
          h = (h ^ (kind == CellKind::kConst1 ? ~0ull : 0ull)) *
              0x100000001b3ull;
      } else {
        for (const std::uint64_t w : sig[id]) h = (h ^ w) * 0x100000001b3ull;
      }
      groups[h].push_back(id);
    }

    std::size_t merges = 0;
    for (auto& [h, members] : groups) {
      if (members.size() < 2) continue;
      std::sort(members.begin(), members.end(),
                [&](NetId x, NetId y) { return uf_.better(x, y); });
      const NetId rep = members.front();
      for (std::size_t i = 1; i < members.size(); ++i) {
        const NetId cand = members[i];
        if (uf_.find(cand) == uf_.find(rep)) continue;
        // Only merge pairs with at least one combinational side; two free
        // leaves with colliding signatures are distinct variables (the
        // exhaustive check below would reject them anyway).
        if (is_free_leaf(nl_.cells()[rep].kind) &&
            is_free_leaf(nl_.cells()[cand].kind))
          continue;
        if (resolve(rep, cand, iter) && uf_.unite(rep, cand)) ++merges;
      }
    }
    return merges;
  }
};

}  // namespace

gate::Netlist SatSweepPass::run(const gate::Netlist& in,
                                PassStats& stats) const {
  const std::uint64_t seed =
      opt_.seed != 0 ? opt_.seed
                     : verify::StimGen::derive(0x5a77, "satsweep/" + in.name());
  Sweeper sweeper(in, opt_, seed);
  stats.changes += sweeper.sweep();
  RebuildHooks hooks;
  hooks.replace = [&](NetId id) { return sweeper.find(id); };
  return rebuild(in, hooks);
}

}  // namespace osss::opt
