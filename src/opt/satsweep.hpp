// satsweep.hpp — simulation-guided sweeping of functionally-equivalent nets.
//
// Classic SAT sweeping with the repo's 64-lane bit-parallel simulation in
// the solver seat.  Cut points (primary inputs, DFF outputs, memory read
// bits) are free variables; combinational nets are simulated under random
// 64-lane patterns for several rounds, and nets whose signatures collide
// become merge candidates.  Every candidate pair is then *resolved*:
//
//   * when the union structural support of the two cones is at most
//     `exhaustive_bits` free variables, all 2^k assignments are enumerated
//     in 64-lane blocks — the merge is proven, not sampled;
//   * larger cones get `resolution_rounds` additional independent 64-lane
//     random rounds; survivors are accepted (random resolution — the
//     pipeline's differential self-check backstops this, like the
//     equivalence checker backstops Hardcaml-style rewriting).
//
// Registers dedup too: DFFs whose resolved D-nets merge and whose init
// values agree are unified, and the sweep iterates until no new comb or
// register merge appears (a register merge can equalize more cones).

#pragma once

#include "opt/pass.hpp"

namespace osss::opt {

struct SatSweepOptions {
  unsigned rounds = 8;             ///< 64-lane signature rounds (512 patterns)
  unsigned exhaustive_bits = 14;   ///< exhaustive proof up to 2^k assignments
  unsigned resolution_rounds = 96; ///< random resolution rounds beyond that
  std::uint64_t seed = 0;          ///< 0 = derive from the netlist name
};

class SatSweepPass final : public Pass {
 public:
  explicit SatSweepPass(SatSweepOptions opt = {}) : opt_(opt) {}

  const char* name() const override { return "satsweep"; }
  gate::Netlist run(const gate::Netlist& in, PassStats& stats) const override;

 private:
  SatSweepOptions opt_;
};

}  // namespace osss::opt
