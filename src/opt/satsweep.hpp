// satsweep.hpp — simulation-guided sweeping of functionally-equivalent nets.
//
// Classic SAT sweeping with the repo's 64-lane bit-parallel simulation in
// the solver seat.  Cut points (primary inputs, DFF outputs, memory read
// bits) are free variables; combinational nets are simulated under random
// 64-lane patterns for several rounds, and nets whose signatures collide
// become merge candidates.  Every candidate pair is then *resolved*:
//
//   * when the union structural support of the two cones is at most
//     `exhaustive_bits` free variables, all 2^k assignments are enumerated
//     in 64-lane blocks — the merge is proven, not sampled;
//   * larger cones get `resolution_rounds` additional independent 64-lane
//     random rounds; survivors are accepted (random resolution — the
//     pipeline's differential self-check backstops this, like the
//     equivalence checker backstops Hardcaml-style rewriting).
//
// Registers dedup too: DFFs whose resolved D-nets merge and whose init
// values agree are unified, and the sweep iterates until no new comb or
// register merge appears (a register merge can equalize more cones).
//
// Two fact-driven phases extend the classic sweep:
//
//   * SDC seeding (`facts`): register-bit constants proven by the RTL-level
//     abstract interpreter (lint::FactDB::const_reg_bits) arrive keyed by
//     the lowering's stable DFF names.  Each claim is re-proven here by
//     netlist induction — with a random-resolution fallback for cones too
//     wide for the exhaustive prover, which is exactly what the facts add
//     over const_regs — and then united into the constant-net class.
//   * Sequential/ODC merging: a 64-lane *sequential* trajectory from reset
//     samples the reachable state space; per cycle, chain-rule
//     observability masks are back-propagated from the observation points
//     (outputs, DFF D pins, memory write ports, memory read addresses).
//     The trajectory only *nominates* pairs; every merge is then proven.
//     Register pairs that agreed on every sampled cycle go through van
//     Eijk induction — assume the candidate set equal, prove each pair's
//     next-state cones equal exhaustively, drop failures and re-prove to a
//     fixpoint.  Combinational pairs that differ only where the mask says
//     nobody is watching are accepted on an exact exhaustive proof over
//     every affected observation cone, with and without the replacement.
//
// The fact phase is still sampled for wide cones, so any run that applied
// a fact or sequential merge is differentially verified in-pass
// (gate::check_equivalence against the input) and falls back to the
// classic-only sweep when the check disagrees — the pass never ships an
// unverified speculative merge.

#pragma once

#include <memory>
#include <string>
#include <unordered_map>

#include "opt/pass.hpp"

namespace osss::opt {

struct SatSweepOptions {
  unsigned rounds = 8;             ///< 64-lane signature rounds (512 patterns)
  unsigned exhaustive_bits = 14;   ///< exhaustive proof up to 2^k assignments
  unsigned resolution_rounds = 96; ///< random resolution rounds beyond that
  std::uint64_t seed = 0;          ///< 0 = derive from the netlist name
  /// Externally proven per-bit register constants, keyed by the gate
  /// lowering's DFF cell name ("reg[bit]") — the conduit from
  /// lint::analyze_dataflow.  Claims are re-verified before use; nullptr
  /// or empty disables the phase.
  std::shared_ptr<const std::unordered_map<std::string, bool>> facts;
  /// Sequential trajectory length (cycles, 64 lanes each) sampled for ODC
  /// merging.
  unsigned odc_cycles = 48;
  /// ODC merges per sweep; 0 disables the ODC phase entirely.
  unsigned odc_max_merges = 32;
  /// Netlists with more cells than this skip the ODC phase (the pair scan
  /// is quadratic in the live-cell count).
  unsigned odc_max_cells = 4096;
  /// Exhaustive-proof budget for combinational ODC merges: the union free
  /// support of every affected observation cone must fit in this many
  /// variables for the merge to be *proven* (masked agreement on the
  /// trajectory is only the candidate filter, never the proof).
  unsigned odc_exhaustive_bits = 10;
};

class SatSweepPass final : public Pass {
 public:
  explicit SatSweepPass(SatSweepOptions opt = {}) : opt_(opt) {}

  const char* name() const override { return "satsweep"; }
  gate::Netlist run(const gate::Netlist& in, PassStats& stats) const override;

 private:
  SatSweepOptions opt_;
};

}  // namespace osss::opt
