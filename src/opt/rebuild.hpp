// rebuild.hpp — netlist reconstruction scaffold shared by the opt passes.
//
// Every pass in src/opt produces its result by walking the source netlist in
// a deterministic dependency order and re-emitting each cell into a fresh
// Netlist, optionally substituting nets (class merging) or whole subcones
// (rewriting, technology mapping) along the way.  Rebuilding through the
// optimizing factories re-runs constant folding and structural hashing over
// the transformed logic for free, so a pass only has to express its own
// rewrite — the baseline simplifications never regress.
//
// Emission order: input buses, memory declarations and DFF Q placeholders
// first (all sources), then combinational cells by ascending (logic level,
// NetId) — a valid topological order in which equal-level cells never read
// each other — then DFF D connections, memory write ports and output buses.

#pragma once

#include <functional>
#include <vector>

#include "gate/netlist.hpp"

namespace osss::opt {

using gate::Cell;
using gate::CellKind;
using gate::Netlist;
using gate::NetId;

struct RebuildHooks {
  /// Resolve a source net to its equivalence-class representative before
  /// any use (identity when empty).  A representative must precede every
  /// other class member in (level, id) order; sources represent themselves
  /// or another source.
  std::function<NetId(NetId)> replace;

  /// Emit one combinational source cell (logic or kMemQ) into `dst`;
  /// `ins` are the already-mapped input nets and `mapped` resolves any
  /// already-emitted source net (sources and lower-(level, id) cells) to its
  /// destination net — rewrite rules use it to reach cut leaves deeper than
  /// the direct inputs.  Return the destination net.  When empty,
  /// `emit_default` is used.
  std::function<NetId(Netlist& dst, NetId src_id, const std::vector<NetId>& ins,
                      const std::function<NetId(NetId)>& mapped)>
      emit;
};

/// Re-emit `src_id`'s cell: canonical kinds go through the optimizing
/// factories (kBuf vanishes), while mapped kinds (kNand2/kNor2/kXnor2, as
/// placed by the technology mapper) are preserved verbatim via raw_gate
/// after hand-applied constant/idempotence folds — re-decomposing them
/// would undo the mapping and regress area on every later pass.
NetId emit_default(Netlist& dst, const Netlist& src, NetId src_id,
                   const std::vector<NetId>& ins);

/// Rebuild `src` through the hooks.  The result is swept and validated.
Netlist rebuild(const Netlist& src, const RebuildHooks& hooks = {});

/// Combinational cells (including kMemQ) of `src` in ascending
/// (topo level, NetId) order — the rebuild emission order.
std::vector<NetId> level_order(const Netlist& src);

/// Number of reader pins of every net: cell inputs, DFF D pins, memory
/// write-port pins and output-bus bits all count.  fanout[n] == 1 means the
/// net has exactly one consumer — the gate a local rewrite may absorb.
std::vector<std::uint32_t> fanout_counts(const Netlist& nl);

}  // namespace osss::opt
