// techmap.hpp — cut-based technology mapping onto gate::Library cells.
//
// The netlist factories canonicalize into the {inv, and, or, xor, mux}
// basis (nand2() emits inv(and2) and so on), which is what makes structural
// hashing effective — but it leaves area on the table: in the generic
// library a NAND2 costs 1.0 GE against 2.0 GE for AND2+INV.  This pass maps
// the canonical network back onto the full cell set.
//
// For every combinational root it enumerates structural cuts of up to two
// leaves (cone size bounded), computes the root's truth table over the cut
// by local simulation, and matches it against every library cell function
// (AND/OR/NAND/NOR/XOR/XNOR, plus INV/BUF/constants for 1-leaf cuts).
// Matching by *function* rather than shape catches the polarity variants a
// pattern matcher misses — and(inv a, inv b) maps to NOR2(a, b) whether or
// not the inverters are shared.  Among matches it picks the cheapest by
// exact area delta (new cell vs the root plus every interior cell that the
// match kills, i.e. whose entire fanout lies inside the cone), applied only
// under the depth bound: a match may never push the root's arrival beyond
// its arrival in the unmapped netlist, so the pass minimizes area without
// regressing the critical path.

#pragma once

#include "opt/pass.hpp"

namespace osss::opt {

struct TechMapOptions {
  unsigned max_cone = 8;  ///< cells explored per cut cone
};

class TechMapPass final : public Pass {
 public:
  explicit TechMapPass(TechMapOptions opt = {}) : opt_(opt) {}
  TechMapPass(const gate::Library* lib, TechMapOptions opt)
      : opt_(opt), lib_(lib) {}

  const char* name() const override { return "techmap"; }
  gate::Netlist run(const gate::Netlist& in, PassStats& stats) const override;

 private:
  TechMapOptions opt_;
  const gate::Library* lib_ = nullptr;
};

}  // namespace osss::opt
