#include "opt/techmap.hpp"

#include <algorithm>
#include <limits>
#include <map>
#include <vector>

#include "gate/timing.hpp"
#include "opt/rebuild.hpp"

namespace osss::opt {

namespace {

bool comb_logic(CellKind k) {
  switch (k) {
    case CellKind::kBuf:
    case CellKind::kInv:
    case CellKind::kAnd2:
    case CellKind::kOr2:
    case CellKind::kNand2:
    case CellKind::kNor2:
    case CellKind::kXor2:
    case CellKind::kXnor2:
    case CellKind::kMux2:
      return true;
    default:
      return false;
  }
}

/// 4-valued truth-table evaluation: bit i of a mask is the cell's value under
/// leaf assignment (leaf0 = i&1, leaf1 = i>>1).
std::uint8_t eval_tt(CellKind k, std::uint8_t a, std::uint8_t b,
                     std::uint8_t c) {
  switch (k) {
    case CellKind::kBuf: return a;
    case CellKind::kInv: return static_cast<std::uint8_t>(~a & 0xF);
    case CellKind::kAnd2: return a & b;
    case CellKind::kOr2: return a | b;
    case CellKind::kNand2: return static_cast<std::uint8_t>(~(a & b) & 0xF);
    case CellKind::kNor2: return static_cast<std::uint8_t>(~(a | b) & 0xF);
    case CellKind::kXor2: return a ^ b;
    case CellKind::kXnor2: return static_cast<std::uint8_t>(~(a ^ b) & 0xF);
    case CellKind::kMux2:
      return static_cast<std::uint8_t>((a & b) | (~a & c & 0xF));
    default: return 0;
  }
}

/// A structural cut: up to two leaf nets plus the cone cells (root included)
/// between them and the root, in ascending (level, id) order.
struct Cut {
  std::vector<NetId> leaves;
  std::vector<NetId> cone;
};

double cell_delay(const gate::Library& lib, CellKind k) {
  return k == CellKind::kMemQ ? lib.mem_read_delay_ps : lib.spec(k).delay_ps;
}

/// Per-net required times under clock period `T` (the source netlist's own
/// critical path): a rewrite whose root still arrives by its required time
/// cannot lengthen any register/memory/output path beyond T.
std::vector<double> required_times(const Netlist& nl, const gate::Library& lib,
                                   double T) {
  std::vector<double> req(nl.cells().size(),
                          std::numeric_limits<double>::infinity());
  const auto relax = [&](NetId n, double t) { req[n] = std::min(req[n], t); };
  for (const Cell& c : nl.cells())
    if (c.kind == CellKind::kDff && !c.ins.empty())
      relax(c.ins[0], T - lib.dff_setup_ps);
  for (const auto& m : nl.memories()) {
    for (const auto& w : m.writes) {
      for (const NetId n : w.addr) relax(n, T - lib.mem_setup_ps);
      for (const NetId n : w.data) relax(n, T - lib.mem_setup_ps);
      relax(w.enable, T - lib.mem_setup_ps);
    }
  }
  for (const auto& bus : nl.outputs())
    for (const NetId n : bus.nets) relax(n, T);
  const std::vector<NetId> order = nl.topo_order();
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const Cell& c = nl.cells()[*it];
    const double t = req[*it] - cell_delay(lib, c.kind);
    for (const NetId in : c.ins) relax(in, t);
  }
  return req;
}

class Mapper {
 public:
  Mapper(const Netlist& src, const gate::Library& lib, unsigned max_cone)
      : src_(src),
        lib_(lib),
        max_cone_(max_cone),
        levels_(src.topo_levels()),
        fanout_(fanout_counts(src)) {
    const gate::TimingReport report = gate::analyze_timing(src, lib);
    required_ = required_times(src, lib, report.critical_path_ps);
  }

  std::size_t changes() const noexcept { return changes_; }

  NetId emit(Netlist& dst, NetId root, const std::vector<NetId>& ins,
             const std::function<NetId(NetId)>& mapped) {
    const Cell& c = src_.cells()[root];
    if (comb_logic(c.kind)) {
      Plan cut = cut_plan(dst, root, mapped);
      Plan aoi = aoi_plan(dst, root, mapped);
      Plan& best = aoi.savings > cut.savings ? aoi : cut;
      if (best.savings > 1e-9 && best.apply) {
        ++changes_;
        return best.apply();
      }
    }
    return emit_default(dst, src_, root, ins);
  }

 private:
  const Netlist& src_;
  const gate::Library& lib_;
  unsigned max_cone_;
  std::vector<std::uint32_t> levels_;
  std::vector<std::uint32_t> fanout_;
  std::vector<double> required_;
  std::vector<double> dst_arr_;  ///< lazily-memoized arrivals in `dst`
  std::size_t changes_ = 0;

  double area(CellKind k) const { return lib_.spec(k).area_ge; }

  /// Arrival time of an already-emitted destination net, memoized.  Using
  /// actual destination arrivals (not stale source ones) means successive
  /// slack-consuming rewrites cannot stack past the required time.
  double dst_arrival(const Netlist& dst, NetId n) {
    if (dst_arr_.size() < dst.cells().size())
      dst_arr_.resize(dst.cells().size(), -1.0);
    if (dst_arr_[n] >= 0.0) return dst_arr_[n];
    const Cell& c = dst.cells()[n];
    double worst = 0.0;
    switch (c.kind) {
      case CellKind::kConst0:
      case CellKind::kConst1:
      case CellKind::kInput:
        break;
      case CellKind::kDff:
        worst = lib_.dff_clk_to_q_ps;
        break;
      default:
        for (const NetId in : c.ins)
          worst = std::max(worst, dst_arrival(dst, in));
        worst += cell_delay(lib_, c.kind);
        break;
    }
    if (dst_arr_.size() < dst.cells().size())
      dst_arr_.resize(dst.cells().size(), -1.0);
    dst_arr_[n] = worst;
    return worst;
  }

  /// Enumerate cuts of `root` with at most two leaves, bounded by max_cone_
  /// cone cells, by iteratively expanding combinational leaves.
  std::vector<Cut> enumerate_cuts(NetId root) const {
    std::vector<Cut> cuts;
    std::vector<std::vector<NetId>> seen_leaves;
    Cut first;
    first.cone.push_back(root);
    for (const NetId in : src_.cells()[root].ins)
      if (in > 1 &&
          std::find(first.leaves.begin(), first.leaves.end(), in) ==
              first.leaves.end())
        first.leaves.push_back(in);
    if (first.leaves.size() > 2) return cuts;
    std::sort(first.leaves.begin(), first.leaves.end());
    seen_leaves.push_back(first.leaves);
    cuts.push_back(first);
    for (std::size_t i = 0; i < cuts.size(); ++i) {
      const Cut cut = cuts[i];  // copy: cuts grows below
      for (const NetId leaf : cut.leaves) {
        if (!comb_logic(src_.cells()[leaf].kind)) continue;
        Cut next;
        next.cone = cut.cone;
        next.cone.push_back(leaf);
        if (next.cone.size() > max_cone_) continue;
        bool ok = true;
        for (const NetId l : cut.leaves)
          if (l != leaf) next.leaves.push_back(l);
        for (const NetId in : src_.cells()[leaf].ins) {
          if (in <= 1) continue;  // constants are fixed, not variables
          if (std::find(next.cone.begin(), next.cone.end(), in) !=
              next.cone.end()) {
            ok = false;  // a leaf inside the cone cannot be a free variable
            break;
          }
          if (std::find(next.leaves.begin(), next.leaves.end(), in) ==
              next.leaves.end())
            next.leaves.push_back(in);
        }
        if (!ok || next.leaves.size() > 2 || next.leaves.empty()) continue;
        std::sort(next.leaves.begin(), next.leaves.end());
        if (std::find(seen_leaves.begin(), seen_leaves.end(), next.leaves) !=
            seen_leaves.end())
          continue;
        seen_leaves.push_back(next.leaves);
        std::sort(next.cone.begin(), next.cone.end(), [&](NetId a, NetId b) {
          if (levels_[a] != levels_[b]) return levels_[a] < levels_[b];
          return a < b;
        });
        cuts.push_back(std::move(next));
      }
    }
    return cuts;
  }

  /// Truth table of `root` over the cut's leaves.
  std::uint8_t truth_table(NetId root, const Cut& cut) const {
    std::map<NetId, std::uint8_t> val;
    val[0] = 0x0;
    val[1] = 0xF;
    static constexpr std::uint8_t kPattern[2] = {0xA, 0xC};
    for (std::size_t i = 0; i < cut.leaves.size(); ++i)
      val[cut.leaves[i]] = kPattern[i];
    for (const NetId id : cut.cone) {
      const Cell& c = src_.cells()[id];
      val[id] = eval_tt(c.kind, val.at(c.ins[0]),
                        c.ins.size() > 1 ? val.at(c.ins[1]) : 0,
                        c.ins.size() > 2 ? val.at(c.ins[2]) : 0);
    }
    return val.at(root);
  }

  /// Area currently spent on the cut: the root plus every interior cell
  /// whose entire fanout lies inside the cone (it dies with the match).
  double cone_cost(NetId root, const Cut& cut) const {
    double cost = area(src_.cells()[root].kind);
    for (const NetId id : cut.cone) {
      if (id == root) continue;
      std::uint32_t inside = 0;
      for (const NetId reader : cut.cone)
        for (const NetId in : src_.cells()[reader].ins)
          if (in == id) ++inside;
      if (inside == fanout_[id]) cost += area(src_.cells()[id].kind);
    }
    return cost;
  }

  /// A deferred rewrite of the cell being emitted: estimated area savings
  /// plus the emission closure that realises it.  savings == 0 means "no
  /// profitable match found".
  struct Plan {
    double savings = 0.0;
    std::function<NetId()> apply;
  };

  /// Best profitable single-cell library match for `root` over its ≤2-leaf
  /// cuts, under the depth bound.
  Plan cut_plan(Netlist& dst, NetId root,
                const std::function<NetId(NetId)>& mapped) {
    struct Choice {
      double savings = 0.0;
      CellKind kind = CellKind::kBuf;  // kBuf = wire / constant special case
      int inv_leaf = -1;  ///< leaf that takes an inverter (and-not family)
      std::uint8_t tt = 0;
      Cut cut;
    };
    Choice best;
    bool found = false;
    for (Cut& cut : enumerate_cuts(root)) {
      const std::uint8_t tt = truth_table(root, cut);
      // Wires and constants first: the whole cone collapses.
      if (tt == 0x0 || tt == 0xF || tt == 0xA ||
          (tt == 0xC && cut.leaves.size() > 1)) {
        const double savings = cone_cost(root, cut);
        if (savings > best.savings + 1e-9) {
          best = Choice{savings, CellKind::kBuf, -1, tt, cut};
          found = true;
        }
        continue;
      }
      CellKind kind;
      int inv_leaf = -1;  // and-not family: one leaf enters inverted
      switch (tt) {
        case 0x5: kind = CellKind::kInv; break;
        case 0x3: kind = CellKind::kInv; break;
        case 0x8: kind = CellKind::kAnd2; break;
        case 0xE: kind = CellKind::kOr2; break;
        case 0x7: kind = CellKind::kNand2; break;
        case 0x1: kind = CellKind::kNor2; break;
        case 0x6: kind = CellKind::kXor2; break;
        case 0x9: kind = CellKind::kXnor2; break;
        // and-not family: a&~b and duals, as nor/nand plus a leaf inverter.
        case 0x2: kind = CellKind::kNor2; inv_leaf = 0; break;
        case 0x4: kind = CellKind::kNor2; inv_leaf = 1; break;
        case 0xB: kind = CellKind::kNand2; inv_leaf = 0; break;
        case 0xD: kind = CellKind::kNand2; inv_leaf = 1; break;
        default: continue;
      }
      if ((kind != CellKind::kInv && cut.leaves.size() != 2) ||
          (tt == 0x3 && cut.leaves.size() < 2))
        continue;
      // Timing bound: the match may not push the root past its required
      // time (computed at the source netlist's own critical path).
      const double d_inv = lib_.spec(CellKind::kInv).delay_ps;
      double leaf_arrival = 0.0;
      for (std::size_t li = 0; li < cut.leaves.size(); ++li)
        leaf_arrival = std::max(
            leaf_arrival, dst_arrival(dst, mapped(cut.leaves[li])) +
                              (static_cast<int>(li) == inv_leaf ? d_inv : 0.0));
      if (leaf_arrival + lib_.spec(kind).delay_ps > required_[root] + 1e-6)
        continue;
      const double savings = cone_cost(root, cut) - area(kind) -
                             (inv_leaf >= 0 ? area(CellKind::kInv) : 0.0);
      if (savings > best.savings + 1e-9) {
        best = Choice{savings, kind, inv_leaf, tt, cut};
        found = true;
      }
    }
    Plan plan;
    if (!found) return plan;
    plan.savings = best.savings;
    plan.apply = [&dst, &mapped, best]() {
      if (best.kind == CellKind::kBuf) {
        if (best.tt == 0x0) return dst.const0();
        if (best.tt == 0xF) return dst.const1();
        return mapped(best.cut.leaves[best.tt == 0xA ? 0 : 1]);
      }
      if (best.kind == CellKind::kInv)
        return dst.inv(mapped(best.cut.leaves[best.tt == 0x5 ? 0 : 1]));
      NetId a = mapped(best.cut.leaves[0]);
      NetId b = mapped(best.cut.leaves[1]);
      if (best.inv_leaf == 0) a = dst.inv(a);
      if (best.inv_leaf == 1) b = dst.inv(b);
      return dst.raw_gate(best.kind, {a, b});
    };
    return plan;
  }

  /// AND-OR-invert style structural matches the 2-leaf cut enumeration
  /// cannot see (they need up to 4 free leaves):
  ///   or(and(a,b), and(c,d)) -> nand(nand(a,b), nand(c,d))
  ///   or(and(a,b), y)        -> nand(nand(a,b), inv(y))
  /// and their and/nor duals.  Each absorbed inner gate must be single-
  /// fanout, and the rewritten root may not arrive later than it did in the
  /// unmapped netlist.
  Plan aoi_plan(Netlist& dst, NetId root,
                const std::function<NetId(NetId)>& mapped) {
    Plan plan;
    const Cell& c = src_.cells()[root];
    CellKind inner, mk;
    if (c.kind == CellKind::kOr2) {
      inner = CellKind::kAnd2;
      mk = CellKind::kNand2;
    } else if (c.kind == CellKind::kAnd2) {
      inner = CellKind::kOr2;
      mk = CellKind::kNor2;
    } else {
      return plan;
    }
    const auto absorbable = [&](NetId n) {
      return n > 1 && src_.cells()[n].kind == inner && fanout_[n] == 1;
    };
    const NetId x = c.ins[0], y = c.ins[1];
    const double d_mk = lib_.spec(mk).delay_ps;
    const double d_inv = lib_.spec(CellKind::kInv).delay_ps;
    const double limit = required_[root] + 1e-6;
    const auto arr = [&](NetId n) { return dst_arrival(dst, mapped(n)); };
    if (absorbable(x) && absorbable(y)) {
      const Cell& xc = src_.cells()[x];
      const Cell& yc = src_.cells()[y];
      const double leaf =
          std::max(std::max(arr(xc.ins[0]), arr(xc.ins[1])),
                   std::max(arr(yc.ins[0]), arr(yc.ins[1])));
      const double savings = area(c.kind) + 2 * area(inner) - 3 * area(mk);
      if (leaf + 2 * d_mk <= limit && savings > plan.savings) {
        const NetId xa = xc.ins[0], xb = xc.ins[1];
        const NetId ya = yc.ins[0], yb = yc.ins[1];
        plan.savings = savings;
        plan.apply = [&dst, &mapped, mk, xa, xb, ya, yb]() {
          return dst.raw_gate(
              mk, {dst.raw_gate(mk, {mapped(xa), mapped(xb)}),
                   dst.raw_gate(mk, {mapped(ya), mapped(yb)})});
        };
      }
      // Full-adder carry: or(and(a, b), and(xor(a, b), cin)) is a mux —
      // when a^b the carry is cin, otherwise a == b so the carry is a.
      // One mux (with the propagate xor kept for the sum) beats the
      // NAND-NAND form on both area and delay.
      if (c.kind == CellKind::kOr2) {
        const double d_mux = lib_.spec(CellKind::kMux2).delay_ps;
        for (int side = 0; side < 2; ++side) {
          const Cell& plain = side == 0 ? xc : yc;  // and(a, b)
          const Cell& mixed = side == 0 ? yc : xc;  // and(xor(a, b), cin)
          for (int k = 0; k < 2; ++k) {
            const NetId p = mixed.ins[static_cast<std::size_t>(k)];
            const NetId cin = mixed.ins[static_cast<std::size_t>(1 - k)];
            if (p <= 1 || src_.cells()[p].kind != CellKind::kXor2) continue;
            const Cell& px = src_.cells()[p];
            const bool match =
                (px.ins[0] == plain.ins[0] && px.ins[1] == plain.ins[1]) ||
                (px.ins[0] == plain.ins[1] && px.ins[1] == plain.ins[0]);
            if (!match) continue;
            const double mux_savings =
                area(c.kind) + 2 * area(inner) - area(CellKind::kMux2);
            const double arrive =
                std::max(std::max(arr(p), arr(cin)), arr(plain.ins[0]));
            if (arrive + d_mux > limit || mux_savings <= plan.savings)
              continue;
            const NetId a = plain.ins[0];
            plan.savings = mux_savings;
            plan.apply = [&dst, &mapped, p, cin, a]() {
              return dst.mux2(mapped(p), mapped(cin), mapped(a));
            };
          }
        }
      }
    }
    for (int side = 0; side < 2; ++side) {
      const NetId s = side == 0 ? x : y;
      const NetId o = side == 0 ? y : x;
      if (!absorbable(s) || o <= 1 || absorbable(o)) continue;
      const Cell& sc = src_.cells()[s];
      const bool o_inv = src_.cells()[o].kind == CellKind::kInv;
      // inv(mapped(o)) folds through the factory when o is itself an
      // inverter; if that inverter dies with the fold, it counts as savings.
      const double o_path = o_inv ? arr(src_.cells()[o].ins[0]) + d_mk
                                  : arr(o) + d_inv + d_mk;
      const double s_path = std::max(arr(sc.ins[0]), arr(sc.ins[1])) + 2 * d_mk;
      if (std::max(o_path, s_path) > limit) continue;
      const double inv_cost =
          o_inv ? (fanout_[o] == 1 ? -area(CellKind::kInv) : 0.0)
                : area(CellKind::kInv);
      const double savings =
          area(c.kind) + area(inner) - 2 * area(mk) - inv_cost;
      if (savings <= plan.savings) continue;
      const NetId sa = sc.ins[0], sb = sc.ins[1];
      plan.savings = savings;
      plan.apply = [&dst, &mapped, mk, sa, sb, o]() {
        return dst.raw_gate(mk, {dst.raw_gate(mk, {mapped(sa), mapped(sb)}),
                                 dst.inv(mapped(o))});
      };
    }
    return plan;
  }
};

}  // namespace

gate::Netlist TechMapPass::run(const gate::Netlist& in,
                               PassStats& stats) const {
  static const gate::Library generic = gate::Library::generic();
  const gate::Library& lib = lib_ ? *lib_ : generic;
  Mapper mapper(in, lib, std::max(2u, opt_.max_cone));
  RebuildHooks hooks;
  hooks.emit = [&](Netlist& dst, NetId id, const std::vector<NetId>& ins,
                   const std::function<NetId(NetId)>& mapped) {
    return mapper.emit(dst, id, ins, mapped);
  };
  gate::Netlist out = rebuild(in, hooks);
  stats.changes += mapper.changes();
  return out;
}

}  // namespace osss::opt
