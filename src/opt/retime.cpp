#include "opt/retime.hpp"

#include <algorithm>
#include <string>
#include <vector>

#include "gate/timing.hpp"
#include "opt/rebuild.hpp"

namespace osss::opt {

namespace {

bool retimable_kind(CellKind k) {
  switch (k) {
    case CellKind::kBuf:
    case CellKind::kInv:
    case CellKind::kAnd2:
    case CellKind::kOr2:
    case CellKind::kNand2:
    case CellKind::kNor2:
    case CellKind::kXor2:
    case CellKind::kXnor2:
    case CellKind::kMux2:
      return true;
    default:
      return false;
  }
}

bool eval_bit(CellKind k, const std::vector<bool>& in) {
  const auto a = in.at(0);
  const auto b = in.size() > 1 && in[1];
  const auto c = in.size() > 2 && in[2];
  switch (k) {
    case CellKind::kBuf: return a;
    case CellKind::kInv: return !a;
    case CellKind::kAnd2: return a && b;
    case CellKind::kOr2: return a || b;
    case CellKind::kNand2: return !(a && b);
    case CellKind::kNor2: return !(a || b);
    case CellKind::kXor2: return a != b;
    case CellKind::kXnor2: return a == b;
    case CellKind::kMux2: return a ? b : c;
    default: return false;
  }
}

/// First cell on the critical path whose fanins are all registers or
/// constants (with at least one register) — the one forward move that can
/// shorten this path.  kInvalidNet when the path has none.
NetId find_candidate(const gate::Netlist& nl,
                     const std::vector<NetId>& path) {
  for (const NetId id : path) {
    const gate::Cell& c = nl.cells()[id];
    if (!retimable_kind(c.kind)) continue;
    bool has_dff = false, ok = true;
    for (const NetId in : c.ins) {
      const CellKind k = nl.cells()[in].kind;
      if (k == CellKind::kDff) has_dff = true;
      else if (k != CellKind::kConst0 && k != CellKind::kConst1) ok = false;
    }
    if (ok && has_dff) return id;
    // Cells further along the path read this one, so none can have an
    // all-register fanin either.
    return gate::kInvalidNet;
  }
  return gate::kInvalidNet;
}

}  // namespace

gate::Netlist RetimePass::run(const gate::Netlist& in,
                              PassStats& stats) const {
  static const gate::Library generic = gate::Library::generic();
  const gate::Library& lib = lib_ ? *lib_ : generic;

  gate::Netlist nl = in;
  for (unsigned move = 0; move < opt_.max_moves; ++move) {
    const gate::TimingReport report = gate::analyze_timing(nl, lib);
    const NetId c = find_candidate(nl, report.critical_path);
    if (c == gate::kInvalidNet) break;
    const gate::Cell cell = nl.cells()[c];

    // Timing guard: the new register's D-pin path must beat the path it
    // replaces, or the move cannot improve fmax.
    double d_arrival = 0.0;
    for (const NetId fi : cell.ins) {
      if (nl.cells()[fi].kind != CellKind::kDff) continue;
      d_arrival = std::max(d_arrival, report.arrival[nl.cells()[fi].ins[0]]);
    }
    const double new_cost = d_arrival + lib.spec(cell.kind).delay_ps +
                            lib.dff_setup_ps;
    if (new_cost >= report.critical_path_ps) break;

    // Area guard: the move adds one register, so at least one fanin
    // register must die with it (its Q feeding only this cell).
    if (!opt_.allow_area_increase) {
      const std::vector<std::uint32_t> fanout = fanout_counts(nl);
      std::size_t dying = 0;
      std::vector<NetId> counted;
      for (const NetId fi : cell.ins) {
        if (nl.cells()[fi].kind != CellKind::kDff) continue;
        if (std::find(counted.begin(), counted.end(), fi) != counted.end())
          continue;
        counted.push_back(fi);
        if (fanout[fi] == 1) ++dying;
      }
      if (dying == 0) break;
    }

    // Forward move: recompute the cell on the registers' D nets, capture in
    // one new register whose init is the cell evaluated on the old inits.
    std::vector<NetId> d_ins;
    std::vector<bool> init_ins;
    for (const NetId fi : cell.ins) {
      const gate::Cell& f = nl.cells()[fi];
      if (f.kind == CellKind::kDff) {
        d_ins.push_back(f.ins.at(0));
        init_ins.push_back(f.init);
      } else {
        d_ins.push_back(fi);
        init_ins.push_back(f.kind == CellKind::kConst1);
      }
    }
    const NetId moved = nl.raw_gate(cell.kind, std::move(d_ins));
    const NetId q = nl.dff("rt" + std::to_string(nl.cells().size()),
                           eval_bit(cell.kind, init_ins));
    nl.connect_dff(q, moved);
    nl.replace_net(c, q);
    nl.sweep();  // drop dead registers before the next timing run
    ++stats.changes;
  }
  nl.sweep();
  return nl;
}

}  // namespace osss::opt
