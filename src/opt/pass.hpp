// pass.hpp — the gate-level optimization pass pipeline.
//
// Runs between gate::lower_to_gates and simulation / timing / emission.
// A Pass is a pure netlist-to-netlist function with statistics; a Pipeline
// chains passes and — this is the pass *contract*, not an afterthought —
// differentially verifies every pass invocation: with self-checking enabled
// (the default outside NDEBUG builds, overridable via OSSS_OPT_CHECK=0/1 or
// PipelineOptions::self_check) each pass output is co-simulated against its
// input with gate::check_equivalence, and any divergence throws with the
// pass name, the derived seed and the counterexample.  Optimization strength
// can grow pass by pass; a wrong rewrite can never silently ship.
//
// Standard pipeline (opt::Pipeline::standard, opt::optimize):
//   1. rewrite  — AIG-style local rewriting: two-level cut matching against
//                 a small rule set (De Morgan, absorption, XOR recognition,
//                 MUX push-through), iterated to a fixpoint;
//   2. satsweep — merge functionally-equivalent nets proven equal by 64-lane
//                 bit-parallel simulation plus a bounded exhaustive /
//                 random-resolution check (registers dedup too);
//   3. retime   — forward retiming: move DFFs across combinational cells to
//                 cut the critical path reported by gate::timing;
//   4. techmap  — cut-based technology mapping back onto gate::Library
//                 cells (NAND/NOR/XNOR forms) minimizing area under the
//                 input netlist's depth bound.

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "gate/library.hpp"
#include "gate/netlist.hpp"
#include "gate/sim.hpp"

namespace osss::opt {

/// Per-invocation pass statistics.  "cells" counts every live cell of the
/// netlist (constants, inputs, gates, DFFs, memory read bits) — by the pass
/// contract the output netlist is swept, so cells_after always equals the
/// output's cell count and sweep()'s mark set keeps every one of them.
struct PassStats {
  std::string pass;
  std::size_t cells_before = 0, cells_after = 0;
  std::size_t gates_before = 0, gates_after = 0;   ///< combinational gates
  std::size_t dffs_before = 0, dffs_after = 0;
  std::size_t depth_before = 0, depth_after = 0;   ///< logic levels
  double area_before = 0.0, area_after = 0.0;      ///< gate equivalents
  std::size_t changes = 0;  ///< pass-specific: rewrites / merges / moves
  /// satsweep only: merges seeded by externally proven register-bit facts
  /// (lint::FactDB::const_reg_bits via SatSweepOptions::facts).
  std::size_t fact_merges = 0;
  /// satsweep only: observability-don't-care merges (sequential-trajectory
  /// sampled, verified in-pass).
  std::size_t odc_merges = 0;
  double wall_ms = 0.0;
  bool verified = false;  ///< differential self-check ran and passed

  /// One-line table row used by osss-opt and the lint diagnostics.
  std::string format() const;
};

class Pass {
 public:
  virtual ~Pass() = default;
  virtual const char* name() const = 0;
  /// Transform `in`; the result must be functionally equivalent (sequential
  /// equivalence from reset), swept and validated.
  virtual gate::Netlist run(const gate::Netlist& in, PassStats& stats) const = 0;
};

struct PipelineOptions {
  /// Library used for area/depth statistics and by the retiming/techmap
  /// passes (nullptr = gate::Library::generic()).
  const gate::Library* lib = nullptr;
  /// Differential self-check per pass: -1 = automatic (OSSS_OPT_CHECK env
  /// override, else on outside NDEBUG builds), 0 = off, 1 = on.
  int self_check = -1;
  unsigned check_sequences = 2;  ///< equivalence sequences per self-check
  unsigned check_cycles = 64;    ///< cycles per sequence (64-lane each)
  /// Engine running both sides of the self-check.  kBitParallel (the
  /// default) keeps debug builds compiler-free; kNative runs the checks
  /// through the generated-code backend (with its interpreted fallback).
  gate::SimMode check_mode = gate::SimMode::kBitParallel;
  /// Backend knobs for kNative self-checks (e.g. force_fallback avoids one
  /// compile per pass per round when only the wiring is under test).
  gate::CodegenOptions check_codegen = {};
  /// Base seed of the self-checks; 0 derives from the netlist name.
  std::uint64_t seed = 0;
  /// Pipeline::run repeats its pass list until a full round reports zero
  /// changes (a fixpoint — mapping exposes merges the first sweep round
  /// could not see) or this many rounds have run.  The ExpoCU corpus
  /// reaches the fixpoint in at most three rounds.
  unsigned max_rounds = 4;
  /// Register-bit constants proven by the RTL-level abstract interpreter
  /// (lint::analyze_dataflow(...).const_reg_bits()), keyed by the gate
  /// lowering's DFF names ("reg[bit]").  Handed to the satsweep pass,
  /// which re-verifies every claim before using it.  nullptr = none.
  std::shared_ptr<const std::unordered_map<std::string, bool>> facts;
};

class Pipeline {
 public:
  explicit Pipeline(PipelineOptions opt = {});

  Pipeline(Pipeline&&) = default;
  Pipeline& operator=(Pipeline&&) = default;

  Pipeline& add(std::unique_ptr<Pass> pass);
  std::size_t pass_count() const noexcept { return passes_.size(); }

  /// The rewrite -> satsweep -> retime -> techmap default.
  static Pipeline standard(PipelineOptions opt = {});

  /// Run every pass in order; appends one PassStats per invocation.
  /// Throws std::logic_error if a self-check finds a divergence.
  gate::Netlist run(const gate::Netlist& in);

  const std::vector<PassStats>& stats() const noexcept { return stats_; }
  void clear_stats() { stats_.clear(); }

  const PipelineOptions& options() const noexcept { return opt_; }
  /// Whether self-checking is in effect after resolving -1 (env / NDEBUG).
  bool self_check_enabled() const;

 private:
  PipelineOptions opt_;
  std::vector<std::unique_ptr<Pass>> passes_;
  std::vector<PassStats> stats_;
};

/// One-call form of the standard pipeline; per-pass stats appended to
/// `stats` when non-null.
gate::Netlist optimize(const gate::Netlist& in, PipelineOptions opt = {},
                       std::vector<PassStats>* stats = nullptr);

/// Registry of every optimization pass, in standard pipeline order — the
/// pass-level fuzz harness and the CLI tools instantiate passes from here.
struct PassInfo {
  const char* name;
  const char* title;
  std::unique_ptr<Pass> (*make)();
};
const std::vector<PassInfo>& pass_registry();

/// Instantiate a registered pass by name; nullptr for unknown names.
std::unique_ptr<Pass> make_pass(const std::string& name);

}  // namespace osss::opt
