// rewrite.hpp — AIG-style local rewriting over the gate netlist.
//
// Two-level cut matching against a small rule set, applied while the
// netlist is rebuilt through the optimizing factories and iterated to a
// fixpoint (every applied rule strictly removes cells, so the fixpoint
// exists).  Rules, with f standing for a shared operand:
//
//   De Morgan     inv(and(inv a, inv b)) -> or(a, b)        (and dual)
//                 and(inv a, inv b)      -> inv(or(a, b))   when both
//                 inverters are single-fanout (and dual);
//   absorption    and(a, or(a, b))  -> a,   or(a, and(a, b)) -> a,
//                 and(a, or(inv a, b)) -> and(a, b)          (and duals),
//                 and(a, and(a, b)) -> and(a, b)             (and dual);
//   XOR           or(and(a, inv b), and(inv a, b)) -> xor(a, b),
//   recognition   or(and(a, b), and(inv a, inv b)) -> inv(xor(a, b)),
//                 mux(s, inv x, x) -> xor(s, x),
//                 mux(s, x, inv x) -> inv(xor(s, x));
//   MUX           mux(s, f(a, c), f(b, c)) -> f(mux(s, a, b), c) for
//   push-through  f in {and, or, xor} with both f-cells single-fanout,
//                 mux(s, inv a, inv b) -> inv(mux(s, a, b)) likewise,
//                 mux(s1, mux(s2, t, e), e) -> mux(and(s1, s2), t, e).
//
// Fanout conditions are evaluated on the source netlist, so a rule only
// fires where the matched interior gates really die with the rewrite.

#pragma once

#include "opt/pass.hpp"

namespace osss::opt {

class RewritePass final : public Pass {
 public:
  /// Fixpoint guard: maximum rebuild iterations.
  explicit RewritePass(unsigned max_iterations = 8)
      : max_iterations_(max_iterations) {}

  const char* name() const override { return "rewrite"; }
  gate::Netlist run(const gate::Netlist& in, PassStats& stats) const override;

 private:
  unsigned max_iterations_;
};

}  // namespace osss::opt
