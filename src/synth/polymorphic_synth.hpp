// polymorphic_synth.hpp — polymorphic objects in hardware.
//
// §8: "In case of polymorphism, multiplexers are being inserted to select
// the function and object."  A synthesizable polymorphic object is laid out
// as [tag | payload]: the tag selects the live class, the payload holds its
// members (padded to the widest variant).  A virtual call synthesizes every
// variant's resolved method and muxes the results by tag — which is exactly
// what a hand-written "manual dispatch" design would instantiate, so the
// overhead is the muxes and nothing else (experiment R5).

#pragma once

#include <vector>

#include "synth/method_synth.hpp"

namespace osss::synth {

/// A closed class hierarchy for dispatch: tag value k selects variants[k].
struct Hierarchy {
  meta::ClassPtr base;                    ///< interface declaring the methods
  std::vector<meta::ClassPtr> variants;   ///< concrete classes, tag order

  unsigned tag_width() const;
  unsigned payload_width() const;  ///< widest variant's data width
  unsigned total_width() const { return tag_width() + payload_width(); }

  /// Pack a concrete variant's state into the polymorphic layout.
  meta::Bits encode(unsigned tag, const meta::Bits& state) const;
  /// Extract (tag, variant state) back out.
  unsigned tag_of(const meta::Bits& obj) const;
  meta::Bits state_of(const meta::Bits& obj) const;

  /// Structural checks: every variant derives from base and implements the
  /// virtual methods with identical signatures.  Throws on violation.
  void validate() const;
};

struct VirtualCallLogic {
  rtl::Wire obj_out;  ///< updated polymorphic object (tag unchanged)
  rtl::Wire ret;      ///< muxed return value; invalid for void methods
};

/// Synthesize a virtual method call on a polymorphic object wire: every
/// variant's resolved method plus the §8 dispatch muxes.
VirtualCallLogic synthesize_virtual_call(meta::RtlEmitter& em,
                                         const Hierarchy& hierarchy,
                                         const std::string& method,
                                         rtl::Wire obj_in,
                                         const std::vector<rtl::Wire>& args);

}  // namespace osss::synth
