#include "synth/shared_synth.hpp"

#include <stdexcept>

#include "meta/emit.hpp"
#include "synth/method_synth.hpp"

namespace osss::synth {

namespace {

using rtl::Builder;
using rtl::Wire;

[[noreturn]] void bad(const std::string& msg) {
  throw std::logic_error("synth::synthesize_shared: " + msg);
}

unsigned bits_for(unsigned count) {
  unsigned w = 1;
  while ((1u << w) < count) ++w;
  return w;
}

}  // namespace

SharedLayout shared_layout(const SharedSpec& spec) {
  if (!spec.cls) bad("null class");
  if (spec.methods.empty()) bad("no methods");
  if (spec.clients == 0) bad("zero clients");
  SharedLayout lay;
  lay.sel_width = bits_for(static_cast<unsigned>(spec.methods.size()));
  lay.index_width = bits_for(spec.clients);
  for (const std::string& name : spec.methods) {
    const meta::MethodDesc* m = spec.cls->find_method(name);
    if (m == nullptr) bad("no method " + name + " on " + spec.cls->name());
    unsigned packed = 0;
    for (const auto& p : m->params) packed += p.width;
    lay.arg_width = std::max(lay.arg_width, packed);
    lay.ret_width = std::max(lay.ret_width, m->return_width);
  }
  return lay;
}

rtl::Module synthesize_shared(const SharedSpec& spec) {
  const SharedLayout lay = shared_layout(spec);
  Builder b(spec.name);
  meta::RtlEmitter em(b);
  const unsigned n = spec.clients;
  const unsigned iw = lay.index_width;

  std::vector<Wire> req(n);
  std::vector<Wire> sel(n);
  std::vector<Wire> args(n);
  for (unsigned i = 0; i < n; ++i) {
    const std::string suffix = std::to_string(i);
    req[i] = b.input("req" + suffix, 1);
    sel[i] = b.input("sel" + suffix, lay.sel_width);
    if (lay.arg_width > 0)
      args[i] = b.input("args" + suffix, lay.arg_width);
  }

  const Wire obj =
      b.reg("object", spec.cls->data_width(), spec.cls->initial_value());

  // --- arbitration -----------------------------------------------------
  Wire any = req[0];
  for (unsigned i = 1; i < n; ++i) any = b.or_(any, req[i]);

  const Wire last = b.reg("last_grant", iw, rtl::Bits(iw, n - 1));
  Wire winner;
  switch (spec.policy) {
    case SharedSpec::Policy::kStaticPriority: {
      // Lowest index wins: priority chain.
      winner = b.constant(iw, 0);
      for (unsigned i = n; i-- > 0;)
        winner = b.mux(req[i], b.constant(iw, i), winner);
      break;
    }
    case SharedSpec::Policy::kRoundRobin: {
      // For each possible last value, a rotated priority chain; mux by the
      // rotation register — the generated "standard scheduler".
      winner = b.constant(iw, 0);
      for (unsigned l = 0; l < n; ++l) {
        Wire w_l = b.constant(iw, 0);
        for (unsigned d = n; d >= 1; --d) {
          const unsigned c = (l + d) % n;
          w_l = b.mux(req[c], b.constant(iw, c), w_l);
        }
        winner = b.mux(b.eq(last, b.constant(iw, l)), w_l, winner);
      }
      break;
    }
    case SharedSpec::Policy::kCustom: {
      if (!spec.custom_picker) bad("kCustom policy without custom_picker");
      winner = spec.custom_picker(b, req, last, iw);
      if (winner.width != iw) bad("custom_picker returned wrong width");
      break;
    }
  }
  b.connect(last, b.mux(any, winner, last));

  // --- winner's request muxed onto the object --------------------------
  std::vector<Wire> is_winner(n);
  for (unsigned i = 0; i < n; ++i)
    is_winner[i] = b.and_(any, b.eq(winner, b.constant(iw, i)));

  Wire win_sel = sel[0];
  Wire win_args = lay.arg_width > 0 ? args[0] : Wire{};
  for (unsigned i = 1; i < n; ++i) {
    const Wire pick = b.eq(winner, b.constant(iw, i));
    win_sel = b.mux(pick, sel[i], win_sel);
    if (lay.arg_width > 0) win_args = b.mux(pick, args[i], win_args);
  }

  // --- method dispatch ---------------------------------------------------
  Wire new_obj = obj;
  Wire ret = lay.ret_width > 0 ? b.constant(lay.ret_width, 0) : Wire{};
  for (unsigned mi = 0; mi < spec.methods.size(); ++mi) {
    const meta::MethodDesc* m = spec.cls->find_method(spec.methods[mi]);
    std::vector<Wire> params;
    unsigned offset = 0;
    for (const auto& p : m->params) {
      params.push_back(b.slice(win_args, offset + p.width - 1, offset));
      offset += p.width;
    }
    const MethodLogic logic =
        synthesize_method(em, *spec.cls, spec.methods[mi], obj, params);
    const Wire m_sel = b.eq(win_sel, b.constant(lay.sel_width, mi));
    new_obj = b.mux(m_sel, logic.this_out, new_obj);
    if (lay.ret_width > 0 && m->return_width > 0) {
      ret = b.mux(m_sel, b.zext(logic.ret, lay.ret_width), ret);
    }
  }
  b.connect(obj, b.mux(any, new_obj, obj));

  // --- registered grant/return ports -----------------------------------
  for (unsigned i = 0; i < n; ++i) {
    const std::string suffix = std::to_string(i);
    const Wire g = b.reg("grant_r" + suffix, 1);
    b.connect(g, is_winner[i]);
    b.output("grant" + suffix, g);
    if (lay.ret_width > 0) {
      const Wire r = b.reg("ret_r" + suffix, lay.ret_width);
      b.connect(r, b.mux(is_winner[i], ret, r));
      b.output("ret" + suffix, r);
    }
  }
  b.output("state", obj);
  return b.take();
}

}  // namespace osss::synth
