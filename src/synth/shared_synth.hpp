// shared_synth.hpp — synthesis of global (shared) objects.
//
// §8: "When global objects are being instantiated and accessed, some
// scheduling logic of course has to be added.  But in any case: if
// described in conventional approach, logic would have to be added anyway."
//
// synthesize_shared() generates the complete shared-object module: the
// object state register, per-client request/method-select/argument ports,
// the arbiter implementing the chosen scheduler (round-robin rotation
// register, static priority chain, or a user-supplied generator — "a
// designer can use a standard scheduler or implement an own"), the method
// dispatch muxes and the registered grant/return ports.
//
// Port map (client i, method selector m):
//   in  req<i>   : 1                out out grant<i> : 1 (registered)
//   in  sel<i>   : sel_width        out ret<i>   : ret_width (registered)
//   in  args<i>  : arg_width
//   out state    : object bits (observability)
//
// Protocol: a client holds req high with sel/args stable; the cycle after
// the arbiter grants, grant<i> pulses for one cycle with ret<i> valid.

#pragma once

#include <functional>
#include <string>
#include <vector>

#include "meta/class_desc.hpp"
#include "rtl/builder.hpp"

namespace osss::synth {

struct SharedSpec {
  std::string name = "shared";
  meta::ClassPtr cls;
  /// Methods callable through the shared interface; the per-client `sel`
  /// port selects by index into this list.
  std::vector<std::string> methods;
  unsigned clients = 2;

  enum class Policy { kRoundRobin, kStaticPriority, kCustom };
  Policy policy = Policy::kRoundRobin;

  /// kCustom: generate the winner-index logic from the request wires and
  /// the last-grant register; must return a wire of width index_width.
  std::function<rtl::Wire(rtl::Builder&, const std::vector<rtl::Wire>& reqs,
                          rtl::Wire last, unsigned index_width)>
      custom_picker;
};

struct SharedLayout {
  unsigned sel_width = 0;
  unsigned arg_width = 0;  ///< widest packed parameter list (LSB-first)
  unsigned ret_width = 0;  ///< widest return value
  unsigned index_width = 0;
};

/// Compute the port layout for a spec (useful for driving the module).
SharedLayout shared_layout(const SharedSpec& spec);

/// Generate the shared-object module.
rtl::Module synthesize_shared(const SharedSpec& spec);

}  // namespace osss::synth
