// method_synth.hpp — resolution of class member functions into hardware.
//
// The core §8 transformation of the paper: "Resolution of class member
// functions is done by the generation of non-member functions ... the data
// members of a class instance are mapped to a single bit vector ... the
// access to object data is therefore being translated to a read/write to
// parts (slices) of the generated vector."
//
// synthesize_method() is exactly that non-member function, generated as
// combinational RTL: it takes the `_this_` vector (and the arguments) as
// wires and produces the updated `_this_` vector plus the return value.
// Because the optimizing gate backend structurally hashes, a design written
// with classes and one hand-written with explicit slices map to the same
// gates — the paper's "no additional overhead" claim, tested by R4.

#pragma once

#include <string>
#include <vector>

#include "meta/class_desc.hpp"
#include "meta/emit.hpp"

namespace osss::synth {

struct MethodLogic {
  rtl::Wire this_out;  ///< updated object vector (== input for const methods)
  rtl::Wire ret;       ///< return value; invalid for void methods
};

/// Generate the resolved non-member function for `cls::method` as
/// combinational logic.  `this_in` must be cls->data_width() wide and the
/// argument wires must match the method's parameter list.
MethodLogic synthesize_method(meta::RtlEmitter& em,
                              const meta::ClassDesc& cls,
                              const std::string& method, rtl::Wire this_in,
                              const std::vector<rtl::Wire>& args);

}  // namespace osss::synth
