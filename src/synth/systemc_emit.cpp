#include "synth/systemc_emit.hpp"

#include <cctype>
#include <set>
#include <sstream>
#include <stdexcept>

namespace osss::synth {

namespace {

using meta::ClassDesc;
using meta::Expr;
using meta::ExprKind;
using meta::ExprPtr;
using meta::MethodDesc;
using meta::Stmt;
using meta::StmtKind;
using meta::StmtPtr;

std::string sanitize(const std::string& name) {
  std::string out;
  for (const char c : name) {
    out += (std::isalnum(static_cast<unsigned char>(c)) != 0) ? c : '_';
  }
  return out;
}

std::string type_of(unsigned width, bool is_const) {
  std::string t = width == 1 ? std::string("sc_bit")
                             : "sc_biguint< " + std::to_string(width) + " >";
  return is_const ? "const " + t : t;
}

/// Expression printer: member references become `_this_.range(hi, lo)`
/// slices — the §8 resolution made visible.
std::string print_expr(const ClassDesc& cls, const ExprPtr& e) {
  std::ostringstream os;
  switch (e->kind) {
    case ExprKind::kConst:
      os << e->value.to_hex_string();
      break;
    case ExprKind::kMemberRef: {
      const unsigned lo = cls.member_offset(e->name);
      os << "_this_.range(" << (lo + e->width - 1) << ", " << lo << ")";
      break;
    }
    case ExprKind::kParamRef:
    case ExprKind::kLocalRef:
      os << e->name;
      break;
    case ExprKind::kBinary:
      os << "(" << print_expr(cls, e->args[0]) << " "
         << meta::bin_op_name(e->bop) << " " << print_expr(cls, e->args[1])
         << ")";
      break;
    case ExprKind::kUnary:
      os << meta::un_op_name(e->uop) << "(" << print_expr(cls, e->args[0])
         << ")";
      break;
    case ExprKind::kSlice:
      // Slices of members collapse into a single `_this_` range — the form
      // the paper's Figure 7 shows.
      if (e->args[0]->kind == ExprKind::kMemberRef) {
        const unsigned base = cls.member_offset(e->args[0]->name);
        os << "_this_.range(" << (base + e->lo + e->width - 1) << ", "
           << (base + e->lo) << ")";
      } else {
        os << print_expr(cls, e->args[0]) << ".range("
           << (e->lo + e->width - 1) << ", " << e->lo << ")";
      }
      break;
    case ExprKind::kConcat: {
      os << "(";
      for (std::size_t i = 0; i < e->args.size(); ++i) {
        if (i != 0) os << ", ";
        os << print_expr(cls, e->args[i]);
      }
      os << ")";
      break;
    }
    case ExprKind::kCond:
      os << "(" << print_expr(cls, e->args[0]) << " ? "
         << print_expr(cls, e->args[1]) << " : "
         << print_expr(cls, e->args[2]) << ")";
      break;
    case ExprKind::kZExt:
      os << "(sc_biguint<" << e->width << ">)(" << print_expr(cls, e->args[0])
         << ")";
      break;
    case ExprKind::kSExt:
      os << "(sc_bigint<" << e->width << ">)(" << print_expr(cls, e->args[0])
         << ")";
      break;
  }
  return os.str();
}

void print_stmts(const ClassDesc& cls, const std::vector<StmtPtr>& body,
                 std::set<std::string>& declared, unsigned indent,
                 std::ostringstream& os) {
  const std::string pad(indent, ' ');
  for (const StmtPtr& s : body) {
    switch (s->kind) {
      case StmtKind::kAssign:
        if (s->target_is_member) {
          const unsigned lo = cls.member_offset(s->target);
          os << pad << "_this_.range(" << (lo + s->expr->width - 1) << ", "
             << lo << ") = " << print_expr(cls, s->expr) << ";\n";
        } else {
          if (declared.insert(s->target).second) {
            os << pad << type_of(s->expr->width, false) << " " << s->target
               << " = " << print_expr(cls, s->expr) << ";\n";
          } else {
            os << pad << s->target << " = " << print_expr(cls, s->expr)
               << ";\n";
          }
        }
        break;
      case StmtKind::kIf:
        os << pad << "if ( " << print_expr(cls, s->if_cond) << " ) {\n";
        print_stmts(cls, s->then_body, declared, indent + 2, os);
        if (!s->else_body.empty()) {
          os << pad << "} else {\n";
          print_stmts(cls, s->else_body, declared, indent + 2, os);
        }
        os << pad << "}\n";
        break;
      case StmtKind::kReturn:
        os << pad << "return " << print_expr(cls, s->ret) << ";\n";
        break;
    }
  }
}

}  // namespace

std::string emit_resolved_method(const ClassDesc& cls,
                                 const std::string& method) {
  const MethodDesc* m = cls.find_method(method);
  if (m == nullptr)
    throw std::logic_error("emit_resolved_method: no method " + method);
  std::ostringstream os;
  const std::string fn =
      "_" + sanitize(cls.name()) + "_" + sanitize(method) + "_1_";
  os << (m->return_width == 0
             ? "void"
             : (m->return_width == 1
                    ? "bool"
                    : "sc_biguint< " + std::to_string(m->return_width) + " >"))
     << " " << fn << "( "
     << (m->is_const ? "const sc_biguint< " : "sc_biguint< ")
     << cls.data_width() << " > & _this_";
  for (const auto& p : m->params)
    os << ", " << type_of(p.width, true) << " & " << p.name;
  os << " )\n{\n";
  std::set<std::string> declared;
  for (const auto& p : m->params) declared.insert(p.name);
  print_stmts(cls, m->body, declared, 2, os);
  os << "}\n";
  return os.str();
}

std::string emit_resolved_module(const hls::Behavior& beh) {
  std::ostringstream os;
  os << "// Resolved by the OSSS synthesizer (cf. paper Fig. 8).\n";
  os << "SC_MODULE( " << sanitize(beh.name) << " )\n{\n";
  os << "  sc_in_clk clk;\n  sc_in<bool> reset;\n";
  for (const hls::InputDecl& in : beh.inputs)
    os << "  sc_in< " << (in.width == 1 ? std::string("bool")
                                        : "sc_biguint<" +
                                              std::to_string(in.width) + ">")
       << " > " << in.name << ";\n";
  for (const hls::VarDecl& v : beh.vars) {
    if (v.is_temp) continue;
    if (v.is_output)
      os << "  sc_out< "
         << (v.width == 1 ? std::string("bool")
                          : "sc_biguint<" + std::to_string(v.width) + ">")
         << " > " << v.name << ";\n";
  }
  os << "\n";
  for (const hls::VarDecl& v : beh.vars) {
    if (v.is_temp || v.is_output) continue;
    // Objects are already resolved to their single bit vector (§8).
    os << "  sc_biguint< " << v.width << " > " << v.name;
    if (v.cls) os << ";  // was: " << v.cls->name() << " object";
    os << (v.cls ? "\n" : ";\n");
  }
  os << "\n  void behaviour()\n  {\n";
  // Walk the linear code; labels for branch/jump targets.
  std::set<std::size_t> labels;
  for (const hls::Instr& i : beh.code) {
    if (i.kind == hls::Instr::Kind::kBranch ||
        i.kind == hls::Instr::Kind::kJump)
      labels.insert(i.target_pc);
  }
  // A dummy class for printing free expressions (no members involved at
  // module level — member slices were resolved during method generation).
  const ClassDesc no_members("__module__");
  for (std::size_t pc = 0; pc < beh.code.size(); ++pc) {
    if (labels.count(pc)) os << "  L" << pc << ":\n";
    const hls::Instr& i = beh.code[pc];
    switch (i.kind) {
      case hls::Instr::Kind::kAssign:
        os << "    " << i.target << " = " << print_expr(no_members, i.expr)
           << ";\n";
        break;
      case hls::Instr::Kind::kCall: {
        const hls::VarDecl* obj = beh.find_var(i.object);
        const std::string fn =
            "_" + sanitize(obj && obj->cls ? obj->cls->name() : "obj") + "_" +
            sanitize(i.method) + "_1_";
        os << "    ";
        if (!i.result.empty()) os << i.result << " = ";
        os << fn << "( " << i.object;
        for (const auto& a : i.args)
          os << ", " << print_expr(no_members, a);
        os << " );\n";
        break;
      }
      case hls::Instr::Kind::kBranch:
        os << "    if ( !(" << print_expr(no_members, i.cond)
           << ") ) goto L" << i.target_pc << ";\n";
        break;
      case hls::Instr::Kind::kJump:
        os << "    goto L" << i.target_pc << ";\n";
        break;
      case hls::Instr::Kind::kWait:
        os << "    wait();\n";
        break;
    }
  }
  if (labels.count(beh.code.size())) os << "  L" << beh.code.size() << ":\n";
  os << "  }\n\n  SC_CTOR( " << sanitize(beh.name) << " )\n  {\n"
     << "    SC_CTHREAD( behaviour, clk.pos() );\n"
     << "    watching( reset.delayed() == true );\n  }\n};\n";
  return os.str();
}

std::string emit_resolved_class(const ClassDesc& cls) {
  std::ostringstream os;
  os << "// Resolved by the OSSS synthesizer: class " << cls.name()
     << " mapped to sc_biguint< " << cls.data_width() << " >.\n"
     << "// Member functions are generated as non-member functions over\n"
     << "// the `_this_` vector; member access is slice access.\n\n";
  // Inherited methods first (base-first, like the layout).
  std::vector<const ClassDesc*> chain;
  for (const ClassDesc* c = &cls; c != nullptr; c = c->base())
    chain.insert(chain.begin(), c);
  std::set<std::string> seen;
  for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
    for (const MethodDesc& m : (*it)->own_methods()) {
      if (!seen.insert(m.name).second) continue;  // overridden
      os << emit_resolved_method(cls, m.name) << "\n";
    }
  }
  return os.str();
}

}  // namespace osss::synth
