#include "synth/polymorphic_synth.hpp"

#include <stdexcept>

namespace osss::synth {

namespace {
[[noreturn]] void bad(const std::string& msg) {
  throw std::logic_error("synth::polymorphic: " + msg);
}
}  // namespace

unsigned Hierarchy::tag_width() const {
  if (variants.empty()) bad("empty hierarchy");
  unsigned w = 1;
  while ((1u << w) < variants.size()) ++w;
  return w;
}

unsigned Hierarchy::payload_width() const {
  unsigned w = 0;
  for (const auto& v : variants) w = std::max(w, v->data_width());
  if (w == 0) bad("hierarchy has zero-width variants");
  return w;
}

meta::Bits Hierarchy::encode(unsigned tag, const meta::Bits& state) const {
  if (tag >= variants.size()) bad("tag out of range");
  if (state.width() != variants[tag]->data_width())
    bad("state width mismatch for variant " + variants[tag]->name());
  return meta::Bits::concat(meta::Bits(tag_width(), tag),
                            state.zext(payload_width()));
}

unsigned Hierarchy::tag_of(const meta::Bits& obj) const {
  if (obj.width() != total_width()) bad("object width mismatch");
  return static_cast<unsigned>(
      obj.slice(total_width() - 1, payload_width()).to_u64());
}

meta::Bits Hierarchy::state_of(const meta::Bits& obj) const {
  const unsigned tag = tag_of(obj);
  return obj.slice(variants[tag]->data_width() - 1, 0);
}

void Hierarchy::validate() const {
  if (!base) bad("null base class");
  if (variants.empty()) bad("no variants");
  for (const auto& v : variants) {
    if (!v) bad("null variant");
    if (!v->derives_from(*base))
      bad("variant " + v->name() + " does not derive from " + base->name());
  }
  for (const meta::MethodDesc& m : base->own_methods()) {
    if (!m.is_virtual) continue;
    for (const auto& v : variants) {
      const meta::MethodDesc* impl = v->find_method(m.name);
      if (impl == nullptr)
        bad("variant " + v->name() + " missing virtual " + m.name);
      if (impl->return_width != m.return_width ||
          impl->params.size() != m.params.size())
        bad("variant " + v->name() + " signature mismatch on " + m.name);
      for (std::size_t i = 0; i < m.params.size(); ++i) {
        if (impl->params[i].width != m.params[i].width)
          bad("variant " + v->name() + " parameter width mismatch on " +
              m.name);
      }
    }
  }
}

VirtualCallLogic synthesize_virtual_call(meta::RtlEmitter& em,
                                         const Hierarchy& hierarchy,
                                         const std::string& method,
                                         rtl::Wire obj_in,
                                         const std::vector<rtl::Wire>& args) {
  hierarchy.validate();
  rtl::Builder& b = em.builder();
  const unsigned pw = hierarchy.payload_width();
  const unsigned tw = hierarchy.tag_width();
  if (obj_in.width != pw + tw) bad("object wire width mismatch");

  const meta::MethodDesc* base_m = hierarchy.base->find_method(method);
  if (base_m == nullptr)
    bad("no method " + method + " on base " + hierarchy.base->name());
  const rtl::Wire tag = b.slice(obj_in, pw + tw - 1, pw);
  const rtl::Wire payload = b.slice(obj_in, pw - 1, 0);

  // Default: object unchanged, return zero (tag values beyond the variant
  // list are unreachable by construction).
  rtl::Wire new_payload = payload;
  rtl::Wire ret;
  if (base_m->return_width != 0)
    ret = b.constant(base_m->return_width, 0);

  for (unsigned k = 0; k < hierarchy.variants.size(); ++k) {
    const meta::ClassDesc& cls = *hierarchy.variants[k];
    const unsigned dw = cls.data_width();
    const rtl::Wire this_in = b.slice(payload, dw - 1, 0);
    const MethodLogic logic =
        synthesize_method(em, cls, method, this_in, args);
    // Updated payload: variant's new state in the low bits, padding kept.
    rtl::Wire updated = logic.this_out;
    if (dw < pw)
      updated = b.concat({b.slice(payload, pw - 1, dw), updated});
    const rtl::Wire sel = b.eq(tag, b.constant(tw, k));
    new_payload = b.mux(sel, updated, new_payload);  // the §8 object mux
    if (base_m->return_width != 0)
      ret = b.mux(sel, logic.ret, ret);  // the §8 function-result mux
  }

  VirtualCallLogic out;
  out.obj_out = b.concat({tag, new_payload});
  out.ret = ret;
  return out;
}

}  // namespace osss::synth
