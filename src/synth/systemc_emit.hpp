// systemc_emit.hpp — the synthesizer's readable intermediate output.
//
// The OSSS synthesizer's intermediate format is "(readable and simulatable)
// standard SystemC" (paper §10, Figs. 7/8): every class method becomes a
// non-member function over the object's `_this_` bit vector.  This emitter
// produces that text from the resolved model — useful for inspection,
// documentation and the snapshot tests that pin the §8 resolution rules.

#pragma once

#include <string>

#include "hls/behavior.hpp"
#include "meta/class_desc.hpp"

namespace osss::synth {

/// Emit the resolved non-member functions for every method of `cls`
/// (including inherited ones), in the style of the paper's Figure 7.
std::string emit_resolved_class(const meta::ClassDesc& cls);

/// Emit a single method's resolved function.
std::string emit_resolved_method(const meta::ClassDesc& cls,
                                 const std::string& method);

/// Emit a behaviour as a resolved SC_MODULE in the style of the paper's
/// Figure 8: object variables become `sc_biguint<W>` members, method
/// calls become invocations of the generated non-member functions, and
/// control flow keeps the wait() structure.
std::string emit_resolved_module(const hls::Behavior& beh);

}  // namespace osss::synth
