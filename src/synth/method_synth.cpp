#include "synth/method_synth.hpp"

#include <atomic>
#include <stdexcept>

namespace osss::synth {

namespace {
[[noreturn]] void bad(const std::string& msg) {
  throw std::logic_error("synth::synthesize_method: " + msg);
}
}  // namespace

MethodLogic synthesize_method(meta::RtlEmitter& em,
                              const meta::ClassDesc& cls,
                              const std::string& method, rtl::Wire this_in,
                              const std::vector<rtl::Wire>& args) {
  const meta::MethodDesc* m = cls.find_method(method);
  if (m == nullptr) bad("no method " + method + " on " + cls.name());
  if (this_in.width != cls.data_width())
    bad("`_this_` width mismatch for " + cls.name());
  if (args.size() != m->params.size())
    bad("argument count mismatch on " + method);

  // Unique anchor names so several resolutions can share one emitter.
  static std::atomic<unsigned> counter{0};
  const unsigned n = counter++;
  const std::string this_name = "__this_" + std::to_string(n) + "_";

  const meta::ExprPtr this_ref = meta::local(this_name, this_in.width);
  em.bind_local(this_name, this_in);

  meta::Env env = cls.member_env(this_ref);
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i].width != m->params[i].width)
      bad("argument width mismatch on " + method + "/" + m->params[i].name);
    const std::string arg_name =
        "__arg_" + std::to_string(n) + "_" + std::to_string(i) + "_";
    env.params[m->params[i].name] = meta::local(arg_name, args[i].width);
    em.bind_local(arg_name, args[i]);
  }

  const meta::ExprPtr ret_tree = meta::exec_stmts(m->body, env);

  MethodLogic out;
  out.this_out = em.emit(cls.pack_members(env));
  if (m->return_width != 0) {
    if (!ret_tree) bad("method " + method + " has no return on some path");
    if (ret_tree->width != m->return_width)
      bad("return width mismatch on " + method);
    out.ret = em.emit(ret_tree);
  }
  return out;
}

}  // namespace osss::synth
