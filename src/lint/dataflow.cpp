#include "lint/dataflow.hpp"

#include <algorithm>

namespace osss::lint {

namespace {

using rtl::kInvalidNode;
using rtl::Module;
using rtl::Node;
using rtl::NodeId;
using rtl::Op;

/// Intersection of two facts about the *same* value (used when a branch
/// guard adds knowledge).  Returns nullopt when the constraints contradict
/// — the branch is unreachable under the current facts.
std::optional<Fact> meet(const Fact& a, const Fact& b) {
  const Bits ones = a.kb.ones | b.kb.ones;
  const Bits zeros = a.kb.zeros | b.kb.zeros;
  if (!(ones & zeros).is_zero()) return std::nullopt;
  Fact f;
  f.kb = KnownBits(zeros, ones);
  if (!a.iv.tracked) {
    f.iv = b.iv;
  } else if (!b.iv.tracked) {
    f.iv = a.iv;
  } else {
    f.iv = Interval(std::max(a.iv.lo, b.iv.lo), std::min(a.iv.hi, b.iv.hi));
    if (f.iv.lo > f.iv.hi) return std::nullopt;
  }
  f.normalize();
  return f;
}

/// Three-valued ripple adder over the known-bits masks: computes the known
/// bits of a + b + carry_in.  Works for any width; O(width).
KnownBits known_add(const KnownBits& a, const KnownBits& b, bool carry_in) {
  const unsigned w = a.width();
  Bits zeros(w), ones(w);
  // carry state: 0 known-0, 1 known-1, 2 unknown
  int carry = carry_in ? 1 : 0;
  for (unsigned i = 0; i < w; ++i) {
    const auto ab = a.bit(i);
    const auto bb = b.bit(i);
    if (ab && bb && carry != 2) {
      const unsigned sum = (*ab ? 1u : 0u) + (*bb ? 1u : 0u) +
                           static_cast<unsigned>(carry);
      if ((sum & 1u) != 0) ones.set_bit(i, true);
      else zeros.set_bit(i, true);
      carry = sum >= 2 ? 1 : 0;
      continue;
    }
    // Sum bit unknown unless... it never is with any operand unknown when
    // the other two are unknown too; with exactly one unknown the sum is
    // unknown but the carry may still be determined (majority function).
    int known_zero_cnt = 0, known_one_cnt = 0, unknown_cnt = 0;
    const auto tally = [&](std::optional<bool> v) {
      if (!v) ++unknown_cnt;
      else if (*v) ++known_one_cnt;
      else ++known_zero_cnt;
    };
    tally(ab);
    tally(bb);
    if (carry == 2) ++unknown_cnt;
    else if (carry == 1) ++known_one_cnt;
    else ++known_zero_cnt;
    // Majority of three: known when two agree.
    if (known_one_cnt >= 2) carry = 1;
    else if (known_zero_cnt >= 2) carry = 0;
    else carry = 2;
  }
  return KnownBits(zeros, ones);
}

/// Shared decision helper for the comparison transfers: nullopt = unknown.
std::optional<bool> decide_ult(const Fact& a, const Fact& b) {
  // Interval evidence (widths <= 64).
  if (a.iv.tracked && b.iv.tracked) {
    if (a.iv.hi < b.iv.lo) return true;
    if (a.iv.lo >= b.iv.hi) return false;
  }
  // Known-bits bounds work at any width: min = ones, max = ~zeros.
  const Bits max_a = ~a.kb.zeros;
  const Bits min_b = b.kb.ones;
  if (Bits::ult(max_a, min_b)) return true;
  const Bits min_a = a.kb.ones;
  const Bits max_b = ~b.kb.zeros;
  if (Bits::ule(max_b, min_a)) return false;
  return std::nullopt;
}

std::optional<bool> decide_ule(const Fact& a, const Fact& b) {
  if (a.iv.tracked && b.iv.tracked) {
    if (a.iv.hi <= b.iv.lo) return true;
    if (a.iv.lo > b.iv.hi) return false;
  }
  if (Bits::ule(~a.kb.zeros, b.kb.ones)) return true;
  if (Bits::ult(~b.kb.zeros, a.kb.ones)) return false;
  return std::nullopt;
}

std::optional<bool> decide_eq(const Fact& a, const Fact& b) {
  // A bit known differently on the two sides refutes equality.
  if (!((a.kb.ones & b.kb.zeros) | (a.kb.zeros & b.kb.ones)).is_zero())
    return false;
  if (a.iv.tracked && b.iv.tracked &&
      (a.iv.hi < b.iv.lo || b.iv.hi < a.iv.lo))
    return false;
  if (a.kb.is_constant() && b.kb.is_constant())
    return a.kb.constant_value() == b.kb.constant_value();
  const auto ca = a.constant();
  const auto cb = b.constant();
  if (ca && cb) return *ca == *cb;
  return std::nullopt;
}

std::optional<bool> decide_slt(const Fact& a, const Fact& b, bool or_equal) {
  const unsigned w = a.width();
  const auto sa = a.kb.bit(w - 1);
  const auto sb = b.kb.bit(w - 1);
  if (sa && sb) {
    if (*sa && !*sb) return true;   // negative < non-negative
    if (!*sa && *sb) return false;  // non-negative >= negative
    // Equal known signs: two's-complement order matches unsigned order.
    return or_equal ? decide_ule(a, b) : decide_ult(a, b);
  }
  return std::nullopt;
}

Fact fact_bool(std::optional<bool> v) {
  if (!v) return Fact::top(1);
  return Fact::constant(Bits(1, *v ? 1u : 0u));
}

class Engine {
 public:
  Engine(const Module& m, const DataflowOptions& opt) : m_(m), opt_(opt) {}

  void run() {
    m_.validate();
    order_ = m_.topo_order();
    collect_landmarks();
    val_.assign(m_.node_count(), Fact());
    reg_.clear();
    for (const rtl::Register& r : m_.registers())
      reg_.push_back(Fact::constant(r.init));
    mem_.clear();
    for (const rtl::Memory& mem : m_.memories())
      mem_.push_back(Fact::constant(Bits(mem.data_width)));

    unsigned it = 0;
    bool converged = false;
    for (; it < opt_.max_iterations; ++it) {
      eval_all();
      if (!commit(/*widen=*/it + 1 >= opt_.widen_after, /*force_top=*/false))
        { converged = true; break; }
    }
    if (!converged) {
      // Sound cut-off: top out whatever is still moving (absorbing, so
      // this terminates within #regs + #memories extra rounds).
      const std::size_t cap = reg_.size() + mem_.size() + 2;
      for (std::size_t extra = 0; extra < cap; ++extra) {
        eval_all();
        ++it;
        if (!commit(true, /*force_top=*/true)) {
          converged = true;
          break;
        }
      }
      eval_all();  // facts consistent with the final register state
    }
    iterations_ = it;
    converged_ = converged;
  }

  const Module& m_;
  const DataflowOptions& opt_;
  std::vector<NodeId> order_;
  std::vector<Fact> val_;
  std::vector<Fact> reg_;
  std::vector<Fact> mem_;
  std::vector<std::pair<unsigned, unsigned>> dead_writes_;
  unsigned iterations_ = 0;
  bool converged_ = false;

 private:
  std::vector<std::uint64_t> landmarks_;  ///< widening thresholds, sorted

  /// Constants the design compares against (and memory depths) make the
  /// natural resting points of counter-style invariants: widening jumps
  /// interval bounds to the next landmark instead of straight to top, so
  /// "count <= kStretch" style bounds survive the sequential fixpoint.
  void collect_landmarks() {
    const auto add = [&](std::uint64_t v) {
      if (v > 0) landmarks_.push_back(v - 1);
      landmarks_.push_back(v);
      landmarks_.push_back(v + 1);
    };
    for (NodeId id = 0; id < m_.node_count(); ++id) {
      const Node& n = m_.node(id);
      switch (n.op) {
        case Op::kUlt:
        case Op::kUle:
        case Op::kEq:
        case Op::kNe:
          for (const NodeId in : n.ins) {
            const Node& c = m_.node(in);
            if (c.op == Op::kConst && c.width <= 64) add(c.value.to_u64());
          }
          break;
        default:
          break;
      }
    }
    for (const rtl::Memory& mem : m_.memories()) add(mem.depth);
    std::sort(landmarks_.begin(), landmarks_.end());
    landmarks_.erase(std::unique(landmarks_.begin(), landmarks_.end()),
                     landmarks_.end());
    if (landmarks_.size() > 128) landmarks_.resize(128);
  }

  /// Threshold widening: a growing bound jumps to the nearest landmark
  /// (top when none is left).  Bounds that did not grow stay put.
  Interval widen_iv(const Interval& oldv, const Interval& newv,
                    unsigned width) const {
    if (!newv.tracked || !oldv.tracked) return newv;
    std::uint64_t lo = newv.lo;
    std::uint64_t hi = newv.hi;
    if (newv.lo < oldv.lo) {
      lo = 0;
      const auto it = std::upper_bound(landmarks_.begin(), landmarks_.end(),
                                       newv.lo);
      if (it != landmarks_.begin()) lo = *std::prev(it);
    }
    if (newv.hi > oldv.hi) {
      hi = Interval::mask_of(width);
      const auto it = std::lower_bound(landmarks_.begin(), landmarks_.end(),
                                       newv.hi);
      if (it != landmarks_.end() && *it <= hi) hi = *it;
    }
    return Interval(lo, hi);
  }

  // --- refined (branch-constrained) evaluation ---------------------------
  // One assumption at a time: node `assume_on_` holds fact `assumed_`.
  NodeId assume_on_ = kInvalidNode;
  Fact assumed_;
  std::unordered_map<NodeId, Fact> refine_memo_;
  std::unordered_map<NodeId, bool> depends_memo_;
  unsigned refine_nodes_ = 0;
  bool refine_overflow_ = false;

  void eval_all() {
    for (const NodeId id : order_) val_[id] = transfer(id, /*refined=*/false);
  }

  /// One abstract clock edge; returns true when any register or memory
  /// fact changed.  With force_top, changing facts jump straight to top.
  bool commit(bool widen, bool force_top) {
    bool changed = false;
    std::vector<Fact> next(reg_.size());
    for (std::size_t i = 0; i < reg_.size(); ++i) {
      const rtl::Register& r = m_.registers()[i];
      const Fact& d = val_[r.d];
      Fact incoming;
      if (r.enable == kInvalidNode) {
        incoming = d;
      } else {
        const auto en = val_[r.enable].kb.bit(0);
        if (en.has_value() && *en) incoming = d;
        else if (en.has_value()) incoming = reg_[i];
        else incoming = Fact::join(d, reg_[i]);
      }
      next[i] = Fact::join(reg_[i], incoming);
      if (next[i] != reg_[i]) {
        if (force_top) next[i] = Fact::top(next[i].width());
        else if (widen && next[i].iv != reg_[i].iv) {
          next[i].iv = widen_iv(reg_[i].iv, next[i].iv, next[i].width());
          next[i].normalize();
        }
        if (next[i] != reg_[i]) changed = true;
      }
    }
    dead_writes_.clear();
    std::vector<Fact> next_mem(mem_.size());
    for (std::size_t mi = 0; mi < mem_.size(); ++mi) {
      const rtl::Memory& mem = m_.memories()[mi];
      next_mem[mi] = mem_[mi];
      for (std::size_t wi = 0; wi < mem.writes.size(); ++wi) {
        const auto& w = mem.writes[wi];
        const auto en = val_[w.enable].kb.bit(0);
        if (en.has_value() && !*en) continue;  // write provably disabled
        // A write whose address is provably beyond the depth never lands
        // (the interpreter drops it) — and is RTL-013's evidence.
        const Fact& addr = val_[w.addr];
        const std::uint64_t addr_min =
            addr.iv.tracked ? addr.iv.lo : addr.kb.ones.to_u64();
        if (addr.width() <= 64 && addr_min >= mem.depth) {
          dead_writes_.emplace_back(static_cast<unsigned>(mi),
                                    static_cast<unsigned>(wi));
          continue;
        }
        next_mem[mi] = Fact::join(next_mem[mi], val_[w.data]);
      }
      if (next_mem[mi] != mem_[mi]) {
        if (force_top) next_mem[mi] = Fact::top(mem.data_width);
        else if (widen && next_mem[mi].iv != mem_[mi].iv) {
          next_mem[mi].iv =
              widen_iv(mem_[mi].iv, next_mem[mi].iv, mem.data_width);
          next_mem[mi].normalize();
        }
        if (next_mem[mi] != mem_[mi]) changed = true;
      }
    }
    reg_ = std::move(next);
    mem_ = std::move(next_mem);
    return changed;
  }

  // --- transfer functions ------------------------------------------------

  const Fact& in_fact(NodeId id, bool refined) {
    if (!refined) return val_[id];
    return refined_fact(id);
  }

  const Fact& refined_fact(NodeId id) {
    if (id == assume_on_) return assumed_;
    const auto it = refine_memo_.find(id);
    if (it != refine_memo_.end()) return it->second;
    if (!depends_on_assumption(id) || refine_overflow_) return val_[id];
    if (++refine_nodes_ > opt_.refine_budget) {
      refine_overflow_ = true;
      return val_[id];
    }
    Fact f = transfer(id, /*refined=*/true);
    return refine_memo_.emplace(id, std::move(f)).first->second;
  }

  /// Does `id` combinationally depend on the assumed node?  Registers and
  /// memory reads are cut points (their facts are cycle invariants).
  bool depends_on_assumption(NodeId id) {
    if (id == assume_on_) return true;
    const auto it = depends_memo_.find(id);
    if (it != depends_memo_.end()) return it->second;
    const Node& n = m_.node(id);
    bool dep = false;
    if (n.op != Op::kReg && n.op != Op::kMemRead && n.op != Op::kConst &&
        n.op != Op::kInput) {
      for (const NodeId in : n.ins)
        if (depends_on_assumption(in)) {
          dep = true;
          break;
        }
    }
    depends_memo_.emplace(id, dep);
    return dep;
  }

  Fact transfer(NodeId id, bool refined) {
    const Node& n = m_.node(id);
    const unsigned w = n.width;
    const auto in = [&](std::size_t i) -> const Fact& {
      return in_fact(n.ins[i], refined);
    };
    Fact f = Fact::top(w);
    switch (n.op) {
      case Op::kConst: return Fact::constant(n.value);
      case Op::kInput: return Fact::top(w);
      case Op::kReg: return reg_[n.param];
      case Op::kMemRead:
        // Out-of-range reads and never-written rows both read 0.
        return Fact::join(Fact::constant(Bits(w)), mem_[n.param]);

      case Op::kAdd: {
        const Fact& a = in(0);
        const Fact& b = in(1);
        f.kb = known_add(a.kb, b.kb, false);
        if (a.iv.tracked && b.iv.tracked) {
          const unsigned __int128 hi =
              static_cast<unsigned __int128>(a.iv.hi) + b.iv.hi;
          if (hi <= Interval::mask_of(w))
            f.iv = Interval(a.iv.lo + b.iv.lo,
                            static_cast<std::uint64_t>(hi));
        }
        break;
      }
      case Op::kSub: {
        const Fact& a = in(0);
        const Fact& b = in(1);
        // a - b == a + ~b + 1 with ~b swapping the known masks.
        f.kb = known_add(a.kb, KnownBits(b.kb.ones, b.kb.zeros), true);
        if (a.iv.tracked && b.iv.tracked && b.iv.hi <= a.iv.lo)
          f.iv = Interval(a.iv.lo - b.iv.hi, a.iv.hi - b.iv.lo);
        break;
      }
      case Op::kMul: {
        const Fact& a = in(0);
        const Fact& b = in(1);
        if (a.kb.is_constant() && b.kb.is_constant())
          return Fact::constant(a.kb.constant_value() *
                                b.kb.constant_value());
        // Trailing known-zero runs multiply: low (tza + tzb) bits are 0.
        unsigned tza = 0, tzb = 0;
        while (tza < w && a.kb.zeros.bit(tza)) ++tza;
        while (tzb < w && b.kb.zeros.bit(tzb)) ++tzb;
        const unsigned tz = std::min(w, tza + tzb);
        for (unsigned i = 0; i < tz; ++i) f.kb.zeros.set_bit(i, true);
        if (a.iv.tracked && b.iv.tracked) {
          const unsigned __int128 hi =
              static_cast<unsigned __int128>(a.iv.hi) * b.iv.hi;
          if (hi <= Interval::mask_of(w))
            f.iv = Interval(a.iv.lo * b.iv.lo,
                            static_cast<std::uint64_t>(hi));
        }
        break;
      }
      case Op::kAnd: {
        const Fact& a = in(0);
        const Fact& b = in(1);
        f.kb = KnownBits(a.kb.zeros | b.kb.zeros, a.kb.ones & b.kb.ones);
        if (a.iv.tracked && b.iv.tracked)
          f.iv = Interval(0, std::min(a.iv.hi, b.iv.hi));
        break;
      }
      case Op::kOr: {
        const Fact& a = in(0);
        const Fact& b = in(1);
        f.kb = KnownBits(a.kb.zeros & b.kb.zeros, a.kb.ones | b.kb.ones);
        if (a.iv.tracked && b.iv.tracked) {
          // a|b < 2^bitlen(hi_a | hi_b), and >= both los.
          const std::uint64_t m = a.iv.hi | b.iv.hi;
          std::uint64_t cap = Interval::mask_of(w);
          if (m != 0) {
            unsigned bl = 64;
            while (bl > 0 && ((m >> (bl - 1)) & 1u) == 0) --bl;
            if (bl < 64)
              cap = std::min<std::uint64_t>(cap, (1ull << bl) - 1);
          } else {
            cap = 0;
          }
          f.iv = Interval(std::max(a.iv.lo, b.iv.lo), cap);
        }
        break;
      }
      case Op::kXor: {
        const Fact& a = in(0);
        const Fact& b = in(1);
        f.kb = KnownBits((a.kb.zeros & b.kb.zeros) | (a.kb.ones & b.kb.ones),
                         (a.kb.ones & b.kb.zeros) | (a.kb.zeros & b.kb.ones));
        break;
      }
      case Op::kNot: {
        const Fact& a = in(0);
        f.kb = KnownBits(a.kb.ones, a.kb.zeros);
        if (a.iv.tracked) {
          const std::uint64_t mask = Interval::mask_of(w);
          f.iv = Interval(mask - a.iv.hi, mask - a.iv.lo);
        }
        break;
      }
      case Op::kShlI:
      case Op::kLshrI:
      case Op::kAshrI:
        f = shift_const(in(0), n.op, n.param, w);
        break;
      case Op::kShlV:
      case Op::kLshrV: {
        const Fact& a = in(0);
        const Fact& amt = in(1);
        const bool left = n.op == Op::kShlV;
        if (const auto c = amt.constant()) {
          const unsigned k =
              static_cast<unsigned>(c->to_u64() & 0xffffffffu);
          f = shift_const(a, left ? Op::kShlI : Op::kLshrI, k, w);
          break;
        }
        // Variable amount: bound via the amount interval when its width
        // can't alias through the `to_u64() & 0xffffffff` truncation.
        if (amt.width() <= 32 && amt.iv.tracked) {
          const std::uint64_t alo = amt.iv.lo;
          const std::uint64_t ahi = amt.iv.hi;
          if (alo >= w) return Fact::constant(Bits(w));
          const unsigned lo_shift = static_cast<unsigned>(alo);
          if (left) {
            for (unsigned i = 0; i < lo_shift; ++i)
              f.kb.zeros.set_bit(i, true);
            if (a.iv.tracked && ahi < 64) {
              const unsigned __int128 hi =
                  static_cast<unsigned __int128>(a.iv.hi)
                  << static_cast<unsigned>(ahi);
              if (hi <= Interval::mask_of(w))
                f.iv = Interval(a.iv.lo << lo_shift,
                                static_cast<std::uint64_t>(hi));
            }
          } else {
            for (unsigned i = 0; i < lo_shift; ++i)
              f.kb.zeros.set_bit(w - 1 - i, true);
            if (a.iv.tracked)
              f.iv = Interval(ahi >= w ? 0 : a.iv.lo >> ahi,
                              a.iv.hi >> lo_shift);
          }
        }
        break;
      }
      case Op::kEq: return fact_bool(decide_eq(in(0), in(1)));
      case Op::kNe: {
        auto d = decide_eq(in(0), in(1));
        if (d) d = !*d;
        return fact_bool(d);
      }
      case Op::kUlt: return fact_bool(decide_ult(in(0), in(1)));
      case Op::kUle: return fact_bool(decide_ule(in(0), in(1)));
      case Op::kSlt: return fact_bool(decide_slt(in(0), in(1), false));
      case Op::kSle: return fact_bool(decide_slt(in(0), in(1), true));

      case Op::kMux: return mux_fact(n, refined);

      case Op::kSlice: {
        const Fact& a = in(0);
        f.kb = KnownBits(a.kb.zeros.slice(n.param + w - 1, n.param),
                         a.kb.ones.slice(n.param + w - 1, n.param));
        if (n.param == 0 && a.iv.tracked &&
            a.iv.hi <= Interval::mask_of(w))
          f.iv = Interval(a.iv.lo, a.iv.hi);
        break;
      }
      case Op::kConcat: {
        // ins[0] is the most significant chunk (interpreter convention).
        Bits zeros(w), ones(w);
        unsigned pos = w;
        bool iv_ok = w <= 64;
        std::uint64_t lo = 0, hi = 0;
        for (std::size_t i = 0; i < n.ins.size(); ++i) {
          const Fact& part = in(i);
          pos -= part.width();
          zeros.set_range(pos, part.kb.zeros);
          ones.set_range(pos, part.kb.ones);
          if (iv_ok && part.iv.tracked) {
            lo += part.iv.lo << pos;
            hi += part.iv.hi << pos;
          } else {
            iv_ok = false;
          }
        }
        f.kb = KnownBits(std::move(zeros), std::move(ones));
        if (iv_ok) f.iv = Interval(lo, hi);
        break;
      }
      case Op::kZExt: {
        const Fact& a = in(0);
        const unsigned w0 = a.width();
        f.kb = KnownBits(a.kb.zeros.zext(w), a.kb.ones.zext(w));
        for (unsigned i = w0; i < w; ++i) f.kb.zeros.set_bit(i, true);
        if (w <= 64 && a.iv.tracked) f.iv = Interval(a.iv.lo, a.iv.hi);
        break;
      }
      case Op::kSExt: {
        const Fact& a = in(0);
        const unsigned w0 = a.width();
        f.kb = KnownBits(a.kb.zeros.zext(w), a.kb.ones.zext(w));
        const auto sign = a.kb.bit(w0 - 1);
        if (sign.has_value()) {
          for (unsigned i = w0; i < w; ++i)
            (*sign ? f.kb.ones : f.kb.zeros).set_bit(i, true);
          if (w <= 64 && a.iv.tracked) {
            const std::uint64_t fill =
                *sign ? Interval::mask_of(w) ^ Interval::mask_of(w0) : 0;
            f.iv = Interval(a.iv.lo | fill, a.iv.hi | fill);
          }
        }
        break;
      }
      case Op::kRedOr: {
        const Fact& a = in(0);
        if (!a.kb.ones.is_zero() || (a.iv.tracked && a.iv.lo > 0))
          return Fact::constant(Bits(1, 1));
        if (a.kb.zeros.is_ones() || (a.iv.tracked && a.iv.hi == 0))
          return Fact::constant(Bits(1, 0));
        return Fact::top(1);
      }
      case Op::kRedAnd: {
        const Fact& a = in(0);
        if (!a.kb.zeros.is_zero()) return Fact::constant(Bits(1, 0));
        if (a.kb.ones.is_ones()) return Fact::constant(Bits(1, 1));
        return Fact::top(1);
      }
      case Op::kRedXor: {
        const Fact& a = in(0);
        if (a.kb.is_constant())
          return Fact::constant(Bits(1, a.kb.ones.popcount() & 1u));
        return Fact::top(1);
      }
    }
    f.normalize();
    return f;
  }

  static Fact shift_const(const Fact& a, Op op, unsigned amt, unsigned w) {
    Fact f = Fact::top(w);
    if (op == Op::kShlI) {
      if (amt >= w) return Fact::constant(Bits(w));
      Bits zeros = a.kb.zeros.shl(amt);
      for (unsigned i = 0; i < amt; ++i) zeros.set_bit(i, true);
      f.kb = KnownBits(std::move(zeros), a.kb.ones.shl(amt));
      if (a.iv.tracked && amt < 64) {
        const unsigned __int128 hi = static_cast<unsigned __int128>(a.iv.hi)
                                     << amt;
        if (hi <= Interval::mask_of(w))
          f.iv = Interval(a.iv.lo << amt, static_cast<std::uint64_t>(hi));
      }
    } else if (op == Op::kLshrI) {
      if (amt >= w) return Fact::constant(Bits(w));
      Bits zeros = a.kb.zeros.lshr(amt);
      for (unsigned i = 0; i < amt; ++i) zeros.set_bit(w - 1 - i, true);
      f.kb = KnownBits(std::move(zeros), a.kb.ones.lshr(amt));
      if (a.iv.tracked) f.iv = Interval(a.iv.lo >> amt, a.iv.hi >> amt);
    } else {  // kAshrI: shifted-in bits copy the sign
      const auto sign = a.kb.bit(w - 1);
      if (amt >= w) {
        if (!sign.has_value()) {
          // every bit equals the unknown sign; nothing per-bit to claim
          return Fact::top(w);
        }
        return Fact::constant(*sign ? Bits::ones(w) : Bits(w));
      }
      Bits zeros = a.kb.zeros.lshr(amt);
      Bits ones = a.kb.ones.lshr(amt);
      if (sign.has_value()) {
        Bits& fill = *sign ? ones : zeros;
        for (unsigned i = 0; i < amt; ++i) fill.set_bit(w - 1 - i, true);
      } else {
        for (unsigned i = 0; i < amt; ++i) {
          zeros.set_bit(w - 1 - i, false);
          ones.set_bit(w - 1 - i, false);
        }
      }
      f.kb = KnownBits(std::move(zeros), std::move(ones));
    }
    f.normalize();
    return f;
  }

  // --- mux with branch-constrained arm refinement ------------------------

  Fact mux_fact(const Node& n, bool refined) {
    const Fact& sel = in_fact(n.ins[0], refined);
    const auto sb = sel.kb.bit(0);
    if (sb.has_value())
      return in_fact(*sb ? n.ins[1] : n.ins[2], refined);
    const Fact then_f = in_fact(n.ins[1], refined);
    const Fact else_f = in_fact(n.ins[2], refined);
    if (refined || opt_.refine_budget == 0)
      return Fact::join(then_f, else_f);  // no nested refinement

    // Try to evaluate each arm under the guard's constraint.
    const Fact then_r = arm_fact(n.ins[0], true, n.ins[1], then_f);
    const Fact else_r = arm_fact(n.ins[0], false, n.ins[2], else_f);
    return Fact::join(then_r, else_r);
  }

  /// Fact of `arm` assuming the select node `sel` evaluates to `polarity`.
  /// Falls back to the unconstrained `plain` fact when no constraint can
  /// be extracted or the guard contradicts current facts (the arm is then
  /// unreachable; keeping `plain` only loses precision, never soundness).
  Fact arm_fact(NodeId sel, bool polarity, NodeId arm, const Fact& plain) {
    NodeId on = kInvalidNode;
    Fact constraint;
    if (!extract_constraint(sel, polarity, on, constraint)) return plain;
    const auto refined = meet(val_[on], constraint);
    if (!refined) return plain;  // guard contradicts facts: arm unreachable
    assume_on_ = on;
    assumed_ = *refined;
    refine_memo_.clear();
    depends_memo_.clear();
    refine_nodes_ = 0;
    refine_overflow_ = false;
    Fact f = refined_fact(arm);
    assume_on_ = kInvalidNode;
    refine_memo_.clear();
    depends_memo_.clear();
    // The refined fact must still be joined-compatible; it can only be
    // tighter than plain, but guard against budget-overflow paths having
    // mixed global facts in by meeting with plain (both are sound).
    if (const auto m2 = meet(f, plain)) return *m2;
    return plain;
  }

  /// Recognize a guard shape and produce "node `on` has fact `constraint`"
  /// for the branch where `sel` == polarity.
  bool extract_constraint(NodeId sel, bool polarity, NodeId& on,
                          Fact& constraint) {
    const Node* s = &m_.node(sel);
    while (s->op == Op::kNot) {
      sel = s->ins[0];
      polarity = !polarity;
      s = &m_.node(sel);
    }
    const auto const_side = [&](std::size_t i) -> std::optional<Bits> {
      return val_[s->ins[i]].constant();
    };
    const auto iv_of = [&](NodeId x) { return val_[x].iv; };
    switch (s->op) {
      case Op::kUlt:
      case Op::kUle: {
        const bool ule = s->op == Op::kUle;
        // x OP C or C OP x with C constant and x narrow enough to track.
        for (int side = 0; side < 2; ++side) {
          const auto c = const_side(side == 0 ? 1 : 0);
          const NodeId x = s->ins[side == 0 ? 0 : 1];
          if (!c || c->width() > 64) continue;
          const unsigned xw = m_.node(x).width;
          const std::uint64_t cv = c->to_u64();
          const std::uint64_t mask = Interval::mask_of(xw);
          Interval ivc;
          if (side == 0) {  // x OP C
            if (polarity)
              ivc = ule ? Interval(0, cv)
                        : (cv == 0 ? Interval() : Interval(0, cv - 1));
            else
              ivc = ule ? (cv == mask ? Interval() : Interval(cv + 1, mask))
                        : Interval(cv, mask);
          } else {  // C OP x
            if (polarity)
              ivc = ule ? Interval(cv, mask)
                        : (cv == mask ? Interval() : Interval(cv + 1, mask));
            else
              ivc = ule ? (cv == 0 ? Interval() : Interval(0, cv - 1))
                        : Interval(0, cv);
          }
          if (!ivc.tracked) continue;  // degenerate bound: no information
          on = x;
          constraint = Fact::top(xw);
          constraint.iv = ivc;
          constraint.normalize();
          return true;
        }
        return false;
      }
      case Op::kEq:
      case Op::kNe: {
        const bool eq_true = (s->op == Op::kEq) == polarity;
        for (int side = 0; side < 2; ++side) {
          const auto c = const_side(side == 0 ? 1 : 0);
          const NodeId x = s->ins[side == 0 ? 0 : 1];
          if (!c) continue;
          const unsigned xw = m_.node(x).width;
          if (eq_true) {
            on = x;
            constraint = Fact::constant(*c);
            return true;
          }
          // x != C: only interval-endpoint knowledge.
          if (xw > 64) continue;
          const Interval iv = iv_of(x);
          if (!iv.tracked) continue;
          const std::uint64_t cv = c->to_u64();
          Interval ivc = iv;
          if (cv == iv.lo && iv.lo < iv.hi) ivc.lo = iv.lo + 1;
          else if (cv == iv.hi && iv.lo < iv.hi) ivc.hi = iv.hi - 1;
          else continue;
          on = x;
          constraint = Fact::top(xw);
          constraint.iv = ivc;
          constraint.normalize();
          return true;
        }
        return false;
      }
      case Op::kRedOr: {
        if (polarity) return false;  // x != 0: too weak to bother
        on = s->ins[0];
        constraint = Fact::constant(Bits(m_.node(on).width));
        return true;
      }
      case Op::kRedAnd: {
        if (!polarity) return false;
        on = s->ins[0];
        constraint = Fact::constant(Bits::ones(m_.node(on).width));
        return true;
      }
      default:
        // The select net itself is a 1-bit node used inside the arm.
        if (s->width == 1 && s->op != Op::kConst) {
          on = sel;
          constraint = Fact::constant(Bits(1, polarity ? 1u : 0u));
          return true;
        }
        return false;
    }
  }
};

}  // namespace

std::unordered_map<std::string, bool> FactDB::const_reg_bits() const {
  std::unordered_map<std::string, unsigned> name_count;
  for (const std::string& n : reg_names_) ++name_count[n];
  std::unordered_map<std::string, bool> out;
  for (std::size_t i = 0; i < reg_facts_.size(); ++i) {
    const std::string& name = reg_names_[i];
    if (name.empty() || name_count[name] > 1) continue;
    const Fact& f = reg_facts_[i];
    for (unsigned b = 0; b < f.width(); ++b) {
      const auto v = f.kb.bit(b);
      if (!v.has_value()) continue;
      out.emplace(name + "[" + std::to_string(b) + "]", *v);
    }
  }
  return out;
}

FactDB analyze_dataflow(const rtl::Module& m, const DataflowOptions& opt) {
  Engine engine(m, opt);
  engine.run();
  FactDB db;
  db.node_facts_ = std::move(engine.val_);
  db.reg_facts_ = std::move(engine.reg_);
  for (const rtl::Register& r : m.registers())
    db.reg_names_.push_back(r.name);
  db.dead_writes_ = std::move(engine.dead_writes_);
  db.iterations_ = engine.iterations_;
  db.converged_ = engine.converged_;
  return db;
}

}  // namespace osss::lint
