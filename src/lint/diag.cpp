#include "lint/diag.hpp"

#include <algorithm>
#include <sstream>

namespace osss::lint {

const char* severity_name(Severity s) {
  switch (s) {
    case Severity::kInfo: return "info";
    case Severity::kWarning: return "warning";
    case Severity::kError: return "error";
  }
  return "?";
}

std::string Diagnostic::format() const {
  std::ostringstream os;
  os << severity_name(severity) << "[" << rule << "] " << source;
  if (!object.empty()) os << "." << object;
  os << ": " << message;
  if (!note.empty()) os << " (" << note << ")";
  return os.str();
}

const std::vector<RuleInfo>& rule_registry() {
  static const std::vector<RuleInfo> kRules = {
      // --- RTL-IR pack (lint/rtl_rules.cpp) ------------------------------
      {"RTL-001", "rtl", Severity::kError, "combinational cycle"},
      {"RTL-002", "rtl", Severity::kError, "width or shape mismatch"},
      {"RTL-003", "rtl", Severity::kWarning,
       "dead node (never observable; agrees with the tape pruner)"},
      {"RTL-004", "rtl", Severity::kWarning, "register without reset value"},
      {"RTL-005", "rtl", Severity::kWarning, "output folds to a constant"},
      {"RTL-006", "rtl", Severity::kWarning, "unreachable FSM state"},
      {"RTL-007", "rtl", Severity::kInfo, "dead FSM transition"},
      {"RTL-008", "rtl", Severity::kWarning,
       "stuck register (can never change after reset)"},
      {"RTL-009", "rtl", Severity::kInfo,
       "constant over-shift truncates to zero"},
      // --- gate-netlist pack (lint/gate_rules.cpp) -----------------------
      {"GATE-001", "gate", Severity::kError,
       "combinational loop through cells"},
      {"GATE-002", "gate", Severity::kWarning,
       "multiple write ports may drive one memory word (write-write)"},
      {"GATE-003", "gate", Severity::kError, "floating cell input"},
      {"GATE-004", "gate", Severity::kWarning,
       "dead cell (sweep would remove it)"},
      {"GATE-005", "gate", Severity::kInfo,
       "fanout histogram / high-fanout net"},
      // --- optimization pipeline (src/opt, reported via osss-lint --opt) -
      {"OPT-001", "opt", Severity::kInfo,
       "optimization pass statistics (area/depth/cell deltas)"},
      {"OPT-002", "opt", Severity::kWarning,
       "optimization pass regressed area or logic depth"},
      // --- kernel race detector (sysc/kernel.cpp) ------------------------
      {"RACE-001", "kernel", Severity::kError,
       "same-delta write-write conflict on a signal"},
      {"RACE-002", "kernel", Severity::kWarning,
       "signal driven by multiple processes"},
      {"RACE-003", "kernel", Severity::kInfo,
       "read of a signal written earlier in the same delta"},
  };
  return kRules;
}

const RuleInfo* find_rule(const std::string& id) {
  for (const RuleInfo& r : rule_registry())
    if (id == r.id) return &r;
  return nullptr;
}

void Report::add(Diagnostic d) { diags_.push_back(std::move(d)); }

void Report::merge(const Report& other) {
  diags_.insert(diags_.end(), other.diags_.begin(), other.diags_.end());
}

std::size_t Report::count(Severity s) const {
  return static_cast<std::size_t>(
      std::count_if(diags_.begin(), diags_.end(),
                    [s](const Diagnostic& d) { return d.severity == s; }));
}

std::vector<Diagnostic> Report::by_rule(const std::string& rule) const {
  std::vector<Diagnostic> out;
  for (const Diagnostic& d : diags_)
    if (d.rule == rule) out.push_back(d);
  return out;
}

bool Report::has(const std::string& rule) const {
  return std::any_of(diags_.begin(), diags_.end(),
                     [&](const Diagnostic& d) { return d.rule == rule; });
}

std::string Report::text() const {
  std::ostringstream os;
  for (const Diagnostic& d : diags_) os << d.format() << "\n";
  os << diags_.size() << " diagnostic" << (diags_.size() == 1 ? "" : "s")
     << " (" << error_count() << " errors, " << warning_count()
     << " warnings, " << count(Severity::kInfo) << " info)\n";
  return os.str();
}

std::string Report::json() const {
  std::ostringstream os;
  os << "{\"diagnostics\":[";
  for (std::size_t i = 0; i < diags_.size(); ++i) {
    const Diagnostic& d = diags_[i];
    if (i != 0) os << ",";
    os << "{\"rule\":\"" << json_escape(d.rule) << "\",\"severity\":\""
       << severity_name(d.severity) << "\",\"source\":\""
       << json_escape(d.source) << "\",\"object\":\"" << json_escape(d.object)
       << "\",\"index\":" << d.index << ",\"message\":\""
       << json_escape(d.message) << "\"";
    if (!d.note.empty()) os << ",\"note\":\"" << json_escape(d.note) << "\"";
    os << "}";
  }
  os << "],\"errors\":" << error_count() << ",\"warnings\":" << warning_count()
     << ",\"info\":" << count(Severity::kInfo) << "}";
  return os.str();
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char* hex = "0123456789abcdef";
          out += "\\u00";
          out += hex[(c >> 4) & 0xf];
          out += hex[c & 0xf];
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace osss::lint
