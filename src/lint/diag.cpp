#include "lint/diag.hpp"

#include <algorithm>
#include <sstream>

namespace osss::lint {

const char* severity_name(Severity s) {
  switch (s) {
    case Severity::kInfo: return "info";
    case Severity::kWarning: return "warning";
    case Severity::kError: return "error";
  }
  return "?";
}

std::string Diagnostic::format() const {
  std::ostringstream os;
  os << severity_name(severity) << "[" << rule << "] " << source;
  if (!object.empty()) os << "." << object;
  os << ": " << message;
  if (!note.empty()) os << " (" << note << ")";
  return os.str();
}

const std::vector<RuleInfo>& rule_registry() {
  static const std::vector<RuleInfo> kRules = {
      // --- RTL-IR pack (lint/rtl_rules.cpp) ------------------------------
      {"RTL-001", "rtl", Severity::kError, "combinational cycle",
       "A path of combinational nodes feeds back into itself without "
       "passing through a register.  The simulator cannot order such a "
       "graph and real hardware would oscillate or latch.  The checker "
       "runs a DFS over the combinational edges (registers break the "
       "graph) and reports one concrete cycle path."},
      {"RTL-002", "rtl", Severity::kError, "width or shape mismatch",
       "A node violates the IR's structural contract: operand widths "
       "disagree, a slice reads out of range, a register or memory port "
       "is unconnected, or a concat's parts do not sum to its width.  "
       "Mirrors rtl::Module::validate() violation for violation so the "
       "lint can report every problem instead of throwing on the first."},
      {"RTL-003", "rtl", Severity::kWarning,
       "dead node (never observable; agrees with the tape pruner)",
       "The node is unreachable from every output, register and memory "
       "write port, so no execution can observe it.  The set is exactly "
       "what the tape compiler prunes; dead logic usually indicates an "
       "unfinished edit or a lost connection."},
      {"RTL-004", "rtl", Severity::kWarning, "register without reset value",
       "The register declares no reset value, so simulation and synthesis "
       "may disagree about its power-on contents.  Every register in the "
       "synthesizable subset must come up in a defined state."},
      {"RTL-005", "rtl", Severity::kWarning, "output folds to a constant",
       "Constant folding proves the output port carries the same value in "
       "every cycle.  Either the port is redundant or logic that should "
       "vary was wired to a constant by mistake."},
      {"RTL-006", "rtl", Severity::kWarning, "unreachable FSM state",
       "For a register whose next-state cone is a mux tree over constant "
       "leaves (the FSM idiom the synthesizer emits), reachability "
       "exploration from the reset state proves some declared states can "
       "never be entered.  Dead states cost encoding bits and usually "
       "flag missing transitions."},
      {"RTL-007", "rtl", Severity::kInfo, "dead FSM transition",
       "An FSM transition arm exists whose guard can never be true in any "
       "state reachable from reset, so the transition never fires.  The "
       "guard is abstractly evaluated with the state register pinned to "
       "each reachable value in turn."},
      {"RTL-008", "rtl", Severity::kWarning,
       "stuck register (can never change after reset)",
       "Structural evidence pins the register to its reset value forever: "
       "its enable folds to constant 0, its D input feeds back its own Q, "
       "or its D input folds to the reset constant.  A stuck register is "
       "wasted state; see RTL-014 for the sharper dataflow-based form."},
      {"RTL-009", "rtl", Severity::kInfo,
       "constant over-shift truncates to zero",
       "A shift by a constant amount greater than or equal to the operand "
       "width always yields zero.  Legal, but almost always a width "
       "confusion at the call site."},
      {"RTL-010", "rtl", Severity::kWarning, "unreachable mux arm",
       "Abstract interpretation (known bits + value intervals over every "
       "reachable cycle) proves the mux select constant even though plain "
       "constant folding cannot, so one arm is dead logic.  Typically the "
       "guard compares a register against a value the register provably "
       "never reaches."},
      {"RTL-011", "rtl", Severity::kWarning,
       "comparison always constant",
       "A comparison's result is the same in every reachable cycle: the "
       "operand intervals or known bits proven by dataflow analysis "
       "decide it, even though neither operand folds to a constant "
       "structurally.  The surrounding control logic is degenerate."},
      {"RTL-012", "rtl", Severity::kWarning,
       "truncation drops set bits",
       "A low slice narrows a value whose dropped high bits are proven "
       "always 1 by dataflow analysis, so information is lost in every "
       "cycle — typically a result width miscalculated for the operands "
       "feeding it."},
      {"RTL-013", "rtl", Severity::kWarning,
       "memory write proven out of range",
       "Interval analysis proves the write port's address is at least the "
       "memory depth in every reachable cycle, so the write never lands "
       "(the simulator drops out-of-range writes).  The port is dead "
       "weight and the address computation is almost certainly wrong."},
      {"RTL-014", "rtl", Severity::kInfo,
       "register bits never toggle",
       "Dataflow analysis proves individual register bits hold their "
       "reset value in every reachable cycle — a sharper, per-bit form "
       "of RTL-008 that also catches registers stuck through feedback "
       "loops and saturating guards.  Constant bits are optimization "
       "fuel (the ODC-aware satsweep consumes the same facts) but often "
       "flag an over-wide declaration."},
      // --- gate-netlist pack (lint/gate_rules.cpp) -----------------------
      {"GATE-001", "gate", Severity::kError,
       "combinational loop through cells",
       "A cycle of gate cells closes without passing through a flip-flop. "
       "Netlist leveling fails and hardware would oscillate; the checker "
       "reports one concrete loop."},
      {"GATE-002", "gate", Severity::kWarning,
       "multiple write ports may drive one memory word (write-write)",
       "Two write ports of the same memory are not provably "
       "address-disjoint or enable-exclusive, so one cycle may commit two "
       "writes to one word and the result depends on port order."},
      {"GATE-003", "gate", Severity::kError, "floating cell input",
       "A cell input references no driver.  The value is undefined in "
       "simulation and an open input in hardware."},
      {"GATE-004", "gate", Severity::kWarning,
       "dead cell (sweep would remove it)",
       "The cell drives nothing observable (no path to an output, "
       "flip-flop or memory write).  Netlist::sweep would erase it; its "
       "presence after optimization indicates a pass forgot to clean up."},
      {"GATE-005", "gate", Severity::kInfo,
       "fanout histogram / high-fanout net",
       "Reports the net fanout distribution, and warns about nets whose "
       "fanout reaches the configured threshold — buffering candidates "
       "on the way to timing closure."},
      // --- optimization pipeline (src/opt, reported via osss-lint --opt) -
      {"OPT-001", "opt", Severity::kInfo,
       "optimization pass statistics (area/depth/cell deltas)",
       "One record per optimization pass run: cells/area/depth before and "
       "after, changes applied, and the merge counters exported by the "
       "SAT sweep.  Informational plumbing for the area experiments."},
      {"OPT-002", "opt", Severity::kWarning,
       "optimization pass regressed area or logic depth",
       "A pass made the netlist strictly worse on the reported metric.  "
       "Every pass is differentially verified for equivalence, so this "
       "is a quality regression, not a correctness one."},
      // --- kernel race detector (sysc/kernel.cpp) ------------------------
      {"RACE-001", "kernel", Severity::kError,
       "same-delta write-write conflict on a signal",
       "Two processes wrote one signal in the same delta cycle with "
       "different values; the committed value depends on scheduler order. "
       "Detected dynamically by the kernel's race instrumentation."},
      {"RACE-002", "kernel", Severity::kWarning,
       "signal driven by multiple processes",
       "More than one process wrote the signal over the run.  Legal under "
       "the kernel's semantics but fragile: refactorings that change "
       "process scheduling can change behavior."},
      {"RACE-003", "kernel", Severity::kInfo,
       "read of a signal written earlier in the same delta",
       "A process read a signal that was already written in the current "
       "delta and saw the old value.  Usually intended (that is what "
       "delta cycles are for), occasionally a misordered sensitivity."},
  };
  return kRules;
}

const RuleInfo* find_rule(const std::string& id) {
  for (const RuleInfo& r : rule_registry())
    if (id == r.id) return &r;
  return nullptr;
}

void Report::add(Diagnostic d) { diags_.push_back(std::move(d)); }

void Report::merge(const Report& other) {
  diags_.insert(diags_.end(), other.diags_.begin(), other.diags_.end());
}

std::size_t Report::count(Severity s) const {
  return static_cast<std::size_t>(
      std::count_if(diags_.begin(), diags_.end(),
                    [s](const Diagnostic& d) { return d.severity == s; }));
}

std::vector<Diagnostic> Report::by_rule(const std::string& rule) const {
  std::vector<Diagnostic> out;
  for (const Diagnostic& d : diags_)
    if (d.rule == rule) out.push_back(d);
  return out;
}

bool Report::has(const std::string& rule) const {
  return std::any_of(diags_.begin(), diags_.end(),
                     [&](const Diagnostic& d) { return d.rule == rule; });
}

std::string Report::text() const {
  std::ostringstream os;
  for (const Diagnostic& d : diags_) os << d.format() << "\n";
  os << diags_.size() << " diagnostic" << (diags_.size() == 1 ? "" : "s")
     << " (" << error_count() << " errors, " << warning_count()
     << " warnings, " << count(Severity::kInfo) << " info)\n";
  return os.str();
}

std::string Report::json() const {
  std::ostringstream os;
  os << "{\"diagnostics\":[";
  for (std::size_t i = 0; i < diags_.size(); ++i) {
    const Diagnostic& d = diags_[i];
    if (i != 0) os << ",";
    os << "{\"rule\":\"" << json_escape(d.rule) << "\",\"severity\":\""
       << severity_name(d.severity) << "\",\"source\":\""
       << json_escape(d.source) << "\",\"object\":\"" << json_escape(d.object)
       << "\",\"index\":" << d.index << ",\"message\":\""
       << json_escape(d.message) << "\"";
    if (!d.note.empty()) os << ",\"note\":\"" << json_escape(d.note) << "\"";
    os << "}";
  }
  os << "],\"errors\":" << error_count() << ",\"warnings\":" << warning_count()
     << ",\"info\":" << count(Severity::kInfo) << "}";
  return os.str();
}

namespace {

/// SARIF severity levels: kInfo maps to "note" (SARIF has no "info").
const char* sarif_level(Severity s) {
  switch (s) {
    case Severity::kInfo: return "note";
    case Severity::kWarning: return "warning";
    case Severity::kError: return "error";
  }
  return "none";
}

}  // namespace

std::string to_sarif(const Report& report) {
  // Rules referenced by at least one result, in registry (= stable ID)
  // order, so ruleIndex values are reproducible run to run.
  std::vector<const RuleInfo*> rules;
  std::map<std::string, std::size_t> rule_index;
  for (const RuleInfo& r : rule_registry()) {
    if (!report.has(r.id)) continue;
    rule_index[r.id] = rules.size();
    rules.push_back(&r);
  }

  std::ostringstream os;
  os << "{\"$schema\":\"https://json.schemastore.org/sarif-2.1.0.json\","
     << "\"version\":\"2.1.0\",\"runs\":[{\"tool\":{\"driver\":{"
     << "\"name\":\"osss-lint\",\"rules\":[";
  for (std::size_t i = 0; i < rules.size(); ++i) {
    const RuleInfo& r = *rules[i];
    if (i != 0) os << ",";
    os << "{\"id\":\"" << json_escape(r.id) << "\",\"shortDescription\":{"
       << "\"text\":\"" << json_escape(r.title) << "\"},"
       << "\"fullDescription\":{\"text\":\"" << json_escape(r.description)
       << "\"},\"defaultConfiguration\":{\"level\":\""
       << sarif_level(r.default_severity) << "\"},\"properties\":{"
       << "\"pack\":\"" << json_escape(r.pack) << "\"}}";
  }
  os << "]}},\"results\":[";
  for (std::size_t i = 0; i < report.diags().size(); ++i) {
    const Diagnostic& d = report.diags()[i];
    if (i != 0) os << ",";
    os << "{\"ruleId\":\"" << json_escape(d.rule) << "\"";
    if (const auto it = rule_index.find(d.rule); it != rule_index.end())
      os << ",\"ruleIndex\":" << it->second;
    os << ",\"level\":\"" << sarif_level(d.severity) << "\","
       << "\"message\":{\"text\":\"" << json_escape(d.message) << "\"},"
       << "\"locations\":[{\"logicalLocations\":[{\"fullyQualifiedName\":\""
       << json_escape(d.object.empty() ? d.source
                                       : d.source + "." + d.object)
       << "\"}]}],\"properties\":{\"index\":" << d.index;
    if (!d.note.empty()) os << ",\"note\":\"" << json_escape(d.note) << "\"";
    os << "}}";
  }
  os << "]}]}";
  return os.str();
}

std::string rules_markdown() {
  std::ostringstream os;
  os << "# Lint rules\n\n"
     << "Reference for every rule the analyzer subsystem implements, in\n"
     << "stable ID order.  Generated from the rule registry\n"
     << "(`src/lint/diag.cpp`) by `osss-lint --rules-doc`; do not edit by\n"
     << "hand — a test keeps this file and the registry in sync.\n"
     << "`osss-lint --explain <RULE-ID>` prints the same text.\n";
  std::string pack;
  for (const RuleInfo& r : rule_registry()) {
    if (pack != r.pack) {
      pack = r.pack;
      os << "\n## `" << pack << "` pack\n";
    }
    os << "\n### " << r.id << " — " << r.title << "\n\n"
       << "*Default severity: " << severity_name(r.default_severity)
       << ".*\n\n" << r.description << "\n";
  }
  return os.str();
}

namespace {

/// Length of the well-formed UTF-8 sequence starting at s[i], or 0 when the
/// bytes there are not valid UTF-8 (truncated sequence, bad continuation,
/// overlong encoding, surrogate, or above U+10FFFF).
std::size_t utf8_sequence_length(const std::string& s, std::size_t i) {
  const auto byte = [&](std::size_t k) {
    return static_cast<unsigned char>(s[k]);
  };
  const unsigned char b0 = byte(i);
  std::size_t len = 0;
  std::uint32_t cp = 0;
  if (b0 < 0x80) return 1;
  if ((b0 & 0xe0) == 0xc0) { len = 2; cp = b0 & 0x1f; }
  else if ((b0 & 0xf0) == 0xe0) { len = 3; cp = b0 & 0x0f; }
  else if ((b0 & 0xf8) == 0xf0) { len = 4; cp = b0 & 0x07; }
  else return 0;  // continuation or 0xf8.. lead byte
  if (i + len > s.size()) return 0;
  for (std::size_t k = 1; k < len; ++k) {
    if ((byte(i + k) & 0xc0) != 0x80) return 0;
    cp = (cp << 6) | (byte(i + k) & 0x3f);
  }
  static const std::uint32_t kMinByLen[5] = {0, 0, 0x80, 0x800, 0x10000};
  if (cp < kMinByLen[len]) return 0;                 // overlong
  if (cp >= 0xd800 && cp <= 0xdfff) return 0;        // surrogate
  if (cp > 0x10ffff) return 0;                       // beyond Unicode
  return len;
}

}  // namespace

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (std::size_t i = 0; i < s.size();) {
    const char c = s[i];
    switch (c) {
      case '"': out += "\\\""; ++i; continue;
      case '\\': out += "\\\\"; ++i; continue;
      case '\n': out += "\\n"; ++i; continue;
      case '\r': out += "\\r"; ++i; continue;
      case '\t': out += "\\t"; ++i; continue;
      default: break;
    }
    const auto u = static_cast<unsigned char>(c);
    if (u < 0x20) {
      static const char* hex = "0123456789abcdef";
      out += "\\u00";
      out += hex[(u >> 4) & 0xf];
      out += hex[u & 0xf];
      ++i;
    } else if (u < 0x80) {
      out += c;
      ++i;
    } else if (const std::size_t len = utf8_sequence_length(s, i)) {
      // Well-formed multi-byte sequence: pass through verbatim.
      out.append(s, i, len);
      i += len;
    } else {
      // Invalid byte: substitute U+FFFD so the emitted JSON stays valid
      // UTF-8 no matter what bytes leak into a diagnostic name.
      out += "\xef\xbf\xbd";
      ++i;
    }
  }
  return out;
}

}  // namespace osss::lint
