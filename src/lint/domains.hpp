// domains.hpp — abstract lattice domains for the dataflow engine.
//
// Two classic value abstractions over a `width`-bit bus, shared by the
// lint rule pack (RTL-010..014) and the don't-care-aware satsweep:
//
//   * KnownBits — per-bit three-valued knowledge: each bit is known-0,
//     known-1 or unknown.  Represented as two disjoint masks.  The join
//     (control-flow merge / successive cycles of the sequential loop)
//     intersects knowledge; the lattice is finite, so every fixpoint
//     terminates without widening.
//   * Interval — unsigned range [lo, hi], tracked only for buses up to
//     64 bits (wider buses degrade to "untracked", i.e. top).  Intervals
//     have infinite ascending chains, so the sequential fixpoint widens
//     them after a few iterations.
//
// A `Fact` bundles both and keeps them mutually consistent: the interval
// sharpens the known bits (common leading bits of lo and hi are known) and
// the known bits clamp the interval.  Every operation here is *sound*: the
// concretization of the result always contains every value the inputs
// could produce.  `contains()` is the contract the soundness fuzz harness
// checks against the reference interpreter.

#pragma once

#include <cstdint>
#include <optional>

#include "sysc/bits.hpp"

namespace osss::lint {

using sysc::Bits;

/// Per-bit knowledge about a bus value: `zeros` marks bits known to be 0,
/// `ones` bits known to be 1.  The two masks are disjoint; a bit in
/// neither mask is unknown (top).
struct KnownBits {
  Bits zeros;
  Bits ones;

  KnownBits() = default;
  KnownBits(Bits z, Bits o) : zeros(std::move(z)), ones(std::move(o)) {}

  /// Nothing known about any bit.
  static KnownBits top(unsigned width) {
    return KnownBits(Bits(width), Bits(width));
  }
  /// Every bit known: the exact value `v`.
  static KnownBits constant(const Bits& v) { return KnownBits(~v, v); }

  unsigned width() const noexcept { return zeros.width(); }
  /// Mask of bits with a known value.
  Bits known() const { return zeros | ones; }
  bool is_constant() const { return known().is_ones(); }
  /// The value, when every bit is known (`ones` is exactly the value).
  const Bits& constant_value() const { return ones; }

  /// Knowledge about one bit: 0, 1 or nullopt (unknown).
  std::optional<bool> bit(unsigned i) const {
    if (ones.bit(i)) return true;
    if (zeros.bit(i)) return false;
    return std::nullopt;
  }

  /// True when `v` is compatible with this knowledge (the soundness
  /// contract: the concrete simulator value must always be contained).
  bool contains(const Bits& v) const {
    return (v & zeros).is_zero() && (~v & ones).is_zero();
  }

  /// Lattice join (used at control merges and across cycles): keep only
  /// the knowledge both sides agree on.
  static KnownBits join(const KnownBits& a, const KnownBits& b) {
    return KnownBits(a.zeros & b.zeros, a.ones & b.ones);
  }

  bool operator==(const KnownBits& other) const {
    return zeros == other.zeros && ones == other.ones;
  }
  bool operator!=(const KnownBits& other) const { return !(*this == other); }
};

/// Unsigned value range [lo, hi], tracked only for widths <= 64.  An
/// untracked interval is top: it constrains nothing and joins to itself.
struct Interval {
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;
  bool tracked = false;

  Interval() = default;
  Interval(std::uint64_t l, std::uint64_t h) : lo(l), hi(h), tracked(true) {}

  /// Full range of a `width`-bit bus (still "tracked" when width <= 64 so
  /// arithmetic can reason about wrap; top otherwise).
  static Interval top(unsigned width) {
    if (width > 64) return Interval();
    return Interval(0, mask_of(width));
  }
  static Interval constant(std::uint64_t v) { return Interval(v, v); }

  static std::uint64_t mask_of(unsigned width) {
    return width >= 64 ? ~0ull : (1ull << width) - 1;
  }

  bool is_constant() const { return tracked && lo == hi; }
  bool contains(std::uint64_t v) const {
    return !tracked || (lo <= v && v <= hi);
  }

  static Interval join(const Interval& a, const Interval& b) {
    if (!a.tracked || !b.tracked) return Interval();
    return Interval(a.lo < b.lo ? a.lo : b.lo, a.hi > b.hi ? a.hi : b.hi);
  }

  bool operator==(const Interval& other) const {
    if (tracked != other.tracked) return false;
    return !tracked || (lo == other.lo && hi == other.hi);
  }
  bool operator!=(const Interval& other) const { return !(*this == other); }
};

/// The per-node abstract value: both domains, kept mutually consistent by
/// normalize().
struct Fact {
  KnownBits kb;
  Interval iv;

  static Fact top(unsigned width) {
    return Fact{KnownBits::top(width), Interval::top(width)};
  }
  static Fact constant(const Bits& v) {
    Fact f{KnownBits::constant(v), Interval()};
    if (v.width() <= 64) f.iv = Interval::constant(v.to_u64());
    return f;
  }

  unsigned width() const noexcept { return kb.width(); }

  /// Soundness contract: a concrete value the node actually took must be
  /// contained in both domains.
  bool contains(const Bits& v) const {
    if (!kb.contains(v)) return false;
    if (v.width() <= 64 && !iv.contains(v.to_u64())) return false;
    return true;
  }

  /// The exact value when one of the domains pins it.
  std::optional<Bits> constant() const;

  static Fact join(const Fact& a, const Fact& b) {
    Fact f{KnownBits::join(a.kb, b.kb), Interval::join(a.iv, b.iv)};
    f.normalize();
    return f;
  }

  /// Cross-tighten the two domains: interval bounds from the known bits
  /// ([value of known-ones with unknowns 0, value with unknowns 1]) and
  /// known bits from the interval (common leading bits of lo and hi).
  /// Detected contradictions (possible only on unreachable paths, where
  /// any answer is sound) degrade to top instead of going to bottom.
  void normalize();

  bool operator==(const Fact& other) const {
    return kb == other.kb && iv == other.iv;
  }
  bool operator!=(const Fact& other) const { return !(*this == other); }
};

}  // namespace osss::lint
