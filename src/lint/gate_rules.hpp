// gate_rules.hpp — the gate-netlist lint pack.
//
// Post-synthesis netlist checks, the back-end counterpart of the RTL pack
// (the paper's flow runs analysis both before synthesis and on the final
// gate netlist, its Fig. 6):
//
//   GATE-001  error  combinational loop through logic cells (reports path)
//   GATE-002  warn   memory with multiple write ports (write-write collision
//                    possible; true multi-driven *nets* are structurally
//                    impossible here since a cell index is its output net)
//   GATE-003  error  floating/dangling input: bad net reference, DFF without
//                    a D input, malformed memory port, arity mismatch
//   GATE-004  warn   dead cell — logic Netlist::sweep() would remove
//                    (mirrors sweep()'s marking exactly)
//   GATE-005  info   fanout histogram; per-net warning above
//                    Options::fanout_warn_threshold
//
// Never throws on malformed netlists; damage becomes diagnostics.  The
// reachability rules (GATE-004/005) only run on structurally sound input.

#pragma once

#include "gate/netlist.hpp"
#include "lint/diag.hpp"

namespace osss::lint {

/// Lint one gate netlist.  Never throws on malformed netlists.
Report lint_netlist(const gate::Netlist& nl, const Options& opt = {});

}  // namespace osss::lint
