// rtl_rules.hpp — the RTL-IR lint pack.
//
// Static checks over rtl::Module in the role of the paper's analyzer stage:
// run *before* simulation or lowering, on IR that may be arbitrarily
// malformed (nothing here throws on bad IR — badness becomes diagnostics).
//
//   RTL-001  error  combinational cycle (reports one cycle path)
//   RTL-002  error  width/shape mismatch (every Module::validate violation)
//   RTL-003  warn   dead node — agrees with rtl::tape's pruner by
//                   construction (both consume tape::analyze)
//   RTL-004  warn   register without reset value (empty init)
//   RTL-005  warn   output port folds to a compile-time constant
//   RTL-006  warn   unreachable FSM state (static reachability over the
//                   next-state mux tree from the reset state)
//   RTL-007  info   dead FSM transition (an arm that can never fire from
//                   any reachable state)
//   RTL-008  warn   stuck register (value can never change after reset)
//   RTL-009  info   constant over-shift (shift amount >= width: always 0)
//
// The deep rules (003 and up) only run once the module is structurally
// sound; on malformed IR you get the structural diagnostics alone.

#pragma once

#include "lint/diag.hpp"
#include "rtl/ir.hpp"

namespace osss::lint {

/// Lint one RTL module.  Never throws on malformed IR.
Report lint_module(const rtl::Module& m, const Options& opt = {});

}  // namespace osss::lint
