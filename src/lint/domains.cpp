#include "lint/domains.hpp"

namespace osss::lint {

std::optional<Bits> Fact::constant() const {
  if (kb.is_constant()) return kb.constant_value();
  if (width() <= 64 && iv.is_constant()) return Bits(width(), iv.lo);
  return std::nullopt;
}

void Fact::normalize() {
  const unsigned w = width();
  if (w > 64) return;  // interval untracked beyond 64 bits
  if (!iv.tracked) iv = Interval::top(w);

  // Known bits -> interval: minimum value sets unknown bits to 0 (= ones
  // mask as a value), maximum sets them to 1 (= ~zeros as a value).
  const std::uint64_t kb_lo = kb.ones.to_u64();
  const std::uint64_t kb_hi = (~kb.zeros).to_u64();
  std::uint64_t lo = iv.lo > kb_lo ? iv.lo : kb_lo;
  std::uint64_t hi = iv.hi < kb_hi ? iv.hi : kb_hi;
  if (lo > hi) {  // contradiction: only reachable on dead paths — stay sound
    iv = Interval::top(w);
    return;
  }

  // Interval -> known bits: every bit above the highest bit where lo and
  // hi disagree is common to the whole range, hence known.
  std::uint64_t agree_mask = 0;
  const std::uint64_t x = lo ^ hi;
  if (x == 0) {
    agree_mask = Interval::mask_of(w);
  } else {
    unsigned msb = 63;
    while (((x >> msb) & 1u) == 0) --msb;
    if (msb + 1 < 64) agree_mask = ~((1ull << (msb + 1)) - 1);
    agree_mask &= Interval::mask_of(w);
  }
  const Bits agreed(w, lo & agree_mask);
  const Bits mask(w, agree_mask);
  const Bits new_ones = kb.ones | (agreed & mask);
  const Bits new_zeros = kb.zeros | (~agreed & mask);
  if (!(new_ones & new_zeros).is_zero()) {  // contradiction again
    iv = Interval(lo, hi);
    return;
  }
  kb = KnownBits(new_zeros, new_ones);
  iv = Interval(lo, hi);
}

}  // namespace osss::lint
