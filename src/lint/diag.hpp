// diag.hpp — diagnostic framework shared by every analyzer in the repo.
//
// The paper's OSSS flow starts with an *analyzer* that statically checks the
// object-oriented sources against the synthesizable subset before synthesis
// runs (its Fig. 6 front end).  This header is that stage's reporting
// backbone for the reproduction: a stable-rule-ID diagnostic record, a rule
// registry describing every check the repo implements (RTL-IR pack, gate-
// netlist pack, kernel race detector), per-rule suppression, and text/JSON
// reporters.  It deliberately depends on nothing but the standard library so
// the lowest layers (sysc::Kernel's race detector) can report through it
// without a dependency cycle.

#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace osss::lint {

enum class Severity : std::uint8_t { kInfo, kWarning, kError };

const char* severity_name(Severity s);

/// One finding.  `rule` is a stable ID from the registry ("RTL-001");
/// `source` labels the analyzed artefact (module/netlist/kernel name);
/// `object` names the offending thing (node, net, signal); `index` is its
/// numeric identity when one exists (NodeId/NetId/state), else -1, so tests
/// and cross-checks can consume findings without parsing strings.
struct Diagnostic {
  std::string rule;
  Severity severity = Severity::kWarning;
  std::string source;
  std::string object;
  std::int64_t index = -1;
  std::string message;
  std::string note;  ///< optional detail: cycle path, histogram, state list

  /// "error[RTL-001] adder.%12: combinational cycle ..." (reporter line).
  std::string format() const;
};

/// Registry entry describing one implemented rule.
struct RuleInfo {
  const char* id;
  const char* pack;  ///< "rtl", "gate", "kernel"
  Severity default_severity = Severity::kWarning;
  const char* title;
  /// A few sentences for `osss-lint --explain <id>` and docs/lint-rules.md:
  /// what the rule detects, why it matters, how the analysis proves it.
  const char* description = "";
};

/// Every rule the repo implements, in stable ID order.
const std::vector<RuleInfo>& rule_registry();

/// Registry lookup; nullptr for unknown IDs.
const RuleInfo* find_rule(const std::string& id);

/// Analysis options shared by the rule packs.
struct Options {
  /// Rule IDs to suppress (matching diagnostics are never emitted).
  std::set<std::string> suppress;
  /// GATE-005: warn when a net drives at least this many cell inputs
  /// (0 = report the histogram only, never warn).
  unsigned fanout_warn_threshold = 0;
  /// RTL-006/007: FSM reachability explores registers up to this many bits.
  unsigned fsm_max_state_bits = 10;

  bool suppressed(const std::string& rule) const {
    return suppress.count(rule) != 0;
  }
};

/// A batch of diagnostics plus counting/reporting helpers.
class Report {
 public:
  const std::vector<Diagnostic>& diags() const noexcept { return diags_; }
  bool empty() const noexcept { return diags_.empty(); }
  std::size_t size() const noexcept { return diags_.size(); }

  /// Append a diagnostic (unconditionally — rule suppression is applied by
  /// the emitting analyzer via Options::suppressed).
  void add(Diagnostic d);

  /// Append every diagnostic of `other`.
  void merge(const Report& other);

  std::size_t count(Severity s) const;
  std::size_t error_count() const { return count(Severity::kError); }
  std::size_t warning_count() const { return count(Severity::kWarning); }

  /// No error-severity findings.
  bool clean() const { return error_count() == 0; }

  /// Diagnostics of one rule.
  std::vector<Diagnostic> by_rule(const std::string& rule) const;
  bool has(const std::string& rule) const;

  /// One line per diagnostic plus a summary trailer.
  std::string text() const;

  /// Machine-readable form: {"diagnostics":[...],"errors":N,...}.
  std::string json() const;

 private:
  std::vector<Diagnostic> diags_;
};

/// Escape a string for embedding in a JSON literal (used by reporters and
/// the osss-lint CLI).  Control characters become \u00XX escapes and bytes
/// that are not well-formed UTF-8 become U+FFFD, so the output is always a
/// valid JSON string no matter what bytes leak into a diagnostic.
std::string json_escape(const std::string& s);

/// Render a report as a minimal SARIF 2.1.0 log (one run, `tool.driver` =
/// osss-lint): rules referenced by the results with registry metadata,
/// results with level/message/logical locations, diagnostic index and note
/// carried in `properties`.  CI uploads this for code-scanning ingestion.
std::string to_sarif(const Report& report);

/// Markdown reference for every registered rule — the generator behind
/// `osss-lint --rules-doc` and the committed docs/lint-rules.md (a test
/// keeps file and registry in sync).
std::string rules_markdown();

}  // namespace osss::lint
