// gate_rules.cpp — gate-netlist lint pack implementation.

#include "lint/gate_rules.hpp"

#include <algorithm>
#include <cstddef>
#include <map>
#include <string>
#include <vector>

namespace osss::lint {
namespace {

using gate::Cell;
using gate::CellKind;
using gate::kInvalidNet;
using gate::MemMacro;
using gate::NetId;
using gate::Netlist;

/// Expected input count for a cell kind; -1 when variable (kMemQ address
/// buses have memory-dependent width).
int cell_arity(CellKind k) {
  switch (k) {
    case CellKind::kConst0:
    case CellKind::kConst1:
    case CellKind::kInput:
      return 0;
    case CellKind::kBuf:
    case CellKind::kInv:
    case CellKind::kDff:
      return 1;
    case CellKind::kAnd2:
    case CellKind::kOr2:
    case CellKind::kNand2:
    case CellKind::kNor2:
    case CellKind::kXor2:
    case CellKind::kXnor2:
      return 2;
    case CellKind::kMux2:
      return 3;
    case CellKind::kMemQ:
      return -1;
  }
  return -1;
}

class NetlistLinter {
 public:
  NetlistLinter(const Netlist& nl, const Options& opt) : nl_(nl), opt_(opt) {}

  Report run() {
    structural();
    if (!refs_ok_) return std::move(report_);  // indices unusable beyond here
    cycles();
    dead_cells();
    fanout();
    return std::move(report_);
  }

 private:
  void emit(const char* rule, Severity sev, std::string object,
            std::int64_t index, std::string message, std::string note = {}) {
    if (opt_.suppressed(rule)) return;
    Diagnostic d;
    d.rule = rule;
    d.severity = sev;
    d.source = nl_.name();
    d.object = std::move(object);
    d.index = index;
    d.message = std::move(message);
    d.note = std::move(note);
    report_.add(std::move(d));
  }

  std::string label(NetId id) const {
    const Cell& c = nl_.cells()[id];
    std::string s = "n" + std::to_string(id);
    if (!c.name.empty()) s += " '" + c.name + "'";
    return s;
  }

  bool is_source(NetId id) const {
    const CellKind k = nl_.cells()[id].kind;
    return k == CellKind::kConst0 || k == CellKind::kConst1 ||
           k == CellKind::kInput || k == CellKind::kDff;
  }

  bool net_ok(NetId id) const { return id < nl_.cells().size(); }

  // --- GATE-002 / GATE-003: port and reference sanity ----------------------

  void structural() {
    const auto& cells = nl_.cells();
    for (NetId id = 0; id < cells.size(); ++id) {
      const Cell& c = cells[id];
      bool dangling = false;
      for (std::size_t i = 0; i < c.ins.size(); ++i) {
        if (!net_ok(c.ins[i])) {
          dangling = true;
          refs_ok_ = false;
          emit("GATE-003", Severity::kError, label(id),
               static_cast<std::int64_t>(id),
               std::string(cell_kind_name(c.kind)) + " input " +
                   std::to_string(i) + " is a dangling net reference");
        }
      }
      const int want = cell_arity(c.kind);
      if (want >= 0 && !dangling &&
          c.ins.size() != static_cast<std::size_t>(want)) {
        const char* what =
            c.kind == CellKind::kDff && c.ins.empty()
                ? "flip-flop D input was never connected"
                : "wrong input count for this cell kind";
        emit("GATE-003", Severity::kError, label(id),
             static_cast<std::int64_t>(id),
             std::string(cell_kind_name(c.kind)) + ": " + what,
             "has " + std::to_string(c.ins.size()) + " input(s), needs " +
                 std::to_string(want));
      }
      if (c.kind == CellKind::kMemQ && c.param >= nl_.memories().size()) {
        emit("GATE-003", Severity::kError, label(id),
             static_cast<std::int64_t>(id),
             "memq reads from a memory that does not exist");
      }
    }
    const auto& mems = nl_.memories();
    for (std::size_t mi = 0; mi < mems.size(); ++mi) {
      const MemMacro& m = mems[mi];
      if (m.writes.size() > 1) {
        emit("GATE-002", Severity::kWarning, "memory '" + m.name + "'",
             static_cast<std::int64_t>(mi),
             std::to_string(m.writes.size()) +
                 " write ports drive one memory; simultaneous writes to the "
                 "same word collide");
      }
      for (std::size_t wi = 0; wi < m.writes.size(); ++wi) {
        const auto& w = m.writes[wi];
        bool bad = !net_ok(w.enable) || w.data.size() != m.width;
        for (const NetId net : w.addr)
          if (!net_ok(net)) bad = true;
        for (const NetId net : w.data)
          if (!net_ok(net)) bad = true;
        if (bad) {
          refs_ok_ = false;
          emit("GATE-003", Severity::kError,
               "memory '" + m.name + "' write port " + std::to_string(wi),
               static_cast<std::int64_t>(mi),
               "write port is floating or malformed",
               !net_ok(w.enable) ? "enable net is unconnected"
                                 : "data bus width does not match the memory");
        }
      }
    }
    for (const auto& bus : nl_.outputs()) {
      for (std::size_t i = 0; i < bus.nets.size(); ++i) {
        if (!net_ok(bus.nets[i])) {
          refs_ok_ = false;
          emit("GATE-003", Severity::kError,
               "output '" + bus.name + "' bit " + std::to_string(i), -1,
               "output port bit is not driven by any net");
        }
      }
    }
  }

  // --- GATE-001: combinational loops ---------------------------------------

  void cycles() {
    const auto& cells = nl_.cells();
    const NetId n = static_cast<NetId>(cells.size());
    std::vector<std::uint8_t> color(n, 0);  // 0 white, 1 on stack, 2 done
    parent_.assign(n, kInvalidNet);
    struct Frame {
      NetId id;
      std::size_t next = 0;
    };
    for (NetId root = 0; root < n; ++root) {
      if (color[root] != 0 || is_source(root)) continue;
      std::vector<Frame> stack{{root, 0}};
      color[root] = 1;
      while (!stack.empty()) {
        Frame& f = stack.back();
        const Cell& c = cells[f.id];
        if (f.next >= c.ins.size()) {
          color[f.id] = 2;
          stack.pop_back();
          continue;
        }
        const NetId in = c.ins[f.next++];
        if (is_source(in)) continue;  // sequential/primary boundary
        if (color[in] == 1) {
          report_cycle(in, f.id);
          return;  // one loop report is enough: the netlist is broken
        }
        if (color[in] == 0) {
          color[in] = 1;
          parent_[in] = f.id;
          stack.push_back({in, 0});
        }
      }
    }
  }

  void report_cycle(NetId head, NetId tail) {
    // tail is on the DFS stack with head as an ancestor; walking parents
    // from tail reconstructs the loop head -> ... -> tail -> head.
    std::vector<NetId> path;
    for (NetId cur = tail; cur != head && cur != kInvalidNet;
         cur = parent_[cur])
      path.push_back(cur);
    std::reverse(path.begin(), path.end());
    std::string note = label(head);
    for (const NetId id : path) note += " -> " + label(id);
    note += " -> " + label(head);
    emit("GATE-001", Severity::kError, label(head),
         static_cast<std::int64_t>(head),
         "combinational loop through " + std::to_string(path.size() + 1) +
             " cell(s)",
         note);
  }

  // --- GATE-004: dead cells (mirror of Netlist::sweep's marking) -----------

  void dead_cells() {
    const auto& cells = nl_.cells();
    std::vector<bool> keep(cells.size(), false);
    std::vector<NetId> work;
    auto mark = [&](NetId id) {
      if (!keep[id]) {
        keep[id] = true;
        work.push_back(id);
      }
    };
    mark(nl_.const0());
    mark(nl_.const1());
    for (const auto& bus : nl_.outputs())
      for (const NetId net : bus.nets) mark(net);
    for (const auto& bus : nl_.inputs())
      for (const NetId net : bus.nets)
        if (net_ok(net)) keep[net] = true;  // interface: kept, not traversed
    std::vector<bool> mem_used(nl_.memories().size(), false);
    while (!work.empty()) {
      const NetId id = work.back();
      work.pop_back();
      const Cell& c = cells[id];
      for (const NetId in : c.ins) mark(in);
      if (c.kind == CellKind::kMemQ && c.param < mem_used.size() &&
          !mem_used[c.param]) {
        mem_used[c.param] = true;
        for (const auto& w : nl_.memories()[c.param].writes) {
          for (const NetId net : w.addr) mark(net);
          for (const NetId net : w.data) mark(net);
          if (net_ok(w.enable)) mark(w.enable);
        }
      }
    }
    for (NetId id = 0; id < cells.size(); ++id) {
      if (keep[id]) continue;
      emit("GATE-004", Severity::kWarning, label(id),
           static_cast<std::int64_t>(id),
           std::string(cell_kind_name(cells[id].kind)) +
               " drives no output, register or memory; sweep() removes it");
    }
  }

  // --- GATE-005: fanout ----------------------------------------------------

  void fanout() {
    const auto& cells = nl_.cells();
    std::vector<unsigned> fo(cells.size(), 0);
    for (const Cell& c : cells)
      for (const NetId in : c.ins) ++fo[in];
    for (const MemMacro& m : nl_.memories()) {
      for (const auto& w : m.writes) {
        for (const NetId net : w.addr) ++fo[net];
        for (const NetId net : w.data) ++fo[net];
        if (net_ok(w.enable)) ++fo[w.enable];
      }
    }
    for (const auto& bus : nl_.outputs())
      for (const NetId net : bus.nets) ++fo[net];

    std::map<unsigned, std::size_t> hist;
    unsigned max_fo = 0;
    NetId max_net = 0;
    for (NetId id = 0; id < cells.size(); ++id) {
      ++hist[fo[id]];
      if (fo[id] > max_fo) {
        max_fo = fo[id];
        max_net = id;
      }
    }
    std::string note;
    for (const auto& [f, count] : hist) {
      if (!note.empty()) note += ", ";
      note += "fanout " + std::to_string(f) + ": " + std::to_string(count) +
              " net(s)";
    }
    emit("GATE-005", Severity::kInfo, "netlist", -1,
         "fanout histogram (max " + std::to_string(max_fo) + " at " +
             label(max_net) + ")",
         note);
    if (opt_.fanout_warn_threshold > 0) {
      for (NetId id = 0; id < cells.size(); ++id) {
        if (fo[id] >= opt_.fanout_warn_threshold) {
          emit("GATE-005", Severity::kWarning, label(id),
               static_cast<std::int64_t>(id),
               "net fans out to " + std::to_string(fo[id]) +
                   " loads (threshold " +
                   std::to_string(opt_.fanout_warn_threshold) + ")");
        }
      }
    }
  }

  const Netlist& nl_;
  const Options& opt_;
  Report report_;
  bool refs_ok_ = true;  ///< false once any net index is out of range
  std::vector<NetId> parent_;  ///< DFS tree for loop-path reconstruction
};

}  // namespace

Report lint_netlist(const Netlist& nl, const Options& opt) {
  return NetlistLinter(nl, opt).run();
}

}  // namespace osss::lint
