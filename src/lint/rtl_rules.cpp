#include "lint/rtl_rules.hpp"

#include <algorithm>
#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "lint/dataflow.hpp"
#include "rtl/tape.hpp"

namespace osss::lint {

using rtl::kInvalidNode;
using rtl::Memory;
using rtl::Module;
using rtl::Node;
using rtl::NodeId;
using rtl::Op;
using rtl::Register;
using sysc::Bits;

namespace {

std::string node_label(const Module& m, NodeId id) {
  const Node& n = m.node(id);
  std::ostringstream os;
  os << "%" << id;
  if (!n.name.empty()) os << " \"" << n.name << "\"";
  return os.str();
}

class ModuleLinter {
 public:
  ModuleLinter(const Module& m, const Options& opt) : m_(m), opt_(opt) {}

  Report run() {
    structural();          // RTL-002 / RTL-004 / RTL-009
    const bool acyclic = cycles();  // RTL-001
    // The deep rules need a module that validate() accepts; structural
    // errors above are exactly its violations, so gate on them.  RTL-004
    // (reset-less register) is only a warning here, but validate() rejects
    // the empty init too, so deep analysis is impossible for it as well.
    if (acyclic && report_.clean() && !report_.has("RTL-004")) {
      try {
        deep();
      } catch (const std::logic_error& e) {
        // Defensive: if validate() rejects something the structural pass
        // missed, surface it as a diagnostic instead of crashing the lint.
        emit("RTL-002", "", -1, e.what(), "");
      }
    }
    return std::move(report_);
  }

 private:
  const Module& m_;
  const Options& opt_;
  Report report_;
  bool linear_chain_ = true;  ///< next-state tree is a priority chain

  void emit(const std::string& rule, std::string object, std::int64_t index,
            std::string message, std::string note) {
    if (opt_.suppressed(rule)) return;
    const RuleInfo* info = find_rule(rule);
    Diagnostic d;
    d.rule = rule;
    d.severity = info ? info->default_severity : Severity::kWarning;
    d.source = m_.name();
    d.object = std::move(object);
    d.index = index;
    d.message = std::move(message);
    d.note = std::move(note);
    report_.add(std::move(d));
  }

  bool in_range(NodeId id) const { return id < m_.node_count(); }

  unsigned width_of(NodeId id) const { return m_.node(id).width; }

  // --- RTL-002 (+ RTL-004, RTL-009): per-node structural checks ----------
  // Mirrors Module::validate() violation for violation, as diagnostics.
  void structural() {
    for (NodeId id = 0; id < m_.node_count(); ++id) {
      const Node& n = m_.node(id);
      if (n.width == 0) {
        emit("RTL-002", node_label(m_, id), id, "node has zero width", "");
        continue;
      }
      bool dangling = false;
      for (const NodeId in : n.ins)
        if (!in_range(in)) dangling = true;
      if (dangling) {
        emit("RTL-002", node_label(m_, id), id,
             "dangling input reference", "");
        continue;  // operand-dependent checks would read out of range
      }
      structural_node(id, n);
    }
    for (std::size_t i = 0; i < m_.memories().size(); ++i)
      structural_memory(i, m_.memories()[i]);
    for (const auto& p : m_.outputs()) {
      if (p.node == kInvalidNode)
        emit("RTL-002", p.name, -1, "output '" + p.name + "' unbound", "");
    }
  }

  void structural_node(NodeId id, const Node& n) {
    auto bad = [&](const std::string& msg) {
      emit("RTL-002", node_label(m_, id), id, msg, "");
    };
    switch (n.op) {
      case Op::kConst:
        if (n.value.width() != n.width) bad("const width mismatch");
        break;
      case Op::kAdd:
      case Op::kSub:
      case Op::kMul:
      case Op::kAnd:
      case Op::kOr:
      case Op::kXor:
        if (n.ins.size() != 2 || width_of(n.ins[0]) != n.width ||
            width_of(n.ins[1]) != n.width)
          bad(std::string(op_name(n.op)) + " width mismatch");
        break;
      case Op::kNot:
        if (n.ins.size() != 1 || width_of(n.ins[0]) != n.width)
          bad("unary width mismatch");
        break;
      case Op::kShlI:
      case Op::kLshrI:
      case Op::kAshrI:
        if (n.ins.size() != 1 || width_of(n.ins[0]) != n.width) {
          bad("unary width mismatch");
        } else if (n.param >= n.width && n.op != Op::kAshrI) {
          emit("RTL-009", node_label(m_, id), id,
               std::string(op_name(n.op)) + " by " +
                   std::to_string(n.param) + " >= width " +
                   std::to_string(n.width) + " always yields zero",
               "");
        }
        break;
      case Op::kShlV:
      case Op::kLshrV:
        if (n.ins.size() != 2 || width_of(n.ins[0]) != n.width)
          bad("variable shift width mismatch");
        break;
      case Op::kEq:
      case Op::kNe:
      case Op::kUlt:
      case Op::kUle:
      case Op::kSlt:
      case Op::kSle:
        if (n.ins.size() != 2 || n.width != 1 ||
            width_of(n.ins[0]) != width_of(n.ins[1]))
          bad("comparison shape error");
        break;
      case Op::kMux:
        if (n.ins.size() != 3 || width_of(n.ins[0]) != 1 ||
            width_of(n.ins[1]) != n.width || width_of(n.ins[2]) != n.width)
          bad("mux shape error");
        break;
      case Op::kSlice:
        if (n.ins.size() != 1 || n.param + n.width > width_of(n.ins[0]))
          bad("slice out of range");
        break;
      case Op::kConcat: {
        if (n.ins.empty()) {
          bad("empty concat");
          break;
        }
        unsigned total = 0;
        for (const NodeId in : n.ins) total += width_of(in);
        if (total != n.width) bad("concat width mismatch");
        break;
      }
      case Op::kZExt:
      case Op::kSExt:
        if (n.ins.size() != 1 || width_of(n.ins[0]) > n.width)
          bad("extension narrows");
        break;
      case Op::kRedOr:
      case Op::kRedAnd:
      case Op::kRedXor:
        if (n.ins.size() != 1 || n.width != 1) bad("reduction shape error");
        break;
      case Op::kReg: {
        if (n.param >= m_.registers().size()) {
          bad("reg index out of range");
          break;
        }
        const Register& r = m_.registers()[n.param];
        if (r.q != id) bad("reg back-reference broken");
        if (r.d == kInvalidNode || !in_range(r.d))
          bad("register '" + r.name + "' has unconnected D input");
        else if (width_of(r.d) != n.width)
          bad("register D width mismatch");
        if (r.enable != kInvalidNode &&
            (!in_range(r.enable) || width_of(r.enable) != 1))
          bad("register enable must be 1 bit");
        if (r.init.width() == 0)
          emit("RTL-004", r.name, n.param,
               "register '" + r.name + "' has no reset value", "");
        else if (r.init.width() != n.width)
          bad("register init width");
        break;
      }
      case Op::kMemRead: {
        if (n.param >= m_.memories().size()) {
          bad("mem index out of range");
          break;
        }
        const Memory& mem = m_.memories()[n.param];
        if (n.ins.size() != 1 || width_of(n.ins[0]) != mem.addr_width)
          bad("mem read address width");
        if (n.width != mem.data_width) bad("mem read data width");
        break;
      }
      case Op::kInput:
        break;
    }
  }

  void structural_memory(std::size_t index, const Memory& mem) {
    auto bad = [&](const std::string& msg) {
      emit("RTL-002", mem.name, static_cast<std::int64_t>(index), msg, "");
    };
    if (mem.depth == 0 || mem.depth > (1u << mem.addr_width))
      bad("memory depth out of range");
    for (const auto& w : mem.writes) {
      if (w.addr == kInvalidNode || w.data == kInvalidNode ||
          w.enable == kInvalidNode || !in_range(w.addr) ||
          !in_range(w.data) || !in_range(w.enable)) {
        bad("memory write port incomplete");
        continue;
      }
      if (width_of(w.addr) != mem.addr_width ||
          width_of(w.data) != mem.data_width || width_of(w.enable) != 1)
        bad("memory write port width");
    }
  }

  // --- RTL-001: combinational cycle detection ----------------------------
  // Iterative DFS over the combinational edges (kReg breaks the graph the
  // same way topo_order does); a back edge yields one concrete cycle path.
  bool cycles() {
    // Only meaningful on a graph whose edges are in range.
    for (NodeId id = 0; id < m_.node_count(); ++id)
      for (const NodeId in : m_.node(id).ins)
        if (!in_range(in)) return false;
    const std::size_t n = m_.node_count();
    std::vector<std::uint8_t> color(n, 0);  // 0 white, 1 on stack, 2 done
    std::vector<NodeId> parent(n, kInvalidNode);
    for (NodeId root = 0; root < n; ++root) {
      if (color[root] != 0) continue;
      // Explicit stack of (node, next-input-index).
      std::vector<std::pair<NodeId, std::size_t>> stack;
      stack.emplace_back(root, 0);
      color[root] = 1;
      while (!stack.empty()) {
        auto& [id, next] = stack.back();
        const Node& nd = m_.node(id);
        const bool sequential = nd.op == Op::kReg;
        if (sequential || next >= nd.ins.size()) {
          color[id] = 2;
          stack.pop_back();
          continue;
        }
        const NodeId in = nd.ins[next++];
        if (color[in] == 0) {
          color[in] = 1;
          parent[in] = id;
          stack.emplace_back(in, 0);
        } else if (color[in] == 1) {
          report_cycle(in, id, parent);
          return false;
        }
      }
    }
    return true;
  }

  void report_cycle(NodeId entry, NodeId from,
                    const std::vector<NodeId>& parent) {
    // Walk parents from `from` back to `entry` to materialize the loop.
    std::vector<NodeId> path;
    for (NodeId id = from; id != entry && id != kInvalidNode;
         id = parent[id])
      path.push_back(id);
    std::reverse(path.begin(), path.end());
    std::ostringstream os;
    os << node_label(m_, entry);
    for (const NodeId id : path) os << " -> " << node_label(m_, id);
    os << " -> " << node_label(m_, entry);
    emit("RTL-001", node_label(m_, entry), entry,
         "combinational cycle through " + std::to_string(path.size() + 1) +
             " node(s)",
         os.str());
  }

  // --- deep rules (validated module): RTL-003/005/008, FSM 006/007 -------
  void deep() {
    const rtl::tape::NodeAnalysis na = rtl::tape::analyze(m_);
    using Fate = rtl::tape::NodeAnalysis::Fate;

    // RTL-003: dead nodes, exactly the set the tape compiler prunes.
    for (NodeId id = 0; id < m_.node_count(); ++id) {
      if (na.fate[id] != Fate::kDead) continue;
      emit("RTL-003", node_label(m_, id), id,
           std::string(op_name(m_.node(id).op)) +
               " node is dead (unreachable from outputs and state)",
           "the tape compiler prunes it");
    }

    // RTL-005: outputs that fold to a constant.
    for (const auto& p : m_.outputs()) {
      const Bits& v = na.folded[p.node];
      if (v.empty()) continue;
      emit("RTL-005", p.name, p.node,
           "output '" + p.name + "' is the constant " + v.to_hex_string(),
           "");
    }

    // RTL-008: registers that can never change after reset.
    for (std::size_t i = 0; i < m_.registers().size(); ++i) {
      const Register& r = m_.registers()[i];
      std::string why;
      if (r.enable != kInvalidNode && !na.folded[r.enable].empty() &&
          na.folded[r.enable].is_zero()) {
        why = "enable is constant 0";
      } else if (na.rep(r.d) == r.q) {
        why = "D input feeds back Q";
      } else if (!na.folded[r.d].empty() && na.folded[r.d] == r.init) {
        why = "D input is constant and equal to the reset value";
      }
      if (!why.empty())
        emit("RTL-008", r.name, static_cast<std::int64_t>(i),
             "register '" + r.name + "' is stuck at its reset value", why);
    }

    fsm_rules(na);
    dataflow_rules(na);
  }

  // --- dataflow rules (RTL-010..014) -------------------------------------
  //
  // Everything below consumes the abstract-interpretation facts
  // (lint/dataflow.hpp): sound per-node known-bits/interval invariants
  // over every cycle reachable from reset.  Each rule only fires where
  // plain constant folding (tape::analyze) could NOT already decide the
  // node — the value these rules add is exactly the sequential reasoning.

  /// "[lo, hi]" when the interval is tracked, else "".
  static std::string iv_str(const Fact& f) {
    if (!f.iv.tracked) return {};
    std::ostringstream os;
    os << "[" << f.iv.lo << ", " << f.iv.hi << "]";
    return os.str();
  }

  void dataflow_rules(const rtl::tape::NodeAnalysis& na) {
    using Fate = rtl::tape::NodeAnalysis::Fate;
    const FactDB db = analyze_dataflow(m_);

    for (NodeId id = 0; id < m_.node_count(); ++id) {
      if (na.fate[id] == Fate::kDead) continue;
      const Node& n = m_.node(id);
      switch (n.op) {
        case Op::kMux: {
          // RTL-010: select proven constant only by sequential facts.
          if (!na.folded[id].empty() || !na.folded[n.ins[0]].empty()) break;
          const std::optional<Bits> sel = db.constant(n.ins[0]);
          if (!sel) break;
          const bool taken = !sel->is_zero();
          emit("RTL-010", node_label(m_, id), id,
               std::string("mux select is always ") + (taken ? "1" : "0") +
                   ": the " + (taken ? "else" : "then") +
                   " arm is unreachable",
               "select " + node_label(m_, n.ins[0]) +
                   " is invariant across all reachable cycles");
          break;
        }
        case Op::kEq:
        case Op::kNe:
        case Op::kUlt:
        case Op::kUle:
        case Op::kSlt:
        case Op::kSle: {
          // RTL-011: result decided by operand invariants, not folding.
          if (!na.folded[id].empty()) break;
          const std::optional<Bits> v = db.constant(id);
          if (!v) break;
          std::string note;
          const std::string l = iv_str(db.fact(n.ins[0]));
          const std::string r = iv_str(db.fact(n.ins[1]));
          if (!l.empty() && !r.empty())
            note = "lhs in " + l + ", rhs in " + r;
          emit("RTL-011", node_label(m_, id), id,
               std::string(op_name(n.op)) + " is always " +
                   (v->is_zero() ? "false" : "true") +
                   " in every reachable cycle",
               note);
          break;
        }
        case Op::kSlice: {
          // RTL-012: pure truncation whose dropped high bits are proven
          // always-set — information lost in every cycle.
          if (n.param != 0 || n.width >= width_of(n.ins[0])) break;
          if (!na.folded[id].empty() || !na.folded[n.ins[0]].empty()) break;
          const Fact& f = db.fact(n.ins[0]);
          std::ostringstream bits;
          unsigned dropped_set = 0;
          for (unsigned b = n.width; b < width_of(n.ins[0]); ++b) {
            if (f.kb.bit(b) != std::optional<bool>(true)) continue;
            if (dropped_set++) bits << " ";
            bits << b;
          }
          if (dropped_set == 0) break;
          emit("RTL-012", node_label(m_, id), id,
               "truncation to " + std::to_string(n.width) + " bits drops " +
                   std::to_string(dropped_set) +
                   " bit(s) proven always 1",
               "dropped set bits: " + bits.str());
          break;
        }
        default:
          break;
      }
    }

    // RTL-013: write ports whose address interval never intersects the
    // memory rows (the simulator silently drops such writes).
    for (const auto& [mi, wi] : db.dead_writes()) {
      const Memory& mem = m_.memories()[mi];
      const Fact& addr = db.fact(mem.writes[wi].addr);
      std::string note = "address in " + iv_str(addr) + ", depth " +
                         std::to_string(mem.depth);
      emit("RTL-013", mem.name, static_cast<std::int64_t>(mi),
           "write port " + std::to_string(wi) + " of memory '" + mem.name +
               "' can never land: address is always out of range",
           std::move(note));
    }

    // RTL-014: per-bit stuck registers.  Skip registers RTL-008 already
    // reported — this rule is the sharper dataflow-based superset.
    std::set<std::int64_t> structural_stuck;
    for (const Diagnostic& d : report_.by_rule("RTL-008"))
      structural_stuck.insert(d.index);
    for (std::size_t i = 0; i < m_.registers().size(); ++i) {
      if (structural_stuck.count(static_cast<std::int64_t>(i))) continue;
      const Register& r = m_.registers()[i];
      const unsigned w = m_.node(r.q).width;
      const Fact& f = db.register_fact(i);
      std::ostringstream bits;
      unsigned stuck = 0;
      for (unsigned b = 0; b < w; ++b) {
        const std::optional<bool> kb = f.kb.bit(b);
        if (!kb) continue;
        if (stuck++) bits << " ";
        bits << b << "=" << (*kb ? "1" : "0");
      }
      if (stuck == 0) continue;
      const std::string what =
          stuck == w ? "register '" + r.name +
                           "' never leaves its reset value"
                     : "register '" + r.name + "': " + std::to_string(stuck) +
                           " of " + std::to_string(w) +
                           " bits never toggle";
      emit("RTL-014", r.name, static_cast<std::int64_t>(i), what,
           "stuck bits: " + bits.str());
    }
  }

  // --- FSM reachability (RTL-006 / RTL-007) ------------------------------
  //
  // A register is treated as an FSM when its next-state cone is a mux tree
  // whose leaves are constants or the register itself (exactly the shape
  // hls::synthesize emits: a priority mux over guarded transitions with a
  // defensive hold).  For every candidate we explore states reachable from
  // the reset value: the guards are evaluated with a small set-valued
  // abstract interpreter (the state register is pinned to one concrete
  // value, everything else starts unknown), and a mux arm contributes its
  // leaf whenever its select can be true.  Unreachable arm targets become
  // RTL-006; arms that can never fire from *any* reachable state become
  // RTL-007.

  /// Abstract value: either "unknown" (top) or a small set of constants.
  struct ValSet {
    bool top = false;
    std::vector<Bits> vals;

    static ValSet make_top() { return ValSet{true, {}}; }
    void insert(const Bits& b) {
      if (std::find(vals.begin(), vals.end(), b) == vals.end())
        vals.push_back(b);
    }
  };
  static constexpr std::size_t kMaxSet = 16;

  struct FsmArm {
    NodeId mux = kInvalidNode;   ///< the kMux node
    NodeId sel = kInvalidNode;   ///< its select cone root
    NodeId leaf = kInvalidNode;  ///< the target leaf (const or the reg q)
    std::uint64_t target = 0;    ///< leaf value (state id; q = "hold")
    bool hold = false;           ///< leaf is the register itself
  };

  void fsm_rules(const rtl::tape::NodeAnalysis& na) {
    for (std::size_t ri = 0; ri < m_.registers().size(); ++ri) {
      const Register& r = m_.registers()[ri];
      const unsigned w = m_.node(r.q).width;
      if (w > opt_.fsm_max_state_bits || w > 64) continue;
      if (r.init.width() != w) continue;

      // Collect the mux-tree arms; bail if the cone is not FSM-shaped.
      std::vector<FsmArm> arms;
      linear_chain_ = true;
      if (!collect_arms(na, r.q, r.d, arms) || arms.empty()) continue;
      bool has_transition = false;
      for (const FsmArm& a : arms)
        if (!a.hold) has_transition = true;
      if (!has_transition) continue;  // pure hold: RTL-008 territory

      analyze_fsm(na, ri, r, w, arms);
    }
  }

  /// Flatten the next-state mux tree rooted at `d`.  Leaves must be
  /// constants or the register output itself; arms are recorded in priority
  /// order (a then-branch outranks everything below it).
  bool collect_arms(const rtl::tape::NodeAnalysis& na, NodeId q, NodeId d,
                    std::vector<FsmArm>& arms) {
    if (arms.size() > 256) return false;
    const NodeId id = na.rep(d);
    if (id == q) {
      FsmArm a;
      a.leaf = id;
      a.hold = true;
      arms.push_back(a);
      return true;
    }
    const Node& nd = m_.node(id);
    if (nd.op == Op::kMux) {
      // then-branch first: it wins when the select is true.
      const std::size_t mark = arms.size();
      if (!collect_arms(na, q, nd.ins[1], arms)) return false;
      if (arms.size() != mark + 1) linear_chain_ = false;
      for (std::size_t i = mark; i < arms.size(); ++i)
        if (arms[i].sel == kInvalidNode) {
          arms[i].mux = id;
          arms[i].sel = nd.ins[0];
        }
      return collect_arms(na, q, nd.ins[2], arms);
    }
    if (!na.folded[id].empty() && na.folded[id].width() <= 64) {
      FsmArm a;
      a.leaf = id;
      a.target = na.folded[id].to_u64();
      arms.push_back(a);
      return true;
    }
    return false;  // non-constant leaf: not a canonical FSM
  }

  void analyze_fsm(const rtl::tape::NodeAnalysis& na, std::size_t ri,
                   const Register& r, unsigned w,
                   const std::vector<FsmArm>& arms) {
    const std::uint64_t init_state = r.init.to_u64();

    // Universe: reset state plus every arm target.
    std::vector<std::uint64_t> universe{init_state};
    for (const FsmArm& a : arms)
      if (!a.hold &&
          std::find(universe.begin(), universe.end(), a.target) ==
              universe.end())
        universe.push_back(a.target);
    std::sort(universe.begin(), universe.end());

    // BFS over states; per state, abstract-evaluate every arm select.
    std::vector<std::uint64_t> frontier{init_state};
    std::vector<std::uint64_t> reachable{init_state};
    std::vector<bool> arm_fires(arms.size(), false);
    while (!frontier.empty()) {
      const std::uint64_t s = frontier.back();
      frontier.pop_back();
      std::map<NodeId, ValSet> memo;
      // An arm fires when its select can be 1 and no strictly higher
      // priority arm *must* fire (its select is definitely 1).
      bool blocked = false;
      for (std::size_t i = 0; i < arms.size() && !blocked; ++i) {
        const FsmArm& a = arms[i];
        bool can1 = true, must1 = false;
        if (a.sel != kInvalidNode) {
          const ValSet v = eval(na, a.sel, r.q, Bits(w, s), memo, 0);
          if (v.top) {
            can1 = true;
            must1 = false;
          } else {
            can1 = must1 = false;
            bool any0 = false;
            for (const Bits& b : v.vals) (b.is_zero() ? any0 : can1) = true;
            must1 = can1 && !any0;
          }
        } else {
          must1 = true;  // unconditional default arm
        }
        if (!can1) continue;
        arm_fires[i] = true;
        if (!a.hold &&
            std::find(reachable.begin(), reachable.end(), a.target) ==
                reachable.end()) {
          reachable.push_back(a.target);
          frontier.push_back(a.target);
        }
        // In a linear priority chain every lower arm sits in this arm's
        // else branch, so a select that is definitely 1 blocks them all.
        // In a general tree that inference is unsound — skip it there and
        // over-approximate reachability instead (lint must not cry wolf).
        if (must1 && linear_chain_) blocked = true;
      }
    }

    // RTL-006: universe states never reached.
    std::vector<std::uint64_t> unreachable;
    for (const std::uint64_t s : universe)
      if (std::find(reachable.begin(), reachable.end(), s) ==
          reachable.end())
        unreachable.push_back(s);
    if (!unreachable.empty()) {
      std::ostringstream os;
      os << "states:";
      for (std::size_t i = 0; i < unreachable.size() && i < 16; ++i)
        os << " " << unreachable[i];
      if (unreachable.size() > 16) os << " ...";
      emit("RTL-006", r.name, static_cast<std::int64_t>(ri),
           "FSM '" + r.name + "' has " + std::to_string(unreachable.size()) +
               " unreachable state(s) out of " +
               std::to_string(universe.size()),
           os.str());
    }

    // RTL-007: arms that can never fire from any reachable state.
    for (std::size_t i = 0; i < arms.size(); ++i) {
      if (arm_fires[i] || arms[i].hold) continue;
      emit("RTL-007", r.name, static_cast<std::int64_t>(ri),
           "FSM '" + r.name + "' transition to state " +
               std::to_string(arms[i].target) + " can never fire",
           "guard node " + node_label(m_, arms[i].sel));
    }
  }

  /// Set-valued abstract evaluation of `id` with register `q` pinned to
  /// `state`.  Mirrors the interpreter's per-op semantics on each member of
  /// the (bounded) operand sets; anything unknown or too large becomes top.
  ValSet eval(const rtl::tape::NodeAnalysis& na, NodeId id, NodeId q,
              const Bits& state, std::map<NodeId, ValSet>& memo,
              unsigned depth) {
    if (depth > 512) return ValSet::make_top();
    id = na.rep(id);
    if (id == q) return ValSet{false, {state}};
    if (!na.folded[id].empty()) return ValSet{false, {na.folded[id]}};
    const auto it = memo.find(id);
    if (it != memo.end()) return it->second;
    memo.emplace(id, ValSet::make_top());  // cycle/depth guard placeholder
    const ValSet v = eval_uncached(na, id, q, state, memo, depth);
    memo[id] = v;
    return v;
  }

  ValSet eval_uncached(const rtl::tape::NodeAnalysis& na, NodeId id, NodeId q,
                       const Bits& state, std::map<NodeId, ValSet>& memo,
                       unsigned depth) {
    const Node& n = m_.node(id);
    switch (n.op) {
      case Op::kInput:
      case Op::kReg:      // a different register: unknown
      case Op::kMemRead:  // memory contents: unknown
        return ValSet::make_top();
      case Op::kMux: {
        const ValSet sel = eval(na, n.ins[0], q, state, memo, depth + 1);
        bool may1 = sel.top, may0 = sel.top;
        for (const Bits& b : sel.vals) (b.is_zero() ? may0 : may1) = true;
        ValSet out;
        if (may1) {
          const ValSet t = eval(na, n.ins[1], q, state, memo, depth + 1);
          if (t.top) return ValSet::make_top();
          for (const Bits& b : t.vals) out.insert(b);
        }
        if (may0) {
          const ValSet e = eval(na, n.ins[2], q, state, memo, depth + 1);
          if (e.top) return ValSet::make_top();
          for (const Bits& b : e.vals) out.insert(b);
        }
        if (out.vals.size() > kMaxSet) return ValSet::make_top();
        return out;
      }
      default:
        break;
    }
    // Generic operator: cross product of the operand sets.
    std::vector<ValSet> ops;
    std::size_t combos = 1;
    for (const NodeId in : n.ins) {
      ValSet v = eval(na, in, q, state, memo, depth + 1);
      if (v.top) return ValSet::make_top();
      combos *= v.vals.size();
      if (combos == 0 || combos > 64) return ValSet::make_top();
      ops.push_back(std::move(v));
    }
    ValSet out;
    std::vector<std::size_t> pick(ops.size(), 0);
    for (;;) {
      std::vector<Bits> operand;
      operand.reserve(ops.size());
      for (std::size_t i = 0; i < ops.size(); ++i)
        operand.push_back(ops[i].vals[pick[i]]);
      out.insert(apply_op(n, operand));
      if (out.vals.size() > kMaxSet) return ValSet::make_top();
      std::size_t i = 0;
      for (; i < pick.size(); ++i) {
        if (++pick[i] < ops[i].vals.size()) break;
        pick[i] = 0;
      }
      if (i == pick.size()) break;
    }
    return out;
  }

  /// One concrete evaluation, mirroring rtl::Simulator::compute.
  static Bits apply_op(const Node& n, const std::vector<Bits>& in) {
    switch (n.op) {
      case Op::kAdd: return in[0] + in[1];
      case Op::kSub: return in[0] - in[1];
      case Op::kMul: return in[0] * in[1];
      case Op::kAnd: return in[0] & in[1];
      case Op::kOr: return in[0] | in[1];
      case Op::kXor: return in[0] ^ in[1];
      case Op::kNot: return ~in[0];
      case Op::kShlI: return in[0].shl(n.param);
      case Op::kLshrI: return in[0].lshr(n.param);
      case Op::kAshrI: return in[0].ashr(n.param);
      case Op::kShlV:
        return in[0].shl(
            static_cast<unsigned>(in[1].to_u64() & 0xffffffffu));
      case Op::kLshrV:
        return in[0].lshr(
            static_cast<unsigned>(in[1].to_u64() & 0xffffffffu));
      case Op::kEq: return Bits(1, in[0] == in[1] ? 1u : 0u);
      case Op::kNe: return Bits(1, in[0] != in[1] ? 1u : 0u);
      case Op::kUlt: return Bits(1, Bits::ult(in[0], in[1]) ? 1u : 0u);
      case Op::kUle: return Bits(1, Bits::ule(in[0], in[1]) ? 1u : 0u);
      case Op::kSlt: return Bits(1, Bits::slt(in[0], in[1]) ? 1u : 0u);
      case Op::kSle: return Bits(1, Bits::sle(in[0], in[1]) ? 1u : 0u);
      case Op::kSlice: return in[0].slice(n.param + n.width - 1, n.param);
      case Op::kConcat: {
        Bits acc(n.width);
        unsigned pos = n.width;
        for (std::size_t i = 0; i < in.size(); ++i) {
          pos -= in[i].width();
          acc.set_range(pos, in[i]);
        }
        return acc;
      }
      case Op::kZExt: return in[0].zext(n.width);
      case Op::kSExt: return in[0].sext(n.width);
      case Op::kRedOr: return Bits(1, in[0].is_zero() ? 0u : 1u);
      case Op::kRedAnd: return Bits(1, in[0].is_ones() ? 1u : 0u);
      case Op::kRedXor: return Bits(1, in[0].popcount() & 1u);
      default:
        throw std::logic_error("lint: cannot evaluate op");
    }
  }
};

}  // namespace

Report lint_module(const Module& m, const Options& opt) {
  return ModuleLinter(m, opt).run();
}

}  // namespace osss::lint
