// lint.hpp — umbrella header for the analyzer/lint subsystem.
//
// Pulls in the diagnostic framework and both static rule packs.  The
// dynamic kernel race detector reports through the same framework but
// lives with the kernel (sysc/kernel.hpp) to avoid a dependency cycle.

#pragma once

#include "lint/diag.hpp"        // IWYU pragma: export
#include "lint/gate_rules.hpp"  // IWYU pragma: export
#include "lint/rtl_rules.hpp"   // IWYU pragma: export
