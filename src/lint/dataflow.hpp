// dataflow.hpp — worklist fixpoint abstract interpreter over rtl::Module.
//
// Computes, for every node of a module, a sound over-approximation of the
// values it can take in *any reachable cycle*: a KnownBits mask and an
// unsigned Interval (domains.hpp).  The engine mirrors the reference
// interpreter's semantics exactly (rtl/sim.cpp is the oracle the soundness
// fuzz suite checks against):
//
//   * registers start at their reset value and accumulate (join) the fact
//     of their next-state function each abstract cycle until a fixpoint —
//     the sequential loop.  Intervals are widened after a few iterations
//     (they have unbounded chains); known bits converge on their own.
//   * memories start all-zero (power-on reset) and join the data facts of
//     every write port whose enable is not provably 0 and whose address is
//     not provably out of range; out-of-range reads yield 0, so reads join
//     the zero word in.
//   * mux arms are evaluated under the branch constraint when the select
//     is a recognizable guard (comparison against a constant, reduction,
//     or the select bit itself): the constrained cone is re-evaluated with
//     a bounded node budget.  This is what recovers bounds like
//     "count <= 8" from the saturating-counter idiom.
//
// The result is a FactDB: per-node facts, per-register invariants, and the
// register-constant-bit export consumed by the ODC/SDC-aware satsweep
// through the gate lowering's DFF naming scheme ("reg[bit]").

#pragma once

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "lint/domains.hpp"
#include "rtl/ir.hpp"

namespace osss::lint {

struct DataflowOptions {
  /// Abstract sequential iterations before the engine gives up and
  /// soundly tops out the registers that are still moving.
  unsigned max_iterations = 256;
  /// Iterations before interval widening kicks in (known bits never widen).
  unsigned widen_after = 8;
  /// Node budget for one branch-constrained mux-arm re-evaluation; 0
  /// disables guard refinement.
  unsigned refine_budget = 192;
};

/// Queryable result of analyze_dataflow().  Facts are invariants: they hold
/// in every cycle of every execution from reset, for any input stimulus.
class FactDB {
 public:
  /// Fact for any node (combinational nodes: value this cycle; kReg nodes:
  /// the register invariant).
  const Fact& fact(rtl::NodeId id) const { return node_facts_.at(id); }
  std::size_t node_count() const noexcept { return node_facts_.size(); }

  /// The exact value when the analysis pins the node to a constant.
  std::optional<Bits> constant(rtl::NodeId id) const {
    return node_facts_.at(id).constant();
  }
  /// Knowledge about one bit of a node.
  std::optional<bool> bit(rtl::NodeId id, unsigned i) const {
    return node_facts_.at(id).kb.bit(i);
  }
  Interval interval(rtl::NodeId id) const { return node_facts_.at(id).iv; }

  /// Invariant of register `reg_index` (same fact as its kReg node).
  const Fact& register_fact(std::size_t reg_index) const {
    return reg_facts_.at(reg_index);
  }

  /// Register bits proven constant across all reachable cycles, keyed by
  /// the gate lowering's per-bit DFF cell name ("reg[bit]").  Registers
  /// with ambiguous (duplicate) names are skipped.  This is the fact
  /// conduit into the netlist optimizer (opt::SatSweepPass).
  std::unordered_map<std::string, bool> const_reg_bits() const;

  /// Write ports proven dead because their address is always out of range
  /// (pairs of memory index, write-port index) — RTL-013's evidence.
  const std::vector<std::pair<unsigned, unsigned>>& dead_writes() const {
    return dead_writes_;
  }

  unsigned iterations() const noexcept { return iterations_; }
  bool converged() const noexcept { return converged_; }

 private:
  friend FactDB analyze_dataflow(const rtl::Module&, const DataflowOptions&);

  std::vector<Fact> node_facts_;
  std::vector<Fact> reg_facts_;
  std::vector<std::string> reg_names_;  ///< snapshot for const_reg_bits()
  std::vector<std::pair<unsigned, unsigned>> dead_writes_;
  unsigned iterations_ = 0;
  bool converged_ = false;
};

/// Run the abstract interpreter.  The module must validate() (the lint
/// driver only runs dataflow rules on structurally clean modules; the
/// engine validates again defensively).
FactDB analyze_dataflow(const rtl::Module& m, const DataflowOptions& opt = {});

}  // namespace osss::lint
