// exposure_control_loop.cpp — the paper's full design example, closed loop.
//
// The synthetic camera sweeps through a day/night ambient cycle while the
// ExpoCU (OO simulation model) measures each frame's histogram, runs the
// auto-exposure law and writes new exposure/gain over bit-level I2C into
// the camera's register file.  Prints a per-frame trace of the loop.

#include <cstdio>

#include "expocu/expocu_sim.hpp"

using namespace osss;
using namespace osss::expocu;

int main(int argc, char** argv) {
  const unsigned frames = argc > 1 ? std::atoi(argv[1]) : 48;
  sysc::Context ctx;
  ExpoCuSystem sys(ctx);

  std::printf("ExpoCU closed loop: %ux%u frames, target mean %u\n",
              kFrameWidth, kFrameHeight, kTargetMean);
  std::printf("%5s %8s %6s %6s %6s %10s %6s %8s\n", "frame", "ambient",
              "mean", "dark", "brght", "exposure", "gain", "i2c_txn");
  for (unsigned f = 0; f < frames; ++f) {
    sys.run_frames(ctx, 1);
    if (sys.expocu.frame_log().empty()) continue;
    const FrameStats& s = sys.expocu.frame_log().back();
    std::printf("%5u %8.2f %6u %6u %6u %#10x %6u %8llu\n", f,
                CameraModel::ambient(sys.camera.frame_count()), s.mean,
                s.dark, s.bright, sys.expocu.exposure(), sys.expocu.gain(),
                static_cast<unsigned long long>(
                    sys.slave.transaction_count()));
  }
  std::printf(
      "\nloop closed over I2C: %llu transactions, %llu bytes, camera now at "
      "exposure=%#x gain=%u\n",
      static_cast<unsigned long long>(sys.slave.transaction_count()),
      static_cast<unsigned long long>(sys.slave.byte_count()),
      sys.regs.exposure, sys.regs.gain);
  return 0;
}
