// shared_multiplier.cpp — global/shared objects with generated scheduling.
//
// A shared accumulator serves three clocked clients.  Runtime view: the
// Shared<T> guard arbitrates one access per clock (round-robin).
// Synthesis view: synthesize_shared() generates the request/grant arbiter,
// method-dispatch muxes and the object register — "the access and
// scheduling of a global object gets automatically included for
// synthesis" (§6).

#include <cstdio>

#include "expocu/params.hpp"
#include "gate/lower.hpp"
#include "gate/timing.hpp"
#include "osss/shared.hpp"
#include "synth/shared_synth.hpp"

using namespace osss;

namespace {

struct Accumulator {
  unsigned value = 0;
  void add(unsigned d) { value += d; }
};

meta::ClassPtr accumulator_class() {
  using namespace meta;
  auto c = std::make_shared<ClassDesc>("Accumulator");
  c->add_member("value", 16);
  MethodDesc add;
  add.name = "Add";
  add.params = {{"d", 16}};
  add.body = {assign_member("value",
                            meta::add(member("value", 16), param("d", 16)))};
  c->add_method(std::move(add));
  MethodDesc get;
  get.name = "Get";
  get.return_width = 16;
  get.is_const = true;
  get.body = {return_stmt(member("value", 16))};
  c->add_method(std::move(get));
  return c;
}

}  // namespace

int main() {
  // --- runtime: three clients contend for the shared object --------------
  sysc::Context ctx;
  sysc::Clock clk(ctx, "clk", expocu::kClockPeriodPs);
  Shared<Accumulator> shared(ctx, "acc", clk.signal(), 3, Accumulator{},
                             std::make_unique<RoundRobinScheduler>());
  for (std::size_t id = 0; id < 3; ++id) {
    ctx.create_cthread(
        "client" + std::to_string(id), clk.signal(),
        [&shared, id]() -> sysc::Behavior {
          for (unsigned k = 0; k < 4; ++k) {
            auto ticket = shared.request(
                id, [id](Accumulator& a) { a.add(static_cast<unsigned>(id) + 1); });
            while (!ticket->done()) co_await sysc::wait();
          }
        });
  }
  ctx.run_for(60 * expocu::kClockPeriodPs);
  std::printf("runtime: value=%u after 4 accesses/client; grants:",
              shared.peek().value);
  for (std::size_t id = 0; id < 3; ++id)
    std::printf(" c%zu=%llu", id,
                static_cast<unsigned long long>(shared.grant_count(id)));
  std::printf(" (scheduler: %s)\n\n", shared.policy().name().c_str());

  // --- synthesis: the generated arbiter -----------------------------------
  synth::SharedSpec spec;
  spec.name = "shared_accumulator";
  spec.cls = accumulator_class();
  spec.methods = {"Add", "Get"};
  spec.policy = synth::SharedSpec::Policy::kRoundRobin;
  const auto lib = gate::Library::generic();
  std::printf("generated shared-object modules (round-robin scheduler):\n");
  for (const unsigned clients : {2u, 4u, 8u}) {
    spec.clients = clients;
    const auto report = gate::analyze_timing(
        gate::lower_to_gates(synth::synthesize_shared(spec)), lib);
    std::printf("  %u clients: %s\n", clients,
                gate::format_report("shared_accumulator", report).c_str());
  }
  return 0;
}
