// netlist_export.cpp — the tail of the paper's Fig. 6 flow: every ExpoCU
// component synthesized through the OSSS flow and written out as Verilog
// and VHDL netlists (*.v / *.vhd), ready for a downstream map/P&R tool.

#include <cstdio>
#include <fstream>

#include "expocu/flows.hpp"
#include "gate/lower.hpp"
#include "gate/verilog.hpp"
#include "gate/vhdl.hpp"

int main() {
  using namespace osss;
  using namespace osss::expocu;
  const auto lib = gate::Library::generic();
  std::printf("exporting OSSS-flow netlists (Fig. 6: \"*.v, *.vhd\"):\n");
  for (const FlowComponent& c : build_osss_flow()) {
    const gate::Netlist nl = gate::lower_to_gates(c.module);
    const auto timing = gate::analyze_timing(nl, lib);
    const std::string vfile = c.name + "_netlist.v";
    const std::string vhdfile = c.name + "_netlist.vhd";
    std::ofstream(vfile) << gate::write_verilog(nl);
    std::ofstream(vhdfile) << gate::write_vhdl(nl);
    std::printf("  %-16s -> %-28s %-28s (%4zu gates, %5.0f GE, %6.1f MHz)\n",
                c.name.c_str(), vfile.c_str(), vhdfile.c_str(),
                nl.gate_count(), timing.area_ge, timing.fmax_mhz);
  }
  std::printf("done.\n");
  return 0;
}
