// quickstart.cpp — the OSSS round trip in sixty lines.
//
// 1. Write an OSSS class (here: the paper's SyncRegister, shipped with the
//    library) and simulate it on the kernel with waveform tracing.
// 2. Resolve it with the synthesizer (classes -> `_this_` bit vector),
//    print the generated "standard SystemC" and synthesize to gates.
// 3. Report area and timing from the generic cell library.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build &&
//               ./build/examples/quickstart

#include <cstdio>

#include "expocu/params.hpp"
#include "expocu/sync_register.hpp"
#include <fstream>

#include "gate/lower.hpp"
#include "gate/verilog.hpp"
#include "gate/timing.hpp"
#include "synth/method_synth.hpp"
#include "synth/systemc_emit.hpp"
#include "sysc/trace.hpp"

using namespace osss;

int main() {
  // --- 1. simulate the OO design ----------------------------------------
  sysc::Context ctx;
  sysc::Clock clk(ctx, "clk", expocu::kClockPeriodPs);
  sysc::Signal<bool> data(ctx, "data", false);
  expocu::SyncRegister<4, 0> sync_reg;
  unsigned edges = 0;

  sysc::TraceFile vcd(ctx, "quickstart.vcd");
  vcd.trace(data, "data");
  vcd.trace_fn("sync_reg", 4, [&] { return sync_reg.to_bits(); });

  ctx.create_cthread("sync_input", clk.signal(), [&]() -> sysc::Behavior {
    sync_reg.Reset();
    co_await sysc::wait();
    for (;;) {
      sync_reg.Write(data.read());
      if (sync_reg.RisingEdge()) ++edges;
      co_await sysc::wait();
    }
  });
  ctx.create_cthread("stimulus", clk.signal(), [&]() -> sysc::Behavior {
    for (int i = 0;; ++i) {
      data.write(i % 5 < 2);  // bursts with rising edges
      co_await sysc::wait();
    }
  });
  ctx.run_for(100 * expocu::kClockPeriodPs);
  std::printf("simulation: %u rising edges detected, waveform in "
              "quickstart.vcd\n\n", edges);

  // --- 2. resolve and synthesize ------------------------------------------
  const auto cls = expocu::sync_register_template().instantiate({4, 0});
  std::printf("%s\n", synth::emit_resolved_class(*cls).c_str());

  rtl::Builder b("sync");
  meta::RtlEmitter em(b);
  const rtl::Wire d = b.input("data", 1);
  const rtl::Wire obj = b.reg("data_sync_reg", 4, cls->initial_value());
  const auto wr = synth::synthesize_method(em, *cls, "Write", obj, {d});
  b.connect(obj, wr.this_out);
  const auto edge = synth::synthesize_method(em, *cls, "RisingEdge",
                                             wr.this_out, {});
  b.output("edge", edge.ret);
  b.output("reg", obj);

  // --- 3. map to gates and report -------------------------------------------
  const gate::Netlist netlist = gate::lower_to_gates(b.take());
  const auto report =
      gate::analyze_timing(netlist, gate::Library::generic());
  std::printf("%s\n", gate::format_report("sync", report).c_str());
  std::ofstream("sync_netlist.v") << gate::write_verilog(netlist);
  std::printf("structural netlist written to sync_netlist.v\n");
  return 0;
}
